// The §II walk-through: every artifact of the paper's odd/even example.
//
// It reproduces, in order, Table II (pre-processed traces), Table III
// (their NLR), Table IV (the formal context), Figure 3 (the concept
// lattice), Figure 4 (the JSM heatmap), and then both injected bugs of
// §II-G with their Figure 5/6 diffNLR views.
//
//	go run ./examples/oddeven_bugs
package main

import (
	"fmt"
	"log"
	"strings"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func main() {
	// ---- Tables II-IV and Figures 3-4: the 4-rank fault-free run -------
	reg := trace.NewRegistry()
	tracer := parlot.NewTracerWith(parlot.MainImage, reg)
	if _, err := oddeven.Run(oddeven.Config{Procs: 4, Seed: 5, Tracer: tracer}); err != nil {
		log.Fatal(err)
	}
	set := filter.New(filter.MPIAll).ApplySet(tracer.Collect())

	fmt.Println("== Table II: pre-processed traces (MPI filter) ==")
	fmt.Println(set.Dump(0))

	fmt.Println("== Table III: NLR (K=10) ==")
	tbl := nlr.NewTable()
	sums := nlr.SummarizeSet(set, 10, tbl)
	for _, id := range set.IDs() {
		fmt.Printf("T%d: %s\n", id.Process, strings.Join(nlr.Tokens(sums[id]), "  "))
	}
	for i := 0; i < tbl.Len(); i++ {
		fmt.Printf("L%d = %s\n", i, tbl.Describe(i))
	}

	fmt.Println("\n== Table IV: formal context ==")
	ac := attr.Config{Kind: attr.Single, Freq: attr.NoFreq}
	// One interner for every object: the lattice and JSM kernels below
	// then run on shared dense attribute IDs (popcount fast path).
	in := attr.NewInterner()
	ctx := fca.NewContext()
	lattice := fca.NewLattice()
	attrs := map[string]fca.AttrSet{}
	for _, id := range set.IDs() {
		name := fmt.Sprintf("T%d", id.Process)
		a := attr.ExtractIn(in, sums[id], ac)
		attrs[name] = a
		ctx.AddObject(name, a)
		lattice.AddObject(name, a)
	}
	fmt.Print(ctx.CrossTable())

	fmt.Println("\n== Figure 3: concept lattice ==")
	fmt.Print(lattice.Render())

	fmt.Println("\n== Figure 4: Jaccard similarity matrix ==")
	jsm := jaccard.New(attrs)
	fmt.Print(jsm.String())

	// ---- §II-G: swapBug and dlBug at 16 ranks ---------------------------
	for _, bug := range []string{"swapBug", "dlBug"} {
		fmt.Printf("\n== %s (16 ranks) ==\n", bug)
		reg := trace.NewRegistry()
		collect := func(plan *faults.Plan) *trace.TraceSet {
			tr := parlot.NewTracerWith(parlot.MainImage, reg)
			res, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr})
			if err != nil {
				log.Fatal(err)
			}
			if res.Deadlocked {
				fmt.Println("(deadlock detected; traces truncated at the stall points)")
			}
			return tr.Collect()
		}
		normal := collect(nil)
		plan, err := faults.Named(bug)
		if err != nil {
			log.Fatal(err)
		}
		faulty := collect(plan)

		cfg := core.DefaultConfig()
		cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
		rep, err := core.DiffRun(normal, faulty, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("B-score: %.3f, top suspects: %s\n",
			rep.Threads.BScore, strings.Join(rep.Threads.TopSuspects(4, 1e-9), ", "))
		d, err := rep.DiffNLR(rep.Threads, "5.0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(d.Render(false))
	}
}
