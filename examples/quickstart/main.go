// Quickstart: the smallest end-to-end DiffTrace run.
//
// It executes the paper's odd/even sort twice inside this process — once
// fault-free and once with swapBug (§II-G) — collects ParLOT traces from
// both, diffs them through the pipeline, and prints the suspect ranking
// plus the diffNLR view of the flagged trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func main() {
	// 1. Trace two executions. They share one function-name registry so
	//    that IDs (and later loop IDs) line up.
	reg := trace.NewRegistry()
	collect := func(plan *faults.Plan) *trace.TraceSet {
		tracer := parlot.NewTracerWith(parlot.MainImage, reg)
		if _, err := oddeven.Run(oddeven.Config{
			Procs: 16, Seed: 5, Plan: plan, Tracer: tracer,
		}); err != nil {
			log.Fatal(err)
		}
		return tracer.Collect()
	}
	normal := collect(nil)
	swapBug, err := faults.Named("swapBug")
	if err != nil {
		log.Fatal(err)
	}
	faulty := collect(swapBug)
	fmt.Printf("normal: %s\nfaulty: %s\n\n", normal, faulty)

	// 2. One pass through the DiffTrace loop: MPI filter, K=10 NLR,
	//    single-entry attributes with actual frequencies, ward linkage.
	cfg := core.DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	rep, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The ranking: which traces' similarity relations changed the most?
	fmt.Printf("B-score between the two runs' clusterings: %.3f\n", rep.Threads.BScore)
	fmt.Println("most suspicious traces:")
	for i, s := range rep.Threads.Suspects {
		if i >= 4 || s.Score <= 0 {
			break
		}
		fmt.Printf("  %d. trace %-5s (similarity-row change %.2f)\n", i+1, s.Name, s.Score)
	}

	// 4. Drill in with diffNLR on the top suspect: Figure 5.
	top := rep.Threads.Suspects[0].Name
	d, err := rep.DiffNLR(rep.Threads, top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(d.Render(false))
}
