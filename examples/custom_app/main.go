// Instrumenting your own application.
//
// This example shows the adoption path for code that is not one of the
// bundled miniapps: wrap your functions with ParLOT Enter/Exit hooks (the
// source-level stand-in for Pin), run a working and a broken build of the
// same program, and hand both trace sets to the pipeline.
//
// The "application" here is a tiny producer/consumer job: rank 0 produces
// work items, the other ranks consume them in a polling loop. The broken
// build drops every third acknowledgement in consumer rank 2 — no crash,
// no hang, just a changed loop structure that diffNLR exposes.
//
//	go run ./examples/custom_app
package main

import (
	"fmt"
	"log"
	"os"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/mpi"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

const (
	ranks = 6
	items = 12 // work items per consumer
)

// produceConsume is "the user's program". buggy enables the injected
// regression (rank 2 drops every 3rd ack).
func produceConsume(tracer *parlot.Tracer, buggy bool) error {
	return mpi.Run(ranks, 64, tracer, func(r *mpi.Rank) error {
		th := tracer.Thread(trace.TID(r.UntracedRank(), 0))
		defer th.Fn("main")()
		r.Init()
		me := r.Rank()
		r.Size()

		if me == 0 { // producer
			defer th.Fn("producer")()
			for c := 1; c < ranks; c++ {
				for i := 0; i < items; i++ {
					th.Call("makeItem", func() {})
					if err := r.Send(c, i, []float64{float64(i)}); err != nil {
						return err
					}
				}
			}
			// Collect acks until every consumer said goodbye.
			defer th.Fn("collectAcks")()
			for c := 1; c < ranks; c++ {
				for {
					ack, err := r.Recv(c, 1000)
					if err != nil {
						return err
					}
					if ack[0] < 0 { // goodbye
						break
					}
				}
			}
			return r.Finalize()
		}

		// consumer
		defer th.Fn("consumer")()
		for i := 0; i < items; i++ {
			got, err := r.Recv(0, i)
			if err != nil {
				return err
			}
			th.Call("processItem", func() { _ = got[0] * 2 })
			dropAck := buggy && me == 2 && i%3 == 2
			if !dropAck {
				th.Call("sendAck", func() {})
				if err := r.Send(0, 1000, []float64{float64(i)}); err != nil {
					return err
				}
			}
		}
		if err := r.Send(0, 1000, []float64{-1}); err != nil { // goodbye
			return err
		}
		return r.Finalize()
	})
}

func main() {
	// One shared registry across both builds' traces, as always.
	reg := trace.NewRegistry()
	collect := func(buggy bool) *trace.TraceSet {
		tracer := parlot.NewTracerWith(parlot.MainImage, reg)
		if err := produceConsume(tracer, buggy); err != nil {
			log.Fatal(err)
		}
		return tracer.Collect()
	}
	normal := collect(false)
	faulty := collect(true)

	// Analyze with an everything-filter (custom apps rarely need Table I's
	// MPI-specific rows) and frequency-sensitive attributes.
	flt := core.DefaultConfig().Filter
	flt.Keep = nil // keep every function of this app
	rep, err := core.DiffRun(normal, faulty, core.Config{
		Filter:  flt,
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.Actual},
		Linkage: cluster.Ward,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(rep.Summary())
	fmt.Println()
	if err := rep.WriteReport(os.Stdout, core.RenderOptions{TopK: 1}); err != nil {
		log.Fatal(err)
	}
}
