// Deadlock triage: the full toolbox on one hang.
//
// The §II-G dlBug deadlock is analyzed four ways, showing what each layer
// contributes:
//
//  1. a STAT-style prefix tree of final stacks (the classic triage — and
//     why it is not enough here: all victims share one stack);
//  2. the communication-matrix diff (which sender/receiver pairs changed);
//  3. the NLR-based relative-progress ranking (the least-progressed task
//     is the root cause);
//  4. DiffTrace's diffNLR of that task (what it did differently).
//
// Along the way the run's logical clocks are validated and summarized —
// the OTF2-style timestamping of the paper's future work.
//
//	go run ./examples/deadlock_triage
package main

import (
	"fmt"
	"log"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/commpat"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/stat"
	"difftrace/internal/trace"
)

const procs = 16

func main() {
	reg := trace.NewRegistry()
	collect := func(plan *faults.Plan) (*trace.TraceSet, *otf.Log) {
		tracer := parlot.NewTracerWith(parlot.MainImage, reg)
		clock := otf.NewLog(procs)
		res, err := oddeven.Run(oddeven.Config{
			Procs: procs, Seed: 5, Plan: plan, Tracer: tracer, Clock: clock,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Deadlocked {
			fmt.Println("(deadlock detected; job aborted, traces truncated)")
			fmt.Println("runtime witness — what each rank was blocked in:")
			for _, wline := range res.Witness {
				fmt.Println(" ", wline)
			}
		}
		if err := clock.Validate(); err != nil {
			log.Fatal(err)
		}
		return tracer.Collect(), clock
	}

	fmt.Println("== running normal and faulty (dlBug) executions ==")
	normal, normalClock := collect(nil)
	plan, err := faults.Named("dlBug")
	if err != nil {
		log.Fatal(err)
	}
	faulty, faultyClock := collect(plan)

	fmt.Printf("\ncritical path (Lamport): normal %d, faulty %d\n",
		normalClock.CriticalPathLength(), faultyClock.CriticalPathLength())

	fmt.Println("\n== 1. STAT-style stack equivalence classes (faulty run) ==")
	tree := stat.Build(faulty)
	fmt.Print(tree.Render())
	fmt.Println("note: rank 5 is indistinguishable from the cascade victims here.")

	fmt.Println("\n== 2. communication-matrix diff (normal vs faulty) ==")
	mn := commpat.FromLog(normalClock)
	mf := commpat.FromLog(faultyClock)
	fmt.Printf("normal pattern: %v\n", commpat.Classify(mn)[0].Pattern)
	d, err := commpat.Diff(mn, mf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("most-changed sender->receiver pairs: ")
	for i, p := range d.HotPairs(4) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(p)
	}
	fmt.Println()

	fmt.Println("\n== 3. relative progress (least progressed first) ==")
	flt := filter.New(filter.MPIAll)
	pa := progress.Analyze(flt.ApplySet(normal), flt.ApplySet(faulty), 10)
	fmt.Print(pa.Render())
	culprit := pa.LeastProgressed(1)[0]
	fmt.Printf("root-cause candidate: rank %d\n", culprit.Process)

	fmt.Println("\n== 4. diffNLR of the least-progressed task ==")
	cfg := core.DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	rep, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dn, err := rep.DiffNLR(rep.Threads, culprit.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dn.Render(false))
}
