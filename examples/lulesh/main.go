// The §V example: the LULESH2 proxy — trace statistics of a fault-free run
// (distinct functions, compressed footprint, NLR reduction at K=10 vs
// K=50), then the injected rank-2 LagrangeLeapFrog fault and its Table IX
// ranking table.
//
//	go run ./examples/lulesh
package main

import (
	"fmt"
	"log"

	"difftrace/internal/apps/lulesh"
	"difftrace/internal/cluster"
	"difftrace/internal/faults"
	"difftrace/internal/nlr"
	"difftrace/internal/parlot"
	"difftrace/internal/rank"
	"difftrace/internal/trace"
)

func main() {
	// ---- §V statistics on a fault-free run -----------------------------
	reg := trace.NewRegistry()
	tracer := parlot.NewTracerWith(parlot.MainImage, reg)
	if _, err := lulesh.Run(lulesh.Config{
		Procs: 8, Threads: 4, EdgeElems: 10, Regions: 11, Cycles: 2, Tracer: tracer,
	}); err != nil {
		log.Fatal(err)
	}
	set := tracer.Collect()
	procs := set.Processes()
	calls := 0
	for _, p := range procs {
		calls += len(set.ProcessTrace(p).Calls())
	}
	fmt.Println("== LULESH proxy, fault-free (8 procs x 4 threads) ==")
	fmt.Printf("distinct functions:     %d\n", set.DistinctFuncs())
	fmt.Printf("calls per process:      %d\n", calls/len(procs))
	fmt.Printf("compressed per thread:  %.2f KB\n",
		float64(tracer.CompressedBytes())/float64(len(set.Traces))/1024)

	for _, k := range []int{10, 50} {
		tbl := nlr.NewTable()
		total := 0.0
		for _, p := range procs {
			tr := set.ProcessTrace(p)
			elems := nlr.SummarizeTrace(onlyCalls(tr), set.Registry, k, tbl)
			total += nlr.Reduction(len(tr.Calls()), elems)
		}
		fmt.Printf("NLR reduction (K=%2d):   %.2fx\n", k, total/float64(len(procs)))
	}

	// ---- §V fault: rank 2 skips LagrangeLeapFrog ------------------------
	fmt.Println("\n== injected fault: rank 2 never calls LagrangeLeapFrog ==")
	reg2 := trace.NewRegistry()
	collect := func(plan *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg2)
		res, err := lulesh.Run(lulesh.Config{
			Procs: 8, Threads: 4, EdgeElems: 6, Regions: 11, Cycles: 2,
			Plan: plan, Tracer: tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %-14v deadlocked=%v\n", plan, res.Deadlocked)
		return tr.Collect()
	}
	normal := collect(nil)
	plan, err := faults.Named("skipLeapFrog")
	if err != nil {
		log.Fatal(err)
	}
	faulty := collect(plan)

	tbl, err := rank.Sweep(normal, faulty, rank.Request{
		Specs:   []string{"11.1K10", "01.1K10"},
		Linkage: cluster.Ward,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable IX-style ranking:\n%s", tbl.Render())

	// The diffNLRs show where each process stopped making progress.
	best := tbl.Rows[0]
	for _, name := range []string{"2", "3"} {
		d, err := best.Report.DiffNLR(best.Report.Processes, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndiffNLR(%s) verdict: %s\n", name, d.Verdict())
	}
}

// onlyCalls strips return events so the NLR statistics match the paper's
// call-sequence counting.
func onlyCalls(tr *trace.Trace) *trace.Trace {
	out := &trace.Trace{ID: tr.ID, Truncated: tr.Truncated}
	for _, c := range tr.Calls() {
		out.Append(c, trace.Enter)
	}
	return out
}
