// The §IV case study: ILCS running a TSP 2-opt search with an injected
// bug, analyzed by a full ranking-table sweep.
//
//	go run ./examples/ilcs_tsp               # default: ompBug (§IV-B)
//	go run ./examples/ilcs_tsp -fault wrongSize
//	go run ./examples/ilcs_tsp -fault wrongOp
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/cluster"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/rank"
	"difftrace/internal/trace"
)

func main() {
	faultName := flag.String("fault", "ompBug", "ompBug | wrongSize | wrongOp")
	flag.Parse()

	plan, err := faults.Named(*faultName)
	if err != nil {
		log.Fatal(err)
	}
	if plan == nil {
		log.Fatal("pick a fault; a fault-free diff is empty")
	}

	// Run ILCS-TSP twice: 8 MPI processes × 4 OpenMP workers, real 2-opt.
	reg := trace.NewRegistry()
	collect := func(p *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		res, err := ilcs.Run(ilcs.Config{
			Procs: 8, Workers: 4, Cities: 12, Seed: 11,
			StableRounds: 2, MaxRounds: 10, Plan: p, Tracer: tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %-28s champion=%.2f deadlocked=%v\n", p, res.Champion, res.Deadlocked)
		return tr.Collect()
	}
	normal := collect(nil)
	faulty := collect(plan)

	// The paper's parameter sweep: filter specs × all six attribute
	// configurations, ward linkage, sorted by B-score.
	specs := map[string][]string{
		"ompBug":    {"11.plt.mem.cust.0K10", "01.plt.mem.cust.0K10", "11.mem.ompcrit.cust.0K10", "01.mem.ompcrit.cust.0K10"},
		"wrongSize": {"11.mpi.cust.0K10", "11.mpiall.cust.0K10", "11.mpicol.cust.0K10", "01.mpicol.cust.0K10"},
		"wrongOp":   {"11.plt.cust.0K10", "01.plt.cust.0K10", "11.mpi.cust.0K10", "11.mpicol.cust.0K10"},
	}[*faultName]

	tbl, err := rank.Sweep(normal, faulty, rank.Request{
		Specs:          specs,
		CustomPatterns: []string{"^CPU_"},
		Linkage:        cluster.Ward,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nranking table (%s):\n%s\n", *faultName, tbl.Render())

	cons := tbl.Consensus(false)
	if len(cons) > 0 {
		fmt.Printf("thread consensus: %s ranked first in %d rows\n",
			cons[0].Name, cons[0].RankedFirst)
		// Drill into the consensus suspect with the best-scoring row that
		// flags it (Figure 7a-style view).
		for _, row := range tbl.Rows {
			if len(row.TopThreads) == 0 || row.TopThreads[0] != cons[0].Name {
				continue
			}
			d, err := row.Report.DiffNLR(row.Report.Threads, cons[0].Name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\ndiffNLR(%s) under %s / %s:\n", cons[0].Name, row.Spec, row.Attr)
			fmt.Print(d.Render(false))
			break
		}
	}
	_ = strings.TrimSpace("")
}
