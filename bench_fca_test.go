// FCA representation benchmarks: the bitset engine (internal/fca) against
// the frozen map-based reference (internal/fca/reftest) on the same
// contexts. `make bench-fca` runs these and regenerates the BENCH_fca.json
// baseline via cmd/benchjson; the headline number is the
// BenchmarkFCA_Godin impl=bitset vs impl=mapref ratio on the LULESH-scale
// synthetic fixture (88 objects — the §V geometry synthSets builds).
package difftrace_test

import (
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/fca"
	"difftrace/internal/fca/reftest"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

// fcaBench is one workload in both representations: per-object attribute
// sets as bitsets over a shared interner (the production shape) and as the
// reference string-map sets.
type fcaBench struct {
	names []string
	bit   map[string]fca.AttrSet
	ref   map[string]reftest.Set
}

// fcaBenchLoad extracts attributes from a trace set and materializes both
// representations. maxObjs truncates the object list for workloads where
// the reference implementation's cost would dwarf the benchtime budget
// (Ganter's closure count grows with objects × attributes).
func fcaBenchLoad(b *testing.B, set *trace.TraceSet, cfg attr.Config, maxObjs int) fcaBench {
	b.Helper()
	sums := nlr.SummarizeSet(set, 10, nlr.NewTable())
	byName := map[string][]nlr.Element{}
	names := make([]string, 0, len(sums))
	for id, elems := range sums {
		byName[id.String()] = elems
		names = append(names, id.String())
	}
	// Deterministic object order → deterministic interner IDs.
	sortNatural(names)
	if maxObjs > 0 && len(names) > maxObjs {
		names = names[:maxObjs]
	}
	in := fca.NewInterner()
	w := fcaBench{names: names, bit: map[string]fca.AttrSet{}, ref: map[string]reftest.Set{}}
	for _, n := range names {
		w.bit[n] = attr.ExtractIn(in, byName[n], cfg)
		w.ref[n] = reftest.New(w.bit[n].Sorted()...)
	}
	return w
}

func sortNatural(names []string) {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && jaccard.LessNatural(names[j], names[j-1]); j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
}

// fcaLULESHScale is the LULESH-scale fixture: all 88 synthetic objects with
// single-entry attributes and actual frequencies (~600-attribute universe,
// ~14k concepts) — the wide, noisy shape where per-step hashing dominated
// the map implementation.
func fcaLULESHScale(b *testing.B, maxObjs int) fcaBench {
	return fcaBenchLoad(b, filter.Everything().ApplySet(synthSets(b).normal),
		attr.Config{Kind: attr.Single, Freq: attr.Actual}, maxObjs)
}

// BenchmarkFCA_Godin builds the full incremental lattice over the
// LULESH-scale fixture in both representations — the headline speedup of
// the bitset rewrite.
func BenchmarkFCA_Godin(b *testing.B) {
	w := fcaLULESHScale(b, 0)
	b.Run("impl=bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := fca.NewLattice()
			for _, n := range w.names {
				l.AddObject(n, w.bit[n])
			}
			if l.Size() == 0 {
				b.Fatal("empty lattice")
			}
		}
	})
	b.Run("impl=mapref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := reftest.NewLattice()
			for _, n := range w.names {
				l.AddObject(n, w.ref[n])
			}
			if l.Size() == 0 {
				b.Fatal("empty lattice")
			}
		}
	})
}

// BenchmarkFCA_Ganter runs NextClosure over a 22-object slice of the same
// fixture (Ganter's closure count explodes with the full 88-object
// universe, which is the §III-B point — Godin above handles what Ganter
// cannot).
func BenchmarkFCA_Ganter(b *testing.B) {
	w := fcaLULESHScale(b, 22)
	b.Run("impl=bitset", func(b *testing.B) {
		ctx := fca.NewContext()
		for _, n := range w.names {
			ctx.AddObject(n, w.bit[n])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(fca.NextClosure(ctx)) == 0 {
				b.Fatal("no concepts")
			}
		}
	})
	b.Run("impl=mapref", func(b *testing.B) {
		ctx := reftest.NewContext()
		for _, n := range w.names {
			ctx.AddObject(n, w.ref[n])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(reftest.NextClosure(ctx)) == 0 {
				b.Fatal("no concepts")
			}
		}
	})
}

// BenchmarkFCA_Edges compares the levelwise Hasse cover search against the
// reference's O(n³) all-triples scan, on the ~1600-concept lattice of a
// 32-object slice of the fixture (the cubic reference makes the full 14k
// concepts unbenchmarkable — itself the point).
func BenchmarkFCA_Edges(b *testing.B) {
	w := fcaLULESHScale(b, 32)
	b.Run("impl=bitset", func(b *testing.B) {
		l := fca.NewLattice()
		for _, n := range w.names {
			l.AddObject(n, w.bit[n])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(l.Edges()) == 0 {
				b.Fatal("no edges")
			}
		}
	})
	b.Run("impl=mapref", func(b *testing.B) {
		l := reftest.NewLattice()
		for _, n := range w.names {
			l.AddObject(n, w.ref[n])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(l.Edges()) == 0 {
				b.Fatal("no edges")
			}
		}
	})
}
