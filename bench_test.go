// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact each iteration), plus ablation
// benchmarks for the design choices DESIGN.md calls out. Workload traces
// are collected once per process in lazy setup so the benchmarks time the
// *analysis*, not the trace collection — except the collection benchmarks,
// which time exactly that.
//
//	go test -bench=. -benchmem
package difftrace_test

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/apps/lulesh"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/automaded"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/experiments"
	"difftrace/internal/faults"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/mpi"
	"difftrace/internal/nlr"
	"difftrace/internal/obs"
	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/rank"
	"difftrace/internal/stat"
	"difftrace/internal/synth"
	"difftrace/internal/trace"
)

// ---- lazy shared workloads ----------------------------------------------

type tracePair struct {
	normal, faulty *trace.TraceSet
}

var (
	onceOddEven sync.Once
	oddEvenPair tracePair
	onceILCS    sync.Once
	ilcsPairs   map[string]tracePair
	onceLULESH  sync.Once
	luleshPair  tracePair
	onceSynth   sync.Once
	synthPair   tracePair
)

func oddEvenSets(b *testing.B) tracePair {
	b.Helper()
	onceOddEven.Do(func() {
		reg := trace.NewRegistry()
		run := func(p *faults.Plan) *trace.TraceSet {
			tr := parlot.NewTracerWith(parlot.MainImage, reg)
			if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: p, Tracer: tr}); err != nil {
				b.Fatal(err)
			}
			return tr.Collect()
		}
		swap, _ := faults.Named("swapBug")
		oddEvenPair = tracePair{normal: run(nil), faulty: run(swap)}
	})
	return oddEvenPair
}

func ilcsSets(b *testing.B, fault string) tracePair {
	b.Helper()
	onceILCS.Do(func() {
		ilcsPairs = map[string]tracePair{}
		reg := trace.NewRegistry()
		run := func(p *faults.Plan) *trace.TraceSet {
			tr := parlot.NewTracerWith(parlot.MainImage, reg)
			if _, err := ilcs.Run(ilcs.Config{
				Procs: 8, Workers: 4, Cities: 12, Seed: 11,
				StableRounds: 2, MaxRounds: 10, Plan: p, Tracer: tr,
			}); err != nil {
				b.Fatal(err)
			}
			return tr.Collect()
		}
		normal := run(nil)
		for _, f := range []string{"ompBug", "wrongSize", "wrongOp"} {
			plan, _ := faults.Named(f)
			ilcsPairs[f] = tracePair{normal: normal, faulty: run(plan)}
		}
	})
	return ilcsPairs[fault]
}

func luleshSets(b *testing.B) tracePair {
	b.Helper()
	onceLULESH.Do(func() {
		reg := trace.NewRegistry()
		run := func(p *faults.Plan) *trace.TraceSet {
			tr := parlot.NewTracerWith(parlot.MainImage, reg)
			if _, err := lulesh.Run(lulesh.Config{
				Procs: 8, Threads: 4, EdgeElems: 6, Regions: 11, Cycles: 2,
				Plan: p, Tracer: tr,
			}); err != nil {
				b.Fatal(err)
			}
			return tr.Collect()
		}
		skip, _ := faults.Named("skipLeapFrog")
		luleshPair = tracePair{normal: run(nil), faulty: run(skip)}
	})
	return luleshPair
}

// synthSets builds the LULESH-scale synthetic pair: 8 processes × 11
// threads per side (the §V geometry) of loop-nest traces with per-thread
// noise seeds. The faulty side perturbs process 5 — longer second loop,
// noisier bodies, and one truncated thread — so the diff pipeline has real
// work at both levels.
func synthSets(b *testing.B) tracePair {
	b.Helper()
	onceSynth.Do(func() {
		reg := trace.NewRegistry()
		build := func(faulty bool) *trace.TraceSet {
			set := trace.NewTraceSetWith(reg)
			for p := 0; p < 8; p++ {
				for t := 0; t < 11; t++ {
					cfg := synth.Config{
						Prologue: 3, Epilogue: 2,
						Loops: []synth.LoopSpec{
							{Body: 6, Iterations: 40, Nested: &synth.LoopSpec{Body: 3, Iterations: 8}},
							{Body: 4, Iterations: 60},
						},
						NoiseRate: 0.02, NoisePool: 24,
						Seed: int64(1000*p + t),
					}
					if faulty && p == 5 {
						cfg.Loops[1].Iterations = 90
						cfg.NoiseRate = 0.10
						if t == 3 {
							cfg.TruncateAfter = 400
						}
					}
					synth.Generate(set, trace.TID(p, t), cfg)
				}
			}
			return set
		}
		synthPair = tracePair{normal: build(false), faulty: build(true)}
	})
	return synthPair
}

// ---- per-table / per-figure benchmarks ----------------------------------

// BenchmarkTableII_TraceCollection times the Table II workload end to end:
// running the 4-rank odd/even sort under the tracing substrate.
func BenchmarkTableII_TraceCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := parlot.NewTracer(parlot.MainImage)
		if _, err := oddeven.Run(oddeven.Config{Procs: 4, Seed: 5, Tracer: tr}); err != nil {
			b.Fatal(err)
		}
		if tr.Collect().TotalEvents() == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkTableIII_NLR times the NLR summarization of Table III.
func BenchmarkTableIII_NLR(b *testing.B) {
	pair := oddEvenSets(b)
	set := filter.New(filter.MPIAll).ApplySet(pair.normal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nlr.SummarizeSet(set, 10, nlr.NewTable())
	}
}

// BenchmarkFig3_Lattice times incremental concept-lattice construction on
// the Table IV context.
func BenchmarkFig3_Lattice(b *testing.B) {
	pair := oddEvenSets(b)
	set := filter.New(filter.MPIAll).ApplySet(pair.normal)
	sums := nlr.SummarizeSet(set, 10, nlr.NewTable())
	cfg := attr.Config{Kind: attr.Single, Freq: attr.NoFreq}
	in := attr.NewInterner() // shared IDs: lattice runs on the popcount fast path
	attrs := map[string]fca.AttrSet{}
	for id, elems := range sums {
		attrs[id.String()] = attr.ExtractIn(in, elems, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := fca.NewLattice()
		for name, a := range attrs {
			l.AddObject(name, a)
		}
		if l.Size() == 0 {
			b.Fatal("empty lattice")
		}
	}
}

// BenchmarkFig4_JSM times the pairwise Jaccard matrix of Figure 4: the
// paper's 16-rank odd/even context, plus a worker sweep over the
// LULESH-scale synthetic context (88 objects) exercising the row-block
// parallel construction.
func BenchmarkFig4_JSM(b *testing.B) {
	buildAttrs := func(set *trace.TraceSet, cfg attr.Config) map[string]fca.AttrSet {
		sums := nlr.SummarizeSet(set, 10, nlr.NewTable())
		in := attr.NewInterner() // shared IDs: JSM cells are popcounts
		attrs := map[string]fca.AttrSet{}
		for id, elems := range sums {
			attrs[id.String()] = attr.ExtractIn(in, elems, cfg)
		}
		return attrs
	}

	pair := oddEvenSets(b)
	attrs := buildAttrs(filter.New(filter.MPIAll).ApplySet(pair.normal),
		attr.Config{Kind: attr.Single, Freq: attr.NoFreq})
	b.Run("oddeven16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if jaccard.New(attrs).Size() == 0 {
				b.Fatal("empty JSM")
			}
		}
	})

	sp := synthSets(b)
	sattrs := buildAttrs(filter.Everything().ApplySet(sp.normal),
		attr.Config{Kind: attr.Double, Freq: attr.Actual})
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run("synth88/"+benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if jaccard.NewParallel(sattrs, w).Size() == 0 {
					b.Fatal("empty JSM")
				}
			}
		})
	}
}

// BenchmarkParallel_DiffRun sweeps the intra-run worker budget over the
// whole pipeline on the LULESH-scale synthetic pair — the headline
// measurement for the bounded worker pool (paper future-work item 1).
// Results are byte-identical across the sweep; only the wall clock moves.
func BenchmarkParallel_DiffRun(b *testing.B) {
	pair := synthSets(b)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(benchName("workers", w), func(b *testing.B) {
			cfg := core.Config{
				Filter:  filter.Everything(),
				Attr:    attr.Config{Kind: attr.Single, Freq: attr.Actual},
				Linkage: cluster.Ward,
				Workers: w,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.DiffRun(pair.normal, pair.faulty, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallel_DiffRunStages runs the same pipeline with observability
// enabled (Workers:8) and reports the per-stage wall-time breakdown as
// custom metrics — both the instrumented-path cost (compare its ns/op
// against BenchmarkParallel_DiffRun/workers=8) and where the time goes.
func BenchmarkParallel_DiffRunStages(b *testing.B) {
	pair := synthSets(b)
	b.Run(benchName("workers", 8), func(b *testing.B) {
		run := obs.NewRun("bench")
		cfg := core.Config{
			Filter:  filter.Everything(),
			Attr:    attr.Config{Kind: attr.Single, Freq: attr.Actual},
			Linkage: cluster.Ward,
			Workers: 8,
			Obs:     run,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.DiffRun(pair.normal, pair.faulty, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Report the top-level stage spans as per-op metrics alongside the
		// standard ns/op. Child spans ("summarize/<level>/<side>") overlap
		// their parent under concurrency, so only the roots are summed.
		groups := map[string]int64{}
		for _, st := range run.Manifest().Stages {
			if !strings.Contains(st.Path, "/") {
				groups[st.Path] += st.WallNs
			}
		}
		for _, top := range []string{"summarize", "analyze"} {
			b.ReportMetric(float64(groups[top])/float64(b.N), top+"-ns/op")
		}
	})
}

// BenchmarkFig5_DiffNLR times the full §II-G swapBug comparison (pipeline +
// diffNLR of the flagged trace).
func BenchmarkFig5_DiffNLR(b *testing.B) {
	pair := oddEvenSets(b)
	cfg := core.DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.DiffRun(pair.normal, pair.faulty, cfg)
		if err != nil {
			b.Fatal(err)
		}
		d, err := rep.DiffNLR(rep.Threads, "5.0")
		if err != nil || d.Identical() {
			b.Fatal("diffNLR failed")
		}
	}
}

// BenchmarkFig6_Deadlock times the dlBug run itself: the cost of detecting
// an actual deadlock and truncating 16 ranks' traces.
func BenchmarkFig6_Deadlock(b *testing.B) {
	plan, _ := faults.Named("dlBug")
	for i := 0; i < b.N; i++ {
		tr := parlot.NewTracer(parlot.MainImage)
		res, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr})
		if err != nil || !res.Deadlocked {
			b.Fatal("expected deadlock")
		}
	}
}

func benchRankingSweep(b *testing.B, pair tracePair, specs []string, custom []string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := rank.Sweep(pair.normal, pair.faulty, rank.Request{
			Specs:          specs,
			CustomPatterns: custom,
			Linkage:        cluster.Ward,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableVI_RankingOMP regenerates the §IV-B ranking table.
func BenchmarkTableVI_RankingOMP(b *testing.B) {
	pair := ilcsSets(b, "ompBug")
	benchRankingSweep(b, pair,
		[]string{"11.plt.mem.cust.0K10", "11.mem.ompcrit.cust.0K10"}, []string{"^CPU_"})
}

// BenchmarkTableVII_RankingDeadlock regenerates the §IV-C ranking table.
func BenchmarkTableVII_RankingDeadlock(b *testing.B) {
	pair := ilcsSets(b, "wrongSize")
	benchRankingSweep(b, pair,
		[]string{"11.mpi.cust.0K10", "11.mpicol.cust.0K10"}, []string{"^CPU_"})
}

// BenchmarkTableVIII_RankingWrongOp regenerates the §IV-D ranking table.
func BenchmarkTableVIII_RankingWrongOp(b *testing.B) {
	pair := ilcsSets(b, "wrongOp")
	benchRankingSweep(b, pair,
		[]string{"11.plt.cust.0K10", "11.mpi.cust.0K10"}, []string{"^CPU_"})
}

// BenchmarkTableIX_RankingLULESH regenerates the §V ranking table.
func BenchmarkTableIX_RankingLULESH(b *testing.B) {
	pair := luleshSets(b)
	benchRankingSweep(b, pair, []string{"11.1K10", "01.1K10"}, nil)
}

// BenchmarkFig7_DiffNLRs regenerates the three Figure 7 diffNLR views from
// precollected ILCS traces.
func BenchmarkFig7_DiffNLRs(b *testing.B) {
	pairA := ilcsSets(b, "ompBug")
	fltA, _ := filter.ParseSpec("11.mem.ompcrit.cust.0K10", "^CPU_")
	cfg := core.Config{Filter: fltA, Attr: attr.Config{Kind: attr.Single, Freq: attr.NoFreq}, Linkage: cluster.Ward}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.DiffRun(pairA.normal, pairA.faulty, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rep.DiffNLR(rep.Threads, "6.4"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLULESH_Stats times the §V statistics computation (NLR reduction
// at K=10 over the LULESH process traces).
func BenchmarkLULESH_Stats(b *testing.B) {
	pair := luleshSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := nlr.NewTable()
		for _, p := range pair.normal.Processes() {
			tr := pair.normal.ProcessTrace(p)
			nlr.SummarizeTrace(tr, pair.normal.Registry, 10, tbl)
		}
	}
}

// BenchmarkParLOT_Compression times the incremental compressor on a
// loop-dominated million-event stream (the [4] headline workload).
func BenchmarkParLOT_Compression(b *testing.B) {
	b.SetBytes(4 * 1_000_000)
	for i := 0; i < b.N; i++ {
		enc := parlot.NewEncoder(io.Discard)
		for j := 0; j < 1_000_000; j++ {
			enc.Encode(uint32(j % 6))
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperiment_TableII runs the full experiment harness path for one
// cheap experiment (artifact rendering included).
func BenchmarkExperiment_TableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		out, err := experiments.TableII(&buf)
		if err != nil || !out.Pass {
			b.Fatal(err, out)
		}
	}
}

// ---- ablation benchmarks --------------------------------------------------

// BenchmarkAblation_GodinVsNextClosure compares incremental (Godin) against
// batch (Ganter NextClosure) lattice construction on the same contexts —
// the §III-B design choice.
func BenchmarkAblation_GodinVsNextClosure(b *testing.B) {
	pair := ilcsSets(b, "ompBug")
	flt, _ := filter.ParseSpec("11.mem.ompcrit.cust.0K10", "^CPU_")
	set := flt.ApplySet(pair.normal)
	sums := nlr.SummarizeSet(set, 10, nlr.NewTable())
	cfg := attr.Config{Kind: attr.Double, Freq: attr.NoFreq}
	in := attr.NewInterner() // shared IDs for both construction strategies
	attrs := map[string]fca.AttrSet{}
	for id, elems := range sums {
		attrs[id.String()] = attr.ExtractIn(in, elems, cfg)
	}
	names := make([]string, 0, len(attrs))
	for n := range attrs {
		names = append(names, n)
	}

	b.Run("godin-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := fca.NewLattice()
			for _, n := range names {
				l.AddObject(n, attrs[n])
			}
		}
	})
	b.Run("ganter-nextclosure", func(b *testing.B) {
		ctx := fca.NewContext()
		for _, n := range names {
			ctx.AddObject(n, attrs[n])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(fca.NextClosure(ctx)) == 0 {
				b.Fatal("no concepts")
			}
		}
	})
}

// BenchmarkAblation_NLRK sweeps the NLR window constant (§V reports the
// K=10 vs K=50 trade-off).
func BenchmarkAblation_NLRK(b *testing.B) {
	pair := luleshSets(b)
	tr := pair.normal.ProcessTrace(0)
	for _, k := range []int{5, 10, 25, 50} {
		b.Run(benchName("K", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nlr.SummarizeTrace(tr, pair.normal.Registry, k, nlr.NewTable())
			}
		})
	}
}

// BenchmarkAblation_Linkage sweeps the seven linkage methods (§II-F knob 1).
func BenchmarkAblation_Linkage(b *testing.B) {
	pair := oddEvenSets(b)
	for _, m := range cluster.AllMethods() {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Linkage = m
			for i := 0; i < b.N; i++ {
				if _, err := core.DiffRun(pair.normal, pair.faulty, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Attributes sweeps the six Table V attribute configs
// (§II-F knob 2).
func BenchmarkAblation_Attributes(b *testing.B) {
	pair := oddEvenSets(b)
	for _, ac := range attr.AllConfigs() {
		ac := ac
		b.Run(ac.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Attr = ac
			for i := 0; i < b.N; i++ {
				if _, err := core.DiffRun(pair.normal, pair.faulty, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_JSMSource compares deriving the JSM directly from
// object intents against deriving it from the built concept lattice.
func BenchmarkAblation_JSMSource(b *testing.B) {
	pair := oddEvenSets(b)
	for _, lattices := range []bool{false, true} {
		name := "direct-intents"
		if lattices {
			name = "via-lattice"
		}
		lattices := lattices
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.BuildLattices = lattices
			for i := 0; i < b.N; i++ {
				if _, err := core.DiffRun(pair.normal, pair.faulty, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_STATvsDiffTrace compares the STAT-style prefix-tree
// baseline against the full DiffTrace pipeline on the same deadlocked
// traces (the §VI positioning: STAT is far cheaper but coarser).
func BenchmarkAblation_STATvsDiffTrace(b *testing.B) {
	reg := trace.NewRegistry()
	run := func(p *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: p, Tracer: tr}); err != nil {
			b.Fatal(err)
		}
		return tr.Collect()
	}
	normal := run(nil)
	plan, _ := faults.Named("dlBug")
	faulty := run(plan)

	b.Run("stat-prefix-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(stat.Build(faulty).Classes()) == 0 {
				b.Fatal("no classes")
			}
		}
	})
	b.Run("difftrace-pipeline", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
		for i := 0; i < b.N; i++ {
			if _, err := core.DiffRun(normal, faulty, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("progress-measure", func(b *testing.B) {
		flt := filter.New(filter.MPIAll)
		fn := flt.ApplySet(normal)
		ff := flt.ApplySet(faulty)
		for i := 0; i < b.N; i++ {
			if len(progress.Analyze(fn, ff, 10).Tasks) == 0 {
				b.Fatal("no tasks")
			}
		}
	})
}

// BenchmarkAblation_ParallelSweep measures the sequential vs parallel
// ranking sweep (paper future-work item 1).
func BenchmarkAblation_ParallelSweep(b *testing.B) {
	pair := oddEvenSets(b)
	req := rank.Request{
		Specs:   []string{"11.mpiall.0K10", "11.mpisr.0K10"},
		Linkage: cluster.Ward,
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rank.Sweep(pair.normal, pair.faulty, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		preq := req
		preq.Parallel = 4
		for i := 0; i < b.N; i++ {
			if _, err := rank.Sweep(pair.normal, pair.faulty, preq); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOTFClockOverhead measures the logical-clock recording cost on a
// clocked vs unclocked run (future-work item 2's overhead question).
func BenchmarkOTFClockOverhead(b *testing.B) {
	body := func(r *mpi.Rank) error {
		for i := 0; i < 50; i++ {
			if _, err := r.Allreduce([]float64{1}, mpi.SUM); err != nil {
				return err
			}
		}
		return r.Finalize()
	}
	b.Run("unclocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := mpi.Run(4, 16, nil, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := mpi.NewWorld(4, 16)
			w.AttachClock(otf.NewLog(4))
			if err := w.Run(nil, body); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScaling_NLRInputSize verifies the Θ(K²N) claim's N term: fixed
// K, growing synthetic traces.
func BenchmarkScaling_NLRInputSize(b *testing.B) {
	for _, n := range []int{1_000, 4_000, 16_000} {
		cfg := synth.Config{Loops: []synth.LoopSpec{{Body: 4, Iterations: n / 4}}}
		toks := synth.Tokens(cfg)
		b.Run(benchName("N", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nlr.Summarize(toks, 10, nlr.NewTable())
			}
		})
	}
}

// BenchmarkScaling_CompressorNoise measures compression throughput and
// ratio across loop-regularity levels (noise breaks the FCM predictor).
func BenchmarkScaling_CompressorNoise(b *testing.B) {
	for _, noise := range []int{0, 10, 30} {
		cfg := synth.Config{
			Loops:     []synth.LoopSpec{{Body: 6, Iterations: 20_000}},
			NoiseRate: float64(noise) / 100, NoisePool: 32, Seed: 7,
		}
		set := trace.NewTraceSet()
		tr := synth.Generate(set, trace.TID(0, 0), cfg)
		b.Run(benchName("noisePct", noise), func(b *testing.B) {
			b.SetBytes(int64(4 * tr.Len()))
			for i := 0; i < b.N; i++ {
				enc := parlot.NewEncoder(io.Discard)
				for _, e := range tr.Events {
					enc.Encode(e.Func)
				}
				if err := enc.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_AutomaDeDVsDiffTrace compares the single-run
// semi-Markov baseline against the relative pipeline on the same traces
// (§VI positioning: AutomaDeD needs no reference run but sees less).
func BenchmarkAblation_AutomaDeDVsDiffTrace(b *testing.B) {
	pair := oddEvenSets(b)
	flt := filter.New(filter.MPIAll)
	faultySet := flt.ApplySet(pair.faulty)
	b.Run("automaded-single-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(automaded.Analyze(faultySet).Tasks) == 0 {
				b.Fatal("no tasks")
			}
		}
	})
	b.Run("difftrace-relative", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
		for i := 0; i < b.N; i++ {
			if _, err := core.DiffRun(pair.normal, pair.faulty, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
