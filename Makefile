# Development targets. `make check` is the full gate: vet, build, the race
# suite, and a replay of the corrupt-input fuzz seed corpora.
GO ?= go

.PHONY: all build vet test race fuzz-seeds fuzz check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short skips the experiment shape checks: their OMP consensus rankings are
# scheduling-sensitive and the race detector perturbs goroutine timing enough
# to flip them (they run, unraced, in the `test` target).
race:
	$(GO) test -race -short ./...

# Replay the checked-in fuzz seeds (corrupt/truncated trace corpora) as
# regular tests — no fuzzing engine, deterministic, fast.
fuzz-seeds:
	$(GO) test -run='^Fuzz' ./internal/trace ./internal/parlot

# Short live fuzzing session over the trace readers.
fuzz:
	$(GO) test -fuzz=FuzzReadSetText -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzReadSetBinary -fuzztime=30s ./internal/parlot

check: vet build test race fuzz-seeds
