# Development targets. `make check` is the full gate: vet, build, the race
# suite, the parallel-determinism differential suite, and a replay of the
# corrupt-input fuzz seed corpora.
GO ?= go

.PHONY: all build vet lint test race determinism bench bench-fca bench-obs bench-streaming bench-lint memceiling profile fuzz-seeds fuzz check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis: difftracelint loads and type-checks
# every package in the module and proves the determinism/panic/concurrency
# discipline at compile time (see DESIGN.md §9 and §14). Exits non-zero on
# any unsuppressed diagnostic, including malformed //lint:allow directives.
# .lintcache persists the interprocedural summary layer between runs, keyed
# on each package's source hash — a no-change rerun skips the summary walk.
lint:
	$(GO) run ./cmd/difftracelint -summary-cache .lintcache ./...

test:
	$(GO) test ./...

# -short skips the experiment shape checks: their OMP consensus rankings are
# scheduling-sensitive and the race detector perturbs goroutine timing enough
# to flip them (they run, unraced, in the `test` target).
race:
	$(GO) test -race -short ./...

# Differential suite for the intra-run worker pool: every parallel path
# must produce the byte-identical report of the sequential one, under the
# race detector, twice (-count=2 defeats test caching and catches
# order-dependent state). -short skips the slowest workload replays, same
# as the race target. The root package carries the golden lattice suite
# (byte-identical Render/Concepts/Edges across worker counts and across
# the bitset FCA rewrite).
determinism:
	$(GO) test -race -short -count=2 \
		-run 'Determinism|Workers|ParallelMatchesSequential|Ghost|Divergence|Query' \
		./internal/core ./internal/jaccard ./internal/rank ./internal/obs \
		./internal/experiments ./internal/resilience/chaos ./internal/service \
		./internal/query ./internal/diffnlr \
		./cmd/difftrace .

# Worker-sweep benchmarks; regenerates the BENCH_parallel.json baseline.
# On a single-CPU host the sweep measures overhead, not speedup (the JSON
# notes which); on multicore expect >=2x at workers=4. benchjson refuses to
# shrink an existing baseline (interrupted run, narrower regex); pass
# BENCHJSON_FLAGS=-force to override.
bench: bench-fca
	$(GO) test -run '^$$' -bench 'BenchmarkParallel_DiffRun|BenchmarkFig4_JSM' \
		-benchmem -benchtime=3x . | tee /dev/stderr | $(GO) run ./cmd/benchjson \
		-out BENCH_parallel.json $(BENCHJSON_FLAGS)

# FCA representation benchmarks: bitset engine vs the frozen map-based
# reference (internal/fca/reftest) on the same contexts; regenerates the
# BENCH_fca.json baseline. The impl=bitset / impl=mapref ratio on
# BenchmarkFCA_Godin is the headline number of the bitset rewrite.
bench-fca:
	$(GO) test -run '^$$' -bench 'BenchmarkFCA_' \
		-benchmem -benchtime=3x -timeout 1200s . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_fca.json $(BENCHJSON_FLAGS)

# Profile run: CPU-profile the Fig4-scale synthetic pipeline benchmark, then
# drive the CLI over a generated oddeven pair with -manifest and -metrics.
# Artifacts land in ./profiles/ (pprof profile, test binary for symbolized
# `go tool pprof`, trace pair, run manifest).
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkParallel_DiffRun$$' -benchtime=3x \
		-cpuprofile profiles/cpu.pprof -o profiles/difftrace.test .
	$(GO) run ./cmd/tracegen -app oddeven -procs 16 -o profiles/normal.trace
	$(GO) run ./cmd/tracegen -app oddeven -procs 16 -fault swapBug -o profiles/faulty.trace
	$(GO) run ./cmd/difftrace -normal profiles/normal.trace -faulty profiles/faulty.trace \
		-manifest profiles/manifest.json -metrics > /dev/null
	@echo "profiles/: cpu.pprof (inspect with '$(GO) tool pprof profiles/difftrace.test profiles/cpu.pprof'), manifest.json"

# Replay the checked-in fuzz seeds (corrupt/truncated trace corpora, plus
# the bitset-vs-map AttrSet equivalence scripts) as regular tests — no
# fuzzing engine, deterministic, fast.
fuzz-seeds:
	$(GO) test -run='^Fuzz' ./internal/trace ./internal/parlot ./internal/nlr ./internal/fca/reftest ./internal/diffnlr

# Short live fuzzing session over the trace readers, the streaming
# equivalence targets (streaming reader vs batch reader, streaming NLR vs
# batch NLR), and the divergence alignment walk.
fuzz:
	$(GO) test -fuzz=FuzzReadSetText -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzReadSetBinary -fuzztime=30s ./internal/parlot
	$(GO) test -fuzz=FuzzStreamReader -fuzztime=30s ./internal/parlot
	$(GO) test -fuzz=FuzzStreamSummarize -fuzztime=30s ./internal/nlr
	$(GO) test -fuzz=FuzzFindDivergence -fuzztime=30s ./internal/diffnlr

# Telemetry overhead benchmark: the fully-instrumented job path (obs.Run,
# trace ID, live Progress, heap sampler, JSON logger) vs the telemetry-nil
# pipeline on the BenchmarkParallel_DiffRun workload; regenerates the
# BENCH_obs.json baseline. The acceptance bar is telemetry=on within 3% of
# telemetry=nil wall time (use -benchtime=10x for a stable ratio; 3x is
# the quick CI-sized run).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead_' \
		-benchmem -benchtime=5x -timeout 1200s . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_obs.json $(BENCHJSON_FLAGS)

# Streaming-vs-batch benchmark on the same PLOT1 bytes; regenerates the
# BENCH_streaming.json baseline. The headline numbers are peak-heap-MiB
# (batch materializes the expansion, streaming re-decodes per round) and
# the wall-time delta the differential suite proves buys identical output.
bench-streaming:
	$(GO) test -run '^$$' -bench 'BenchmarkStreaming_' \
		-benchmem -benchtime=3x -timeout 1200s . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_streaming.json $(BENCHJSON_FLAGS)

# Lint-driver worker sweep over the full module (load once, then the check
# fan-out at workers=1/2/4/8); regenerates the BENCH_lint.json baseline.
# workers=1 is the pre-parallel driver, workers=GOMAXPROCS is what `make
# lint` runs; the self-check proves every count emits identical output.
bench-lint:
	$(GO) test -run '^$$' -bench 'BenchmarkLint_' \
		-benchtime=3x -timeout 1200s ./internal/lint/checks | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_lint.json $(BENCHJSON_FLAGS)

# Streaming memory-ceiling proof: a 24M-event pair whose expansion is >=20x
# the 8 MiB heap budget must analyze without the live heap ever crossing
# it. Skipped under -short; CI runs it in its own job.
memceiling:
	$(GO) test -run 'TestStreamingMemoryCeiling' -count=1 -v -timeout 600s .

check: vet build lint test race determinism fuzz-seeds memceiling
