// Golden divergence tests: the divergence explorer's rendered reports over
// the checked-in fixture pairs must stay byte-identical to the goldens,
// across Workers 1 vs 8, and across the batch vs streaming ingest modes.
// Each fixture carries a known injected fault, and the goldens pin that
// the explorer names its exact function and event index:
//
//   - figure3: hand-written Figure 3-style exchange; proc 2 hangs after 3
//     of 6 send/recv iterations → loop-count at MPI_Send, event 9.
//   - ilcs: tracegen ILCS with ompBug (OmitCritical on p6) → mutation at
//     GOMP_critical_start on thread 6.4.
//   - lulesh: tracegen LULESH with skipLeapFrog (SkipFunction on p2) →
//     mutation at LagrangeLeapFrog on thread 2.0, with the deadlock
//     cascade visible across the other ranks.
//
// Regenerate (only when an output change is intended) with
// UPDATE_GOLDEN=1 go test -run GoldenDivergence .
package difftrace_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

type divergenceFixture struct {
	name       string
	filterSpec string
	faultObj   string // thread whose row must name the fault
	faultFunc  string // the injected fault's function
	faultEvent int64  // proven-equal event prefix on that row
}

var divergenceFixtures = []divergenceFixture{
	{"figure3", "11.mpiall.0K10", "2.0", "MPI_Send", 9},
	{"ilcs", "11.plt.0K10", "6.4", "GOMP_critical_start", 2},
	{"lulesh", "11.plt.0K10", "2.0", "LagrangeLeapFrog", 7},
}

func readDivergencePair(t *testing.T, name string) (*trace.TraceSet, *trace.TraceSet) {
	t.Helper()
	reg := trace.NewRegistry()
	read := func(side string) *trace.TraceSet {
		f, err := os.Open(filepath.Join("testdata", "divergence", name+"_"+side+".trace"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		s, err := trace.ReadSetText(bufio.NewReader(f), reg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return read("normal"), read("faulty")
}

func divergenceConfig(t *testing.T, fx divergenceFixture, workers int) core.Config {
	t.Helper()
	flt, err := filter.ParseSpec(fx.filterSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Filter = flt
	cfg.Workers = workers
	return cfg
}

// divergenceDump runs the pipeline plus the divergence pass and renders
// the explorer report. stream=true round-trips the fixture through PLOT1
// bytes and the streaming pipeline — the exact path `difftrace -stream`
// takes.
func divergenceDump(t *testing.T, fx divergenceFixture, workers int, stream bool) string {
	t.Helper()
	normal, faulty := readDivergencePair(t, fx.name)
	cfg := divergenceConfig(t, fx, workers)

	var (
		rep *core.Report
		err error
	)
	if stream {
		reg := trace.NewRegistry()
		toStream := func(set *trace.TraceSet) *parlot.StreamSet {
			var buf bytes.Buffer
			if werr := parlot.WriteSetBinary(&buf, set); werr != nil {
				t.Fatal(werr)
			}
			s, _, rerr := parlot.ReadStreamSetContext(nil, &buf, reg, trace.ReadOptions{})
			if rerr != nil {
				t.Fatal(rerr)
			}
			return s
		}
		rep, err = core.DiffRunStream(toStream(normal), toStream(faulty), cfg)
	} else {
		rep, err = core.DiffRun(normal, faulty, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	div, err := rep.FindDivergence()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := div.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func checkDivergenceGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "divergence", "golden_"+name+".txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s drifted from golden\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenDivergenceWorkersDeterminism pins every fixture's rendered
// divergence report to its golden and to byte-identity across Workers
// 1 vs 8 (part of `make determinism`).
func TestGoldenDivergenceWorkersDeterminism(t *testing.T) {
	for _, fx := range divergenceFixtures {
		seq := divergenceDump(t, fx, 1, false)
		par := divergenceDump(t, fx, 8, false)
		if seq != par {
			t.Errorf("%s: divergence report differs between Workers:1 and Workers:8", fx.name)
		}
		checkDivergenceGolden(t, fx.name, seq)
	}
}

// TestGoldenDivergenceBatchStreamDeterminism: the same fixture analyzed
// batch vs streaming must render the byte-identical divergence report.
func TestGoldenDivergenceBatchStreamDeterminism(t *testing.T) {
	for _, fx := range divergenceFixtures {
		if testing.Short() && fx.name == "lulesh" {
			continue // the slowest replay, same policy as the race target
		}
		batch := divergenceDump(t, fx, 4, false)
		stream := divergenceDump(t, fx, 4, true)
		if batch != stream {
			t.Errorf("%s: divergence report differs between batch and stream:\n--- batch ---\n%s--- stream ---\n%s",
				fx.name, batch, stream)
		}
	}
}

// TestGoldenDivergenceFaultLocalization: each report must carry a row for
// the known faulty object naming the injected fault's function and the
// hand-checked proven-equal event index.
func TestGoldenDivergenceFaultLocalization(t *testing.T) {
	for _, fx := range divergenceFixtures {
		got := divergenceDump(t, fx, 4, false)
		var found bool
		for _, line := range strings.Split(got, "\n") {
			if !strings.HasPrefix(line, fx.faultObj+" ") {
				continue
			}
			if !strings.Contains(line, fx.faultFunc) {
				t.Errorf("%s: row for %s does not name fault func %s: %q", fx.name, fx.faultObj, fx.faultFunc, line)
			}
			if !strings.Contains(line, fmt.Sprintf(" %d ", fx.faultEvent)) &&
				!strings.Contains(line, fmt.Sprintf(" %d  ", fx.faultEvent)) {
				t.Errorf("%s: row for %s does not carry event index %d: %q", fx.name, fx.faultObj, fx.faultEvent, line)
			}
			found = true
			break
		}
		if !found {
			t.Errorf("%s: no divergence row for known-faulty object %s:\n%s", fx.name, fx.faultObj, got)
		}
	}
}
