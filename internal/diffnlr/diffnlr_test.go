package diffnlr

import (
	"strings"
	"testing"

	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

func TestIdenticalTraces(t *testing.T) {
	toks := []string{"MPI_Init", "L0^4", "MPI_Finalize"}
	d := Compute(trace.TID(3, 0), toks, toks, nil)
	if !d.Identical() || d.Distance() != 0 {
		t.Fatalf("identical traces reported distance %d", d.Distance())
	}
	if d.Verdict() != "traces identical" {
		t.Errorf("verdict = %q", d.Verdict())
	}
}

func TestSwapBugRendering(t *testing.T) {
	// Figure 5b.
	normal := []string{"MPI_Init", "L1^16", "MPI_Finalize"}
	faulty := []string{"MPI_Init", "L1^7", "L0^9", "MPI_Finalize"}
	d := Compute(trace.TID(5, 0), normal, faulty, nil)
	out := d.Render(false)
	if !strings.Contains(out, "diffNLR(5.0)") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "- L1^16") {
		t.Errorf("normal-only block not marked:\n%s", out)
	}
	if !strings.Contains(out, "+ L1^7") || !strings.Contains(out, "+ L0^9") {
		t.Errorf("faulty-only blocks not marked:\n%s", out)
	}
	// Common stem appears in both columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "verdict:") {
			continue
		}
		if strings.Contains(line, "MPI_Finalize") {
			if strings.Count(line, "MPI_Finalize") != 2 {
				t.Errorf("common token not mirrored: %q", line)
			}
		}
	}
	if !strings.Contains(d.Verdict(), "both traces reach MPI_Finalize") {
		t.Errorf("verdict = %q", d.Verdict())
	}
}

func TestDeadlockVerdict(t *testing.T) {
	// Figure 6: the faulty trace never reaches MPI_Finalize.
	normal := []string{"MPI_Init", "L1^16", "MPI_Finalize"}
	faulty := []string{"MPI_Init", "L1^7", "MPI_Allreduce"}
	d := Compute(trace.TID(5, 0), normal, faulty, nil)
	v := d.Verdict()
	if !strings.Contains(v, "stopped after MPI_Allreduce") || !strings.Contains(v, "never reached MPI_Finalize") {
		t.Errorf("verdict = %q", v)
	}
}

func TestLegendResolvesLoopIDs(t *testing.T) {
	tbl := nlr.NewTable()
	// Intern two bodies so L0/L1 resolve.
	nlr.Summarize([]string{"MPI_Send", "MPI_Recv", "MPI_Send", "MPI_Recv", "MPI_Send", "MPI_Recv"}, 10, tbl)
	nlr.Summarize([]string{"MPI_Recv", "MPI_Send", "MPI_Recv", "MPI_Send", "MPI_Recv", "MPI_Send"}, 10, tbl)
	d := Compute(trace.TID(0, 0), []string{"L0^16"}, []string{"L0^7", "L1^9"}, tbl)
	legend := d.Legend()
	if !strings.Contains(legend, "L0 = [MPI_Send MPI_Recv]") {
		t.Errorf("legend = %q", legend)
	}
	if !strings.Contains(legend, "L1 = [MPI_Recv MPI_Send]") {
		t.Errorf("legend = %q", legend)
	}
	if !strings.Contains(d.Render(false), "L0 = ") {
		t.Error("render should include legend")
	}
}

func TestLegendWithoutTable(t *testing.T) {
	d := Compute(trace.TID(0, 0), []string{"L0^2"}, []string{"L0^3"}, nil)
	if d.Legend() != "" {
		t.Error("legend without table should be empty")
	}
}

func TestColorRendering(t *testing.T) {
	d := Compute(trace.TID(1, 1), []string{"a", "b"}, []string{"a", "c"}, nil)
	out := d.Render(true)
	for _, code := range []string{ansiGreen, ansiBlue, ansiRed} {
		if !strings.Contains(out, code) {
			t.Errorf("missing ANSI code %q", code)
		}
	}
	plain := d.Render(false)
	if strings.Contains(plain, "\x1b[") {
		t.Error("non-color render contains ANSI codes")
	}
}

func TestEmptyFaultyTrace(t *testing.T) {
	d := Compute(trace.TID(0, 0), []string{"main"}, nil, nil)
	if d.Identical() {
		t.Error("one-sided diff reported identical")
	}
	if d.Verdict() != "" {
		t.Errorf("verdict on empty side = %q", d.Verdict())
	}
	_ = d.Render(false) // must not panic
}
