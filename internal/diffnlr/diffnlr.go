// Package diffnlr renders the diffNLR view of §II-F.1: a Myers diff of the
// NLR token sequences of a normal trace T_x and its faulty counterpart T'_x,
// laid out as a common "main stem" with normal-only and faulty-only blocks
// hanging off it — the presentation of Figures 5, 6 and 7.
//
// In the paper's color scheme the stem is green, normal-only blocks are
// blue, faulty-only blocks are red; the text renderer uses "  " / "- " /
// "+ " gutters (and optional ANSI colors) with the normal run in the left
// column and the faulty run in the right.
package diffnlr

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"difftrace/internal/diff"
	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

// DiffNLR is the computed diff of one thread's normal vs faulty NLR
// sequences, as in the paper's diffNLR(x) ≡ diffNLR(T_x, T'_x).
type DiffNLR struct {
	ID     trace.ThreadID
	Normal []string // NLR tokens of T_x
	Faulty []string // NLR tokens of T'_x
	Edits  []diff.Edit
	Table  *nlr.Table // optional: resolves loop IDs in the legend
}

// Compute diffs the two token sequences. table may be nil (no legend).
func Compute(id trace.ThreadID, normal, faulty []string, table *nlr.Table) *DiffNLR {
	return &DiffNLR{
		ID:     id,
		Normal: normal,
		Faulty: faulty,
		Edits:  diff.Diff(normal, faulty),
		Table:  table,
	}
}

// Identical reports whether the two sequences match exactly.
func (d *DiffNLR) Identical() bool {
	for _, e := range d.Edits {
		if e.Op != diff.Equal {
			return false
		}
	}
	return true
}

// Distance returns the edit distance between the two sequences.
func (d *DiffNLR) Distance() int { return diff.Distance(d.Edits) }

// ANSI escape codes used when color is enabled.
const (
	ansiGreen = "\x1b[32m"
	ansiBlue  = "\x1b[34m"
	ansiRed   = "\x1b[31m"
	ansiReset = "\x1b[0m"
)

// Render lays the diff out in two columns (normal left, faulty right).
// Common tokens occupy both columns; normal-only tokens get a "- " gutter
// in the left column, faulty-only a "+ " gutter in the right.
func (d *DiffNLR) Render(color bool) string {
	width := 12
	for _, e := range d.Edits {
		for _, tok := range e.Tokens {
			if len(tok)+2 > width {
				width = len(tok) + 2
			}
		}
	}
	paint := func(code, s string) string {
		if !color {
			return s
		}
		return code + s + ansiReset
	}

	var b strings.Builder
	fmt.Fprintf(&b, "diffNLR(%s)  %-*s %s\n", d.ID, width, "normal", "faulty")
	rule := strings.Repeat("-", 2*width+12)
	b.WriteString(rule + "\n")
	for _, e := range d.Edits {
		for _, tok := range e.Tokens {
			switch e.Op {
			case diff.Equal:
				line := fmt.Sprintf("  %-*s   %-*s", width, tok, width, tok)
				b.WriteString(paint(ansiGreen, line) + "\n")
			case diff.Delete:
				line := fmt.Sprintf("- %-*s   %-*s", width, tok, width, "")
				b.WriteString(paint(ansiBlue, line) + "\n")
			case diff.Insert:
				line := fmt.Sprintf("  %-*s + %-*s", width, "", width, tok)
				b.WriteString(paint(ansiRed, line) + "\n")
			}
		}
	}
	b.WriteString(rule + "\n")
	if legend := d.Legend(); legend != "" {
		b.WriteString(legend)
	}
	if v := d.Verdict(); v != "" {
		b.WriteString("verdict: " + v + "\n")
	}
	return b.String()
}

var loopTokRE = regexp.MustCompile(`^L(\d+)\^\d+$`)

// Legend resolves every loop ID mentioned in either sequence through the
// loop table, like the paper's "L0 represents CPU_Exec" notes.
func (d *DiffNLR) Legend() string {
	if d.Table == nil {
		return ""
	}
	ids := map[int]bool{}
	for _, seq := range [][]string{d.Normal, d.Faulty} {
		for _, tok := range seq {
			if m := loopTokRE.FindStringSubmatch(tok); m != nil {
				id, _ := strconv.Atoi(m[1])
				ids[id] = true
			}
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Ints(sorted)
	var b strings.Builder
	for _, id := range sorted {
		fmt.Fprintf(&b, "L%d = %s\n", id, d.Table.Describe(id))
	}
	return b.String()
}

// Verdict produces the Figure 6-style interpretation hints: whether the
// faulty trace was cut short (last common token ≠ last normal token) and
// which call it stopped after.
func (d *DiffNLR) Verdict() string {
	if d.Identical() {
		return "traces identical"
	}
	if len(d.Normal) == 0 || len(d.Faulty) == 0 {
		return ""
	}
	lastN := d.Normal[len(d.Normal)-1]
	lastF := d.Faulty[len(d.Faulty)-1]
	if lastN != lastF {
		// The faulty run never reached the normal run's final call — the
		// signature of a hang/deadlock truncation (Figure 6).
		return fmt.Sprintf("faulty trace stopped after %s and never reached %s", lastF, lastN)
	}
	return fmt.Sprintf("both traces reach %s; loop structures differ (edit distance %d)", lastN, d.Distance())
}
