package diffnlr

// FuzzFindDivergence feeds two mutated PLOT1 blobs through the real
// ingest path, summarizes both sides against one shared loop table (as
// core does), and checks the divergence contract: the pass never panics,
// a nil result means the raw streams are identical, and a non-nil
// result's EventIndex never exceeds the first differing raw event — the
// expanded streams are byte-identical before it.

import (
	"bytes"
	"testing"

	"difftrace/internal/nlr"
	"difftrace/internal/parlot"
	"difftrace/internal/synth"
	"difftrace/internal/trace"
)

// plot1Seed encodes one small synthetic trace as PLOT1 bytes.
func plot1Seed(cfg synth.Config) []byte {
	set := trace.NewTraceSet()
	synth.Generate(set, trace.TID(0, 0), cfg)
	var buf bytes.Buffer
	if err := parlot.WriteSetBinary(&buf, set); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzFindDivergence(f *testing.F) {
	loop8 := synth.Config{Prologue: 2, Loops: []synth.LoopSpec{{Body: 2, Iterations: 8}}, Epilogue: 1}
	loop5 := synth.Config{Prologue: 2, Loops: []synth.LoopSpec{{Body: 2, Iterations: 5}}, Epilogue: 1}
	nested := synth.Config{Loops: []synth.LoopSpec{{Body: 1, Iterations: 4,
		Nested: &synth.LoopSpec{Body: 2, Iterations: 3}}}}
	truncated := loop8
	truncated.TruncateAfter = 7
	noisy := loop8
	noisy.NoiseRate, noisy.NoisePool, noisy.Seed = 0.3, 3, 11

	f.Add(plot1Seed(loop8), plot1Seed(loop8))     // identical
	f.Add(plot1Seed(loop8), plot1Seed(loop5))     // loop-count fault
	f.Add(plot1Seed(loop8), plot1Seed(truncated)) // hang/truncation
	f.Add(plot1Seed(loop8), plot1Seed(nested))    // structural mutation
	f.Add(plot1Seed(noisy), plot1Seed(loop8))     // irregular vs regular
	f.Add([]byte("PLOT1"), []byte{})              // corrupt inputs
	f.Fuzz(func(t *testing.T, a, b []byte) {
		na, ok := decodeFirstStream(a)
		if !ok {
			return
		}
		fa, ok := decodeFirstStream(b)
		if !ok {
			return
		}
		table := nlr.NewTable()
		en := nlr.Summarize(na, nlr.DefaultK, table)
		ef := nlr.Summarize(fa, nlr.DefaultK, table)
		d := FindDivergence(en, ef) // must not panic on any alignment
		checkDivergenceInvariants(t, d, nlr.Expand(en), nlr.Expand(ef))
	})
}

// decodeFirstStream leniently parses PLOT1 bytes and returns the
// naturally-first trace's call-name stream. Undecodable or empty inputs
// are skipped — the fuzzer's job is the alignment walk, the readers have
// their own corpora.
func decodeFirstStream(raw []byte) ([]string, bool) {
	reg := trace.NewRegistry()
	set, _, err := parlot.ReadSetBinaryOptions(bytes.NewReader(raw), reg, trace.ReadOptions{Mode: trace.Lenient})
	if err != nil || set == nil {
		return nil, false
	}
	ids := set.IDs()
	if len(ids) == 0 {
		return nil, false
	}
	return set.Get(ids[0]).Names(reg), true
}
