package diffnlr

// divergence.go is the FindDivergence pass: given a thread's aligned
// normal/faulty NLR sequences (summarized against one shared loop table,
// as core produces them), locate the first point the two structures part
// ways and translate it back into raw-stream terms — which function, at
// which expanded event index, after which common context.
//
// The pass never materializes an expansion. It walks the summarized
// sequences and advances an event cursor by loop arithmetic
// (nlr.ExpandedLen), so its cost is O(summary size) and it composes with
// the streaming pipeline's memory contract.
//
// EventIndex is a proven lower bound on the raw divergence: structurally
// equal elements expand to identical substreams (equal leaves trivially;
// equal loop IDs intern the same body, and equal counts repeat it
// identically), so every raw event before EventIndex is equal in both
// runs. The bound is what the fuzz target (FuzzFindDivergence) checks:
// divergence index ≤ first differing raw event. Token inequality does NOT
// imply the raw streams differ at that point ([A A] and L0^2 expand
// identically), so the pass reports where the *structures* diverge and
// guarantees only the prefix property — which is exactly what a user
// triaging a fault needs: everything before this point is provably
// identical.

import (
	"fmt"
	"strings"

	"difftrace/internal/nlr"
)

// DivergenceKind classifies how the faulty sequence departs from the
// normal one at the divergence point.
type DivergenceKind string

const (
	// Mutation: both sequences continue but with different structure
	// (different call, or a loop replaced by something else).
	Mutation DivergenceKind = "mutation"
	// LoopCount: same loop body, different iteration count — the paper's
	// "L0^24 vs L0^2" signature (Figure 6).
	LoopCount DivergenceKind = "loop-count"
	// FaultyStops: the faulty sequence ends while the normal one
	// continues — the hang/truncation signature.
	FaultyStops DivergenceKind = "faulty-stops"
	// FaultyExtends: the faulty sequence continues past the end of the
	// normal one (extra work, e.g. a retry storm).
	FaultyExtends DivergenceKind = "faulty-extends"
)

// ContextTokens is how many common tokens of leading context a Divergence
// carries (the tokens immediately before the divergence point).
const ContextTokens = 3

// Divergence is the first point a normal/faulty NLR pair parts ways.
type Divergence struct {
	Object string         `json:"object"` // thread/process name; set by callers
	Kind   DivergenceKind `json:"kind"`

	// Func is the headline function: the first call of the normal run's
	// continuation when the normal side still has one (the call the faulty
	// run changed, repeated differently, or never made), otherwise the
	// first call of the faulty run's extra tail.
	Func string `json:"func"`

	// TokenIndex is the position in the aligned token sequences where the
	// structures first differ; EventIndex is the expanded (raw-stream)
	// event position proven identical up to that point.
	TokenIndex int   `json:"token_index"`
	EventIndex int64 `json:"event_index"`

	// NormalTok/FaultyTok are the diverging heads ("" when that side is
	// exhausted). For LoopCount they name the same loop with different
	// counts.
	NormalTok string `json:"normal_tok,omitempty"`
	FaultyTok string `json:"faulty_tok,omitempty"`

	// Context holds up to ContextTokens common tokens immediately before
	// the divergence point, oldest first.
	Context []string `json:"context,omitempty"`
}

// eq is structural equality of two elements summarized against one shared
// table: same symbol, or same loop identity repeated the same number of
// times (ID equality ⇔ interned body equality).
func eq(a, b nlr.Element) bool {
	if (a.Loop == nil) != (b.Loop == nil) {
		return false
	}
	if a.Loop == nil {
		return a.Sym == b.Sym
	}
	return a.Loop.ID == b.Loop.ID && a.Loop.Count == b.Loop.Count
}

// firstSym returns the first raw symbol elems would expand to ("" when
// empty). A loop's first symbol is its body's, by recursion — counts are
// ≥ 1 by construction.
func firstSym(elems []nlr.Element) string {
	for _, e := range elems {
		if e.Loop == nil {
			return e.Sym
		}
		if s := firstSym(e.Loop.Body); s != "" {
			return s
		}
	}
	return ""
}

// FindDivergence locates the first structural divergence between a
// normal and a faulty summarized sequence. Both must come from the same
// loop table (as all sequences in one core run do). Returns nil when the
// structures are identical.
func FindDivergence(normal, faulty []nlr.Element) *Divergence {
	i := 0
	var events int64
	for i < len(normal) && i < len(faulty) && eq(normal[i], faulty[i]) {
		events += nlr.ExpandedLen(normal[i : i+1])
		i++
	}
	if i == len(normal) && i == len(faulty) {
		return nil
	}

	d := &Divergence{TokenIndex: i, EventIndex: events}
	for c := max(0, i-ContextTokens); c < i; c++ {
		d.Context = append(d.Context, normal[c].Token())
	}
	switch {
	case i == len(faulty):
		d.Kind = FaultyStops
		d.NormalTok = normal[i].Token()
		d.Func = firstSym(normal[i:])
	case i == len(normal):
		d.Kind = FaultyExtends
		d.FaultyTok = faulty[i].Token()
		d.Func = firstSym(faulty[i:])
	default:
		n, f := normal[i], faulty[i]
		d.NormalTok = n.Token()
		d.FaultyTok = f.Token()
		d.Func = firstSym(normal[i:])
		if n.Loop != nil && f.Loop != nil && n.Loop.ID == f.Loop.ID {
			// Same interned body looping a different number of times: the
			// first min(c1,c2) iterations still expand identically, so the
			// proven-equal prefix extends past the token boundary.
			d.Kind = LoopCount
			m := n.Loop.Count
			if f.Loop.Count < m {
				m = f.Loop.Count
			}
			d.EventIndex += int64(m) * nlr.ExpandedLen(n.Loop.Body)
		} else {
			d.Kind = Mutation
		}
	}
	return d
}

// Describe renders the divergence as one human-readable sentence.
func (d *Divergence) Describe() string {
	var b strings.Builder
	if d.Object != "" {
		fmt.Fprintf(&b, "%s: ", d.Object)
	}
	switch d.Kind {
	case FaultyStops:
		fmt.Fprintf(&b, "faulty run stops before %s", d.Func)
	case FaultyExtends:
		fmt.Fprintf(&b, "faulty run continues with %s past the end of the normal run", d.Func)
	case LoopCount:
		fmt.Fprintf(&b, "loop around %s repeats differently (%s vs %s)", d.Func, d.NormalTok, d.FaultyTok)
	default:
		fmt.Fprintf(&b, "at %s the faulty run does %s instead of %s", d.Func, d.FaultyTok, d.NormalTok)
	}
	fmt.Fprintf(&b, " at token %d (events identical through %d)", d.TokenIndex, d.EventIndex)
	if len(d.Context) > 0 {
		fmt.Fprintf(&b, " after %s", strings.Join(d.Context, " "))
	}
	return b.String()
}
