package diffnlr

import (
	"math/rand"
	"strings"
	"testing"

	"difftrace/internal/nlr"
)

func summarizePair(a, b []string) ([]nlr.Element, []nlr.Element) {
	table := nlr.NewTable()
	return nlr.Summarize(a, nlr.DefaultK, table), nlr.Summarize(b, nlr.DefaultK, table)
}

func firstDiff(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

func rep(syms []string, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, syms...)
	}
	return out
}

func TestDivergenceKinds(t *testing.T) {
	ab := []string{"a", "b"}
	cases := []struct {
		name           string
		normal, faulty []string
		kind           DivergenceKind
		fn             string
	}{
		{"mutation", []string{"x", "send", "y"}, []string{"x", "recv", "y"}, Mutation, "send"},
		{"loop-count", append(rep(ab, 8), "z"), append(rep(ab, 5), "z"), LoopCount, "a"},
		{"faulty-stops", []string{"x", "y", "z"}, []string{"x"}, FaultyStops, "y"},
		{"faulty-extends", []string{"x"}, []string{"x", "y", "z"}, FaultyExtends, "y"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			en, ef := summarizePair(c.normal, c.faulty)
			d := FindDivergence(en, ef)
			if d == nil {
				t.Fatal("no divergence found")
			}
			if d.Kind != c.kind {
				t.Fatalf("kind = %s, want %s (%+v)", d.Kind, c.kind, d)
			}
			if d.Func != c.fn {
				t.Fatalf("func = %q, want %q (%+v)", d.Func, c.fn, d)
			}
			first := firstDiff(c.normal, c.faulty)
			if int(d.EventIndex) > first {
				t.Fatalf("EventIndex %d > first differing raw event %d", d.EventIndex, first)
			}
			if s := d.Describe(); s == "" || !strings.Contains(s, c.fn) {
				t.Fatalf("Describe() = %q, want mention of %q", s, c.fn)
			}
		})
	}
}

func TestDivergenceLoopCountEventIndex(t *testing.T) {
	// [a b]*8 z   vs   [a b]*5 z : the first 5 iterations are proven
	// equal, so the loop-count refinement must push EventIndex to 10 —
	// exactly the first raw index where the streams differ.
	normal := append(rep([]string{"a", "b"}, 8), "z")
	faulty := append(rep([]string{"a", "b"}, 5), "z")
	en, ef := summarizePair(normal, faulty)
	d := FindDivergence(en, ef)
	if d == nil || d.Kind != LoopCount {
		t.Fatalf("want LoopCount divergence, got %+v", d)
	}
	if d.EventIndex != 10 {
		t.Fatalf("EventIndex = %d, want 10", d.EventIndex)
	}
}

func TestDivergenceNilIffIdenticalStructure(t *testing.T) {
	toks := rep([]string{"a", "b", "c"}, 6)
	table := nlr.NewTable()
	en := nlr.Summarize(toks, nlr.DefaultK, table)
	ef := nlr.Summarize(append([]string(nil), toks...), nlr.DefaultK, table)
	if d := FindDivergence(en, ef); d != nil {
		t.Fatalf("identical streams diverge: %+v", d)
	}
}

// TestDivergenceMinimalityProperty is the randomized version of the fuzz
// invariant, run on every `go test`: for seed-driven stream pairs the
// expanded streams are byte-identical before EventIndex, hence EventIndex
// is ≤ the first differing raw event.
func TestDivergenceMinimalityProperty(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := randStream(rng, 5, 60)
		mutated := mutate(rng, base)
		en, ef := summarizePair(base, mutated)
		d := FindDivergence(en, ef)
		xa, xb := nlr.Expand(en), nlr.Expand(ef)
		checkDivergenceInvariants(t, d, xa, xb)
	}
}

// checkDivergenceInvariants asserts the contract FindDivergence proves:
// nil ⇔ equal structures (hence equal expansions), and a non-nil result's
// EventIndex bounds a byte-identical expanded prefix.
func checkDivergenceInvariants(t *testing.T, d *Divergence, xa, xb []string) {
	t.Helper()
	first := firstDiff(xa, xb)
	if d == nil {
		if first != -1 {
			t.Fatalf("divergence nil but raw streams differ at %d", first)
		}
		return
	}
	minLen := len(xa)
	if len(xb) < minLen {
		minLen = len(xb)
	}
	if d.EventIndex > int64(minLen) {
		t.Fatalf("EventIndex %d exceeds shorter stream (%d)", d.EventIndex, minLen)
	}
	for i := int64(0); i < d.EventIndex; i++ {
		if xa[i] != xb[i] {
			t.Fatalf("streams differ at %d inside the proven-equal prefix (EventIndex %d)", i, d.EventIndex)
		}
	}
	if first != -1 && d.EventIndex > int64(first) {
		t.Fatalf("EventIndex %d > first differing raw event %d", d.EventIndex, first)
	}
}

func randStream(rng *rand.Rand, alphabet, maxLen int) []string {
	n := rng.Intn(maxLen)
	out := make([]string, 0, n*3)
	for len(out) < n {
		if rng.Intn(3) == 0 {
			// Inject a repetition so loops actually form.
			body := randSyms(rng, alphabet, 1+rng.Intn(3))
			for it := 1 + rng.Intn(6); it > 0; it-- {
				out = append(out, body...)
			}
			continue
		}
		out = append(out, sym(rng.Intn(alphabet)))
	}
	return out
}

func randSyms(rng *rand.Rand, alphabet, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = sym(rng.Intn(alphabet))
	}
	return out
}

func sym(i int) string { return string(rune('a' + i)) }

// mutate applies a random fault shape: substitution, deletion window
// (truncation when it reaches the end), insertion, or none.
func mutate(rng *rand.Rand, base []string) []string {
	out := append([]string(nil), base...)
	if len(out) == 0 {
		return out
	}
	switch rng.Intn(4) {
	case 0: // substitute one call
		out[rng.Intn(len(out))] = "mut"
	case 1: // cut a window (possibly a truncation)
		at := rng.Intn(len(out))
		end := at + rng.Intn(len(out)-at) + 1
		out = append(out[:at], out[end:]...)
	case 2: // insert extra work
		at := rng.Intn(len(out) + 1)
		ins := randSyms(rng, 5, 1+rng.Intn(4))
		out = append(out[:at], append(append([]string(nil), ins...), out[at:]...)...)
	}
	return out
}
