// Module loading and type-checking. The loader is stdlib-only: packages in
// the module are discovered by walking the tree, parsed with go/parser, and
// type-checked with go/types; imports resolve through a shim that checks
// module-internal packages recursively from source and delegates everything
// else (the standard library) to go/importer's source importer.
//
// Loading is safe for concurrent use: each package is guarded by a
// sync.Once-backed entry, so LoadModuleWorkers can type-check independent
// import subtrees on internal/pool workers while dependencies are still
// checked exactly once. The shared FileSet is concurrency-safe by contract;
// the standard-library source importer is not documented as such, so its
// calls serialize behind a mutex (each std package is only checked once and
// memoized, so the serialization cost amortizes away).
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"difftrace/internal/pool"
)

// Package is one loaded, type-checked package: syntax plus types, which is
// exactly what a Pass needs.
type Package struct {
	Path       string // import path ("difftrace/internal/core", or the fixture's name)
	ModulePath string // module path this package belongs to ("" for bare fixture dirs)
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files only; invariants bind shipped code
	Types      *types.Package
	Info       *types.Info
}

// Loader discovers, parses, and type-checks packages. One Loader holds one
// FileSet and one type-checking universe, so cross-package identity (same
// types.Object for the same declaration) holds within a run.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std   types.ImporterFrom
	stdMu sync.Mutex // the source importer is not concurrency-safe

	mu      sync.Mutex
	entries map[string]*loadEntry
}

// loadEntry is the once-guarded slot for one package: the first goroutine
// to reach a path performs the load, every other goroutine blocks on the
// Once and then reads the settled result.
type loadEntry struct {
	once sync.Once
	pkg  *Package
	err  error
}

// NewLoader roots a loader at the module containing dir (found by walking
// up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		entries: make(map[string]*loadEntry),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if p, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// LoadModule loads every package in the module serially, sorted by import
// path. Directories named testdata, vendor, hidden, or underscore-prefixed
// are skipped, matching the go tool's matching rules for "./...".
func (l *Loader) LoadModule() ([]*Package, error) {
	return l.LoadModuleWorkers(1)
}

// LoadModuleWorkers is LoadModule with the package-level type-checking
// fanned out across internal/pool workers (0 = GOMAXPROCS). The result is
// identical to the serial load — same packages, same order, same type
// universe — only the wall time changes.
func (l *Loader) LoadModuleWorkers(workers int) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if names, _ := l.goFiles(path); len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	pool.Do(pool.Workers(workers), len(dirs), func(i int) {
		dir := dirs[i]
		path := l.ModPath
		if rel, err := filepath.Rel(l.ModRoot, dir); err == nil && rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[i], errs[i] = l.load(path, dir, l.ModPath, nil)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package under the given
// import path — the fixture-package entry point for tests.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir, "", nil)
}

// goFiles lists the non-test .go files in dir that build for the current
// context (go/build applies //go:build constraints and GOOS/GOARCH rules).
func (l *Loader) goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, err := ctx.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// entry returns path's once-guarded slot, creating it on first sight.
func (l *Loader) entry(path string) *loadEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[path]
	if !ok {
		e = &loadEntry{}
		l.entries[path] = e
	}
	return e
}

// load parses and type-checks one package directory, memoized by path.
// stack is the current goroutine's in-progress import chain: re-entering a
// path already on it is an import cycle, detected before the Once would
// self-deadlock.
func (l *Loader) load(path, dir, modPath string, stack []string) (*Package, error) {
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	e := l.entry(path)
	e.once.Do(func() {
		e.pkg, e.err = l.doLoad(path, dir, modPath, append(stack, path))
	})
	return e.pkg, e.err
}

func (l *Loader) doLoad(path, dir, modPath string, stack []string) (*Package, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &shimImporter{l: l, stack: stack},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	return &Package{
		Path: path, ModulePath: modPath, Dir: dir,
		Fset: l.Fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// shimImporter routes module-internal imports back through the loader (so
// their syntax and Info stay available for analysis) and everything else to
// the source importer. One shim exists per in-progress load, carrying that
// load's import chain for cycle detection.
type shimImporter struct {
	l     *Loader
	stack []string
}

func (s *shimImporter) Import(path string) (*types.Package, error) {
	return s.ImportFrom(path, s.l.ModRoot, 0)
}

func (s *shimImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := s.l
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		pkg, err := l.load(path, dir, l.ModPath, s.stack)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.ImportFrom(path, srcDir, mode)
}