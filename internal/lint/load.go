// Module loading and type-checking. The loader is stdlib-only: packages in
// the module are discovered by walking the tree, parsed with go/parser, and
// type-checked with go/types; imports resolve through a shim that checks
// module-internal packages recursively from source and delegates everything
// else (the standard library) to go/importer's source importer.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: syntax plus types, which is
// exactly what a Pass needs.
type Package struct {
	Path       string // import path ("difftrace/internal/core", or the fixture's name)
	ModulePath string // module path this package belongs to ("" for bare fixture dirs)
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files only; invariants bind shipped code
	Types      *types.Package
	Info       *types.Info
}

// Loader discovers, parses, and type-checks packages. One Loader holds one
// FileSet and one type-checking universe, so cross-package identity (same
// types.Object for the same declaration) holds within a run.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool // import-cycle guard
}

// NewLoader roots a loader at the module containing dir (found by walking
// up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if p, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// LoadModule loads every package in the module, sorted by import path.
// Directories named testdata, vendor, hidden, or underscore-prefixed are
// skipped, matching the go tool's matching rules for "./...".
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if names, _ := l.goFiles(path); len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		path := l.ModPath
		if rel, err := filepath.Rel(l.ModRoot, dir); err == nil && rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir, l.ModPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package under the given
// import path — the fixture-package entry point for tests.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir, "")
}

// goFiles lists the non-test .go files in dir that build for the current
// context (go/build applies //go:build constraints and GOOS/GOARCH rules).
func (l *Loader) goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, err := ctx.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks one package directory (memoized by path).
func (l *Loader) load(path, dir, modPath string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &shimImporter{l: l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	p := &Package{
		Path: path, ModulePath: modPath, Dir: dir,
		Fset: l.Fset, Files: files, Types: tpkg, Info: info,
	}
	l.pkgs[path] = p
	return p, nil
}

// shimImporter routes module-internal imports back through the loader (so
// their syntax and Info stay available for analysis) and everything else to
// the source importer.
type shimImporter struct{ l *Loader }

func (s *shimImporter) Import(path string) (*types.Package, error) {
	return s.ImportFrom(path, s.l.ModRoot, 0)
}

func (s *shimImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := s.l
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		pkg, err := l.load(path, dir, l.ModPath)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
