package callgraph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/lint"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadModule(t *testing.T, root string) []*lint.Package {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestBuildChainsAndReachability(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module cg\n\ngo 1.24\n",
		"a.go": `package cg

import "cg/inner"

// Top is the exported entry point.
func Top() int { return mid() }

func mid() int { return inner.Leaf() }

// orphan is referenced by nobody.
func orphan() int { return 0 }
`,
		"inner/inner.go": `package inner

func Leaf() int { return hidden() }

func hidden() int { return 1 }
`,
	})
	g := Build(loadModule(t, root))

	for key, want := range map[string]bool{
		"cg.Top":          true,
		"cg.mid":          true,
		"cg/inner.Leaf":   true, // exported: a root itself
		"cg/inner.hidden": true, // reachable via Leaf
		"cg.orphan":       false,
	} {
		if got := g.ReachableFromExported(key); got != want {
			t.Errorf("ReachableFromExported(%s) = %v, want %v", key, got, want)
		}
	}

	chain := g.ChainFromExported("cg/inner.hidden")
	if got, want := strings.Join(chain, " -> "), "cg/inner.Leaf -> cg/inner.hidden"; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	// mid is reachable only through Top, so its chain is interprocedural.
	chain = g.ChainFromExported("cg.mid")
	if got, want := strings.Join(chain, " -> "), "cg.Top -> cg.mid"; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if g.ChainFromExported("cg.orphan") != nil {
		t.Error("orphan got a chain despite being unreachable")
	}
}

func TestFuncLitNodesAndReferences(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module cg\n\ngo 1.24\n",
		"a.go": `package cg

// Run hands work to a scheduler as a value: a reference edge, not a call.
func Run() {
	sched(func() { helper() })
}

func sched(fn func()) { fn() }

func helper() {}
`,
	})
	g := Build(loadModule(t, root))

	lit, ok := g.ByKey["cg.Run$1"]
	if !ok {
		t.Fatal("no node for the function literal cg.Run$1")
	}
	if len(lit.Calls) != 1 || lit.Calls[0].Callee.Key != "cg.helper" {
		t.Errorf("literal edges = %v, want one edge to cg.helper", lit.Calls)
	}
	if !g.ReachableFromExported("cg.helper") {
		t.Error("helper should be reachable through the literal")
	}
	chain := strings.Join(g.ChainFromExported("cg.helper"), " -> ")
	if want := "cg.Run -> cg.Run$1 -> cg.helper"; chain != want {
		t.Errorf("chain = %q, want %q", chain, want)
	}
}

func TestDumpDeterministic(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module cg\n\ngo 1.24\n",
		"a.go":   "package cg\n\nfunc A() { b(); b() }\n\nfunc b() {}\n",
	})
	pkgs := loadModule(t, root)
	var first bytes.Buffer
	if err := Build(pkgs).Dump(&first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "cg.A [root]") || !strings.Contains(first.String(), "  -> cg.b") {
		t.Errorf("dump missing expected lines:\n%s", first.String())
	}
	var second bytes.Buffer
	if err := Build(pkgs).Dump(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("Dump output differs between two builds over the same packages")
	}
}
