// Package callgraph builds difftracelint's module-wide call graph: one
// node per declared function, method, and function literal across every
// loaded package, with an edge wherever one function statically references
// another. It is the spine of the interprocedural engine — summaries
// compose along its edges, reachability anchors the lock-discipline check
// to the module's real API surface, and -why renders its BFS chains.
//
// The graph is deliberately a static over-approximation in both
// directions at once:
//
//   - edges are REFERENCES, not only calls: passing s.work to pool.Do adds
//     an edge even though the call happens inside the pool, which is
//     exactly what reachability wants;
//   - dynamic dispatch through interfaces is not resolved (an interface
//     method call adds no edge to its implementations). Exported methods
//     are reachability roots themselves, so the approximation loses little
//     in a module whose concurrency all flows through concrete types.
//
// Nodes are keyed by types.Func.FullName — "pkg/path.Fn" for functions,
// "(*pkg/path.T).M" for methods — with "$n" suffixes for function literals
// in source order, matching the keys the summary layer serializes.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"

	"difftrace/internal/lint"
)

// Node is one function-like declaration in the module.
type Node struct {
	Key      string
	Fn       *types.Func // nil for function literals
	Pkg      *lint.Package
	Decl     ast.Node // *ast.FuncDecl or *ast.FuncLit
	Exported bool     // reachability root: exported name, main.main, or init
	Calls    []*Edge  // outgoing references in source order
	Callers  []*Edge  // incoming references
}

// Edge is one static reference from Caller to Callee at Pos.
type Edge struct {
	Caller *Node
	Callee *Node
	Pos    token.Pos
}

// Graph is the module-wide call graph plus its reachability closure.
type Graph struct {
	ByKey map[string]*Node
	nodes []*Node // insertion order: sorted packages, then source order
	reach map[string]bool
	prev  map[string]*Edge // BFS tree edge into each reachable node
}

// KeyOf returns fn's stable node key. Generic instantiations normalize to
// their origin declaration so one summary covers every instantiation.
func KeyOf(fn *types.Func) string { return fn.Origin().FullName() }

// For returns the run's memoized graph, building it on first use.
func For(mp *lint.ModulePass) *Graph {
	return mp.Fact("callgraph", func() any { return Build(mp.Pkgs) }).(*Graph)
}

// Build constructs the graph over the given packages. The packages must
// share one loader universe (same FileSet, same types.Object identity for
// the same declaration), which is what Loader.LoadModule guarantees.
func Build(pkgs []*lint.Package) *Graph {
	g := &Graph{ByKey: make(map[string]*Node)}

	// Pass 1: a node per declared function/method, so references resolve
	// regardless of declaration order across packages.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.add(&Node{
					Key:      KeyOf(fn),
					Fn:       fn,
					Pkg:      pkg,
					Decl:     fd,
					Exported: isRoot(pkg, fd),
				})
			}
		}
	}

	// Pass 2: walk bodies, attributing references to the innermost
	// enclosing function-like node (literals get child nodes).
	for _, pkg := range pkgs {
		lits := make(map[string]int)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.walk(pkg, g.ByKey[KeyOf(fn)], fd.Body, lits)
			}
		}
	}

	g.computeReach()
	return g
}

func (g *Graph) add(n *Node) {
	if _, ok := g.ByKey[n.Key]; ok {
		return
	}
	g.ByKey[n.Key] = n
	g.nodes = append(g.nodes, n)
}

func (g *Graph) edge(from, to *Node, pos token.Pos) {
	e := &Edge{Caller: from, Callee: to, Pos: pos}
	from.Calls = append(from.Calls, e)
	to.Callers = append(to.Callers, e)
}

// walk records references out of cur, descending into function literals as
// their own nodes (keyed cur.Key + "$n" in source order).
func (g *Graph) walk(pkg *lint.Package, cur *Node, body ast.Node, lits map[string]int) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lits[cur.Key]++
			ln := &Node{
				Key:  fmt.Sprintf("%s$%d", cur.Key, lits[cur.Key]),
				Pkg:  pkg,
				Decl: x,
			}
			g.add(ln)
			g.edge(cur, ln, x.Pos())
			g.walk(pkg, ln, x.Body, lits)
			return false
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				if callee, ok := g.ByKey[KeyOf(fn)]; ok {
					g.edge(cur, callee, x.Pos())
				}
			}
		}
		return true
	})
}

// isRoot classifies a declaration as a reachability root: part of the
// module's own entry surface.
func isRoot(pkg *lint.Package, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if fd.Name.IsExported() {
		return true
	}
	if name == "init" && fd.Recv == nil {
		return true
	}
	return pkg.Types != nil && pkg.Types.Name() == "main" && name == "main" && fd.Recv == nil
}

// computeReach runs a deterministic BFS from every root, recording the
// first-visit tree so chains replay identically across runs.
func (g *Graph) computeReach() {
	g.reach = make(map[string]bool)
	g.prev = make(map[string]*Edge)
	var roots []*Node
	for _, n := range g.nodes {
		if n.Exported {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Key < roots[j].Key })
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if !g.reach[r.Key] {
			g.reach[r.Key] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			if !g.reach[e.Callee.Key] {
				g.reach[e.Callee.Key] = true
				g.prev[e.Callee.Key] = e
				queue = append(queue, e.Callee)
			}
		}
	}
}

// ReachableFromExported reports whether the function with the given key is
// reachable from the module's entry surface (or is itself part of it).
func (g *Graph) ReachableFromExported(key string) bool { return g.reach[key] }

// ChainFromExported returns the BFS path of node keys from an entry point
// to key (inclusive at both ends), or nil when key is unreachable. A root's
// own chain is just [key].
func (g *Graph) ChainFromExported(key string) []string {
	if !g.reach[key] {
		return nil
	}
	var rev []string
	for k := key; ; {
		rev = append(rev, k)
		e, ok := g.prev[k]
		if !ok {
			break
		}
		k = e.Caller.Key
	}
	chain := make([]string, len(rev))
	for i, k := range rev {
		chain[len(rev)-1-i] = k
	}
	return chain
}

// Dump writes the graph as deterministic text: one "caller -> callee" line
// per distinct edge, sorted, with reachability roots marked. This is the
// -graph output.
func (g *Graph) Dump(w io.Writer) error {
	keys := make([]string, 0, len(g.ByKey))
	for k := range g.ByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := g.ByKey[k]
		mark := ""
		if n.Exported {
			mark = " [root]"
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", k, mark); err != nil {
			return err
		}
		seen := make(map[string]bool)
		var callees []string
		for _, e := range n.Calls {
			if !seen[e.Callee.Key] {
				seen[e.Callee.Key] = true
				callees = append(callees, e.Callee.Key)
			}
		}
		sort.Strings(callees)
		for _, c := range callees {
			if _, err := fmt.Fprintf(w, "  -> %s\n", c); err != nil {
				return err
			}
		}
	}
	return nil
}
