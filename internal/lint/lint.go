// Package lint is difftracelint's analyzer framework: a stdlib-only
// (go/parser, go/ast, go/types, go/importer) multi-pass static analyzer
// that loads every package in the module, type-checks it, and runs a
// registry of project-invariant checks.
//
// Each check proves, at compile time, an invariant a prior PR could only
// test by sampling at runtime: byte-identical reports at any worker count
// (maprange, wallclock, nakedgoroutine), degraded-not-dead error handling
// (panicdiscipline, errwrap), and the nil-off observability contract
// (nilreceiver). See DESIGN.md §9 for the invariant ledger.
//
// Diagnostics render as "file:line: [check-name] message" (module-relative
// paths) or as a stable JSON array. Two suppression layers exist:
//
//   - the per-project Config table exempts whole package subtrees from a
//     check (the table IS the invariant: "all goroutines start in
//     internal/pool" is expressed as nakedgoroutine exempting only
//     internal/pool), and
//   - //lint:allow check-name reason — an inline directive that suppresses
//     matching diagnostics on its own line and the line directly below.
//     The reason is mandatory: a bare //lint:allow is itself reported
//     (check "baddirective"), as is a directive naming an unknown check or
//     one that suppresses nothing.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"difftrace/internal/pool"
)

// Diagnostic is one finding, positioned in module-relative coordinates so
// JSON output is machine-stable across checkouts. Interprocedural checks
// attach Chain: the call path from an exported entry point to the function
// containing the finding, rendered by -why (and omitted from JSON when the
// finding is purely local, so the legacy document shape is unchanged).
type Diagnostic struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Check   string   `json:"check"`
	Message string   `json:"message"`
	Chain   []string `json:"chain,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
}

// Check is one registered project invariant. Exactly one of Run and
// RunModule is set: Run is invoked once per loaded package (syntactic
// checks), RunModule once per module with every package loaded
// (interprocedural checks that compose call-graph and summary facts).
// Run implementations must be safe to call concurrently for different
// packages — the driver fans packages out across internal/pool workers.
type Check struct {
	Name      string // stable kebab-free identifier, used in directives and JSON
	Doc       string // one-line invariant statement (shown by difftracelint -list)
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass hands one (check, package) unit of work its inputs and its reporter.
type Pass struct {
	Pkg   *Package
	Check *Check

	runner *Runner
	out    *[]Diagnostic
}

// Reportf records a diagnostic at pos. Positions outside the package's
// fileset (token.NoPos) are attributed to the package directory.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if p.runner != nil && p.runner.relRoot != "" {
		if rel, err := filepath.Rel(p.runner.relRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	*p.out = append(*p.out, Diagnostic{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Config is the per-project allowlist table. Paths are module-relative
// directory prefixes ("internal/pool" covers internal/pool and everything
// below it; "" matches nothing).
type Config struct {
	// Exempt turns a check off inside the listed subtrees. This is the
	// canonical escape hatch for the package that legitimately owns the
	// pattern (pool owns goroutines and panic re-raise, obs owns the clock).
	Exempt map[string][]string
	// Only restricts a check to the listed subtrees; an absent or empty
	// entry means the check runs everywhere. nilreceiver uses this: the
	// nil-off contract is an obs-specific API promise, not a global rule.
	Only map[string][]string
}

// BadDirective is the reserved check name under which malformed or inert
// //lint:allow directives are reported. It cannot be suppressed.
const BadDirective = "baddirective"

// allowRe matches "lint:allow <check> <reason>" with the reason optional at
// the syntax level (a missing reason is reported, not silently accepted).
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)(?:\s+(.*))?$`)

type allowDirective struct {
	file   string // module-relative
	line   int
	check  string
	reason string
	pos    token.Pos
	used   bool
}

// Runner executes a set of checks over loaded packages under one config.
type Runner struct {
	Checks []*Check
	Config *Config
	// Workers bounds the per-package fan-out (0 = GOMAXPROCS). Diagnostics
	// are sorted before emit, so any worker count yields identical output.
	Workers int
	// CacheDir, when set, persists the interprocedural summary layer across
	// runs keyed on each package's source hash (see internal/lint/summary).
	CacheDir string
	relRoot  string // absolute dir that diagnostics are relativized against
}

// NewRunner builds a runner; relRoot (usually the module root) anchors the
// module-relative paths in diagnostics and directives. config may be nil
// (no exemptions — the mode fixture tests run in).
func NewRunner(checks []*Check, config *Config, relRoot string) *Runner {
	if config == nil {
		config = &Config{}
	}
	return &Runner{Checks: checks, Config: config, relRoot: relRoot}
}

// Run analyzes every package and returns the surviving diagnostics sorted
// by (file, line, col, check, message). Suppressed findings are dropped;
// malformed or unused //lint:allow directives come back as baddirective
// findings.
//
// Per-package checks fan out across internal/pool workers (each package
// reports into its own slot, so no two goroutines share a diagnostic
// slice); module-scoped checks then run once over the full package set.
// The final sort makes the output byte-identical at any worker count.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	diags, _ := r.run(pkgs)
	return diags
}

// AllowStatus is one //lint:allow directive's audit record: where it is,
// what it claims to suppress, and whether it suppressed anything in the run
// that produced it (Used == false means the directive is stale).
type AllowStatus struct {
	File   string
	Line   int
	Check  string
	Reason string
	Used   bool
}

// Audit runs every check and additionally returns the per-directive usage
// ledger, sorted by (file, line) — the directive-hygiene sweep that proves
// no //lint:allow outlived the finding it was written for.
func (r *Runner) Audit(pkgs []*Package) ([]Diagnostic, []AllowStatus) {
	diags, allows := r.run(pkgs)
	sts := make([]AllowStatus, 0, len(allows))
	for _, a := range allows {
		sts = append(sts, AllowStatus{File: a.file, Line: a.line, Check: a.check, Reason: a.reason, Used: a.used})
	}
	sort.Slice(sts, func(i, j int) bool {
		if sts[i].File != sts[j].File {
			return sts[i].File < sts[j].File
		}
		return sts[i].Line < sts[j].Line
	})
	return diags, sts
}

func (r *Runner) run(pkgs []*Package) ([]Diagnostic, []*allowDirective) {
	var perPkg, modChecks []*Check
	for _, c := range r.Checks {
		if c.RunModule != nil {
			modChecks = append(modChecks, c)
		}
		if c.Run != nil {
			perPkg = append(perPkg, c)
		}
	}
	type slot struct {
		diags  []Diagnostic
		allows []*allowDirective
	}
	slots := make([]slot, len(pkgs))
	pool.Do(pool.Workers(r.Workers), len(pkgs), func(i int) {
		pkg := pkgs[i]
		slots[i].allows = r.collectAllows(pkg)
		rel := r.relPkgPath(pkg)
		for _, c := range perPkg {
			if !r.applies(c.Name, rel) {
				continue
			}
			pass := &Pass{Pkg: pkg, Check: c, runner: r, out: &slots[i].diags}
			c.Run(pass)
		}
	})
	var diags []Diagnostic
	var allows []*allowDirective
	for i := range slots {
		diags = append(diags, slots[i].diags...)
		allows = append(allows, slots[i].allows...)
	}
	if len(modChecks) > 0 && len(pkgs) > 0 {
		mp := &ModulePass{
			Pkgs:     pkgs,
			Facts:    make(map[string]any),
			CacheDir: r.CacheDir,
			Workers:  r.Workers,
			runner:   r,
			out:      &diags,
		}
		for _, c := range modChecks {
			mp.Check = c
			c.RunModule(mp)
		}
	}
	diags = r.suppress(diags, allows)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags, allows
}

// relPkgPath maps an import path to its module-relative directory ("" for
// the module root package).
func (r *Runner) relPkgPath(pkg *Package) string {
	if pkg.ModulePath == "" || pkg.Path == pkg.ModulePath {
		return ""
	}
	return strings.TrimPrefix(pkg.Path, pkg.ModulePath+"/")
}

// applies decides whether check name runs for a package at module-relative
// path rel, per the Only/Exempt tables.
func (r *Runner) applies(name, rel string) bool {
	if only := r.Config.Only[name]; len(only) > 0 && !matchesAny(rel, only) {
		return false
	}
	return !matchesAny(rel, r.Config.Exempt[name])
}

func matchesAny(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// collectAllows scans a package's comments for //lint:allow directives.
func (r *Runner) collectAllows(pkg *Package) []*allowDirective {
	known := make(map[string]bool, len(r.Checks))
	for _, c := range r.Checks {
		known[c.Name] = true
	}
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				file := position.Filename
				if rel, err := filepath.Rel(r.relRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				d := &allowDirective{
					file:   file,
					line:   position.Line,
					check:  m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    c.Pos(),
				}
				if !known[d.check] {
					d.used = true // don't double-report as unused
					out = append(out, d)
					continue
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by a well-formed directive and emits
// baddirective findings for directives that are malformed, name an unknown
// check, or suppress nothing.
func (r *Runner) suppress(diags []Diagnostic, allows []*allowDirective) []Diagnostic {
	known := make(map[string]bool, len(r.Checks))
	for _, c := range r.Checks {
		known[c.Name] = true
	}
	// Index well-formed directives by (file, check) for the line test.
	type key struct {
		file  string
		check string
	}
	byKey := map[key][]*allowDirective{}
	for _, a := range allows {
		if known[a.check] && a.reason != "" {
			byKey[key{a.file, a.check}] = append(byKey[key{a.file, a.check}], a)
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range byKey[key{d.File, d.Check}] {
			// A directive covers its own line (trailing comment) and the
			// line directly below (directive-above-statement).
			if d.Line == a.line || d.Line == a.line+1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case !known[a.check]:
			kept = append(kept, Diagnostic{
				File: a.file, Line: a.line, Col: 1, Check: BadDirective,
				Message: fmt.Sprintf("//lint:allow names unknown check %q", a.check),
			})
		case a.reason == "":
			kept = append(kept, Diagnostic{
				File: a.file, Line: a.line, Col: 1, Check: BadDirective,
				Message: fmt.Sprintf("//lint:allow %s is missing a reason — every suppression must say why", a.check),
			})
		case !a.used:
			kept = append(kept, Diagnostic{
				File: a.file, Line: a.line, Col: 1, Check: BadDirective,
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing on this or the next line — stale directive", a.check),
			})
		}
	}
	return kept
}

// WriteText renders diagnostics one per line in the canonical
// "file:line: [check] message" form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTextWhy is WriteText plus the -why explanation: diagnostics that
// carry an interprocedural chain print it indented on the following line as
// "why: entry → … → function", so the reader sees how the flagged code is
// reached from the module's API surface.
func WriteTextWhy(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
		if len(d.Chain) > 0 {
			if _, err := fmt.Fprintf(w, "    why: %s\n", strings.Join(d.Chain, " → ")); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders diagnostics as an indented, deterministic JSON array
// (empty slice, not null, when clean) — the -json contract.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// InspectFiles walks every file of the pass's package with ast.Inspect.
func (p *Pass) InspectFiles(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
