// Fixture for the errwrap check: fmt.Errorf flattening an error operand
// with %v/%s is flagged; %w wrapping, error-free formats, and a justified
// //lint:allow escape pass.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("errwrap fixture: base failure")

func bad(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want `use %w`
}

func badMixed(object string, err error) error {
	return fmt.Errorf("object %s: %s", object, err) // want `use %w`
}

func goodWrap(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

func goodNoErrorOperand(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

func goodSentinel() error {
	return fmt.Errorf("while loading: %w", errBase)
}

func allowedEscape(err error) string {
	//lint:allow errwrap fixture: display-only message, deliberately flattened for the report footer
	return fmt.Errorf("display: %v", err).Error()
}
