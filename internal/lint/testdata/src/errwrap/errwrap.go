// Fixture for the errwrap check: fmt.Errorf flattening an error operand
// with %v/%s is flagged; %w wrapping, error-free formats, and a justified
// //lint:allow escape pass.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("errwrap fixture: base failure")

func bad(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want `use %w`
}

func badMixed(object string, err error) error {
	return fmt.Errorf("object %s: %s", object, err) // want `use %w`
}

func goodWrap(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

func goodNoErrorOperand(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

func goodSentinel() error {
	return fmt.Errorf("while loading: %w", errBase)
}

func goodMultiWrap(parse, close error) error {
	// Two %w verbs, two error operands: legal since Go 1.20, both visible
	// to errors.Is/As.
	return fmt.Errorf("parse: %w (and on close: %w)", parse, close)
}

func badPartialWrap(parse, close error) error {
	return fmt.Errorf("parse: %w (close: %v)", parse, close) // want `wraps 1 of 2 error operands`
}

func goodJoined(parse, close error) error {
	// errors.Join collapses the pair into one operand that unwraps to both.
	return fmt.Errorf("teardown: %w", errors.Join(parse, close))
}

func badLiteralPercentW(err error) error {
	// "%%w" renders as a literal "%w" — the operand is still flattened.
	return fmt.Errorf("expected a %%w here: %v", err) // want `use %w`
}

func allowedEscape(err error) string {
	//lint:allow errwrap fixture: display-only message, deliberately flattened for the report footer
	return fmt.Errorf("display: %v", err).Error()
}
