// Fixture for the wallclock check: wall-clock reads and math/rand imports
// are flagged outside obs/pool; a justified //lint:allow escapes.
package wallclock

import (
	"math/rand" // want `import of math/rand`
	"time"
)

func badNow() int64 {
	return time.Now().UnixNano() // want `time.Now outside obs/pool`
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since outside obs/pool`
}

func seeded(seed int64) int {
	// Uses of the (flagged) import are fine to exercise: the import line
	// carries the single diagnostic for the package's rand dependency.
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func goodDeterministicClock(ticks int64) time.Duration {
	// Deriving durations from logical ticks is the sanctioned pattern.
	return time.Duration(ticks) * time.Millisecond
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want `time.After outside obs/pool`
}

func badTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick outside obs/pool`
}

func badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time.NewTicker outside obs/pool`
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer outside obs/pool`
}

func goodStoppedTimer(d time.Duration) {
	//lint:allow wallclock fixture: demonstrates a justified timer suppression
	t := time.NewTimer(d)
	t.Stop()
}

func allowedEscape() time.Time {
	//lint:allow wallclock fixture: demonstrates a justified suppression of a clock read
	return time.Now()
}
