// Fixture for the nakedgoroutine check: `go` statements are flagged; the
// sequential path and a justified //lint:allow escape are not.
package nakedgoroutine

func bad(ch chan<- int) {
	go func() { ch <- 1 }() // want `goroutine started outside internal/pool`
}

func badNamed(ch chan<- int) {
	go send(ch) // want `goroutine started outside internal/pool`
}

func send(ch chan<- int) { ch <- 2 }

func goodSequential(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

func allowedEscape(ch chan<- int) {
	//lint:allow nakedgoroutine fixture: lifecycle goroutine bounded by channel close, not a worker
	go send(ch)
}
