module orderflow

go 1.22
