package helper

import "sort"

// Keys returns m's keys in iteration order. The index-assignment shape
// never appends inside the range, so the per-function maprange check stays
// silent — only the interprocedural engine sees the hazard escape.
func Keys(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k
		i++
	}
	return out
}

// SortedKeys is the canonical-order variant.
func SortedKeys(m map[string]int) []string {
	ks := Keys(m)
	sort.Strings(ks)
	return ks
}
