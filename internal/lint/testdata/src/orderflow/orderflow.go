package orderflow

import (
	"fmt"
	"io"
	"sort"

	"orderflow/helper"
)

// Summary renders m through an unexported helper: the map-order hazard is
// two calls and one package away from the exported entry point.
func Summary(w io.Writer, m map[string]int) {
	describe(w, m)
}

func describe(w io.Writer, m map[string]int) {
	ks := helper.Keys(m)
	fmt.Fprintf(w, "%v\n", ks) // want `map-iteration-ordered return of orderflow/helper\.Keys`
}

// SummarySorted uses the canonical variant: clean.
func SummarySorted(w io.Writer, m map[string]int) {
	ks := helper.SortedKeys(m)
	fmt.Fprintf(w, "%v\n", ks)
}

// SummaryLocalSort collects, then sorts at the call site: clean.
func SummaryLocalSort(w io.Writer, m map[string]int) {
	ks := helper.Keys(m)
	sort.Strings(ks)
	fmt.Fprintf(w, "%v\n", ks)
}

// Cache buffers hot keys: Fill taints the field inside a range, Dump sinks
// it from a different method entirely.
type Cache struct {
	hot []string
}

func (c *Cache) Fill(m map[string]bool) {
	for k := range m {
		c.hot = append(c.hot, k)
	}
}

func (c *Cache) Dump(w io.Writer) {
	fmt.Fprintln(w, c.hot) // want `field orderflow\.Cache\.hot`
}

// Feed streams keys through a channel field: the order crosses a
// goroutine boundary before sinking.
type Feed struct {
	ch chan string
}

func (f *Feed) Pump(m map[string]struct{}) {
	for k := range m {
		f.ch <- k
	}
}

func (f *Feed) Drain(w io.Writer) {
	for v := range f.ch {
		fmt.Fprintln(w, v) // want `channel field orderflow\.Feed\.ch`
	}
}

// Debug is the sanctioned escape: ordering is immaterial in a debug dump.
func Debug(w io.Writer, m map[string]int) {
	ks := helper.Keys(m)
	//lint:allow orderflow debug dump, ordering immaterial
	fmt.Fprintf(w, "%v\n", ks)
}
