// Fixture for the panicdiscipline check: panic() is flagged; returning a
// validated error and the caller-bug //lint:allow escape are not.
package panicdiscipline

import "fmt"

func bad(x int) {
	if x < 0 {
		panic("negative input") // want `panic outside internal/pool`
	}
}

func goodValidatedError(x int) error {
	if x < 0 {
		return fmt.Errorf("panicdiscipline fixture: negative input %d", x)
	}
	return nil
}

func goodShadowedPanic() {
	// A local function named panic is not the builtin; the checker resolves
	// through go/types and must not flag this.
	panic := func(string) {}
	panic("not the builtin")
}

func allowedEscape(ok bool) {
	if !ok {
		//lint:allow panicdiscipline fixture: caller-bug invariant, unreachable from any trace input
		panic("invariant violated")
	}
}
