// Fixture for the maprange check: iterating a map into an ordered sink
// without a canonical sort is flagged; collect-then-sort, commutative
// folds, and justified //lint:allow escapes are not.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys" which is never sorted`
		keys = append(keys, k)
	}
	return keys
}

func badPrint(m map[string]int, b *strings.Builder) {
	for k, v := range m { // want `calls fmt.Fprintf in map order`
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `calls WriteString on a writer`
		b.WriteString(k)
	}
	return b.String()
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodCommutativeFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// goodDenseSliceScan is the idiom that replaced the lattice's map-keyed
// concept store: intern keys to dense IDs once, keep the values in a
// slice, and iterate the slice — insertion order is deterministic, so no
// sort (and no allow directive) is needed.
func goodDenseSliceScan(ids map[string]int, byID []int, b *strings.Builder) {
	for _, v := range byID {
		fmt.Fprintf(b, "%d\n", v)
	}
	_ = ids
}

func allowedEscape(m map[string]int) []string {
	var out []string
	//lint:allow maprange fixture: consumer treats the slice as a set and sorts before rendering
	for k := range m {
		out = append(out, k)
	}
	return out
}
