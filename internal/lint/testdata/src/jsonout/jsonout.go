// Fixture for the -json golden test: a package tripping several checks at
// once, plus one malformed //lint:allow (missing its reason) so the golden
// document pins the baddirective shape too.
package jsonout

import "fmt"

func boom(x int) {
	if x < 0 {
		panic("negative")
	}
}

func flatten(err error) error {
	//lint:allow errwrap
	return fmt.Errorf("flattened: %v", err)
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
