// Fixture for the nilreceiver check: exported pointer-receiver methods
// must open with a nil guard; value receivers, unexported methods, both
// guard shapes, and a justified //lint:allow escape pass.
package nilreceiver

// Run mimics an obs-style nil-off handle.
type Run struct{ n int }

func (r *Run) Bad() int { // want `must begin with .if r == nil.`
	return r.n
}

func (r *Run) BadLateGuard() int { // want `must begin with .if r == nil.`
	x := 1
	if r == nil {
		return x
	}
	return r.n + x
}

func (r *Run) GoodGuard() int {
	if r == nil {
		return 0
	}
	return r.n
}

func (r *Run) GoodInvertedGuard() {
	if r != nil {
		r.n++
	}
}

func (r *Run) GoodWidenedGuard(off bool) int {
	if r == nil || off {
		return 0
	}
	return r.n
}

func (r Run) GoodValueReceiver() int { return r.n }

func (r *Run) unexported() int { return r.n }

func (r *Run) GoodEmpty() {}

//lint:allow nilreceiver fixture: handle documented always-non-nil, returned only by a guarded constructor
func (r *Run) AllowedEscape() int {
	return r.n
}
