// Fixture for the ctxdiscipline check's package-main exemption: entry
// points legitimately own the root context, so Background/TODO here carry
// no diagnostics (this file has zero want comments on purpose).
package main

import "context"

func main() {
	ctx := context.Background()
	if err := serve(ctx); err != nil {
		panic(err)
	}
}

func serve(ctx context.Context) error {
	return ctx.Err()
}
