// Fixture for the obsdiscipline check: obs.Run metric names must be
// constant package-prefixed dotted literals. Literals and named constants
// pass; runtime concatenation, plain variables, and malformed constants
// are caught; a justified //lint:allow escapes.
package obsdiscipline

import "difftrace/internal/obs"

const goodName = "fixture.events_kept"

// register exercises every calling shape against one run handle.
func register(r *obs.Run, key string) {
	r.Counter("fixture.objects").Add(1)          // literal: ok
	r.Gauge(goodName).Set(2)                     // named constant: ok
	r.Histogram("fixture.latency_ms").Observe(3) // literal: ok
	r.Counter("fixture." + "failed").Add(1)      // constant folding: ok

	r.Counter("fixture." + key + ".objects").Add(1) // want `not a compile-time constant`
	r.Gauge(key).Set(4)                             // want `not a compile-time constant`
	r.Histogram("latency").Observe(5)               // want `not package-prefixed dotted snake_case`
	r.Counter("Fixture.objects").Add(6)             // want `not package-prefixed dotted snake_case`
	r.Gauge("fixture.heap-bytes").Set(7)            // want `not package-prefixed dotted snake_case`

	//lint:allow obsdiscipline this fixture demonstrates the sanctioned escape for a genuinely dynamic name
	r.Counter("fixture." + key).Add(8)
}

// lookalike has the same method names on a local type; the check must not
// fire on them (receiver resolution is by type, not by spelling).
type lookalike struct{}

func (lookalike) Counter(name string) lookalike { return lookalike{} }
func (l lookalike) Add(n int64)                 {}

func localType(key string) {
	var l lookalike
	l.Counter("whatever " + key).Add(9)
}
