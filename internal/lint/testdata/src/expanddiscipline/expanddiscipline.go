// Fixture for the expanddiscipline check: any production use of
// nlr.Expand — direct call, aliased import, or bare function reference —
// is flagged; summarized-form accessors stay clean; a justified
// //lint:allow escapes.
package expanddiscipline

import (
	"difftrace/internal/nlr"
	summarized "difftrace/internal/nlr"
)

func badCall(elems []nlr.Element) []string {
	return nlr.Expand(elems) // want `nlr\.Expand materializes`
}

func badAliasedCall(elems []nlr.Element) int {
	return len(summarized.Expand(elems)) // want `nlr\.Expand materializes`
}

func badReference() func([]nlr.Element) []string {
	// Passing Expand around is as forbidden as calling it: the
	// materialization just happens at a distance.
	return nlr.Expand // want `nlr\.Expand materializes`
}

func goodSummarizedAccess(elems []nlr.Element) []string {
	// Tokens renders the summarized form without expanding loops — the
	// sanctioned way to look at NLR output.
	return nlr.Tokens(elems)
}

// Expand here is a local function that happens to share the name; the
// type checker keeps it off the check's radar.
func Expand(n int) int { return n * 2 }

func goodLocalExpand() int { return Expand(21) }

func allowedOracle(elems []nlr.Element) []string {
	//lint:allow expanddiscipline fixture: demonstrates a justified oracle that needs the full expansion
	return nlr.Expand(elems)
}
