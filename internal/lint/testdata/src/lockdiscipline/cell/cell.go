package cell

import "sync"

// Gauge guards Val with mu on every disciplined path.
type Gauge struct {
	mu  sync.Mutex
	Val []string
}

func (g *Gauge) Set(v []string) {
	g.mu.Lock()
	g.Val = v
	g.mu.Unlock()
}

func (g *Gauge) Append(v string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.Val = append(g.Val, v)
}

// Render locks, then renders through an internal helper: the
// called-with-lock-held fixpoint keeps renderLocked clean without
// annotations.
func (g *Gauge) Render() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.renderLocked()
}

func (g *Gauge) renderLocked() string {
	if len(g.Val) == 0 {
		return ""
	}
	return g.Val[0]
}
