package lockdiscipline

import (
	"sync"

	"lockdiscipline/cell"
)

// Peek reaches an unguarded read two frames from the exported surface and
// one package away from the struct's home.
func Peek(g *cell.Gauge) int {
	return grab(g)
}

func grab(g *cell.Gauge) int {
	return len(g.Val) // want `guarded by lockdiscipline/cell\.Gauge\.mu`
}

// Counter exercises the same discipline within one package, plus the
// constructor exemption.
type Counter struct {
	mu sync.Mutex
	n  []int
}

// New initializes without the lock: constructors are exempt, the struct is
// not yet published.
func New() *Counter {
	c := &Counter{}
	c.n = make([]int, 0, 8)
	return c
}

func (c *Counter) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = append(c.n, v)
}

func (c *Counter) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.n)
}

func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = c.n[:0]
	c.mu.Unlock()
}

// Snapshot forgets the lock on a rarely-exercised path.
func (c *Counter) Snapshot() []int {
	return append([]int(nil), c.n...) // want `guarded by lockdiscipline\.Counter\.mu`
}

// Rough is the sanctioned escape: an advisory statistic where a torn read
// is acceptable.
func (c *Counter) Rough() int { return c.roughLen() }

func (c *Counter) roughLen() int {
	//lint:allow lockdiscipline advisory statistic, torn read acceptable
	return len(c.n)
}
