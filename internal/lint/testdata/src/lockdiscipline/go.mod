module lockdiscipline

go 1.22
