package ctxflow

import (
	"context"

	"ctxflow/work"
)

// Run receives a ctx but hands the work to the legacy API: the caller's
// deadline stops propagating right here.
func Run(ctx context.Context, n int) int {
	return work.Do(n) // want `call ctxflow/work\.DoContext`
}

// RunGood forwards cancellation.
func RunGood(ctx context.Context, n int) int {
	return work.DoContext(ctx, n)
}

// RunPure calls a helper that has no Context sibling: clean.
func RunPure(ctx context.Context, n int) int {
	return work.Pure(n)
}

// Legacy has no ctx to drop: clean.
func Legacy(n int) int {
	return work.Do(n)
}

// Fire is the sanctioned escape: a fire-and-forget audit write that must
// outlive the request.
func Fire(ctx context.Context, n int) int {
	//lint:allow ctxflow fire-and-forget audit write outlives the request
	return work.Do(n)
}
