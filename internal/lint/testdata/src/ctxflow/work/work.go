package work

import "context"

// Do is the legacy entry point; DoContext is its cancellation-aware
// sibling, per the module's Do/DoContext pairing convention.
func Do(n int) int {
	return DoContext(context.Background(), n)
}

func DoContext(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n
}

// Pure has no Context sibling: calling it from ctx-bearing code is fine.
func Pure(n int) int { return n * 2 }
