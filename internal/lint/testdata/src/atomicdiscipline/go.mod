module atomicdiscipline

go 1.22
