package atomicdiscipline

import "sync/atomic"

// Stats mixes an atomic counter with ordinary fields.
type Stats struct {
	hits int64
	name string
}

// New initializes before publication: constructors are exempt.
func New(name string) *Stats {
	s := &Stats{}
	s.hits = 0
	s.name = name
	return s
}

func (s *Stats) Hit() { atomic.AddInt64(&s.hits, 1) }

func (s *Stats) Load() int64 { return atomic.LoadInt64(&s.hits) }

// Racy reads the counter without atomic: races with every concurrent Hit.
func (s *Stats) Racy() int64 {
	return s.hits // want `managed with sync/atomic but read plainly`
}

// Bump writes it plainly, which is worse.
func (s *Stats) Bump() {
	s.hits++ // want `managed with sync/atomic but written plainly`
}

// Name never touches the counter: ordinary fields stay out of scope.
func (s *Stats) Name() string { return s.name }

// Snap is the sanctioned escape: a snapshot taken after writers quiesce.
func (s *Stats) Snap() int64 {
	//lint:allow atomicdiscipline quiescent snapshot, writers stopped
	return s.hits
}
