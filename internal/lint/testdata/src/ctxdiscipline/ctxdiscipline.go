// Fixture for the ctxdiscipline check: Background/TODO minted outside
// package main, ctx in a non-first parameter slot, and ctx parked in a
// struct field are flagged; ctx-first flow and a justified //lint:allow
// escape.
package ctxdiscipline

import "context"

func mintsRoot() context.Context {
	return context.Background() // want `context.Background outside package main`
}

func mintsTODO() {
	_ = context.TODO() // want `context.TODO outside package main`
}

func ctxSecond(name string, ctx context.Context) error { // want `context.Context is parameter 2`
	_ = name
	return ctx.Err()
}

type holder struct {
	ctx  context.Context // want `context.Context stored in a struct field`
	name string
}

type middleCtx interface {
	Run(id int, ctx context.Context) error // want `context.Context is parameter 2`
}

// goodFlow is the sanctioned shape: ctx first, passed down, never stored.
func goodFlow(ctx context.Context, name string) error {
	f := func(ctx context.Context, n int) error { return ctx.Err() }
	_ = name
	return f(ctx, 1)
}

// nilCtxWrapper is the legacy-entry-point convention: no Background(),
// the Context variant treats nil as "never cancelled".
func nilCtxWrapper(name string) error {
	return goodFlow(nil, name)
}

func allowedEscape() context.Context {
	//lint:allow ctxdiscipline fixture: demonstrates a justified root-context mint
	return context.Background()
}
