// Package linttest is the fixture harness for difftracelint checks: it
// loads a testdata package, runs one check over it with no project config
// (so exemption tables don't mask the check under test), and compares the
// diagnostics against `// want "regexp"` expectation comments, in the
// spirit of golang.org/x/tools' analysistest but stdlib-only.
//
// A want comment binds to its own line: every diagnostic must be matched
// by a want on its line, and every want must match at least one diagnostic.
// //lint:allow directives in fixtures are honored, which is how each
// fixture demonstrates its check's sanctioned-escape pattern.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"difftrace/internal/lint"
)

// wantRe accepts both quoting styles: // want "..." and // want `...`.
var wantRe = regexp.MustCompile("//\\s*want\\s+(\".*\"|`[^`]*`)\\s*$")

// Run loads fixtureDir as a standalone package and checks check against
// its want comments.
func Run(t *testing.T, check *lint.Check, fixtureDir string) {
	t.Helper()
	diags := Diagnostics(t, []*lint.Check{check}, fixtureDir)
	files, err := filepath.Glob(filepath.Join(fixtureDir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, fixtureDir, files, diags)
}

// RunModule loads fixtureDir as a complete module (it must contain its own
// go.mod) and checks check against want comments across every package —
// the harness for interprocedural fixtures, whose violations span package
// boundaries.
func RunModule(t *testing.T, check *lint.Check, fixtureDir string) {
	t.Helper()
	diags := ModuleDiagnostics(t, []*lint.Check{check}, fixtureDir)
	var files []string
	err := filepath.WalkDir(fixtureDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, fixtureDir, files, diags)
}

// matchWants scans want comments out of files (named relative to root, the
// way diagnostics are) and reconciles them against diags: every diagnostic
// needs a matching want on its line, every want needs a diagnostic.
func matchWants(t *testing.T, root string, files []string, diags []lint.Diagnostic) {
	t.Helper()
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("%s:%d: unparseable want comment %s", path, i+1, m[1])
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
			}
			wants = append(wants, &want{file: filepath.ToSlash(rel), line: i + 1, re: re})
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// Diagnostics loads fixtureDir and returns the surviving diagnostics of the
// given checks, with file paths relative to the fixture directory.
func Diagnostics(t *testing.T, checks []*lint.Check, fixtureDir string) []lint.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, filepath.Base(abs))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	runner := lint.NewRunner(checks, nil, abs)
	return runner.Run([]*lint.Package{pkg})
}

// ModuleDiagnostics loads fixtureDir as its own module and returns the
// surviving diagnostics of the given checks over all of its packages, with
// file paths relative to the fixture root.
func ModuleDiagnostics(t *testing.T, checks []*lint.Check, fixtureDir string) []lint.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModRoot != abs {
		t.Fatalf("fixture %s has no go.mod of its own (loader rooted at %s)", fixtureDir, loader.ModRoot)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", fixtureDir, err)
	}
	runner := lint.NewRunner(checks, nil, abs)
	return runner.Run(pkgs)
}
