package lint

import (
	"strings"
	"testing"
)

func TestAppliesTables(t *testing.T) {
	r := NewRunner(nil, &Config{
		Exempt: map[string][]string{"wallclock": {"internal/obs", "internal/pool"}},
		Only:   map[string][]string{"nilreceiver": {"internal/obs"}},
	}, "/m")
	cases := []struct {
		check, rel string
		want       bool
	}{
		{"wallclock", "internal/obs", false},
		{"wallclock", "internal/obs/sub", false},
		{"wallclock", "internal/obscure", true}, // prefix match is per path element
		{"wallclock", "internal/core", true},
		{"nilreceiver", "internal/obs", true},
		{"nilreceiver", "internal/core", false},
		{"maprange", "anything", true}, // absent from both tables: runs everywhere
	}
	for _, c := range cases {
		if got := r.applies(c.check, c.rel); got != c.want {
			t.Errorf("applies(%s, %s) = %v, want %v", c.check, c.rel, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/core/run.go", Line: 42, Col: 3, Check: "maprange", Message: "boom"}
	if got, want := d.String(), "internal/core/run.go:42: [maprange] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSuppressLineCoverage(t *testing.T) {
	check := &Check{Name: "c", Doc: "d"}
	r := NewRunner([]*Check{check}, nil, "/m")
	allow := &allowDirective{file: "f.go", line: 10, check: "c", reason: "why"}
	diags := []Diagnostic{
		{File: "f.go", Line: 10, Check: "c", Message: "same line"},
		{File: "f.go", Line: 11, Check: "c", Message: "line below"},
		{File: "f.go", Line: 12, Check: "c", Message: "out of range"},
		{File: "g.go", Line: 10, Check: "c", Message: "other file"},
	}
	kept := r.suppress(diags, []*allowDirective{allow})
	var msgs []string
	for _, d := range kept {
		msgs = append(msgs, d.Message)
	}
	if got := strings.Join(msgs, "|"); got != "out of range|other file" {
		t.Errorf("suppress kept %q", got)
	}
}

func TestSuppressHygiene(t *testing.T) {
	check := &Check{Name: "c", Doc: "d"}
	r := NewRunner([]*Check{check}, nil, "/m")
	noReason := &allowDirective{file: "f.go", line: 1, check: "c"}
	unknown := &allowDirective{file: "f.go", line: 2, check: "mystery", used: true}
	stale := &allowDirective{file: "f.go", line: 3, check: "c", reason: "why"}
	kept := r.suppress([]Diagnostic{{File: "f.go", Line: 1, Check: "c", Message: "v"}},
		[]*allowDirective{noReason, unknown, stale})
	// The reasonless directive must NOT suppress, and all three directives
	// must surface as baddirective findings.
	var badMsgs, checkMsgs int
	for _, d := range kept {
		switch d.Check {
		case BadDirective:
			badMsgs++
		case "c":
			checkMsgs++
		}
	}
	if checkMsgs != 1 {
		t.Errorf("reasonless directive suppressed the diagnostic (kept=%v)", kept)
	}
	if badMsgs != 3 {
		t.Errorf("want 3 baddirective findings (missing reason, unknown check, stale), got %d: %v", badMsgs, kept)
	}
}
