// The summary walker: one source-ordered pass over each function body that
// simultaneously tracks order-taint (which locals carry map-iteration
// order), the lexical lock set (which receiver mutexes are held), atomic
// field uses, context forwarding, and module call sites. The walk is
// per-package and self-contained, so packages build in parallel and cache
// independently; everything cross-package is deferred to the Set fixpoints.
//
// Known, deliberate approximations:
//   - taint is field-based (one tainted instance taints the field key
//     module-wide) and does not flow through function parameters;
//   - the lock simulation is lexical and linear: branches are merged
//     optimistically in source order, and lock/unlock helper methods
//     propagate only within their own package;
//   - embedded (unnamed) mutexes and cross-package atomic/plain mixing are
//     not modeled.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"difftrace/internal/lint"
	"difftrace/internal/lint/callgraph"
)

// moduleIndex is the cross-package type index the walkers share: every
// named-struct field in the module keyed for taint, and the mutex topology
// for the lock simulation.
type moduleIndex struct {
	loaded     map[string]bool       // loaded package paths (the closed world)
	fieldKey   map[*types.Var]string // struct field object -> "pkg.Type.field"
	fieldOwner map[*types.Var]string // struct field object -> "pkg.Type"
	mutexKey   map[*types.Var]string // sync.Mutex/RWMutex fields only
	structMu   map[string][]string   // struct key -> its mutex keys
	guarded    map[*types.Var]bool   // fields whose plain accesses are recorded
}

func buildIndex(pkgs []*lint.Package) *moduleIndex {
	idx := &moduleIndex{
		loaded:     make(map[string]bool),
		fieldKey:   make(map[*types.Var]string),
		fieldOwner: make(map[*types.Var]string),
		mutexKey:   make(map[*types.Var]string),
		structMu:   make(map[string][]string),
		guarded:    make(map[*types.Var]bool),
	}
	for _, pkg := range pkgs {
		idx.loaded[pkg.Path] = true
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			structKey := pkg.Path + "." + tn.Name()
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				fkey := structKey + "." + f.Name()
				if isMutexType(f.Type()) {
					idx.mutexKey[f] = fkey
					idx.structMu[structKey] = append(idx.structMu[structKey], fkey)
				} else {
					idx.fieldKey[f] = fkey
					idx.fieldOwner[f] = structKey
				}
			}
		}
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			if len(idx.structMu[pkg.Path+"."+tn.Name()]) == 0 {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); !isMutexType(f.Type()) {
					idx.guarded[f] = true
				}
			}
		}
	}
	return idx
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pkgBuilder accumulates one package's summary.
type pkgBuilder struct {
	mp  *lint.ModulePass
	pkg *lint.Package
	idx *moduleIndex
	ps  *PkgSummary

	// atomicFields are this package's fields reached through sync/atomic
	// (found by the pre-scan); their plain accesses are recorded even when
	// the struct has no mutex.
	atomicFields map[*types.Var]bool
	// lockExit maps a method key to the receiver mutex keys it leaves
	// locked at exit — the same-package lock-helper pre-pass.
	lockExit map[string][]string
}

func buildPkg(mp *lint.ModulePass, pkg *lint.Package, idx *moduleIndex) *PkgSummary {
	b := &pkgBuilder{
		mp:  mp,
		pkg: pkg,
		idx: idx,
		ps: &PkgSummary{
			Path: pkg.Path,
			Rel:  mp.PkgRel(pkg),
		},
		atomicFields: make(map[*types.Var]bool),
		lockExit:     make(map[string][]string),
	}
	b.scanMutexStructs()
	b.preScan()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			b.walkFunc(callgraph.KeyOf(fn), fn.Type().(*types.Signature), fd.Body, nil)
		}
	}
	return b.ps
}

func (b *pkgBuilder) scanMutexStructs() {
	scope := b.pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		key := b.pkg.Path + "." + tn.Name()
		mus := b.idx.structMu[key]
		if len(mus) == 0 {
			continue
		}
		st := tn.Type().Underlying().(*types.Struct)
		ms := MutexStruct{Type: key, Mutexes: mus}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); !isMutexType(f.Type()) {
				ms.Fields = append(ms.Fields, b.idx.fieldKey[f])
			}
		}
		b.ps.MutexStructs = append(b.ps.MutexStructs, ms)
	}
}

// preScan makes two cheap passes before the main walk: collect the fields
// this package touches through sync/atomic, and compute each method's
// lock-at-exit delta so same-package lock helpers (func (g *G) lock()
// { g.mu.Lock() }) extend the caller's lexical lock set.
func (b *pkgBuilder) preScan() {
	for _, f := range b.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := b.staticCallee(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				u, ok := a.(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if sel, ok := u.X.(*ast.SelectorExpr); ok {
					if fv := b.fieldOf(sel); fv != nil {
						b.atomicFields[fv] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range b.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			fn, ok := b.pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recvName := ""
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if recvName == "" || recvName == "_" {
				continue
			}
			if delta := b.lockDelta(fd.Body, recvName); len(delta) > 0 {
				b.lockExit[callgraph.KeyOf(fn)] = delta
			}
		}
	}
}

// lockDelta simulates only the lock events of a body and returns the
// receiver mutex keys still held (not via defer) at exit.
func (b *pkgBuilder) lockDelta(body *ast.BlockStmt, recvName string) []string {
	held := make(map[string]bool)
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.CallExpr:
			mkey, base, op := b.lockEvent(x)
			if mkey == "" || base != recvName {
				return true
			}
			switch op {
			case "Lock", "RLock":
				if !deferred[x] {
					held[mkey] = true
				}
			case "Unlock", "RUnlock":
				delete(held, mkey) // deferred or not: released by exit
			}
		}
		return true
	})
	var out []string
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockEvent decodes a call as a mutex operation: base.mu.Lock() returns
// (mutex key, base expression string, op name); anything else returns "".
func (b *pkgBuilder) lockEvent(call *ast.CallExpr) (mkey, base, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", "", ""
	}
	msel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fv := b.selectedField(msel)
	if fv == nil {
		return "", "", ""
	}
	mk, ok := b.idx.mutexKey[fv]
	if !ok {
		return "", "", ""
	}
	return mk, types.ExprString(msel.X), name
}

// selectedField resolves a selector to the struct field object it reads,
// or nil when it is not a field selection.
func (b *pkgBuilder) selectedField(sel *ast.SelectorExpr) *types.Var {
	s, ok := b.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOf is selectedField restricted to fields the index knows (any named
// module struct).
func (b *pkgBuilder) fieldOf(sel *ast.SelectorExpr) *types.Var {
	fv := b.selectedField(sel)
	if fv == nil {
		return nil
	}
	if _, ok := b.idx.fieldKey[fv]; !ok {
		return nil
	}
	return fv
}

func (b *pkgBuilder) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := b.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := b.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (b *pkgBuilder) pos(p token.Pos) Pos {
	file, line, col := b.mp.RelPosition(p)
	return Pos{File: file, Line: line, Col: col}
}

// heldLock is one entry of the lexical lock set.
type heldLock struct {
	key      string // mutex key
	base     string // owner expression ("g", "s.job")
	deferred bool   // released by defer: held through the rest of the body
}

// funcWalker simulates one function-like body in source order.
type funcWalker struct {
	b   *pkgBuilder
	fs  *FuncSummary
	sig *types.Signature

	ctxObj   types.Object
	taint    map[types.Object]map[string]bool
	held     []*heldLock
	deferred map[*ast.CallExpr]bool
	asyncLit map[*ast.FuncLit]bool // launched via go/defer: no lock inheritance
	writes   map[ast.Node]bool     // selector nodes in write position
	skip     map[ast.Node]bool     // selectors consumed by atomic ops
	funIdent map[*ast.Ident]bool
	litN     int
}

// walkFunc simulates one function-like body. held seeds the lexical lock
// set: nil for declarations, the definition-point snapshot for function
// literals (a closure built inside a critical section runs under it unless
// launched with go/defer).
func (b *pkgBuilder) walkFunc(key string, sig *types.Signature, body *ast.BlockStmt, held []*heldLock) {
	fs := &FuncSummary{Key: key, CtxParam: -1}
	w := &funcWalker{
		b:        b,
		fs:       fs,
		sig:      sig,
		held:     held,
		taint:    make(map[types.Object]map[string]bool),
		deferred: make(map[*ast.CallExpr]bool),
		asyncLit: make(map[*ast.FuncLit]bool),
		writes:   make(map[ast.Node]bool),
		skip:     make(map[ast.Node]bool),
		funIdent: make(map[*ast.Ident]bool),
	}
	if params := sig.Params(); params != nil {
		for i := 0; i < params.Len(); i++ {
			if isCtxType(params.At(i).Type()) {
				fs.CtxParam = i
				w.ctxObj = params.At(i)
				break
			}
		}
	}
	if results := sig.Results(); results != nil {
		for i := 0; i < results.Len(); i++ {
			t := results.At(i).Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				if _, isStruct := n.Underlying().(*types.Struct); isStruct && n.Obj().Pkg() != nil {
					fs.Constructs = append(fs.Constructs, n.Obj().Pkg().Path()+"."+n.Obj().Name())
				}
			}
		}
	}
	b.ps.Funcs = append(b.ps.Funcs, fs)
	w.walk(body)
	for _, h := range w.held {
		if !h.deferred {
			fs.LocksAtExit = appendUnique(fs.LocksAtExit, h.key)
		}
	}
	sort.Strings(fs.LocksAtExit)
}

func (w *funcWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.litN++
			key := fmt.Sprintf("%s$%d", w.fs.Key, w.litN)
			if sig, ok := w.b.pkg.Info.TypeOf(x).(*types.Signature); ok {
				var inherit []*heldLock
				if !w.asyncLit[x] {
					inherit = w.snapshot()
				}
				w.b.walkFunc(key, sig, x.Body, inherit)
			}
			return false
		case *ast.IfStmt:
			w.handleIf(x)
			return false
		case *ast.SwitchStmt:
			w.handleBranches(clausesOf(x.Body), x.Init, x.Tag)
			return false
		case *ast.TypeSwitchStmt:
			w.handleBranches(clausesOf(x.Body), x.Init, x.Assign)
			return false
		case *ast.SelectStmt:
			w.handleBranches(clausesOf(x.Body))
			return false
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				w.asyncLit[lit] = true
			}
		case *ast.DeferStmt:
			w.deferred[x.Call] = true
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				w.asyncLit[lit] = true
			}
		case *ast.AssignStmt:
			w.handleAssign(x)
		case *ast.IncDecStmt:
			w.markWrite(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				w.markWrite(x.X)
			}
		case *ast.RangeStmt:
			w.handleRange(x)
		case *ast.SendStmt:
			w.handleSend(x)
		case *ast.ReturnStmt:
			w.handleReturn(x)
		case *ast.CallExpr:
			w.handleCall(x)
		case *ast.SelectorExpr:
			w.handleSelector(x)
		case *ast.Ident:
			w.handleIdent(x)
		}
		return true
	})
}

// snapshot deep-copies the lexical lock set so a branch can be simulated
// and rolled back without the branch's mutations leaking out.
func (w *funcWalker) snapshot() []*heldLock { return cloneHeld(w.held) }

func (w *funcWalker) restore(held []*heldLock) { w.held = held }

func cloneHeld(held []*heldLock) []*heldLock {
	out := make([]*heldLock, len(held))
	for i, h := range held {
		c := *h
		out[i] = &c
	}
	return out
}

// intersectHeld keeps locks present in both arms, matching on (key, base);
// a lock deferred-released in either arm stays deferred in the join.
func intersectHeld(a, b []*heldLock) []*heldLock {
	var out []*heldLock
	for _, ha := range a {
		for _, hb := range b {
			if ha.key == hb.key && ha.base == hb.base {
				c := *ha
				c.deferred = ha.deferred || hb.deferred
				out = append(out, &c)
				break
			}
		}
	}
	return out
}

// handleIf simulates both arms from the same entry state and joins the
// fall-through paths, so `if busy { mu.Unlock(); return }` leaves the lock
// held on the code after the if.
func (w *funcWalker) handleIf(s *ast.IfStmt) {
	if s.Init != nil {
		w.walk(s.Init)
	}
	w.walk(s.Cond)
	pre := w.snapshot()
	w.walk(s.Body)
	bodyHeld, bodyTerm := w.held, terminates(s.Body)
	elseHeld, elseTerm := pre, false
	if s.Else != nil {
		w.restore(cloneHeld(pre))
		w.walk(s.Else)
		elseHeld, elseTerm = w.held, stmtTerminates(s.Else)
	}
	switch {
	case bodyTerm && elseTerm:
		w.restore(pre)
	case bodyTerm:
		w.restore(elseHeld)
	case elseTerm:
		w.restore(bodyHeld)
	default:
		w.restore(intersectHeld(bodyHeld, elseHeld))
	}
}

// handleBranches simulates switch/type-switch/select clauses independently
// from the same entry state and joins the arms that fall through. With no
// surviving arm (every clause returns) the entry state carries forward: the
// zero-clause degenerate form behaves like a no-op.
func (w *funcWalker) handleBranches(clauses []ast.Stmt, pre ...ast.Node) {
	for _, p := range pre {
		if p != nil {
			w.walk(p)
		}
	}
	entry := w.snapshot()
	var outs [][]*heldLock
	for _, c := range clauses {
		w.restore(cloneHeld(entry))
		w.walk(c)
		if !clauseTerminates(c) {
			outs = append(outs, w.held)
		}
	}
	join := entry
	for i, o := range outs {
		if i == 0 {
			join = o
		} else {
			join = intersectHeld(join, o)
		}
	}
	w.restore(join)
}

func clausesOf(b *ast.BlockStmt) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.List
}

// terminates reports whether a block always transfers control away: its
// last statement returns, branches, or panics. Good enough for the lexical
// simulation; loops and gotos are out of scope.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return x.Tok == token.BREAK || x.Tok == token.CONTINUE || x.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(x)
	case *ast.IfStmt:
		return terminates(x.Body) && x.Else != nil && stmtTerminates(x.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(x.Stmt)
	}
	return false
}

func clauseTerminates(s ast.Stmt) bool {
	var body []ast.Stmt
	switch x := s.(type) {
	case *ast.CaseClause:
		body = x.Body
	case *ast.CommClause:
		body = x.Body
	default:
		return false
	}
	if len(body) == 0 {
		return false
	}
	return stmtTerminates(body[len(body)-1])
}

// markWrite unwraps index/star/paren layers and marks the underlying field
// selector, if any, as being in write position.
func (w *funcWalker) markWrite(e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			w.writes[x] = true
			return
		default:
			return
		}
	}
}

func (w *funcWalker) handleSelector(sel *ast.SelectorExpr) {
	if w.skip[sel] {
		return
	}
	fv := w.b.selectedField(sel)
	if fv == nil {
		return
	}
	if !w.b.idx.guarded[fv] && !w.b.atomicFields[fv] {
		return
	}
	fkey := w.b.idx.fieldKey[fv]
	w.b.ps.Accesses = append(w.b.ps.Accesses, FieldAccess{
		Field: fkey,
		Write: w.writes[sel],
		Held:  w.heldFor(sel, fv),
		Fn:    w.fs.Key,
		Pos:   w.b.pos(sel.Sel.Pos()),
	})
}

// heldFor returns the mutex keys lexically held for this access: entries
// whose owner expression matches the access base and whose mutex belongs
// to the accessed struct.
func (w *funcWalker) heldFor(sel *ast.SelectorExpr, fv *types.Var) []string {
	owner := w.b.idx.fieldOwner[fv]
	relevant := w.b.idx.structMu[owner]
	if len(relevant) == 0 {
		return nil
	}
	base := types.ExprString(sel.X)
	var out []string
	for _, h := range w.held {
		if h.base != base {
			continue
		}
		for _, m := range relevant {
			if h.key == m {
				out = append(out, h.key)
			}
		}
	}
	sort.Strings(out)
	return dedup(out)
}

func (w *funcWalker) addLock(key, base string) {
	for _, h := range w.held {
		if h.key == key && h.base == base {
			return
		}
	}
	w.held = append(w.held, &heldLock{key: key, base: base})
}

func (w *funcWalker) dropLock(key, base string, byDefer bool) {
	for i, h := range w.held {
		if h.key == key && h.base == base {
			if byDefer {
				h.deferred = true
			} else {
				w.held = append(w.held[:i], w.held[i+1:]...)
			}
			return
		}
	}
}

func (w *funcWalker) heldKeys() []string {
	var out []string
	for _, h := range w.held {
		out = append(out, h.key)
	}
	sort.Strings(out)
	return dedup(out)
}

func (w *funcWalker) handleCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		w.funIdent[fun] = true
	case *ast.SelectorExpr:
		w.funIdent[fun.Sel] = true
	}

	if mkey, base, op := w.b.lockEvent(call); mkey != "" {
		switch op {
		case "Lock", "RLock":
			if !w.deferred[call] {
				w.addLock(mkey, base)
			}
		case "Unlock", "RUnlock":
			w.dropLock(mkey, base, w.deferred[call])
		}
		return
	}

	fn := w.b.staticCallee(call)
	if fn == nil {
		return
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	if pkgPath == "sync/atomic" {
		for _, a := range call.Args {
			u, ok := a.(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			sel, ok := u.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if fv := w.b.fieldOf(sel); fv != nil {
				w.skip[sel] = true
				w.b.ps.Atomics = append(w.b.ps.Atomics, AtomicUse{
					Field: w.b.idx.fieldKey[fv],
					Fn:    w.fs.Key,
					Pos:   w.b.pos(sel.Sel.Pos()),
				})
			}
		}
		return
	}

	// sort.Sort/slices.Sort and friends mutate their argument into a
	// deterministic order: launder the argument's taint.
	if (pkgPath == "sort" || pkgPath == "slices") && strings.HasPrefix(fn.Name(), "Sort") &&
		!strings.HasPrefix(fn.Name(), "Sorted") {
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := w.b.pkg.Info.Uses[id]; obj != nil {
					delete(w.taint, obj)
				}
			}
		}
		return
	}
	// sort.Strings(ks), sort.Slice(ks, less), sort.Ints — same laundering.
	if pkgPath == "sort" {
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := w.b.pkg.Info.Uses[id]; obj != nil {
					delete(w.taint, obj)
				}
			}
		}
	}

	if w.b.idx.loaded[pkgPath] {
		ck := callgraph.KeyOf(fn)
		w.b.ps.CallSites = append(w.b.ps.CallSites, CallSite{
			Caller: w.fs.Key,
			Callee: ck,
			Held:   w.heldKeys(),
		})
		// Same-package lock helper: its exit locks join our lexical set,
		// owned by the call's receiver expression.
		if delta := w.b.lockExit[ck]; len(delta) > 0 && !w.deferred[call] {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				base := types.ExprString(sel.X)
				for _, m := range delta {
					w.addLock(m, base)
				}
			}
		}
		if w.fs.CtxParam >= 0 {
			w.noteCtxUse(call, fn, ck)
		}
	}

	if desc := sinkName(fn); desc != "" {
		for _, a := range call.Args {
			for _, src := range sortedRefs(w.exprSources(a)) {
				w.b.ps.SinkFlows = append(w.b.ps.SinkFlows, SinkFlow{
					Source: src,
					Sink:   desc,
					Fn:     w.fs.Key,
					Pos:    w.b.pos(a.Pos()),
				})
			}
		}
	}
}

// noteCtxUse classifies a module call made while a ctx parameter is in
// scope: forwarding it, or calling an API that cannot take it.
func (w *funcWalker) noteCtxUse(call *ast.CallExpr, fn *types.Func, calleeKey string) {
	hasCtxArg := false
	mentionsOurCtx := false
	for _, a := range call.Args {
		if t := w.b.pkg.Info.TypeOf(a); t != nil && isCtxType(t) {
			hasCtxArg = true
		}
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && w.b.pkg.Info.Uses[id] == w.ctxObj {
				mentionsOurCtx = true
			}
			return true
		})
	}
	if hasCtxArg {
		if mentionsOurCtx {
			w.fs.ForwardsCtx = true
		}
		return
	}
	if params := fn.Type().(*types.Signature).Params(); params != nil {
		for i := 0; i < params.Len(); i++ {
			if isCtxType(params.At(i).Type()) {
				return // takes a ctx; the call just built one elsewhere
			}
		}
	}
	w.fs.CallsNoCtx = append(w.fs.CallsNoCtx, CallNoCtx{
		Callee: calleeKey,
		Pos:    w.b.pos(call.Pos()),
	})
}

// handleIdent records bare references to module functions (method values,
// callbacks handed to schedulers) as empty-held call sites.
func (w *funcWalker) handleIdent(id *ast.Ident) {
	if w.funIdent[id] {
		return
	}
	fn, ok := w.b.pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !w.b.idx.loaded[fn.Pkg().Path()] {
		return
	}
	w.b.ps.CallSites = append(w.b.ps.CallSites, CallSite{
		Caller: w.fs.Key,
		Callee: callgraph.KeyOf(fn),
	})
}

func (w *funcWalker) handleAssign(a *ast.AssignStmt) {
	srcs := make([]map[string]bool, len(a.Lhs))
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		s := w.exprSources(a.Rhs[0])
		for i := range srcs {
			srcs[i] = s
		}
	} else {
		for i := range a.Lhs {
			if i < len(a.Rhs) {
				srcs[i] = w.exprSources(a.Rhs[i])
			}
		}
	}
	replace := a.Tok == token.ASSIGN || a.Tok == token.DEFINE
	for i, lhs := range a.Lhs {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				continue
			}
			obj := w.b.pkg.Info.Defs[x]
			if obj == nil {
				obj = w.b.pkg.Info.Uses[x]
			}
			if obj == nil || !orderable(obj.Type()) {
				continue
			}
			if replace {
				if len(srcs[i]) == 0 {
					delete(w.taint, obj)
				} else {
					w.taint[obj] = copySet(srcs[i])
				}
			} else {
				w.mergeTaint(obj, srcs[i])
			}
		case *ast.SelectorExpr:
			w.markWrite(x)
			if fv := w.b.fieldOf(x); fv != nil && len(srcs[i]) > 0 {
				fkey := w.b.idx.fieldKey[fv]
				for _, src := range sortedRefs(srcs[i]) {
					w.b.ps.TaintAssigns = append(w.b.ps.TaintAssigns, TaintAssign{
						Target: "field:" + fkey,
						From:   src,
						Fn:     w.fs.Key,
						Pos:    w.b.pos(x.Sel.Pos()),
					})
				}
			}
		default:
			// out[i] = k, *p = k: merge into the root object — a partial
			// write never clears taint.
			w.markWrite(lhs)
			if root := rootIdent(lhs); root != nil {
				if obj := w.b.pkg.Info.Uses[root]; obj != nil {
					w.mergeTaint(obj, srcs[i])
				}
			}
		}
	}
}

func (w *funcWalker) handleRange(r *ast.RangeStmt) {
	t := w.b.pkg.Info.TypeOf(r.X)
	if t == nil {
		return
	}
	var seed map[string]bool
	switch t.Underlying().(type) {
	case *types.Map:
		seed = map[string]bool{"range": true}
	case *types.Chan:
		if sel, ok := ast.Unparen(r.X).(*ast.SelectorExpr); ok {
			if fv := w.b.fieldOf(sel); fv != nil {
				seed = map[string]bool{"chan:" + w.b.idx.fieldKey[fv]: true}
				break
			}
		}
		seed = w.exprSources(r.X)
	default:
		seed = w.exprSources(r.X)
	}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if e == nil {
			continue
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := w.b.pkg.Info.Defs[id]
		if obj == nil {
			obj = w.b.pkg.Info.Uses[id]
		}
		if obj != nil && orderable(obj.Type()) {
			w.taint[obj] = copySet(seed)
		}
	}
}

func (w *funcWalker) handleSend(s *ast.SendStmt) {
	srcs := w.exprSources(s.Value)
	if len(srcs) == 0 {
		return
	}
	switch ch := ast.Unparen(s.Chan).(type) {
	case *ast.SelectorExpr:
		if fv := w.b.fieldOf(ch); fv != nil {
			fkey := w.b.idx.fieldKey[fv]
			for _, src := range sortedRefs(srcs) {
				w.b.ps.TaintAssigns = append(w.b.ps.TaintAssigns, TaintAssign{
					Target: "chan:" + fkey,
					From:   src,
					Fn:     w.fs.Key,
					Pos:    w.b.pos(s.Arrow),
				})
			}
		}
	case *ast.Ident:
		if obj := w.b.pkg.Info.Uses[ch]; obj != nil {
			w.mergeTaint(obj, srcs)
		}
	}
}

func (w *funcWalker) handleReturn(r *ast.ReturnStmt) {
	collect := func(srcs map[string]bool) {
		for _, src := range sortedRefs(srcs) {
			if src == "range" {
				w.fs.UnorderedLocal = true
			} else {
				w.fs.ReturnDeps = appendUnique(w.fs.ReturnDeps, src)
			}
		}
	}
	if len(r.Results) == 0 {
		// Bare return with named results: report their current taint.
		if results := w.sig.Results(); results != nil {
			for i := 0; i < results.Len(); i++ {
				collect(w.taint[results.At(i)])
			}
		}
		return
	}
	for _, e := range r.Results {
		collect(w.exprSources(e))
	}
}

// exprSources computes the order-taint sources an expression's value
// carries: "range" for direct map iteration, and call/field/chan refs the
// module fixpoint resolves later.
func (w *funcWalker) exprSources(e ast.Expr) map[string]bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.b.pkg.Info.Uses[x]
		if obj == nil {
			obj = w.b.pkg.Info.Defs[x]
		}
		return w.taint[obj]
	case *ast.SelectorExpr:
		if fv := w.b.fieldOf(x); fv != nil {
			return map[string]bool{"field:" + w.b.idx.fieldKey[fv]: true}
		}
		return nil
	case *ast.CallExpr:
		return w.callSources(x)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
				if fv := w.b.fieldOf(sel); fv != nil {
					return map[string]bool{"chan:" + w.b.idx.fieldKey[fv]: true}
				}
			}
		}
		return w.exprSources(x.X)
	case *ast.CompositeLit:
		out := make(map[string]bool)
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			mergeInto(out, w.exprSources(el))
		}
		return out
	case *ast.IndexExpr:
		return w.exprSources(x.X)
	case *ast.SliceExpr:
		return w.exprSources(x.X)
	case *ast.StarExpr:
		return w.exprSources(x.X)
	case *ast.ParenExpr:
		return w.exprSources(x.X)
	case *ast.BinaryExpr:
		out := make(map[string]bool)
		mergeInto(out, w.exprSources(x.X))
		mergeInto(out, w.exprSources(x.Y))
		return out
	case *ast.TypeAssertExpr:
		return w.exprSources(x.X)
	}
	return nil
}

func (w *funcWalker) callSources(call *ast.CallExpr) map[string]bool {
	fn := w.b.staticCallee(call)
	if fn == nil {
		// Builtin, conversion, or function-value call: propagate argument
		// sources (append, []string(x), fn(x) all preserve order-taint).
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "make", "new", "min", "max":
				if w.b.pkg.Info.Uses[id] == nil || w.b.pkg.Info.Uses[id].Parent() == types.Universe {
					return nil
				}
			}
		}
		out := make(map[string]bool)
		for _, a := range call.Args {
			mergeInto(out, w.exprSources(a))
		}
		return out
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case pkgPath == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values"):
		return map[string]bool{"range": true}
	case (pkgPath == "slices" || pkgPath == "sort") && strings.HasPrefix(fn.Name(), "Sorted"):
		return nil // slices.Sorted(maps.Keys(m)) launders the order
	case pkgPath == "sort" || pkgPath == "slices":
		return nil
	case w.b.idx.loaded[pkgPath]:
		return map[string]bool{"call:" + callgraph.KeyOf(fn): true}
	}
	out := make(map[string]bool)
	for _, a := range call.Args {
		mergeInto(out, w.exprSources(a))
	}
	return out
}

func (w *funcWalker) mergeTaint(obj types.Object, srcs map[string]bool) {
	if len(srcs) == 0 || !orderable(obj.Type()) {
		return
	}
	if w.taint[obj] == nil {
		w.taint[obj] = make(map[string]bool)
	}
	mergeInto(w.taint[obj], srcs)
}

// sinkName classifies a callee as an ordered sink: a point where element
// order becomes observable output.
func sinkName(fn *types.Func) string {
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if pkgPath == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "fmt." + name
		}
		return ""
	}
	if pkgPath == "encoding/json" && (name == "Marshal" || name == "MarshalIndent") {
		return "json." + name
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Absorb":
			return fn.FullName()
		}
	}
	return ""
}

// orderable reports whether a value of this type can carry element order
// worth tracking. Scalars and errors are excluded to keep taint sparse.
func orderable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.TypeParam:
		return true
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	return false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func mergeInto(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

func sortedRefs(s map[string]bool) []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func dedup(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

