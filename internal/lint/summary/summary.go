// Package summary computes difftracelint's per-function summaries: for
// every function, method, and function literal in the module, a small
// serializable record of the facts the interprocedural checks compose —
// whether its returns carry map-iteration order, which context parameter it
// accepts and whether it forwards it, which mutexes it still holds at exit,
// and which struct fields it touches under which locks.
//
// Summaries are built per package (fanned out across internal/pool
// workers), optionally persisted to a JSON disk cache keyed on a
// dependency-aware source hash, and then closed under two module-wide
// fixpoints:
//
//   - ORDER: a function is "unordered" when its returns depend on map
//     iteration directly or through any chain of module calls, tainted
//     struct fields, or tainted channel fields;
//   - LOCKS: a function is "always called with mutex M held" when every
//     recorded call site holds M, either locally or by the same induction
//     on its own callers (a greatest fixpoint, so mutual recursion settles
//     on the sound side).
//
// The analysis is field-based, not instance-based: taint and lock facts
// attach to "pkg/path.Type.field" keys, so one tainted instance taints the
// field everywhere. That over-approximation keeps summaries composable and
// serializable; checks temper it with reachability and majority votes.
package summary

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"

	"difftrace/internal/lint"
	"difftrace/internal/pool"
)

// Pos is a module-relative source position, stable across machines so
// cached summaries diff cleanly.
type Pos struct {
	File string
	Line int
	Col  int
}

// CallNoCtx records a call to a module function that accepts no Context,
// made from a function that has one in scope.
type CallNoCtx struct {
	Callee string
	Pos    Pos
}

// FuncSummary is the per-function record. Key matches the callgraph node
// key (types.Func.FullName, with "$n" suffixes for literals).
type FuncSummary struct {
	Key            string
	CtxParam       int      // index of the context.Context parameter, -1 if none
	ForwardsCtx    bool     // passes its ctx parameter onward at least once
	UnorderedLocal bool     // returns map-iteration-ordered data directly
	ReturnDeps     []string `json:",omitempty"` // source refs its returns depend on
	LocksAtExit    []string `json:",omitempty"` // receiver mutexes still held on return
	Constructs     []string `json:",omitempty"` // struct keys appearing in its results
	CallsNoCtx     []CallNoCtx `json:",omitempty"`
}

// FieldAccess is one plain (non-atomic) access to a field of a
// mutex-carrying or atomically-used struct.
type FieldAccess struct {
	Field string   // "pkg/path.Type.field"
	Write bool
	Held  []string `json:",omitempty"` // mutex keys held at the access, same base
	Fn    string   // containing function key
	Pos   Pos
}

// AtomicUse is one access to a field through sync/atomic.
type AtomicUse struct {
	Field string
	Fn    string
	Pos   Pos
}

// SinkFlow records order-tainted data reaching an ordered sink (an output,
// a hash, an encoder) inside one function.
type SinkFlow struct {
	Source string // "range" | "call:K" | "field:F" | "chan:F"
	Sink   string // human-readable sink name, e.g. "fmt.Fprintf"
	Fn     string
	Pos    Pos
}

// TaintAssign records order-tainted data flowing into a struct field or a
// channel field, extending the taint across function boundaries.
type TaintAssign struct {
	Target string // "field:F" | "chan:F"
	From   string // source ref
	Fn     string
	Pos    Pos
}

// CallSite is one static reference from Caller to a module function.
// Held lists the mutex keys lexically held at the site; a bare reference
// (a function value escaping to a scheduler) records an empty Held, which
// correctly poisons the LOCKS fixpoint for that callee.
type CallSite struct {
	Caller string
	Callee string
	Held   []string `json:",omitempty"`
}

// MutexStruct describes a struct type that embeds at least one named
// sync.Mutex/sync.RWMutex field.
type MutexStruct struct {
	Type    string   // "pkg/path.Type"
	Mutexes []string // mutex field keys
	Fields  []string `json:",omitempty"` // sibling data field keys
}

// PkgSummary is everything the walker extracted from one package. It is
// the unit of disk caching.
type PkgSummary struct {
	Path string
	Rel  string // module-relative package dir, the Exempt/Only coordinate
	Hash string `json:",omitempty"`

	Funcs        []*FuncSummary
	Accesses     []FieldAccess `json:",omitempty"`
	Atomics      []AtomicUse   `json:",omitempty"`
	MutexStructs []MutexStruct `json:",omitempty"`
	SinkFlows    []SinkFlow    `json:",omitempty"`
	TaintAssigns []TaintAssign `json:",omitempty"`
	CallSites    []CallSite    `json:",omitempty"`
}

// Set is the module-wide collection of package summaries plus the two
// fixpoint closures checks query.
type Set struct {
	Pkgs []*PkgSummary

	byFunc        map[string]*FuncSummary
	unorderedFn   map[string]bool
	taintedFields map[string]bool
	taintedChans  map[string]bool
	heldAlways    map[string][]string
}

// For returns the run's memoized summary set, building it on first use.
func For(mp *lint.ModulePass) *Set {
	return mp.Fact("summary", func() any { return Build(mp) }).(*Set)
}

// Build computes summaries for every loaded package — from the disk cache
// when mp.CacheDir is set and the dependency-aware hash matches, walking
// the syntax otherwise — and closes the module fixpoints.
func Build(mp *lint.ModulePass) *Set {
	idx := buildIndex(mp.Pkgs)
	var hashes map[string]string
	if mp.CacheDir != "" {
		hashes = computeHashes(mp.Pkgs)
	}
	out := make([]*PkgSummary, len(mp.Pkgs))
	pool.Do(pool.Workers(mp.Workers), len(mp.Pkgs), func(i int) {
		pkg := mp.Pkgs[i]
		h := hashes[pkg.Path]
		if mp.CacheDir != "" {
			if ps, ok := loadCached(cacheFile(mp.CacheDir, pkg.Path), h); ok {
				out[i] = ps
				return
			}
		}
		ps := buildPkg(mp, pkg, idx)
		ps.Hash = h
		if mp.CacheDir != "" {
			storeCached(cacheFile(mp.CacheDir, pkg.Path), ps)
		}
		out[i] = ps
	})
	s := &Set{Pkgs: out}
	s.finish()
	return s
}

// Func returns the summary for the function with the given key, or nil.
func (s *Set) Func(key string) *FuncSummary { return s.byFunc[key] }

// Unordered reports whether the function's returns carry map-iteration
// order, directly or through the module-wide ORDER fixpoint.
func (s *Set) Unordered(fnKey string) bool { return s.unorderedFn[fnKey] }

// ResolveUnordered reports whether a source ref carries map-iteration
// order under the closed fixpoint.
func (s *Set) ResolveUnordered(ref string) bool {
	switch {
	case ref == "range":
		return true
	case strings.HasPrefix(ref, "call:"):
		return s.unorderedFn[ref[len("call:"):]]
	case strings.HasPrefix(ref, "field:"):
		return s.taintedFields[ref[len("field:"):]]
	case strings.HasPrefix(ref, "chan:"):
		return s.taintedChans[ref[len("chan:"):]]
	}
	return false
}

// HeldAlways returns the mutex keys held at every recorded call site of
// the function (the LOCKS fixpoint), sorted. Exported functions always
// return nil: the module boundary makes no promises.
func (s *Set) HeldAlways(fnKey string) []string { return s.heldAlways[fnKey] }

// DescribeSource renders a source ref for diagnostics.
func (s *Set) DescribeSource(ref string) string {
	switch {
	case ref == "range":
		return "map iteration"
	case strings.HasPrefix(ref, "call:"):
		return "the map-iteration-ordered return of " + ref[len("call:"):]
	case strings.HasPrefix(ref, "field:"):
		return "field " + ref[len("field:"):] + ", which is assigned in map iteration order"
	case strings.HasPrefix(ref, "chan:"):
		return "channel field " + ref[len("chan:"):] + ", which is fed in map iteration order"
	}
	return ref
}

// finish closes the ORDER and LOCKS fixpoints over the package summaries.
func (s *Set) finish() {
	s.byFunc = make(map[string]*FuncSummary)
	s.unorderedFn = make(map[string]bool)
	s.taintedFields = make(map[string]bool)
	s.taintedChans = make(map[string]bool)
	for _, ps := range s.Pkgs {
		for _, f := range ps.Funcs {
			s.byFunc[f.Key] = f
		}
	}

	// ORDER: iterate to a least fixpoint. Both maps only grow, and each
	// round either grows one of them or terminates, so this is linear in
	// practice and bounded by the number of facts.
	resolve := func(ref string) bool { return s.ResolveUnordered(ref) }
	for changed := true; changed; {
		changed = false
		for _, ps := range s.Pkgs {
			for _, f := range ps.Funcs {
				if s.unorderedFn[f.Key] {
					continue
				}
				u := f.UnorderedLocal
				for _, dep := range f.ReturnDeps {
					if u {
						break
					}
					u = resolve(dep)
				}
				if u {
					s.unorderedFn[f.Key] = true
					changed = true
				}
			}
			for _, ta := range ps.TaintAssigns {
				if !resolve(ta.From) {
					continue
				}
				switch {
				case strings.HasPrefix(ta.Target, "field:"):
					if k := ta.Target[len("field:"):]; !s.taintedFields[k] {
						s.taintedFields[k] = true
						changed = true
					}
				case strings.HasPrefix(ta.Target, "chan:"):
					if k := ta.Target[len("chan:"):]; !s.taintedChans[k] {
						s.taintedChans[k] = true
						changed = true
					}
				}
			}
		}
	}

	s.finishHeldAlways()
}

// finishHeldAlways computes the LOCKS greatest fixpoint: start every
// eligible function at the full mutex universe and narrow by intersecting
// over its call sites until stable. Eligible means unexported and not a
// literal — anything callable from outside the module, or invocable
// through a context the walker cannot see, starts (and stays) empty.
func (s *Set) finishHeldAlways() {
	universe := make(map[string]bool)
	for _, ps := range s.Pkgs {
		for _, ms := range ps.MutexStructs {
			for _, m := range ms.Mutexes {
				universe[m] = true
			}
		}
	}
	sites := make(map[string][]CallSite)
	for _, ps := range s.Pkgs {
		for _, cs := range ps.CallSites {
			sites[cs.Callee] = append(sites[cs.Callee], cs)
		}
	}
	cur := make(map[string]map[string]bool)
	for callee := range sites {
		f := s.byFunc[callee]
		if f == nil || exportedKey(callee) || strings.Contains(callee, "$") {
			continue
		}
		all := make(map[string]bool, len(universe))
		for m := range universe {
			all[m] = true
		}
		cur[callee] = all
	}
	get := func(key string) map[string]bool { return cur[key] } // nil = empty
	for changed := true; changed; {
		changed = false
		for callee, have := range cur {
			for _, site := range sites[callee] {
				avail := make(map[string]bool, len(site.Held))
				for _, m := range site.Held {
					avail[m] = true
				}
				for m := range get(site.Caller) {
					avail[m] = true
				}
				for m := range have {
					if !avail[m] {
						delete(have, m)
						changed = true
					}
				}
			}
		}
	}
	s.heldAlways = make(map[string][]string, len(cur))
	for key, set := range cur {
		if len(set) == 0 {
			continue
		}
		ms := make([]string, 0, len(set))
		for m := range set {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		s.heldAlways[key] = ms
	}
}

// exportedKey reports whether a function key names an exported function or
// method (the identifier after the last dot starts with an upper-case
// letter).
func exportedKey(key string) bool {
	name := key
	if i := strings.LastIndex(key, "."); i >= 0 {
		name = key[i+1:]
	}
	r, _ := utf8.DecodeRuneInString(name)
	return unicode.IsUpper(r)
}
