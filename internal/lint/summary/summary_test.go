package summary_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"difftrace/internal/lint"
	"difftrace/internal/lint/summary"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func passFor(t *testing.T, root string) *lint.ModulePass {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	return lint.NewModulePass(pkgs, root)
}

// testModule exercises every summary dimension at once: order taint
// through a helper return, a struct field, and laundering; lock discipline
// with direct locks, defer, and lock helpers; atomics; and ctx flow.
func testModule() map[string]string {
	return map[string]string{
		"go.mod": "module sm\n\ngo 1.22\n",
		"order/order.go": `package order

// Keys returns m's keys in iteration order without ranging at a sink,
// so per-function checks cannot see the hazard.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
		"cell/cell.go": `package cell

import "sync"

type Gauge struct {
	mu  sync.Mutex
	Val []string
}

func (g *Gauge) Set(v []string) {
	g.mu.Lock()
	g.Val = v
	g.mu.Unlock()
}

func (g *Gauge) lock()   { g.mu.Lock() }
func (g *Gauge) unlock() { g.mu.Unlock() }

func (g *Gauge) Swap(v []string) []string {
	g.lock()
	old := g.Val
	g.Val = v
	g.unlock()
	return old
}

func (g *Gauge) peek() []string { return g.Val }

func (g *Gauge) Render() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.peek())
}
`,
		"a.go": `package sm

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"sm/order"
)

type Cache struct {
	hot []string
}

func (c *Cache) Fill(m map[string]bool) {
	for k := range m {
		c.hot = append(c.hot, k)
	}
}

func (c *Cache) Dump() {
	fmt.Println(c.hot)
}

type Stats struct {
	hits int64
}

func (s *Stats) Hit()        { atomic.AddInt64(&s.hits, 1) }
func (s *Stats) Racy() int64 { return s.hits }

func Emit(m map[string]int) {
	ks := order.Keys(m)
	fmt.Println(ks)
}

func EmitSorted(m map[string]int) {
	ks := order.Keys(m)
	sort.Strings(ks)
	fmt.Println(ks)
}

func Run(ctx context.Context, n int) { work(n) }

func work(n int) {}

func RunGood(ctx context.Context, n int) { workCtx(ctx, n) }

func workCtx(ctx context.Context, n int) {}
`,
	}
}

func TestOrderFixpoint(t *testing.T) {
	s := summary.Build(passFor(t, writeModule(t, testModule())))

	if !s.Unordered("sm/order.Keys") {
		t.Error("order.Keys should be unordered: it returns range-collected keys")
	}
	if !s.ResolveUnordered("field:sm.Cache.hot") {
		t.Error("Cache.hot should be order-tainted through Fill")
	}

	flows := make(map[string][]summary.SinkFlow)
	for _, ps := range s.Pkgs {
		for _, f := range ps.SinkFlows {
			flows[f.Fn] = append(flows[f.Fn], f)
		}
	}
	var emitHit bool
	for _, f := range flows["sm.Emit"] {
		if f.Source == "call:sm/order.Keys" && f.Sink == "fmt.Println" && s.ResolveUnordered(f.Source) {
			emitHit = true
		}
	}
	if !emitHit {
		t.Errorf("Emit should flow order.Keys into fmt.Println; got %+v", flows["sm.Emit"])
	}
	for _, f := range flows["sm.EmitSorted"] {
		if s.ResolveUnordered(f.Source) {
			t.Errorf("EmitSorted sorted before printing, yet flow %+v survives", f)
		}
	}
	var dumpHit bool
	for _, f := range flows["(*sm.Cache).Dump"] {
		if f.Source == "field:sm.Cache.hot" {
			dumpHit = true
		}
	}
	if !dumpHit {
		t.Errorf("Dump should sink the tainted field; got %+v", flows["(*sm.Cache).Dump"])
	}
}

func TestLockFacts(t *testing.T) {
	s := summary.Build(passFor(t, writeModule(t, testModule())))

	if f := s.Func("(*sm/cell.Gauge).lock"); f == nil || !reflect.DeepEqual(f.LocksAtExit, []string{"sm/cell.Gauge.mu"}) {
		t.Errorf("lock() should report LocksAtExit = [Gauge.mu], got %+v", f)
	}
	accesses := make(map[string][]summary.FieldAccess)
	for _, ps := range s.Pkgs {
		for _, a := range ps.Accesses {
			accesses[a.Fn] = append(accesses[a.Fn], a)
		}
	}
	for _, a := range accesses["(*sm/cell.Gauge).Set"] {
		if len(a.Held) == 0 {
			t.Errorf("Set accesses Val under a direct lock, but Held is empty: %+v", a)
		}
	}
	if as := accesses["(*sm/cell.Gauge).Swap"]; len(as) == 0 {
		t.Error("Swap should record Val accesses")
	} else {
		for _, a := range as {
			if len(a.Held) == 0 {
				t.Errorf("Swap locks via the lock() helper, but Held is empty: %+v", a)
			}
		}
	}
	// peek accesses Val without a lexical lock, but its only call site
	// (Render) holds mu — the LOCKS fixpoint covers it.
	for _, a := range accesses["(*sm/cell.Gauge).peek"] {
		if len(a.Held) != 0 {
			t.Errorf("peek holds no lock lexically, got %+v", a)
		}
	}
	if got := s.HeldAlways("(*sm/cell.Gauge).peek"); !reflect.DeepEqual(got, []string{"sm/cell.Gauge.mu"}) {
		t.Errorf("HeldAlways(peek) = %v, want [sm/cell.Gauge.mu]", got)
	}
	if got := s.HeldAlways("(*sm/cell.Gauge).Render"); got != nil {
		t.Errorf("Render is exported; HeldAlways must be nil, got %v", got)
	}
}

func TestAtomicAndCtxFacts(t *testing.T) {
	s := summary.Build(passFor(t, writeModule(t, testModule())))

	var atomicHit, plainHit bool
	for _, ps := range s.Pkgs {
		for _, a := range ps.Atomics {
			if a.Field == "sm.Stats.hits" && a.Fn == "(*sm.Stats).Hit" {
				atomicHit = true
			}
		}
		for _, a := range ps.Accesses {
			if a.Field == "sm.Stats.hits" && a.Fn == "(*sm.Stats).Racy" && !a.Write {
				plainHit = true
			}
		}
	}
	if !atomicHit {
		t.Error("Hit's atomic.AddInt64(&s.hits, 1) not recorded as an AtomicUse")
	}
	if !plainHit {
		t.Error("Racy's plain read of an atomically-used field not recorded")
	}

	run := s.Func("sm.Run")
	if run == nil || run.CtxParam != 0 {
		t.Fatalf("Run should have ctx at param 0, got %+v", run)
	}
	if len(run.CallsNoCtx) != 1 || run.CallsNoCtx[0].Callee != "sm.work" {
		t.Errorf("Run drops ctx calling work; CallsNoCtx = %+v", run.CallsNoCtx)
	}
	good := s.Func("sm.RunGood")
	if good == nil || !good.ForwardsCtx || len(good.CallsNoCtx) != 0 {
		t.Errorf("RunGood forwards ctx; got %+v", good)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	root := writeModule(t, testModule())
	cacheDir := filepath.Join(t.TempDir(), "lintcache")

	mp := passFor(t, root)
	mp.CacheDir = cacheDir
	first := summary.Build(mp)

	ents, err := os.ReadDir(cacheDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir not populated: %v (%d entries)", err, len(ents))
	}

	mp2 := passFor(t, root)
	mp2.CacheDir = cacheDir
	second := summary.Build(mp2)

	a, err := json.Marshal(first.Pkgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second.Pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("cache round-trip changed the summary set")
	}
	if !second.Unordered("sm/order.Keys") {
		t.Error("fixpoints lost after loading from cache")
	}

	// Touch a file: its package and its importers must rebuild, and the
	// facts must still hold.
	orderFile := filepath.Join(root, "order", "order.go")
	data, err := os.ReadFile(orderFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orderFile, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	mp3 := passFor(t, root)
	mp3.CacheDir = cacheDir
	third := summary.Build(mp3)
	if !third.Unordered("sm/order.Keys") {
		t.Error("facts lost after cache invalidation")
	}
}
