// Disk cache for package summaries. Each package serializes to one JSON
// file keyed by a dependency-aware content hash: sha256 over a format
// version, the package's own source files, and the hashes of its
// module-internal imports, recursively. Editing any file in a package
// therefore invalidates that package and everything that imports it, while
// untouched subtrees load straight from disk — the property CI relies on
// when it restores the cache across runs.
//
// The cache is strictly best-effort: any read, decode, or write failure
// falls back to walking the syntax. A stale or corrupt cache can cost
// time, never correctness.
package summary

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"difftrace/internal/lint"
)

// cacheVersion invalidates every cached summary when the walker's output
// shape or semantics change. Bump it alongside any change to build.go or
// the serialized types.
const cacheVersion = "difftracelint-summary-v1"

// computeHashes returns the dependency-aware hash for every loaded
// package. Hashes are computed serially (memoized recursion over the
// import graph) before the parallel build fan-out.
func computeHashes(pkgs []*lint.Package) map[string]string {
	byPath := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	memo := make(map[string]string, len(pkgs))
	var hash func(p *lint.Package) string
	hash = func(p *lint.Package) string {
		if h, ok := memo[p.Path]; ok {
			return h
		}
		memo[p.Path] = "" // cycle guard; loader rejects cycles anyway
		h := sha256.New()
		h.Write([]byte(cacheVersion))
		h.Write([]byte(p.Path))
		ents, err := os.ReadDir(p.Dir)
		if err == nil {
			var names []string
			for _, e := range ents {
				n := e.Name()
				if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
					names = append(names, n)
				}
			}
			sort.Strings(names)
			for _, n := range names {
				h.Write([]byte(n))
				if data, err := os.ReadFile(filepath.Join(p.Dir, n)); err == nil {
					h.Write(data)
				}
			}
		}
		var deps []string
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				deps = append(deps, hash(dep))
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			h.Write([]byte(d))
		}
		sum := hex.EncodeToString(h.Sum(nil))
		memo[p.Path] = sum
		return sum
	}
	for _, p := range pkgs {
		hash(p)
	}
	return memo
}

// cacheFile maps an import path to its cache file name.
func cacheFile(dir, pkgPath string) string {
	return filepath.Join(dir, strings.ReplaceAll(pkgPath, "/", "__")+".json")
}

// loadCached returns the cached summary when it exists and its hash
// matches; (nil, false) otherwise.
func loadCached(file, wantHash string) (*PkgSummary, bool) {
	if wantHash == "" {
		return nil, false
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, false
	}
	var ps PkgSummary
	if err := json.Unmarshal(data, &ps); err != nil || ps.Hash != wantHash {
		return nil, false
	}
	return &ps, true
}

// storeCached writes the summary, creating the cache directory on first
// use. Failures are ignored: the cache never gates a run.
func storeCached(file string, ps *PkgSummary) {
	data, err := json.MarshalIndent(ps, "", "\t")
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
		return
	}
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, file)
}
