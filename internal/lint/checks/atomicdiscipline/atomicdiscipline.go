// Package atomicdiscipline enforces all-or-nothing atomicity: once any
// access to a struct field goes through sync/atomic, every access must.
// A plain load races with atomic.AddInt64 exactly as it would with a plain
// store — the Go memory model gives mixed access no ordering at all — and
// the resulting torn or stale reads are the schedule-dependent class of
// bug this module exists to catch in traces.
//
// The field set is discovered, not declared: the summary layer records
// every &s.field handed to a sync/atomic function, and every plain access
// to those same fields. Constructors of the owning struct are exempt
// (initialization before publication is unsynchronized by design); every
// other plain access is reported, with the call chain from the exported
// surface attached when one exists.
package atomicdiscipline

import (
	"difftrace/internal/lint"
	"difftrace/internal/lint/callgraph"
	"difftrace/internal/lint/summary"
)

// Check is the registered atomicdiscipline analyzer.
var Check = &lint.Check{
	Name:      "atomicdiscipline",
	Doc:       "fields touched via sync/atomic must never be read or written plainly outside the constructor",
	RunModule: run,
}

func run(mp *lint.ModulePass) {
	g := callgraph.For(mp)
	s := summary.For(mp)

	atomicFields := make(map[string]bool)
	for _, ps := range s.Pkgs {
		for _, a := range ps.Atomics {
			atomicFields[a.Field] = true
		}
	}
	for _, ps := range s.Pkgs {
		for _, a := range ps.Accesses {
			if !atomicFields[a.Field] {
				continue
			}
			if constructs(s.Func(a.Fn), ownerOf(a.Field)) {
				continue
			}
			verb := "read"
			if a.Write {
				verb = "written"
			}
			mp.ReportAt(ps.Rel, a.Pos.File, a.Pos.Line, a.Pos.Col, g.ChainFromExported(a.Fn),
				"%s is managed with sync/atomic but %s plainly here — every access must go through sync/atomic",
				a.Field, verb)
		}
	}
}

func constructs(fn *summary.FuncSummary, owner string) bool {
	if fn == nil {
		return false
	}
	for _, c := range fn.Constructs {
		if c == owner {
			return true
		}
	}
	return false
}

func ownerOf(field string) string {
	for i := len(field) - 1; i >= 0; i-- {
		if field[i] == '.' {
			return field[:i]
		}
	}
	return field
}
