// Package errwrap proves the validated-error invariant end to end: once
// panics became errors (PR 1), callers triage failures with errors.Is/As —
// which only works if every fmt.Errorf that carries an error operand wraps
// it with %w instead of flattening it to text with %v/%s.
//
// The check flags fmt.Errorf calls whose argument list contains a value of
// type error while the (literal) format string has no %w verb. Non-literal
// formats are skipped — the checker cannot see the verbs.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"difftrace/internal/lint"
)

// Check is the registered errwrap analyzer.
var Check = &lint.Check{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error operand uses %w so errors.Is/As keep working through the wrap",
	Run:  run,
}

func run(p *lint.Pass) {
	p.InspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := p.PkgFuncCall(call, "fmt"); !ok || name != "Errorf" || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil || strings.Contains(format, "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			t := p.TypeOf(arg)
			if t == nil || t == types.Typ[types.UntypedNil] {
				continue
			}
			if types.AssignableTo(t, lint.ErrorType) {
				p.Reportf(call.Pos(),
					"fmt.Errorf flattens an error operand with %%v/%%s — use %%w so errors.Is/As see through the wrap")
				break
			}
		}
		return true
	})
}
