// Package errwrap proves the validated-error invariant end to end: once
// panics became errors (PR 1), callers triage failures with errors.Is/As —
// which only works if every fmt.Errorf that carries an error operand wraps
// it with %w instead of flattening it to text with %v/%s.
//
// The check counts %w verbs in the (literal) format string against the
// error-typed operands in the argument list. Zero %w with any error operand
// is the classic flattening bug; fewer %w verbs than error operands means
// the extras are still flattened — wrap each one, or combine them with
// errors.Join (whose result counts as a single error operand) before
// wrapping. Multiple %w verbs are legal since Go 1.20 and pass clean.
// Non-literal formats are skipped — the checker cannot see the verbs, and
// "%%w" is a literal percent-w, not a verb.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"difftrace/internal/lint"
)

// Check is the registered errwrap analyzer.
var Check = &lint.Check{
	Name: "errwrap",
	Doc:  "every error operand of fmt.Errorf is wrapped by a %w verb (or pre-joined with errors.Join) so errors.Is/As keep working",
	Run:  run,
}

func run(p *lint.Pass) {
	p.InspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := p.PkgFuncCall(call, "fmt"); !ok || name != "Errorf" || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		wraps := countWrapVerbs(format)
		errs := 0
		for _, arg := range call.Args[1:] {
			t := p.TypeOf(arg)
			if t == nil || t == types.Typ[types.UntypedNil] {
				continue
			}
			if types.AssignableTo(t, lint.ErrorType) {
				errs++
			}
		}
		switch {
		case errs > 0 && wraps == 0:
			p.Reportf(call.Pos(),
				"fmt.Errorf flattens an error operand with %%v/%%s — use %%w so errors.Is/As see through the wrap")
		case errs > wraps && wraps > 0:
			p.Reportf(call.Pos(),
				"fmt.Errorf wraps %d of %d error operands — %%w each of them, or combine with errors.Join before wrapping",
				wraps, errs)
		}
		return true
	})
}

// countWrapVerbs counts %w verbs in a format string, skipping "%%" escapes
// and stepping over flags, width, and precision ("%+w", "%2w").
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && isVerbPrefix(format[i]) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			n++
		}
	}
	return n
}

func isVerbPrefix(c byte) bool {
	switch c {
	case '+', '-', '#', ' ', '.', '*':
		return true
	}
	return c >= '0' && c <= '9'
}
