// Package checks is the registry of difftracelint's project invariants.
// cmd/difftracelint and the self-check test both run All(), so "the linter
// is clean" means the same thing on a developer laptop and in CI.
package checks

import (
	"difftrace/internal/lint"
	"difftrace/internal/lint/checks/atomicdiscipline"
	"difftrace/internal/lint/checks/ctxdiscipline"
	"difftrace/internal/lint/checks/ctxflow"
	"difftrace/internal/lint/checks/errwrap"
	"difftrace/internal/lint/checks/expanddiscipline"
	"difftrace/internal/lint/checks/lockdiscipline"
	"difftrace/internal/lint/checks/maprange"
	"difftrace/internal/lint/checks/nakedgoroutine"
	"difftrace/internal/lint/checks/nilreceiver"
	"difftrace/internal/lint/checks/obsdiscipline"
	"difftrace/internal/lint/checks/orderflow"
	"difftrace/internal/lint/checks/panicdiscipline"
	"difftrace/internal/lint/checks/wallclock"
)

// All returns every registered check in stable (alphabetical) order. The
// four RunModule checks (atomicdiscipline, ctxflow, lockdiscipline,
// orderflow) share one call graph and one summary set per run via the
// ModulePass fact table.
func All() []*lint.Check {
	return []*lint.Check{
		atomicdiscipline.Check,
		ctxdiscipline.Check,
		ctxflow.Check,
		errwrap.Check,
		expanddiscipline.Check,
		lockdiscipline.Check,
		maprange.Check,
		nakedgoroutine.Check,
		nilreceiver.Check,
		obsdiscipline.Check,
		orderflow.Check,
		panicdiscipline.Check,
		wallclock.Check,
	}
}

// ByName resolves a comma-separated selection ("maprange,errwrap") against
// the registry; unknown names return an error listing what exists.
func ByName(names []string) ([]*lint.Check, error) {
	byName := map[string]*lint.Check{}
	for _, c := range All() {
		byName[c.Name] = c
	}
	var out []*lint.Check
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, &UnknownCheckError{Name: n}
		}
		out = append(out, c)
	}
	return out, nil
}

// UnknownCheckError names a selection that matched no registered check.
type UnknownCheckError struct{ Name string }

func (e *UnknownCheckError) Error() string {
	msg := "unknown check " + e.Name + "; registered:"
	for _, c := range All() {
		msg += " " + c.Name
	}
	return msg
}
