package checks_test

import (
	"testing"

	"difftrace/internal/lint"
	"difftrace/internal/lint/checks"
)

// TestDirectiveHygiene proves every //lint:allow in the module still
// suppresses a live finding. A stale directive — one whose finding was fixed
// or whose check stopped firing there — is a silent hole in the invariant it
// was written against, so it fails the build until deleted.
func TestDirectiveHygiene(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source (a few seconds); run without -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	runner := lint.NewRunner(checks.All(), lint.ProjectConfig(), loader.ModRoot)
	diags, allows := runner.Audit(pkgs)
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
	if len(allows) == 0 {
		t.Fatal("audit saw zero //lint:allow directives — the directive scan is broken (the module has several)")
	}
	for _, a := range allows {
		if !a.Used {
			t.Errorf("%s:%d: stale //lint:allow %s (%s) — the finding it suppressed is gone; delete the directive",
				a.File, a.Line, a.Check, a.Reason)
		}
	}
}
