// Package ctxflow flags dropped cancellation: a function that receives a
// context.Context but calls a module API that cannot take one, when that
// API has a Context-accepting sibling right next to it.
//
// The module's convention pairs every cancellable operation with a legacy
// entry point — Do/DoContext, DiffRun/DiffRunContext — where the bare name
// delegates to the Context variant with context.Background(). Calling the
// bare name while holding a real ctx silently severs the cancellation
// chain: the caller's deadline stops propagating exactly one frame down.
//
// The sibling rule is purely lexical: callee key + "Context" must name a
// module function (or method on the same receiver) whose summary shows a
// context.Context parameter. No sibling, no finding — calling a genuinely
// ctx-free helper from a ctx-bearing function is normal.
package ctxflow

import (
	"strings"

	"difftrace/internal/lint"
	"difftrace/internal/lint/callgraph"
	"difftrace/internal/lint/summary"
)

// Check is the registered ctxflow analyzer.
var Check = &lint.Check{
	Name:      "ctxflow",
	Doc:       "a function holding a ctx must not call the ctx-less variant of an API that has a Context sibling",
	RunModule: run,
}

func run(mp *lint.ModulePass) {
	g := callgraph.For(mp)
	s := summary.For(mp)
	for _, ps := range s.Pkgs {
		for _, f := range ps.Funcs {
			if f.CtxParam < 0 {
				continue
			}
			for _, c := range f.CallsNoCtx {
				sibKey := c.Callee + "Context"
				if _, ok := g.ByKey[sibKey]; !ok {
					continue
				}
				sib := s.Func(sibKey)
				if sib == nil || sib.CtxParam < 0 {
					continue
				}
				mp.ReportAt(ps.Rel, c.Pos.File, c.Pos.Line, c.Pos.Col, g.ChainFromExported(f.Key),
					"%s holds a ctx but calls %s, which drops it — call %s to keep cancellation flowing",
					shortName(f.Key), c.Callee, sibKey)
			}
		}
	}
}

// shortName trims the package path off a plain function key for the
// message: "difftrace/internal/trace.DiffRun" -> "trace.DiffRun". Method
// keys keep their receiver spelling untouched.
func shortName(key string) string {
	if strings.HasPrefix(key, "(") {
		return key
	}
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
