package checks_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"difftrace/internal/lint"
	"difftrace/internal/lint/checks"
	"difftrace/internal/lint/checks/atomicdiscipline"
	"difftrace/internal/lint/checks/ctxdiscipline"
	"difftrace/internal/lint/checks/ctxflow"
	"difftrace/internal/lint/checks/errwrap"
	"difftrace/internal/lint/checks/expanddiscipline"
	"difftrace/internal/lint/checks/lockdiscipline"
	"difftrace/internal/lint/checks/maprange"
	"difftrace/internal/lint/checks/nakedgoroutine"
	"difftrace/internal/lint/checks/nilreceiver"
	"difftrace/internal/lint/checks/obsdiscipline"
	"difftrace/internal/lint/checks/orderflow"
	"difftrace/internal/lint/checks/panicdiscipline"
	"difftrace/internal/lint/checks/wallclock"
	"difftrace/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("..", "testdata", "src", name)
}

// Each fixture demonstrates at least one caught violation (want comments)
// and at least one allowed pattern (clean idiom or //lint:allow escape).
func TestMaprange(t *testing.T)        { linttest.Run(t, maprange.Check, fixture("maprange")) }
func TestWallclock(t *testing.T)       { linttest.Run(t, wallclock.Check, fixture("wallclock")) }
func TestNakedgoroutine(t *testing.T)  { linttest.Run(t, nakedgoroutine.Check, fixture("nakedgoroutine")) }
func TestPanicdiscipline(t *testing.T) { linttest.Run(t, panicdiscipline.Check, fixture("panicdiscipline")) }
func TestNilreceiver(t *testing.T)     { linttest.Run(t, nilreceiver.Check, fixture("nilreceiver")) }
func TestObsdiscipline(t *testing.T)   { linttest.Run(t, obsdiscipline.Check, fixture("obsdiscipline")) }
func TestErrwrap(t *testing.T)         { linttest.Run(t, errwrap.Check, fixture("errwrap")) }
func TestCtxdiscipline(t *testing.T)   { linttest.Run(t, ctxdiscipline.Check, fixture("ctxdiscipline")) }
func TestExpanddiscipline(t *testing.T) {
	linttest.Run(t, expanddiscipline.Check, fixture("expanddiscipline"))
}

// The interprocedural checks load their fixtures as whole modules: each
// violation spans at least one function boundary, most span packages.
func TestOrderflow(t *testing.T) { linttest.RunModule(t, orderflow.Check, fixture("orderflow")) }
func TestLockdiscipline(t *testing.T) {
	linttest.RunModule(t, lockdiscipline.Check, fixture("lockdiscipline"))
}
func TestAtomicdiscipline(t *testing.T) {
	linttest.RunModule(t, atomicdiscipline.Check, fixture("atomicdiscipline"))
}
func TestCtxflow(t *testing.T) { linttest.RunModule(t, ctxflow.Check, fixture("ctxflow")) }

// TestCtxdisciplineMainExempt: the same patterns in a package main fixture
// produce zero diagnostics — entry points own the root context.
func TestCtxdisciplineMainExempt(t *testing.T) {
	linttest.Run(t, ctxdiscipline.Check, fixture("ctxdiscipline_main"))
}

// TestJSONGolden pins the -json output shape: all checks over the jsonout
// fixture must serialize byte-identically to the checked-in golden file.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/lint/checks -run JSONGolden.
func TestJSONGolden(t *testing.T) {
	diags := linttest.Diagnostics(t, checks.All(), fixture("jsonout"))
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("..", "testdata", "golden", "jsonout.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRegistryNames pins the registry: thirteen invariants, stable names,
// every check documented.
func TestRegistryNames(t *testing.T) {
	want := []string{"atomicdiscipline", "ctxdiscipline", "ctxflow", "errwrap", "expanddiscipline", "lockdiscipline", "maprange", "nakedgoroutine", "nilreceiver", "obsdiscipline", "orderflow", "panicdiscipline", "wallclock"}
	all := checks.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d checks, want %d", len(all), len(want))
	}
	for i, c := range all {
		if c.Name != want[i] {
			t.Errorf("check %d is %q, want %q", i, c.Name, want[i])
		}
		if c.Doc == "" {
			t.Errorf("check %q has no Doc", c.Name)
		}
	}
	if _, err := checks.ByName([]string{"maprange", "errwrap"}); err != nil {
		t.Errorf("ByName on known checks: %v", err)
	}
	if _, err := checks.ByName([]string{"nope"}); err == nil {
		t.Error("ByName accepted an unknown check")
	}
}
