// Package nilreceiver proves the nil-off observability contract: every
// exported pointer-receiver method on an internal/obs type must begin with
// a nil-receiver guard, so a nil *Run (instrumentation disabled) costs
// nothing and never panics. The project config restricts this check to
// internal/obs via the Only table — it is an API promise of that package,
// not a global style rule.
//
// Accepted guard shapes for a method on receiver r: a first statement of
// the form `if r == nil { ... }`, `if r == nil || <more> { ... }`, or the
// inverted whole-body wrap `if r != nil { ... }`. Methods with empty bodies
// and unexported methods are exempt.
package nilreceiver

import (
	"go/ast"
	"go/token"
	"go/types"

	"difftrace/internal/lint"
)

// Check is the registered nilreceiver analyzer.
var Check = &lint.Check{
	Name: "nilreceiver",
	Doc:  "exported pointer-receiver methods on obs types open with a nil-receiver guard (nil is off)",
	Run:  run,
}

func run(p *lint.Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() {
				continue
			}
			if fn.Body == nil || len(fn.Body.List) == 0 {
				continue // empty body cannot dereference anything
			}
			recv := fn.Recv.List[0]
			if _, ok := recv.Type.(*ast.StarExpr); !ok {
				continue // value receiver: a nil pointer cannot reach it
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				p.Reportf(fn.Pos(),
					"exported method %s has an unnamed pointer receiver — it cannot guard against nil, but nil must be off",
					fn.Name.Name)
				continue
			}
			recvObj := p.Pkg.Info.Defs[recv.Names[0]]
			if !startsWithNilGuard(p, fn.Body.List[0], recvObj) {
				p.Reportf(fn.Pos(),
					"exported method %s on pointer receiver %q must begin with `if %s == nil` — the nil-off contract",
					fn.Name.Name, recv.Names[0].Name, recv.Names[0].Name)
			}
		}
	}
}

// startsWithNilGuard accepts a leading `if recv == nil ...` statement,
// including guards widened with || (e.g. `if r == nil || r.off`), and the
// inverted form `if recv != nil { <body> }`.
func startsWithNilGuard(p *lint.Pass, first ast.Stmt, recvObj types.Object) bool {
	ifs, ok := first.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if bin, ok := ifs.Cond.(*ast.BinaryExpr); ok && bin.Op == token.NEQ {
		if isRecvNilPair(p, bin.X, bin.Y, recvObj) || isRecvNilPair(p, bin.Y, bin.X, recvObj) {
			return true
		}
	}
	return condHasNilCompare(p, ifs.Cond, recvObj)
}

func condHasNilCompare(p *lint.Pass, cond ast.Expr, recvObj types.Object) bool {
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condHasNilCompare(p, e.X, recvObj) || condHasNilCompare(p, e.Y, recvObj)
		}
		if e.Op != token.EQL {
			return false
		}
		return isRecvNilPair(p, e.X, e.Y, recvObj) || isRecvNilPair(p, e.Y, e.X, recvObj)
	case *ast.ParenExpr:
		return condHasNilCompare(p, e.X, recvObj)
	}
	return false
}

func isRecvNilPair(p *lint.Pass, a, b ast.Expr, recvObj types.Object) bool {
	id, ok := a.(*ast.Ident)
	if !ok || p.ObjectOf(id) == nil || p.ObjectOf(id) != recvObj {
		return false
	}
	nilID, ok := b.(*ast.Ident)
	return ok && nilID.Name == "nil"
}
