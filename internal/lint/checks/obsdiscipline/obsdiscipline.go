// Package obsdiscipline proves the metric-name contract behind the
// Prometheus exposition: every name handed to obs.Run's Counter/Gauge/
// Histogram is a compile-time constant of the package-prefixed dotted form
// ("service.jobs_done", "core.threads.objects"). Runtime-assembled names
// fragment metric families across scrapes, defeat the HELP catalog, and
// make a name ungreppable — the /metrics surface is only as stable as the
// literals feeding it. A name the type checker cannot evaluate is a
// violation even if every runtime value happens to be well-formed.
package obsdiscipline

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"difftrace/internal/lint"
)

// Check is the registered obsdiscipline analyzer.
var Check = &lint.Check{
	Name: "obsdiscipline",
	Doc:  "obs.Run metric names are constant package-prefixed dotted literals (\"pkg.metric\"), never assembled at runtime",
	Run:  run,
}

// obsPath is the import path owning the instrumented registry.
const obsPath = "difftrace/internal/obs"

// registryMethods are the Run methods that intern a metric by name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// nameRe is the canonical metric shape: a lowercase package prefix, at
// least one dot, snake_case segments. It is intentionally the exact set of
// names the Prometheus sanitizer maps 1:1 onto [a-z0-9_] families.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

func run(p *lint.Pass) {
	p.InspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := p.Pkg.Info.Selections[sel]
		if selection == nil {
			return true // package-qualified call, not a method
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !registryMethods[fn.Name()] {
			return true
		}
		if !isRunReceiver(fn) || len(call.Args) < 1 {
			return true
		}
		arg := call.Args[0]
		tv := p.Pkg.Info.Types[arg]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			p.Reportf(arg.Pos(),
				"obs.Run.%s name is not a compile-time constant — runtime-built names fragment the /metrics families; intern a dotted literal per variant",
				fn.Name())
			return true
		}
		if name := constant.StringVal(tv.Value); !nameRe.MatchString(name) {
			p.Reportf(arg.Pos(),
				"obs.Run.%s name %q is not package-prefixed dotted snake_case (want e.g. \"core.threads.objects\")",
				fn.Name(), name)
		}
		return true
	})
}

// isRunReceiver reports whether fn's receiver is obs.Run (by value or
// pointer), so future obs types with same-named methods stay out of scope.
func isRunReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Run" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsPath
}
