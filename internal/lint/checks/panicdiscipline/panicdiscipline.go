// Package panicdiscipline proves the degraded-not-dead invariant from the
// resilience PR: corrupt input and per-object failures surface as validated
// errors (or resilience.StageError isolation), never as a process-killing
// panic. The only sanctioned panic site is internal/pool's deterministic
// re-raise, which forwards a worker's panic to the caller at a
// schedule-independent index.
//
// Unreachable-by-construction invariant violations (a caller misusing an
// API in a way no input can trigger) may keep their panic under a
// //lint:allow panicdiscipline explaining why it is caller-bug-only.
package panicdiscipline

import (
	"go/ast"

	"difftrace/internal/lint"
)

// Check is the registered panicdiscipline analyzer.
var Check = &lint.Check{
	Name: "panicdiscipline",
	Doc:  "panic() lives only in internal/pool's re-raise; everything else returns validated errors",
	Run:  run,
}

func run(p *lint.Pass) {
	p.InspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !p.IsBuiltinCall(call, "panic") {
			return true
		}
		p.Reportf(call.Pos(),
			"panic outside internal/pool — return a validated error (or isolate via resilience.Guard) so degraded inputs stay degraded, not dead")
		return true
	})
}
