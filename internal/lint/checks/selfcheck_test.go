package checks_test

import (
	"testing"

	"difftrace/internal/lint"
	"difftrace/internal/lint/checks"
)

// TestSelfCheck is the enforced-by-construction gate: the analyzer must run
// clean — zero unsuppressed diagnostics — over every package of this module
// under the project config. It is the same invocation `make lint` runs, so
// a regression fails `go test` and CI even before the lint target.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source (a few seconds); run without -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages — module discovery is broken", len(pkgs))
	}
	runner := lint.NewRunner(checks.All(), lint.ProjectConfig(), loader.ModRoot)
	for _, d := range runner.Run(pkgs) {
		t.Errorf("%s", d)
	}
}
