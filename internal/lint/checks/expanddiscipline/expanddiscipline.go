// Package expanddiscipline confines nlr.Expand to tests and reference
// oracles. Expand undoes the summarization — it materializes the full
// token stream, which is exactly the O(events) allocation the streaming
// pipeline exists to avoid (DESIGN.md §12). A production stage that calls
// it silently forfeits the memory ceiling the memceiling job enforces, so
// the invariant is proven at compile time instead: any non-test use of
// difftrace/internal/nlr.Expand — call or function reference — is flagged.
// A deliberate oracle needs //lint:allow expanddiscipline with a reason.
package expanddiscipline

import (
	"go/ast"
	"go/types"

	"difftrace/internal/lint"
)

// nlrPath is the import path of the package that owns Expand.
const nlrPath = "difftrace/internal/nlr"

// Check is the registered expanddiscipline analyzer.
var Check = &lint.Check{
	Name: "expanddiscipline",
	Doc:  "nlr.Expand stays in tests and reference oracles — production stages never materialize a summarized trace",
	Run:  run,
}

func run(p *lint.Pass) {
	p.InspectFiles(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != "Expand" {
			return true
		}
		// Uses only (never Defs): the declaration in package nlr is the
		// sanctioned oracle; what the check forbids is production code
		// reaching for it. Type-checker resolution means a local Expand of
		// some other package never trips the check, and an aliased import
		// of nlr still does.
		fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != nlrPath {
			return true
		}
		p.Reportf(id.Pos(),
			"nlr.Expand materializes the full token stream — production stages stay summarized (streaming memory ceiling); keep Expand in tests and oracles or justify with //lint:allow expanddiscipline")
		return true
	})
}
