// Package orderflow is maprange's interprocedural successor: it tracks
// map-iteration order through helper returns, struct fields, and channel
// fields until it reaches an ordered sink, across function and package
// boundaries.
//
// maprange proves the local invariant — a range-over-map feeding a sink in
// the same body. orderflow closes the loopholes that survive it:
//
//	ks := helper.Keys(m)      // helper collects in range order
//	fmt.Fprintf(w, "%v", ks)  // sink is two calls away
//
//	c.hot = append(c.hot, k)  // taints a field inside the range
//	fmt.Fprintln(w, c.hot)    // sink reads the field elsewhere
//
// The check consumes the summary layer's ORDER fixpoint: a flow is flagged
// when its source — a module call's return, a struct field, or a channel
// field — resolves to map-iteration order after closing over the whole
// module. Flows whose source is a direct range in the same function are
// maprange's domain and are not re-reported. Sorting before the sink
// (sort.*, slices.Sort*, slices.Sorted) launders the taint.
package orderflow

import (
	"difftrace/internal/lint"
	"difftrace/internal/lint/callgraph"
	"difftrace/internal/lint/summary"
)

// Check is the registered orderflow analyzer.
var Check = &lint.Check{
	Name:      "orderflow",
	Doc:       "map-iteration order must not reach an ordered sink through helper returns, fields, or channels",
	RunModule: run,
}

func run(mp *lint.ModulePass) {
	g := callgraph.For(mp)
	s := summary.For(mp)
	for _, ps := range s.Pkgs {
		for _, f := range ps.SinkFlows {
			if f.Source == "range" {
				continue // same-function range-to-sink: maprange's finding
			}
			if !s.ResolveUnordered(f.Source) {
				continue
			}
			chain := g.ChainFromExported(f.Fn)
			mp.ReportAt(ps.Rel, f.Pos.File, f.Pos.Line, f.Pos.Col, chain,
				"%s reaches ordered sink %s — sort into a canonical order first",
				s.DescribeSource(f.Source), f.Sink)
		}
	}
}
