// Package wallclock proves the Scrub-isolation invariant: schedule-varying
// values — wall-clock reads and PRNG state — may only enter the pipeline
// where the manifest already quarantines them (internal/obs aggregates wall
// time into scrubbed fields, internal/pool measures its own utilization).
// Anywhere else, a time.Now/time.Since call or a math/rand import is a
// nondeterminism leak waiting to flip a golden test.
//
// Seeded, deterministic PRNG use (trace synthesis, chaos operators) is the
// sanctioned exception — annotate the import with
// //lint:allow wallclock <why the seed makes it deterministic>.
package wallclock

import (
	"go/ast"
	"strconv"

	"difftrace/internal/lint"
)

// Check is the registered wallclock analyzer.
var Check = &lint.Check{
	Name: "wallclock",
	Doc:  "time.Now/time.Since and math/rand stay inside internal/obs and internal/pool (or carry a seeded-determinism allow)",
	Run:  run,
}

func run(p *lint.Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(),
					"import of %s outside obs/pool — randomness is schedule-varying unless seeded; annotate the seed discipline or move it",
					path)
			}
		}
	}
	p.InspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := p.PkgFuncCall(call, "time"); ok {
			switch name {
			case "Now", "Since", "Until":
				p.Reportf(call.Pos(),
					"time.%s outside obs/pool — wall time must stay in Scrub-isolated fields or the manifest loses schedule independence",
					name)
			case "After", "Tick", "NewTicker", "NewTimer":
				p.Reportf(call.Pos(),
					"time.%s outside obs/pool — timer channels fire on the wall clock, which makes any select over them schedule-varying",
					name)
			}
		}
		return true
	})
}
