// Package lockdiscipline infers which struct fields a mutex guards and
// flags the accesses that forget it. There are no annotations: the
// discipline is learned from the code's own majority behavior.
//
// For every field of a struct that carries a named sync.Mutex/RWMutex, the
// check counts accesses made with the lock held versus without, across the
// whole module. "Held" means lexically held (a Lock/defer-Unlock pair or a
// same-package lock helper dominates the access in source order) or held
// at every recorded call site of the containing function — the summary
// layer's LOCKS fixpoint, which is how renderLocked-style internal helpers
// stay clean without annotations.
//
// A field is inferred GUARDED when at least two accesses hold the lock and
// held accesses outnumber unheld ones two to one. Each unheld access to a
// guarded field is then reported, provided:
//
//   - the containing function is reachable from the module's exported
//     surface (dead code and test scaffolding don't page anyone), and
//   - the containing function is not a constructor of the struct
//     (initialization before publication needs no lock).
//
// The diagnostic carries the call chain from the entry point, rendered by
// difftracelint -why.
package lockdiscipline

import (
	"strings"

	"difftrace/internal/lint"
	"difftrace/internal/lint/callgraph"
	"difftrace/internal/lint/summary"
)

// Check is the registered lockdiscipline analyzer.
var Check = &lint.Check{
	Name:      "lockdiscipline",
	Doc:       "fields guarded by a mutex on most accesses must not be accessed without it on any path reachable from the API",
	RunModule: run,
}

func run(mp *lint.ModulePass) {
	g := callgraph.For(mp)
	s := summary.For(mp)

	// Mutex topology: owner struct -> its mutex keys.
	structMu := make(map[string][]string)
	for _, ps := range s.Pkgs {
		for _, ms := range ps.MutexStructs {
			structMu[ms.Type] = ms.Mutexes
		}
	}

	type access struct {
		a   summary.FieldAccess
		rel string // package Rel for Exempt/Only
	}
	var (
		all   []access
		held  = make(map[string]int)
		plain = make(map[string]int)
	)
	for _, ps := range s.Pkgs {
		for _, a := range ps.Accesses {
			owner := ownerOf(a.Field)
			if len(structMu[owner]) == 0 {
				continue // struct has no mutex; not this check's domain
			}
			if constructs(s.Func(a.Fn), owner) {
				continue // constructor: initialization before publication
			}
			if effectiveHeld(s, a, structMu[owner]) {
				held[a.Field]++
			} else {
				plain[a.Field]++
				all = append(all, access{a: a, rel: ps.Rel})
			}
		}
	}

	for _, acc := range all {
		a := acc.a
		h, p := held[a.Field], plain[a.Field]
		// Majority vote: the module's own behavior defines the discipline.
		if h < 2 || h < 2*p {
			continue
		}
		if !g.ReachableFromExported(a.Fn) {
			continue
		}
		verb := "read"
		if a.Write {
			verb = "written"
		}
		mp.ReportAt(acc.rel, a.Pos.File, a.Pos.Line, a.Pos.Col, g.ChainFromExported(a.Fn),
			"%s is guarded by %s on %d of %d accesses but %s here without it",
			a.Field, strings.Join(structMu[ownerOf(a.Field)], ", "), h, h+p, verb)
	}
}

// effectiveHeld reports whether the access holds one of the struct's
// mutexes, lexically or through the called-with-lock-held fixpoint.
func effectiveHeld(s *summary.Set, a summary.FieldAccess, mutexes []string) bool {
	if len(a.Held) > 0 {
		return true
	}
	for _, m := range s.HeldAlways(a.Fn) {
		for _, want := range mutexes {
			if m == want {
				return true
			}
		}
	}
	return false
}

// constructs reports whether fn's results include the owner struct.
func constructs(fn *summary.FuncSummary, owner string) bool {
	if fn == nil {
		return false
	}
	for _, c := range fn.Constructs {
		if c == owner {
			return true
		}
	}
	return false
}

// ownerOf strips the field segment: "pkg/path.Type.field" -> "pkg/path.Type".
func ownerOf(field string) string {
	if i := strings.LastIndex(field, "."); i >= 0 {
		return field[:i]
	}
	return field
}
