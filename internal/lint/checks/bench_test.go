package checks_test

import (
	"fmt"
	"sync"
	"testing"

	"difftrace/internal/lint"
	"difftrace/internal/lint/checks"
)

var benchModule struct {
	once sync.Once
	pkgs []*lint.Package
	root string
	err  error
}

// loadModuleOnce type-checks the whole module a single time and shares the
// result across benchmark iterations — the benchmark measures the check
// driver (per-package fan-out plus the interprocedural layers), not the
// parser.
func loadModuleOnce(b *testing.B) ([]*lint.Package, string) {
	b.Helper()
	benchModule.once.Do(func() {
		loader, err := lint.NewLoader(".")
		if err != nil {
			benchModule.err = err
			return
		}
		benchModule.root = loader.ModRoot
		benchModule.pkgs, benchModule.err = loader.LoadModuleWorkers(0)
	})
	if benchModule.err != nil {
		b.Fatal(benchModule.err)
	}
	return benchModule.pkgs, benchModule.root
}

// BenchmarkLint_Run sweeps the driver's worker count over the full module
// with all thirteen checks. workers=1 is the old sequential driver;
// workers=GOMAXPROCS is what `make lint` runs. Output is sorted before
// emit, so every worker count is proven byte-identical by the self-check —
// this benchmark only has to prove the wall-time win.
func BenchmarkLint_Run(b *testing.B) {
	pkgs, root := loadModuleOnce(b)
	// Same fixed sweep as BenchmarkParallel_DiffRun: on a single-CPU host
	// the high counts measure scheduling overhead, not speedup (the JSON
	// baseline notes which kind of host produced it).
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runner := lint.NewRunner(checks.All(), lint.ProjectConfig(), root)
			runner.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if diags := runner.Run(pkgs); len(diags) != 0 {
					b.Fatalf("module not clean under benchmark: %d findings", len(diags))
				}
			}
		})
	}
}
