// Package maprange proves the determinism invariant behind nlr.Table.Absorb
// and the stable-JSON manifest: iterating a Go map yields a random order, so
// a `for range` over a map whose body feeds an ordered sink — appending to a
// slice, writing a builder/writer, or fmt-printing — silently injects
// schedule-dependent output unless the collected data is sorted into a
// canonical order before it is used.
//
// The check flags a range-over-map when its body has an ordered-output
// effect and no sort.*/slices.Sort* call in the enclosing function touches
// the slice being built. The collect-then-sort idiom
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// is therefore clean, while appending to a never-sorted slice, writing a
// strings.Builder, or calling fmt.Fprintf inside the loop is flagged.
// Commutative folds (sums, counters, map-to-map copies) have no ordered
// sink and are never flagged.
package maprange

import (
	"go/ast"
	"go/types"

	"difftrace/internal/lint"
)

// Check is the registered maprange analyzer.
var Check = &lint.Check{
	Name: "maprange",
	Doc:  "range over a map must not feed an ordered sink (slice, writer, printer) without a canonical sort",
	Run:  run,
}

func run(p *lint.Pass) {
	// Walk per function so "is the built slice ever sorted?" has a scope to
	// search. Nested FuncLits get their own scope: a sort in the outer
	// function does not bless an append inside a closure that escapes.
	p.InspectFiles(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkFunc(p, body)
		}
		return true
	})
}

// checkFunc examines every range-over-map directly inside body (not inside
// nested function literals — those are visited as their own scope).
func checkFunc(p *lint.Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		if t := p.TypeOf(rng.X); t == nil {
			return
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkRange(p, body, rng)
	})
}

// inspectShallow walks n but does not descend into function literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkRange classifies the loop body's ordered-output effects and reports
// the ones no canonical sort redeems.
func checkRange(p *lint.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	var appendTargets []types.Object // slices built element-by-element
	directSink := ""                 // writer/printer effect description

	inspectShallow(rng.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) — remember x so the sort search can look
			// for it after the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.IsBuiltinCall(call, "append") || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := p.ObjectOf(id); obj != nil {
						appendTargets = append(appendTargets, obj)
					}
				}
			}
		case *ast.CallExpr:
			if directSink == "" {
				directSink = sinkCall(p, n)
			}
		}
	})

	if directSink != "" {
		p.Reportf(rng.Pos(), "map iteration %s in map order — emit via sorted keys instead", directSink)
		return
	}
	for _, obj := range appendTargets {
		if !sortedAfter(p, fnBody, rng, obj) {
			p.Reportf(rng.Pos(),
				"map iteration appends to %q which is never sorted in this function — map order leaks into the slice",
				obj.Name())
			return // one report per loop is enough
		}
	}
}

// sinkCall reports a direct ordered sink: fmt printing or Write* methods on
// a builder/buffer/writer.
func sinkCall(p *lint.Pass, call *ast.CallExpr) string {
	if name, ok := p.PkgFuncCall(call, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "calls fmt." + name
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only count method calls (a selection with a receiver), so a
		// package-level function named WriteString elsewhere doesn't trip.
		if selInfo, ok := p.Pkg.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			return "calls " + sel.Sel.Name + " on a writer"
		}
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort* call
// anywhere in the enclosing function outside the loop itself. "Anywhere in
// the function" is a deliberate approximation of dominance: the project
// idiom always sorts immediately after collecting, and a sort on any path
// marks the author's intent to canonicalize.
func sortedAfter(p *lint.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	inspectShallow(fnBody, func(n ast.Node) {
		if found || n == rng {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if _, isSort := p.PkgFuncCall(call, "sort"); !isSort {
			if _, isSlices := p.PkgFuncCall(call, "slices"); !isSlices {
				return
			}
		}
		for _, arg := range call.Args {
			if p.UsesObject(arg, obj) {
				found = true
				return
			}
		}
	})
	return found
}
