// Package ctxdiscipline proves the cancellation-plumbing invariant that
// makes difftraced's deadlines trustworthy: a context must FLOW — from
// main, through every call signature, down to the resumable reader loops
// — never be minted mid-pipeline or parked in a struct.
//
// Three rules, all type-checker-resolved:
//
//  1. context.Background()/context.TODO() may be called only in package
//     main (the process entry points that legitimately own a root ctx).
//     Library code takes ctx from its caller; the repo's nil-ctx wrapper
//     convention (DiffRun → DiffRunContext(nil, ...)) exists precisely so
//     legacy entry points need no Background() either.
//  2. When a function takes a context.Context, it is the first parameter
//     (after the receiver) — the Go API convention that keeps call sites
//     grep-able and wrappers mechanical.
//  3. context.Context never lives in a struct field. A stored ctx
//     outlives the call it belongs to, silently decoupling cancellation
//     from the work it is supposed to bound (store the CancelFunc if a
//     type must trigger cancellation later).
//
// Test files are exempt by construction (the loader only binds invariants
// to shipped code), so tests may use context.Background freely.
package ctxdiscipline

import (
	"go/ast"

	"difftrace/internal/lint"
)

// Check is the registered ctxdiscipline analyzer.
var Check = &lint.Check{
	Name: "ctxdiscipline",
	Doc:  "contexts flow: Background/TODO only in package main, ctx is the first parameter, and no struct stores a Context",
	Run:  run,
}

func run(p *lint.Pass) {
	isMain := p.Pkg.Types != nil && p.Pkg.Types.Name() == "main"
	p.InspectFiles(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMain {
				return true
			}
			if name, ok := p.PkgFuncCall(n, "context"); ok && (name == "Background" || name == "TODO") {
				p.Reportf(n.Pos(),
					"context.%s outside package main — accept ctx from the caller (use the nil-ctx wrapper convention for legacy entry points)",
					name)
			}
		case *ast.FuncType:
			// One case covers declarations, literals, interface methods,
			// and func-typed expressions: ast.Inspect visits each
			// FuncType node exactly once.
			checkParams(p, n)
		case *ast.StructType:
			for _, f := range n.Fields.List {
				if isCtxType(p, f.Type) {
					p.Reportf(f.Pos(),
						"context.Context stored in a struct field — contexts flow through call stacks, not object graphs; store the CancelFunc instead")
				}
			}
		}
		return true
	})
}

// checkParams flags context.Context parameters that are not in first
// position.
func checkParams(p *lint.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, f := range ft.Params.List {
		width := len(f.Names)
		if width == 0 {
			width = 1
		}
		if pos > 0 && isCtxType(p, f.Type) {
			p.Reportf(f.Pos(),
				"context.Context is parameter %d — ctx goes first, so wrappers and call sites stay mechanical",
				pos+1)
		}
		pos += width
	}
}

// isCtxType resolves e through the type checker: true only for the real
// context.Context, never a same-named local type.
func isCtxType(p *lint.Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && t.String() == "context.Context"
}
