// Package nakedgoroutine proves the bounded-concurrency invariant: all
// pipeline parallelism flows through internal/pool so that core.Config.
// Workers is a real budget — pool.Divide can split it across nested stages
// only if no stage smuggles in goroutines of its own. A naked `go`
// statement outside the pool is unbudgeted concurrency.
//
// Simulated application concurrency (the omp thread model, mpi ranks that
// must all be runnable for deadlock detection) is the sanctioned exception;
// each such `go` carries a //lint:allow nakedgoroutine with the reason.
package nakedgoroutine

import (
	"go/ast"

	"difftrace/internal/lint"
)

// Check is the registered nakedgoroutine analyzer.
var Check = &lint.Check{
	Name: "nakedgoroutine",
	Doc:  "goroutines start only in internal/pool — everything else draws from the Workers budget",
	Run:  run,
}

func run(p *lint.Pass) {
	p.InspectFiles(func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			p.Reportf(g.Pos(),
				"goroutine started outside internal/pool — route it through pool.Do so the Workers budget holds")
		}
		return true
	})
}
