// ModulePass: the whole-module unit of work for interprocedural checks.
// Where a Pass sees one package's syntax and types, a ModulePass sees every
// loaded package at once plus a shared fact table in which the engine
// layers (internal/lint/callgraph, internal/lint/summary) memoize their
// artifacts — the call graph and the per-function summaries are built once
// per run no matter how many checks consume them.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// ModulePass hands one (check, module) unit of work its inputs and its
// reporter. Module checks run sequentially after the per-package fan-out,
// so ModulePass needs no internal locking.
type ModulePass struct {
	Pkgs  []*Package
	Check *Check

	// Facts memoizes engine artifacts across the module checks of one run.
	// Keys are owned by the producing package ("callgraph", "summary");
	// use Fact for the build-once pattern.
	Facts map[string]any

	// CacheDir, when non-empty, is where the summary layer persists
	// per-package summaries between runs (Runner.CacheDir).
	CacheDir string

	// Workers is the fan-out budget engine layers may use for their own
	// per-package work (Runner.Workers; 0 = GOMAXPROCS).
	Workers int

	runner *Runner
	out    *[]Diagnostic
}

// NewModulePass builds a standalone ModulePass over pkgs, for driving the
// engine layers (callgraph, summary) outside a Runner: unit tests and the
// CLI's -graph path. relRoot anchors module-relative positions. Reports
// made through it go to an internal sink; use a Runner for real runs.
func NewModulePass(pkgs []*Package, relRoot string) *ModulePass {
	var sink []Diagnostic
	return &ModulePass{
		Pkgs:   pkgs,
		Check:  &Check{Name: "adhoc"},
		Facts:  make(map[string]any),
		runner: NewRunner(nil, nil, relRoot),
		out:    &sink,
	}
}

// Fact returns the memoized artifact under key, building it on first use.
func (mp *ModulePass) Fact(key string, build func() any) any {
	if v, ok := mp.Facts[key]; ok {
		return v
	}
	v := build()
	mp.Facts[key] = v
	return v
}

// Root returns the absolute directory diagnostics are relativized against
// (the module root in real runs, the fixture root under linttest).
func (mp *ModulePass) Root() string { return mp.runner.relRoot }

// Fset returns the shared FileSet all loaded packages position against.
func (mp *ModulePass) Fset() *token.FileSet {
	if len(mp.Pkgs) == 0 {
		return token.NewFileSet()
	}
	return mp.Pkgs[0].Fset
}

// PkgRel returns pkg's module-relative directory ("" for the root package)
// — the coordinate the Exempt/Only config tables are keyed on.
func (mp *ModulePass) PkgRel(pkg *Package) string { return mp.runner.relPkgPath(pkg) }

// RelPosition resolves pos to module-relative (file, line, col).
func (mp *ModulePass) RelPosition(pos token.Pos) (file string, line, col int) {
	position := mp.Fset().Position(pos)
	file = position.Filename
	if root := mp.runner.relRoot; root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return file, position.Line, position.Column
}

// ReportAt records a diagnostic at an explicit module-relative position,
// carrying an optional interprocedural chain. pkgRel is the module-relative
// directory of the package owning the finding; the Exempt/Only tables are
// applied here, at report time, because a module check cannot be pre-
// filtered per package the way a Pass can.
func (mp *ModulePass) ReportAt(pkgRel, file string, line, col int, chain []string, format string, args ...any) {
	if !mp.runner.applies(mp.Check.Name, pkgRel) {
		return
	}
	*mp.out = append(*mp.out, Diagnostic{
		File:    file,
		Line:    line,
		Col:     col,
		Check:   mp.Check.Name,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// Reportf is ReportAt for a token.Pos inside pkg.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, chain []string, format string, args ...any) {
	file, line, col := mp.RelPosition(pos)
	mp.ReportAt(mp.PkgRel(pkg), file, line, col, chain, format, args...)
}
