// Small type-aware AST helpers shared by the checks. They live in the
// framework package so every check resolves "is this fmt.Println or a local
// shadow?" the same way — through the type checker, never by spelling.
package lint

import (
	"go/ast"
	"go/types"
)

// PkgFuncCall reports whether call is a selector call on a package whose
// import path is pkgPath (e.g. time.Now, sort.Strings), returning the
// function name. Aliased imports resolve correctly because the receiver
// identifier is looked up as a *types.PkgName.
func (p *Pass) PkgFuncCall(call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// IsBuiltinCall reports whether call invokes the named builtin (panic,
// append, ...), resolved through the type checker so shadowed names don't
// count.
func (p *Pass) IsBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// TypeOf is Info.TypeOf with the pass's package bound.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (use or def).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// UsesObject reports whether the subtree rooted at n mentions obj.
func (p *Pass) UsesObject(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// ErrorType is the predeclared error interface type.
var ErrorType = types.Universe.Lookup("error").Type()
