package lint

// ProjectConfig is the invariant allowlist table for this repository. The
// table is the contract: each entry names the one place a pattern is the
// implementation of an invariant rather than a violation of it. Everything
// else needs an inline //lint:allow with a reason.
func ProjectConfig() *Config {
	return &Config{
		Exempt: map[string][]string{
			// The clock and the PRNG live where their output is already
			// Scrub-isolated: obs owns wall time (manifest WallNs is a
			// scrubbed field), pool measures its own utilization.
			"wallclock": {"internal/obs", "internal/pool"},
			// All pipeline concurrency flows through the bounded pool so
			// Workers budgets hold; only the pool may start goroutines.
			"nakedgoroutine": {"internal/pool"},
			// pool re-raises worker panics deterministically (lowest index
			// wins) — the one sanctioned panic site.
			"panicdiscipline": {"internal/pool"},
		},
		Only: map[string][]string{
			// The nil-off contract is an obs API promise: every exported
			// pointer-receiver method must begin with a nil-receiver guard.
			"nilreceiver": {"internal/obs"},
		},
	}
}
