// Package jaccard computes the pairwise Jaccard Similarity Matrices (JSM)
// of §II-E/F: JSM[i][j] is the Jaccard similarity of the attribute sets of
// traces i and j, and JSM_D = |JSM_faulty − JSM_normal| is the "diff of the
// diffs" that isolates which similarity relations a fault changed.
//
// When the attribute sets share one fca.Interner (the pipeline's shape
// since the bitset rewrite — see DESIGN.md §10), every cell is two
// popcounts over word-packed bitsets; sets over foreign interners still
// work via fca.Set's string-remap slow path.
package jaccard

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"difftrace/internal/fca"
	"difftrace/internal/obs"
	"difftrace/internal/pool"
)

// JSM is a symmetric matrix of pairwise similarities (or, for a difference
// matrix, absolute similarity changes), indexed by object name.
type JSM struct {
	Names []string
	M     [][]float64
}

// New builds a JSM from per-object attribute sets. Objects are ordered by
// name using a numeric-aware comparison so "T2" sorts before "T10" and
// "6.4" after "6.3".
func New(attrs map[string]fca.AttrSet) *JSM {
	return NewParallel(attrs, 1)
}

// NewParallel is New with the O(n²) pairwise computation spread over up to
// workers goroutines in row blocks. Row i computes cells (i, j>i) and
// mirrors them; every cell is written exactly once and each value is the
// same arithmetic as the sequential path, so the result is bit-identical
// for any worker count.
func NewParallel(attrs map[string]fca.AttrSet, workers int) *JSM {
	return NewParallelObserved(attrs, workers, nil)
}

// NewParallelObserved is NewParallel with observability folded into r: the
// row-block loop records its utilization under the "jaccard.rows" pool
// site, and the "jaccard.cells" counter accumulates the pairwise cells
// computed (n·(n−1)/2 per matrix). A nil Run is the zero-cost fast path.
func NewParallelObserved(attrs map[string]fca.AttrSet, workers int, r *obs.Run) *JSM {
	names := make([]string, 0, len(attrs))
	for n := range attrs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return LessNatural(names[i], names[j]) })
	m := make([][]float64, len(names))
	for i := range m {
		m[i] = make([]float64, len(names))
		m[i][i] = 1
	}
	r.Counter("jaccard.cells").Add(int64(len(names) * (len(names) - 1) / 2))
	pool.DoObserved(r, "jaccard.rows", workers, len(names), func(i int) {
		row := attrs[names[i]]
		for j := i + 1; j < len(names); j++ {
			v := row.Jaccard(attrs[names[j]])
			m[i][j], m[j][i] = v, v
		}
	})
	return &JSM{Names: names, M: m}
}

// FromLattice derives the JSM from a concept lattice's context: object
// intents are read back from the lattice, as the paper's pipeline does
// (the two routes agree; see the JSMSource ablation benchmark).
func FromLattice(l *fca.Lattice) *JSM {
	ctx := l.Context()
	attrs := make(map[string]fca.AttrSet)
	for _, g := range ctx.Objects() {
		attrs[g] = ctx.Intent(g)
	}
	return New(attrs)
}

// LessNatural compares names component-wise, numerically where possible
// ("6.4" < "10.2", "T2" < "T10"). It is a strict total order: ties on the
// numeric key fall back to the raw strings.
func LessNatural(a, b string) bool {
	pa, pb := naturalKey(a), naturalKey(b)
	for i := 0; i < len(pa) && i < len(pb); i++ {
		if pa[i] != pb[i] {
			return pa[i] < pb[i]
		}
	}
	if len(pa) != len(pb) {
		return len(pa) < len(pb)
	}
	return a < b
}

// naturalKey splits a name into alternating text/number chunks, padding
// numbers for lexicographic comparison.
func naturalKey(s string) []string {
	var parts []string
	i := 0
	for i < len(s) {
		j := i
		if s[i] >= '0' && s[i] <= '9' {
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			parts = append(parts, fmt.Sprintf("%020s", s[i:j]))
		} else {
			for j < len(s) && (s[j] < '0' || s[j] > '9') {
				j++
			}
			parts = append(parts, s[i:j])
		}
		i = j
	}
	return parts
}

// Index returns the row index of name, or -1.
func (j *JSM) Index(name string) int {
	for i, n := range j.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// At returns the similarity of two named objects.
func (j *JSM) At(a, b string) (float64, error) {
	ia, ib := j.Index(a), j.Index(b)
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("jaccard: unknown object %q/%q", a, b)
	}
	return j.M[ia][ib], nil
}

// Size returns the number of objects.
func (j *JSM) Size() int { return len(j.Names) }

// Diff computes JSM_D = |a − b| entrywise. Both matrices must be over the
// same object names in the same order (the normal and faulty executions
// have the same process/thread structure).
func Diff(a, b *JSM) (*JSM, error) {
	if len(a.Names) != len(b.Names) {
		return nil, fmt.Errorf("jaccard: size mismatch %d vs %d", len(a.Names), len(b.Names))
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			return nil, fmt.Errorf("jaccard: object mismatch %q vs %q", a.Names[i], b.Names[i])
		}
	}
	d := &JSM{Names: append([]string(nil), a.Names...)}
	d.M = make([][]float64, len(a.M))
	for i := range a.M {
		d.M[i] = make([]float64, len(a.M))
		for k := range a.M[i] {
			d.M[i][k] = math.Abs(a.M[i][k] - b.M[i][k])
		}
	}
	return d, nil
}

// RowDelta sums row i — on a JSM_D this measures how much object i's
// similarity relations changed, the per-trace suspicion score of §II-F.
func (j *JSM) RowDelta(i int) float64 {
	s := 0.0
	for _, v := range j.M[i] {
		s += v
	}
	return s
}

// Suspect pairs an object with its suspicion score.
type Suspect struct {
	Name  string
	Score float64
}

// Suspects ranks all objects by descending row delta (computed on a JSM_D),
// breaking ties by name order.
func (j *JSM) Suspects() []Suspect {
	out := make([]Suspect, len(j.Names))
	for i, n := range j.Names {
		out[i] = Suspect{Name: n, Score: j.RowDelta(i)}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// TopSuspects returns up to k suspect names whose score exceeds eps.
func (j *JSM) TopSuspects(k int, eps float64) []string {
	var out []string
	for _, s := range j.Suspects() {
		if len(out) >= k || s.Score <= eps {
			break
		}
		out = append(out, s.Name)
	}
	return out
}

// Distance converts the similarity matrix into the dissimilarity matrix
// 1 − JSM that hierarchical clustering consumes.
func (j *JSM) Distance() [][]float64 {
	d := make([][]float64, len(j.M))
	for i := range j.M {
		d[i] = make([]float64, len(j.M))
		for k := range j.M[i] {
			if i != k {
				d[i][k] = 1 - j.M[i][k]
			}
		}
	}
	return d
}

// Heatmap renders the matrix as ASCII (Figure 4): one shade character per
// cell from " " (0) to "█"-like density using a ramp.
func (j *JSM) Heatmap() string {
	ramp := []byte(" .:-=+*#%@")
	var b strings.Builder
	w := 0
	for _, n := range j.Names {
		if len(n) > w {
			w = len(n)
		}
	}
	for i, n := range j.Names {
		fmt.Fprintf(&b, "%-*s |", w, n)
		for k := range j.M[i] {
			v := j.M[i][k]
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// String renders the matrix numerically with row/column labels.
func (j *JSM) String() string {
	var b strings.Builder
	w := 0
	for _, n := range j.Names {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Fprintf(&b, "%-*s", w, "")
	for _, n := range j.Names {
		fmt.Fprintf(&b, " %5s", n)
	}
	b.WriteByte('\n')
	for i, n := range j.Names {
		fmt.Fprintf(&b, "%-*s", w, n)
		for k := range j.M[i] {
			fmt.Fprintf(&b, " %5.2f", j.M[i][k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
