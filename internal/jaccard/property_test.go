package jaccard

import (
	"fmt"
	"math/rand"
	"testing"

	"difftrace/internal/fca"
)

// randomJSMPair builds two JSMs over the same names with random similarity
// values in [0, 1].
func randomJSMPair(rng *rand.Rand, n int) (*JSM, *JSM) {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%d.%d", rng.Intn(8), i)
	}
	build := func() *JSM {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			m[i][i] = 1
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				m[i][j], m[j][i] = v, v
			}
		}
		return &JSM{Names: append([]string(nil), names...), M: m}
	}
	return build(), build()
}

// TestDiffSymmetryProperties: for random symmetric matrices, JSM_D is
// symmetric, non-negative, zero on the diagonal, and |a−b| == |b−a|.
func TestDiffSymmetryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a, b := randomJSMPair(rng, 2+rng.Intn(12))
		d1, err := Diff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Diff(b, a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d1.M {
			if d1.M[i][i] != 0 {
				t.Fatalf("trial %d: diagonal (%d,%d) = %v, want 0", trial, i, i, d1.M[i][i])
			}
			for j := range d1.M[i] {
				if d1.M[i][j] < 0 {
					t.Fatalf("trial %d: negative delta at (%d,%d)", trial, i, j)
				}
				if d1.M[i][j] != d1.M[j][i] {
					t.Fatalf("trial %d: JSM_D not symmetric at (%d,%d)", trial, i, j)
				}
				if d1.M[i][j] != d2.M[i][j] {
					t.Fatalf("trial %d: |a-b| != |b-a| at (%d,%d)", trial, i, j)
				}
			}
		}
		// Diff with itself is all zeros and RowDelta is additive over rows.
		self, err := Diff(a, a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range self.M {
			if self.RowDelta(i) != 0 {
				t.Fatalf("trial %d: self-diff row %d delta %v", trial, i, self.RowDelta(i))
			}
		}
	}
}

// TestRowDeltaMatchesManualSum: RowDelta is exactly the row sum, and the
// suspect ranking is the descending stable sort of those sums.
func TestRowDeltaMatchesManualSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randomJSMPair(rng, 9)
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.M {
		sum := 0.0
		for _, v := range d.M[i] {
			sum += v
		}
		if got := d.RowDelta(i); got != sum {
			t.Fatalf("RowDelta(%d) = %v, want %v", i, got, sum)
		}
	}
	sus := d.Suspects()
	if len(sus) != len(d.Names) {
		t.Fatalf("suspect count %d, want %d", len(sus), len(d.Names))
	}
	for i := 1; i < len(sus); i++ {
		if sus[i-1].Score < sus[i].Score {
			t.Fatalf("suspects not descending at %d: %v then %v", i, sus[i-1], sus[i])
		}
	}
}

// TestNewParallelMatchesSequential: the row-block parallel JSM is
// bit-identical to the sequential one for random attribute sets.
func TestNewParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	attrs := map[string]fca.AttrSet{}
	for i := 0; i < 23; i++ {
		s := fca.NewAttrSet()
		for a := 0; a < 1+rng.Intn(20); a++ {
			s.Add(fmt.Sprintf("attr%d", rng.Intn(30)))
		}
		attrs[fmt.Sprintf("T%d", i)] = s
	}
	seq := New(attrs)
	for _, w := range []int{2, 4, 16} {
		par := NewParallel(attrs, w)
		if len(par.Names) != len(seq.Names) {
			t.Fatalf("workers=%d: name counts differ", w)
		}
		for i := range seq.Names {
			if seq.Names[i] != par.Names[i] {
				t.Fatalf("workers=%d: name order differs at %d", w, i)
			}
			for j := range seq.M[i] {
				if seq.M[i][j] != par.M[i][j] {
					t.Fatalf("workers=%d: cell (%d,%d) %v vs %v", w, i, j, seq.M[i][j], par.M[i][j])
				}
			}
		}
	}
}

// lessNaturalNames is the generator vocabulary for the total-order checks:
// numeric suffixes vs plain strings, zero-padding, multi-component IDs.
var lessNaturalNames = []string{
	"", "T1", "T2", "T10", "T01", "T001", "t1", "T", "T1a", "T1a2",
	"0", "1", "2", "10", "01", "9", "0.1", "1.0", "6.3", "6.4", "10.2",
	"5.0", "5", "50", "a", "ab", "b", "a1b2", "a10b", "a2b",
	"MPI_Send", "MPI_Recv", "L3", "L10", "L9",
}

// TestLessNaturalTotalOrder: LessNatural is a strict total order —
// irreflexive, asymmetric, transitive, and total (trichotomy) — over the
// edge-case vocabulary.
func TestLessNaturalTotalOrder(t *testing.T) {
	ns := lessNaturalNames
	for _, a := range ns {
		if LessNatural(a, a) {
			t.Errorf("irreflexivity: LessNatural(%q, %q)", a, a)
		}
		for _, b := range ns {
			lt, gt := LessNatural(a, b), LessNatural(b, a)
			if lt && gt {
				t.Errorf("asymmetry: %q and %q each less than the other", a, b)
			}
			if a != b && !lt && !gt {
				t.Errorf("totality: %q and %q incomparable", a, b)
			}
			if a == b && (lt || gt) {
				t.Errorf("equal strings compare unequal: %q", a)
			}
			for _, c := range ns {
				if LessNatural(a, b) && LessNatural(b, c) && !LessNatural(a, c) {
					t.Errorf("transitivity: %q < %q < %q but not %q < %q", a, b, c, a, c)
				}
			}
		}
	}
}

// TestLessNaturalNumericEdges pins the intended orderings: numeric chunks
// compare by value, number-vs-text mixes stay consistent, and zero-padded
// variants are distinct but ordered.
func TestLessNaturalNumericEdges(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"T2", "T10"},   // numeric suffix beats lexicographic
		{"6.3", "6.4"},  // component-wise
		{"6.4", "10.2"}, // leading numeric chunk by value
		{"9", "10"},
		{"L9", "L10"},
		{"T1", "T1a"}, // prefix before extension
		{"a2b", "a10b"},
	}
	for _, c := range cases {
		if !LessNatural(c.a, c.b) {
			t.Errorf("want %q < %q", c.a, c.b)
		}
		if LessNatural(c.b, c.a) {
			t.Errorf("want !(%q < %q)", c.b, c.a)
		}
	}
	// "T01" and "T1" have equal numeric keys: the raw-string tiebreak keeps
	// them distinct and ordered ("T01" < "T1" lexicographically).
	if !LessNatural("T01", "T1") || LessNatural("T1", "T01") {
		t.Error("zero-padded tiebreak broken for T01 vs T1")
	}
	// Sanity: the vocabulary itself has no duplicates, so the trichotomy
	// checks above really covered distinct pairs.
	seen := map[string]bool{}
	for _, n := range lessNaturalNames {
		if seen[n] {
			t.Fatalf("duplicate vocab entry %q", n)
		}
		seen[n] = true
	}
}
