package jaccard_test

import (
	"fmt"

	"difftrace/internal/fca"
	"difftrace/internal/jaccard"
)

// JSM_D isolates the trace whose attribute set the fault changed.
func ExampleDiff() {
	normal := map[string]fca.AttrSet{
		"T0": fca.NewAttrSet("init", "loop", "fin"),
		"T1": fca.NewAttrSet("init", "loop", "fin"),
	}
	faulty := map[string]fca.AttrSet{
		"T0": fca.NewAttrSet("init", "loop", "fin"),
		"T1": fca.NewAttrSet("init", "loop"), // truncated: no fin
	}
	d, err := jaccard.Diff(jaccard.New(faulty), jaccard.New(normal))
	if err != nil {
		panic(err)
	}
	for _, s := range d.Suspects() {
		fmt.Printf("%s %.3f\n", s.Name, s.Score)
	}
	// Output:
	// T0 0.333
	// T1 0.333
}
