package jaccard

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/fca"
)

func oddEvenAttrs() map[string]fca.AttrSet {
	common := []string{"MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "MPI_Finalize"}
	even := fca.NewAttrSet(append([]string{"L0"}, common...)...)
	odd := fca.NewAttrSet(append([]string{"L1"}, common...)...)
	return map[string]fca.AttrSet{"T0": even, "T1": odd, "T2": even, "T3": odd}
}

func TestFigure4JSM(t *testing.T) {
	j := New(oddEvenAttrs())
	if !reflect.DeepEqual(j.Names, []string{"T0", "T1", "T2", "T3"}) {
		t.Fatalf("names = %v", j.Names)
	}
	// Same parity: identical attribute sets -> 1. Cross parity: 4 shared of
	// 6 union -> 2/3.
	check := func(a, b string, want float64) {
		got, err := j.At(a, b)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Errorf("JSM[%s][%s] = %f (%v), want %f", a, b, got, err, want)
		}
	}
	check("T0", "T2", 1)
	check("T1", "T3", 1)
	check("T0", "T1", 2.0/3)
	check("T2", "T3", 2.0/3)
	check("T0", "T0", 1)
}

func TestNaturalOrdering(t *testing.T) {
	attrs := map[string]fca.AttrSet{}
	for _, n := range []string{"10.2", "2.4", "2.10", "6.4", "T10", "T2"} {
		attrs[n] = fca.NewAttrSet("x")
	}
	j := New(attrs)
	want := []string{"2.4", "2.10", "6.4", "10.2", "T2", "T10"}
	if !reflect.DeepEqual(j.Names, want) {
		t.Errorf("names = %v, want %v", j.Names, want)
	}
}

func TestFromLatticeAgreesWithDirect(t *testing.T) {
	attrs := oddEvenAttrs()
	l := fca.NewLattice()
	for _, n := range []string{"T0", "T1", "T2", "T3"} {
		l.AddObject(n, attrs[n])
	}
	a := New(attrs)
	b := FromLattice(l)
	if !reflect.DeepEqual(a.Names, b.Names) {
		t.Fatalf("names differ: %v vs %v", a.Names, b.Names)
	}
	for i := range a.M {
		for k := range a.M[i] {
			if math.Abs(a.M[i][k]-b.M[i][k]) > 1e-12 {
				t.Fatalf("M[%d][%d]: %f vs %f", i, k, a.M[i][k], b.M[i][k])
			}
		}
	}
}

func TestDiffAndSuspects(t *testing.T) {
	normal := New(oddEvenAttrs())
	// Fault: T1 loses its loop attribute (truncated trace).
	faulty := oddEvenAttrs()
	faulty["T1"] = fca.NewAttrSet("MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank")
	fj := New(faulty)
	d, err := Diff(fj, normal)
	if err != nil {
		t.Fatal(err)
	}
	sus := d.Suspects()
	if sus[0].Name != "T1" {
		t.Errorf("top suspect = %v", sus)
	}
	if top := d.TopSuspects(2, 0); top[0] != "T1" {
		t.Errorf("TopSuspects = %v", top)
	}
	if top := d.TopSuspects(10, 1e9); len(top) != 0 {
		t.Errorf("eps filter failed: %v", top)
	}
}

func TestDiffMismatchErrors(t *testing.T) {
	a := New(map[string]fca.AttrSet{"x": fca.NewAttrSet("a")})
	b := New(map[string]fca.AttrSet{"x": fca.NewAttrSet("a"), "y": fca.NewAttrSet("b")})
	if _, err := Diff(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
	c := New(map[string]fca.AttrSet{"z": fca.NewAttrSet("a")})
	if _, err := Diff(a, c); err == nil {
		t.Error("name mismatch accepted")
	}
}

func TestDistanceMatrix(t *testing.T) {
	j := New(oddEvenAttrs())
	d := j.Distance()
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("diagonal not 0")
		}
		for k := range d[i] {
			if math.Abs(d[i][k]-(1-j.M[i][k])) > 1e-12 {
				t.Errorf("distance[%d][%d] wrong", i, k)
			}
		}
	}
}

func TestRenderings(t *testing.T) {
	j := New(oddEvenAttrs())
	hm := j.Heatmap()
	if strings.Count(hm, "\n") != 4 {
		t.Errorf("heatmap rows:\n%s", hm)
	}
	if !strings.Contains(hm, "@") { // similarity-1 cells at full shade
		t.Errorf("heatmap has no full-shade cells:\n%s", hm)
	}
	s := j.String()
	if !strings.Contains(s, "1.00") || !strings.Contains(s, "0.67") {
		t.Errorf("numeric render:\n%s", s)
	}
	if j.Index("T2") != 2 || j.Index("zz") != -1 {
		t.Error("Index wrong")
	}
	if _, err := j.At("zz", "T0"); err == nil {
		t.Error("At with unknown name should error")
	}
}

// Property: JSM is symmetric with unit diagonal, entries in [0,1]; JSM_D of
// a matrix with itself is all zeros.
func TestQuickJSMProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		cnt := int(n)%6 + 2
		attrs := map[string]fca.AttrSet{}
		rng := seed
		next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
		for i := 0; i < cnt; i++ {
			s := fca.NewAttrSet()
			for a := 0; a < 8; a++ {
				if next()%2 == 0 {
					s.Add(string(rune('a' + a)))
				}
			}
			attrs[string(rune('A'+i))] = s
		}
		j := New(attrs)
		for x := range j.M {
			if j.M[x][x] != 1 {
				return false
			}
			for y := range j.M {
				v := j.M[x][y]
				if v < 0 || v > 1 || v != j.M[y][x] {
					return false
				}
			}
		}
		d, err := Diff(j, j)
		if err != nil {
			return false
		}
		for x := range d.M {
			if d.RowDelta(x) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
