package filter

import (
	"sync"

	"difftrace/internal/trace"
)

// Memo caches a filter's per-function keep decision by registry function
// ID. The streaming pipeline filters each decoded symbol on the fly — and
// re-filters on every summarization round, since streams are re-decoded
// instead of kept expanded — so the regexp-backed KeepName would otherwise
// run once per event instead of once per distinct function. Decisions are
// a pure function of the interned name, so memoization cannot change
// results; the determinism suite compares against the unmemoized batch
// path to prove it.
//
// A Memo is safe for concurrent use (thread objects of one run are
// filtered by parallel workers sharing one Memo).
type Memo struct {
	f   *Filter
	reg *trace.Registry

	mu  sync.RWMutex
	dec []uint8 // indexed by function ID: 0 undecided, 1 keep, 2 drop
}

// Memo returns a keep-decision cache for f over reg. The drop-returns flag
// is not part of the decision (it acts on event kind, not name); streaming
// callers apply it before consulting the Memo, mirroring Apply.
func (f *Filter) Memo(reg *trace.Registry) *Memo {
	return &Memo{f: f, reg: reg}
}

// Keep reports whether events of function fn survive the keep-categories,
// equal to f.KeepName(reg.Name(fn)) by construction.
func (m *Memo) Keep(fn uint32) bool {
	m.mu.RLock()
	if int(fn) < len(m.dec) {
		if d := m.dec[fn]; d != 0 {
			m.mu.RUnlock()
			return d == 1
		}
	}
	m.mu.RUnlock()

	keep := m.f.KeepName(m.reg.Name(fn))
	d := uint8(2)
	if keep {
		d = 1
	}
	m.mu.Lock()
	if int(fn) >= len(m.dec) {
		grown := make([]uint8, int(fn)+1)
		copy(grown, m.dec)
		m.dec = grown
	}
	m.dec[fn] = d
	m.mu.Unlock()
	return keep
}
