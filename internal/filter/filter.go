// Package filter implements DiffTrace's pre-processing stage: the
// user-configurable front-end that decides which trace events survive into
// the analysis (paper §II-C, Table I).
//
// Filters are usually written as compact spec strings, the notation the
// paper's ranking tables use (e.g. "11.plt.mem.ompcrit.cust.0K10"):
//
//	<flags> "." <category>* "." <image> "K" <k>
//
//	flags    two binary digits: [drop returns][drop PLT calls]
//	category zero or more named keep-categories from Table I; their union
//	         is kept (no categories = keep everything). "plt" may also
//	         appear as a segment, as an alias for the drop-PLT flag.
//	image    0 = main image, 1 = all images (which ParLOT level the traces
//	         were captured at; carried for bookkeeping in table rows)
//	k        the NLR window constant the filtered traces are summarized with
//
// So "11.plt.mem.cust.0K10" reads: drop returns and .plt entries, keep only
// memory-related calls plus the user's custom regular expressions, traces
// from a main-image capture, NLR K=10 — exactly the row label format of
// Tables VI–IX.
package filter

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"difftrace/internal/trace"
)

// Category is one of Table I's predefined keep-filters.
type Category int

const (
	// MPIAll keeps functions starting with "MPI_".
	MPIAll Category = iota
	// MPICollectives keeps MPI collective calls only.
	MPICollectives
	// MPISendRecv keeps MPI_Send/Isend/Recv/Irecv/Wait.
	MPISendRecv
	// MPIInternal keeps inner MPI library calls (MPID_/MPIR_ prefixes).
	MPIInternal
	// OMPAll keeps OpenMP runtime calls (GOMP_/omp_ prefixes).
	OMPAll
	// OMPCritical keeps critical-section enter/leave calls.
	OMPCritical
	// OMPMutex keeps OMP mutex calls.
	OMPMutex
	// Memory keeps memory-related functions (memcpy, malloc, ...).
	Memory
	// Network keeps network-related functions (tcp, socket, ...).
	Network
	// Poll keeps polling functions (poll, yield, sched, ...).
	Poll
	// Strings keeps str* functions.
	Strings
	// Custom keeps names matching the filter's Custom regexps.
	Custom
	numCategories
)

var categoryNames = map[Category]string{
	MPIAll:         "mpiall",
	MPICollectives: "mpicol",
	MPISendRecv:    "mpisr",
	MPIInternal:    "mpiint",
	OMPAll:         "omp",
	OMPCritical:    "ompcrit",
	OMPMutex:       "ompmutex",
	Memory:         "mem",
	Network:        "net",
	Poll:           "poll",
	Strings:        "str",
	Custom:         "cust",
}

// aliases admits the paper's alternative spellings.
var categoryAliases = map[string]Category{
	"mpi":     MPIAll,
	"mpiall":  MPIAll,
	"mpicol":  MPICollectives,
	"mpisr":   MPISendRecv,
	"mpiint":  MPIInternal,
	"omp":     OMPAll,
	"ompall":  OMPAll,
	"ompcrit": OMPCritical,

	"ompmutex": OMPMutex,
	"mem":      Memory,
	"memory":   Memory,
	"net":      Network,
	"network":  Network,
	"poll":     Poll,
	"str":      Strings,
	"string":   Strings,
	"cust":     Custom,
	"custom":   Custom,
}

// String returns the spec segment for c.
func (c Category) String() string {
	if n, ok := categoryNames[c]; ok {
		return n
	}
	return fmt.Sprintf("category(%d)", int(c))
}

var (
	mpiCollectiveSet = map[string]bool{
		"MPI_Barrier": true, "MPI_Allreduce": true, "MPI_AllReduce": true,
		"MPI_Bcast": true, "MPI_Reduce": true, "MPI_Alltoall": true,
		"MPI_Allgather": true, "MPI_Gather": true, "MPI_Scatter": true,
		"MPI_Scan": true, "MPI_Reduce_scatter": true,
	}
	mpiSendRecvSet = map[string]bool{
		"MPI_Send": true, "MPI_Isend": true, "MPI_Recv": true,
		"MPI_Irecv": true, "MPI_Wait": true, "MPI_Waitall": true,
	}
	memRE  = regexp.MustCompile(`(?i)(mem|alloc|free|calloc)`)
	netRE  = regexp.MustCompile(`(?i)(network|tcp|socket|send_pkt|recv_pkt)`)
	pollRE = regexp.MustCompile(`(?i)(poll|yield|sched)`)
	strRE  = regexp.MustCompile(`^str`)
)

// matchCategory reports whether a function name falls in category c.
func matchCategory(c Category, name string) bool {
	switch c {
	case MPIAll:
		return strings.HasPrefix(name, "MPI_")
	case MPICollectives:
		return mpiCollectiveSet[name]
	case MPISendRecv:
		return mpiSendRecvSet[name]
	case MPIInternal:
		return strings.HasPrefix(name, "MPID_") || strings.HasPrefix(name, "MPIR_")
	case OMPAll:
		return strings.HasPrefix(name, "GOMP_") || strings.HasPrefix(name, "omp_")
	case OMPCritical:
		return name == "GOMP_critical_start" || name == "GOMP_critical_end" ||
			name == "OMP_CRITICAL_START" || name == "OMP_CRITICAL_END"
	case OMPMutex:
		return strings.HasPrefix(name, "omp_") && strings.Contains(name, "lock") ||
			strings.Contains(strings.ToLower(name), "mutex")
	case Memory:
		return memRE.MatchString(name)
	case Network:
		return netRE.MatchString(name)
	case Poll:
		return pollRE.MatchString(name)
	case Strings:
		return strRE.MatchString(name)
	default:
		return false
	}
}

// Filter is a parsed pre-processing configuration.
type Filter struct {
	DropReturns bool
	DropPLT     bool
	Keep        []Category       // union; empty = keep everything
	Custom      []*regexp.Regexp // consulted when Keep contains Custom
	Image       int              // 0 main image, 1 all images (bookkeeping)
	K           int              // NLR constant carried in the spec
}

// New returns a Filter with the common defaults (drop returns and PLT,
// K=10, main image) keeping the given categories.
func New(keep ...Category) *Filter {
	return &Filter{DropReturns: true, DropPLT: true, Keep: keep, K: 10}
}

// WithCustom attaches custom regular expressions (Table I "Advanced") and
// ensures the Custom category is in Keep. It returns f for chaining.
func (f *Filter) WithCustom(patterns ...string) (*Filter, error) {
	for _, p := range patterns {
		re, err := regexp.Compile(p)
		if err != nil {
			return nil, fmt.Errorf("filter: bad custom pattern %q: %w", p, err)
		}
		f.Custom = append(f.Custom, re)
	}
	if len(patterns) > 0 && !f.hasCategory(Custom) {
		f.Keep = append(f.Keep, Custom)
	}
	return f, nil
}

func (f *Filter) hasCategory(c Category) bool {
	for _, k := range f.Keep {
		if k == c {
			return true
		}
	}
	return false
}

// ParseSpec parses a spec string (see package comment). Custom patterns are
// supplied out of band because the spec only records that they apply.
func ParseSpec(spec string, customPatterns ...string) (*Filter, error) {
	segs := strings.Split(spec, ".")
	if len(segs) < 2 {
		return nil, fmt.Errorf("filter: spec %q needs at least flags and K segments", spec)
	}
	flags := segs[0]
	if len(flags) != 2 || strings.Trim(flags, "01") != "" {
		return nil, fmt.Errorf("filter: spec %q: flags %q must be two binary digits", spec, flags)
	}
	f := &Filter{DropReturns: flags[0] == '1', DropPLT: flags[1] == '1'}

	last := segs[len(segs)-1]
	img, k, ok := strings.Cut(last, "K")
	if !ok {
		return nil, fmt.Errorf("filter: spec %q: last segment %q must be <image>K<k>", spec, last)
	}
	var err error
	if f.Image, err = strconv.Atoi(img); err != nil || f.Image < 0 || f.Image > 1 {
		return nil, fmt.Errorf("filter: spec %q: bad image level %q", spec, img)
	}
	if f.K, err = strconv.Atoi(k); err != nil || f.K < 1 {
		return nil, fmt.Errorf("filter: spec %q: bad NLR constant %q", spec, k)
	}

	for _, seg := range segs[1 : len(segs)-1] {
		if seg == "plt" {
			f.DropPLT = true
			continue
		}
		c, ok := categoryAliases[seg]
		if !ok {
			return nil, fmt.Errorf("filter: spec %q: unknown category %q", spec, seg)
		}
		if !f.hasCategory(c) {
			f.Keep = append(f.Keep, c)
		}
	}
	if _, err := f.WithCustom(customPatterns...); err != nil {
		return nil, err
	}
	if f.hasCategory(Custom) && len(f.Custom) == 0 {
		return nil, fmt.Errorf("filter: spec %q uses 'cust' but no custom patterns were given", spec)
	}
	return f, nil
}

// String re-renders the spec in canonical form (categories sorted by their
// Table I order), matching the row labels of the paper's ranking tables.
func (f *Filter) String() string {
	var b strings.Builder
	if f.DropReturns {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	if f.DropPLT {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	cats := append([]Category(nil), f.Keep...)
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		b.WriteByte('.')
		b.WriteString(c.String())
	}
	fmt.Fprintf(&b, ".%dK%d", f.Image, f.K)
	return b.String()
}

// KeepName reports whether a function name survives the keep-categories
// (the drop flags are applied separately because they act on event kind and
// PLT naming).
func (f *Filter) KeepName(name string) bool {
	if f.DropPLT && isPLT(name) {
		return false
	}
	if len(f.Keep) == 0 {
		return true
	}
	for _, c := range f.Keep {
		if c == Custom {
			for _, re := range f.Custom {
				if re.MatchString(name) {
					return true
				}
			}
			continue
		}
		if matchCategory(c, name) {
			return true
		}
	}
	return false
}

func isPLT(name string) bool {
	return strings.HasSuffix(name, "@plt") || strings.HasPrefix(name, ".plt") || name == ".plt"
}

// Apply returns a new trace containing only the surviving events.
// The input trace is not modified; ID and truncation flag carry over.
func (f *Filter) Apply(t *trace.Trace, reg *trace.Registry) *trace.Trace {
	out := &trace.Trace{ID: t.ID, Truncated: t.Truncated}
	for _, e := range t.Events {
		if f.DropReturns && e.Kind == trace.Exit {
			continue
		}
		if !f.KeepName(reg.Name(e.Func)) {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// ApplySet filters every trace of s, sharing s's registry.
func (f *Filter) ApplySet(s *trace.TraceSet) *trace.TraceSet {
	out := trace.NewTraceSetWith(s.Registry)
	for id, t := range s.Traces {
		out.Traces[id] = f.Apply(t, s.Registry)
	}
	return out
}

// Everything is the Table I "Advanced/Everything" filter: no filtering at
// all (returns kept, PLT kept).
func Everything() *Filter { return &Filter{K: 10} }
