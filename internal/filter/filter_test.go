package filter

import (
	"reflect"
	"testing"
	"testing/quick"

	"difftrace/internal/trace"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec    string
		custom  []string
		returns bool
		plt     bool
		keep    []Category
		image   int
		k       int
	}{
		{"11.plt.mem.cust.0K10", []string{"CPU_Exec"}, true, true, []Category{Memory, Custom}, 0, 10},
		{"01.mem.ompcrit.cust.0K10", []string{"CPU_Exec"}, false, true, []Category{Memory, OMPCritical, Custom}, 0, 10},
		{"11.mpicol.cust.0K10", []string{"CPU_Exec"}, true, true, []Category{MPICollectives, Custom}, 0, 10},
		{"11.mpi.cust.0K10", []string{"CPU_Exec"}, true, true, []Category{MPIAll, Custom}, 0, 10},
		{"11.1K10", nil, true, true, nil, 1, 10},
		{"01.1K50", nil, false, true, nil, 1, 50},
		{"10.0K5", nil, true, false, nil, 0, 5},
	}
	for _, c := range cases {
		f, err := ParseSpec(c.spec, c.custom...)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if f.DropReturns != c.returns || f.DropPLT != c.plt {
			t.Errorf("%q: flags = %v,%v", c.spec, f.DropReturns, f.DropPLT)
		}
		if f.Image != c.image || f.K != c.k {
			t.Errorf("%q: image,K = %d,%d", c.spec, f.Image, f.K)
		}
		sortedWant := append([]Category(nil), c.keep...)
		sortedGot := append([]Category(nil), f.Keep...)
		sortCats(sortedWant)
		sortCats(sortedGot)
		if !reflect.DeepEqual(sortedGot, sortedWant) && !(len(sortedGot) == 0 && len(sortedWant) == 0) {
			t.Errorf("%q: keep = %v, want %v", c.spec, sortedGot, sortedWant)
		}
		// Re-parse the canonical rendering.
		if _, err := ParseSpec(f.String(), c.custom...); err != nil {
			t.Errorf("%q: canonical %q does not re-parse: %v", c.spec, f.String(), err)
		}
	}
}

func sortCats(cs []Category) {
	for i := range cs {
		for j := i + 1; j < len(cs); j++ {
			if cs[j] < cs[i] {
				cs[i], cs[j] = cs[j], cs[i]
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",              // empty
		"11",            // missing K segment
		"2x.0K10",       // non-binary flags
		"111.0K10",      // three flag digits
		"11.bogus.0K10", // unknown category
		"11.mem.0Q10",   // missing K marker
		"11.mem.5K10",   // image out of range
		"11.mem.0K0",    // K < 1
		"11.mem.0Kxx",   // non-numeric K
		"11.cust.0K10",  // cust without patterns
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): expected error", s)
		}
	}
	if _, err := ParseSpec("11.cust.0K10", "("); err == nil {
		t.Error("bad custom regexp accepted")
	}
}

func mkTrace(reg *trace.Registry, names ...string) *trace.Trace {
	tr := &trace.Trace{ID: trace.TID(0, 0)}
	for _, n := range names {
		tr.Append(reg.ID(n), trace.Enter)
		tr.Append(reg.ID(n), trace.Exit)
	}
	return tr
}

func names(tr *trace.Trace, reg *trace.Registry) []string { return tr.Names(reg) }

func TestDropReturns(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mkTrace(reg, "main", "MPI_Init")
	f := &Filter{DropReturns: true}
	got := f.Apply(tr, reg)
	if got.Len() != 2 {
		t.Fatalf("events = %d, want 2", got.Len())
	}
	for _, e := range got.Events {
		if e.Kind != trace.Enter {
			t.Error("exit survived DropReturns")
		}
	}
}

func TestDropPLT(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mkTrace(reg, "main", ".plt", "memcpy@plt", "memcpy")
	f := &Filter{DropReturns: true, DropPLT: true}
	got := names(f.Apply(tr, reg), reg)
	if !reflect.DeepEqual(got, []string{"main", "memcpy"}) {
		t.Errorf("names = %v", got)
	}
}

func TestCategoryMatching(t *testing.T) {
	cases := []struct {
		cat Category
		in  []string
		out []string
	}{
		{MPIAll,
			[]string{"MPI_Init", "MPI_Send", "work", "GOMP_critical_start"},
			[]string{"MPI_Init", "MPI_Send"}},
		{MPICollectives,
			[]string{"MPI_Barrier", "MPI_Allreduce", "MPI_Send", "MPI_Bcast"},
			[]string{"MPI_Barrier", "MPI_Allreduce", "MPI_Bcast"}},
		{MPISendRecv,
			[]string{"MPI_Send", "MPI_Isend", "MPI_Recv", "MPI_Irecv", "MPI_Wait", "MPI_Barrier"},
			[]string{"MPI_Send", "MPI_Isend", "MPI_Recv", "MPI_Irecv", "MPI_Wait"}},
		{MPIInternal,
			[]string{"MPID_Send", "MPIR_Reduce", "MPI_Send"},
			[]string{"MPID_Send", "MPIR_Reduce"}},
		{OMPAll,
			[]string{"GOMP_parallel", "omp_get_thread_num", "main"},
			[]string{"GOMP_parallel", "omp_get_thread_num"}},
		{OMPCritical,
			[]string{"GOMP_critical_start", "GOMP_critical_end", "GOMP_parallel"},
			[]string{"GOMP_critical_start", "GOMP_critical_end"}},
		{OMPMutex,
			[]string{"omp_set_lock", "pthread_mutex_lock", "omp_get_num_threads"},
			[]string{"omp_set_lock", "pthread_mutex_lock"}},
		{Memory,
			[]string{"memcpy", "malloc", "free", "calloc", "strcpy"},
			[]string{"memcpy", "malloc", "free", "calloc"}},
		{Network,
			[]string{"tcp_send", "socket_open", "memcpy"},
			[]string{"tcp_send", "socket_open"}},
		{Poll,
			[]string{"poll_wait", "sched_yield", "main"},
			[]string{"poll_wait", "sched_yield"}},
		{Strings,
			[]string{"strlen", "strcpy", "memcpy"},
			[]string{"strlen", "strcpy"}},
	}
	for _, c := range cases {
		reg := trace.NewRegistry()
		tr := mkTrace(reg, c.in...)
		f := &Filter{DropReturns: true, Keep: []Category{c.cat}}
		got := names(f.Apply(tr, reg), reg)
		if !reflect.DeepEqual(got, c.out) {
			t.Errorf("%v: got %v, want %v", c.cat, got, c.out)
		}
	}
}

func TestUnionOfCategories(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mkTrace(reg, "MPI_Send", "memcpy", "CPU_Exec", "other")
	f, err := ParseSpec("11.mpi.mem.cust.0K10", "^CPU_")
	if err != nil {
		t.Fatal(err)
	}
	got := names(f.Apply(tr, reg), reg)
	if !reflect.DeepEqual(got, []string{"MPI_Send", "memcpy", "CPU_Exec"}) {
		t.Errorf("union keep = %v", got)
	}
}

func TestEverythingKeepsAll(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mkTrace(reg, "main", ".plt")
	got := Everything().Apply(tr, reg)
	if got.Len() != tr.Len() {
		t.Errorf("Everything dropped events: %d != %d", got.Len(), tr.Len())
	}
}

func TestApplyPreservesMetadata(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mkTrace(reg, "MPI_Send")
	tr.ID = trace.TID(6, 4)
	tr.Truncated = true
	got := New(MPIAll).Apply(tr, reg)
	if got.ID != tr.ID || !got.Truncated {
		t.Error("Apply lost ID or truncation flag")
	}
	if tr.Len() != 2 {
		t.Error("Apply mutated the input trace")
	}
}

func TestApplySetFiltersEveryTrace(t *testing.T) {
	s := trace.NewTraceSet()
	for p := 0; p < 3; p++ {
		tr := s.Get(trace.TID(p, 0))
		tr.Append(s.Registry.ID("MPI_Init"), trace.Enter)
		tr.Append(s.Registry.ID("helper"), trace.Enter)
	}
	out := New(MPIAll).ApplySet(s)
	if len(out.Traces) != 3 {
		t.Fatalf("traces = %d", len(out.Traces))
	}
	for id, tr := range out.Traces {
		if tr.Len() != 1 {
			t.Errorf("trace %v: %d events", id, tr.Len())
		}
	}
	if out.Registry != s.Registry {
		t.Error("ApplySet must share the registry")
	}
}

// Property: filtering is idempotent — applying the same filter twice gives
// the same result as once.
func TestQuickFilterIdempotent(t *testing.T) {
	pool := []string{"MPI_Send", "MPI_Recv", "memcpy", ".plt", "main", "GOMP_critical_start", "strlen", "CPU_Exec"}
	f := func(picks []uint8, dropRet, dropPLT bool, catIdx uint8) bool {
		reg := trace.NewRegistry()
		tr := &trace.Trace{ID: trace.TID(0, 0)}
		for _, p := range picks {
			name := pool[int(p)%len(pool)]
			tr.Append(reg.ID(name), trace.Enter)
			if p%2 == 0 {
				tr.Append(reg.ID(name), trace.Exit)
			}
		}
		flt := &Filter{
			DropReturns: dropRet,
			DropPLT:     dropPLT,
			Keep:        []Category{Category(int(catIdx) % int(numCategories-1))},
		}
		once := flt.Apply(tr, reg)
		twice := flt.Apply(once, reg)
		return reflect.DeepEqual(once.Events, twice.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
