package filter

import "testing"

// FuzzParseSpec: arbitrary spec strings never panic, and any spec that
// parses re-parses from its canonical rendering.
func FuzzParseSpec(f *testing.F) {
	f.Add("11.plt.mem.cust.0K10")
	f.Add("01.1K50")
	f.Add("..")
	f.Fuzz(func(t *testing.T, spec string) {
		flt, err := ParseSpec(spec, "^CPU_")
		if err != nil {
			return
		}
		if _, err := ParseSpec(flt.String(), "^CPU_"); err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", flt.String(), spec, err)
		}
	})
}
