package filter

import (
	"sync"
	"testing"

	"difftrace/internal/trace"
)

// TestMemoMatchesKeepName: the memo is an exact cache of KeepName over the
// registry, including under concurrent first-touch from many goroutines.
func TestMemoMatchesKeepName(t *testing.T) {
	reg := trace.NewRegistry()
	names := []string{
		"MPI_Send", "MPI_Recv", "memcpy", "compute", "strcpy",
		"socket_open", "poll_wait", "GOMP_critical_start", "foo@plt", ".plt",
	}
	ids := make([]uint32, len(names))
	for i, n := range names {
		ids[i] = reg.ID(n)
	}
	for _, f := range []*Filter{
		Everything(),
		New(MPIAll),
		New(Memory, Strings),
		{DropPLT: true, K: 10},
	} {
		m := f.Memo(reg)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 3; round++ {
					for i, fn := range ids {
						if got, want := m.Keep(fn), f.KeepName(names[i]); got != want {
							t.Errorf("filter %s: Keep(%q) = %v, want %v", f, names[i], got, want)
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}
