// Package parlot is this repository's stand-in for the ParLOT tracing
// substrate (Taheri et al., ESPT 2018): whole-program function-call tracing
// with lightweight, incremental, on-the-fly compression.
//
// The paper's ParLOT is a Pin tool; Go has no dynamic binary instrumentation,
// so here applications are instrumented at the source level through a Tracer
// (see tracer.go) while this file reproduces the part DiffTrace actually
// depends on: per-thread streams of function IDs compressed incrementally
// with a predictor-based scheme that reaches very high ratios on loopy HPC
// traces (the paper reports ratios exceeding 21,000).
//
// The scheme is a finite-context-method (FCM) predictor plus run-length
// encoding of prediction hits:
//
//   - The encoder keeps a hash table indexed by the last Order symbols.
//     If the table correctly predicts the next symbol, that symbol costs
//     amortically a fraction of a byte (hits are run-length encoded);
//     otherwise the symbol is emitted verbatim as a varint.
//   - Token stream: varint v. v == 0 introduces a hit run (next varint is
//     the run length); v > 0 is a miss carrying symbol v-1.
//
// Loop-dominated traces are almost all hits, so a trace of N calls encodes
// in O(#misses) bytes — the same asymptotic behaviour ParLOT exploits.
package parlot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Order is the FCM context length (number of preceding symbols hashed to
// predict the next one). ParLOT uses small contexts for speed; order 3
// captures call patterns inside doubly nested loops.
const Order = 3

// tableBits sizes the predictor hash table (1<<tableBits entries).
const tableBits = 16

type predictor struct {
	table [1 << tableBits]uint32 // stores symbol+1; 0 = empty
	ctx   [Order]uint32
	hash  uint32
}

func (p *predictor) slot() uint32 { return p.hash & (1<<tableBits - 1) }

// predict returns the predicted next symbol and whether a prediction exists.
func (p *predictor) predict() (uint32, bool) {
	v := p.table[p.slot()]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// update records that sym followed the current context and shifts it in.
func (p *predictor) update(sym uint32) {
	p.table[p.slot()] = sym + 1
	copy(p.ctx[:], p.ctx[1:])
	p.ctx[Order-1] = sym
	h := uint32(2166136261)
	for _, s := range p.ctx {
		h = (h ^ s) * 16777619
	}
	p.hash = h
}

// Encoder incrementally compresses a stream of uint32 symbols to an
// io.Writer. It buffers only the current run of prediction hits, so memory
// stays O(1) regardless of trace length — the "on-the-fly" property that
// lets ParLOT trace long runs with a few KB per core.
type Encoder struct {
	w       io.Writer
	p       predictor
	hitRun  uint64
	scratch [binary.MaxVarintLen64]byte
	symbols uint64
	written uint64
	err     error
}

// NewEncoder returns an Encoder writing compressed bytes to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

func (e *Encoder) putUvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.scratch[:], v)
	m, err := e.w.Write(e.scratch[:n])
	e.written += uint64(m)
	e.err = err
}

func (e *Encoder) flushRun() {
	if e.hitRun == 0 {
		return
	}
	e.putUvarint(0)
	e.putUvarint(e.hitRun)
	e.hitRun = 0
}

// Encode compresses one symbol.
func (e *Encoder) Encode(sym uint32) {
	e.symbols++
	if pred, ok := e.p.predict(); ok && pred == sym {
		e.hitRun++
		e.p.update(sym)
		return
	}
	e.flushRun()
	e.putUvarint(uint64(sym) + 1)
	e.p.update(sym)
}

// Flush drains the pending hit run. The stream remains appendable: Flush may
// be called at any checkpoint (ParLOT flushes periodically so that traces
// survive application crashes — DiffTrace's deadlock use case).
func (e *Encoder) Flush() error {
	e.flushRun()
	return e.err
}

// Stats reports symbols consumed and compressed bytes emitted so far
// (pending hit-run bytes not included until Flush).
func (e *Encoder) Stats() (symbols, compressedBytes uint64) {
	return e.symbols, e.written
}

// Ratio returns symbols*4 / compressedBytes, i.e. the compression ratio
// relative to raw uint32 storage. Returns 0 before any output.
func (e *Encoder) Ratio() float64 {
	if e.written == 0 {
		return 0
	}
	return float64(e.symbols*4) / float64(e.written)
}

// Err returns the first write error encountered.
func (e *Encoder) Err() error { return e.err }

// ErrCorrupt reports malformed compressed input.
var ErrCorrupt = errors.New("parlot: corrupt compressed stream")

// Decoder decompresses a stream produced by Encoder.
type Decoder struct {
	r       io.ByteReader
	p       predictor
	pending uint64 // remaining symbols in the current hit run
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.ByteReader) *Decoder { return &Decoder{r: r} }

// Decode returns the next symbol, or io.EOF at clean end of stream.
func (d *Decoder) Decode() (uint32, error) {
	if d.pending > 0 {
		d.pending--
		sym, ok := d.p.predict()
		if !ok {
			return 0, fmt.Errorf("%w: hit run with empty predictor", ErrCorrupt)
		}
		d.p.update(sym)
		return sym, nil
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, err // io.EOF at token boundary is clean EOF
	}
	if v == 0 {
		n, err := binary.ReadUvarint(d.r)
		if err != nil || n == 0 {
			return 0, fmt.Errorf("%w: bad hit-run length", ErrCorrupt)
		}
		d.pending = n
		return d.Decode()
	}
	if v-1 > 1<<31 {
		return 0, fmt.Errorf("%w: symbol %d out of range", ErrCorrupt, v-1)
	}
	sym := uint32(v - 1)
	d.p.update(sym)
	return sym, nil
}

// DecodeAll reads until EOF and returns every symbol.
func (d *Decoder) DecodeAll() ([]uint32, error) {
	var out []uint32
	for {
		s, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}
