package parlot

import (
	"reflect"
	"sync"
	"testing"

	"difftrace/internal/trace"
)

func TestTracerRecordsEnterExit(t *testing.T) {
	tr := NewTracer(MainImage)
	th := tr.Thread(trace.TID(0, 0))
	th.Enter("main")
	th.Enter("MPI_Init")
	th.Exit("MPI_Init")
	th.Exit("main")

	set := tr.Collect()
	got := set.Traces[trace.TID(0, 0)]
	if got == nil || got.Len() != 4 {
		t.Fatalf("trace = %+v", got)
	}
	names := got.Names(set.Registry)
	if !reflect.DeepEqual(names, []string{"main", "MPI_Init"}) {
		t.Errorf("call names = %v", names)
	}
	if got.Events[2].Kind != trace.Exit {
		t.Error("exit kind lost")
	}
}

func TestTracerFnHelper(t *testing.T) {
	tr := NewTracer(MainImage)
	th := tr.Thread(trace.TID(1, 2))
	func() { defer th.Fn("work")() }()
	set := tr.Collect()
	ev := set.Traces[trace.TID(1, 2)].Events
	if len(ev) != 2 || ev[0].Kind != trace.Enter || ev[1].Kind != trace.Exit {
		t.Fatalf("events = %v", ev)
	}
	if th.Depth() != 0 {
		t.Errorf("depth = %d after balanced Fn", th.Depth())
	}
}

func TestTracerCallHelper(t *testing.T) {
	tr := NewTracer(MainImage)
	th := tr.Thread(trace.TID(0, 0))
	ran := false
	th.Call("f", func() {
		ran = true
		if th.Depth() != 1 {
			t.Errorf("depth inside Call = %d", th.Depth())
		}
	})
	if !ran {
		t.Fatal("Call did not run fn")
	}
}

func TestThreadReuseSameTracer(t *testing.T) {
	tr := NewTracer(MainImage)
	a := tr.Thread(trace.TID(3, 1))
	b := tr.Thread(trace.TID(3, 1))
	if a != b {
		t.Error("Thread() should return the same ThreadTracer per ID")
	}
}

func TestTracerConcurrentThreads(t *testing.T) {
	tr := NewTracer(MainImage)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		for th := 0; th < 4; th++ {
			wg.Add(1)
			go func(p, thn int) {
				defer wg.Done()
				tt := tr.Thread(trace.TID(p, thn))
				for i := 0; i < 50; i++ {
					tt.Call("CPU_Exec", func() {})
				}
			}(p, th)
		}
	}
	wg.Wait()
	set := tr.Collect()
	if len(set.Traces) != 16 {
		t.Fatalf("got %d traces", len(set.Traces))
	}
	for id, tc := range set.Traces {
		if tc.Len() != 100 {
			t.Errorf("trace %v has %d events, want 100", id, tc.Len())
		}
	}
}

func TestCompressedStreamMatchesTrace(t *testing.T) {
	tr := NewTracer(MainImage)
	th := tr.Thread(trace.TID(0, 0))
	for i := 0; i < 500; i++ {
		th.Call("loop_body", func() { th.Call("inner", func() {}) })
	}
	set := tr.Collect()
	want := set.Traces[trace.TID(0, 0)]

	decoded, err := DecodeCompressed(th.Compressed(), trace.TID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != want.Len() {
		t.Fatalf("decoded %d events, want %d", decoded.Len(), want.Len())
	}
	for i := range want.Events {
		if decoded.Events[i] != want.Events[i] {
			t.Fatalf("event %d mismatch: %v vs %v", i, decoded.Events[i], want.Events[i])
		}
	}
	if tr.CompressedBytes() >= want.Len() { // far fewer bytes than events
		t.Errorf("compressed %d bytes for %d events", tr.CompressedBytes(), want.Len())
	}
}

func TestMarkTruncated(t *testing.T) {
	tr := NewTracer(MainImage)
	th := tr.Thread(trace.TID(5, 0))
	th.Enter("MPI_Allreduce") // never returns: deadlock
	th.MarkTruncated()
	th.Enter("after_kill") // the process is dead: must not be recorded
	set := tr.Collect()
	got := set.Traces[trace.TID(5, 0)]
	if !got.Truncated {
		t.Error("truncation flag lost")
	}
	if got.Len() != 1 {
		t.Errorf("events after truncation recorded: %v", got.Names(set.Registry))
	}
}

func TestSharedRegistryAcrossRuns(t *testing.T) {
	reg := trace.NewRegistry()
	t1 := NewTracerWith(MainImage, reg)
	t2 := NewTracerWith(MainImage, reg)
	t1.Thread(trace.TID(0, 0)).Enter("MPI_Send")
	t2.Thread(trace.TID(0, 0)).Enter("MPI_Send")
	s1, s2 := t1.Collect(), t2.Collect()
	f1 := s1.Traces[trace.TID(0, 0)].Events[0].Func
	f2 := s2.Traces[trace.TID(0, 0)].Events[0].Func
	if f1 != f2 {
		t.Errorf("same name got IDs %d and %d across runs", f1, f2)
	}
}
