package parlot

import (
	"bytes"
	"fmt"
	"sync"

	"difftrace/internal/trace"
)

// Level selects which functions a Tracer records, mirroring ParLOT's two
// capture granularities.
type Level int

const (
	// MainImage records only application-image functions (names not marked
	// as library functions by the instrumented app).
	MainImage Level = iota
	// AllImages records every function including library internals.
	AllImages
)

// Tracer is the process-wide tracing runtime: it owns the function-name
// registry and one ThreadTracer per traced thread. Application code is
// "instrumented" by calling Thread(id) once per thread and then Enter/Exit
// (or the Fn helper) around every traced function.
//
// Every event is simultaneously (1) appended to an in-memory trace.Trace and
// (2) pushed through the incremental compressor, so the compressed size
// statistics reported in §V come from the same stream the analysis reads.
type Tracer struct {
	Level Level

	mu      sync.Mutex
	reg     *trace.Registry
	threads map[trace.ThreadID]*ThreadTracer
}

// NewTracer returns a Tracer recording at the given level into a fresh
// registry.
func NewTracer(level Level) *Tracer {
	return NewTracerWith(level, trace.NewRegistry())
}

// NewTracerWith returns a Tracer sharing reg. DiffTrace's normal and faulty
// executions must share one registry so function and loop IDs align.
func NewTracerWith(level Level, reg *trace.Registry) *Tracer {
	return &Tracer{Level: level, reg: reg, threads: make(map[trace.ThreadID]*ThreadTracer)}
}

// Registry exposes the shared name registry.
func (t *Tracer) Registry() *trace.Registry { return t.reg }

// Thread returns (creating on first use) the per-thread tracer for id.
// ThreadTracers are not shared between goroutines; each application thread
// uses its own, so tracing itself is contention-free — the property that
// keeps ParLOT's overhead low.
func (t *Tracer) Thread(id trace.ThreadID) *ThreadTracer {
	t.mu.Lock()
	defer t.mu.Unlock()
	th, ok := t.threads[id]
	if !ok {
		buf := &bytes.Buffer{}
		th = &ThreadTracer{
			tracer: t,
			trace:  &trace.Trace{ID: id},
			buf:    buf,
			enc:    NewEncoder(buf),
		}
		t.threads[id] = th
	}
	return th
}

// Collect flushes every per-thread compressor and returns the gathered
// TraceSet. Safe to call after the application finished or was aborted by
// the deadlock detector (traces of blocked threads stay truncated).
func (t *Tracer) Collect() *trace.TraceSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := trace.NewTraceSetWith(t.reg)
	for _, th := range t.threads {
		th.mu.Lock()
		_ = th.enc.Flush()
		set.Put(th.trace.Clone())
		th.mu.Unlock()
	}
	return set
}

// CompressedBytes sums the compressed stream sizes of all threads after a
// flush — the "2.8 KB per thread" statistic of §V.
func (t *Tracer) CompressedBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, th := range t.threads {
		th.mu.Lock()
		_ = th.enc.Flush()
		n += th.buf.Len()
		th.mu.Unlock()
	}
	return n
}

// ThreadTracer records events for one thread.
type ThreadTracer struct {
	tracer *Tracer
	mu     sync.Mutex
	trace  *trace.Trace
	buf    *bytes.Buffer
	enc    *Encoder
	depth  int
}

// ID returns the thread's identity.
func (th *ThreadTracer) ID() trace.ThreadID {
	//lint:allow lockdiscipline trace is assigned once at construction and ID never changes
	return th.trace.ID
}

func (th *ThreadTracer) record(name string, kind trace.EventKind) {
	id := th.tracer.reg.ID(name)
	th.mu.Lock()
	if th.trace.Truncated {
		// The thread's process was aborted (deadlock kill): nothing after
		// the truncation point exists in a real ParLOT trace either.
		th.mu.Unlock()
		return
	}
	th.trace.Append(id, kind)
	th.enc.Encode(id<<1 | uint32(kind))
	if kind == trace.Enter {
		th.depth++
	} else if th.depth > 0 {
		th.depth--
	}
	th.mu.Unlock()
}

// Enter records a function-call event.
func (th *ThreadTracer) Enter(name string) { th.record(name, trace.Enter) }

// Exit records a function-return event.
func (th *ThreadTracer) Exit(name string) { th.record(name, trace.Exit) }

// Fn records entry to name and returns the matching exit, for use as
//
//	defer th.Fn("LagrangeLeapFrog")()
func (th *ThreadTracer) Fn(name string) func() {
	th.Enter(name)
	return func() { th.Exit(name) }
}

// Call traces fn wrapped in an Enter/Exit pair.
func (th *ThreadTracer) Call(name string, fn func()) {
	th.Enter(name)
	defer th.Exit(name)
	fn()
}

// MarkTruncated flags the trace as cut short (deadlock abort). The pending
// compressed run is flushed so on-disk data matches the in-memory trace.
func (th *ThreadTracer) MarkTruncated() {
	th.mu.Lock()
	defer th.mu.Unlock()
	th.trace.Truncated = true
	_ = th.enc.Flush()
}

// Depth reports the current call-stack depth according to recorded events.
func (th *ThreadTracer) Depth() int {
	th.mu.Lock()
	defer th.mu.Unlock()
	return th.depth
}

// Compressed returns a copy of the compressed byte stream so far.
func (th *ThreadTracer) Compressed() []byte {
	th.mu.Lock()
	defer th.mu.Unlock()
	_ = th.enc.Flush()
	out := make([]byte, th.buf.Len())
	copy(out, th.buf.Bytes())
	return out
}

// DecodeCompressed decompresses a per-thread stream back into a Trace,
// verifying that the compressor is lossless. reg must be the registry the
// stream was produced with.
func DecodeCompressed(data []byte, id trace.ThreadID) (*trace.Trace, error) {
	dec := NewDecoder(bytes.NewReader(data))
	syms, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("parlot: decode %v: %w", id, err)
	}
	tr := &trace.Trace{ID: id}
	for _, s := range syms {
		tr.Append(s>>1, trace.EventKind(s&1))
	}
	return tr, nil
}
