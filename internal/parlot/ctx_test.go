package parlot_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"difftrace/internal/parlot"
	"difftrace/internal/resilience/chaos"
	"difftrace/internal/trace"
)

// bigBinarySet serializes a PLOT1 file with enough traces and events that
// cancellation lands mid-file (the reader checks ctx between traces and
// every 8 Ki decoded symbols).
func bigBinarySet(t *testing.T) []byte {
	t.Helper()
	set := trace.NewTraceSet()
	for p := 0; p < 6; p++ {
		tr := set.Get(trace.TID(p, 0))
		for i := 0; i < 12000; i++ {
			fn := set.Registry.ID("fn_" + string(rune('a'+i%16)))
			tr.Append(fn, trace.Enter)
			tr.Append(fn, trace.Exit)
		}
	}
	var buf bytes.Buffer
	if err := parlot.WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type cancelAfterReader struct {
	r      io.Reader
	n      int
	served int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.served += n
	if c.served >= c.n && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

func awaitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancelled ingest: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadSetBinaryContextCancelMidIngest: a clean PLOT1 stream cancelled
// mid-ingest returns the ctx error in both modes with intact partial
// accounting, no invented quarantine records, and no leaked goroutines.
func TestReadSetBinaryContextCancelMidIngest(t *testing.T) {
	data := bigBinarySet(t)
	for _, mode := range []trace.ReadMode{trace.Strict, trace.Lenient} {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		car := &cancelAfterReader{r: bytes.NewReader(data), n: len(data) / 2, cancel: cancel}
		set, rep, err := parlot.ReadSetBinaryContext(ctx, car, nil, trace.ReadOptions{Mode: mode})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode=%s: err = %v, want context.Canceled", mode, err)
		}
		if set == nil || rep == nil {
			t.Fatalf("mode=%s: cancelled read dropped the partial set/report", mode)
		}
		if rep.Quarantined() != 0 {
			t.Errorf("mode=%s: cancellation invented %d quarantine records", mode, rep.Quarantined())
		}
		if got, want := set.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
			t.Errorf("mode=%s: partial accounting broken: set has %d events, report accounts %d", mode, got, want)
		}
		if set.TotalEvents() >= 6*24000 {
			t.Errorf("mode=%s: cancellation did not cut the ingest short (%d events)", mode, set.TotalEvents())
		}
		awaitGoroutineBaseline(t, baseline)
	}
}

// TestReadSetBinaryContextCancelUnderChaos: the binary chaos operators'
// output, cancelled mid-ingest, still returns the ctx error under lenient
// salvage without leaking goroutines.
func TestReadSetBinaryContextCancelUnderChaos(t *testing.T) {
	data := bigBinarySet(t)
	rng := rand.New(rand.NewSource(7))
	for _, op := range chaos.Binary() {
		corrupted := op.Apply(data, rng)
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		car := &cancelAfterReader{r: bytes.NewReader(corrupted), n: len(corrupted) / 2, cancel: cancel}
		_, rep, err := parlot.ReadSetBinaryContext(ctx, car, nil, trace.ReadOptions{Mode: trace.Lenient})
		cancel()
		if err == nil {
			// A header-level quarantine can legally consume the whole file
			// before the cancellation lands.
			if car.served < car.n {
				t.Errorf("%s: lenient read swallowed the cancellation", op.Name)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", op.Name, err)
		}
		if rep == nil {
			t.Errorf("%s: cancelled read dropped the partial report", op.Name)
		}
		awaitGoroutineBaseline(t, baseline)
	}
}

// TestReadSetBinaryContextDeadline: an expired deadline aborts before any
// trace decodes.
func TestReadSetBinaryContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	set, _, err := parlot.ReadSetBinaryContext(ctx, bytes.NewReader(bigBinarySet(t)), nil, trace.ReadOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if set.TotalEvents() != 0 {
		t.Fatalf("expired deadline still ingested %d events", set.TotalEvents())
	}
}
