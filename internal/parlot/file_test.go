package parlot

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/trace"
)

func buildSet(names ...string) *trace.TraceSet {
	s := trace.NewTraceSet()
	tr := s.Get(trace.TID(0, 0))
	for _, n := range names {
		tr.Append(s.Registry.ID(n), trace.Enter)
		tr.Append(s.Registry.ID(n), trace.Exit)
	}
	return s
}

func TestBinaryRoundTrip(t *testing.T) {
	s := buildSet("main", "MPI_Init", "work", "MPI_Finalize")
	t2 := s.Get(trace.TID(3, 1))
	t2.Append(s.Registry.ID("main"), trace.Enter)
	t2.Truncated = true

	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSetBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 2 {
		t.Fatalf("traces = %d", len(got.Traces))
	}
	a := got.Traces[trace.TID(0, 0)]
	if a.Len() != 8 {
		t.Errorf("events = %d", a.Len())
	}
	wantNames := s.Traces[trace.TID(0, 0)].Names(s.Registry)
	gotNames := a.Names(got.Registry)
	if strings.Join(wantNames, ",") != strings.Join(gotNames, ",") {
		t.Errorf("names = %v, want %v", gotNames, wantNames)
	}
	if !got.Traces[trace.TID(3, 1)].Truncated {
		t.Error("truncation flag lost")
	}
}

func TestBinarySharedRegistryAcrossFiles(t *testing.T) {
	// Writing two sets and reading both into one registry keeps IDs
	// aligned — the normal/faulty pairing requirement.
	s1 := buildSet("MPI_Send", "MPI_Recv")
	s2 := buildSet("MPI_Recv", "MPI_Send", "extra")
	var b1, b2 bytes.Buffer
	if err := WriteSetBinary(&b1, s1); err != nil {
		t.Fatal(err)
	}
	if err := WriteSetBinary(&b2, s2); err != nil {
		t.Fatal(err)
	}
	reg := trace.NewRegistry()
	g1, err := ReadSetBinary(&b1, reg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSetBinary(&b2, reg)
	if err != nil {
		t.Fatal(err)
	}
	id1 := g1.Traces[trace.TID(0, 0)].Events[0].Func
	// find MPI_Send in g2
	var id2 uint32
	for _, e := range g2.Traces[trace.TID(0, 0)].Events {
		if reg.Name(e.Func) == "MPI_Send" {
			id2 = e.Func
			break
		}
	}
	if id1 != id2 {
		t.Errorf("MPI_Send has IDs %d and %d across files", id1, id2)
	}
}

func TestBinaryDenseRemap(t *testing.T) {
	// A registry polluted with unreferenced names must not bloat the file.
	s := buildSet("a")
	for i := 0; i < 1000; i++ {
		s.Registry.ID(strings.Repeat("x", 50) + string(rune('0'+i%10)))
	}
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 200 {
		t.Errorf("file with 1 name is %d bytes — unreferenced names leaked", buf.Len())
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	// A loopy trace compresses far below the text format.
	s := trace.NewTraceSet()
	tr := s.Get(trace.TID(0, 0))
	for i := 0; i < 5000; i++ {
		tr.Append(s.Registry.ID("CPU_Exec"), trace.Enter)
		tr.Append(s.Registry.ID("CPU_Exec"), trace.Exit)
	}
	var bin, txt bytes.Buffer
	if err := WriteSetBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSetText(&txt, s); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*100 > txt.Len() {
		t.Errorf("binary %d bytes vs text %d bytes — expected >100x smaller", bin.Len(), txt.Len())
	}
}

func TestBinaryCorruptInputs(t *testing.T) {
	good := func() []byte {
		s := buildSet("f")
		var buf bytes.Buffer
		if err := WriteSetBinary(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := [][]byte{
		{},                 // empty
		[]byte("NOPE!"),    // bad magic
		good[:len(good)-1], // truncated stream
		good[:6],           // truncated name table
		append([]byte("PLOT1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f), // huge name count
	}
	for i, c := range cases {
		if _, err := ReadSetBinary(bytes.NewReader(c), nil); err == nil {
			t.Errorf("case %d: corruption accepted", i)
		}
	}
}

// Property: binary round trip preserves every event and flag for arbitrary
// small trace sets.
func TestQuickBinaryRoundTrip(t *testing.T) {
	names := []string{"a", "bb", "MPI_Send", ".plt", "x"}
	f := func(events []uint8, proc, thr uint8, trunc bool) bool {
		s := trace.NewTraceSet()
		tr := s.Get(trace.TID(int(proc)%8, int(thr)%4))
		for _, e := range events {
			tr.Append(s.Registry.ID(names[int(e)%len(names)]), trace.EventKind(e%2))
		}
		tr.Truncated = trunc
		var buf bytes.Buffer
		if err := WriteSetBinary(&buf, s); err != nil {
			return false
		}
		got, err := ReadSetBinary(&buf, nil)
		if err != nil {
			return false
		}
		g := got.Traces[tr.ID]
		if g == nil || g.Truncated != trunc || g.Len() != tr.Len() {
			return false
		}
		for i := range g.Events {
			if g.Events[i].Kind != tr.Events[i].Kind {
				return false
			}
			if got.Registry.Name(g.Events[i].Func) != s.Registry.Name(tr.Events[i].Func) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
