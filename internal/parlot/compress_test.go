package parlot

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, syms []uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, s := range syms {
		enc.Encode(s)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(bytes.NewReader(buf.Bytes())).DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) == 0 {
		if len(got) != 0 {
			t.Fatalf("decoded %d symbols from empty stream", len(got))
		}
	} else if !reflect.DeepEqual(got, syms) {
		t.Fatalf("round trip mismatch: got %d syms, want %d", len(got), len(syms))
	}
	return buf.Bytes()
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil) }

func TestRoundTripSingle(t *testing.T) { roundTrip(t, []uint32{42}) }

func TestRoundTripLoop(t *testing.T) {
	// A tight loop body repeated many times must compress massively.
	body := []uint32{1, 2, 3, 4}
	var syms []uint32
	for i := 0; i < 10000; i++ {
		syms = append(syms, body...)
	}
	data := roundTrip(t, syms)
	ratio := float64(len(syms)*4) / float64(len(data))
	if ratio < 1000 {
		t.Errorf("loopy trace ratio = %.0f, want >= 1000 (ParLOT-like)", ratio)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	syms := make([]uint32, 5000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(500))
	}
	roundTrip(t, syms)
}

func TestRoundTripAdversarialAliases(t *testing.T) {
	// Symbols engineered to collide in the hash table: correctness must not
	// depend on prediction accuracy.
	var syms []uint32
	for i := 0; i < 3000; i++ {
		syms = append(syms, uint32(i)<<tableBits|uint32(i%3))
	}
	roundTrip(t, syms)
}

func TestIncrementalFlush(t *testing.T) {
	// Flushing mid-stream (crash/deadlock checkpoint) must keep the prefix
	// decodable and the stream appendable.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 0; i < 100; i++ {
		enc.Encode(uint32(i % 5))
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	prefixLen := buf.Len()
	got, err := NewDecoder(bytes.NewReader(buf.Bytes()[:prefixLen])).DecodeAll()
	if err != nil || len(got) != 100 {
		t.Fatalf("prefix decode: %d syms, err=%v", len(got), err)
	}
	for i := 100; i < 200; i++ {
		enc.Encode(uint32(i % 5))
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = NewDecoder(bytes.NewReader(buf.Bytes())).DecodeAll()
	if err != nil || len(got) != 200 {
		t.Fatalf("appended decode: %d syms, err=%v", len(got), err)
	}
}

func TestEncoderStats(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if enc.Ratio() != 0 {
		t.Error("Ratio before output should be 0")
	}
	for i := 0; i < 1000; i++ {
		enc.Encode(7)
	}
	_ = enc.Flush()
	syms, bytesOut := enc.Stats()
	if syms != 1000 {
		t.Errorf("symbols = %d", syms)
	}
	if bytesOut == 0 || bytesOut > 20 {
		t.Errorf("constant stream encoded to %d bytes", bytesOut)
	}
	if enc.Ratio() < 100 {
		t.Errorf("ratio = %f", enc.Ratio())
	}
}

func TestDecoderCorruptInputs(t *testing.T) {
	cases := [][]byte{
		{0x00},                               // run marker without length
		{0x00, 0x00},                         // zero-length run
		{0x00, 0x05},                         // hit run with empty predictor
		{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // symbol out of range
	}
	for i, c := range cases {
		_, err := NewDecoder(bytes.NewReader(c)).DecodeAll()
		if err == nil || err == io.EOF {
			t.Errorf("case %d: expected corruption error, got %v", i, err)
		}
	}
}

func TestEncoderWriteErrorPropagates(t *testing.T) {
	enc := NewEncoder(failWriter{})
	enc.Encode(1)
	enc.Encode(2)
	if err := enc.Flush(); err == nil {
		t.Error("expected write error")
	}
	if enc.Err() == nil {
		t.Error("Err() should report the failure")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// Property: arbitrary symbol streams round-trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16, loopy bool) bool {
		syms := make([]uint32, 0, len(raw)*4)
		for _, v := range raw {
			syms = append(syms, uint32(v))
			if loopy { // amplify repetition to exercise hit runs
				syms = append(syms, uint32(v), uint32(v), 9)
			}
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		for _, s := range syms {
			enc.Encode(s)
		}
		if enc.Flush() != nil {
			return false
		}
		got, err := NewDecoder(bytes.NewReader(buf.Bytes())).DecodeAll()
		if err != nil {
			return false
		}
		if len(got) != len(syms) {
			return false
		}
		for i := range got {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
