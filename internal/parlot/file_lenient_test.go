package parlot

import (
	"bytes"
	"testing"

	"difftrace/internal/resilience"
	"difftrace/internal/trace"
)

func lenientOpts() trace.ReadOptions { return trace.ReadOptions{Mode: trace.Lenient} }

func binAccounting(t *testing.T, s *trace.TraceSet, rep *resilience.IngestReport) {
	t.Helper()
	if got, want := s.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
		t.Errorf("accounting: TotalEvents %d != kept %d + synthesized %d", got, rep.EventsKept, rep.EventsSynthesized)
	}
}

func encodeSet(t *testing.T, s *trace.TraceSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Lenient round trip of a clean file is lossless with a clean report.
func TestBinaryLenientCleanRoundTrip(t *testing.T) {
	s := buildSet("main", "MPI_Init", "work")
	tr := s.Get(trace.TID(3, 1))
	tr.Append(s.Registry.ID("main"), trace.Enter)
	tr.Truncated = true
	data := encodeSet(t, s)

	got, rep, err := ReadSetBinaryOptions(bytes.NewReader(data), nil, lenientOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("clean file produced salvage report:\n%s", rep.Render())
	}
	if got.TotalEvents() != s.TotalEvents() || !got.Traces[trace.TID(3, 1)].Truncated {
		t.Errorf("round trip lost data: %v", got)
	}
	binAccounting(t, got, rep)
}

// Truncating the file mid-stream keeps every fully decoded trace plus the
// salvageable prefix of the interrupted one.
func TestBinaryLenientTruncatedFile(t *testing.T) {
	s := buildSet("alpha", "beta", "gamma", "delta", "epsilon")
	data := encodeSet(t, s)

	for cut := len(data) - 1; cut > len(fileMagic); cut /= 2 {
		got, rep, err := ReadSetBinaryOptions(bytes.NewReader(data[:cut]), nil, lenientOpts())
		if err != nil {
			t.Fatalf("cut=%d: lenient returned error: %v", cut, err)
		}
		binAccounting(t, got, rep)
		if rep.Clean() {
			t.Errorf("cut=%d: truncation not reported", cut)
		}
	}

	// Strict mode must keep failing on the same inputs.
	if _, err := ReadSetBinary(bytes.NewReader(data[:len(data)-1]), nil); err == nil {
		t.Error("strict mode accepted a truncated file")
	}
}

// Corrupting one trace's compressed bytes salvages its decodable prefix and
// resyncs on the next trace via the length framing.
func TestBinaryLenientCorruptStreamResync(t *testing.T) {
	s := trace.NewTraceSet()
	t0 := s.Get(trace.TID(0, 0))
	t1 := s.Get(trace.TID(1, 0))
	for i := 0; i < 20; i++ {
		t0.Append(s.Registry.ID("f"), trace.Enter)
		t0.Append(s.Registry.ID("f"), trace.Exit)
		t1.Append(s.Registry.ID("g"), trace.Enter)
		t1.Append(s.Registry.ID("g"), trace.Exit)
	}
	data := encodeSet(t, s)

	// Find trace 1.0's stream and stomp bytes inside trace 0.0's stream
	// (just after the name table; flip a mid-file byte region that belongs
	// to the first compressed stream). Locate it by scanning for where
	// corruption changes only trace 0.0's decode: flip bytes from the
	// middle of the file backwards until trace 1.0 still reads fully.
	corrupt := append([]byte(nil), data...)
	// The last ~quarter of the file is trace 1.0's record; corrupt a byte
	// well before it but after the header area.
	pos := len(data)/2 - 4
	corrupt[pos] ^= 0xff
	corrupt[pos+1] ^= 0xff

	got, rep, err := ReadSetBinaryOptions(bytes.NewReader(corrupt), nil, lenientOpts())
	if err != nil {
		t.Fatalf("lenient returned error: %v", err)
	}
	binAccounting(t, got, rep)
	if got.TotalEvents() == 0 {
		t.Error("corruption of one stream wiped every trace")
	}
}

// Event and trace caps degrade with reasons instead of failing.
func TestBinaryLenientCaps(t *testing.T) {
	s := trace.NewTraceSet()
	for p := 0; p < 4; p++ {
		tr := s.Get(trace.TID(p, 0))
		for i := 0; i < 10; i++ {
			tr.Append(s.Registry.ID("f"), trace.Enter)
			tr.Append(s.Registry.ID("f"), trace.Exit)
		}
	}
	data := encodeSet(t, s)

	got, rep, err := ReadSetBinaryOptions(bytes.NewReader(data), nil, trace.ReadOptions{
		Mode: trace.Lenient, MaxEventsPerTrace: 5, MaxTraces: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 2 {
		t.Errorf("traces = %d, want 2", len(got.Traces))
	}
	for id, tr := range got.Traces {
		if tr.Len() != 5 || !tr.Truncated {
			t.Errorf("trace %s: len %d truncated %v", id, tr.Len(), tr.Truncated)
		}
	}
	binAccounting(t, got, rep)

	// Strict mode errors descriptively on the same caps.
	if _, _, err := ReadSetBinaryOptions(bytes.NewReader(data), nil, trace.ReadOptions{MaxEventsPerTrace: 5}); err == nil {
		t.Error("strict MaxEventsPerTrace accepted")
	}
	if _, _, err := ReadSetBinaryOptions(bytes.NewReader(data), nil, trace.ReadOptions{MaxTraces: 2}); err == nil {
		t.Error("strict MaxTraces accepted")
	}
}

// Garbage that is not even a ParLOT file yields an empty set plus a
// quarantine record, never an error, in lenient mode.
func TestBinaryLenientGarbageFile(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("PLO"), []byte("nonsense"), []byte("PLOT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")} {
		got, rep, err := ReadSetBinaryOptions(bytes.NewReader(in), nil, lenientOpts())
		if err != nil {
			t.Errorf("input %q: lenient error %v", in, err)
		}
		if got == nil || rep.Clean() {
			t.Errorf("input %q: expected quarantine record", in)
		}
		binAccounting(t, got, rep)
	}
}
