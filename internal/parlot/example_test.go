package parlot_test

import (
	"fmt"

	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// Instrumenting application code: one tracer per run, one thread handle per
// goroutine, Enter/Exit (or Fn/Call) around the functions of interest.
func ExampleTracer() {
	tracer := parlot.NewTracer(parlot.MainImage)
	th := tracer.Thread(trace.TID(0, 0))

	th.Enter("main")
	for i := 0; i < 3; i++ {
		th.Call("work", func() {})
	}
	th.Exit("main")

	set := tracer.Collect()
	fmt.Println(set.Traces[trace.TID(0, 0)].Names(set.Registry))
	// Output:
	// [main work work work]
}

// The incremental compressor reaches ParLOT-like ratios on loopy streams.
func ExampleEncoder() {
	var sink lenWriter
	enc := parlot.NewEncoder(&sink)
	for i := 0; i < 100000; i++ {
		enc.Encode(uint32(i % 4))
	}
	_ = enc.Flush()
	syms, bytes := enc.Stats()
	fmt.Printf("%d symbols -> %d bytes\n", syms, bytes)
	// Output:
	// 100000 symbols -> 11 bytes
}

type lenWriter struct{ n int }

func (w *lenWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
