package parlot

import (
	"context"
	"fmt"
	"io"
	"sort"

	"difftrace/internal/obs"
	"difftrace/internal/resilience"
	"difftrace/internal/trace"
)

// Streaming ingestion: a StreamSet holds a trace set in its *compressed*
// form — per-thread FCM/RLE blocks plus the name remap — and replays
// decoded symbols on demand through SymbolReader. Peak memory is bounded by
// the compressed size (ParLOT ratios exceed 21,000 on loopy traces), not
// the expansion, which is the whole point of analyzing traces larger than
// RAM.
//
// ReadStreamSetContext drives the exact same walker (readBinary) as the
// materializing reader, so framing, salvage decisions, caps, and ingest
// accounting are identical by construction; FuzzStreamReader pins that
// equivalence against arbitrary bytes. Replay reproduces the *kept* event
// sequence: symbols dropped at ingest (unknown names, per-trace event caps)
// are re-dropped by position-independent rules — unknown names by the same
// table bound, cap drops by cutting off after the recorded kept count
// (drops only ever occur past the cap, so a suffix cut is exact).

// StreamSet is a compressed-resident trace set produced by ReadStreamSet.
type StreamSet struct {
	// Registry interns the function names, exactly like TraceSet.Registry
	// (pass one registry for a normal/faulty pair).
	Registry *trace.Registry

	names  []uint32 // file name index -> registry function ID
	traces map[trace.ThreadID]*StreamTrace
}

// StreamTrace is one thread's compressed event stream.
type StreamTrace struct {
	ID trace.ThreadID
	// Truncated mirrors trace.Trace.Truncated: set from the record header
	// or by lenient salvage.
	Truncated bool

	set        *StreamSet
	events     int      // kept events (replay emits exactly this many)
	compressed int      // total compressed bytes retained
	blocks     [][]byte // one block per file record, in file order
}

func newStreamSet(reg *trace.Registry) *StreamSet {
	return &StreamSet{Registry: reg, traces: map[trace.ThreadID]*StreamTrace{}}
}

// IDs returns the thread IDs in deterministic (process, thread) order.
func (ss *StreamSet) IDs() []trace.ThreadID {
	ids := make([]trace.ThreadID, 0, len(ss.traces))
	for id := range ss.traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Process != ids[j].Process {
			return ids[i].Process < ids[j].Process
		}
		return ids[i].Thread < ids[j].Thread
	})
	return ids
}

// Processes returns the distinct process IDs in ascending order.
func (ss *StreamSet) Processes() []int {
	seen := map[int]bool{}
	var out []int
	for id := range ss.traces {
		if !seen[id.Process] {
			seen[id.Process] = true
			out = append(out, id.Process)
		}
	}
	sort.Ints(out)
	return out
}

// Get returns the stream for id, or nil if the set has no such thread.
func (ss *StreamSet) Get(id trace.ThreadID) *StreamTrace { return ss.traces[id] }

// Len returns the number of per-thread streams.
func (ss *StreamSet) Len() int { return len(ss.traces) }

// TotalEvents sums kept events across all streams — the size of the
// expansion that is deliberately never materialized.
func (ss *StreamSet) TotalEvents() int {
	n := 0
	for _, st := range ss.traces {
		n += st.events
	}
	return n
}

// CompressedBytes sums the retained compressed block bytes.
func (ss *StreamSet) CompressedBytes() int {
	n := 0
	for _, st := range ss.traces {
		n += st.compressed
	}
	return n
}

// String matches trace.TraceSet's rendering so CLI headers are
// byte-identical across the batch and streaming paths.
func (ss *StreamSet) String() string {
	return fmt.Sprintf("TraceSet{%d traces, %d events}", len(ss.traces), ss.TotalEvents())
}

// Events returns the kept-event count for this stream.
func (st *StreamTrace) Events() int { return st.events }

// CompressedBytes returns the compressed bytes retained for this stream.
func (st *StreamTrace) CompressedBytes() int { return st.compressed }

// Reader returns a fresh pull iterator over the stream's kept events.
// Readers are independent; each replays from the start. A Reader must not
// be shared across goroutines, but distinct Readers over the same
// StreamTrace are safe concurrently (the stream itself is immutable after
// ingest).
func (st *StreamTrace) Reader() *SymbolReader { return &SymbolReader{st: st} }

// SymbolReader decodes a StreamTrace one event at a time, reproducing
// exactly the event sequence the materializing reader would have kept.
type SymbolReader struct {
	st      *StreamTrace
	block   int
	dec     *Decoder
	emitted int
}

// Next returns the next kept event as (registry function ID, kind); ok is
// false at end of stream. Decode errors cannot occur: ingest already
// classified every block, and replay stops where ingest stopped.
func (r *SymbolReader) Next() (fn uint32, kind trace.EventKind, ok bool) {
	if r.st == nil {
		return 0, 0, false
	}
	names := r.st.set.names
	for r.emitted < r.st.events {
		if r.dec == nil {
			if r.block >= len(r.st.blocks) {
				return 0, 0, false
			}
			r.dec = NewDecoder(&sliceByteReader{b: r.st.blocks[r.block]})
			r.block++
		}
		s, err := r.dec.Decode()
		if err != nil {
			// io.EOF or the corrupt/truncated tail ingest already salvaged
			// past: move to the next block.
			r.dec = nil
			continue
		}
		fileID := s >> 1
		if int(fileID) >= len(names) {
			// Dropped at ingest (UnknownName); re-drop on replay.
			continue
		}
		r.emitted++
		return names[fileID], trace.EventKind(s & 1), true
	}
	return 0, 0, false
}

// Materialize fully decodes the set into a trace.TraceSet sharing the same
// registry — the bridge back to batch-only consumers (and the anchor of the
// equivalence tests: Materialize(ReadStreamSet(b)) equals ReadSetBinary(b)
// trace for trace). ctx is checked periodically; on cancellation the
// partial set and the wrapped ctx error are returned.
func (ss *StreamSet) Materialize(ctx context.Context) (*trace.TraceSet, error) {
	set := trace.NewTraceSetWith(ss.Registry)
	for _, id := range ss.IDs() {
		st := ss.traces[id]
		tr := set.Get(id)
		tr.Truncated = st.Truncated
		sr := st.Reader()
		for i := 0; ; i++ {
			if ctx != nil && i&0x1fff == 0x1fff {
				if cerr := ctx.Err(); cerr != nil {
					return set, fmt.Errorf("parlot: trace %s: materialize cancelled: %w", id, cerr)
				}
			}
			fn, kind, ok := sr.Next()
			if !ok {
				break
			}
			tr.Append(fn, kind)
		}
	}
	return set, nil
}

// streamSink retains compressed blocks and counts — the streaming
// counterpart of setSink, driven by the same readBinary walker.
type streamSink struct{ ss *StreamSet }

func (s streamSink) nameTable(fileToReg []uint32) { s.ss.names = fileToReg }

func (s streamSink) has(id trace.ThreadID) bool { return s.ss.traces[id] != nil }

func (s streamSink) count() int { return len(s.ss.traces) }

func (s streamSink) open(id trace.ThreadID) binRecord {
	st := s.ss.traces[id]
	if st == nil {
		st = &StreamTrace{ID: id, set: s.ss}
		s.ss.traces[id] = st
	}
	return st
}

func (s streamSink) kept(id trace.ThreadID) (int, bool) {
	st, ok := s.ss.traces[id]
	if !ok {
		return 0, false
	}
	return st.events, true
}

func (st *StreamTrace) len() int { return st.events }

func (st *StreamTrace) keep(fn uint32, kind trace.EventKind) { st.events++ }

func (st *StreamTrace) setTruncated(v bool) { st.Truncated = v }

func (st *StreamTrace) mark() { st.Truncated = true }

func (st *StreamTrace) block(comp []byte) {
	st.blocks = append(st.blocks, comp)
	st.compressed += len(comp)
}

// ReadStreamSet parses the binary format strictly into a StreamSet without
// materializing events, interning names into reg (nil for a fresh
// registry).
func ReadStreamSet(r io.Reader, reg *trace.Registry) (*StreamSet, error) {
	ss, _, err := ReadStreamSetOptions(r, reg, trace.ReadOptions{})
	return ss, err
}

// ReadStreamSetOptions parses the binary format under opts into a
// StreamSet. Lenient salvage, caps, quarantine, and the IngestReport behave
// exactly as in ReadSetBinaryOptions — both run the same walker — with the
// invariant ss.TotalEvents() == rep.EventsKept (the binary reader never
// synthesizes).
func ReadStreamSetOptions(r io.Reader, reg *trace.Registry, opts trace.ReadOptions) (*StreamSet, *resilience.IngestReport, error) {
	return ReadStreamSetContext(nil, r, reg, opts)
}

// ReadStreamSetContext is ReadStreamSetOptions with cooperative
// cancellation, mirroring ReadSetBinaryContext: cancellation returns the
// partial StreamSet, the report, and the wrapped ctx error.
func ReadStreamSetContext(ctx context.Context, r io.Reader, reg *trace.Registry, opts trace.ReadOptions) (*StreamSet, *resilience.IngestReport, error) {
	if reg == nil {
		reg = trace.NewRegistry()
	}
	lenient := opts.Mode == trace.Lenient
	rep := resilience.NewIngestReport(lenient)
	ss := newStreamSet(reg)
	if opts.Obs != nil {
		cr := &countingReader{r: r}
		r = cr
		// Same accounting as the materializing reader, on every exit path.
		defer func() {
			sizes := make([]int64, 0, len(ss.traces))
			for _, id := range ss.IDs() {
				sizes = append(sizes, int64(ss.traces[id].events))
			}
			trace.ObserveIngestSizes(opts.Obs, cr.n, 0, rep, sizes)
		}()
	}
	dropSet, err := readBinary(ctx, r, reg, opts, rep, streamSink{ss: ss})
	// Ingest decodes every kept event once to classify it; fold that work
	// into the job's live Progress (nil-off) so a scrape during a large
	// ingest already shows the tokenizer moving.
	obs.ProgressFrom(ctx).AddEvents(int64(ss.TotalEvents()))
	if err != nil && dropSet {
		return nil, rep, err
	}
	return ss, rep, err
}
