package parlot

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"difftrace/internal/obs"
	"difftrace/internal/resilience"
	"difftrace/internal/trace"
)

// Compressed trace-set file format — what ParLOT actually writes to disk
// (one compressed stream per thread plus a shared name table), as opposed
// to the human-readable text format in package trace:
//
//	magic "PLOT1"
//	uvarint numNames, then per name: uvarint len + bytes (ID = index)
//	uvarint numTraces, then per trace:
//	    uvarint process, uvarint thread, byte truncated,
//	    uvarint compressedLen, compressed bytes (Encoder stream of
//	    fn<<1|kind symbols)
//
// Only names actually referenced by events are written, with IDs remapped
// densely, so a file stands alone regardless of how large the in-memory
// registry grew. Reading interns names into the caller's registry (pass
// the same registry for a normal/faulty pair, exactly like the text
// format).

const fileMagic = "PLOT1"

// WriteSetBinary writes set in the compressed binary format.
func WriteSetBinary(w io.Writer, set *trace.TraceSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}

	// Collect referenced function IDs and build the dense remap.
	used := map[uint32]bool{}
	for _, tr := range set.Traces {
		for _, e := range tr.Events {
			used[e.Func] = true
		}
	}
	oldIDs := make([]uint32, 0, len(used))
	for id := range used {
		oldIDs = append(oldIDs, id)
	}
	sort.Slice(oldIDs, func(i, j int) bool { return oldIDs[i] < oldIDs[j] })
	remap := make(map[uint32]uint32, len(oldIDs))
	for newID, oldID := range oldIDs {
		remap[oldID] = uint32(newID)
	}

	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}

	if err := putUvarint(uint64(len(oldIDs))); err != nil {
		return err
	}
	for _, oldID := range oldIDs {
		name := set.Registry.Name(oldID)
		if err := putUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}

	ids := set.IDs()
	if err := putUvarint(uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		tr := set.Traces[id]
		if err := putUvarint(uint64(id.Process)); err != nil {
			return err
		}
		if err := putUvarint(uint64(id.Thread)); err != nil {
			return err
		}
		trunc := byte(0)
		if tr.Truncated {
			trunc = 1
		}
		if err := bw.WriteByte(trunc); err != nil {
			return err
		}
		// Compress the event stream.
		var buf []byte
		{
			var bb byteSliceWriter
			enc := NewEncoder(&bb)
			for _, e := range tr.Events {
				enc.Encode(remap[e.Func]<<1 | uint32(e.Kind))
			}
			if err := enc.Flush(); err != nil {
				return err
			}
			buf = bb.b
		}
		if err := putUvarint(uint64(len(buf))); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// byteSliceWriter is a minimal io.Writer over an owned slice.
type byteSliceWriter struct{ b []byte }

func (w *byteSliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// ReadSetBinary parses the binary format strictly, interning names into reg
// (nil for a fresh registry). Use ReadSetBinaryOptions for lenient salvage
// of damaged files.
func ReadSetBinary(r io.Reader, reg *trace.Registry) (*trace.TraceSet, error) {
	set, _, err := ReadSetBinaryOptions(r, reg, trace.ReadOptions{})
	return set, err
}

// ReadSetBinaryOptions parses the binary format under opts.
//
// In Lenient mode damage degrades instead of failing: a short or corrupt
// compressed stream keeps the symbols decoded before the failure (the trace
// is marked Truncated), the per-trace length framing lets the reader resync
// on the next trace after a corrupt stream, events referencing unknown
// name-table entries are dropped individually, and header-level damage
// (bad magic, implausible counts, a file that ends mid-table) quarantines
// the rest of the file while keeping every trace already decoded. All
// decisions are recorded in the returned IngestReport, which upholds
// set.TotalEvents() == EventsKept + EventsSynthesized. A lenient read
// returns a nil error for any input.
func ReadSetBinaryOptions(r io.Reader, reg *trace.Registry, opts trace.ReadOptions) (*trace.TraceSet, *resilience.IngestReport, error) {
	return ReadSetBinaryContext(nil, r, reg, opts)
}

// ReadSetBinaryContext is ReadSetBinaryOptions with cooperative
// cancellation: ctx is checked between traces and periodically inside each
// trace's decoded-symbol loop, so an oversized or hung ingest can be
// aborted mid-stream. As with the text reader, cancellation overrides
// lenient salvage — the wrapped ctx error is returned together with the
// partial set and report, and nothing is quarantined on account of the
// unread remainder. A nil ctx is never cancelled.
func ReadSetBinaryContext(ctx context.Context, r io.Reader, reg *trace.Registry, opts trace.ReadOptions) (*trace.TraceSet, *resilience.IngestReport, error) {
	if reg == nil {
		reg = trace.NewRegistry()
	}
	lenient := opts.Mode == trace.Lenient
	rep := resilience.NewIngestReport(lenient)
	set := trace.NewTraceSetWith(reg)
	if opts.Obs != nil {
		cr := &countingReader{r: r}
		r = cr
		// Bytes/events accounting on every exit path, strict failures
		// included (lines don't apply to the binary format).
		defer func() { trace.ObserveIngest(opts.Obs, cr.n, 0, rep, set) }()
	}
	dropSet, err := readBinary(ctx, r, reg, opts, rep, setSink{set: set})
	// Decoded-event total feeds the job's live Progress (nil-off), matching
	// the text and streaming readers.
	obs.ProgressFrom(ctx).AddEvents(int64(set.TotalEvents()))
	if err != nil && dropSet {
		return nil, rep, err
	}
	return set, rep, err
}

// binSink receives the structure decoded by readBinary. The batch reader's
// sink materializes events into a trace.TraceSet; the streaming reader's
// sink retains only compressed blocks and counts. Both are driven by the
// one walker below, which is what makes their salvage decisions, caps, and
// ingest accounting identical by construction rather than by parallel
// maintenance of two readers.
type binSink interface {
	// nameTable delivers the file→registry function-ID remap once the name
	// table has parsed (streaming retains it to decode blocks later).
	nameTable(fileToReg []uint32)
	// has reports whether a trace for id already exists (MaxTraces admits
	// further records for known traces even at the cap).
	has(id trace.ThreadID) bool
	// count is the number of distinct traces opened so far.
	count() int
	// open returns the record handle for id, creating the trace if needed.
	open(id trace.ThreadID) binRecord
	// kept reports a trace's kept-event count for report backfill.
	kept(id trace.ThreadID) (int, bool)
}

// binRecord is one binary record's sink-side handle.
type binRecord interface {
	// len is the trace's kept-event count so far (MaxEventsPerTrace gate).
	len() int
	// keep accepts one decoded event that passed every gate.
	keep(fn uint32, kind trace.EventKind)
	// setTruncated assigns the truncation flag from the record header
	// (assignment, not OR: a later record for the same thread overwrites,
	// exactly as the materializing reader always did).
	setTruncated(bool)
	// mark forces the truncation flag on (salvage drops).
	mark()
	// block hands over the record's compressed bytes (salvaged prefix
	// included); the streaming sink retains them for replay.
	block(comp []byte)
}

// setSink materializes decoded events into a TraceSet (the batch path).
type setSink struct{ set *trace.TraceSet }

func (s setSink) nameTable([]uint32) {}

func (s setSink) has(id trace.ThreadID) bool { return s.set.Traces[id] != nil }

func (s setSink) count() int { return len(s.set.Traces) }

func (s setSink) open(id trace.ThreadID) binRecord { return setRecord{tr: s.set.Get(id)} }

func (s setSink) kept(id trace.ThreadID) (int, bool) {
	tr, ok := s.set.Traces[id]
	if !ok {
		return 0, false
	}
	return tr.Len(), true
}

type setRecord struct{ tr *trace.Trace }

func (r setRecord) len() int                              { return r.tr.Len() }
func (r setRecord) keep(fn uint32, kind trace.EventKind)  { r.tr.Append(fn, kind) }
func (r setRecord) setTruncated(v bool)                   { r.tr.Truncated = v }
func (r setRecord) mark()                                 { r.tr.Truncated = true }
func (r setRecord) block([]byte)                          {}

// readBinary walks one PLOT1 stream, decoding incrementally (one symbol at
// a time — the expanded trace is never materialized here; what the sink
// does with each event is its business). dropSet reports whether a strict
// trace-level failure occurred, in which case the caller must discard the
// partially populated sink (the historical contract: strict header-level
// errors return the partial set, strict trace-level errors return nil).
func readBinary(ctx context.Context, r io.Reader, reg *trace.Registry, opts trace.ReadOptions, rep *resilience.IngestReport, sink binSink) (dropSet bool, _ error) {
	lenient := opts.Mode == trace.Lenient

	// fail aborts a strict read; in lenient mode it quarantines the rest of
	// the file under id and reports success with whatever was salvaged.
	var failed bool
	fail := func(id string, reason resilience.Reason, err error) error {
		if !lenient {
			return err
		}
		rep.Quarantine(id, reason)
		failed = true
		return nil
	}

	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return false, fail("?", resilience.TruncatedStream, fmt.Errorf("parlot: reading magic: %w", err))
	}
	if string(magic) != fileMagic {
		return false, fail("?", resilience.CorruptStream, fmt.Errorf("parlot: bad magic %q", magic))
	}

	numNames, err := binary.ReadUvarint(br)
	if err != nil {
		return false, fail("?", resilience.TruncatedStream, fmt.Errorf("parlot: name count: %w", err))
	}
	if numNames > 1<<24 {
		return false, fail("?", resilience.CorruptStream, fmt.Errorf("parlot: implausible name count %d", numNames))
	}
	fileToReg := make([]uint32, numNames)
	for i := range fileToReg {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > 1<<20 {
			return false, fail("?", resilience.CorruptStream, fmt.Errorf("parlot: name %d length: %w", i, err))
		}
		nameBytes := make([]byte, n)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return false, fail("?", resilience.TruncatedStream, fmt.Errorf("parlot: name %d: %w", i, err))
		}
		fileToReg[i] = reg.ID(string(nameBytes))
	}
	sink.nameTable(fileToReg)

	numTraces, err := binary.ReadUvarint(br)
	if err != nil {
		return false, fail("?", resilience.TruncatedStream, fmt.Errorf("parlot: trace count: %w", err))
	}
	if numTraces > 1<<20 {
		return false, fail("?", resilience.CorruptStream, fmt.Errorf("parlot: implausible trace count %d", numTraces))
	}
	for t := uint64(0); t < numTraces && !failed; t++ {
		recID := fmt.Sprintf("#%d", t) // until the header names the trace
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return false, fmt.Errorf("parlot: trace %d: read cancelled: %w", t, cerr)
			}
		}
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return false, fail(recID, resilience.TruncatedStream, fmt.Errorf("parlot: trace %d process: %w", t, err))
		}
		thr, err := binary.ReadUvarint(br)
		if err != nil {
			return false, fail(recID, resilience.TruncatedStream, fmt.Errorf("parlot: trace %d thread: %w", t, err))
		}
		id := trace.TID(int(proc), int(thr))
		recID = id.String()
		trunc, err := br.ReadByte()
		if err != nil {
			return false, fail(recID, resilience.TruncatedStream, fmt.Errorf("parlot: trace %d flags: %w", t, err))
		}
		clen, err := binary.ReadUvarint(br)
		if err != nil || clen > 1<<30 {
			return false, fail(recID, resilience.CorruptStream, fmt.Errorf("parlot: trace %d stream length: %w", t, err))
		}
		if opts.MaxTraces > 0 && !sink.has(id) && sink.count() >= opts.MaxTraces {
			if !lenient {
				return true, fmt.Errorf("parlot: trace %d (%s) exceeds MaxTraces=%d", t, id, opts.MaxTraces)
			}
			rep.Quarantine(recID, resilience.TraceCap)
			if _, err := io.CopyN(io.Discard, br, int64(clen)); err != nil {
				rep.Quarantine(recID, resilience.TruncatedStream)
				failed = true
			}
			continue
		}
		comp := make([]byte, clen)
		short := false
		if n, err := io.ReadFull(br, comp); err != nil {
			if !lenient {
				return true, fmt.Errorf("parlot: trace %d stream: %w", t, err)
			}
			// The file ends mid-stream: decode the prefix that arrived.
			comp, short, failed = comp[:n], true, true
			rep.Drop(recID, resilience.TruncatedStream, 1)
		}
		rec := sink.open(id)
		rec.setTruncated(trunc != 0 || (lenient && short))
		rec.block(comp)
		// Decode symbol by symbol. kept buffers this record's keep count so
		// a strict decompress failure reports no kept events for the record
		// (matching the historical decode-then-append reader, which failed
		// before appending anything).
		dec := NewDecoder(&sliceByteReader{b: comp})
		kept := 0
		var decErr error
		for si := 0; ; si++ {
			if ctx != nil && si&0x1fff == 0x1fff {
				if cerr := ctx.Err(); cerr != nil {
					rep.Keep(kept)
					return false, fmt.Errorf("parlot: trace %d (%s): read cancelled: %w", t, id, cerr)
				}
			}
			s, err := dec.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				decErr = err
				break
			}
			fileID := s >> 1
			if int(fileID) >= len(fileToReg) {
				if !lenient {
					rep.Keep(kept)
					return true, fmt.Errorf("parlot: trace %d references unknown name %d", t, fileID)
				}
				rep.Drop(recID, resilience.UnknownName, 1)
				rec.mark()
				continue
			}
			if opts.MaxEventsPerTrace > 0 && rec.len() >= opts.MaxEventsPerTrace {
				if !lenient {
					rep.Keep(kept)
					return true, fmt.Errorf("parlot: trace %d (%s) exceeds MaxEventsPerTrace=%d", t, id, opts.MaxEventsPerTrace)
				}
				rep.Drop(recID, resilience.EventCap, 1)
				rec.mark()
				continue
			}
			rec.keep(fileToReg[fileID], trace.EventKind(s&1))
			kept++
		}
		if decErr != nil {
			if !lenient {
				return true, fmt.Errorf("parlot: trace %d decompress: %w", t, decErr)
			}
			// Keep the symbols decoded before the corruption; the length
			// framing lets the next trace decode normally.
			if !short {
				rep.Drop(recID, resilience.CorruptStream, 1)
			}
			rec.mark()
		}
		rep.Keep(kept)
	}
	// Backfill per-trace kept counts for the salvage records.
	for _, recd := range rep.Records() {
		if id, err := trace.ParseThreadID(recd.ID); err == nil {
			if n, ok := sink.kept(id); ok {
				recd.Kept = n
			}
		}
	}
	return false, nil
}

// countingReader counts bytes consumed from the underlying reader for the
// "ingest.bytes" counter.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// sliceByteReader is an allocation-free io.ByteReader over a slice.
type sliceByteReader struct {
	b []byte
	i int
}

func (r *sliceByteReader) ReadByte() (byte, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}
