package parlot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"difftrace/internal/trace"
)

// Compressed trace-set file format — what ParLOT actually writes to disk
// (one compressed stream per thread plus a shared name table), as opposed
// to the human-readable text format in package trace:
//
//	magic "PLOT1"
//	uvarint numNames, then per name: uvarint len + bytes (ID = index)
//	uvarint numTraces, then per trace:
//	    uvarint process, uvarint thread, byte truncated,
//	    uvarint compressedLen, compressed bytes (Encoder stream of
//	    fn<<1|kind symbols)
//
// Only names actually referenced by events are written, with IDs remapped
// densely, so a file stands alone regardless of how large the in-memory
// registry grew. Reading interns names into the caller's registry (pass
// the same registry for a normal/faulty pair, exactly like the text
// format).

const fileMagic = "PLOT1"

// WriteSetBinary writes set in the compressed binary format.
func WriteSetBinary(w io.Writer, set *trace.TraceSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}

	// Collect referenced function IDs and build the dense remap.
	used := map[uint32]bool{}
	for _, tr := range set.Traces {
		for _, e := range tr.Events {
			used[e.Func] = true
		}
	}
	oldIDs := make([]uint32, 0, len(used))
	for id := range used {
		oldIDs = append(oldIDs, id)
	}
	sort.Slice(oldIDs, func(i, j int) bool { return oldIDs[i] < oldIDs[j] })
	remap := make(map[uint32]uint32, len(oldIDs))
	for newID, oldID := range oldIDs {
		remap[oldID] = uint32(newID)
	}

	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}

	if err := putUvarint(uint64(len(oldIDs))); err != nil {
		return err
	}
	for _, oldID := range oldIDs {
		name := set.Registry.Name(oldID)
		if err := putUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}

	ids := set.IDs()
	if err := putUvarint(uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		tr := set.Traces[id]
		if err := putUvarint(uint64(id.Process)); err != nil {
			return err
		}
		if err := putUvarint(uint64(id.Thread)); err != nil {
			return err
		}
		trunc := byte(0)
		if tr.Truncated {
			trunc = 1
		}
		if err := bw.WriteByte(trunc); err != nil {
			return err
		}
		// Compress the event stream.
		var buf []byte
		{
			var bb byteSliceWriter
			enc := NewEncoder(&bb)
			for _, e := range tr.Events {
				enc.Encode(remap[e.Func]<<1 | uint32(e.Kind))
			}
			if err := enc.Flush(); err != nil {
				return err
			}
			buf = bb.b
		}
		if err := putUvarint(uint64(len(buf))); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// byteSliceWriter is a minimal io.Writer over an owned slice.
type byteSliceWriter struct{ b []byte }

func (w *byteSliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// ReadSetBinary parses the binary format, interning names into reg (nil for
// a fresh registry).
func ReadSetBinary(r io.Reader, reg *trace.Registry) (*trace.TraceSet, error) {
	if reg == nil {
		reg = trace.NewRegistry()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("parlot: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("parlot: bad magic %q", magic)
	}

	numNames, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("parlot: name count: %w", err)
	}
	if numNames > 1<<24 {
		return nil, fmt.Errorf("parlot: implausible name count %d", numNames)
	}
	fileToReg := make([]uint32, numNames)
	for i := range fileToReg {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > 1<<20 {
			return nil, fmt.Errorf("parlot: name %d length: %w", i, err)
		}
		nameBytes := make([]byte, n)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, fmt.Errorf("parlot: name %d: %w", i, err)
		}
		fileToReg[i] = reg.ID(string(nameBytes))
	}

	numTraces, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("parlot: trace count: %w", err)
	}
	if numTraces > 1<<20 {
		return nil, fmt.Errorf("parlot: implausible trace count %d", numTraces)
	}
	set := trace.NewTraceSetWith(reg)
	for t := uint64(0); t < numTraces; t++ {
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("parlot: trace %d process: %w", t, err)
		}
		thr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("parlot: trace %d thread: %w", t, err)
		}
		trunc, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("parlot: trace %d flags: %w", t, err)
		}
		clen, err := binary.ReadUvarint(br)
		if err != nil || clen > 1<<30 {
			return nil, fmt.Errorf("parlot: trace %d stream length: %w", t, err)
		}
		comp := make([]byte, clen)
		if _, err := io.ReadFull(br, comp); err != nil {
			return nil, fmt.Errorf("parlot: trace %d stream: %w", t, err)
		}
		syms, err := NewDecoder(&sliceByteReader{b: comp}).DecodeAll()
		if err != nil {
			return nil, fmt.Errorf("parlot: trace %d decompress: %w", t, err)
		}
		tr := set.Get(trace.TID(int(proc), int(thr)))
		tr.Truncated = trunc != 0
		for _, s := range syms {
			fileID := s >> 1
			if int(fileID) >= len(fileToReg) {
				return nil, fmt.Errorf("parlot: trace %d references unknown name %d", t, fileID)
			}
			tr.Append(fileToReg[fileID], trace.EventKind(s&1))
		}
	}
	return set, nil
}

// sliceByteReader is an allocation-free io.ByteReader over a slice.
type sliceByteReader struct {
	b []byte
	i int
}

func (r *sliceByteReader) ReadByte() (byte, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}
