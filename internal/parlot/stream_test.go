package parlot

import (
	"bytes"
	"math/rand" //lint:allow wallclock differential tests use caller-seeded rngs; every run replays byte-identically from the seed
	"testing"

	"difftrace/internal/resilience/chaos"
	"difftrace/internal/trace"
)

// renderSet serializes a set to the text format for byte comparison
// (captures IDs, order, names, kinds, and truncation flags).
func renderSet(t *testing.T, s *trace.TraceSet) string {
	t.Helper()
	var b bytes.Buffer
	if err := trace.WriteSetText(&b, s); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// requireStreamMatchesBatch reads data both ways under opts and asserts the
// streaming path reproduces the batch path exactly: same traces (via
// Materialize), same totals, and the same ingest report rendering.
func requireStreamMatchesBatch(t *testing.T, data []byte, opts trace.ReadOptions) {
	t.Helper()
	bSet, bRep, bErr := ReadSetBinaryOptions(bytes.NewReader(data), nil, opts)
	ss, sRep, sErr := ReadStreamSetOptions(bytes.NewReader(data), nil, opts)
	if (bErr == nil) != (sErr == nil) {
		t.Fatalf("error divergence: batch %v, stream %v", bErr, sErr)
	}
	if bErr != nil {
		if bErr.Error() != sErr.Error() {
			t.Fatalf("error text divergence: batch %q, stream %q", bErr, sErr)
		}
		if (bSet == nil) != (ss == nil) {
			t.Fatalf("nil-set divergence on error: batch %v, stream %v", bSet == nil, ss == nil)
		}
		return
	}
	if got, want := sRep.Render(), bRep.Render(); got != want {
		t.Fatalf("ingest report divergence:\nstream:\n%s\nbatch:\n%s", got, want)
	}
	if got, want := ss.TotalEvents(), bSet.TotalEvents(); got != want {
		t.Fatalf("TotalEvents: stream %d, batch %d", got, want)
	}
	if got, want := ss.String(), bSet.String(); got != want {
		t.Fatalf("String: stream %q, batch %q", got, want)
	}
	mat, err := ss.Materialize(nil)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if got, want := renderSet(t, mat), renderSet(t, bSet); got != want {
		t.Fatalf("materialized set diverges from batch set:\nstream:\n%s\nbatch:\n%s", got, want)
	}
}

func TestStreamReaderMatchesBatchClean(t *testing.T) {
	s := buildSet("main", "MPI_Init", "work", "MPI_Finalize")
	t2 := s.Get(trace.TID(3, 1))
	t2.Append(s.Registry.ID("main"), trace.Enter)
	t2.Append(s.Registry.ID("work"), trace.Enter)
	t2.Truncated = true
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []trace.ReadMode{trace.Strict, trace.Lenient} {
		requireStreamMatchesBatch(t, buf.Bytes(), trace.ReadOptions{Mode: mode})
	}
}

// TestStreamReaderMatchesBatchLoopy exercises predictor-heavy streams: deep
// RLE hit runs are exactly where a replay bug (predictor state divergence)
// would show up.
func TestStreamReaderMatchesBatchLoopy(t *testing.T) {
	s := trace.NewTraceSet()
	names := []string{"a", "b", "c", "d", "e"}
	rng := rand.New(rand.NewSource(42))
	for th := 0; th < 4; th++ {
		tr := s.Get(trace.TID(th/2, th%2))
		for loop := 0; loop < 20; loop++ {
			body := names[rng.Intn(len(names))]
			iters := 1 + rng.Intn(500)
			for i := 0; i < iters; i++ {
				tr.Append(s.Registry.ID(body), trace.Enter)
				tr.Append(s.Registry.ID(body), trace.Exit)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	requireStreamMatchesBatch(t, buf.Bytes(), trace.ReadOptions{})
	requireStreamMatchesBatch(t, buf.Bytes(), trace.ReadOptions{Mode: trace.Lenient})
	// Bounded reads: caps engage the shared salvage gates.
	requireStreamMatchesBatch(t, buf.Bytes(), trace.ReadOptions{
		Mode: trace.Lenient, MaxEventsPerTrace: 100, MaxTraces: 2,
	})
}

// TestStreamReaderMatchesBatchChaos runs every binary corruption operator
// over a healthy file and asserts the streaming reader salvages exactly
// what the batch reader salvages.
func TestStreamReaderMatchesBatchChaos(t *testing.T) {
	s := buildSet("main", "compute", "exchange", "reduce")
	t2 := s.Get(trace.TID(1, 0))
	for i := 0; i < 200; i++ {
		t2.Append(s.Registry.ID("compute"), trace.Enter)
		t2.Append(s.Registry.ID("compute"), trace.Exit)
	}
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, op := range chaos.Binary() {
		for round := 0; round < 8; round++ {
			corrupted := op.Apply(buf.Bytes(), rng)
			t.Run(op.Name, func(t *testing.T) {
				requireStreamMatchesBatch(t, corrupted, trace.ReadOptions{Mode: trace.Lenient})
			})
		}
	}
}

// TestSymbolReaderIndependentReplay: readers over the same stream are
// independent and replay identically (the DiffRun fixpoint re-reads every
// stream each summarization round).
func TestSymbolReaderIndependentReplay(t *testing.T) {
	s := buildSet("x", "y", "z")
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	ss, err := ReadStreamSet(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := ss.Get(trace.TID(0, 0))
	if st == nil {
		t.Fatal("stream trace missing")
	}
	read := func() []uint32 {
		var out []uint32
		r := st.Reader()
		for {
			fn, kind, ok := r.Next()
			if !ok {
				break
			}
			out = append(out, fn<<1|uint32(kind))
		}
		return out
	}
	first, second := read(), read()
	if len(first) != st.Events() || len(first) != len(second) {
		t.Fatalf("replay lengths: %d, %d, want %d", len(first), len(second), st.Events())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %d != %d", i, first[i], second[i])
		}
	}
}

// FuzzStreamReader: for arbitrary PLOT1 bytes the streaming reader and
// ReadSetBinaryOptions agree on kept/dropped/quarantined accounting, and
// materializing the stream reproduces the batch set byte for byte.
func FuzzStreamReader(f *testing.F) {
	s := buildSet("a", "b")
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte("PLOT1"))
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-2])
	if len(good) > 8 {
		flipped := append([]byte(nil), good...)
		flipped[6] ^= 0xff // inside the name table
		f.Add(flipped)
		flipped2 := append([]byte(nil), good...)
		flipped2[len(good)-3] ^= 0xff // inside the last stream
		f.Add(flipped2)
	}
	f.Add([]byte("PLOT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // huge name count
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range []trace.ReadOptions{
			{Mode: trace.Lenient},
			{Mode: trace.Lenient, MaxEventsPerTrace: 8, MaxTraces: 4},
			{}, // strict
		} {
			requireStreamMatchesBatch(t, data, opts)
		}
		// Streaming accounting invariant, mirroring FuzzReadSetBinary's.
		ss, rep, err := ReadStreamSetOptions(bytes.NewReader(data), nil, trace.ReadOptions{Mode: trace.Lenient})
		if err != nil {
			t.Fatalf("lenient stream read returned error: %v", err)
		}
		if got, want := ss.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
			t.Fatalf("accounting: TotalEvents %d != kept %d + synthesized %d",
				got, rep.EventsKept, rep.EventsSynthesized)
		}
	})
}
