package parlot

import (
	"bytes"
	"testing"
)

// FuzzCompressRoundTrip: any symbol stream round-trips exactly.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		syms := make([]uint32, len(data))
		for i, b := range data {
			syms[i] = uint32(b) * 257 // spread over a wider range
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		for _, s := range syms {
			enc.Encode(s)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewDecoder(bytes.NewReader(buf.Bytes())).DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(syms) {
			t.Fatalf("len %d != %d", len(got), len(syms))
		}
		for i := range got {
			if got[i] != syms[i] {
				t.Fatalf("sym %d: %d != %d", i, got[i], syms[i])
			}
		}
	})
}

// FuzzDecoderRobust: arbitrary bytes never panic the decoder.
func FuzzDecoderRobust(f *testing.F) {
	f.Add([]byte{0x00, 0x05})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = NewDecoder(bytes.NewReader(data)).DecodeAll()
	})
}

// FuzzReadSetBinary: arbitrary bytes never panic the binary reader.
func FuzzReadSetBinary(f *testing.F) {
	s := buildSet("a", "b")
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PLOT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadSetBinary(bytes.NewReader(data), nil)
	})
}
