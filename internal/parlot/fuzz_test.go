package parlot

import (
	"bytes"
	"testing"

	"difftrace/internal/trace"
)

// FuzzCompressRoundTrip: any symbol stream round-trips exactly.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		syms := make([]uint32, len(data))
		for i, b := range data {
			syms[i] = uint32(b) * 257 // spread over a wider range
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		for _, s := range syms {
			enc.Encode(s)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewDecoder(bytes.NewReader(buf.Bytes())).DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(syms) {
			t.Fatalf("len %d != %d", len(got), len(syms))
		}
		for i := range got {
			if got[i] != syms[i] {
				t.Fatalf("sym %d: %d != %d", i, got[i], syms[i])
			}
		}
	})
}

// FuzzDecoderRobust: arbitrary bytes never panic the decoder.
func FuzzDecoderRobust(f *testing.F) {
	f.Add([]byte{0x00, 0x05})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = NewDecoder(bytes.NewReader(data)).DecodeAll()
	})
}

// FuzzReadSetBinary: arbitrary bytes never panic the strict binary reader,
// and the lenient reader never returns an error while accounting for every
// event it keeps (set.TotalEvents() == kept + synthesized).
func FuzzReadSetBinary(f *testing.F) {
	s := buildSet("a", "b")
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, s); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte("PLOT1"))
	// Corrupt seeds: truncations at several depths, flipped bytes in the
	// name table and in a compressed stream, oversized counts.
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-2])
	if len(good) > 8 {
		flipped := append([]byte(nil), good...)
		flipped[6] ^= 0xff // inside the name table
		f.Add(flipped)
		flipped2 := append([]byte(nil), good...)
		flipped2[len(good)-3] ^= 0xff // inside the last stream
		f.Add(flipped2)
	}
	f.Add([]byte("PLOT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // huge name count
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadSetBinary(bytes.NewReader(data), nil)

		set, rep, err := ReadSetBinaryOptions(bytes.NewReader(data), nil, trace.ReadOptions{Mode: trace.Lenient})
		if err != nil {
			t.Fatalf("lenient mode returned error: %v", err)
		}
		if got, want := set.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
			t.Fatalf("accounting: TotalEvents %d != kept %d + synthesized %d",
				got, rep.EventsKept, rep.EventsSynthesized)
		}
		// Bounded lenient reads must also never error.
		if _, _, err := ReadSetBinaryOptions(bytes.NewReader(data), nil, trace.ReadOptions{
			Mode: trace.Lenient, MaxEventsPerTrace: 8, MaxTraces: 4,
		}); err != nil {
			t.Fatalf("bounded lenient mode returned error: %v", err)
		}
	})
}
