package rank

import (
	"sort"
	"strings"
	"testing"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func oddEvenSets(t *testing.T, plan *faults.Plan) (*trace.TraceSet, *trace.TraceSet) {
	t.Helper()
	reg := trace.NewRegistry()
	run := func(p *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: p, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		return tr.Collect()
	}
	return run(nil), run(plan)
}

func TestSweepOddEvenSwapBug(t *testing.T) {
	normal, faulty := oddEvenSets(t, faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	}))
	tbl, err := Sweep(normal, faulty, Request{
		Specs:   []string{"11.mpiall.0K10", "11.mpisr.0K10"},
		Linkage: cluster.Ward,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*6 {
		t.Fatalf("rows = %d, want 12", len(tbl.Rows))
	}
	// Rows ascend by B-score.
	if !sort.SliceIsSorted(tbl.Rows, func(i, j int) bool { return tbl.Rows[i].BScore < tbl.Rows[j].BScore }) {
		t.Error("rows not sorted by B-score")
	}
	// Consensus: process 5 is ranked first most often.
	cons := tbl.Consensus(true)
	if len(cons) == 0 || cons[0].Name != "5" {
		t.Errorf("process consensus = %+v", cons)
	}
	consTh := tbl.Consensus(false)
	if len(consTh) == 0 || consTh[0].Name != "5.0" {
		t.Errorf("thread consensus = %+v", consTh)
	}
}

func TestSweepErrors(t *testing.T) {
	normal, faulty := oddEvenSets(t, nil)
	if _, err := Sweep(normal, faulty, Request{}); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := Sweep(normal, faulty, Request{Specs: []string{"bogus"}}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRenderLayout(t *testing.T) {
	normal, faulty := oddEvenSets(t, faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	}))
	tbl, err := Sweep(normal, faulty, Request{
		Specs:   []string{"11.mpiall.0K10"},
		Attrs:   []attr.Config{{Kind: attr.Single, Freq: attr.NoFreq}},
		Linkage: cluster.Ward,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"Filter", "B-score", "Top Processes", "11.mpiall.0K10", "sing.noFreq", "ward"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableVIShape(t *testing.T) {
	// §IV-B: the OpenMP unprotected-memcpy bug in process 6 thread 4 — the
	// memory/critical-section filters must flag thread 6.4 first.
	reg := trace.NewRegistry()
	run := func(p *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		res, err := ilcs.Run(ilcs.Config{
			Procs: 8, Workers: 4, Cities: 12, Seed: 11,
			StableRounds: 2, MaxRounds: 10, Plan: p, Tracer: tr,
		})
		if err != nil || res.Deadlocked {
			t.Fatal(err, res)
		}
		return tr.Collect()
	}
	normal := run(nil)
	faulty := run(faults.NewPlan(faults.Fault{
		Kind: faults.OmitCritical, Process: 6, Thread: 4,
	}))
	// Sweep the full attribute space (as the paper's Table VI does): the
	// consensus needs the frequency-sensitive rows; structure-only rows
	// are noisier because NLR loop identities vary between any two runs
	// of the asynchronous search.
	// The ompcrit-only spec is the high-signal row family: for it the
	// *only* possible difference between the runs is the buggy thread's
	// vanished GOMP_critical_* calls.
	tbl, err := Sweep(normal, faulty, Request{
		Specs:          []string{"11.ompcrit.0K10", "11.plt.mem.cust.0K10", "11.mem.ompcrit.cust.0K10"},
		CustomPatterns: []string{"^CPU_"},
		Linkage:        cluster.Ward,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Detection-power assertions for this asynchronous workload live in
	// the tableVI experiment (stable under its controlled configuration)
	// and in TestSweepOddEvenSwapBug (deterministic workload). Under
	// arbitrary schedulers — race detector, loaded machines — other
	// workers' champion-update structure varies too, so here we verify
	// the sweep mechanics and that the faulty thread is at least
	// surfaced somewhere in the table.
	if len(tbl.Rows) != 3*6 {
		t.Fatalf("rows = %d, want 18", len(tbl.Rows))
	}
	if !sort.SliceIsSorted(tbl.Rows, func(i, j int) bool { return tbl.Rows[i].BScore < tbl.Rows[j].BScore }) {
		t.Error("rows not sorted by B-score")
	}
	seen := false
	for _, c := range tbl.Consensus(false) {
		if c.Name == "6.4" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("thread 6.4 never surfaced\n%s", tbl.Render())
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	normal, faulty := oddEvenSets(t, faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	}))
	base := Request{
		Specs:   []string{"11.mpiall.0K10", "11.mpisr.0K10"},
		Linkage: cluster.Ward,
	}
	seq, err := Sweep(normal, faulty, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	got, err := Sweep(normal, faulty, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(seq.Rows) {
		t.Fatalf("rows: %d vs %d", len(got.Rows), len(seq.Rows))
	}
	for i := range seq.Rows {
		a, b := seq.Rows[i], got.Rows[i]
		if a.Spec != b.Spec || a.Attr != b.Attr || a.BScore != b.BScore {
			t.Errorf("row %d differs: %s/%s/%.3f vs %s/%s/%.3f",
				i, a.Spec, a.Attr, a.BScore, b.Spec, b.Attr, b.BScore)
		}
		if strings.Join(a.TopThreads, ",") != strings.Join(b.TopThreads, ",") {
			t.Errorf("row %d suspects differ", i)
		}
	}
}

func TestParallelSweepPropagatesErrors(t *testing.T) {
	normal, faulty := oddEvenSets(t, nil)
	_, err := Sweep(normal, faulty, Request{
		Specs:    []string{"11.cust.0K10"}, // cust without patterns: parse error
		Parallel: 4,
	})
	if err == nil {
		t.Error("expected parse error")
	}
}

func TestRenderMarkdown(t *testing.T) {
	normal, faulty := oddEvenSets(t, faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	}))
	tbl, err := Sweep(normal, faulty, Request{
		Specs:   []string{"11.mpiall.0K10"},
		Attrs:   []attr.Config{{Kind: attr.Single, Freq: attr.Actual}},
		Linkage: cluster.Ward,
	})
	if err != nil {
		t.Fatal(err)
	}
	md := tbl.RenderMarkdown()
	if !strings.Contains(md, "| Filter |") || !strings.Contains(md, "| 11.mpiall.0K10 | sing.actual |") {
		t.Errorf("markdown:\n%s", md)
	}
	if strings.Count(md, "\n") != 3 { // header + separator + 1 row
		t.Errorf("rows:\n%s", md)
	}
}
