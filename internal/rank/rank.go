// Package rank builds the paper's ranking tables (Tables VI–IX): it sweeps
// parameter combinations — filter specs × attribute configs — through the
// DiffTrace pipeline, computes each combination's B-score between the
// normal and faulty hierarchical clusterings, and reports the suspicious
// processes/threads each combination surfaces, sorted by ascending B-score
// (the most reorganized clusterings, i.e. the most informative parameter
// settings, first).
package rank

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/pool"
	"difftrace/internal/trace"
)

// Request describes one sweep.
type Request struct {
	// Specs are filter spec strings ("11.mpi.cust.0K10", ...).
	Specs []string
	// CustomPatterns back the "cust" category in the specs (e.g. "^CPU_").
	CustomPatterns []string
	// Attrs are the attribute configurations to sweep (default: all six).
	Attrs []attr.Config
	// Linkage is the dendrogram method (the paper uses ward everywhere).
	Linkage cluster.Method
	// TopK bounds the suspect lists per row (the paper prints up to 6).
	TopK int
	// Eps is the minimum similarity-row change for an object to count as
	// suspicious.
	Eps float64
	// Parallel runs up to this many pipeline instances concurrently
	// (paper future-work item 1: "optimizing [components] to exploit
	// multi-core CPUs, reducing the overall analysis time"). Each
	// parameter combination is an independent DiffRun, so the sweep is
	// embarrassingly parallel; 0 or 1 means sequential.
	Parallel int
	// Workers is the total intra-run worker budget. When the sweep itself
	// is parallel the budget is divided across the concurrent runs
	// (Parallel × per-run workers never oversubscribes it); 0 means
	// runtime.GOMAXPROCS(0). Results are identical for every value.
	Workers int
	// Obs, when non-nil, aggregates observability across the whole sweep:
	// every DiffRun folds its spans and counters into this one run, each
	// combination gets a "rank/<spec>/<attr>" span, and the sweep loop
	// records utilization under the "rank.sweep" pool site. Nil disables
	// instrumentation at zero cost.
	Obs *obs.Run
}

// runWorkers resolves the per-run worker budget: the total budget divided
// by the number of concurrently running sweeps.
func (r *Request) runWorkers() int {
	outer := r.Parallel
	if outer < 1 {
		outer = 1
	}
	return pool.Divide(pool.Workers(r.Workers), outer)
}

func (r *Request) defaults() {
	if len(r.Attrs) == 0 {
		r.Attrs = attr.AllConfigs()
	}
	if r.TopK == 0 {
		r.TopK = 6
	}
	if r.Eps == 0 {
		r.Eps = 1e-9
	}
}

// Row is one ranking-table entry.
type Row struct {
	Spec         string
	Attr         attr.Config
	BScore       float64
	TopProcesses []string
	TopThreads   []string
	Report       *core.Report // full pipeline output for drill-down
}

// Table is the assembled ranking table, rows ascending by B-score.
type Table struct {
	Linkage cluster.Method
	Rows    []Row
}

// combo is one unit of sweep work.
type combo struct {
	spec string
	flt  *filter.Filter
	attr attr.Config
}

// Sweep runs every (spec × attrs) combination over the two executions,
// optionally in parallel (Request.Parallel workers).
func Sweep(normal, faulty *trace.TraceSet, req Request) (*Table, error) {
	return SweepContext(nil, normal, faulty, req)
}

// SweepContext is Sweep with cooperative cancellation: ctx is observed
// between combination claims and inside every DiffRun, so a sweep honors a
// caller deadline. A cancelled sweep returns the wrapped ctx error — never
// a partial table. A nil ctx is never cancelled.
func SweepContext(ctx context.Context, normal, faulty *trace.TraceSet, req Request) (*Table, error) {
	req.defaults()
	if len(req.Specs) == 0 {
		return nil, fmt.Errorf("rank: no filter specs given")
	}
	var combos []combo
	for _, spec := range req.Specs {
		flt, err := filter.ParseSpec(spec, req.CustomPatterns...)
		if err != nil {
			return nil, err
		}
		for _, ac := range req.Attrs {
			combos = append(combos, combo{spec: spec, flt: flt, attr: ac})
		}
	}

	rows := make([]Row, len(combos))
	errs := make([]error, len(combos))
	runW := req.runWorkers()
	req.Obs.Counter("rank.combos").Add(int64(len(combos)))
	runOne := func(i int) {
		c := combos[i]
		sp := req.Obs.StartSpan("rank/" + c.spec + "/" + c.attr.String())
		defer sp.End()
		cfg := core.Config{Filter: c.flt, Attr: c.attr, Linkage: req.Linkage, Workers: runW, Obs: req.Obs}
		rep, err := core.DiffRunContext(ctx, normal, faulty, cfg)
		if err != nil {
			errs[i] = fmt.Errorf("rank: %s/%s: %w", c.spec, c.attr, err)
			return
		}
		rows[i] = Row{
			Spec:         c.spec,
			Attr:         c.attr,
			BScore:       rep.Threads.BScore,
			TopProcesses: rep.Processes.TopSuspects(req.TopK, req.Eps),
			TopThreads:   rep.Threads.TopSuspects(req.TopK, req.Eps),
			Report:       rep,
		}
	}

	if err := pool.DoObservedContext(ctx, req.Obs, "rank.sweep", req.Parallel, len(combos), runOne); err != nil {
		return nil, fmt.Errorf("rank: sweep cancelled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	tbl := &Table{Linkage: req.Linkage, Rows: rows}
	sort.SliceStable(tbl.Rows, func(i, j int) bool { return tbl.Rows[i].BScore < tbl.Rows[j].BScore })
	return tbl, nil
}

// Consensus tallies how often each object appears among the top suspects
// across all rows — the "filters all agree that process 5 changed the most"
// reading the paper applies to Table VIII.
func (t *Table) Consensus(processes bool) []ConsensusEntry {
	counts := map[string]int{}
	first := map[string]int{}
	for _, r := range t.Rows {
		list := t.pick(r, processes)
		for i, name := range list {
			counts[name]++
			if i == 0 {
				first[name]++
			}
		}
	}
	out := make([]ConsensusEntry, 0, len(counts))
	for name, c := range counts {
		out = append(out, ConsensusEntry{Name: name, Appearances: c, RankedFirst: first[name]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RankedFirst != out[j].RankedFirst {
			return out[i].RankedFirst > out[j].RankedFirst
		}
		if out[i].Appearances != out[j].Appearances {
			return out[i].Appearances > out[j].Appearances
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (t *Table) pick(r Row, processes bool) []string {
	if processes {
		return r.TopProcesses
	}
	return r.TopThreads
}

// ConsensusEntry is one object's tally across the sweep.
type ConsensusEntry struct {
	Name        string
	Appearances int
	RankedFirst int
}

// Render prints the table in the paper's layout: filter, attributes,
// B-score, top processes, top threads.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-12s %8s  %-22s %s\n",
		"Filter", "Attributes", "B-score", "Top Processes", "Top Threads")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 100))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s %-12s %8.3f  %-22s %s\n",
			r.Spec, r.Attr, r.BScore,
			strings.Join(r.TopProcesses, ", "),
			strings.Join(r.TopThreads, ", "))
	}
	fmt.Fprintf(&b, "(linkage: %s)\n", t.Linkage)
	return b.String()
}

// RenderMarkdown prints the table as GitHub-flavored markdown, for pasting
// measured rows into EXPERIMENTS.md-style documents.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	b.WriteString("| Filter | Attributes | B-score | Top Processes | Top Threads |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s | %s | %.3f | %s | %s |\n",
			r.Spec, r.Attr, r.BScore,
			strings.Join(r.TopProcesses, ", "),
			strings.Join(r.TopThreads, ", "))
	}
	return b.String()
}
