// Package lulesh is a proxy for LULESH 2.0 (Livermore Unstructured
// Lagrangian Explicit Shock Hydrodynamics, the DOE miniapp of §V): it
// reproduces LULESH2's *call skeleton* — the LagrangeLeapFrog hierarchy,
// per-region material kernels, OpenMP element loops, and MPI halo
// exchanges — over a real (if simplified) explicit time integration of
// per-element state.
//
// §V uses LULESH only as a source of large, loopy, many-function traces, so
// the proxy's fidelity target is trace-level: hundreds of distinct function
// names (scaling with Regions), 10⁵–10⁶ calls per process (scaling with
// EdgeElems and Cycles), nested loop structure for NLR, and a halo exchange
// whose absence stalls neighbors. The §V fault — rank 2 never invoking
// LagrangeLeapFrog, "in charge of updating domain distances and
// send/receive MPI messages" — is injected as a SkipFunction fault and
// trips the deadlock detector, so every process's trace is truncated, which
// is why Table IX flags all of them.
package lulesh

import (
	"fmt"
	"math"

	"difftrace/internal/faults"
	"difftrace/internal/mpi"
	"difftrace/internal/omp"
	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	Procs     int // MPI processes (the paper uses 8)
	Threads   int // OpenMP threads per process (the paper uses 4)
	EdgeElems int // elements per cube edge (domain = EdgeElems³ elements)
	Regions   int // material regions (real LULESH defaults to 11)
	ChunkSize int // elements per OpenMP work chunk
	Cycles    int // time steps (§V runs a single cycle)
	Plan      *faults.Plan
	Tracer    *parlot.Tracer
	Clock     *otf.Log // optional logical-clock recorder (otf.NewLog(Procs))
}

func (c *Config) defaults() {
	if c.Procs == 0 {
		c.Procs = 8
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.EdgeElems == 0 {
		c.EdgeElems = 6
	}
	if c.Regions == 0 {
		c.Regions = 11
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 16
	}
	if c.Cycles == 0 {
		c.Cycles = 1
	}
}

// Result summarizes a run.
type Result struct {
	FinalEnergy []float64 // per-process domain energy checksum
	Deadlocked  bool
	// Witness lists, for a deadlocked run, the operation each rank was
	// blocked in when the detector fired.
	Witness []string
}

// domain is one process's simulation state.
type domain struct {
	cfg    *Config
	rank   int
	elems  int
	e      []float64 // element energy
	p      []float64 // element pressure
	q      []float64 // artificial viscosity
	v      []float64 // relative volume
	dt     float64
	region *omp.Region
	th     *parlot.ThreadTracer // master thread tracer (may be nil)
}

// Run executes the proxy. Injected deadlocks surface in Result.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("lulesh: need at least 2 processes")
	}
	res := &Result{FinalEnergy: make([]float64, cfg.Procs)}
	world := mpi.NewWorld(cfg.Procs, 1<<20)
	if cfg.Clock != nil {
		world.AttachClock(cfg.Clock)
	}
	err := world.Run(cfg.Tracer, func(r *mpi.Rank) error {
		e, err := rankMain(r, &cfg)
		res.FinalEnergy[r.UntracedRank()] = e
		return err
	})
	if err == mpi.ErrDeadlock {
		res.Deadlocked = true
		res.Witness = world.DeadlockWitness()
		return res, nil
	}
	return res, err
}

func rankMain(r *mpi.Rank, cfg *Config) (float64, error) {
	rank := r.UntracedRank()
	var th *parlot.ThreadTracer
	if cfg.Tracer != nil {
		th = cfg.Tracer.Thread(trace.TID(rank, 0))
	}
	d := &domain{
		cfg:    cfg,
		rank:   rank,
		elems:  cfg.EdgeElems * cfg.EdgeElems * cfg.EdgeElems,
		dt:     1e-7,
		region: omp.NewRegion(rank, cfg.Tracer),
		th:     th,
	}
	d.e = make([]float64, d.elems)
	d.p = make([]float64, d.elems)
	d.q = make([]float64, d.elems)
	d.v = make([]float64, d.elems)
	for i := range d.v {
		d.v[i] = 1
		d.e[i] = float64(rank+1) * 1e-3
	}

	if th != nil {
		th.Enter("main")
	}
	r.Init()
	r.Rank()
	r.Size()
	d.call("InitMeshDecomp", func() {})

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		if err := d.timeIncrement(r); err != nil {
			return 0, err
		}
		if cfg.Plan.Active(faults.SkipFunction, rank, 0, cycle) &&
			cfg.Plan.Find(faults.SkipFunction, rank, 0, cycle).Target == "LagrangeLeapFrog" {
			continue // §V bug: rank never updates the domain or communicates
		}
		if err := d.lagrangeLeapFrog(r, cycle); err != nil {
			return 0, err
		}
	}
	if err := r.Finalize(); err != nil {
		return 0, err
	}
	if th != nil {
		th.Exit("main")
	}
	sum := 0.0
	for _, v := range d.e {
		sum += v
	}
	return sum, nil
}

// call traces fn on the master thread.
func (d *domain) call(name string, fn func()) {
	if d.th != nil {
		d.th.Enter(name)
		defer d.th.Exit(name)
	}
	fn()
}

// callErr is call with an error-returning body; a failed body (deadlock
// abort) suppresses the exit event, leaving the trace truncated inside.
func (d *domain) callErr(name string, fn func() error) error {
	if d.th != nil {
		d.th.Enter(name)
	}
	if err := fn(); err != nil {
		return err
	}
	if d.th != nil {
		d.th.Exit(name)
	}
	return nil
}

// forElems runs a leaf kernel over every element chunk, distributed across
// the OpenMP threads, tracing one leaf call per chunk on the owning thread.
func (d *domain) forElems(leaf string, count int, body func(i int)) {
	chunks := (count + d.cfg.ChunkSize - 1) / d.cfg.ChunkSize
	d.region.Parallel(d.cfg.Threads, func(t *omp.Thread) {
		th := t.Tracer()
		for c := t.Num(); c < chunks; c += d.cfg.Threads {
			if th != nil {
				th.Enter(leaf)
			}
			lo := c * d.cfg.ChunkSize
			hi := lo + d.cfg.ChunkSize
			if hi > count {
				hi = count
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
			if th != nil {
				th.Exit(leaf)
			}
		}
	})
}

// forElemsSub is forElems for kernels that, like real LULESH's stress and
// hourglass integrations, call a fixed sequence of per-element helpers for
// every chunk. The resulting mid-length repeated call pattern is exactly
// what distinguishes NLR at K=50 from K=10 in the §V statistics: the helper
// sequence exceeds a K=10 window but folds at K=50.
func (d *domain) forElemsSub(leaf string, subs []string, count int, body func(i int)) {
	chunks := (count + d.cfg.ChunkSize - 1) / d.cfg.ChunkSize
	d.region.Parallel(d.cfg.Threads, func(t *omp.Thread) {
		th := t.Tracer()
		for c := t.Num(); c < chunks; c += d.cfg.Threads {
			if th != nil {
				th.Enter(leaf)
			}
			lo := c * d.cfg.ChunkSize
			hi := lo + d.cfg.ChunkSize
			if hi > count {
				hi = count
			}
			for _, sub := range subs {
				if th != nil {
					th.Enter(sub)
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
				if th != nil {
					th.Exit(sub)
				}
			}
			if th != nil {
				th.Exit(leaf)
			}
		}
	})
}

// stressHelpers and hourglassHelpers mirror the per-element call stacks of
// real LULESH's IntegrateStressForElems and CalcFBHourglassForceForElems.
var stressHelpers = []string{
	"CollectDomainNodesToElemNodes",
	"CalcElemShapeFunctionDerivatives",
	"CalcElemNodeNormals",
	"SumElemFaceNormal_x", "SumElemFaceNormal_y", "SumElemFaceNormal_z",
	"SumElemFaceNormal_xi", "SumElemFaceNormal_eta", "SumElemFaceNormal_zeta",
	"SumElemStressesToNodeForces",
}

var hourglassHelpers = []string{
	"CollectDomainNodesToElemNodes",
	"CalcElemVolumeDerivative",
	"VoluDer_x", "VoluDer_y", "VoluDer_z",
	"CalcElemFBHourglassForce_g0", "CalcElemFBHourglassForce_g1",
	"CalcElemFBHourglassForce_g2", "CalcElemFBHourglassForce_g3",
	"CalcElemFBHourglassForce_g4", "CalcElemFBHourglassForce_g5",
	"CalcElemFBHourglassForce_g6", "CalcElemFBHourglassForce_g7",
}

// timeIncrement is LULESH's TimeIncrement: the global dt Allreduce.
func (d *domain) timeIncrement(r *mpi.Rank) error {
	return d.callErr("TimeIncrement", func() error {
		localDt := d.dt * (1 + 1e-4*float64(d.rank))
		global, err := r.Allreduce([]float64{localDt}, mpi.MIN)
		if err != nil {
			return err
		}
		d.dt = global[0]
		return nil
	})
}

func (d *domain) neighbors() []int {
	var out []int
	if d.rank > 0 {
		out = append(out, d.rank-1)
	}
	if d.rank < d.cfg.Procs-1 {
		out = append(out, d.rank+1)
	}
	return out
}

// commRecvPost posts non-blocking receives for the neighbors' halos —
// real LULESH's CommRecv posts MPI_Irecv before computing, overlapping
// communication with the force computation.
func (d *domain) commRecvPost(r *mpi.Rank, tag int) ([]*mpi.Request, error) {
	var reqs []*mpi.Request
	err := d.callErr("CommRecv", func() error {
		for _, nb := range d.neighbors() {
			req, err := r.Irecv(nb, tag)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return nil
	})
	return reqs, err
}

// commSend posts non-blocking halo sends to both neighbors (LULESH's
// CommSend uses MPI_Isend).
func (d *domain) commSend(r *mpi.Rank, tag int) ([]*mpi.Request, error) {
	var reqs []*mpi.Request
	err := d.callErr("CommSend", func() error {
		halo := []float64{d.e[0], d.p[0], d.q[0], d.v[0]}
		for _, nb := range d.neighbors() {
			req, err := r.Isend(nb, tag, halo)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return nil
	})
	return reqs, err
}

// commWait completes the posted requests under the given traced name
// (LULESH's CommSBN / CommSyncPosVel wait-and-unpack phases).
func (d *domain) commWait(r *mpi.Rank, name string, recvs, sends []*mpi.Request) error {
	return d.callErr(name, func() error {
		for _, req := range recvs {
			halo, err := r.Wait(req)
			if err != nil {
				return err
			}
			d.e[0] += 1e-9 * halo[0] // fold the halo into boundary state
		}
		for _, req := range sends {
			if _, err := r.Wait(req); err != nil {
				return err
			}
		}
		return nil
	})
}

// lagrangeLeapFrog is the §V function "in charge of updating domain
// distances and send/receive MPI messages from other processes".
func (d *domain) lagrangeLeapFrog(r *mpi.Rank, cycle int) error {
	return d.callErr("LagrangeLeapFrog", func() error {
		if err := d.lagrangeNodal(r, cycle); err != nil {
			return err
		}
		if err := d.lagrangeElements(r, cycle); err != nil {
			return err
		}
		d.calcTimeConstraints()
		return nil
	})
}

func (d *domain) lagrangeNodal(r *mpi.Rank, cycle int) error {
	return d.callErr("LagrangeNodal", func() error {
		if err := d.callErr("CalcForceForNodes", func() error {
			// LULESH's overlap pattern: post receives, send halos, compute
			// forces, then wait in CommSBN.
			recvs, err := d.commRecvPost(r, cycle*2)
			if err != nil {
				return err
			}
			sends, err := d.commSend(r, cycle*2)
			if err != nil {
				return err
			}
			d.call("CalcVolumeForceForElems", func() {
				d.forElems("InitStressTermsForElems", d.elems, func(i int) {
					d.p[i] = d.e[i] * 0.3
				})
				d.forElemsSub("IntegrateStressForElems", stressHelpers, d.elems, func(i int) {
					d.q[i] = d.p[i] * 0.1
				})
				d.call("CalcHourglassControlForElems", func() {
					d.forElemsSub("CalcFBHourglassForceForElems", hourglassHelpers, d.elems, func(i int) {
						d.e[i] += 1e-6 * d.q[i]
					})
				})
			})
			return d.commWait(r, "CommSBN", recvs, sends)
		}); err != nil {
			return err
		}
		d.forElems("CalcAccelerationForNodes", d.elems, func(i int) {
			d.v[i] += d.dt * d.p[i]
		})
		d.call("ApplyAccelerationBoundaryConditionsForNodes", func() {})
		d.forElems("CalcVelocityForNodes", d.elems, func(i int) {
			d.v[i] *= 1 - 1e-9
		})
		d.forElems("CalcPositionForNodes", d.elems, func(i int) {
			d.e[i] += d.dt * d.v[i] * 1e-3
		})
		// CommSyncPosVel: second halo exchange of the nodal phase.
		recvs, err := d.commRecvPost(r, cycle*2+1)
		if err != nil {
			return err
		}
		sends, err := d.commSend(r, cycle*2+1)
		if err != nil {
			return err
		}
		return d.commWait(r, "CommSyncPosVel", recvs, sends)
	})
}

func (d *domain) lagrangeElements(r *mpi.Rank, cycle int) error {
	return d.callErr("LagrangeElements", func() error {
		d.call("CalcLagrangeElements", func() {
			d.forElems("CalcKinematicsForElems", d.elems, func(i int) {
				d.v[i] = math.Max(1e-9, d.v[i]*(1+1e-8))
			})
		})
		d.call("CalcQForElems", func() {
			d.forElems("CalcMonotonicQGradientsForElems", d.elems, func(i int) {
				d.q[i] = math.Abs(d.q[i]) * 0.99
			})
			for reg := 0; reg < d.cfg.Regions; reg++ {
				lo, hi := d.regionSpan(reg)
				d.forElems(fmt.Sprintf("CalcMonotonicQRegionForElems_r%d", reg), hi-lo, func(i int) {
					d.q[lo+i] *= 0.999
				})
			}
		})
		d.call("ApplyMaterialPropertiesForElems", func() {
			for reg := 0; reg < d.cfg.Regions; reg++ {
				d.evalEOS(reg)
			}
		})
		d.forElems("UpdateVolumesForElems", d.elems, func(i int) {
			d.v[i] = math.Min(d.v[i], 10)
		})
		return nil
	})
}

// regionSpan maps a region index to its contiguous element range.
func (d *domain) regionSpan(reg int) (lo, hi int) {
	per := d.elems / d.cfg.Regions
	lo = reg * per
	hi = lo + per
	if reg == d.cfg.Regions-1 {
		hi = d.elems
	}
	return lo, hi
}

// evalEOS is the region-specialized equation-of-state evaluation: LULESH
// compiles one instance per material region, so each region contributes its
// own family of function names to the trace.
func (d *domain) evalEOS(reg int) {
	lo, hi := d.regionSpan(reg)
	n := hi - lo
	d.call(fmt.Sprintf("EvalEOSForElems_r%d", reg), func() {
		for pass := 0; pass < 3; pass++ { // LULESH's e_old/e_new/q_new passes
			d.forElems(fmt.Sprintf("CalcEnergyForElems_r%d_p%d", reg, pass), n, func(i int) {
				d.e[lo+i] += 1e-7 * (d.p[lo+i] + d.q[lo+i])
			})
		}
		d.forElems(fmt.Sprintf("CalcPressureForElems_r%d", reg), n, func(i int) {
			d.p[lo+i] = d.e[lo+i] * 0.3
		})
		d.forElems(fmt.Sprintf("CalcSoundSpeedForElems_r%d", reg), n, func(i int) {
			d.q[lo+i] = math.Sqrt(math.Abs(d.p[lo+i]))
		})
	})
}

func (d *domain) calcTimeConstraints() {
	d.call("CalcTimeConstraintsForElems", func() {
		for reg := 0; reg < d.cfg.Regions; reg++ {
			lo, hi := d.regionSpan(reg)
			n := hi - lo
			d.forElems(fmt.Sprintf("CalcCourantConstraintForElems_r%d", reg), n, func(i int) {
				_ = d.q[lo+i]
			})
			d.forElems(fmt.Sprintf("CalcHydroConstraintForElems_r%d", reg), n, func(i int) {
				_ = d.v[lo+i]
			})
		}
		d.dt *= 1.0001 // allow the step to grow, as LULESH does
	})
}
