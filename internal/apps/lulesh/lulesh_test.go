package lulesh

import (
	"strings"
	"testing"

	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func smallConfig() Config {
	return Config{Procs: 4, Threads: 2, EdgeElems: 4, Regions: 5, ChunkSize: 8, Cycles: 2}
}

func TestFaultFreeRunCompletes(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("fault-free run deadlocked")
	}
	for p, e := range res.FinalEnergy {
		if e <= 0 {
			t.Errorf("process %d energy = %f", p, e)
		}
	}
}

func TestTooFewProcs(t *testing.T) {
	if _, err := Run(Config{Procs: 1}); err == nil {
		t.Error("1-process run accepted")
	}
}

func TestCallSkeleton(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	cfg := smallConfig()
	cfg.Tracer = tr
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	set := tr.Collect()
	master := set.Traces[trace.TID(1, 0)].Names(set.Registry)
	joined := strings.Join(master, " ")
	for _, want := range []string{
		"main", "MPI_Init", "InitMeshDecomp", "TimeIncrement", "MPI_Allreduce",
		"LagrangeLeapFrog", "LagrangeNodal", "CalcForceForNodes", "CommSend",
		"MPI_Isend", "CommRecv", "MPI_Irecv", "CommSBN", "MPI_Wait", "LagrangeElements",
		"ApplyMaterialPropertiesForElems", "EvalEOSForElems_r0",
		"CalcTimeConstraintsForElems", "MPI_Finalize",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("master trace missing %s", want)
		}
	}
	// LagrangeLeapFrog appears once per cycle.
	if n := strings.Count(joined, "LagrangeLeapFrog "); n != cfg.Cycles {
		t.Errorf("LagrangeLeapFrog calls = %d, want %d", n, cfg.Cycles)
	}
}

func TestWorkerThreadsRunElementKernels(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	cfg := smallConfig()
	cfg.Tracer = tr
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	set := tr.Collect()
	if len(set.Traces) != cfg.Procs*cfg.Threads {
		t.Fatalf("traces = %d, want %d", len(set.Traces), cfg.Procs*cfg.Threads)
	}
	worker := set.Traces[trace.TID(0, 1)].Names(set.Registry)
	kernels := 0
	for _, n := range worker {
		if strings.HasPrefix(n, "Calc") || strings.HasPrefix(n, "InitStress") ||
			strings.HasPrefix(n, "IntegrateStress") || strings.HasPrefix(n, "UpdateVolumes") {
			kernels++
		}
		if strings.HasPrefix(n, "MPI_") {
			t.Errorf("worker made MPI call %s", n)
		}
	}
	if kernels == 0 {
		t.Errorf("worker ran no kernels: %v", worker[:min(10, len(worker))])
	}
}

func TestDistinctFunctionsScaleWithRegions(t *testing.T) {
	count := func(regions int) int {
		tr := parlot.NewTracer(parlot.MainImage)
		cfg := smallConfig()
		cfg.Regions = regions
		cfg.Tracer = tr
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return tr.Collect().DistinctFuncs()
	}
	few := count(3)
	many := count(10)
	if many <= few {
		t.Errorf("distinct functions: %d regions -> %d, %d regions -> %d", 3, few, 10, many)
	}
	// Each region adds its kernel family (9 names: QRegion, EvalEOS,
	// 3 energy passes, pressure, sound speed, courant, hydro).
	if got, want := many-few, 7*9; got != want {
		t.Errorf("region family delta = %d, want %d", got, want)
	}
}

func TestSkipLagrangeLeapFrogDeadlocks(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	cfg := smallConfig()
	cfg.Tracer = tr
	cfg.Plan = faults.NewPlan(faults.Fault{
		Kind: faults.SkipFunction, Process: 2, Thread: -1, Target: "LagrangeLeapFrog",
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("skipping LagrangeLeapFrog did not stall the job")
	}
	set := tr.Collect()
	// Rank 2 never called LagrangeLeapFrog; its neighbors' traces are
	// truncated waiting on it.
	r2 := strings.Join(set.Traces[trace.TID(2, 0)].Names(set.Registry), " ")
	if strings.Contains(r2, "LagrangeLeapFrog") {
		t.Error("rank 2 called LagrangeLeapFrog despite the fault")
	}
	for p := 0; p < cfg.Procs; p++ {
		tc := set.Traces[trace.TID(p, 0)]
		if !tc.Truncated {
			t.Errorf("rank %d trace not truncated", p)
		}
		names := tc.Names(set.Registry)
		for _, n := range names {
			if n == "MPI_Finalize" {
				t.Errorf("rank %d reached MPI_Finalize", p)
			}
		}
	}
}

func TestTraceIsLoopyAcrossCycles(t *testing.T) {
	// More cycles -> proportionally more calls (the NLR fodder of §V).
	calls := func(cycles int) int {
		tr := parlot.NewTracer(parlot.MainImage)
		cfg := smallConfig()
		cfg.Cycles = cycles
		cfg.Tracer = tr
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return tr.Collect().TotalEvents()
	}
	c1, c3 := calls(1), calls(3)
	if c3 < c1*2 {
		t.Errorf("cycles=1: %d events, cycles=3: %d events", c1, c3)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
