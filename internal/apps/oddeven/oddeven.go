// Package oddeven is the paper's running example (Figure 2): a textbook MPI
// odd/even transposition sort. Even phases pair even ranks with their right
// neighbors, odd phases pair odd ranks with theirs; each pair exchanges
// values and keeps the sorted halves.
//
// Fault sites (§II-G, with the default 16-rank configuration):
//
//   - swapBug: the targeted rank swaps its Recv;Send order after the given
//     iteration. Head-to-head Send||Send completes under the eager limit —
//     a *potential* deadlock only — but the loop body changes, which NLR
//     summarization surfaces as L1^7 followed by L0^9 (Figure 5).
//   - dlBug: the targeted rank parks in a receive nobody matches, an actual
//     deadlock; the detector aborts the world, truncating every trace
//     (Figure 6).
package oddeven

import (
	"fmt"
	"math/rand" //lint:allow wallclock seeded from Config.Seed only — the generated trace is a pure function of the config
	"sync"

	"difftrace/internal/faults"
	"difftrace/internal/mpi"
	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// Config parameterizes one run.
type Config struct {
	Procs      int // number of MPI ranks (4 in Table II, 16 in §II-G)
	EagerLimit int // elements; payloads stay below it (swapBug must not hang)
	Seed       int64
	Plan       *faults.Plan
	Tracer     *parlot.Tracer
	Clock      *otf.Log // optional logical-clock recorder (otf.NewLog(Procs))
}

// Result reports the run outcome.
type Result struct {
	Values     []float64 // final per-rank values (valid when Err == nil)
	Deadlocked bool
	// Witness lists, for a deadlocked run, the operation each rank was
	// blocked in when the detector fired.
	Witness []string
}

// Run executes the sort and returns the result. A deadlock abort is
// reported in Result, not as an error (it is an *expected* outcome of the
// dlBug plan; the traces are the point).
func Run(cfg Config) (*Result, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("oddeven: need at least 2 ranks, got %d", cfg.Procs)
	}
	if cfg.EagerLimit <= 0 {
		cfg.EagerLimit = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	initial := make([]float64, cfg.Procs)
	for i := range initial {
		initial[i] = float64(rng.Intn(1000))
	}

	res := &Result{Values: make([]float64, cfg.Procs)}
	var mu sync.Mutex
	world := mpi.NewWorld(cfg.Procs, cfg.EagerLimit)
	if cfg.Clock != nil {
		world.AttachClock(cfg.Clock)
	}
	err := world.Run(cfg.Tracer, func(r *mpi.Rank) error {
		var th *parlot.ThreadTracer
		if cfg.Tracer != nil {
			th = cfg.Tracer.Thread(trace.TID(rankOf(r), 0))
		}
		v, err := rankMain(r, th, initial[rankOf(r)], cfg.Plan)
		if err != nil {
			return err
		}
		mu.Lock()
		res.Values[rankOf(r)] = v
		mu.Unlock()
		return nil
	})
	if err == mpi.ErrDeadlock {
		res.Deadlocked = true
		res.Witness = world.DeadlockWitness()
		return res, nil
	}
	return res, err
}

// rankOf extracts the rank index without tracing (r.Rank() traces).
func rankOf(r *mpi.Rank) int { return r.UntracedRank() }

// rankMain is Figure 2's main(): MPI setup, oddEvenSort, MPI_Finalize.
func rankMain(r *mpi.Rank, th *parlot.ThreadTracer, value float64, plan *faults.Plan) (float64, error) {
	if th != nil {
		th.Enter("main")
	}
	r.Init()
	rank := r.Rank()
	cp := r.Size()

	v, err := oddEvenSort(r, th, rank, cp, value, plan)
	if err != nil {
		return 0, err
	}
	if err := r.Finalize(); err != nil {
		return 0, err
	}
	if th != nil {
		th.Exit("main")
	}
	return v, nil
}

// oddEvenSort is Figure 2's oddEvenSort(): cp phases of neighbor exchange.
func oddEvenSort(r *mpi.Rank, th *parlot.ThreadTracer, rank, cp int, value float64, plan *faults.Plan) (float64, error) {
	if th != nil {
		th.Enter("oddEvenSort")
		defer th.Exit("oddEvenSort")
	}
	for i := 0; i < cp; i++ {
		ptr := findPtr(th, i, rank)
		if ptr < 0 || ptr >= cp {
			continue // edge ranks sit out half the phases (Table II note)
		}
		if plan.Active(faults.DeadlockStop, rank, 0, i) {
			// dlBug: an actual deadlock — a receive nobody will match.
			return 0, r.Hang("MPI_Recv")
		}
		sendFirst := rank%2 == 0
		if plan.Active(faults.SwapSendRecv, rank, 0, i) {
			sendFirst = !sendFirst
		}
		var other float64
		if sendFirst {
			if err := r.Send(ptr, i, []float64{value}); err != nil {
				return 0, err
			}
			got, err := r.Recv(ptr, i)
			if err != nil {
				return 0, err
			}
			other = got[0]
		} else {
			got, err := r.Recv(ptr, i)
			if err != nil {
				return 0, err
			}
			other = got[0]
			if err := r.Send(ptr, i, []float64{value}); err != nil {
				return 0, err
			}
		}
		// Conditional swap: the left partner keeps the minimum.
		if rank < ptr {
			value = min(value, other)
		} else {
			value = max(value, other)
		}
	}
	return value, nil
}

// findPtr is Figure 2's partner computation: in even phases even ranks look
// right, in odd phases odd ranks look right.
func findPtr(th *parlot.ThreadTracer, phase, rank int) int {
	if th != nil {
		th.Enter("findPtr")
		defer th.Exit("findPtr")
	}
	if phase%2 == rank%2 {
		return rank + 1
	}
	return rank - 1
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
