package oddeven

import (
	"sort"
	"testing"

	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/nlr"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func TestFaultFreeSorts(t *testing.T) {
	res, err := Run(Config{Procs: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("fault-free run deadlocked")
	}
	if !sort.Float64sAreSorted(res.Values) {
		t.Errorf("values not sorted: %v", res.Values)
	}
}

func TestTooFewRanks(t *testing.T) {
	if _, err := Run(Config{Procs: 1}); err == nil {
		t.Error("1-rank run accepted")
	}
}

// mpiCalls filters a trace down to MPI functions, as Table II/III do.
func mpiCalls(set *trace.TraceSet, p int) []string {
	f := filter.New(filter.MPIAll)
	return f.Apply(set.Traces[trace.TID(p, 0)], set.Registry).Names(set.Registry)
}

func TestTableIITraceShape(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	res, err := Run(Config{Procs: 4, Seed: 1, Tracer: tr})
	if err != nil || res.Deadlocked {
		t.Fatal(err, res)
	}
	set := tr.Collect()
	if len(set.Traces) != 4 {
		t.Fatalf("traces = %d", len(set.Traces))
	}
	// Table II: every trace starts Init/Comm_rank/Comm_size and ends
	// Finalize; interior ranks exchange 4 times, edge ranks twice.
	for p := 0; p < 4; p++ {
		calls := mpiCalls(set, p)
		if calls[0] != "MPI_Init" || calls[len(calls)-1] != "MPI_Finalize" {
			t.Errorf("T%d = %v", p, calls)
		}
		sends := 0
		for _, c := range calls {
			if c == "MPI_Send" {
				sends++
			}
		}
		wantSends := 4
		if p == 0 || p == 3 {
			wantSends = 2
		}
		if sends != wantSends {
			t.Errorf("T%d sends = %d, want %d", p, sends, wantSends)
		}
	}
	// Even ranks send first; odd ranks receive first.
	c0, c1 := mpiCalls(set, 0), mpiCalls(set, 1)
	if c0[3] != "MPI_Send" {
		t.Errorf("T0 first exchange = %v", c0[3])
	}
	if c1[3] != "MPI_Recv" {
		t.Errorf("T1 first exchange = %v", c1[3])
	}
}

func TestTableIIINLRShape(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	if _, err := Run(Config{Procs: 4, Seed: 1, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	set := filter.New(filter.MPIAll).ApplySet(tr.Collect())
	tbl := nlr.NewTable()
	sums := nlr.SummarizeSet(set, 10, tbl)
	// Every trace must reduce to: Init, rank, size, one loop token,
	// Finalize (Table III).
	for p := 0; p < 4; p++ {
		toks := nlr.Tokens(sums[trace.TID(p, 0)])
		if len(toks) != 5 {
			t.Errorf("T%d NLR = %v", p, toks)
			continue
		}
		if toks[0] != "MPI_Init" || toks[4] != "MPI_Finalize" {
			t.Errorf("T%d NLR = %v", p, toks)
		}
	}
	// Edge ranks loop half as often as interior ones.
	t0 := nlr.Tokens(sums[trace.TID(0, 0)])[3]
	t2 := nlr.Tokens(sums[trace.TID(2, 0)])[3]
	if t0 == t2 {
		t.Errorf("edge and interior loops identical: %s vs %s", t0, t2)
	}
}

func TestSwapBugCompletesWithChangedLoops(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	plan := faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	})
	res, err := Run(Config{Procs: 16, Seed: 3, Plan: plan, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("swapBug must complete under the eager limit (a potential deadlock only)")
	}
	set := filter.New(filter.MPIAll).ApplySet(tr.Collect())
	sums := nlr.SummarizeSet(set, 10, nlr.NewTable())
	toks := nlr.Tokens(sums[trace.TID(5, 0)])
	// Figure 5 shape: two loop tokens between the prologue and Finalize.
	if len(toks) != 6 {
		t.Fatalf("T'5 NLR = %v, want prologue + 2 loops + finalize", toks)
	}
	if toks[len(toks)-1] != "MPI_Finalize" {
		t.Errorf("T'5 should reach MPI_Finalize: %v", toks)
	}
	// An unaffected rank still has a single 16-iteration loop.
	toks8 := nlr.Tokens(sums[trace.TID(8, 0)])
	if len(toks8) != 5 {
		t.Errorf("T'8 NLR = %v", toks8)
	}
}

func TestDlBugDeadlocksAndTruncates(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	plan := faults.NewPlan(faults.Fault{
		Kind: faults.DeadlockStop, Process: 5, Thread: -1, AfterIteration: 7,
	})
	res, err := Run(Config{Procs: 16, Seed: 3, Plan: plan, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("dlBug did not deadlock")
	}
	set := tr.Collect()
	t5 := set.Traces[trace.TID(5, 0)]
	if !t5.Truncated {
		t.Error("T'5 not truncated")
	}
	names := t5.Names(set.Registry)
	if names[len(names)-1] != "MPI_Recv" {
		t.Errorf("T'5 should end in the blocked MPI_Recv: ...%v", names[len(names)-5:])
	}
	// Figure 6: T'5 never reaches MPI_Finalize.
	for _, n := range names {
		if n == "MPI_Finalize" {
			t.Error("T'5 reached MPI_Finalize despite deadlock")
		}
	}
}

func TestSwapBugKeepsResultSorted(t *testing.T) {
	// The swap changes call order, not the data exchanged: output stays
	// sorted (a "hidden" fault, per the paper's motivation).
	plan := faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	})
	res, err := Run(Config{Procs: 16, Seed: 9, Plan: plan})
	if err != nil || res.Deadlocked {
		t.Fatal(err, res)
	}
	if !sort.Float64sAreSorted(res.Values) {
		t.Errorf("values not sorted: %v", res.Values)
	}
}

func TestDlBugWitness(t *testing.T) {
	plan := faults.NewPlan(faults.Fault{
		Kind: faults.DeadlockStop, Process: 5, Thread: -1, AfterIteration: 7,
	})
	res, err := Run(Config{Procs: 16, Seed: 3, Plan: plan})
	if err != nil || !res.Deadlocked {
		t.Fatal(err, res)
	}
	if len(res.Witness) != 16 {
		t.Fatalf("witness covers %d ranks: %v", len(res.Witness), res.Witness)
	}
	found := false
	for _, w := range res.Witness {
		if w == "rank 5 blocked in MPI_Recv(hang)" {
			found = true
		}
	}
	if !found {
		t.Errorf("witness missing the hung rank: %v", res.Witness)
	}
}
