package ilcs

import (
	"math"
	"math/rand" //lint:allow wallclock instance generation is seeded by the caller — tours are a pure function of the seed
)

// tsp is the user-provided serial code of Listing 1's bottom half: a
// Traveling Salesman instance solved by random restart + 2-opt improvement
// (Johnson & McGeoch's classic local search, the paper's reference [24]).
type tsp struct {
	n    int
	dist [][]float64
}

// newTSP generates a random Euclidean instance. Every rank generates the
// same instance from the same seed (ILCS ships the input to all nodes).
func newTSP(cities int, seed int64) *tsp {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, cities)
	ys := make([]float64, cities)
	for i := 0; i < cities; i++ {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	d := make([][]float64, cities)
	for i := range d {
		d[i] = make([]float64, cities)
		for j := range d[i] {
			d[i][j] = math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		}
	}
	return &tsp{n: cities, dist: d}
}

// tourLen computes the closed-tour length.
func (t *tsp) tourLen(tour []int) float64 {
	total := 0.0
	for i := range tour {
		total += t.dist[tour[i]][tour[(i+1)%len(tour)]]
	}
	return total
}

// exec is CPU_Exec for a fresh random restart: a seeded random tour
// improved by 2-opt to a local minimum; returns the tour length.
func (t *tsp) exec(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	v, _ := t.execFrom(rng.Perm(t.n))
	return v
}

// execFrom is CPU_Exec refining a given starting tour (the iterated local
// search mode: the framework hands workers the current champion to refine).
// It 2-opts to a local minimum and returns the length and the tour.
func (t *tsp) execFrom(start []int) (float64, []int) {
	tour := append([]int(nil), start...)
	improved := true
	for improved {
		improved = false
		for i := 0; i < t.n-1; i++ {
			for j := i + 1; j < t.n; j++ {
				// Gain of reversing tour[i+1..j]: replace edges
				// (i,i+1) and (j,j+1) with (i,j) and (i+1,j+1).
				a, b := tour[i], tour[(i+1)%t.n]
				c, d := tour[j], tour[(j+1)%t.n]
				if a == c || b == d {
					continue
				}
				delta := t.dist[a][c] + t.dist[b][d] - t.dist[a][b] - t.dist[c][d]
				if delta < -1e-9 {
					reverse(tour, i+1, j)
					improved = true
				}
			}
		}
	}
	return t.tourLen(tour), tour
}

// doubleBridge is the classic ILS perturbation kick: cut the tour into four
// segments and reconnect them in a different order — a move 2-opt cannot
// undo in one step.
func doubleBridge(tour []int, rng *rand.Rand) []int {
	n := len(tour)
	if n < 8 {
		out := append([]int(nil), tour...)
		rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	p1 := 1 + rng.Intn(n/4)
	p2 := p1 + 1 + rng.Intn(n/4)
	p3 := p2 + 1 + rng.Intn(n/4)
	out := make([]int, 0, n)
	out = append(out, tour[:p1]...)
	out = append(out, tour[p3:]...)
	out = append(out, tour[p2:p3]...)
	out = append(out, tour[p1:p2]...)
	return out
}

func reverse(tour []int, i, j int) {
	for i < j {
		tour[i], tour[j] = tour[j], tour[i]
		i++
		j--
	}
}
