// Package ilcs reproduces the paper's §IV case study: the ILCS framework
// (Burtscher & Rabeti's scalable Iterative Local Champion Search) running a
// Traveling Salesman 2-opt solver, ported line-for-line from Listing 1.
//
// Every MPI process runs one master thread (thread 0) and a set of OpenMP
// worker threads. Workers repeatedly call CPU_Exec (a real 2-opt TSP local
// search) and record improved local champions under an OpenMP critical
// section; the master periodically Allreduces the global champion value and
// its owner, broadcasts the champion tour, and terminates the search once
// the champion stops changing — so the per-thread CPU_Exec call counts are
// genuinely asynchronous, as the paper notes for Figure 7a.
//
// Fault sites (§IV-B/C/D):
//
//   - OmitCritical{process, thread}: that worker's champion update skips
//     the critical section — its GOMP_critical_* calls vanish from the
//     trace (the unprotected-memcpy race of Table VI);
//   - WrongCollectiveSize{process}: the master passes a wrong payload size
//     to its first champion Allreduce, deadlocking the whole job early
//     (Table VII);
//   - WrongReduceOp{process}: MPI_MIN becomes MPI_MAX in the champion
//     Allreduce, silently changing the search's semantics (Table VIII).
package ilcs

import (
	"fmt"
	"math"
	"math/rand" //lint:allow wallclock seeded per (rank,tid) from Config.Seed only — worker RNG streams are a pure function of the config
	"runtime"
	"sync"
	"sync/atomic"

	"difftrace/internal/faults"
	"difftrace/internal/mpi"
	"difftrace/internal/omp"
	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// Config parameterizes one ILCS-TSP run.
type Config struct {
	Procs      int   // MPI processes (the paper uses 8)
	Workers    int   // OpenMP worker threads per process (the paper uses 4)
	Cities     int   // TSP instance size
	Seed       int64 // instance + search seed
	EagerLimit int   // MPI eager limit in elements
	// StableRounds terminates the search after this many champion rounds
	// without change; MaxRounds caps the loop regardless (the wrong-op bug
	// keeps the champion churning, so the cap bounds the run).
	StableRounds int
	MaxRounds    int
	// EvalsPerRound paces the master: each champion round waits until the
	// node's workers completed this many further CPU_Exec evaluations, so
	// a "round" represents real search progress (on the paper's cluster
	// the pacing is wall-clock time; here it is logical).
	EvalsPerRound int
	Plan          *faults.Plan
	Tracer        *parlot.Tracer
	Clock         *otf.Log // optional logical-clock recorder (otf.NewLog(Procs))
}

func (c *Config) defaults() {
	if c.Procs == 0 {
		c.Procs = 8
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Cities == 0 {
		c.Cities = 16
	}
	if c.EagerLimit == 0 {
		c.EagerLimit = 1 << 16
	}
	if c.StableRounds == 0 {
		c.StableRounds = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 24
	}
	if c.EvalsPerRound == 0 {
		c.EvalsPerRound = 8
	}
}

// Result reports a run's outcome.
type Result struct {
	// Champion is the tour length the system *reports*: the last champion
	// value broadcast to rank 0. Under the §IV-D wrong-operation fault this
	// is corrupted — "the modified code computes the worst answer".
	Champion float64
	// BestFound is the best tour length any worker actually found (the
	// ground truth the report should have matched).
	BestFound  float64
	Rounds     []int // champion rounds executed per master
	Deadlocked bool
	// Witness lists, for a deadlocked run, the operation each rank was
	// blocked in when the detector fired.
	Witness []string
}

// champEntry is one recorded local champion: its tour length and the tour
// itself (Listing 1's champ[rank] structure of champSize elements).
type champEntry struct {
	val  float64
	tour []int
}

// champBox holds one worker's local champion. Entries are immutable and the
// pointer is swapped atomically, so the *injected* race (OmitCritical)
// perturbs the trace without introducing an actual torn read in the
// simulator (the paper's race corrupts data; ours corrupts the evidence the
// debugger sees, which is the part DiffTrace analyzes).
type champBox struct{ p atomic.Pointer[champEntry] }

func (c *champBox) load() float64 {
	if e := c.p.Load(); e != nil {
		return e.val
	}
	return math.Inf(1)
}

func (c *champBox) entry() *champEntry { return c.p.Load() }

func (c *champBox) store(e *champEntry) { c.p.Store(e) }

// Run executes the job. Deadlocks (from injected faults) are reported in
// the Result; other errors are returned.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("ilcs: need at least 2 processes")
	}
	problem := newTSP(cfg.Cities, cfg.Seed)

	res := &Result{Rounds: make([]int, cfg.Procs)}
	var mu sync.Mutex
	world := mpi.NewWorld(cfg.Procs, cfg.EagerLimit)
	if cfg.Clock != nil {
		world.AttachClock(cfg.Clock)
	}
	err := world.Run(cfg.Tracer, func(r *mpi.Rank) error {
		rounds, reported, best, err := nodeMain(r, &cfg, problem)
		mu.Lock()
		res.Rounds[r.UntracedRank()] = rounds
		if r.UntracedRank() == 0 {
			res.Champion = reported
			res.BestFound = best
		}
		mu.Unlock()
		return err
	})
	if err == mpi.ErrDeadlock {
		res.Deadlocked = true
		res.Witness = world.DeadlockWitness()
		return res, nil
	}
	return res, err
}

// nodeMain is Listing 1's main() for one MPI process.
func nodeMain(r *mpi.Rank, cfg *Config, problem *tsp) (rounds int, reported, best float64, err error) {
	myRank := r.UntracedRank()
	var masterTh *parlot.ThreadTracer
	if cfg.Tracer != nil {
		masterTh = cfg.Tracer.Thread(trace.TID(myRank, 0))
	}
	traced := func(th *parlot.ThreadTracer, name string, fn func()) {
		if th != nil {
			th.Enter(name)
			defer th.Exit(name)
		}
		fn()
	}

	if masterTh != nil {
		masterTh.Enter("main")
	}
	r.Init()
	r.Size()
	rank := r.Rank()

	// Obtain the total number of CPUs/GPUs (lines 7-8). No GPU code is
	// provided, matching the paper's setup.
	if _, err = r.Reduce(0, []float64{float64(cfg.Workers)}, mpi.SUM); err != nil {
		return 0, 0, 0, err
	}
	if _, err = r.Reduce(0, []float64{0}, mpi.SUM); err != nil {
		return 0, 0, 0, err
	}

	// champSize = CPU_Init() (line 10).
	champSize := 0
	traced(masterTh, "CPU_Init", func() { champSize = problem.n + 1 })

	if err = r.Barrier(); err != nil { // line 13
		return 0, 0, 0, err
	}

	// Shared node state for the parallel region: the termination flag, the
	// evaluation counter, the per-thread champion boxes, and the currently
	// adopted global champion tour that workers refine (ILCS is an
	// *iterated* local search: the broadcast champion seeds further work).
	// evalsCap bounds the node's total evaluations to what the round budget
	// can consume, so worker traces stay proportional to the search length
	// (on the paper's cluster the wall-clock termination plays this role).
	var cont atomic.Bool
	var evals atomic.Int64     // evaluations completed on this node
	var roundsCtr atomic.Int64 // champion rounds completed by the master
	var active atomic.Int64    // workers still evaluating
	var adopted atomic.Pointer[[]int]
	active.Store(int64(cfg.Workers))
	cont.Store(true)
	champs := make([]champBox, cfg.Workers+1)

	region := omp.NewRegion(myRank, cfg.Tracer)
	var masterErr error
	var roundsDone int
	var reportedVal float64
	region.Parallel(cfg.Workers+1, func(t *omp.Thread) {
		tid := t.Num() // line 15: rank = omp_get_thread_num()
		if tid != 0 {
			workerLoop(t, tid, myRank, cfg, problem, &cont, &evals, &roundsCtr, &active, &adopted, &champs[tid])
			return
		}
		roundsDone, reportedVal, masterErr = masterLoop(r, t, rank, cfg, &cont, &evals, &roundsCtr, &active, &adopted, champs, champSize)
	})
	if masterErr != nil {
		return roundsDone, 0, 0, masterErr
	}

	best = math.Inf(1)
	for i := range champs {
		if v := champs[i].load(); v < best {
			best = v
		}
	}
	if rank == 0 { // line 38: CPU_Output
		traced(masterTh, "CPU_Output", func() {})
	}
	if err = r.Finalize(); err != nil {
		return roundsDone, 0, 0, err
	}
	if masterTh != nil {
		masterTh.Exit("main")
	}
	return roundsDone, reportedVal, best, nil
}

// workerLoop is Listing 1 lines 16-21: evaluate seeds until told to stop,
// recording improved champions under the (possibly omitted) critical
// section.
func workerLoop(t *omp.Thread, tid, myRank int, cfg *Config, problem *tsp,
	cont *atomic.Bool, evals, rounds, active *atomic.Int64,
	adopted *atomic.Pointer[[]int], champ *champBox) {
	defer active.Add(-1)
	th := t.Tracer()
	rng := newWorkerRNG(cfg.Seed, myRank, tid)
	// Sliding-window throttle: workers stay at most two champion rounds
	// ahead of the master, so the broadcast champion genuinely feeds back
	// into the iterated search (on the paper's cluster this interleaving
	// comes from wall-clock pacing). Every worker still gets a minimum
	// share even when faster siblings drained the window first.
	minIters := 2
	iter := 0
	for cont.Load() {
		limit := int64(cfg.EvalsPerRound) * (rounds.Load() + 2)
		if iter >= minIters && evals.Load() >= limit {
			runtime.Gosched()
			continue
		}
		// line 17: calculate seed — unique per (rank, thread, iteration);
		// the evaluation either restarts from a fresh random tour or
		// refines (perturb + 2-opt) the currently adopted champion.
		var start []int
		if base := adopted.Load(); base != nil && iter%2 == 1 {
			start = doubleBridge(*base, rng)
		} else {
			start = rng.Perm(problem.n)
		}
		var local float64
		var tour []int
		if th != nil {
			th.Enter("CPU_Exec")
		}
		local, tour = problem.execFrom(start) // line 18
		if th != nil {
			th.Exit("CPU_Exec")
		}
		evals.Add(1)
		if local < champ.load() { // line 19
			protect := !cfg.Plan.Active(faults.OmitCritical, myRank, tid, iter)
			t.Critical("champ", protect, func() { // line 20 (#pragma omp critical)
				if th != nil {
					th.Enter("memcpy")
				}
				champ.store(&champEntry{val: local, tour: tour}) // line 20: memcpy
				if th != nil {
					th.Exit("memcpy")
				}
			})
		}
		iter++
	}
}

// newWorkerRNG derives a per-thread RNG from the run seed.
func newWorkerRNG(seed int64, rank, tid int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(rank*1_000_000+tid*10_000)))
}

// masterLoop is Listing 1 lines 22-37: reduce the global champion, identify
// its owner, broadcast the tour, and decide termination.
func masterLoop(r *mpi.Rank, t *omp.Thread, rank int, cfg *Config,
	cont *atomic.Bool, evals, roundsDone, active *atomic.Int64,
	adopted *atomic.Pointer[[]int],
	champs []champBox, champSize int) (rounds int, reported float64, err error) {
	defer cont.Store(false) // line 36: signal worker threads to terminate
	th := t.Tracer()

	prevVal := math.Inf(1)
	prevPid := -1
	stable := 0
	for rounds < cfg.MaxRounds {
		rounds++
		// Pace the round on real search progress: round r starts once the
		// node's workers completed r×EvalsPerRound evaluations in total
		// (the master's "scan the results of the workers" phase of §IV-A).
		// The cumulative schedule always lies within the workers' sliding
		// window, so master and workers cannot stall each other.
		need := int64(rounds) * int64(cfg.EvalsPerRound)
		for evals.Load() < need && active.Load() > 0 {
			runtime.Gosched()
		}
		// Local champion = best across this node's workers, with its tour.
		local := math.Inf(1)
		var localTour []int
		for i := range champs {
			if e := champs[i].entry(); e != nil && e.val < local {
				local = e.val
				localTour = e.tour
			}
		}

		// line 23: broadcast the global champion (value).
		op := mpi.MIN
		if cfg.Plan.Active(faults.WrongReduceOp, rank, 0, rounds-1) {
			op = mpi.MAX // §IV-D: the silent wrong-operation bug
		}
		payload := []float64{local}
		if cfg.Plan.Active(faults.WrongCollectiveSize, rank, 0, rounds-1) {
			payload = make([]float64, 1+3) // §IV-C: wrong size -> deadlock
			payload[0] = local
		}
		global, err := r.Allreduce(payload, op)
		if err != nil {
			return rounds, prevVal, err
		}
		// line 24: broadcast the global champion P_id (owner rank; MINLOC
		// emulated by reducing the owner candidates).
		owner := []float64{math.Inf(1)}
		if local == global[0] {
			owner[0] = float64(rank)
		}
		ownerRes, err := r.Allreduce(owner, mpi.MIN)
		if err != nil {
			return rounds, prevVal, err
		}
		champPid := int(ownerRes[0])
		if math.IsInf(ownerRes[0], 1) {
			// Wrong-op runs can yield a global value no node claims
			// (MAX of minima vs local minima): fall back to rank 0.
			champPid = 0
		}

		// lines 25-30: the champion's owner copies its champion (value and
		// tour) into the broadcast buffer under the critical section.
		buf := make([]float64, champSize)
		if rank == champPid {
			t.Critical("champ", true, func() {
				if th != nil {
					th.Enter("memcpy")
				}
				buf[0] = local
				for i, c := range localTour {
					if 1+i < len(buf) {
						buf[1+i] = float64(c)
					}
				}
				if th != nil {
					th.Exit("memcpy")
				}
			})
		}
		got, err := r.Bcast(champPid, buf) // line 31
		if err != nil {
			return rounds, prevVal, err
		}
		// Adopt the broadcast champion as the node's new search base (the
		// "iterative" in Iterative Local Champion Search). Under the
		// wrong-op fault the adopted tour can be a hijacked, inferior one,
		// which visibly changes the workers' subsequent behaviour.
		if len(got) > 1 {
			tour := make([]int, 0, len(got)-1)
			for _, c := range got[1:] {
				tour = append(tour, int(c))
			}
			if validTour(tour, cfg.Cities) {
				adopted.Store(&tour)
			}
		}

		// lines 33-34: terminate when the champion stops changing. The
		// decision uses the *broadcast* champion (identical at every rank,
		// so the masters stay in lockstep even when the injected wrong-op
		// fault makes their Allreduce views diverge). Under that fault the
		// champion's apparent owner oscillates between the corrupted
		// rank's view and the true best node, so the broadcast value keeps
		// changing and the loop runs to its cap — the paper's "many more
		// MPI_Bcast calls" effect (§IV-D) — yet still terminates.
		if got[0] == prevVal && champPid == prevPid {
			stable++
		} else {
			stable = 0
		}
		prevVal, prevPid = got[0], champPid
		roundsDone.Store(int64(rounds))
		if stable >= cfg.StableRounds {
			break
		}
	}
	return rounds, prevVal, nil
}

// validTour checks a decoded broadcast tour is a permutation of 0..n-1.
func validTour(tour []int, n int) bool {
	if len(tour) != n {
		return false
	}
	seen := make([]bool, n)
	for _, c := range tour {
		if c < 0 || c >= n || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}
