package ilcs

import (
	"math"
	"testing"

	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func smallConfig() Config {
	return Config{
		Procs: 4, Workers: 2, Cities: 10, Seed: 7,
		StableRounds: 2, MaxRounds: 8,
	}
}

func TestTSPSolverFindsLocalMinimum(t *testing.T) {
	p := newTSP(10, 1)
	l1 := p.exec(1)
	l2 := p.exec(2)
	if l1 <= 0 || l2 <= 0 {
		t.Fatalf("tour lengths: %f %f", l1, l2)
	}
	// 2-opt from any seed is no worse than a fixed random tour's length.
	tour := make([]int, 10)
	for i := range tour {
		tour[i] = i
	}
	if l1 > p.tourLen(tour)*2 {
		t.Errorf("2-opt result implausibly bad: %f", l1)
	}
}

func TestTSPInstanceDeterministic(t *testing.T) {
	a, b := newTSP(12, 5), newTSP(12, 5)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if a.dist[i][j] != b.dist[i][j] {
				t.Fatal("instance generation not deterministic")
			}
		}
	}
	if newTSP(12, 6).dist[0][1] == a.dist[0][1] {
		t.Error("different seeds gave identical instances")
	}
}

func TestFaultFreeRunCompletes(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("fault-free run deadlocked")
	}
	if math.IsInf(res.Champion, 1) || res.Champion <= 0 {
		t.Errorf("champion = %f", res.Champion)
	}
	for p, rounds := range res.Rounds {
		if rounds < 1 {
			t.Errorf("process %d did %d rounds", p, rounds)
		}
	}
}

func TestTracesHaveMastersAndWorkers(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	cfg := smallConfig()
	cfg.Tracer = tr
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	set := tr.Collect()
	if len(set.Traces) != cfg.Procs*(cfg.Workers+1) {
		t.Fatalf("traces = %d, want %d", len(set.Traces), cfg.Procs*(cfg.Workers+1))
	}
	// Master trace: MPI + GOMP + CPU_Init; worker traces: CPU_Exec.
	master := set.Traces[trace.TID(0, 0)].Names(set.Registry)
	hasMPI, hasInit := false, false
	for _, n := range master {
		if n == "MPI_Allreduce" {
			hasMPI = true
		}
		if n == "CPU_Init" {
			hasInit = true
		}
		if n == "CPU_Exec" {
			t.Error("master should not run CPU_Exec")
		}
	}
	if !hasMPI || !hasInit {
		t.Errorf("master calls = %v", master)
	}
	worker := set.Traces[trace.TID(0, 1)].Names(set.Registry)
	execs := 0
	for _, n := range worker {
		if n == "CPU_Exec" {
			execs++
		}
		if n == "MPI_Allreduce" {
			t.Error("worker should not call MPI")
		}
	}
	if execs == 0 {
		t.Errorf("worker ran no CPU_Exec: %v", worker)
	}
}

func TestOmitCriticalRemovesGOMPCalls(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	cfg := smallConfig()
	cfg.Tracer = tr
	cfg.Plan = faults.NewPlan(faults.Fault{
		Kind: faults.OmitCritical, Process: 2, Thread: 1,
	})
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	set := tr.Collect()
	// The buggy worker still memcpys but never enters the critical section.
	buggy := set.Traces[trace.TID(2, 1)].Names(set.Registry)
	memcpys, criticals := 0, 0
	for _, n := range buggy {
		switch n {
		case "memcpy":
			memcpys++
		case "GOMP_critical_start":
			criticals++
		}
	}
	if memcpys == 0 {
		t.Error("buggy worker never updated its champion (seed-dependent?)")
	}
	if criticals != 0 {
		t.Errorf("buggy worker entered %d critical sections, want 0", criticals)
	}
	// A healthy worker that updated its champion did use the section.
	healthy := set.Traces[trace.TID(2, 2)].Names(set.Registry)
	hMem, hCrit := 0, 0
	for _, n := range healthy {
		switch n {
		case "memcpy":
			hMem++
		case "GOMP_critical_start":
			hCrit++
		}
	}
	if hMem > 0 && hCrit == 0 {
		t.Error("healthy worker updated champion without critical section")
	}
}

func TestWrongCollectiveSizeDeadlocks(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	cfg := smallConfig()
	cfg.Tracer = tr
	cfg.Plan = faults.NewPlan(faults.Fault{
		Kind: faults.WrongCollectiveSize, Process: 2, Thread: -1,
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("wrong-size collective did not deadlock")
	}
	set := tr.Collect()
	// Every master trace ends inside MPI_Allreduce and never reaches
	// MPI_Finalize (the Figure 7b shape).
	for p := 0; p < cfg.Procs; p++ {
		names := set.Traces[trace.TID(p, 0)].Names(set.Registry)
		last := names[len(names)-1]
		if last != "MPI_Allreduce" {
			t.Errorf("master %d last call = %s", p, last)
		}
		for _, n := range names {
			if n == "MPI_Finalize" {
				t.Errorf("master %d reached MPI_Finalize", p)
			}
		}
		if !set.Traces[trace.TID(p, 0)].Truncated {
			t.Errorf("master %d trace not truncated", p)
		}
	}
}

func TestWrongReduceOpCompletesWithMoreRounds(t *testing.T) {
	base := smallConfig()
	normal, err := Run(base)
	if err != nil || normal.Deadlocked {
		t.Fatal(err, normal)
	}
	buggy := smallConfig()
	buggy.Plan = faults.NewPlan(faults.Fault{
		Kind: faults.WrongReduceOp, Process: 0, Thread: -1,
	})
	res, err := Run(buggy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("wrong-op run deadlocked")
	}
	// The semantics change keeps the champion churning: the faulty search
	// must not terminate before the normal one (§IV-D: "many more
	// MPI_Bcast calls").
	if res.Rounds[0] < normal.Rounds[0] {
		t.Errorf("faulty rounds %d < normal rounds %d", res.Rounds[0], normal.Rounds[0])
	}
}

func TestTooFewProcs(t *testing.T) {
	if _, err := Run(Config{Procs: 1}); err == nil {
		t.Error("1-process run accepted")
	}
}
