// Package classify implements the paper's future-work item 3: "conducting
// systematic bug-injection to see whether concept lattices and loop
// structures can be used as elevated features for precise bug
// classifications via machine learning" (§VII).
//
// A feature vector is extracted from one DiffTrace comparison (the pipeline
// report plus the raw trace sets): B-scores, JSM_D statistics, truncation
// and progress measures — exactly the "elevated features" the lattice/NLR
// stages produce. The classifier is a z-score-normalized nearest-centroid
// model: deliberately simple, stdlib-only, and easily inspectable; the
// experiment measures leave-one-out accuracy over systematically injected
// bugs of the paper's classes.
package classify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"difftrace/internal/core"
	"difftrace/internal/progress"
	"difftrace/internal/trace"
)

// FeatureNames labels the vector dimensions, in order.
var FeatureNames = []string{
	"bscore_threads",
	"bscore_processes",
	"frac_truncated",
	"top_suspect_score",
	"suspect_ratio",
	"mean_jsmd",
	"max_jsmd",
	"event_ratio",
	"progress_min",
	"progress_mean",
}

// Dim is the feature-vector dimensionality.
const Dim = 10

// Vector is one extracted feature vector.
type Vector [Dim]float64

// String renders name=value pairs.
func (v Vector) String() string {
	parts := make([]string, Dim)
	for i, n := range FeatureNames {
		parts[i] = fmt.Sprintf("%s=%.3f", n, v[i])
	}
	return strings.Join(parts, " ")
}

// Features extracts the vector from one comparison. rep must come from
// core.DiffRun over the two sets; K is the NLR constant for the progress
// measure.
func Features(rep *core.Report, normal, faulty *trace.TraceSet, k int) Vector {
	var v Vector
	v[0] = rep.Threads.BScore
	v[1] = rep.Processes.BScore

	total, truncated := 0, 0
	for _, tr := range faulty.Traces {
		total++
		if tr.Truncated {
			truncated++
		}
	}
	if total > 0 {
		v[2] = float64(truncated) / float64(total)
	}

	sus := rep.Threads.Suspects
	if len(sus) > 0 {
		v[3] = sus[0].Score
		flagged := 0
		for _, s := range sus {
			if s.Score > 1e-9 {
				flagged++
			}
		}
		v[4] = float64(flagged) / float64(len(sus))
	}

	jsmd := rep.Threads.JSMD
	sum, max, cells := 0.0, 0.0, 0
	for i := range jsmd.M {
		for j := range jsmd.M[i] {
			if i == j {
				continue
			}
			sum += jsmd.M[i][j]
			if jsmd.M[i][j] > max {
				max = jsmd.M[i][j]
			}
			cells++
		}
	}
	if cells > 0 {
		v[5] = sum / float64(cells)
	}
	v[6] = max

	ne, fe := normal.TotalEvents(), faulty.TotalEvents()
	if ne > 0 {
		v[7] = float64(fe) / float64(ne)
	}

	pa := progress.Analyze(normal, faulty, k)
	if len(pa.Tasks) > 0 {
		v[8] = pa.Tasks[0].Score // tasks sorted ascending: min progress
		mean := 0.0
		for _, t := range pa.Tasks {
			mean += t.Score
		}
		v[9] = mean / float64(len(pa.Tasks))
	}
	return v
}

// Sample is one labeled observation.
type Sample struct {
	Label  string
	Vector Vector
}

// Model is a nearest-centroid classifier over z-score-normalized features.
type Model struct {
	Mean, Std Vector
	Centroids map[string]Vector
}

// Train fits centroids from the samples. At least two classes are required.
func Train(samples []Sample) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("classify: no samples")
	}
	m := &Model{Centroids: make(map[string]Vector)}
	// Global mean/std for normalization.
	for _, s := range samples {
		for i := range s.Vector {
			m.Mean[i] += s.Vector[i]
		}
	}
	for i := range m.Mean {
		m.Mean[i] /= float64(len(samples))
	}
	for _, s := range samples {
		for i := range s.Vector {
			d := s.Vector[i] - m.Mean[i]
			m.Std[i] += d * d
		}
	}
	for i := range m.Std {
		m.Std[i] = math.Sqrt(m.Std[i] / float64(len(samples)))
		if m.Std[i] < 1e-12 {
			m.Std[i] = 1 // constant feature: no effect after centering
		}
	}
	// Per-class centroids in normalized space.
	counts := map[string]int{}
	sums := map[string]Vector{}
	for _, s := range samples {
		z := m.normalize(s.Vector)
		acc := sums[s.Label]
		for i := range z {
			acc[i] += z[i]
		}
		sums[s.Label] = acc
		counts[s.Label]++
	}
	if len(counts) < 2 {
		return nil, fmt.Errorf("classify: need at least 2 classes, got %d", len(counts))
	}
	for label, acc := range sums {
		for i := range acc {
			acc[i] /= float64(counts[label])
		}
		m.Centroids[label] = acc
	}
	return m, nil
}

func (m *Model) normalize(v Vector) Vector {
	var z Vector
	for i := range v {
		z[i] = (v[i] - m.Mean[i]) / m.Std[i]
	}
	return z
}

// Predict returns the nearest centroid's label and the distance margin
// (runner-up distance minus winner distance; larger = more confident).
func (m *Model) Predict(v Vector) (string, float64) {
	z := m.normalize(v)
	type cand struct {
		label string
		dist  float64
	}
	var cands []cand
	for label, c := range m.Centroids {
		d := 0.0
		for i := range z {
			diff := z[i] - c[i]
			d += diff * diff
		}
		cands = append(cands, cand{label, math.Sqrt(d)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].label < cands[j].label
	})
	margin := math.Inf(1)
	if len(cands) > 1 {
		margin = cands[1].dist - cands[0].dist
	}
	return cands[0].label, margin
}

// LeaveOneOut computes leave-one-out accuracy over the samples and the
// per-sample predictions.
func LeaveOneOut(samples []Sample) (float64, []string, error) {
	if len(samples) < 3 {
		return 0, nil, fmt.Errorf("classify: too few samples for LOO")
	}
	preds := make([]string, len(samples))
	correct := 0
	for i := range samples {
		train := make([]Sample, 0, len(samples)-1)
		train = append(train, samples[:i]...)
		train = append(train, samples[i+1:]...)
		m, err := Train(train)
		if err != nil {
			return 0, nil, err
		}
		preds[i], _ = m.Predict(samples[i].Vector)
		if preds[i] == samples[i].Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), preds, nil
}

// ConfusionMatrix renders label-vs-prediction counts.
func ConfusionMatrix(samples []Sample, preds []string) string {
	labels := map[string]bool{}
	for _, s := range samples {
		labels[s.Label] = true
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	counts := map[[2]string]int{}
	for i, s := range samples {
		counts[[2]string{s.Label, preds[i]}]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "true\\pred")
	for _, p := range sorted {
		fmt.Fprintf(&b, " %-10s", p)
	}
	b.WriteByte('\n')
	for _, l := range sorted {
		fmt.Fprintf(&b, "%-12s", l)
		for _, p := range sorted {
			fmt.Fprintf(&b, " %-10d", counts[[2]string{l, p}])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
