package classify

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func synthetic(label string, base float64, rng *rand.Rand) Sample {
	var v Vector
	for i := range v {
		v[i] = base + rng.Float64()*0.1
	}
	return Sample{Label: label, Vector: v}
}

func TestTrainPredictSeparableClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, synthetic("low", 0, rng), synthetic("high", 5, rng))
	}
	m, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	label, margin := m.Predict(synthetic("", 0.05, rng).Vector)
	if label != "low" || margin <= 0 {
		t.Errorf("predict = %s margin %f", label, margin)
	}
	label, _ = m.Predict(synthetic("", 4.9, rng).Vector)
	if label != "high" {
		t.Errorf("predict = %s", label)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty training accepted")
	}
	one := []Sample{{Label: "a"}, {Label: "a"}}
	if _, err := Train(one); err == nil {
		t.Error("single class accepted")
	}
}

func TestLeaveOneOut(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 6; i++ {
		samples = append(samples, synthetic("a", 0, rng), synthetic("b", 3, rng))
	}
	acc, preds, err := LeaveOneOut(samples)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("separable LOO accuracy = %f", acc)
	}
	cm := ConfusionMatrix(samples, preds)
	if !strings.Contains(cm, "a") || !strings.Contains(cm, "6") {
		t.Errorf("confusion matrix:\n%s", cm)
	}
	if _, _, err := LeaveOneOut(samples[:2]); err == nil {
		t.Error("tiny LOO accepted")
	}
}

func TestConstantFeatureDoesNotNaN(t *testing.T) {
	samples := []Sample{
		{Label: "a", Vector: Vector{1, 0}},
		{Label: "b", Vector: Vector{2, 0}},
		{Label: "a", Vector: Vector{1.1, 0}},
		{Label: "b", Vector: Vector{2.1, 0}},
	}
	m, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	label, margin := m.Predict(Vector{1.05, 0})
	if label != "a" {
		t.Errorf("predict = %s", label)
	}
	if margin != margin { // NaN check
		t.Error("margin is NaN")
	}
}

func TestFeaturesFromRealComparison(t *testing.T) {
	reg := trace.NewRegistry()
	run := func(p *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		if _, err := oddeven.Run(oddeven.Config{Procs: 8, Seed: 3, Plan: p, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		return tr.Collect()
	}
	normal := run(nil)
	plan, _ := faults.Named("dlBug")
	plan.Faults[0].Process = 3 // inject into a valid rank for 8 procs
	faulty := run(plan)

	cfg := core.DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	rep, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := Features(rep, normal, faulty, 10)
	if v[2] == 0 {
		t.Error("deadlock run should have truncated traces")
	}
	if v[7] >= 1 {
		t.Errorf("deadlocked run should have fewer events: ratio %f", v[7])
	}
	if v[8] >= 1 || v[8] < 0 {
		t.Errorf("min progress = %f", v[8])
	}
	if !strings.Contains(v.String(), "frac_truncated=") {
		t.Errorf("vector string: %s", v.String())
	}
	// Identical runs produce a near-zero-difference vector.
	same, err := core.DiffRun(normal, normal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2 := Features(same, normal, normal, 10)
	if v2[5] != 0 || v2[6] != 0 || v2[0] != 1 {
		t.Errorf("self comparison features: %s", v2.String())
	}
}

// Property: Predict always returns one of the trained labels, and
// normalization keeps distances finite.
func TestQuickPredictTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var samples []Sample
		for i := 0; i < 4; i++ {
			samples = append(samples,
				synthetic("x", rng.Float64()*2, rng),
				synthetic("y", 3+rng.Float64()*2, rng))
		}
		m, err := Train(samples)
		if err != nil {
			return false
		}
		label, margin := m.Predict(synthetic("", rng.Float64()*5, rng).Vector)
		if label != "x" && label != "y" {
			return false
		}
		return margin == margin && margin >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
