package core

import (
	"bytes"
	"strings"
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/parlot"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/trace"
)

// collect runs odd/even with the given plan over a shared registry so
// normal and faulty traces align.
func collect(t *testing.T, procs int, reg *trace.Registry, plan *faults.Plan) *trace.TraceSet {
	t.Helper()
	tr := parlot.NewTracerWith(parlot.MainImage, reg)
	_, err := oddeven.Run(oddeven.Config{Procs: procs, Seed: 5, Plan: plan, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Collect()
}

func swapPlan() *faults.Plan {
	return faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	})
}

func dlPlan() *faults.Plan {
	return faults.NewPlan(faults.Fault{
		Kind: faults.DeadlockStop, Process: 5, Thread: -1, AfterIteration: 7,
	})
}

func TestDiffRunIdenticalExecutions(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	same := collect(t, 8, reg, nil)
	rep, err := DiffRun(normal, same, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threads.BScore != 1 {
		t.Errorf("identical runs B-score = %f, want 1", rep.Threads.BScore)
	}
	if got := rep.Threads.TopSuspects(5, 1e-9); len(got) != 0 {
		t.Errorf("identical runs flagged suspects %v", got)
	}
}

func TestSwapBugFlagsRank5(t *testing.T) {
	// §II-G: with 16 processes, trace 5 appears as the most affected.
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())
	cfg := DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if top := rep.Threads.Suspects[0].Name; top != "5.0" {
		t.Errorf("top thread suspect = %s, want 5.0 (all: %v)", top, rep.Threads.TopSuspects(4, 0))
	}
	if top := rep.Processes.Suspects[0].Name; top != "5" {
		t.Errorf("top process suspect = %s, want 5", top)
	}
	if rep.Threads.BScore >= 1 {
		t.Errorf("faulty B-score = %f, want < 1", rep.Threads.BScore)
	}
}

func TestFigure5DiffNLR(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())
	rep, err := DiffRun(normal, faulty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := rep.DiffNLR(rep.Threads, "5.0")
	if err != nil {
		t.Fatal(err)
	}
	if d.Identical() {
		t.Fatal("diffNLR(5) found no differences")
	}
	out := d.Render(false)
	// Figure 5 essentials: normal one loop token, faulty two; both reach
	// MPI_Finalize.
	if !strings.Contains(d.Verdict(), "both traces reach MPI_Finalize") {
		t.Errorf("verdict = %q", d.Verdict())
	}
	if !strings.Contains(out, "L") {
		t.Errorf("render has no loop tokens:\n%s", out)
	}
	// Unaffected rank: identical.
	d8, err := rep.DiffNLR(rep.Threads, "8.0")
	if err != nil {
		t.Fatal(err)
	}
	if !d8.Identical() {
		t.Errorf("diffNLR(8) should be identical:\n%s", d8.Render(false))
	}
}

func TestFigure6DeadlockDiffNLR(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, dlPlan())
	rep, err := DiffRun(normal, faulty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := rep.DiffNLR(rep.Threads, "5.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Verdict(), "never reached MPI_Finalize") {
		t.Errorf("verdict = %q", d.Verdict())
	}
}

func TestLatticeModeAgreesWithDirect(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	direct, err := DiffRun(normal, faulty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BuildLattices = true
	viaLattice, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if viaLattice.Threads.Normal.Lattice == nil {
		t.Fatal("lattice mode built no lattice")
	}
	if err := viaLattice.Threads.Normal.Lattice.Verify(); err != nil {
		t.Fatal(err)
	}
	a, b := direct.Threads.JSMD, viaLattice.Threads.JSMD
	for i := range a.M {
		for j := range a.M[i] {
			if a.M[i][j] != b.M[i][j] {
				t.Fatalf("JSM_D differs between lattice and direct mode at (%d,%d)", i, j)
			}
		}
	}
}

func TestLinkageMethodsAllRun(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	for _, m := range cluster.AllMethods() {
		cfg := DefaultConfig()
		cfg.Linkage = m
		if _, err := DiffRun(normal, faulty, cfg); err != nil {
			t.Errorf("linkage %v: %v", m, err)
		}
	}
}

func TestAttrConfigsAllRun(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	for _, ac := range attr.AllConfigs() {
		cfg := DefaultConfig()
		cfg.Attr = ac
		rep, err := DiffRun(normal, faulty, cfg)
		if err != nil {
			t.Errorf("attrs %v: %v", ac, err)
			continue
		}
		if len(rep.Threads.Suspects) != 8 {
			t.Errorf("attrs %v: %d suspects", ac, len(rep.Threads.Suspects))
		}
	}
}

func TestNilFilterDefaultsToEverything(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 4, reg, nil)
	faulty := collect(t, 4, reg, nil)
	rep, err := DiffRun(normal, faulty, Config{Attr: attr.Config{Kind: attr.Single, Freq: attr.NoFreq}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cfg.Filter == nil {
		t.Error("filter not defaulted")
	}
}

func TestDiffNLRUnknownObject(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 4, reg, nil)
	rep, err := DiffRun(normal, normal, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.DiffNLR(rep.Threads, "99.9"); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestMissingThreadBecomesEmptyObject(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 4, reg, nil)
	faulty := collect(t, 4, reg, nil)
	// Simulate a thread that only exists in the normal run.
	extra := normal.Get(trace.TID(3, 7))
	extra.Append(reg.ID("ghost"), trace.Enter)
	rep, err := DiffRun(normal, faulty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threads.Normal.JSM.Size() != rep.Threads.Faulty.JSM.Size() {
		t.Error("levels not aligned")
	}
	if _, err := rep.DiffNLR(rep.Threads, "3.7"); err != nil {
		t.Errorf("missing-side object not diffable: %v", err)
	}
}

func TestWriteReportSections(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())
	cfg := DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	cfg.BuildLattices = true
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = rep.WriteReport(&buf, RenderOptions{
		TopK: 2, Heatmaps: true, Dendrograms: true, Lattices: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DiffTrace report", "filter:", "== threads ==", "== processes ==",
		"B-score:", "B_k  k=", "5.0", "JSM_D heatmap", "normal dendrogram",
		"faulty concept lattice", "diffNLR(5.0)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportSummary(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())
	cfg := DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if !strings.Contains(s, "5.0") || !strings.Contains(s, "diffNLR(5.0)") {
		t.Errorf("summary = %q", s)
	}
	same, err := DiffRun(normal, normal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(same.Summary(), "no behavioural differences") {
		t.Errorf("self summary = %q", same.Summary())
	}
	var buf bytes.Buffer
	if err := same.WriteReport(&buf, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "indistinguishable") {
		t.Errorf("self report:\n%s", buf.String())
	}
}

func TestSuspectOverlap(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())
	cfgA := DefaultConfig()
	cfgA.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	repA, err := DiffRun(normal, faulty, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if got := repA.SuspectOverlap(repA, 3); got != 1 {
		t.Errorf("self overlap = %f", got)
	}
	same, _ := DiffRun(normal, normal, cfgA)
	if got := repA.SuspectOverlap(same, 3); got != 0 {
		t.Errorf("disjoint overlap = %f", got)
	}
	if got := same.SuspectOverlap(same, 3); got != 1 {
		t.Errorf("empty-empty overlap = %f", got)
	}
}

func TestContextAttributesRequireReturns(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	cfg := DefaultConfig() // DropReturns = true
	cfg.Attr = attr.Config{Kind: attr.Context, Freq: attr.NoFreq}
	if _, err := DiffRun(normal, faulty, cfg); err == nil {
		t.Fatal("ctx attrs with a return-dropping filter accepted")
	}
	// With returns kept the pipeline runs — and demonstrates the family's
	// blind spot: caller→callee pairs are order-insensitive, so swapping
	// Send/Recv changes no context attribute at all. The swapBug is
	// invisible here (top suspect score 0), which is precisely why the
	// paper's sequence-sensitive NLR attributes matter.
	flt, err := filter.ParseSpec("01.0K10")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Filter = flt
	cfg.Attr = attr.Config{Kind: attr.Context, Freq: attr.Actual}
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if top := rep.Threads.Suspects[0]; top.Score > 1e-9 {
		t.Errorf("ctx attrs should be blind to the order swap; top = %s (%f)", top.Name, top.Score)
	}
	// A truncating bug IS visible to context frequencies.
	faultyDl := collect(t, 8, reg, faults.NewPlan(faults.Fault{
		Kind: faults.DeadlockStop, Process: 3, Thread: -1, AfterIteration: 4,
	}))
	repDl, err := DiffRun(normal, faultyDl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repDl.Threads.Suspects[0].Score <= 0 {
		t.Error("ctx attrs should see the truncation")
	}
}
