package core

import (
	"bytes"
	"strings"
	"testing"

	"difftrace/internal/obs"
	"difftrace/internal/trace"
)

// TestManifestWorkersGolden is the golden-manifest determinism proof: the
// same input analyzed at Workers:1 and Workers:8 (each with its own obs run)
// must produce byte-identical manifests once Scrub removes the fields that
// legitimately vary (wall times, worker counts, utilization, host). The
// name contains "Workers" so the Makefile determinism suite picks it up.
func TestManifestWorkersGolden(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())

	build := func(workers int) []byte {
		run := obs.NewRun("test")
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Obs = run
		if _, err := DiffRun(normal, faulty, cfg); err != nil {
			t.Fatal(err)
		}
		m := run.Manifest()
		obs.Scrub(m)
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	seq := build(1)
	for _, w := range []int{2, 8} {
		par := build(w)
		if !bytes.Equal(seq, par) {
			t.Fatalf("scrubbed manifest differs between Workers:1 and Workers:%d:\n--- seq ---\n%s\n--- par ---\n%s",
				w, seq, par)
		}
	}

	// The golden bytes must actually carry the pipeline's shape, not an
	// empty scrubbed shell.
	for _, want := range []string{
		`"path": "summarize"`, `"path": "analyze"`,
		"nlr.intern.miss", "core.threads.jsm_cells", "core.processes.objects",
		`"site": "core.summarize"`, "nlr.seq_len",
	} {
		if !strings.Contains(string(seq), want) {
			t.Errorf("manifest missing %q", want)
		}
	}
}

// TestObsWorkersReportUnchanged: enabling instrumentation must not perturb
// the analysis itself — a DiffRun with an obs run attached produces the same
// Report as one without, at any worker count.
func TestObsWorkersReportUnchanged(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())

	base := DefaultConfig()
	base.Workers = 1
	plain, err := DiffRun(normal, faulty, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		cfg := base
		cfg.Workers = w
		cfg.Obs = obs.NewRun("test")
		instr, err := DiffRun(normal, faulty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Strip the obs handles before the structural comparison; the
		// report embeds its Config, and the loop table carries its
		// interning counters (Observe(nil) resets them).
		instr.Cfg.Obs = nil
		instr.LoopTable.Observe(nil)
		reportsEqual(t, plain, instr, "instrumented")
	}
}

// TestObsDegradedRecorded: a resilient run's isolated stage failures land in
// the manifest's degraded list in canonical order, with the same entries for
// any worker count.
func TestObsDegradedRecorded(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	withHook(t, func(stage, object string) {
		if object == "3.0" && strings.Contains(stage, "/nlr") {
			panic("injected NLR blow-up")
		}
	})

	build := func(workers int) *obs.Manifest {
		run := obs.NewRun("test")
		cfg := DefaultConfig()
		cfg.Resilient = true
		cfg.Workers = workers
		cfg.Obs = run
		if _, err := DiffRun(normal, faulty, cfg); err != nil {
			t.Fatal(err)
		}
		return run.Manifest()
	}

	seq := build(1)
	if len(seq.Degraded) == 0 {
		t.Fatal("no degraded entries recorded")
	}
	found := false
	for _, d := range seq.Degraded {
		if d.Object == "3.0" && strings.Contains(d.Err, "injected NLR blow-up") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded list missing injected failure: %+v", seq.Degraded)
	}
	if got := seq.Counters["core.degraded"]; got != int64(len(seq.Degraded)) {
		t.Errorf("core.degraded = %d, want %d", got, len(seq.Degraded))
	}

	par := build(8)
	if len(par.Degraded) != len(seq.Degraded) {
		t.Fatalf("degraded count differs across workers: %d vs %d", len(seq.Degraded), len(par.Degraded))
	}
	for i := range seq.Degraded {
		if seq.Degraded[i] != par.Degraded[i] {
			t.Errorf("degraded[%d] differs: %+v vs %+v", i, seq.Degraded[i], par.Degraded[i])
		}
	}
}
