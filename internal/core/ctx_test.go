package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/filter"
	"difftrace/internal/trace"
)

func ctxTestSets() (*trace.TraceSet, *trace.TraceSet) {
	reg := trace.NewRegistry()
	build := func(shift int) *trace.TraceSet {
		s := trace.NewTraceSetWith(reg)
		for p := 0; p < 4; p++ {
			tr := s.Get(trace.TID(p, 0))
			for i := 0; i < 200; i++ {
				fn := reg.ID("fn_" + string(rune('a'+(i+p*shift)%8)))
				tr.Append(fn, trace.Enter)
				tr.Append(fn, trace.Exit)
			}
		}
		return s
	}
	return build(0), build(1)
}

// TestDiffRunContextCancelled: a pre-cancelled ctx aborts the run with the
// wrapped ctx error — with and without Resilient, which must not degrade a
// cancellation into an empty-but-successful report.
func TestDiffRunContextCancelled(t *testing.T) {
	normal, faulty := ctxTestSets()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, resilient := range []bool{false, true} {
		_, err := DiffRunContext(ctx, normal, faulty, Config{
			Filter:    filter.New(filter.MPIAll),
			Attr:      attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
			Linkage:   cluster.Ward,
			Resilient: resilient,
			Workers:   4,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("resilient=%v: err = %v, want context.Canceled", resilient, err)
		}
	}
}

// TestDiffRunContextExpiredDeadline mirrors the per-job deadline path the
// service uses.
func TestDiffRunContextExpiredDeadline(t *testing.T) {
	normal, faulty := ctxTestSets()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	_, err := DiffRunContext(ctx, normal, faulty, Config{
		Filter:  filter.New(filter.MPIAll),
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
		Linkage: cluster.Ward,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestDiffRunContextNilMatchesDiffRun: the ctx-free wrapper and a live ctx
// produce identical reports.
func TestDiffRunContextNilMatchesDiffRun(t *testing.T) {
	normal, faulty := ctxTestSets()
	cfg := Config{
		Filter:  filter.New(filter.MPIAll),
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
		Linkage: cluster.Ward,
		Workers: 4,
	}
	a, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DiffRunContext(context.Background(), normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Threads.BScore != b.Threads.BScore || a.Processes.BScore != b.Processes.BScore {
		t.Fatalf("ctx run diverged: threads %v/%v processes %v/%v",
			a.Threads.BScore, b.Threads.BScore, a.Processes.BScore, b.Processes.BScore)
	}
}
