package core

import (
	"reflect"
	"strings"
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/trace"
)

// reportsEqual deep-compares two reports modulo the Workers knob (the only
// field allowed to differ between the sequential and parallel runs).
func reportsEqual(t *testing.T, a, b *Report, label string) {
	t.Helper()
	ca, cb := *a, *b
	ca.Cfg.Workers, cb.Cfg.Workers = 0, 0
	// Compare the loop tables body-by-body first for a precise message.
	if ca.LoopTable.Len() != cb.LoopTable.Len() {
		t.Fatalf("%s: loop tables differ in size: %d vs %d", label, ca.LoopTable.Len(), cb.LoopTable.Len())
	}
	for id := 0; id < ca.LoopTable.Len(); id++ {
		if ca.LoopTable.Describe(id) != cb.LoopTable.Describe(id) {
			t.Fatalf("%s: loop L%d differs: %s vs %s", label, id, ca.LoopTable.Describe(id), cb.LoopTable.Describe(id))
		}
	}
	for _, lv := range []struct {
		name string
		a, b *Level
	}{{"threads", ca.Threads, cb.Threads}, {"processes", ca.Processes, cb.Processes}} {
		if !reflect.DeepEqual(lv.a.Suspects, lv.b.Suspects) {
			t.Fatalf("%s: %s suspects differ:\n%v\nvs\n%v", label, lv.name, lv.a.Suspects, lv.b.Suspects)
		}
		if lv.a.BScore != lv.b.BScore {
			t.Fatalf("%s: %s B-score %v vs %v", label, lv.name, lv.a.BScore, lv.b.BScore)
		}
		if !reflect.DeepEqual(lv.a.JSMD, lv.b.JSMD) {
			t.Fatalf("%s: %s JSM_D differs", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Normal.NLR, lv.b.Normal.NLR) {
			t.Fatalf("%s: %s normal NLR sequences differ", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Faulty.NLR, lv.b.Faulty.NLR) {
			t.Fatalf("%s: %s faulty NLR sequences differ", label, lv.name)
		}
	}
	if !reflect.DeepEqual(ca.Degraded, cb.Degraded) {
		t.Fatalf("%s: degraded lists differ:\n%v\nvs\n%v", label, ca.Degraded, cb.Degraded)
	}
	// Belt and braces: whole-report structural equality.
	if !reflect.DeepEqual(&ca, &cb) {
		t.Fatalf("%s: reports differ structurally", label)
	}
}

// TestWorkersDeterminism: the report is identical for every worker count,
// across attribute kinds and with lattices on. Run under -race to also
// prove the parallel path is well-synchronized.
func TestWorkersDeterminism(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 16, reg, nil)
	faulty := collect(t, 16, reg, swapPlan())
	cfgs := []Config{
		DefaultConfig(),
		{Filter: DefaultConfig().Filter, Attr: attr.Config{Kind: attr.Single, Freq: attr.Actual}, Linkage: DefaultConfig().Linkage},
		{Filter: DefaultConfig().Filter, Attr: attr.Config{Kind: attr.Double, Freq: attr.Log10}, Linkage: DefaultConfig().Linkage, BuildLattices: true},
	}
	for _, base := range cfgs {
		base.Workers = 1
		seq, err := DiffRun(normal, faulty, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			cfg := base
			cfg.Workers = w
			par, err := DiffRun(normal, faulty, cfg)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, seq, par, base.Attr.String())
		}
	}
}

// TestResilientWorkersDeterminism: injected per-object failures degrade
// identically — same StageErrors, same surviving ranking — for any worker
// count.
func TestResilientWorkersDeterminism(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	withHook(t, func(stage, object string) {
		if (object == "3.0" || object == "6.0") && strings.Contains(stage, "/nlr") {
			panic("injected NLR blow-up")
		}
		if object == "2" && strings.Contains(stage, "/attr") {
			panic("injected attr blow-up")
		}
	})
	cfg := DefaultConfig()
	cfg.Resilient = true
	cfg.Workers = 1
	seq, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Degraded) == 0 {
		t.Fatal("hook injected no failures")
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		par, err := DiffRun(normal, faulty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, seq, par, "resilient")
	}
}

// TestParallelNonResilientPanicPropagates: without Resilient a panic inside
// a worker must still escape DiffRun (re-raised deterministically by the
// pool), matching the historical serial behavior.
func TestParallelNonResilientPanicPropagates(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 4, reg, nil)
	faulty := collect(t, 4, reg, swapPlan())
	withHook(t, func(stage, object string) {
		if object == "1.0" && strings.Contains(stage, "/nlr") {
			panic("injected NLR blow-up")
		}
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("parallel non-resilient DiffRun swallowed the panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Workers = 8
	_, _ = DiffRun(normal, faulty, cfg)
}

// TestWorkersDefault: Workers 0 resolves to GOMAXPROCS and still matches
// the sequential report.
func TestWorkersDefault(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, dlPlan())
	cfg := DefaultConfig()
	cfg.Workers = 1
	seq, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 0
	def, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, seq, def, "default workers")
}

// TestGhostObjectsDeterministic: objects existing on only one side are
// appended in natural name order, so the canonical merge order (and the
// loop table) is stable even with several ghosts.
func TestGhostObjectsDeterministic(t *testing.T) {
	build := func(workers int) *Report {
		reg := trace.NewRegistry()
		normal := collect(t, 4, reg, nil)
		faulty := collect(t, 4, reg, nil)
		for _, tid := range []struct{ p, t int }{{3, 7}, {2, 9}, {1, 4}, {3, 2}} {
			extra := normal.Get(trace.TID(tid.p, tid.t))
			extra.Append(reg.ID("ghost"), trace.Enter)
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		rep, err := DiffRun(normal, faulty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := build(1), build(8)
	reportsEqual(t, a, b, "ghosts")
}
