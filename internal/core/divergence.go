package core

// divergence.go is the report-level FindDivergence pass: it walks every
// aligned normal/faulty NLR pair of a finished Report (both levels),
// locates each object's first divergence point via diffnlr.FindDivergence,
// and cross-references the JSM clustering by annotating each diverging
// object with its suspect rank. The pass reads only the summarized NLR
// maps a Report already holds — it composes with the streaming path for
// free, costs O(summary), and needs no re-ingestion.
//
// Determinism contract: objects are walked in natural order from a sorted
// slice and results land by index, so the rendered report is byte-identical
// across worker counts and across batch vs streaming runs (the golden
// divergence suite pins this).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"difftrace/internal/diffnlr"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/pool"
	"difftrace/internal/resilience"
)

// ObjectDivergence is one object's divergence, annotated with its standing
// in the level's JSM suspect ranking (rank 0 = not ranked / score ≤ 0).
type ObjectDivergence struct {
	diffnlr.Divergence
	SuspectRank  int     `json:"suspect_rank,omitempty"`
	SuspectScore float64 `json:"suspect_score,omitempty"`
}

// LevelDivergence is one granularity's divergence sweep.
type LevelDivergence struct {
	Level   string              `json:"level"` // "threads" | "processes"
	Objects int                 `json:"objects"`
	Items   []*ObjectDivergence `json:"items,omitempty"` // diverged objects, natural order
	// ConsensusFunc/ConsensusKind summarize the sweep across the
	// clustering: the (function, kind) shared by the most diverging
	// objects (ties broken by natural function order), with the count.
	ConsensusFunc  string                 `json:"consensus_func,omitempty"`
	ConsensusKind  diffnlr.DivergenceKind `json:"consensus_kind,omitempty"`
	ConsensusCount int                    `json:"consensus_count,omitempty"`
}

// DivergenceReport is the output of one FindDivergence pass.
type DivergenceReport struct {
	Threads   *LevelDivergence `json:"threads"`
	Processes *LevelDivergence `json:"processes"`
	// Degraded lists objects the pass skipped under Resilient (a panic in
	// the walk degrades that object instead of aborting the pass). The
	// JSON form carries the rendered messages, not the error values.
	Degraded         []*resilience.StageError `json:"-"`
	DegradedMessages []string                 `json:"degraded,omitempty"`

	table *nlr.Table
}

// FindDivergence runs the pass with the Report's own Config (workers,
// Resilient, Obs) and no cancellation.
func (r *Report) FindDivergence() (*DivergenceReport, error) {
	return r.FindDivergenceContext(nil)
}

// FindDivergenceContext is FindDivergence with cooperative cancellation:
// every worker claim observes ctx, and a cancelled pass aborts even under
// Config.Resilient.
func (r *Report) FindDivergenceContext(ctx context.Context) (*DivergenceReport, error) {
	run := r.Cfg.Obs
	sp := run.StartSpan("divergence")
	defer sp.End()

	out := &DivergenceReport{table: r.LoopTable}
	levels := []struct {
		name  string
		level *Level
		dst   **LevelDivergence
	}{
		{"threads", r.Threads, &out.Threads},
		{"processes", r.Processes, &out.Processes},
	}
	for _, l := range levels {
		ld, degraded, err := r.levelDivergence(ctx, l.name, l.level)
		if err != nil {
			return nil, err
		}
		*l.dst = ld
		out.Degraded = append(out.Degraded, degraded...)
	}
	run.Counter("core.divergence.degraded").Add(int64(len(out.Degraded)))
	return out, nil
}

func (r *Report) levelDivergence(ctx context.Context, name string, level *Level) (*LevelDivergence, []*resilience.StageError, error) {
	run := r.Cfg.Obs
	ld := &LevelDivergence{Level: name}
	if level == nil || level.Normal == nil || level.Faulty == nil {
		return ld, nil, nil
	}

	// Union of both sides' objects: an object missing from one side is
	// itself a divergence (the other side's whole sequence is the tail).
	seen := map[string]bool{}
	for o := range level.Normal.NLR {
		seen[o] = true
	}
	for o := range level.Faulty.NLR {
		seen[o] = true
	}
	objs := make([]string, 0, len(seen))
	for o := range seen {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return jaccard.LessNatural(objs[i], objs[j]) })
	ld.Objects = len(objs)

	results := make([]*ObjectDivergence, len(objs))
	degraded := make([]*resilience.StageError, len(objs))
	stage := "divergence " + name
	poolErr := pool.DoObservedContext(ctx, run, "core.divergence", r.Cfg.workers(), len(objs), func(i int) {
		o := objs[i]
		walk := func() error {
			d := diffnlr.FindDivergence(level.Normal.NLR[o], level.Faulty.NLR[o])
			if d == nil {
				return nil
			}
			d.Object = o
			results[i] = &ObjectDivergence{Divergence: *d}
			return nil
		}
		if !r.Cfg.Resilient {
			// A panic here propagates through the pool, matching the
			// non-Resilient pipeline contract (fail loudly, no partial
			// output).
			_ = walk()
			return
		}
		if serr := resilience.Guard(stage, o, walk); serr != nil {
			degraded[i] = serr
			results[i] = nil
		}
	})
	if poolErr != nil {
		return nil, nil, fmt.Errorf("core: divergence: %w", poolErr)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, nil, fmt.Errorf("core: divergence: %w", ctx.Err())
	}

	// Suspect annotation: rank = 1-based position among positive-score
	// suspects in the level's JSM ranking.
	rank := map[string]int{}
	score := map[string]float64{}
	for i, s := range level.Suspects {
		if s.Score <= 0 {
			break
		}
		rank[s.Name] = i + 1
		score[s.Name] = s.Score
	}
	for _, d := range results {
		if d == nil {
			continue
		}
		d.SuspectRank = rank[d.Object]
		d.SuspectScore = score[d.Object]
		ld.Items = append(ld.Items, d)
	}
	var skipped []*resilience.StageError
	for _, serr := range degraded {
		if serr != nil {
			skipped = append(skipped, serr)
		}
	}
	ld.consensus()

	run.Counter("core.divergence.objects").Add(int64(ld.Objects))
	run.Counter("core.divergence.diverged").Add(int64(len(ld.Items)))
	run.Counter("core.divergence.identical").Add(int64(ld.Objects - len(ld.Items)))
	return ld, skipped, nil
}

// consensus picks the (func, kind) pair shared by the most diverging
// objects — the "across the clustering" headline. Ties break by natural
// function order then kind, so the choice is deterministic.
func (ld *LevelDivergence) consensus() {
	if len(ld.Items) == 0 {
		return
	}
	type key struct {
		fn   string
		kind diffnlr.DivergenceKind
	}
	counts := map[key]int{}
	for _, d := range ld.Items {
		counts[key{d.Func, d.Kind}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if keys[i].fn != keys[j].fn {
			return jaccard.LessNatural(keys[i].fn, keys[j].fn)
		}
		return keys[i].kind < keys[j].kind
	})
	best := keys[0]
	ld.ConsensusFunc, ld.ConsensusKind, ld.ConsensusCount = best.fn, best.kind, counts[best]
}

var divLoopTokRE = regexp.MustCompile(`^L(\d+)\^\d+$`)

// Render writes the human-readable divergence explorer table: per level, a
// row per diverging object (kind, headline function, token and proven-equal
// event index, the diverging heads, suspect rank), the clustering
// consensus, and a legend resolving any loop tokens the rows mention.
func (d *DivergenceReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "divergence explorer\n")
	for _, ld := range []*LevelDivergence{d.Threads, d.Processes} {
		if ld == nil {
			continue
		}
		fmt.Fprintf(w, "\n== %s ==\n", ld.Level)
		if len(ld.Items) == 0 {
			fmt.Fprintf(w, "no divergence: all %d objects have identical NLR structure\n", ld.Objects)
			continue
		}
		fmt.Fprintf(w, "%d/%d objects diverge\n", len(ld.Items), ld.Objects)

		wObj, wFunc, wTok := len("object"), len("func"), len("normal|faulty")
		for _, it := range ld.Items {
			wObj = max(wObj, len(it.Object))
			wFunc = max(wFunc, len(it.Func))
			wTok = max(wTok, len(headCol(it)))
		}
		fmt.Fprintf(w, "%-*s  %-14s %-*s %7s %8s  %-*s %s\n",
			wObj, "object", "kind", wFunc, "func", "token", "event", wTok, "normal|faulty", "rank")
		for _, it := range ld.Items {
			rank := "-"
			if it.SuspectRank > 0 {
				rank = fmt.Sprintf("#%d (%.3f)", it.SuspectRank, it.SuspectScore)
			}
			fmt.Fprintf(w, "%-*s  %-14s %-*s %7d %8d  %-*s %s\n",
				wObj, it.Object, string(it.Kind), wFunc, it.Func,
				it.TokenIndex, it.EventIndex, wTok, headCol(it), rank)
		}
		fmt.Fprintf(w, "consensus: %s at %s (%d of %d diverging objects)\n",
			ld.ConsensusKind, ld.ConsensusFunc, ld.ConsensusCount, len(ld.Items))
		if legend := d.legend(ld); legend != "" {
			fmt.Fprint(w, legend)
		}
	}
	return nil
}

// headCol renders the diverging heads as "normal|faulty" with ∅ for an
// exhausted side.
func headCol(it *ObjectDivergence) string {
	n, f := it.NormalTok, it.FaultyTok
	if n == "" {
		n = "(end)"
	}
	if f == "" {
		f = "(end)"
	}
	return n + "|" + f
}

// legend resolves loop tokens mentioned in the level's rows through the
// run's loop table, like diffNLR's legend.
func (d *DivergenceReport) legend(ld *LevelDivergence) string {
	if d.table == nil {
		return ""
	}
	ids := map[int]bool{}
	collect := func(tok string) {
		if m := divLoopTokRE.FindStringSubmatch(tok); m != nil {
			id, _ := strconv.Atoi(m[1])
			ids[id] = true
		}
	}
	for _, it := range ld.Items {
		collect(it.NormalTok)
		collect(it.FaultyTok)
		for _, tok := range it.Context {
			collect(tok)
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Ints(sorted)
	var b strings.Builder
	for _, id := range sorted {
		fmt.Fprintf(&b, "L%d = %s\n", id, d.table.Describe(id))
	}
	return b.String()
}

// WriteJSON writes the machine-readable report (stable field order, keyed
// for jq-style scripting).
func (d *DivergenceReport) WriteJSON(w io.Writer) error {
	d.DegradedMessages = d.DegradedMessages[:0]
	for _, serr := range d.Degraded {
		d.DegradedMessages = append(d.DegradedMessages, serr.Error())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
