package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/parlot"
	"difftrace/internal/resilience/chaos"
	"difftrace/internal/synth"
	"difftrace/internal/trace"
)

// This file is the streaming/batch differential battery: every test feeds
// the SAME PLOT1 bytes to ReadSetBinaryOptions+DiffRun and to
// ReadStreamSetOptions+DiffRunStream and demands byte-identical reports.
// Test names match the Makefile determinism regex
// (Determinism|Workers|ParallelMatchesSequential|Ghost) so the whole
// battery runs under `make determinism` with -race -short -count=2.

// setBinary serializes a trace set to PLOT1 bytes.
func setBinary(t *testing.T, set *trace.TraceSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := parlot.WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// renderFull renders a report with every section enabled — the widest
// byte-surface the equivalence claim can be checked on.
func renderFull(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts := RenderOptions{TopK: 5, Heatmaps: true, Dendrograms: true, Lattices: rep.Cfg.BuildLattices}
	if err := rep.WriteReport(&buf, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runBatch reads both byte blobs into one fresh registry and runs the
// materialized pipeline.
func runBatch(t *testing.T, nb, fb []byte, opts trace.ReadOptions, cfg Config) *Report {
	t.Helper()
	reg := trace.NewRegistry()
	normal, _, err := parlot.ReadSetBinaryOptions(bytes.NewReader(nb), reg, opts)
	if err != nil {
		t.Fatalf("batch read normal: %v", err)
	}
	faulty, _, err := parlot.ReadSetBinaryOptions(bytes.NewReader(fb), reg, opts)
	if err != nil {
		t.Fatalf("batch read faulty: %v", err)
	}
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatalf("batch DiffRun: %v", err)
	}
	return rep
}

// runStream reads the same blobs as compressed StreamSets (traces never
// expanded) and runs the streaming pipeline.
func runStream(t *testing.T, nb, fb []byte, opts trace.ReadOptions, cfg Config) *Report {
	t.Helper()
	reg := trace.NewRegistry()
	normal, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(nb), reg, opts)
	if err != nil {
		t.Fatalf("stream read normal: %v", err)
	}
	faulty, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(fb), reg, opts)
	if err != nil {
		t.Fatalf("stream read faulty: %v", err)
	}
	rep, err := DiffRunStream(normal, faulty, cfg)
	if err != nil {
		t.Fatalf("DiffRunStream: %v", err)
	}
	return rep
}

// streamMatchesBatch asserts the two reports are equivalent across the
// mode boundary: byte-identical rendered output, identical loop tables,
// and structurally identical per-level analysis. (Cfg.Streaming is the one
// field allowed to differ, exactly as Workers is for the parallel suite.)
func streamMatchesBatch(t *testing.T, batch, stream *Report, label string) {
	t.Helper()
	if got, want := renderFull(t, stream), renderFull(t, batch); !bytes.Equal(got, want) {
		t.Fatalf("%s: rendered reports differ:\n--- batch ---\n%s\n--- stream ---\n%s", label, want, got)
	}
	if batch.LoopTable.Len() != stream.LoopTable.Len() {
		t.Fatalf("%s: loop tables differ in size: %d vs %d", label, batch.LoopTable.Len(), stream.LoopTable.Len())
	}
	for id := 0; id < batch.LoopTable.Len(); id++ {
		if batch.LoopTable.Describe(id) != stream.LoopTable.Describe(id) {
			t.Fatalf("%s: loop L%d differs: %s vs %s", label, id, batch.LoopTable.Describe(id), stream.LoopTable.Describe(id))
		}
	}
	for _, lv := range []struct {
		name string
		a, b *Level
	}{{"threads", batch.Threads, stream.Threads}, {"processes", batch.Processes, stream.Processes}} {
		if !reflect.DeepEqual(lv.a.Suspects, lv.b.Suspects) {
			t.Fatalf("%s: %s suspects differ:\n%v\nvs\n%v", label, lv.name, lv.a.Suspects, lv.b.Suspects)
		}
		if lv.a.BScore != lv.b.BScore {
			t.Fatalf("%s: %s B-score %v vs %v", label, lv.name, lv.a.BScore, lv.b.BScore)
		}
		if !reflect.DeepEqual(lv.a.JSMD, lv.b.JSMD) {
			t.Fatalf("%s: %s JSM_D differs", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Normal.NLR, lv.b.Normal.NLR) {
			t.Fatalf("%s: %s normal NLR sequences differ", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Faulty.NLR, lv.b.Faulty.NLR) {
			t.Fatalf("%s: %s faulty NLR sequences differ", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Normal.Attrs, lv.b.Normal.Attrs) {
			t.Fatalf("%s: %s normal attribute sets differ", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Faulty.Attrs, lv.b.Faulty.Attrs) {
			t.Fatalf("%s: %s faulty attribute sets differ", label, lv.name)
		}
	}
	if !reflect.DeepEqual(batch.Degraded, stream.Degraded) {
		t.Fatalf("%s: degraded lists differ:\n%v\nvs\n%v", label, batch.Degraded, stream.Degraded)
	}
}

// TestStreamMatchesBatchDeterminism: the oddeven golden pair, serialized
// to PLOT1 and analyzed both ways across attribute kinds (including the
// caller→callee kind that re-streams the raw events) and with lattices on,
// at Workers 1 and 8.
func TestStreamMatchesBatchDeterminism(t *testing.T) {
	reg := trace.NewRegistry()
	nb := setBinary(t, collect(t, 8, reg, nil))
	fb := setBinary(t, collect(t, 8, reg, swapPlan()))

	cfgs := []Config{
		DefaultConfig(),
		{Filter: DefaultConfig().Filter, Attr: attr.Config{Kind: attr.Double, Freq: attr.Log10}, Linkage: DefaultConfig().Linkage, BuildLattices: true},
		{Filter: filter.Everything(), Attr: attr.Config{Kind: attr.Context, Freq: attr.Actual}, Linkage: DefaultConfig().Linkage},
	}
	for _, base := range cfgs {
		base.Workers = 1
		batch := runBatch(t, nb, fb, trace.ReadOptions{}, base)
		for _, w := range []int{1, 8} {
			cfg := base
			cfg.Workers = w
			stream := runStream(t, nb, fb, trace.ReadOptions{}, cfg)
			streamMatchesBatch(t, batch, stream, base.Attr.String())
		}
	}
}

// TestStreamWorkersDeterminism: within streaming mode, the report is
// identical for every worker count — the parallel-path proof rerun over
// the decode-on-the-fly objects (run under -race to catch Memo and
// SymbolReader sharing bugs).
func TestStreamWorkersDeterminism(t *testing.T) {
	reg := trace.NewRegistry()
	nb := setBinary(t, collect(t, 8, reg, nil))
	fb := setBinary(t, collect(t, 8, reg, swapPlan()))

	base := DefaultConfig()
	base.BuildLattices = true
	base.Workers = 1
	seq := runStream(t, nb, fb, trace.ReadOptions{}, base)
	for _, w := range []int{2, 8} {
		cfg := base
		cfg.Workers = w
		par := runStream(t, nb, fb, trace.ReadOptions{}, cfg)
		reportsEqual(t, seq, par, "stream workers")
	}
}

// loopySets builds a deviant-population pair of heavily loopy synthetic
// traces (~10k events per side across 6 threads) whose RLE-compressed form
// is far smaller than its expansion — the shape the streaming path exists
// for.
func loopySets(t *testing.T) (nb, fb []byte) {
	t.Helper()
	base := synth.Config{
		Prologue: 3, Epilogue: 2,
		Loops: []synth.LoopSpec{
			{Body: 4, Iterations: 120, Nested: &synth.LoopSpec{Body: 2, Iterations: 3}},
			{Body: 3, Iterations: 150},
		},
		NoiseRate: 0.02, NoisePool: 4, Seed: 11,
	}
	normal := synth.Population(6, -1, 0, base)
	faulty := synth.Population(6, 3, 0.25, base)
	return setBinary(t, normal), setBinary(t, faulty)
}

// TestStreamLoopySynthDeterminism: property-style equivalence on loopy
// synthetic input, strict and lenient-with-caps (the caps force EventCap
// quarantines, exercising the replay rule that streaming must reproduce).
func TestStreamLoopySynthDeterminism(t *testing.T) {
	nb, fb := loopySets(t)
	cfg := Config{Filter: filter.Everything(), Attr: attr.Config{Kind: attr.Single, Freq: attr.Actual}, Linkage: DefaultConfig().Linkage}

	for _, tc := range []struct {
		name string
		opts trace.ReadOptions
	}{
		{"strict", trace.ReadOptions{}},
		{"lenient-capped", trace.ReadOptions{Mode: trace.Lenient, MaxEventsPerTrace: 700}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg.Workers = 1
			batch := runBatch(t, nb, fb, tc.opts, cfg)
			for _, w := range []int{1, 8} {
				scfg := cfg
				scfg.Workers = w
				stream := runStream(t, nb, fb, tc.opts, scfg)
				streamMatchesBatch(t, batch, stream, tc.name)
			}
		})
	}
}

// TestStreamChaosParallelMatchesSequential: every binary corruption
// operator, applied to the faulty side and read leniently, yields the same
// report through both pipelines (and the streaming ingest accounting
// matches the batch accounting byte for byte).
func TestStreamChaosParallelMatchesSequential(t *testing.T) {
	reg := trace.NewRegistry()
	nb := setBinary(t, collect(t, 6, reg, nil))
	fb := setBinary(t, collect(t, 6, reg, swapPlan()))

	for _, op := range chaos.Binary() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			corrupted := op.Apply(fb, rng)
			opts := trace.ReadOptions{Mode: trace.Lenient}

			breg := trace.NewRegistry()
			bn, _, err := parlot.ReadSetBinaryOptions(bytes.NewReader(nb), breg, opts)
			if err != nil {
				t.Fatalf("batch read normal: %v", err)
			}
			bf, brep, berr := parlot.ReadSetBinaryOptions(bytes.NewReader(corrupted), breg, opts)

			sreg := trace.NewRegistry()
			sn, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(nb), sreg, opts)
			if err != nil {
				t.Fatalf("stream read normal: %v", err)
			}
			sf, srep, serr := parlot.ReadStreamSetOptions(bytes.NewReader(corrupted), sreg, opts)

			// Ingest outcome must agree before any analysis does.
			if (berr == nil) != (serr == nil) {
				t.Fatalf("read errors diverge: batch=%v stream=%v", berr, serr)
			}
			if got, want := srep.Render(), brep.Render(); got != want {
				t.Fatalf("ingest reports differ:\n--- batch ---\n%s\n--- stream ---\n%s", want, got)
			}
			if berr != nil {
				if berr.Error() != serr.Error() {
					t.Fatalf("error text diverges: batch=%v stream=%v", berr, serr)
				}
				return
			}

			cfg := DefaultConfig()
			cfg.Resilient = true
			cfg.Workers = 1
			batch, err := DiffRun(bn, bf, cfg)
			if err != nil {
				t.Fatalf("batch DiffRun: %v", err)
			}
			for _, w := range []int{1, 8} {
				scfg := cfg
				scfg.Workers = w
				stream, err := DiffRunStream(sn, sf, scfg)
				if err != nil {
					t.Fatalf("DiffRunStream: %v", err)
				}
				streamMatchesBatch(t, batch, stream, op.Name)
			}
		})
	}
}

// TestStreamGhostObjectsDeterminism: a faulty side missing two whole
// processes forces ghost objects through the union; the streaming path
// must synthesize the same empty-side placeholders the batch path does.
func TestStreamGhostObjectsDeterminism(t *testing.T) {
	reg := trace.NewRegistry()
	nb := setBinary(t, collect(t, 8, reg, nil))
	fb := setBinary(t, collect(t, 6, reg, swapPlan()))

	cfg := DefaultConfig()
	cfg.Workers = 1
	batch := runBatch(t, nb, fb, trace.ReadOptions{}, cfg)
	for _, w := range []int{1, 8} {
		scfg := cfg
		scfg.Workers = w
		stream := runStream(t, nb, fb, trace.ReadOptions{}, scfg)
		streamMatchesBatch(t, batch, stream, "ghost")
	}
}

// TestStreamManifestWorkersInvariant: within streaming mode the scrubbed
// obs manifest is byte-identical across worker counts, and it carries the
// streaming mode marker.
func TestStreamManifestWorkersInvariant(t *testing.T) {
	reg := trace.NewRegistry()
	nb := setBinary(t, collect(t, 8, reg, nil))
	fb := setBinary(t, collect(t, 8, reg, swapPlan()))

	build := func(workers int) []byte {
		run := obs.NewRun("test")
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Obs = run
		runStream(t, nb, fb, trace.ReadOptions{}, cfg)
		m := run.Manifest()
		obs.Scrub(m)
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	seq := build(1)
	if !bytes.Contains(seq, []byte("core.streaming")) {
		t.Error("streaming manifest missing core.streaming marker")
	}
	for _, w := range []int{2, 8} {
		par := build(w)
		if !bytes.Equal(seq, par) {
			t.Fatalf("scrubbed streaming manifest differs between Workers:1 and Workers:%d:\n--- seq ---\n%s\n--- par ---\n%s", w, seq, par)
		}
	}
}
