package core

import (
	"fmt"
	"io"
	"strings"

	"difftrace/internal/bscore"
)

// RenderOptions controls WriteReport's sections.
type RenderOptions struct {
	TopK        int  // suspects listed and diffNLR'd per level (default 3)
	Heatmaps    bool // include JSM_D heatmaps
	Dendrograms bool // include the two linkage merge sequences
	Lattices    bool // include concept lattices (requires BuildLattices)
	Color       bool // ANSI colors in diffNLR blocks
}

// WriteReport renders the full human-readable debugging report for one
// comparison: the configuration, per-level B-scores and suspect rankings,
// and the diffNLR of each top suspect — the artifact a DiffTrace iteration
// hands to the engineer (Figure 1's right-hand side).
func (r *Report) WriteReport(w io.Writer, opts RenderOptions) error {
	if opts.TopK <= 0 {
		opts.TopK = 3
	}
	fmt.Fprintf(w, "DiffTrace report\n")
	fmt.Fprintf(w, "  filter:  %s\n", r.Cfg.Filter)
	fmt.Fprintf(w, "  attrs:   %s\n", r.Cfg.Attr)
	fmt.Fprintf(w, "  linkage: %s\n\n", r.Cfg.Linkage)

	levels := []struct {
		name  string
		level *Level
	}{
		{"threads", r.Threads},
		{"processes", r.Processes},
	}
	for _, l := range levels {
		fmt.Fprintf(w, "== %s ==\n", l.name)
		fmt.Fprintf(w, "B-score: %.3f\n", l.level.BScore)
		if curve, err := bscore.RenderCurve(l.level.Normal.Linkage, l.level.Faulty.Linkage); err == nil {
			fmt.Fprintln(w, curve)
		}
		fmt.Fprintf(w, "suspects (similarity-row change):\n")
		shown := 0
		for _, s := range l.level.Suspects {
			if shown >= opts.TopK || s.Score <= 0 {
				break
			}
			fmt.Fprintf(w, "  %2d. %-8s %.3f\n", shown+1, s.Name, s.Score)
			shown++
		}
		if shown == 0 {
			fmt.Fprintln(w, "  (no similarity changes — executions indistinguishable under this configuration)")
		}
		if opts.Heatmaps {
			fmt.Fprintln(w, "JSM_D heatmap:")
			fmt.Fprint(w, indent(l.level.JSMD.Heatmap(), "  "))
		}
		if opts.Dendrograms {
			fmt.Fprintln(w, "normal dendrogram:")
			fmt.Fprint(w, indent(l.level.Normal.Linkage.Render(l.level.Normal.JSM.Names), "  "))
			fmt.Fprintln(w, "faulty dendrogram:")
			fmt.Fprint(w, indent(l.level.Faulty.Linkage.Render(l.level.Faulty.JSM.Names), "  "))
		}
		if opts.Lattices && l.level.Faulty.Lattice != nil {
			fmt.Fprintln(w, "faulty concept lattice:")
			fmt.Fprint(w, indent(l.level.Faulty.Lattice.Render(), "  "))
		}
		// diffNLR for each changed top suspect.
		for i, s := range l.level.Suspects {
			if i >= opts.TopK || s.Score <= 0 {
				break
			}
			d, err := r.DiffNLR(l.level, s.Name)
			if err != nil {
				return err
			}
			if d.Identical() {
				fmt.Fprintf(w, "\ndiffNLR(%s): traces identical (row changed via other objects)\n", s.Name)
				continue
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, d.Render(opts.Color))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Summary returns a one-paragraph verdict: the most suspicious objects and
// what their diffNLRs say.
func (r *Report) Summary() string {
	var b strings.Builder
	top := r.Threads.TopSuspects(3, 1e-9)
	if len(top) == 0 {
		return "no behavioural differences detected under this configuration"
	}
	fmt.Fprintf(&b, "most affected traces: %s (B-score %.3f)",
		strings.Join(top, ", "), r.Threads.BScore)
	if d, err := r.DiffNLR(r.Threads, top[0]); err == nil && !d.Identical() {
		fmt.Fprintf(&b, "; diffNLR(%s): %s", top[0], d.Verdict())
	}
	return b.String()
}

// SuspectOverlap compares this report's thread suspects with another's
// (e.g. two parameter combinations) as a Jaccard index over the top-k
// sets — a simple way to see whether two knob settings agree.
func (r *Report) SuspectOverlap(o *Report, k int) float64 {
	a := r.Threads.TopSuspects(k, 1e-9)
	b := o.Threads.TopSuspects(k, 1e-9)
	sa := map[string]bool{}
	for _, n := range a {
		sa[n] = true
	}
	inter := 0
	for _, n := range b {
		if sa[n] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
