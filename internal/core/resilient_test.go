package core

import (
	"strings"
	"testing"

	"difftrace/internal/trace"
)

// withHook installs a stage hook for the test and restores nil afterwards.
func withHook(t *testing.T, hook func(stage, object string)) {
	t.Helper()
	testStageHook = hook
	t.Cleanup(func() { testStageHook = nil })
}

// TestResilientObjectPanicIsolated: a panic while summarizing one object
// skips that object on both sides, records StageErrors, and the remaining
// traces still produce a ranking.
func TestResilientObjectPanicIsolated(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	withHook(t, func(stage, object string) {
		if object == "3.0" && strings.Contains(stage, "/nlr") {
			panic("injected NLR blow-up")
		}
	})
	cfg := DefaultConfig()
	cfg.Resilient = true
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatalf("resilient DiffRun: %v", err)
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("no StageErrors recorded for the injected panic")
	}
	for _, e := range rep.Degraded {
		if e.Object != "3.0" {
			t.Errorf("unexpected degraded object %q (stage %s)", e.Object, e.Stage)
		}
		if !strings.Contains(e.Error(), "injected NLR blow-up") {
			t.Errorf("StageError lost the panic message: %v", e)
		}
	}
	// The poisoned object is gone from both sides; everyone else survived.
	for _, a := range []*Analysis{rep.Threads.Normal, rep.Threads.Faulty} {
		if _, ok := a.NLR["3.0"]; ok {
			t.Error("skipped object 3.0 still present in NLR map")
		}
		if _, ok := a.Attrs["3.0"]; ok {
			t.Error("skipped object 3.0 still present in attribute map")
		}
	}
	if n := len(rep.Threads.Normal.JSM.Names); n != 7 {
		t.Errorf("thread JSM has %d objects, want 7 (8 threads minus the skipped one)", n)
	}
	if len(rep.Threads.Suspects) == 0 {
		t.Error("no thread-level suspects despite a real fault in the surviving traces")
	}
	if top := rep.Threads.Suspects[0].Name; top != "5.0" {
		t.Errorf("top suspect = %s, want 5.0 (swap bug must still be found)", top)
	}
	// Process level was untouched by the hook.
	if top := rep.Processes.Suspects[0].Name; top != "5" {
		t.Errorf("top process suspect = %s, want 5", top)
	}
}

// TestResilientLevelFailureDegrades: a panic covering a whole level yields
// an empty placeholder Level while the other level still works.
func TestResilientLevelFailureDegrades(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	withHook(t, func(stage, object string) {
		if stage == "process level" && object == "" {
			panic("injected level failure")
		}
	})
	cfg := DefaultConfig()
	cfg.Resilient = true
	rep, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatalf("resilient DiffRun: %v", err)
	}
	if top := rep.Threads.Suspects[0].Name; top != "5.0" {
		t.Errorf("healthy thread level: top suspect = %s, want 5.0", top)
	}
	if len(rep.Degraded) != 1 || rep.Degraded[0].Stage != "process level" {
		t.Fatalf("Degraded = %v, want one process-level StageError", rep.Degraded)
	}
	// The placeholder must be renderable: non-nil analyses, empty matrices.
	p := rep.Processes
	if p == nil || p.Normal == nil || p.Faulty == nil || p.JSMD == nil {
		t.Fatal("degraded level has nil components")
	}
	if len(p.Normal.JSM.Names) != 0 || len(p.Suspects) != 0 {
		t.Errorf("degraded level is not empty: %d names, %d suspects",
			len(p.Normal.JSM.Names), len(p.Suspects))
	}
}

// TestNonResilientPanicPropagates: without Resilient the same injected
// panic escapes DiffRun unchanged — historical behavior is preserved.
func TestNonResilientPanicPropagates(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 4, reg, nil)
	faulty := collect(t, 4, reg, swapPlan())
	withHook(t, func(stage, object string) {
		if object == "1.0" && strings.Contains(stage, "/nlr") {
			panic("injected NLR blow-up")
		}
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("non-resilient DiffRun swallowed the panic")
		}
	}()
	_, _ = DiffRun(normal, faulty, DefaultConfig())
}

// TestResilientHealthyRunMatchesStrict: with no failures, Resilient mode
// produces the identical ranking and records nothing.
func TestResilientHealthyRunMatchesStrict(t *testing.T) {
	reg := trace.NewRegistry()
	normal := collect(t, 8, reg, nil)
	faulty := collect(t, 8, reg, swapPlan())
	plain, err := DiffRun(normal, faulty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Resilient = true
	res, err := DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 0 {
		t.Errorf("healthy resilient run recorded %v", res.Degraded)
	}
	if len(plain.Threads.Suspects) != len(res.Threads.Suspects) {
		t.Fatalf("suspect counts differ: %d vs %d",
			len(plain.Threads.Suspects), len(res.Threads.Suspects))
	}
	for i := range plain.Threads.Suspects {
		if plain.Threads.Suspects[i] != res.Threads.Suspects[i] {
			t.Errorf("suspect %d differs: %v vs %v",
				i, plain.Threads.Suspects[i], res.Threads.Suspects[i])
		}
	}
}

// TestResilientEmptySets: diffing two empty trace sets degrades gracefully
// instead of erroring or panicking.
func TestResilientEmptySets(t *testing.T) {
	reg := trace.NewRegistry()
	empty1 := trace.NewTraceSetWith(reg)
	empty2 := trace.NewTraceSetWith(reg)
	cfg := DefaultConfig()
	cfg.Resilient = true
	rep, err := DiffRun(empty1, empty2, cfg)
	if err != nil {
		t.Fatalf("DiffRun on empty sets: %v", err)
	}
	if rep.Threads == nil || rep.Processes == nil {
		t.Fatal("nil level for empty input")
	}
	if len(rep.Threads.Suspects) != 0 {
		t.Errorf("empty input produced suspects: %v", rep.Threads.Suspects)
	}
}
