// Package core is DiffTrace's pipeline (Figure 1): it wires the substrates
// together into the paper's analysis loop —
//
//	ParLOT traces → filter → NLR → FCA attributes → concept lattice / JSM
//	  → JSM_D → hierarchical clustering → B-score → suspect ranking
//	  → diffNLR of the suspicious traces.
//
// One DiffRun compares a normal execution's TraceSet against a faulty one
// under a single parameter combination (filter spec, attribute config,
// linkage method); the rank package sweeps combinations to build the
// paper's ranking tables.
package core

import (
	"fmt"
	"strconv"

	"difftrace/internal/attr"
	"difftrace/internal/bscore"
	"difftrace/internal/cluster"
	"difftrace/internal/diffnlr"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

// Config is one parameter combination of the DiffTrace loop (the dashed box
// of Figure 1): the four user knobs of §II-F.
type Config struct {
	Filter  *filter.Filter // knob 4: front-end filter (carries the NLR K, knob 3)
	Attr    attr.Config    // knob 2: FCA attributes (Table V)
	Linkage cluster.Method // knob 1: dendrogram linkage method
	// BuildLattices materializes the concept lattices (needed for lattice
	// inspection/rendering; the JSM itself is derivable either way).
	BuildLattices bool
}

// DefaultConfig mirrors the paper's experiment settings: drop returns and
// PLT, keep MPI calls, K=10, single/noFreq attributes, ward linkage.
func DefaultConfig() Config {
	return Config{
		Filter:  filter.New(filter.MPIAll),
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
		Linkage: cluster.Ward,
	}
}

// Analysis is one execution analyzed at one granularity.
type Analysis struct {
	NLR     map[string][]nlr.Element // object name -> summarized sequence
	Attrs   map[string]fca.AttrSet
	JSM     *jaccard.JSM
	Lattice *fca.Lattice // nil unless Config.BuildLattices
	Linkage *cluster.Linkage
}

// Level is the complete normal-vs-faulty comparison at one granularity
// (threads or processes).
type Level struct {
	Normal, Faulty *Analysis
	JSMD           *jaccard.JSM
	BScore         float64
	Suspects       []jaccard.Suspect
}

// TopSuspects returns up to k object names whose similarity rows changed by
// more than eps.
func (l *Level) TopSuspects(k int, eps float64) []string {
	var out []string
	for _, s := range l.Suspects {
		if len(out) >= k || s.Score <= eps {
			break
		}
		out = append(out, s.Name)
	}
	return out
}

// Report is the output of one DiffRun.
type Report struct {
	Cfg       Config
	LoopTable *nlr.Table
	Threads   *Level // objects are "p.t" thread traces
	Processes *Level // objects are "p" merged process traces
}

// DiffRun executes the full pipeline for one parameter combination.
func DiffRun(normal, faulty *trace.TraceSet, cfg Config) (*Report, error) {
	if cfg.Filter == nil {
		cfg.Filter = filter.Everything()
	}
	if cfg.Attr.Kind == attr.Context && cfg.Filter.DropReturns {
		return nil, fmt.Errorf("core: caller/callee (ctx) attributes need return events; use a filter spec starting with 0")
	}
	table := nlr.NewTable()
	rep := &Report{Cfg: cfg, LoopTable: table}

	fn := cfg.Filter.ApplySet(normal)
	ff := cfg.Filter.ApplySet(faulty)

	threads, err := diffLevel(threadObjects(fn), threadObjects(ff), cfg, table)
	if err != nil {
		return nil, fmt.Errorf("core: thread level: %w", err)
	}
	rep.Threads = threads

	procs, err := diffLevel(processObjects(fn), processObjects(ff), cfg, table)
	if err != nil {
		return nil, fmt.Errorf("core: process level: %w", err)
	}
	rep.Processes = procs
	return rep, nil
}

// object is a named filtered trace.
type object struct {
	name string
	tr   *trace.Trace
	reg  *trace.Registry
}

// threadObjects names every per-thread trace "p.t".
func threadObjects(s *trace.TraceSet) []object {
	var out []object
	for _, id := range s.IDs() {
		out = append(out, object{name: id.String(), tr: s.Traces[id], reg: s.Registry})
	}
	return out
}

// processObjects merges each process's threads into one object named "p".
func processObjects(s *trace.TraceSet) []object {
	var out []object
	for _, p := range s.Processes() {
		out = append(out, object{name: strconv.Itoa(p), tr: s.ProcessTrace(p), reg: s.Registry})
	}
	return out
}

// union aligns two object lists by name: objects missing on one side get an
// empty trace (a thread that never spawned in the faulty run is itself a
// signal, not an error).
func union(a, b []object) ([]object, []object) {
	names := map[string]bool{}
	for _, o := range a {
		names[o.name] = true
	}
	for _, o := range b {
		names[o.name] = true
	}
	fill := func(objs []object, reg *trace.Registry) []object {
		have := map[string]bool{}
		for _, o := range objs {
			have[o.name] = true
		}
		for n := range names {
			if !have[n] {
				objs = append(objs, object{name: n, tr: &trace.Trace{}, reg: reg})
			}
		}
		return objs
	}
	var regA, regB *trace.Registry
	if len(a) > 0 {
		regA = a[0].reg
	}
	if len(b) > 0 {
		regB = b[0].reg
	}
	return fill(a, regA), fill(b, regB)
}

// analyze summarizes, attributes, and clusters one execution's objects.
func analyze(objs []object, cfg Config, table *nlr.Table) (*Analysis, error) {
	a := &Analysis{
		NLR:   make(map[string][]nlr.Element, len(objs)),
		Attrs: make(map[string]fca.AttrSet, len(objs)),
	}
	// Two passes so that loops discovered in later traces fold in earlier
	// ones (the shared-loop-table heuristic; see nlr.SummarizeSet).
	for _, o := range objs {
		nlr.SummarizeTrace(o.tr, o.reg, cfg.Filter.K, table)
	}
	for _, o := range objs {
		elems := nlr.SummarizeTrace(o.tr, o.reg, cfg.Filter.K, table)
		a.NLR[o.name] = elems
		if cfg.Attr.Kind == attr.Context {
			// Caller→callee attributes come from the raw enter/exit
			// nesting, not the NLR sequence.
			a.Attrs[o.name] = attr.ExtractContext(o.tr, o.reg, cfg.Attr.Freq)
		} else {
			a.Attrs[o.name] = attr.Extract(elems, cfg.Attr)
		}
	}
	if cfg.BuildLattices {
		a.Lattice = fca.NewLattice()
		for _, o := range objs {
			a.Lattice.AddObject(o.name, a.Attrs[o.name])
		}
		a.JSM = jaccard.FromLattice(a.Lattice)
	} else {
		a.JSM = jaccard.New(a.Attrs)
	}
	lk, err := cluster.Build(a.JSM.Distance(), cfg.Linkage)
	if err != nil {
		return nil, err
	}
	a.Linkage = lk
	return a, nil
}

// diffLevel runs both analyses and the comparison at one granularity.
func diffLevel(nObjs, fObjs []object, cfg Config, table *nlr.Table) (*Level, error) {
	nObjs, fObjs = union(nObjs, fObjs)
	normal, err := analyze(nObjs, cfg, table)
	if err != nil {
		return nil, err
	}
	faulty, err := analyze(fObjs, cfg, table)
	if err != nil {
		return nil, err
	}
	jsmd, err := jaccard.Diff(faulty.JSM, normal.JSM)
	if err != nil {
		return nil, err
	}
	b, err := bscore.BScore(normal.Linkage, faulty.Linkage)
	if err != nil {
		return nil, err
	}
	return &Level{
		Normal:   normal,
		Faulty:   faulty,
		JSMD:     jsmd,
		BScore:   b,
		Suspects: jsmd.Suspects(),
	}, nil
}

// DiffNLR renders the diffNLR(x) view for an object of the given level
// (§II-F.1): the Myers diff of its normal vs faulty NLR token sequences.
func (r *Report) DiffNLR(level *Level, name string) (*diffnlr.DiffNLR, error) {
	n, ok := level.Normal.NLR[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown object %q", name)
	}
	f := level.Faulty.NLR[name]
	id, err := trace.ParseThreadID(name)
	if err != nil {
		id = trace.TID(0, 0)
	}
	return diffnlr.Compute(id, nlr.Tokens(n), nlr.Tokens(f), r.LoopTable), nil
}
