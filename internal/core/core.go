// Package core is DiffTrace's pipeline (Figure 1): it wires the substrates
// together into the paper's analysis loop —
//
//	ParLOT traces → filter → NLR → FCA attributes → concept lattice / JSM
//	  → JSM_D → hierarchical clustering → B-score → suspect ranking
//	  → diffNLR of the suspicious traces.
//
// One DiffRun compares a normal execution's TraceSet against a faulty one
// under a single parameter combination (filter spec, attribute config,
// linkage method); the rank package sweeps combinations to build the
// paper's ranking tables.
package core

import (
	"fmt"
	"strconv"

	"difftrace/internal/attr"
	"difftrace/internal/bscore"
	"difftrace/internal/cluster"
	"difftrace/internal/diffnlr"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/resilience"
	"difftrace/internal/trace"
)

// Config is one parameter combination of the DiffTrace loop (the dashed box
// of Figure 1): the four user knobs of §II-F.
type Config struct {
	Filter  *filter.Filter // knob 4: front-end filter (carries the NLR K, knob 3)
	Attr    attr.Config    // knob 2: FCA attributes (Table V)
	Linkage cluster.Method // knob 1: dendrogram linkage method
	// BuildLattices materializes the concept lattices (needed for lattice
	// inspection/rendering; the JSM itself is derivable either way).
	BuildLattices bool
	// Resilient isolates per-stage failures instead of propagating them:
	// a panic or error confined to one object (e.g. an NLR blow-up on a
	// pathological trace) skips that object on both sides with a recorded
	// StageError, and a level-wide failure degrades to an empty Level —
	// the remaining traces still produce a JSM and ranking. Off by
	// default: errors and panics propagate exactly as before.
	Resilient bool
}

// DefaultConfig mirrors the paper's experiment settings: drop returns and
// PLT, keep MPI calls, K=10, single/noFreq attributes, ward linkage.
func DefaultConfig() Config {
	return Config{
		Filter:  filter.New(filter.MPIAll),
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
		Linkage: cluster.Ward,
	}
}

// Analysis is one execution analyzed at one granularity.
type Analysis struct {
	NLR     map[string][]nlr.Element // object name -> summarized sequence
	Attrs   map[string]fca.AttrSet
	JSM     *jaccard.JSM
	Lattice *fca.Lattice // nil unless Config.BuildLattices
	Linkage *cluster.Linkage
}

// Level is the complete normal-vs-faulty comparison at one granularity
// (threads or processes).
type Level struct {
	Normal, Faulty *Analysis
	JSMD           *jaccard.JSM
	BScore         float64
	Suspects       []jaccard.Suspect
}

// TopSuspects returns up to k object names whose similarity rows changed by
// more than eps.
func (l *Level) TopSuspects(k int, eps float64) []string {
	var out []string
	for _, s := range l.Suspects {
		if len(out) >= k || s.Score <= eps {
			break
		}
		out = append(out, s.Name)
	}
	return out
}

// Report is the output of one DiffRun.
type Report struct {
	Cfg       Config
	LoopTable *nlr.Table
	Threads   *Level // objects are "p.t" thread traces
	Processes *Level // objects are "p" merged process traces
	// Degraded lists the isolated failures a Resilient run recovered
	// from: objects skipped and levels degraded, each with its stage and
	// cause. Empty for a fully healthy run (and always empty when
	// Config.Resilient is off, since failures then abort the run).
	Degraded []*resilience.StageError
}

// testStageHook, when non-nil, is invoked at the start of every stage
// (level entry and per-object summarization). Tests install a panicking
// hook to exercise the isolation paths; nil in production.
var testStageHook func(stage, object string)

// DiffRun executes the full pipeline for one parameter combination.
func DiffRun(normal, faulty *trace.TraceSet, cfg Config) (*Report, error) {
	if cfg.Filter == nil {
		cfg.Filter = filter.Everything()
	}
	if cfg.Attr.Kind == attr.Context && cfg.Filter.DropReturns {
		return nil, fmt.Errorf("core: caller/callee (ctx) attributes need return events; use a filter spec starting with 0")
	}
	table := nlr.NewTable()
	rep := &Report{Cfg: cfg, LoopTable: table}

	fn := cfg.Filter.ApplySet(normal)
	ff := cfg.Filter.ApplySet(faulty)

	levels := []struct {
		stage string
		n, f  []object
		dst   **Level
	}{
		{"thread level", threadObjects(fn), threadObjects(ff), &rep.Threads},
		{"process level", processObjects(fn), processObjects(ff), &rep.Processes},
	}
	for _, lv := range levels {
		if !cfg.Resilient {
			level, _, err := diffLevel(lv.n, lv.f, cfg, table, lv.stage)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", lv.stage, err)
			}
			*lv.dst = level
			continue
		}
		// Resilient: a panic or error anywhere in this level degrades it
		// to an empty placeholder instead of aborting the run.
		var (
			level *Level
			errs  []*resilience.StageError
		)
		serr := resilience.Guard(lv.stage, "", func() error {
			var err error
			level, errs, err = diffLevel(lv.n, lv.f, cfg, table, lv.stage)
			return err
		})
		rep.Degraded = append(rep.Degraded, errs...)
		if serr != nil {
			rep.Degraded = append(rep.Degraded, serr)
			level = emptyLevel()
		}
		*lv.dst = level
	}
	return rep, nil
}

// emptyLevel is the placeholder for a level that failed wholesale in a
// Resilient run: renderable (non-nil analyses, empty matrices), with no
// suspects.
func emptyLevel() *Level {
	empty := func() *Analysis {
		return &Analysis{
			NLR:     map[string][]nlr.Element{},
			Attrs:   map[string]fca.AttrSet{},
			JSM:     jaccard.New(nil),
			Linkage: &cluster.Linkage{},
		}
	}
	return &Level{Normal: empty(), Faulty: empty(), JSMD: jaccard.New(nil)}
}

// object is a named filtered trace.
type object struct {
	name string
	tr   *trace.Trace
	reg  *trace.Registry
}

// threadObjects names every per-thread trace "p.t".
func threadObjects(s *trace.TraceSet) []object {
	var out []object
	for _, id := range s.IDs() {
		out = append(out, object{name: id.String(), tr: s.Traces[id], reg: s.Registry})
	}
	return out
}

// processObjects merges each process's threads into one object named "p".
func processObjects(s *trace.TraceSet) []object {
	var out []object
	for _, p := range s.Processes() {
		out = append(out, object{name: strconv.Itoa(p), tr: s.ProcessTrace(p), reg: s.Registry})
	}
	return out
}

// union aligns two object lists by name: objects missing on one side get an
// empty trace (a thread that never spawned in the faulty run is itself a
// signal, not an error).
func union(a, b []object) ([]object, []object) {
	names := map[string]bool{}
	for _, o := range a {
		names[o.name] = true
	}
	for _, o := range b {
		names[o.name] = true
	}
	fill := func(objs []object, reg *trace.Registry) []object {
		have := map[string]bool{}
		for _, o := range objs {
			have[o.name] = true
		}
		for n := range names {
			if !have[n] {
				objs = append(objs, object{name: n, tr: &trace.Trace{}, reg: reg})
			}
		}
		return objs
	}
	var regA, regB *trace.Registry
	if len(a) > 0 {
		regA = a[0].reg
	}
	if len(b) > 0 {
		regB = b[0].reg
	}
	return fill(a, regA), fill(b, regB)
}

// summarize runs the NLR + attribute passes over one execution's objects.
// In a Resilient run each object is guarded individually: a panic or error
// while summarizing one object records a StageError and skips it, leaving
// the other objects intact. Returns the surviving NLR and attribute maps.
func summarize(objs []object, cfg Config, table *nlr.Table, stage string) (map[string][]nlr.Element, map[string]fca.AttrSet, []*resilience.StageError) {
	nlrs := make(map[string][]nlr.Element, len(objs))
	attrs := make(map[string]fca.AttrSet, len(objs))
	var errs []*resilience.StageError
	skipped := map[string]bool{}

	// Two passes so that loops discovered in later traces fold in earlier
	// ones (the shared-loop-table heuristic; see nlr.SummarizeSet).
	seed := func(o object) error {
		if testStageHook != nil {
			testStageHook(stage+"/nlr", o.name)
		}
		nlr.SummarizeTrace(o.tr, o.reg, cfg.Filter.K, table)
		return nil
	}
	extract := func(o object) error {
		if testStageHook != nil {
			testStageHook(stage+"/attr", o.name)
		}
		elems := nlr.SummarizeTrace(o.tr, o.reg, cfg.Filter.K, table)
		nlrs[o.name] = elems
		if cfg.Attr.Kind == attr.Context {
			// Caller→callee attributes come from the raw enter/exit
			// nesting, not the NLR sequence.
			attrs[o.name] = attr.ExtractContext(o.tr, o.reg, cfg.Attr.Freq)
		} else {
			attrs[o.name] = attr.Extract(elems, cfg.Attr)
		}
		return nil
	}
	for _, pass := range []struct {
		name string
		fn   func(object) error
	}{{"nlr", seed}, {"attr", extract}} {
		for _, o := range objs {
			o := o
			if !cfg.Resilient {
				pass.fn(o) //nolint:errcheck // both passes only signal via panic
				continue
			}
			if skipped[o.name] {
				continue
			}
			if serr := resilience.Guard(stage+"/"+pass.name, o.name, func() error {
				return pass.fn(o)
			}); serr != nil {
				errs = append(errs, serr)
				skipped[o.name] = true
				delete(nlrs, o.name)
				delete(attrs, o.name)
			}
		}
	}
	return nlrs, attrs, errs
}

// buildAnalysis assembles the lattice/JSM/linkage for one execution from the
// objects that survived summarization.
func buildAnalysis(objs []object, nlrs map[string][]nlr.Element, attrs map[string]fca.AttrSet, cfg Config) (*Analysis, error) {
	a := &Analysis{NLR: nlrs, Attrs: attrs}
	if cfg.BuildLattices {
		a.Lattice = fca.NewLattice()
		for _, o := range objs {
			if at, ok := attrs[o.name]; ok {
				a.Lattice.AddObject(o.name, at)
			}
		}
		a.JSM = jaccard.FromLattice(a.Lattice)
	} else {
		a.JSM = jaccard.New(attrs)
	}
	lk, err := cluster.Build(a.JSM.Distance(), cfg.Linkage)
	if err != nil {
		return nil, err
	}
	a.Linkage = lk
	return a, nil
}

// diffLevel runs both analyses and the comparison at one granularity. The
// returned StageErrors (Resilient runs only) list objects that were skipped.
func diffLevel(nObjs, fObjs []object, cfg Config, table *nlr.Table, stage string) (*Level, []*resilience.StageError, error) {
	if testStageHook != nil {
		testStageHook(stage, "")
	}
	nObjs, fObjs = union(nObjs, fObjs)
	nNLR, nAttrs, errs := summarize(nObjs, cfg, table, stage+"/normal")
	fNLR, fAttrs, fErrs := summarize(fObjs, cfg, table, stage+"/faulty")
	errs = append(errs, fErrs...)
	// An object skipped on either side must leave both, so the two JSMs
	// keep identical name sets and jaccard.Diff/BScore stay well-defined.
	for _, e := range errs {
		delete(nNLR, e.Object)
		delete(nAttrs, e.Object)
		delete(fNLR, e.Object)
		delete(fAttrs, e.Object)
	}
	normal, err := buildAnalysis(nObjs, nNLR, nAttrs, cfg)
	if err != nil {
		return nil, errs, err
	}
	faulty, err := buildAnalysis(fObjs, fNLR, fAttrs, cfg)
	if err != nil {
		return nil, errs, err
	}
	jsmd, err := jaccard.Diff(faulty.JSM, normal.JSM)
	if err != nil {
		return nil, errs, err
	}
	b, err := bscore.BScore(normal.Linkage, faulty.Linkage)
	if err != nil {
		return nil, errs, err
	}
	return &Level{
		Normal:   normal,
		Faulty:   faulty,
		JSMD:     jsmd,
		BScore:   b,
		Suspects: jsmd.Suspects(),
	}, errs, nil
}

// DiffNLR renders the diffNLR(x) view for an object of the given level
// (§II-F.1): the Myers diff of its normal vs faulty NLR token sequences.
func (r *Report) DiffNLR(level *Level, name string) (*diffnlr.DiffNLR, error) {
	n, ok := level.Normal.NLR[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown object %q", name)
	}
	f := level.Faulty.NLR[name]
	id, err := trace.ParseThreadID(name)
	if err != nil {
		id = trace.TID(0, 0)
	}
	return diffnlr.Compute(id, nlr.Tokens(n), nlr.Tokens(f), r.LoopTable), nil
}
