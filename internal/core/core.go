// Package core is DiffTrace's pipeline (Figure 1): it wires the substrates
// together into the paper's analysis loop —
//
//	ParLOT traces → filter → NLR → FCA attributes → concept lattice / JSM
//	  → JSM_D → hierarchical clustering → B-score → suspect ranking
//	  → diffNLR of the suspicious traces.
//
// One DiffRun compares a normal execution's TraceSet against a faulty one
// under a single parameter combination (filter spec, attribute config,
// linkage method); the rank package sweeps combinations to build the
// paper's ranking tables.
//
// The pipeline is internally parallel (Config.Workers) yet deterministic:
// per-object NLR runs on overlay loop tables that are merged at a barrier
// in canonical object order, the Jaccard matrix is computed in parallel row
// blocks of identical per-cell arithmetic, and the two granularity levels
// and two execution sides fan out with a divided worker budget — so the
// report is byte-identical for every worker count. See DESIGN.md §7.
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"difftrace/internal/attr"
	"difftrace/internal/bscore"
	"difftrace/internal/cluster"
	"difftrace/internal/diffnlr"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/obs"
	"difftrace/internal/parlot"
	"difftrace/internal/pool"
	"difftrace/internal/resilience"
	"difftrace/internal/trace"
)

// Config is one parameter combination of the DiffTrace loop (the dashed box
// of Figure 1): the four user knobs of §II-F.
type Config struct {
	Filter  *filter.Filter // knob 4: front-end filter (carries the NLR K, knob 3)
	Attr    attr.Config    // knob 2: FCA attributes (Table V)
	Linkage cluster.Method // knob 1: dendrogram linkage method
	// BuildLattices materializes the concept lattices (needed for lattice
	// inspection/rendering; the JSM itself is derivable either way).
	BuildLattices bool
	// Resilient isolates per-stage failures instead of propagating them:
	// a panic or error confined to one object (e.g. an NLR blow-up on a
	// pathological trace) skips that object on both sides with a recorded
	// StageError, and a level-wide failure degrades to an empty Level —
	// the remaining traces still produce a JSM and ranking. Off by
	// default: errors and panics propagate exactly as before.
	Resilient bool
	// Workers bounds the intra-run parallelism: per-object NLR and
	// attribute extraction, Jaccard row blocks, and the level/side fan-out
	// all share this budget. 0 means runtime.GOMAXPROCS(0); 1 runs the
	// whole pipeline inline. Output is identical for every value.
	Workers int
	// Streaming marks a run consuming compressed parlot.StreamSets via
	// DiffRunStream: events are decoded and filtered on the fly each
	// summarization round, so peak memory is bounded by the compressed
	// trace plus the summarized forms, never the expansion. Set by
	// DiffRunStream itself; DiffRunContext rejects it (a materialized set
	// has nothing to stream). The report is byte-identical to the batch
	// path's — the differential suite and the two Fuzz*Stream* targets pin
	// that equivalence.
	Streaming bool
	// Obs, when non-nil, collects the run's observability picture: stage
	// spans, NLR interning and per-level counts, pool utilization, and
	// degraded-stage records (see internal/obs). Instrumentation never
	// changes the Report, and everything except wall times and worker
	// counts in the resulting manifest is schedule-independent. Nil (the
	// default) is a zero-cost fast path.
	Obs *obs.Run
}

// workers resolves the Workers knob (0 → GOMAXPROCS).
func (c Config) workers() int { return pool.Workers(c.Workers) }

// DefaultConfig mirrors the paper's experiment settings: drop returns and
// PLT, keep MPI calls, K=10, single/noFreq attributes, ward linkage.
func DefaultConfig() Config {
	return Config{
		Filter:  filter.New(filter.MPIAll),
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
		Linkage: cluster.Ward,
	}
}

// Analysis is one execution analyzed at one granularity.
type Analysis struct {
	NLR     map[string][]nlr.Element // object name -> summarized sequence
	Attrs   map[string]fca.AttrSet
	JSM     *jaccard.JSM
	Lattice *fca.Lattice // nil unless Config.BuildLattices
	Linkage *cluster.Linkage
}

// Level is the complete normal-vs-faulty comparison at one granularity
// (threads or processes).
type Level struct {
	Normal, Faulty *Analysis
	JSMD           *jaccard.JSM
	BScore         float64
	Suspects       []jaccard.Suspect
}

// TopSuspects returns up to k object names whose similarity rows changed by
// more than eps.
func (l *Level) TopSuspects(k int, eps float64) []string {
	var out []string
	for _, s := range l.Suspects {
		if len(out) >= k || s.Score <= eps {
			break
		}
		out = append(out, s.Name)
	}
	return out
}

// Report is the output of one DiffRun.
type Report struct {
	Cfg       Config
	LoopTable *nlr.Table
	Threads   *Level // objects are "p.t" thread traces
	Processes *Level // objects are "p" merged process traces
	// Degraded lists the isolated failures a Resilient run recovered
	// from: objects skipped and levels degraded, each with its stage and
	// cause. Empty for a fully healthy run (and always empty when
	// Config.Resilient is off, since failures then abort the run).
	Degraded []*resilience.StageError
}

// testStageHook, when non-nil, is invoked at the start of every stage
// (level entry and per-object summarization). Tests install a panicking
// hook to exercise the isolation paths; nil in production.
var testStageHook func(stage, object string)

func fireStage(stage, object string) {
	if testStageHook != nil {
		testStageHook(stage, object)
	}
}

// maxRounds caps the NLR fixpoint iteration (see summarizeAll). Real
// workloads converge in two rounds — the same cost as the historical
// seed+extract double pass; the cap only guards against pathological
// parse oscillation.
const maxRounds = 4

// sideRun is one execution side of one level during the run.
type sideRun struct {
	name string // "normal" | "faulty"
	objs []object
	// Per-object state, indexed like objs. elems holds the final-round NLR
	// sequences; failed objects carry their StageError in nlrErrs/attrErrs.
	elems    [][]nlr.Element
	attrs    []fca.AttrSet
	nlrErrs  []*resilience.StageError
	attrErrs []*resilience.StageError
}

func newSideRun(name string, objs []object) *sideRun {
	return &sideRun{
		name:     name,
		objs:     objs,
		elems:    make([][]nlr.Element, len(objs)),
		attrs:    make([]fca.AttrSet, len(objs)),
		nlrErrs:  make([]*resilience.StageError, len(objs)),
		attrErrs: make([]*resilience.StageError, len(objs)),
	}
}

// levelRun is the per-level scratch state of one DiffRun.
type levelRun struct {
	stage string
	key   string      // obs span segment: "threads" | "processes"
	sides [2]*sideRun // 0 = normal, 1 = faulty
	// dead marks a level whose entry stage failed (Resilient runs): its
	// objects are excluded from summarization and it degrades to
	// emptyLevel.
	dead  bool
	err   *resilience.StageError // level-wide failure
	level *Level
}

// DiffRun executes the full pipeline for one parameter combination.
func DiffRun(normal, faulty *trace.TraceSet, cfg Config) (*Report, error) {
	return DiffRunContext(nil, normal, faulty, cfg)
}

// DiffRunContext is DiffRun with cooperative cancellation: ctx is observed
// at every stage boundary and between worker-pool claims (pool.DoContext),
// so a run can be cut short by a caller-supplied deadline or cancellation.
// A cancelled run returns the wrapped ctx error — cancellation always
// aborts, even under Config.Resilient, because a partial report must never
// be mistaken for a degraded-but-complete one. A nil ctx is never
// cancelled, making DiffRunContext(nil, ...) exactly DiffRun.
func DiffRunContext(ctx context.Context, normal, faulty *trace.TraceSet, cfg Config) (*Report, error) {
	if cfg.Streaming {
		return nil, fmt.Errorf("core: Config.Streaming set on a materialized run; use DiffRunStream with parlot StreamSets")
	}
	if cfg.Filter == nil {
		cfg.Filter = filter.Everything()
	}
	if cfg.Attr.Kind == attr.Context && cfg.Filter.DropReturns {
		return nil, fmt.Errorf("core: caller/callee (ctx) attributes need return events; use a filter spec starting with 0")
	}
	run := cfg.Obs
	spRun := run.StartSpan("diffrun")
	defer spRun.End()
	table := nlr.NewTable()
	table.Observe(run)
	rep := &Report{Cfg: cfg, LoopTable: table}

	spFilter := run.StartSpan("diffrun/filter")
	fn := cfg.Filter.ApplySet(normal)
	ff := cfg.Filter.ApplySet(faulty)
	spFilter.End()

	levels := []*levelRun{
		newLevelRun("thread level", "threads", threadObjects(fn), threadObjects(ff)),
		newLevelRun("process level", "processes", processObjects(fn), processObjects(ff)),
	}
	return diffRun(ctx, cfg, rep, table, levels)
}

// DiffRunStream executes the full pipeline over compressed StreamSets: the
// traces are never expanded — each summarization round re-decodes the
// per-thread FCM/RLE streams and filters symbols on the fly, attribute
// extraction consumes the summarized sequences (or re-streams the events
// for the caller→callee kind), and the lattice/JSM stages see exactly the
// inputs the batch path would hand them. The report is byte-identical to
// DiffRun on the materialized equivalent of the same bytes.
func DiffRunStream(normal, faulty *parlot.StreamSet, cfg Config) (*Report, error) {
	return DiffRunStreamContext(nil, normal, faulty, cfg)
}

// DiffRunStreamContext is DiffRunStream with cooperative cancellation,
// behaving exactly as DiffRunContext does: every stage boundary, worker
// claim, and (new here) per-object decode loop observes ctx, and a
// cancelled run aborts even under Config.Resilient. Workers, Resilient,
// and Obs compose identically to the batch path.
func DiffRunStreamContext(ctx context.Context, normal, faulty *parlot.StreamSet, cfg Config) (*Report, error) {
	cfg.Streaming = true
	if cfg.Filter == nil {
		cfg.Filter = filter.Everything()
	}
	if cfg.Attr.Kind == attr.Context && cfg.Filter.DropReturns {
		return nil, fmt.Errorf("core: caller/callee (ctx) attributes need return events; use a filter spec starting with 0")
	}
	run := cfg.Obs
	spRun := run.StartSpan("diffrun")
	defer spRun.End()
	table := nlr.NewTable()
	table.Observe(run)
	rep := &Report{Cfg: cfg, LoopTable: table}

	// Streaming defers filtering to decode time; the memo caches the
	// per-function keep decision so replay filtering is O(1) per event.
	// One memo per registry (a normal/faulty pair shares its registry by
	// the same contract as TraceSets, but nothing breaks if it doesn't).
	spFilter := run.StartSpan("diffrun/filter")
	nm := cfg.Filter.Memo(normal.Registry)
	fm := nm
	if faulty.Registry != normal.Registry {
		fm = cfg.Filter.Memo(faulty.Registry)
	}
	spFilter.End()

	levels := []*levelRun{
		newLevelRun("thread level", "threads",
			threadStreamObjects(normal, cfg.Filter, nm), threadStreamObjects(faulty, cfg.Filter, fm)),
		newLevelRun("process level", "processes",
			processStreamObjects(normal, cfg.Filter, nm), processStreamObjects(faulty, cfg.Filter, fm)),
	}
	return diffRun(ctx, cfg, rep, table, levels)
}

// diffRun is the shared pipeline tail: everything after object
// construction is common to the batch and streaming paths — the same
// summarization fixpoint, overlay merges, attribute extraction,
// canonicalization, and analysis run over both, which is what makes the
// equivalence structural rather than coincidental.
func diffRun(ctx context.Context, cfg Config, rep *Report, table *nlr.Table, levels []*levelRun) (*Report, error) {
	run := cfg.Obs
	prog := obs.ProgressFrom(ctx)
	if cfg.Streaming {
		// Mode marker for manifests; constant, so manifests stay
		// byte-identical across worker counts within the mode.
		run.Counter("core.streaming").Add(1)
	}

	// Level entry: historically the first stage of each level's work. In a
	// Resilient run a failure here kills just that level.
	for _, lv := range levels {
		lv := lv
		if !cfg.Resilient {
			fireStage(lv.stage, "")
			continue
		}
		if serr := resilience.Guard(lv.stage, "", func() error {
			fireStage(lv.stage, "")
			return nil
		}); serr != nil {
			lv.dead, lv.err = true, serr
		}
	}

	// Phase 1: NLR over every (level, side, object) of the live levels,
	// in parallel, against a shared deterministic loop table.
	prog.SetStage("summarize")
	spSum := run.StartSpan("summarize")
	if err := summarizeAll(ctx, levels, cfg, table); err != nil {
		return nil, err
	}
	spSum.End()
	run.Counter("nlr.table.bodies").Add(int64(table.Len()))

	// Phase 2: per-level attribute extraction + analysis; the two levels
	// run concurrently with a divided worker budget.
	prog.SetStage("analyze")
	spAn := run.StartSpan("analyze")
	w := cfg.workers()
	levelW := pool.Divide(w, len(levels))
	levelErrs := make([]error, len(levels))
	poolErr := pool.DoObservedContext(ctx, run, "core.levels", w, len(levels), func(i int) {
		lv := levels[i]
		if lv.dead {
			lv.level = emptyLevel()
			return
		}
		if !cfg.Resilient {
			levelErrs[i] = lv.analyze(ctx, cfg, levelW)
			return
		}
		if serr := resilience.Guard(lv.stage, "", func() error {
			return lv.analyze(ctx, cfg, levelW)
		}); serr != nil {
			lv.err = serr
			lv.level = emptyLevel()
		}
	})
	// Cancellation overrides Resilient degradation: any level failure that
	// coincides with a dead ctx is an abort, not a degraded run.
	if poolErr != nil {
		return nil, fmt.Errorf("core: analyze: %w", poolErr)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("core: analyze: %w", ctx.Err())
	}
	for i, lv := range levels {
		if err := levelErrs[i]; err != nil {
			return nil, fmt.Errorf("core: %s: %w", lv.stage, err)
		}
	}
	spAn.End()

	// Degraded accounting in canonical order: per level, the normal side's
	// NLR then attribute errors in object order, the faulty side's
	// likewise, then any level-wide failure.
	for _, lv := range levels {
		for _, s := range lv.sides {
			for _, e := range s.nlrErrs {
				if e != nil {
					rep.Degraded = append(rep.Degraded, e)
				}
			}
			for _, e := range s.attrErrs {
				if e != nil {
					rep.Degraded = append(rep.Degraded, e)
				}
			}
		}
		if lv.err != nil {
			rep.Degraded = append(rep.Degraded, lv.err)
		}
	}
	rep.Threads = levels[0].level
	rep.Processes = levels[1].level
	rep.observe(run, levels)
	return rep, nil
}

// observe folds the run's structural totals into the manifest: per-level
// object/attribute/JSM-cell counts, NLR sequence-length distribution, and
// the degraded-stage list (already in canonical order, so the manifest is
// schedule-independent). Counters rather than gauges so that sweeps, which
// share one obs.Run across many DiffRuns, aggregate deterministically.
func (rep *Report) observe(run *obs.Run, levels []*levelRun) {
	if run == nil {
		return
	}
	seqLen := run.Histogram("nlr.seq_len")
	for _, lv := range levels {
		// Metric names are compile-time literals per level key (the
		// obsdiscipline check forbids runtime-built names, which cap
		// cardinality at what the source declares).
		var objects, failed, attrsC, jsmCells *obs.Counter
		switch lv.key {
		case "threads":
			objects = run.Counter("core.threads.objects")
			failed = run.Counter("core.threads.failed")
			attrsC = run.Counter("core.threads.attrs")
			jsmCells = run.Counter("core.threads.jsm_cells")
		case "processes":
			objects = run.Counter("core.processes.objects")
			failed = run.Counter("core.processes.failed")
			attrsC = run.Counter("core.processes.attrs")
			jsmCells = run.Counter("core.processes.jsm_cells")
		}
		for _, s := range lv.sides {
			for i := range s.objs {
				objects.Add(1)
				if s.nlrErrs[i] != nil || s.attrErrs[i] != nil {
					failed.Add(1)
					continue
				}
				attrsC.Add(1)
				seqLen.Observe(int64(len(s.elems[i])))
			}
		}
		if lv.level != nil && lv.level.JSMD != nil {
			n := len(lv.level.JSMD.Names)
			jsmCells.Add(int64(n * (n - 1) / 2))
		}
	}
	for _, e := range rep.Degraded {
		run.AddDegraded(e.Stage, e.Object, e.Err.Error())
	}
	run.Counter("core.degraded").Add(int64(len(rep.Degraded)))
}

func newLevelRun(stage, key string, nObjs, fObjs []object) *levelRun {
	nObjs, fObjs = union(nObjs, fObjs)
	return &levelRun{
		stage: stage,
		key:   key,
		sides: [2]*sideRun{newSideRun("normal", nObjs), newSideRun("faulty", fObjs)},
	}
}

// nlrItem addresses one (level, side, object) summarization unit.
type nlrItem struct {
	lv   *levelRun
	side *sideRun
	idx  int
}

// summarizeAll is the parallel NLR phase. Each round summarizes every live
// object against a frozen view of the shared loop table, writing new loop
// bodies into a private overlay (nlr.NewOverlay); at the round barrier the
// overlays are absorbed into the table in canonical item order, which fixes
// the ID of every body independently of scheduling. Rounds repeat until
// the table stops growing, so loops discovered in any trace fold in every
// other (the cross-trace heuristic nlr.SummarizeSet's two passes provide,
// iterated to a fixpoint and symmetric across the normal/faulty sides).
//
// With Workers <= 1 the same rounds run inline on one goroutine; since the
// absorb order never depends on scheduling, the resulting table and element
// sequences are identical for every worker count.
func summarizeAll(ctx context.Context, levels []*levelRun, cfg Config, table *nlr.Table) error {
	var items []nlrItem
	for _, lv := range levels {
		if lv.dead {
			continue
		}
		for _, s := range lv.sides {
			for i := range s.objs {
				items = append(items, nlrItem{lv: lv, side: s, idx: i})
			}
		}
	}
	w := cfg.workers()
	run := cfg.Obs
	prevLen := -1
	for round := 0; round < maxRounds && table.Len() != prevLen; round++ {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("core: summarize: %w", ctx.Err())
		}
		prevLen = table.Len()
		run.Counter("nlr.rounds").Add(1)
		overlays := make([]*nlr.Table, len(items))
		elems := make([][]nlr.Element, len(items))
		roundErrs := make([]*resilience.StageError, len(items))
		poolErr := pool.DoObservedContext(ctx, run, "core.summarize", w, len(items), func(i int) {
			it := items[i]
			if it.side.nlrErrs[it.idx] != nil {
				return // failed in an earlier round; stays skipped
			}
			o := it.side.objs[it.idx]
			stage := it.lv.stage + "/" + it.side.name + "/nlr"
			sp := run.StartSpan("summarize/" + it.lv.key + "/" + it.side.name)
			defer sp.End()
			work := func() {
				fireStage(stage, o.name)
				ov := nlr.NewOverlay(table)
				elems[i] = o.summarize(ctx, cfg.Filter.K, ov)
				overlays[i] = ov
			}
			if !cfg.Resilient {
				work()
				return
			}
			if serr := resilience.Guard(stage, o.name, func() error {
				work()
				return nil
			}); serr != nil {
				roundErrs[i] = serr
			}
		})
		if poolErr != nil {
			// Cancelled mid-round: the partial overlays must not be
			// absorbed — a ctx abort leaves no half-merged table behind.
			return fmt.Errorf("core: summarize: %w", poolErr)
		}
		// Barrier: merge discoveries in canonical order and land the
		// round's sequences (remapped to the canonical IDs).
		for i, it := range items {
			if roundErrs[i] != nil {
				it.side.nlrErrs[it.idx] = roundErrs[i]
				it.side.elems[it.idx] = nil
				continue
			}
			if overlays[i] == nil {
				continue
			}
			remap := table.Absorb(overlays[i])
			it.side.elems[it.idx] = nlr.RemapElements(elems[i], remap)
		}
	}
	return nil
}

// analyze runs one level's attribute extraction and both sides' analyses,
// then the cross-side comparison, with up to w workers. A dead ctx aborts
// between stages with the wrapped ctx error.
func (lv *levelRun) analyze(ctx context.Context, cfg Config, w int) error {
	// Attribute extraction over both sides' objects in parallel. Failed
	// objects (either stage) are excluded from both sides below.
	type attrItem struct {
		side *sideRun
		idx  int
	}
	var items []attrItem
	for _, s := range lv.sides {
		for i := range s.objs {
			if s.nlrErrs[i] == nil {
				items = append(items, attrItem{side: s, idx: i})
			}
		}
	}
	run := cfg.Obs
	attrErr := pool.DoObservedContext(ctx, run, "core.attr", w, len(items), func(i int) {
		it := items[i]
		o := it.side.objs[it.idx]
		stage := lv.stage + "/" + it.side.name + "/attr"
		sp := run.StartSpan("analyze/" + lv.key + "/" + it.side.name + "/attr")
		defer sp.End()
		work := func() {
			fireStage(stage, o.name)
			if cfg.Attr.Kind == attr.Context {
				// Caller→callee attributes come from the raw enter/exit
				// nesting, not the NLR sequence.
				it.side.attrs[it.idx] = o.extractContext(ctx, cfg.Attr.Freq)
			} else {
				it.side.attrs[it.idx] = attr.Extract(it.side.elems[it.idx], cfg.Attr)
			}
		}
		if !cfg.Resilient {
			work()
			return
		}
		if serr := resilience.Guard(stage, o.name, func() error {
			work()
			return nil
		}); serr != nil {
			it.side.attrErrs[it.idx] = serr
		}
	})
	if attrErr != nil {
		return fmt.Errorf("attr: %w", attrErr)
	}

	// An object skipped on either side must leave both, so the two JSMs
	// keep identical name sets and jaccard.Diff/BScore stay well-defined.
	excluded := map[string]bool{}
	for _, s := range lv.sides {
		for i, o := range s.objs {
			if s.nlrErrs[i] != nil || s.attrErrs[i] != nil {
				excluded[o.name] = true
			}
		}
	}

	// Canonicalize: the parallel extraction above built each set in a
	// private universe; rebind them all to one per-level interner, in
	// canonical (side, object) order with sorted attributes, so dense IDs
	// are schedule-independent and both sides' intents share a bit universe
	// — every lattice and JSM kernel below is then pure word arithmetic.
	interner := fca.NewInterner()
	for _, s := range lv.sides {
		for i := range s.objs {
			if s.attrs[i] != nil {
				s.attrs[i] = fca.NewAttrSetIn(interner, s.attrs[i].Sorted()...)
			}
		}
	}

	// Both sides' lattice/JSM/linkage builds run concurrently. They only
	// read the now-frozen interner, so IDs stay deterministic.
	sideW := pool.Divide(w, 2)
	var analyses [2]*Analysis
	sideErrs := make([]error, 2)
	buildErr := pool.DoObservedContext(ctx, run, "core.sides", w, 2, func(i int) {
		sp := run.StartSpan("analyze/" + lv.key + "/" + lv.sides[i].name + "/build")
		defer sp.End()
		analyses[i], sideErrs[i] = lv.sides[i].buildAnalysis(cfg, interner, excluded, sideW)
	})
	if buildErr != nil {
		return fmt.Errorf("build: %w", buildErr)
	}
	for _, err := range sideErrs {
		if err != nil {
			return err
		}
	}
	normal, faulty := analyses[0], analyses[1]

	spDiff := run.StartSpan("analyze/" + lv.key + "/diff")
	defer spDiff.End()
	jsmd, err := jaccard.Diff(faulty.JSM, normal.JSM)
	if err != nil {
		return err
	}
	b, err := bscore.BScore(normal.Linkage, faulty.Linkage)
	if err != nil {
		return err
	}
	lv.level = &Level{
		Normal:   normal,
		Faulty:   faulty,
		JSMD:     jsmd,
		BScore:   b,
		Suspects: jsmd.Suspects(),
	}
	return nil
}

// buildAnalysis assembles the lattice/JSM/linkage for one execution side
// from the objects that survived summarization and extraction. All attr
// sets are already bound to the per-level interner, which the side's
// lattice shares so normal/faulty intents stay comparable as bitsets.
func (s *sideRun) buildAnalysis(cfg Config, interner *fca.Interner, excluded map[string]bool, w int) (*Analysis, error) {
	nlrs := make(map[string][]nlr.Element, len(s.objs))
	attrs := make(map[string]fca.AttrSet, len(s.objs))
	for i, o := range s.objs {
		if excluded[o.name] {
			continue
		}
		nlrs[o.name] = s.elems[i]
		attrs[o.name] = s.attrs[i]
	}
	a := &Analysis{NLR: nlrs, Attrs: attrs}
	if cfg.BuildLattices {
		a.Lattice = fca.NewLatticeWith(interner)
		a.Lattice.Observe(cfg.Obs)
		for _, o := range s.objs {
			if at, ok := attrs[o.name]; ok {
				a.Lattice.AddObject(o.name, at)
			}
		}
		a.JSM = jaccard.FromLattice(a.Lattice)
	} else {
		a.JSM = jaccard.NewParallelObserved(attrs, w, cfg.Obs)
	}
	lk, err := cluster.Build(a.JSM.Distance(), cfg.Linkage)
	if err != nil {
		return nil, err
	}
	a.Linkage = lk
	return a, nil
}

// emptyLevel is the placeholder for a level that failed wholesale in a
// Resilient run: renderable (non-nil analyses, empty matrices), with no
// suspects.
func emptyLevel() *Level {
	empty := func() *Analysis {
		return &Analysis{
			NLR:     map[string][]nlr.Element{},
			Attrs:   map[string]fca.AttrSet{},
			JSM:     jaccard.New(nil),
			Linkage: &cluster.Linkage{},
		}
	}
	return &Level{Normal: empty(), Faulty: empty(), JSMD: jaccard.New(nil)}
}

// object is a named event source: either a filtered materialized trace
// (batch mode — tr is set) or a bundle of compressed per-thread streams
// filtered during replay (streaming mode — sts is set). Ghosts created by
// union carry an empty tr in both modes.
type object struct {
	name string
	tr   *trace.Trace
	reg  *trace.Registry

	// Streaming-mode source: the compressed streams (one for a thread
	// object, the process's threads in thread order for a process object)
	// plus the filter applied per decoded symbol. Nil in batch mode.
	sts []*parlot.StreamTrace
	flt *filter.Filter
	km  *filter.Memo
}

// forEachEvent walks the object's filtered events in trace order. The
// batch path reads the already-filtered materialized trace; the streaming
// path re-decodes the compressed blocks and applies the identical filter
// predicate (drop-returns on kind, then the memoized KeepName) per symbol
// — the same decisions filter.Apply makes, in the same order, which is
// what makes the two modes' token streams equal event for event.
//
// ctx is observed every few thousand events so multi-million-event streams
// stay cancellable mid-object. An early bail implies ctx.Err() != nil,
// which the pipeline's stage-boundary checks turn into a run abort — a
// partially walked object can never reach a successful report.
//
// The same stride feeds the job's live Progress (when the ctx carries one):
// the decoded-event count is flushed once per 8192 events plus once at the
// end, so a scrape of GET /v1/jobs/{id} sees the tokenizer advance at one
// atomic add per batch, not per event.
func (o object) forEachEvent(ctx context.Context, yield func(name string, kind trace.EventKind)) {
	prog := obs.ProgressFrom(ctx)
	n := 0
	flushed := 0
	defer func() {
		if n > flushed {
			prog.AddEvents(int64(n - flushed))
		}
	}()
	alive := func() bool {
		n++
		if n&0x1fff != 0 {
			return true
		}
		prog.AddEvents(int64(n - flushed))
		flushed = n
		return ctx == nil || ctx.Err() == nil
	}
	if o.sts == nil {
		for _, e := range o.tr.Events {
			if !alive() {
				return
			}
			yield(o.reg.Name(e.Func), e.Kind)
		}
		return
	}
	for _, st := range o.sts {
		r := st.Reader()
		for {
			fn, kind, ok := r.Next()
			if !ok {
				break
			}
			if !alive() {
				return
			}
			if o.flt.DropReturns && kind == trace.Exit {
				continue
			}
			if !o.km.Keep(fn) {
				continue
			}
			yield(o.reg.Name(fn), kind)
		}
	}
}

// summarize runs NLR over the object's filtered events: the same
// tokenization as nlr.SummarizeTrace (exits surviving the filter render as
// "ret:<name>"), pushed through one code path for both modes so their
// summaries are equal by construction.
func (o object) summarize(ctx context.Context, k int, table *nlr.Table) []nlr.Element {
	s := nlr.NewSummarizer(k, table)
	o.forEachEvent(ctx, func(name string, kind trace.EventKind) {
		if kind == trace.Exit {
			name = "ret:" + name
		}
		s.Push(name)
	})
	s.Finalize()
	return s.Elements()
}

// extractContext mines caller→callee attributes from the object's raw
// enter/exit stream; both modes drive the shared attr.ContextStream
// accumulator (the one attr.ExtractContext wraps).
func (o object) extractContext(ctx context.Context, f attr.Freq) fca.AttrSet {
	cs := attr.NewContextStream()
	o.forEachEvent(ctx, cs.Push)
	return cs.ExtractIn(attr.NewInterner(), f)
}

// threadObjects names every per-thread trace "p.t".
func threadObjects(s *trace.TraceSet) []object {
	var out []object
	for _, id := range s.IDs() {
		out = append(out, object{name: id.String(), tr: s.Traces[id], reg: s.Registry})
	}
	return out
}

// processObjects merges each process's threads into one object named "p".
func processObjects(s *trace.TraceSet) []object {
	var out []object
	for _, p := range s.Processes() {
		out = append(out, object{name: strconv.Itoa(p), tr: s.ProcessTrace(p), reg: s.Registry})
	}
	return out
}

// threadStreamObjects names every per-thread stream "p.t" (streaming
// counterpart of threadObjects over a filtered set — the filter rides
// along and applies at decode time).
func threadStreamObjects(ss *parlot.StreamSet, flt *filter.Filter, km *filter.Memo) []object {
	var out []object
	for _, id := range ss.IDs() {
		out = append(out, object{
			name: id.String(), reg: ss.Registry,
			sts: []*parlot.StreamTrace{ss.Get(id)}, flt: flt, km: km,
		})
	}
	return out
}

// processStreamObjects bundles each process's thread streams, in thread
// order, into one object named "p" — the same concatenation
// trace.TraceSet.ProcessTrace materializes, expressed as sequential
// replay.
func processStreamObjects(ss *parlot.StreamSet, flt *filter.Filter, km *filter.Memo) []object {
	var out []object
	for _, p := range ss.Processes() {
		var sts []*parlot.StreamTrace
		for _, id := range ss.IDs() {
			if id.Process == p {
				sts = append(sts, ss.Get(id))
			}
		}
		out = append(out, object{
			name: strconv.Itoa(p), reg: ss.Registry,
			sts: sts, flt: flt, km: km,
		})
	}
	return out
}

// union aligns two object lists by name: objects missing on one side get an
// empty trace (a thread that never spawned in the faulty run is itself a
// signal, not an error). Ghosts are appended in natural name order so the
// object sequence — and with it the canonical loop-table merge order — is
// fully deterministic.
func union(a, b []object) ([]object, []object) {
	names := map[string]bool{}
	for _, o := range a {
		names[o.name] = true
	}
	for _, o := range b {
		names[o.name] = true
	}
	fill := func(objs []object, reg *trace.Registry) []object {
		have := map[string]bool{}
		for _, o := range objs {
			have[o.name] = true
		}
		var ghosts []string
		for n := range names {
			if !have[n] {
				ghosts = append(ghosts, n)
			}
		}
		sort.Slice(ghosts, func(i, j int) bool { return jaccard.LessNatural(ghosts[i], ghosts[j]) })
		for _, n := range ghosts {
			objs = append(objs, object{name: n, tr: &trace.Trace{}, reg: reg})
		}
		return objs
	}
	var regA, regB *trace.Registry
	if len(a) > 0 {
		regA = a[0].reg
	}
	if len(b) > 0 {
		regB = b[0].reg
	}
	return fill(a, regA), fill(b, regB)
}

// DiffNLR renders the diffNLR(x) view for an object of the given level
// (§II-F.1): the Myers diff of its normal vs faulty NLR token sequences.
func (r *Report) DiffNLR(level *Level, name string) (*diffnlr.DiffNLR, error) {
	n, ok := level.Normal.NLR[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown object %q", name)
	}
	f := level.Faulty.NLR[name]
	id, err := trace.ParseThreadID(name)
	if err != nil {
		id = trace.TID(0, 0)
	}
	return diffnlr.Compute(id, nlr.Tokens(n), nlr.Tokens(f), r.LoopTable), nil
}
