package ddmin

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
)

// contains reports whether sub ⊆ sup as multisets of ints.
func contains(sup, sub []int) bool {
	counts := map[int]int{}
	for _, v := range sup {
		counts[v]++
	}
	for _, v := range sub {
		if counts[v] == 0 {
			return false
		}
		counts[v]--
	}
	return true
}

func TestSingleCulprit(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	calls := 0
	test := func(s []int) bool {
		calls++
		for _, v := range s {
			if v == 37 {
				return true
			}
		}
		return false
	}
	got := Minimize(items, test)
	if !reflect.DeepEqual(got, []int{37}) {
		t.Fatalf("minimized = %v", got)
	}
	if calls > 200 {
		t.Errorf("ddmin used %d tests for a single culprit in 64 items", calls)
	}
}

func TestTwoCulpritsInteraction(t *testing.T) {
	// Failure requires BOTH 3 and 12 (an interacting pair).
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	test := func(s []int) bool {
		has3, has12 := false, false
		for _, v := range s {
			if v == 3 {
				has3 = true
			}
			if v == 12 {
				has12 = true
			}
		}
		return has3 && has12
	}
	got := Minimize(items, test)
	if !reflect.DeepEqual(got, []int{3, 12}) {
		t.Fatalf("minimized = %v", got)
	}
}

func TestNonFailingInput(t *testing.T) {
	if got := Minimize([]int{1, 2, 3}, func([]int) bool { return false }); got != nil {
		t.Errorf("non-failing input minimized to %v", got)
	}
	if got := Minimize(nil, func([]int) bool { return true }); got != nil {
		t.Errorf("empty input minimized to %v", got)
	}
}

func TestAllItemsRequired(t *testing.T) {
	items := []int{1, 2, 3, 4}
	test := func(s []int) bool { return len(s) == 4 }
	got := Minimize(items, test)
	if !reflect.DeepEqual(got, items) {
		t.Errorf("minimized = %v, want all items", got)
	}
}

func TestOrderPreserved(t *testing.T) {
	items := []int{9, 5, 7, 1, 8}
	test := func(s []int) bool {
		// Fails when both 5 and 8 present.
		has5, has8 := false, false
		for _, v := range s {
			if v == 5 {
				has5 = true
			}
			if v == 8 {
				has8 = true
			}
		}
		return has5 && has8
	}
	got := Minimize(items, test)
	if !reflect.DeepEqual(got, []int{5, 8}) {
		t.Errorf("minimized = %v (order must be preserved)", got)
	}
}

func TestSplitProperties(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7}
	for n := 1; n <= 9; n++ {
		chunks := split(items, n)
		var flat []int
		for _, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("split(%d) produced empty chunk", n)
			}
			flat = append(flat, c...)
		}
		if !reflect.DeepEqual(flat, items) {
			t.Fatalf("split(%d) lost items: %v", n, chunks)
		}
	}
}

// TestMinimizeFaultPlan is the DiffTrace application: a composite fault
// plan with one deadlock-inducing fault and several benign ones is shrunk
// to the single root cause.
func TestMinimizeFaultPlan(t *testing.T) {
	all := []faults.Fault{
		{Kind: faults.SwapSendRecv, Process: 1, Thread: -1, AfterIteration: 3},  // benign: completes
		{Kind: faults.SwapSendRecv, Process: 9, Thread: -1, AfterIteration: 2},  // benign
		{Kind: faults.DeadlockStop, Process: 5, Thread: -1, AfterIteration: 7},  // the culprit
		{Kind: faults.SwapSendRecv, Process: 13, Thread: -1, AfterIteration: 5}, // benign
	}
	deadlocks := func(fs []faults.Fault) bool {
		res, err := oddeven.Run(oddeven.Config{
			Procs: 16, Seed: 5, Plan: faults.NewPlan(fs...),
		})
		return err == nil && res.Deadlocked
	}
	got := Minimize(all, deadlocks)
	if len(got) != 1 || got[0].Kind != faults.DeadlockStop {
		t.Fatalf("minimized plan = %v", got)
	}
}

// Property: the result satisfies test, is a subsequence of the input, and
// is 1-minimal (removing any single element breaks the test) for monotone
// membership tests.
func TestQuickOneMinimal(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%20 + 1
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		// Random required subset (nonempty).
		required := map[int]bool{}
		for i := 0; i < rng.Intn(4)+1; i++ {
			required[rng.Intn(n)] = true
		}
		test := func(s []int) bool {
			have := map[int]bool{}
			for _, v := range s {
				have[v] = true
			}
			for r := range required {
				if !have[r] {
					return false
				}
			}
			return true
		}
		got := Minimize(items, test)
		if !test(got) || !contains(items, got) {
			return false
		}
		// Exactly the required set (sorted order preserved from items).
		if len(got) != len(required) {
			return false
		}
		for _, v := range got {
			if !required[v] {
				return false
			}
		}
		// 1-minimality: dropping any element fails.
		for i := range got {
			reduced := append(append([]int{}, got[:i]...), got[i+1:]...)
			if test(reduced) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
