package ddmin_test

import (
	"fmt"

	"difftrace/internal/ddmin"
)

// Minimizing a change set to the single element that causes the failure.
func ExampleMinimize() {
	changes := []string{"refactor", "bump-dep", "swap-send-recv", "rename"}
	fails := func(s []string) bool {
		for _, c := range s {
			if c == "swap-send-recv" {
				return true
			}
		}
		return false
	}
	fmt.Println(ddmin.Minimize(changes, fails))
	// Output:
	// [swap-send-recv]
}
