// Package ddmin implements Zeller's delta-debugging minimization algorithm
// ("Yesterday, my program worked. Today, it does not. Why?" — ESEC/FSE'99,
// the paper's reference [36], named in §VI as a direct inspiration for
// computing differences with previous executions).
//
// Minimize reduces a failure-inducing change set to a 1-minimal one: a set
// where removing any single element makes the failure disappear. DiffTrace
// uses it to shrink composite fault plans to their root-cause faults and to
// simplify failing traces, but the algorithm is generic.
package ddmin

// Minimize returns a 1-minimal subsequence of items that still satisfies
// test ("still fails"). test must hold for items itself; test(nil) is
// assumed false (an empty change set cannot fail). The relative order of
// the surviving items is preserved. The number of test invocations is
// O(n²) worst case, O(log n) for a single culprit — Zeller's ddmin bounds.
func Minimize[T any](items []T, test func([]T) bool) []T {
	if len(items) == 0 || !test(items) {
		return nil
	}
	cur := append([]T(nil), items...)
	n := 2
	for len(cur) >= 2 {
		chunks := split(cur, n)
		reduced := false

		// Try each chunk alone ("reduce to subset").
		for _, c := range chunks {
			if test(c) {
				cur = c
				n = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		// Try each complement ("reduce to complement").
		if n > 2 || len(chunks) > 2 {
			for i := range chunks {
				comp := complement(chunks, i)
				if test(comp) {
					cur = comp
					if n-1 >= 2 {
						n = n - 1
					}
					reduced = true
					break
				}
			}
		}
		if reduced {
			continue
		}
		// Refine granularity or stop.
		if n >= len(cur) {
			break
		}
		n = min(len(cur), 2*n)
	}
	return cur
}

// split partitions items into n non-empty, near-equal, order-preserving
// chunks (fewer than n when len(items) < n).
func split[T any](items []T, n int) [][]T {
	if n > len(items) {
		n = len(items)
	}
	out := make([][]T, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		end := start + (len(items)-start)/(n-i)
		if end == start {
			end = start + 1
		}
		out = append(out, items[start:end])
		start = end
	}
	return out
}

// complement concatenates every chunk except chunks[skip].
func complement[T any](chunks [][]T, skip int) []T {
	var out []T
	for i, c := range chunks {
		if i == skip {
			continue
		}
		out = append(out, c...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
