package attr

import (
	"difftrace/internal/fca"
	"difftrace/internal/trace"
)

// ContextStream incrementally mines caller→callee attributes from a pushed
// event stream — the streaming pipeline's form of ExtractContext, which
// ExtractContextIn is now a thin wrapper over, so the batch and streaming
// extractions run the identical accumulator and cannot diverge. State is
// the open-call stack plus the frequency table: bounded by call depth and
// distinct caller>callee pairs, never by trace length.
type ContextStream struct {
	freqs map[string]int
	stack []string
}

// NewContextStream returns an empty accumulator.
func NewContextStream() *ContextStream {
	return &ContextStream{freqs: make(map[string]int)}
}

// Push feeds one event. Enter events attribute the callee to the current
// stack top (pseudo-root "_" at top level); Exit events pop when balanced,
// exactly as ExtractContext always treated materialized traces.
func (c *ContextStream) Push(name string, kind trace.EventKind) {
	switch kind {
	case trace.Enter:
		caller := "_"
		if len(c.stack) > 0 {
			caller = c.stack[len(c.stack)-1]
		}
		c.freqs[caller+">"+name]++
		c.stack = append(c.stack, name)
	case trace.Exit:
		if n := len(c.stack); n > 0 && c.stack[n-1] == name {
			c.stack = c.stack[:n-1]
		}
	}
}

// ExtractIn folds the accumulated frequencies into an attribute set bound
// to in, interning in sorted-name order (same contract as attr.ExtractIn).
// The accumulator remains usable; further pushes extend the same tally.
func (c *ContextStream) ExtractIn(in *Interner, f Freq) fca.AttrSet {
	return renderAll(in, c.freqs, f)
}
