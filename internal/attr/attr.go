// Package attr mines FCA attributes from NLR-summarized traces, implementing
// Table V of the paper: attributes are either single entries of the trace
// NLR or consecutive pairs of entries, each optionally tagged with its
// observed frequency, the log10 of that frequency, or no frequency at all.
//
// These are the "versatile knobs to adjust for bug-location and similarity
// calculation": noFreq captures pure structure (which calls/loops appear),
// actual frequency captures progress (how often), and log10 is the
// magnitude-only middle ground.
package attr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"difftrace/internal/fca"
	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

// Interner is the dense attribute universe of one diff run, re-exported so
// pipeline callers can build one without importing fca directly. Handing
// the same interner to ExtractIn for every object (and to
// fca.NewLatticeWith) keeps all intents of a run in one bit universe, which
// is what turns lattice and JSM kernels into word operations.
type Interner = fca.Interner

// NewInterner returns an empty attribute universe.
func NewInterner() *Interner { return fca.NewInterner() }

// Kind selects single entries or consecutive pairs (Table V rows).
type Kind int

const (
	// Single uses each entry of the trace NLR as an attribute.
	Single Kind = iota
	// Double uses each pair of consecutive entries of the NLR sequence.
	Double
	// Context uses caller→callee pairs reconstructed from the trace's
	// enter/exit nesting — the attribute family Weber et al.'s structural
	// clustering [5] actually mines ("determined based on caller/callee
	// relationships", §I). Unlike Single/Double it reads the raw trace,
	// so the front-end filter must keep returns (DropReturns = false).
	Context
)

// Freq selects how the observed frequency is folded into the attribute
// (Table V columns).
type Freq int

const (
	// Actual records the exact observed frequency.
	Actual Freq = iota
	// Log10 records floor(log10(frequency)) — the order of magnitude.
	Log10
	// NoFreq records only presence/absence.
	NoFreq
)

// Config is one attribute-extraction setting; the ranking tables label rows
// with its String() ("sing.noFreq", "doub.log10", ...).
type Config struct {
	Kind Kind
	Freq Freq
}

// String renders the table label.
func (c Config) String() string {
	k := "sing"
	switch c.Kind {
	case Double:
		k = "doub"
	case Context:
		k = "ctx"
	}
	var f string
	switch c.Freq {
	case Actual:
		f = "actual"
	case Log10:
		f = "log10"
	case NoFreq:
		f = "noFreq"
	}
	return k + "." + f
}

// ParseConfig parses a table label produced by String.
func ParseConfig(s string) (Config, error) {
	k, f, ok := strings.Cut(s, ".")
	if !ok {
		return Config{}, fmt.Errorf("attr: bad config %q", s)
	}
	var c Config
	switch k {
	case "sing":
		c.Kind = Single
	case "doub":
		c.Kind = Double
	case "ctx":
		c.Kind = Context
	default:
		return Config{}, fmt.Errorf("attr: bad kind %q", k)
	}
	switch f {
	case "actual":
		c.Freq = Actual
	case "log10":
		c.Freq = Log10
	case "noFreq":
		c.Freq = NoFreq
	default:
		return Config{}, fmt.Errorf("attr: bad freq %q", f)
	}
	return c, nil
}

// AllConfigs returns the six Kind×Freq combinations of Table V — the sweep
// space of the paper's ranking tables. The Context kind is an extension
// and is not part of the canonical sweep; see AllConfigsExtended.
func AllConfigs() []Config {
	var out []Config
	for _, k := range []Kind{Single, Double} {
		for _, f := range []Freq{Actual, Log10, NoFreq} {
			out = append(out, Config{Kind: k, Freq: f})
		}
	}
	return out
}

// AllConfigsExtended adds the caller→callee Context kind to the sweep.
func AllConfigsExtended() []Config {
	out := AllConfigs()
	for _, f := range []Freq{Actual, Log10, NoFreq} {
		out = append(out, Config{Kind: Context, Freq: f})
	}
	return out
}

// entryToken renders an NLR element for attribute purposes: plain symbols
// keep their name; loops contribute their body ID ("L3") so the *identity*
// of the loop is the attribute and the iteration count flows into the
// frequency instead.
func entryToken(e nlr.Element) string {
	if e.Loop == nil {
		return e.Sym
	}
	return fmt.Sprintf("L%d", e.Loop.ID)
}

// entryWeight is the frequency contribution of one element: 1 for a plain
// call, the iteration count for a loop (an unfinished loop thus shows up as
// a frequency drop — the "per-thread measure of progress" of §II-A).
func entryWeight(e nlr.Element) int {
	if e.Loop == nil {
		return 1
	}
	return e.Loop.Count
}

// Extract mines the attribute set of one summarized trace into a private
// attribute universe.
func Extract(elems []nlr.Element, cfg Config) fca.AttrSet {
	return ExtractIn(fca.NewInterner(), elems, cfg)
}

// ExtractIn is Extract binding the result to a shared interner. Attributes
// are interned in sorted order, so for a given sequence of ExtractIn calls
// the IDs the interner assigns are reproducible — the property the
// determinism suite leans on when one interner is shared across a run.
// Calls on the same interner may not run concurrently if ID assignment
// must stay deterministic; parallel extraction uses private interners and
// re-interns at the barrier (see core's analyze).
func ExtractIn(in *Interner, elems []nlr.Element, cfg Config) fca.AttrSet {
	freqs := make(map[string]int)
	switch cfg.Kind {
	case Single:
		for _, e := range elems {
			freqs[entryToken(e)] += entryWeight(e)
		}
	case Double:
		for i := 0; i+1 < len(elems); i++ {
			pair := entryToken(elems[i]) + "|" + entryToken(elems[i+1])
			freqs[pair]++
		}
	}
	return renderAll(in, freqs, cfg.Freq)
}

// renderAll folds a frequency table into an attribute set bound to in,
// interning in sorted-name order for reproducible IDs.
func renderAll(in *Interner, freqs map[string]int, f Freq) fca.AttrSet {
	names := make([]string, 0, len(freqs))
	for a := range freqs {
		names = append(names, a)
	}
	sort.Strings(names)
	out := fca.NewAttrSetIn(in)
	for _, a := range names {
		out.Add(render(a, freqs[a], f))
	}
	return out
}

// render folds the frequency into the attribute name per Table V.
func render(attrName string, freq int, f Freq) string {
	switch f {
	case Actual:
		return fmt.Sprintf("%s:%d", attrName, freq)
	case Log10:
		return fmt.Sprintf("%s:e%d", attrName, int(math.Floor(math.Log10(float64(freq)))))
	default:
		return attrName
	}
}

// ExtractContext mines caller→callee attributes ("caller>callee") from a
// trace's enter/exit nesting; top-level calls attribute to the pseudo-root
// "_". The trace must retain its return events for the nesting to be
// reconstructible (use a "0…" filter spec).
func ExtractContext(tr *trace.Trace, reg *trace.Registry, f Freq) fca.AttrSet {
	return ExtractContextIn(fca.NewInterner(), tr, reg, f)
}

// ExtractContextIn is ExtractContext binding the result to a shared
// interner (see ExtractIn for the concurrency contract). It drives the
// same ContextStream accumulator the streaming pipeline uses, so the two
// paths share one definition of the caller→callee relation.
func ExtractContextIn(in *Interner, tr *trace.Trace, reg *trace.Registry, f Freq) fca.AttrSet {
	cs := NewContextStream()
	for _, e := range tr.Events {
		cs.Push(reg.Name(e.Func), e.Kind)
	}
	return cs.ExtractIn(in, f)
}
