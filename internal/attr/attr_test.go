package attr

import (
	"reflect"
	"testing"
	"testing/quick"

	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

func elems(tokens ...string) []nlr.Element {
	out := make([]nlr.Element, len(tokens))
	for i, t := range tokens {
		out[i] = nlr.Element{Sym: t}
	}
	return out
}

func loopElem(id, count int, body ...string) nlr.Element {
	return nlr.Element{Loop: &nlr.Loop{ID: id, Count: count, Body: elems(body...)}}
}

func TestConfigStringRoundTrip(t *testing.T) {
	for _, c := range AllConfigs() {
		got, err := ParseConfig(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v -> %q -> %v (%v)", c, c.String(), got, err)
		}
	}
	if len(AllConfigs()) != 6 {
		t.Errorf("sweep space = %d configs, want 6", len(AllConfigs()))
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, s := range []string{"", "sing", "sing.", "bad.noFreq", "sing.bad"} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q): expected error", s)
		}
	}
}

func TestSingleNoFreq(t *testing.T) {
	es := []nlr.Element{
		{Sym: "MPI_Init"},
		loopElem(0, 16, "MPI_Send", "MPI_Recv"),
		{Sym: "MPI_Finalize"},
	}
	got := Extract(es, Config{Single, NoFreq}).Sorted()
	want := []string{"L0", "MPI_Finalize", "MPI_Init"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attrs = %v", got)
	}
}

func TestSingleActualCountsLoopIterations(t *testing.T) {
	es := []nlr.Element{
		{Sym: "f"}, {Sym: "f"},
		loopElem(2, 7, "g"),
	}
	got := Extract(es, Config{Single, Actual}).Sorted()
	want := []string{"L2:7", "f:2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attrs = %v", got)
	}
}

func TestSingleLog10Buckets(t *testing.T) {
	es := []nlr.Element{
		loopElem(0, 7, "a"),   // 7 -> e0
		loopElem(1, 42, "b"),  // 42 -> e1
		loopElem(2, 500, "c"), // 500 -> e2
	}
	got := Extract(es, Config{Single, Log10}).Sorted()
	want := []string{"L0:e0", "L1:e1", "L2:e2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attrs = %v", got)
	}
}

func TestLog10BucketsMergeNearbyFrequencies(t *testing.T) {
	// Frequencies 11 and 99 land in the same bucket; 9 and 11 do not.
	a := Extract([]nlr.Element{loopElem(0, 11, "x")}, Config{Single, Log10})
	b := Extract([]nlr.Element{loopElem(0, 99, "x")}, Config{Single, Log10})
	c := Extract([]nlr.Element{loopElem(0, 9, "x")}, Config{Single, Log10})
	if !a.Equal(b) {
		t.Error("11 and 99 should share a log10 bucket")
	}
	if a.Equal(c) {
		t.Error("9 and 11 should differ")
	}
}

func TestDoublePairs(t *testing.T) {
	es := elems("a", "b", "a", "b")
	got := Extract(es, Config{Double, Actual}).Sorted()
	want := []string{"a|b:2", "b|a:1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attrs = %v", got)
	}
}

func TestDoubleWithLoops(t *testing.T) {
	es := []nlr.Element{{Sym: "MPI_Init"}, loopElem(1, 4, "s", "r"), {Sym: "MPI_Finalize"}}
	got := Extract(es, Config{Double, NoFreq}).Sorted()
	want := []string{"L1|MPI_Finalize", "MPI_Init|L1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attrs = %v", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	for _, c := range AllConfigs() {
		if got := Extract(nil, c); got.Len() != 0 {
			t.Errorf("%v: empty trace produced %v", c, got)
		}
	}
	// Single element has no pairs.
	if got := Extract(elems("x"), Config{Double, NoFreq}); got.Len() != 0 {
		t.Errorf("single element produced pairs: %v", got)
	}
}

// Property: noFreq attrs are invariant to loop counts; actual attrs are not
// (when counts differ).
func TestQuickFreqSensitivity(t *testing.T) {
	f := func(c1, c2 uint8) bool {
		n1, n2 := int(c1)%50+1, int(c2)%50+1
		a := []nlr.Element{loopElem(0, n1, "x")}
		b := []nlr.Element{loopElem(0, n2, "x")}
		noF := Extract(a, Config{Single, NoFreq}).Equal(Extract(b, Config{Single, NoFreq}))
		if !noF {
			return false
		}
		act := Extract(a, Config{Single, Actual}).Equal(Extract(b, Config{Single, Actual}))
		return act == (n1 == n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: extraction from a real summarizer output never panics and
// produces at most one attribute per distinct entry (Single/NoFreq).
func TestQuickExtractOnSummarized(t *testing.T) {
	f := func(stream []uint8) bool {
		toks := make([]string, len(stream))
		for i, s := range stream {
			toks[i] = string(rune('a' + int(s)%3))
		}
		es := nlr.Summarize(toks, 5, nil)
		got := Extract(es, Config{Single, NoFreq})
		return got.Len() <= len(es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtractContext(t *testing.T) {
	reg := trace.NewRegistry()
	tr := &trace.Trace{ID: trace.TID(0, 0)}
	push := func(name string, kind trace.EventKind) { tr.Append(reg.ID(name), kind) }
	// main{ f{ g } f{ g } } — caller/callee pairs with frequencies.
	push("main", trace.Enter)
	for i := 0; i < 2; i++ {
		push("f", trace.Enter)
		push("g", trace.Enter)
		push("g", trace.Exit)
		push("f", trace.Exit)
	}
	push("main", trace.Exit)

	got := ExtractContext(tr, reg, Actual).Sorted()
	want := []string{"_>main:1", "f>g:2", "main>f:2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("context attrs = %v", got)
	}
	noF := ExtractContext(tr, reg, NoFreq).Sorted()
	if !reflect.DeepEqual(noF, []string{"_>main", "f>g", "main>f"}) {
		t.Errorf("noFreq context attrs = %v", noF)
	}
}

func TestContextDistinguishesCallSites(t *testing.T) {
	// The same callee under two different callers yields two attributes —
	// the calling-context sensitivity Single/Double lack.
	reg := trace.NewRegistry()
	mk := func(caller string) *trace.Trace {
		tr := &trace.Trace{ID: trace.TID(0, 0)}
		tr.Append(reg.ID(caller), trace.Enter)
		tr.Append(reg.ID("memcpy"), trace.Enter)
		tr.Append(reg.ID("memcpy"), trace.Exit)
		tr.Append(reg.ID(caller), trace.Exit)
		return tr
	}
	a := ExtractContext(mk("worker"), reg, NoFreq)
	b := ExtractContext(mk("master"), reg, NoFreq)
	if a.Jaccard(b) != 0 {
		t.Errorf("different call sites should not share context attrs: %v vs %v", a.Sorted(), b.Sorted())
	}
}

func TestContextConfigRoundTrip(t *testing.T) {
	c := Config{Kind: Context, Freq: Log10}
	if c.String() != "ctx.log10" {
		t.Errorf("String = %q", c.String())
	}
	got, err := ParseConfig("ctx.log10")
	if err != nil || got != c {
		t.Errorf("ParseConfig = %v, %v", got, err)
	}
	if len(AllConfigsExtended()) != 9 {
		t.Errorf("extended sweep = %d configs", len(AllConfigsExtended()))
	}
}
