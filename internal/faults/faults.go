// Package faults is the systematic fault-injection layer the paper's
// evaluation relies on ("we rely on a rudimentary fault injection", §II-A):
// a typed plan of code-level faults that the simulated applications consult
// at the exact sites the paper describes.
//
// Covered faults:
//
//	SwapSendRecv        §II-G swapBug  — swap Recv;Send order at one rank
//	DeadlockStop        §II-G dlBug    — hang one rank mid-loop
//	OmitCritical        §IV-B          — drop the OpenMP critical section
//	WrongCollectiveSize §IV-C          — wrong MPI_Allreduce payload size
//	WrongReduceOp       §IV-D          — MPI_MIN -> MPI_MAX
//	SkipFunction        §V             — one rank never calls a function
package faults

import "fmt"

// Kind is a fault class.
type Kind int

const (
	// SwapSendRecv swaps the Send/Recv order in a matched exchange.
	SwapSendRecv Kind = iota
	// DeadlockStop parks the rank forever at the fault site.
	DeadlockStop
	// OmitCritical removes critical-section protection around an access.
	OmitCritical
	// WrongCollectiveSize perturbs the payload size of a collective.
	WrongCollectiveSize
	// WrongReduceOp replaces the reduction operator.
	WrongReduceOp
	// SkipFunction suppresses all calls to Fault.Target on the rank.
	SkipFunction
)

var kindNames = []string{
	"swapSendRecv", "deadlockStop", "omitCritical",
	"wrongCollectiveSize", "wrongReduceOp", "skipFunction",
}

// String names the fault class.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one injected code-level fault.
type Fault struct {
	Kind    Kind
	Process int // target process/rank; -1 matches any
	Thread  int // target thread within the process; -1 matches any
	// AfterIteration activates the fault once the site's iteration count
	// reaches this value (0 = immediately). The paper's swapBug/dlBug fire
	// "after the seventh iteration".
	AfterIteration int
	// Target names the affected function for SkipFunction.
	Target string
}

// String renders like "swapBug@rank5 after iter 7".
func (f Fault) String() string {
	s := fmt.Sprintf("%s@process %d", f.Kind, f.Process)
	if f.Thread >= 0 {
		s += fmt.Sprintf(" thread %d", f.Thread)
	}
	if f.AfterIteration > 0 {
		s += fmt.Sprintf(" after iteration %d", f.AfterIteration)
	}
	if f.Target != "" {
		s += " target " + f.Target
	}
	return s
}

// Named returns the paper's predefined fault plans by the names used in
// the evaluation sections, for CLI/example use:
//
//	none, swapBug, dlBug, ompBug, wrongSize, wrongOp, skipLeapFrog
func Named(name string) (*Plan, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "swapBug": // §II-G: rank 5 swaps Send/Recv after iteration 7
		return NewPlan(Fault{Kind: SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7}), nil
	case "dlBug": // §II-G: rank 5 deadlocks after iteration 7
		return NewPlan(Fault{Kind: DeadlockStop, Process: 5, Thread: -1, AfterIteration: 7}), nil
	case "ompBug": // §IV-B: unprotected memcpy in process 6, thread 4
		return NewPlan(Fault{Kind: OmitCritical, Process: 6, Thread: 4}), nil
	case "wrongSize": // §IV-C: wrong collective size in process 2
		return NewPlan(Fault{Kind: WrongCollectiveSize, Process: 2, Thread: -1}), nil
	case "wrongOp": // §IV-D: MPI_MIN -> MPI_MAX in process 0
		return NewPlan(Fault{Kind: WrongReduceOp, Process: 0, Thread: -1}), nil
	case "skipLeapFrog": // §V: rank 2 never calls LagrangeLeapFrog
		return NewPlan(Fault{Kind: SkipFunction, Process: 2, Thread: -1, Target: "LagrangeLeapFrog"}), nil
	default:
		return nil, fmt.Errorf("faults: unknown fault name %q", name)
	}
}

// Names lists the accepted Named() fault names.
func Names() []string {
	return []string{"none", "swapBug", "dlBug", "ompBug", "wrongSize", "wrongOp", "skipLeapFrog"}
}

// Plan is a set of faults for one run. The zero value is the fault-free
// plan (the "normal" execution).
type Plan struct {
	Faults []Fault
}

// NewPlan builds a plan from faults.
func NewPlan(fs ...Fault) *Plan { return &Plan{Faults: fs} }

// Active reports whether a fault of the given kind fires at this site.
// iteration is the site's current iteration count (pass 0 for sites without
// iterations). A nil plan is fault-free.
func (p *Plan) Active(kind Kind, process, thread, iteration int) bool {
	return p.Find(kind, process, thread, iteration) != nil
}

// Find returns the first matching fault, or nil.
func (p *Plan) Find(kind Kind, process, thread, iteration int) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Kind != kind {
			continue
		}
		if f.Process != -1 && f.Process != process {
			continue
		}
		if f.Thread != -1 && f.Thread != thread {
			continue
		}
		if iteration < f.AfterIteration {
			continue
		}
		return f
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// String renders the whole plan.
func (p *Plan) String() string {
	if p.Empty() {
		return "fault-free"
	}
	s := ""
	for i, f := range p.Faults {
		if i > 0 {
			s += "; "
		}
		s += f.String()
	}
	return s
}
