package faults

import (
	"strings"
	"testing"
)

func TestNilPlanIsFaultFree(t *testing.T) {
	var p *Plan
	if p.Active(SwapSendRecv, 5, 0, 100) {
		t.Error("nil plan injected a fault")
	}
	if !p.Empty() {
		t.Error("nil plan not empty")
	}
	if p.String() != "fault-free" {
		t.Errorf("String = %q", p.String())
	}
}

func TestProcessAndThreadMatching(t *testing.T) {
	p := NewPlan(Fault{Kind: OmitCritical, Process: 6, Thread: 4})
	if !p.Active(OmitCritical, 6, 4, 0) {
		t.Error("exact match missed")
	}
	if p.Active(OmitCritical, 6, 3, 0) || p.Active(OmitCritical, 5, 4, 0) {
		t.Error("wrong thread/process matched")
	}
	if p.Active(SwapSendRecv, 6, 4, 0) {
		t.Error("wrong kind matched")
	}
}

func TestWildcardMatching(t *testing.T) {
	p := NewPlan(Fault{Kind: SkipFunction, Process: -1, Thread: -1, Target: "LagrangeLeapFrog"})
	if !p.Active(SkipFunction, 7, 3, 0) {
		t.Error("wildcard missed")
	}
	f := p.Find(SkipFunction, 2, 0, 0)
	if f == nil || f.Target != "LagrangeLeapFrog" {
		t.Errorf("Find = %v", f)
	}
}

func TestAfterIteration(t *testing.T) {
	// The paper's swapBug: rank 5 after the seventh iteration.
	p := NewPlan(Fault{Kind: SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7})
	if p.Active(SwapSendRecv, 5, 0, 6) {
		t.Error("fired before iteration 7")
	}
	for _, it := range []int{7, 8, 15} {
		if !p.Active(SwapSendRecv, 5, 0, it) {
			t.Errorf("not active at iteration %d", it)
		}
	}
}

func TestMultipleFaults(t *testing.T) {
	p := NewPlan(
		Fault{Kind: SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7},
		Fault{Kind: WrongReduceOp, Process: 0, Thread: -1},
	)
	if !p.Active(SwapSendRecv, 5, 0, 9) || !p.Active(WrongReduceOp, 0, 0, 0) {
		t.Error("multi-fault plan missed")
	}
	if p.Empty() {
		t.Error("plan with faults reported empty")
	}
}

func TestStrings(t *testing.T) {
	f := Fault{Kind: DeadlockStop, Process: 5, Thread: 2, AfterIteration: 7, Target: "x"}
	s := f.String()
	for _, want := range []string{"deadlockStop", "process 5", "thread 2", "iteration 7", "target x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
	p := NewPlan(f, Fault{Kind: OmitCritical, Process: 1, Thread: -1})
	if !strings.Contains(p.String(), ";") {
		t.Errorf("plan string = %q", p.String())
	}
}
