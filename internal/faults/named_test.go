package faults

import "testing"

func TestNamedPlans(t *testing.T) {
	cases := []struct {
		name    string
		kind    Kind
		process int
	}{
		{"swapBug", SwapSendRecv, 5},
		{"dlBug", DeadlockStop, 5},
		{"ompBug", OmitCritical, 6},
		{"wrongSize", WrongCollectiveSize, 2},
		{"wrongOp", WrongReduceOp, 0},
		{"skipLeapFrog", SkipFunction, 2},
	}
	for _, c := range cases {
		p, err := Named(c.name)
		if err != nil {
			t.Errorf("Named(%s): %v", c.name, err)
			continue
		}
		if len(p.Faults) != 1 || p.Faults[0].Kind != c.kind || p.Faults[0].Process != c.process {
			t.Errorf("Named(%s) = %v", c.name, p)
		}
	}
	if p, err := Named("none"); err != nil || p != nil {
		t.Errorf("Named(none) = %v, %v", p, err)
	}
	if p, err := Named(""); err != nil || p != nil {
		t.Errorf("Named('') = %v, %v", p, err)
	}
	if _, err := Named("bogus"); err == nil {
		t.Error("Named(bogus) accepted")
	}
}

func TestNamesCoverAllPlans(t *testing.T) {
	for _, n := range Names() {
		if _, err := Named(n); err != nil {
			t.Errorf("listed name %q does not resolve: %v", n, err)
		}
	}
	if len(Names()) != 7 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestNamedSwapBugMatchesPaper(t *testing.T) {
	p, _ := Named("swapBug")
	// §II-G: rank 5 after the seventh iteration.
	if !p.Active(SwapSendRecv, 5, 0, 7) || p.Active(SwapSendRecv, 5, 0, 6) {
		t.Error("swapBug iteration gate wrong")
	}
	o, _ := Named("ompBug")
	// §IV-B: process 6 thread 4.
	if !o.Active(OmitCritical, 6, 4, 0) || o.Active(OmitCritical, 6, 3, 0) {
		t.Error("ompBug thread gate wrong")
	}
	s, _ := Named("skipLeapFrog")
	if f := s.Find(SkipFunction, 2, 0, 0); f == nil || f.Target != "LagrangeLeapFrog" {
		t.Error("skipLeapFrog target wrong")
	}
}
