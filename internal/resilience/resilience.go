// Package resilience is the degradation-tolerance vocabulary shared by the
// ingestion layer (trace, parlot) and the analysis pipeline (core): reason
// codes for salvage decisions, the structured IngestReport that accounts for
// every kept/dropped/synthesized event, StageError for isolated per-stage
// failures, and Guard, which converts panics in a pipeline stage into
// recorded errors instead of killing the whole analysis.
//
// DiffTrace's inputs come from *faulty* runs — crashed ranks, deadlocked
// threads, ParLOT streams aborted mid-write — so damaged input is the
// expected case, not the exception. The contract this package supports:
//
//   - Lenient readers never fail the whole set because one trace is damaged;
//     they quarantine the damage, keep what is salvageable, and record every
//     decision here so nothing is lost silently.
//   - set.TotalEvents() == report.EventsKept + report.EventsSynthesized
//     always holds after a lenient read (the accounting invariant the chaos
//     harness and fuzz tests pin down).
//
// The package depends only on the standard library so that every layer can
// import it without cycles.
package resilience

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Reason codes one class of salvage decision. Codes are stable strings so
// they can be rendered, grepped, and asserted on in tests.
type Reason string

const (
	// BadHeader: a "# trace" header line failed to parse; events that
	// follow are quarantined until the next valid header.
	BadHeader Reason = "bad-header"
	// OrphanEvent: an event or "truncated" marker appeared before any
	// header, so it has no trace to belong to.
	OrphanEvent Reason = "orphan-event"
	// MalformedEvent: an event line without the "kind name" shape.
	MalformedEvent Reason = "malformed-event"
	// UnknownKind: an event line whose kind is neither "call" nor "ret".
	UnknownKind Reason = "unknown-kind"
	// LineTooLong: a line exceeded ReadOptions.MaxLineBytes and was
	// discarded without buffering it whole.
	LineTooLong Reason = "line-too-long"
	// UnbalancedRet: a "ret" with no matching open "call" (lenient mode
	// drops it; the nesting-sensitive stages would misattribute it).
	UnbalancedRet Reason = "unbalanced-ret"
	// AutoClosedCall: a synthetic "ret" appended to re-balance the call
	// stack of a corruption-affected trace.
	AutoClosedCall Reason = "auto-closed-call"
	// EventCap: events beyond ReadOptions.MaxEventsPerTrace.
	EventCap Reason = "event-cap"
	// TraceCap: whole traces beyond ReadOptions.MaxTraces.
	TraceCap Reason = "trace-cap"
	// TruncatedStream: the input ended (or failed) mid-record; the partial
	// prefix was kept.
	TruncatedStream Reason = "truncated-stream"
	// CorruptStream: a compressed event stream failed to decode; the
	// symbols decoded before the failure were kept.
	CorruptStream Reason = "corrupt-stream"
	// UnknownName: a binary event referenced a name-table entry that does
	// not exist.
	UnknownName Reason = "unknown-name"
)

// TraceRecord is the per-trace account of one lenient read: how many events
// survived, how many were dropped or synthesized and why, and whether the
// trace was quarantined wholesale.
type TraceRecord struct {
	// ID is the trace's "p.t" thread ID, or "?" for damage that could not
	// be attributed to any trace (garbage before the first header, a
	// header too mangled to name a trace).
	ID string
	// Kept is the number of input events that survived into the trace.
	Kept int
	// Dropped counts dropped items (events, lines, or stream remainders).
	Dropped int
	// Synthesized counts events invented to repair the trace (auto-closed
	// calls).
	Synthesized int
	// Quarantined is true when the whole trace (or an unattributable run
	// of events) was discarded rather than salvaged.
	Quarantined bool
	// Reasons tallies the salvage decisions by reason code.
	Reasons map[Reason]int
}

func (t *TraceRecord) note(r Reason, n int) {
	if t.Reasons == nil {
		t.Reasons = make(map[Reason]int)
	}
	t.Reasons[r] += n
}

// reasonSummary renders "reason×n" pairs in deterministic order.
func (t *TraceRecord) reasonSummary() string {
	keys := make([]string, 0, len(t.Reasons))
	for r := range t.Reasons {
		keys = append(keys, string(r))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s×%d", k, t.Reasons[Reason(k)])
	}
	return strings.Join(parts, ", ")
}

// IngestReport is the structured account of one read: global event totals
// plus a record for every trace that needed salvaging. A clean read keeps
// its totals but has no per-trace records.
type IngestReport struct {
	// Source labels the input (a file path, "normal", "faulty", ...).
	Source string
	// Lenient records which mode produced the report.
	Lenient bool
	// EventsKept counts input events that made it into the TraceSet.
	EventsKept int
	// EventsDropped counts dropped items (events, garbage lines, stream
	// remainders) across all records.
	EventsDropped int
	// EventsSynthesized counts repair events added across all records.
	EventsSynthesized int

	records map[string]*TraceRecord
	order   []string
}

// NewIngestReport returns an empty report.
func NewIngestReport(lenient bool) *IngestReport {
	return &IngestReport{Lenient: lenient}
}

// Keep counts n input events that survived into the set.
func (r *IngestReport) Keep(n int) {
	if r != nil {
		r.EventsKept += n
	}
}

// Trace returns the record for id, creating it on first use (first-seen
// order is preserved for rendering).
func (r *IngestReport) Trace(id string) *TraceRecord {
	if r.records == nil {
		r.records = make(map[string]*TraceRecord)
	}
	rec, ok := r.records[id]
	if !ok {
		rec = &TraceRecord{ID: id}
		r.records[id] = rec
		r.order = append(r.order, id)
	}
	return rec
}

// Drop records n dropped items against trace id for the given reason.
func (r *IngestReport) Drop(id string, reason Reason, n int) {
	if r == nil || n <= 0 {
		return
	}
	rec := r.Trace(id)
	rec.Dropped += n
	rec.note(reason, n)
	r.EventsDropped += n
}

// Synthesize records n repair events appended to trace id.
func (r *IngestReport) Synthesize(id string, reason Reason, n int) {
	if r == nil || n <= 0 {
		return
	}
	rec := r.Trace(id)
	rec.Synthesized += n
	rec.note(reason, n)
	r.EventsSynthesized += n
}

// Quarantine marks trace id as discarded wholesale for the given reason.
func (r *IngestReport) Quarantine(id string, reason Reason) {
	if r == nil {
		return
	}
	rec := r.Trace(id)
	rec.Quarantined = true
	rec.note(reason, 1)
}

// Records returns the per-trace salvage records in first-seen order.
func (r *IngestReport) Records() []*TraceRecord {
	if r == nil {
		return nil
	}
	out := make([]*TraceRecord, len(r.order))
	for i, id := range r.order {
		out[i] = r.records[id]
	}
	return out
}

// Record returns the record for id, or nil if the trace needed no salvage.
func (r *IngestReport) Record(id string) *TraceRecord {
	if r == nil {
		return nil
	}
	return r.records[id]
}

// Clean reports whether the read needed no salvage at all: nothing dropped,
// nothing synthesized, nothing quarantined.
func (r *IngestReport) Clean() bool {
	return r == nil || len(r.records) == 0
}

// Quarantined counts records discarded wholesale.
func (r *IngestReport) Quarantined() int {
	n := 0
	for _, rec := range r.records {
		if rec.Quarantined {
			n++
		}
	}
	return n
}

// Summary renders the one-line verdict ("clean — 421503 events" or
// "salvaged: kept 421490, dropped 13 (3 traces affected)").
func (r *IngestReport) Summary() string {
	if r == nil {
		return "clean"
	}
	src := ""
	if r.Source != "" {
		src = r.Source + ": "
	}
	if r.Clean() {
		return fmt.Sprintf("%sclean — %d events", src, r.EventsKept)
	}
	return fmt.Sprintf("%ssalvaged: kept %d, dropped %d, synthesized %d (%d traces affected, %d quarantined)",
		src, r.EventsKept, r.EventsDropped, r.EventsSynthesized, len(r.records), r.Quarantined())
}

// String implements fmt.Stringer with the one-line Summary, so a report
// dropped into %v/%s formatting renders readably instead of as a struct
// dump.
func (r *IngestReport) String() string { return r.Summary() }

// RenderTable renders the report as an aligned table — one row per affected
// trace with kept/dropped/synthesized counts, quarantine state, and reason
// tallies — for the CLI's -ingest-report view. A clean report renders as
// its summary line only.
func (r *IngestReport) RenderTable() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	b.WriteByte('\n')
	if r == nil || r.Clean() {
		return b.String()
	}
	const format = "  %-10s %10s %10s %12s %-12s %s\n"
	fmt.Fprintf(&b, format, "TRACE", "KEPT", "DROPPED", "SYNTHESIZED", "STATE", "REASONS")
	for _, rec := range r.Records() {
		state := "salvaged"
		if rec.Quarantined {
			state = "quarantined"
		}
		fmt.Fprintf(&b, format, rec.ID,
			strconv.Itoa(rec.Kept), strconv.Itoa(rec.Dropped), strconv.Itoa(rec.Synthesized),
			state, rec.reasonSummary())
	}
	return b.String()
}

// Render renders the full multi-line report: the summary plus one line per
// affected trace with its reason tallies.
func (r *IngestReport) Render() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	b.WriteByte('\n')
	if r == nil {
		return b.String()
	}
	for _, rec := range r.Records() {
		state := ""
		if rec.Quarantined {
			state = " [quarantined]"
		}
		fmt.Fprintf(&b, "  trace %-8s kept %d, dropped %d, synthesized %d%s (%s)\n",
			rec.ID, rec.Kept, rec.Dropped, rec.Synthesized, state, rec.reasonSummary())
	}
	return b.String()
}

// StageError records an isolated failure of one pipeline stage on one
// object: the rest of the analysis proceeded without it.
type StageError struct {
	// Stage names the pipeline stage ("thread level", "nlr", ...).
	Stage string
	// Object names the trace/object the stage failed on ("" when the
	// failure was not attributable to a single object).
	Object string
	// Err is the underlying error (a recovered panic is wrapped as one).
	Err error
}

// Error implements error.
func (e *StageError) Error() string {
	if e.Object != "" {
		return fmt.Sprintf("resilience: stage %q on %q: %v", e.Stage, e.Object, e.Err)
	}
	return fmt.Sprintf("resilience: stage %q: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error.
func (e *StageError) Unwrap() error { return e.Err }

// Guard runs fn, converting a returned error or a panic into a StageError.
// It returns nil when fn succeeds. The pipeline uses it so that one
// pathological trace (an NLR blow-up, a degenerate matrix) is skipped with a
// recorded StageError while the remaining traces still produce a ranking.
func Guard(stage, object string, fn func() error) (serr *StageError) {
	defer func() {
		if p := recover(); p != nil {
			serr = &StageError{Stage: stage, Object: object, Err: fmt.Errorf("panic: %v", p)}
		}
	}()
	if err := fn(); err != nil {
		return &StageError{Stage: stage, Object: object, Err: err}
	}
	return nil
}
