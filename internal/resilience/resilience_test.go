package resilience

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestIngestReportAccounting(t *testing.T) {
	r := NewIngestReport(true)
	r.Keep(10)
	r.Drop("5.0", MalformedEvent, 3)
	r.Drop("5.0", LineTooLong, 1)
	r.Synthesize("5.0", AutoClosedCall, 2)
	r.Drop("?", OrphanEvent, 4)
	r.Quarantine("?", BadHeader)

	if r.EventsKept != 10 || r.EventsDropped != 8 || r.EventsSynthesized != 2 {
		t.Errorf("totals = kept %d, dropped %d, synth %d", r.EventsKept, r.EventsDropped, r.EventsSynthesized)
	}
	if r.Clean() {
		t.Error("report with drops must not be Clean")
	}
	if r.Quarantined() != 1 {
		t.Errorf("Quarantined = %d", r.Quarantined())
	}
	recs := r.Records()
	if len(recs) != 2 || recs[0].ID != "5.0" || recs[1].ID != "?" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Dropped != 4 || recs[0].Synthesized != 2 {
		t.Errorf("5.0 record = %+v", recs[0])
	}
	if recs[0].Reasons[MalformedEvent] != 3 {
		t.Errorf("reason tally = %v", recs[0].Reasons)
	}
}

func TestIngestReportClean(t *testing.T) {
	r := NewIngestReport(false)
	r.Keep(42)
	if !r.Clean() {
		t.Error("keep-only report should be Clean")
	}
	if !strings.Contains(r.Summary(), "clean — 42 events") {
		t.Errorf("Summary = %q", r.Summary())
	}
	// Zero-count drops are no-ops and must not create records.
	r.Drop("1.0", MalformedEvent, 0)
	if !r.Clean() {
		t.Error("zero drop created a record")
	}
}

func TestIngestReportNilSafe(t *testing.T) {
	var r *IngestReport
	r.Keep(1)
	r.Drop("x", MalformedEvent, 1)
	r.Synthesize("x", AutoClosedCall, 1)
	r.Quarantine("x", BadHeader)
	if !r.Clean() || r.Summary() != "clean" || r.Record("x") != nil {
		t.Error("nil report methods must be safe no-ops")
	}
}

func TestIngestReportRender(t *testing.T) {
	r := NewIngestReport(true)
	r.Source = "faulty.trace"
	r.Keep(5)
	r.Drop("2.1", UnknownKind, 2)
	out := r.Render()
	for _, want := range []string{"faulty.trace", "trace 2.1", "unknown-kind×2", "dropped 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestIngestReportStringer(t *testing.T) {
	r := NewIngestReport(true)
	r.Source = "faulty.trace"
	r.Keep(10)
	r.Drop("2.1", UnknownKind, 2)
	// fmt.Stringer renders the one-line summary, not a struct dump.
	got := fmt.Sprintf("%v", r)
	if got != r.Summary() || !strings.Contains(got, "faulty.trace: salvaged") {
		t.Errorf("String() = %q", got)
	}
}

func TestIngestReportRenderTable(t *testing.T) {
	r := NewIngestReport(true)
	r.Source = "faulty.trace"
	r.Keep(5)
	r.Drop("2.1", UnknownKind, 2)
	r.Synthesize("2.1", AutoClosedCall, 1)
	r.Quarantine("3.0", BadHeader)
	r.Trace("2.1").Kept = 5

	out := r.RenderTable()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // summary + header + 2 trace rows
		t.Fatalf("RenderTable = %d lines, want 4:\n%s", len(lines), out)
	}
	for _, want := range []string{"TRACE", "KEPT", "DROPPED", "SYNTHESIZED", "STATE", "REASONS"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("header missing %q: %s", want, lines[1])
		}
	}
	for _, want := range []string{"2.1", "salvaged", "auto-closed-call×1, unknown-kind×2"} {
		if !strings.Contains(lines[2], want) {
			t.Errorf("row missing %q: %s", want, lines[2])
		}
	}
	if !strings.Contains(lines[3], "quarantined") || !strings.Contains(lines[3], "3.0") {
		t.Errorf("quarantine row wrong: %s", lines[3])
	}

	// A clean report collapses to its summary line.
	clean := NewIngestReport(false)
	clean.Keep(7)
	if got := clean.RenderTable(); strings.Contains(got, "TRACE") || !strings.Contains(got, "clean") {
		t.Errorf("clean RenderTable = %q", got)
	}
}

func TestGuardPassThrough(t *testing.T) {
	if err := Guard("s", "o", func() error { return nil }); err != nil {
		t.Errorf("Guard on success = %v", err)
	}
}

func TestGuardError(t *testing.T) {
	base := errors.New("boom")
	serr := Guard("cluster", "5.0", func() error { return base })
	if serr == nil || !errors.Is(serr, base) {
		t.Fatalf("Guard error = %v", serr)
	}
	if !strings.Contains(serr.Error(), "cluster") || !strings.Contains(serr.Error(), "5.0") {
		t.Errorf("StageError message = %q", serr.Error())
	}
}

func TestGuardPanic(t *testing.T) {
	serr := Guard("nlr", "", func() error { panic("index out of range") })
	if serr == nil || !strings.Contains(serr.Error(), "panic: index out of range") {
		t.Fatalf("Guard panic = %v", serr)
	}
}
