// Package chaos systematically corrupts well-formed trace files so tests
// can assert graceful degradation: for every operator the lenient readers
// must salvage without error (with a fully-accounted IngestReport), the
// strict readers must reject the damage the operator guarantees, and a
// Resilient core.DiffRun over the salvaged set must still produce a
// ranking. The operators mirror how real HPC trace files break: nodes die
// mid-write (truncation), filesystems flip bits (corruption), collectors
// interleave output (duplicate and garbage headers), and aborted runs
// leave calls forever unclosed.
package chaos

import (
	"bytes"
	"math/rand" //lint:allow wallclock corruption operators take a caller-seeded rng — chaos corpora replay byte-identically from the seed
)

// Operator is one corruption strategy over a serialized trace set.
type Operator struct {
	// Name identifies the operator in test output.
	Name string
	// Binary marks operators over the PLOT1 binary format; all others
	// corrupt the text format.
	Binary bool
	// WantStrictError is set when the strict reader is guaranteed to
	// reject the corrupted payload. Operators without it inflict damage
	// strict mode may legitimately tolerate (cuts that happen to land on
	// a line boundary, flips that stay decodable, format-level noise).
	WantStrictError bool
	// Apply returns a corrupted copy of data. It never mutates data and
	// draws any randomness from rng so corruption is reproducible.
	Apply func(data []byte, rng *rand.Rand) []byte
}

// Text returns the corruption operators for the text trace format.
func Text() []Operator {
	return []Operator{
		{
			Name:            "truncate-mid-token",
			WantStrictError: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				// Cut two bytes into the last "call" keyword, leaving a
				// dangling "ca" — a write that died mid-token.
				i := bytes.LastIndex(data, []byte("\ncall "))
				if i < 0 {
					return clone(data)
				}
				return clone(data[:i+3])
			},
		},
		{
			Name:            "flip-line",
			WantStrictError: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				// Replace one event line with spaceless garbage.
				return replaceEventLine(data, rng, []byte("@@bitrot@@"))
			},
		},
		{
			Name:            "garbage-header",
			WantStrictError: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				return insertAtLineBoundary(data, rng, []byte("# trace x.y\n"))
			},
		},
		{
			Name:            "binary-junk-line",
			WantStrictError: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				return insertAtLineBoundary(data, rng, []byte("\x00\xff\x07\x1f junk\n"))
			},
		},
		{
			Name: "duplicate-header",
			Apply: func(data []byte, rng *rand.Rand) []byte {
				// Re-emitting an existing header re-opens that trace:
				// valid input (collectors interleave), not corruption.
				end := bytes.IndexByte(data, '\n')
				if end < 0 || !bytes.HasPrefix(data, []byte("# trace ")) {
					return clone(data)
				}
				return append(clone(data), data[:end+1]...)
			},
		},
		{
			Name: "orphan-ret",
			Apply: func(data []byte, rng *rand.Rand) []byte {
				// A ret with no open call directly after the first header;
				// strict mode tolerates it (historical format tolerance),
				// lenient mode drops and records it.
				return insertAfterFirstHeader(data, []byte("ret __nosuch\n"))
			},
		},
		{
			Name: "long-name",
			Apply: func(data []byte, rng *rand.Rand) []byte {
				// A 64 KiB function name: within the default line bound,
				// over any reasonable configured one.
				line := append([]byte("call "), bytes.Repeat([]byte("x"), 64<<10)...)
				return insertAfterFirstHeader(data, append(line, '\n'))
			},
		},
		{
			Name: "whitespace-noise",
			Apply: func(data []byte, rng *rand.Rand) []byte {
				noisy := insertAtLineBoundary(data, rng, []byte("\n   \n\t\n"))
				return bytes.ReplaceAll(noisy, []byte("\ncall "), []byte("\n  call "))
			},
		},
		{
			Name: "unclosed-calls",
			Apply: func(data []byte, rng *rand.Rand) []byte {
				// A trace whose calls never return: what an aborted run
				// legitimately leaves behind.
				return append(clone(data), "# trace 63.9\ncall ghost_a\ncall ghost_b\n"...)
			},
		},
		{
			Name: "truncate-half",
			// The cut can land mid-name ("call mai" is a valid event), so
			// strict acceptance depends on luck — only lenient behaviour
			// is guaranteed.
			Apply: func(data []byte, rng *rand.Rand) []byte {
				return clone(data[:len(data)/2])
			},
		},
	}
}

// Binary returns the corruption operators for the PLOT1 binary format.
func Binary() []Operator {
	return []Operator{
		{
			Name:            "bin-truncate-half",
			Binary:          true,
			WantStrictError: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				return clone(data[:len(data)/2])
			},
		},
		{
			Name:   "bin-flip-byte",
			Binary: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				out := clone(data)
				if len(out) > 6 {
					out[6+rng.Intn(len(out)-6)] ^= 0xff
				}
				return out
			},
		},
		{
			Name:   "bin-append-garbage",
			Binary: true,
			Apply: func(data []byte, rng *rand.Rand) []byte {
				out := clone(data)
				junk := make([]byte, 64)
				rng.Read(junk)
				return append(out, junk...)
			},
		},
	}
}

// All returns every operator, text then binary.
func All() []Operator {
	return append(Text(), Binary()...)
}

func clone(b []byte) []byte {
	return append([]byte(nil), b...)
}

// lineStarts returns the offset of every line start in data.
func lineStarts(data []byte) []int {
	starts := []int{0}
	for i, c := range data {
		if c == '\n' && i+1 < len(data) {
			starts = append(starts, i+1)
		}
	}
	return starts
}

// insertAtLineBoundary splices ins at a random line start.
func insertAtLineBoundary(data []byte, rng *rand.Rand, ins []byte) []byte {
	starts := lineStarts(data)
	at := starts[rng.Intn(len(starts))]
	out := clone(data[:at])
	out = append(out, ins...)
	return append(out, data[at:]...)
}

// insertAfterFirstHeader splices ins directly after the first header line.
func insertAfterFirstHeader(data []byte, ins []byte) []byte {
	end := bytes.IndexByte(data, '\n')
	if end < 0 {
		return clone(data)
	}
	out := clone(data[:end+1])
	out = append(out, ins...)
	return append(out, data[end+1:]...)
}

// replaceEventLine overwrites one randomly chosen "call"/"ret" line.
func replaceEventLine(data []byte, rng *rand.Rand, with []byte) []byte {
	starts := lineStarts(data)
	var events []int
	for _, at := range starts {
		rest := data[at:]
		if bytes.HasPrefix(rest, []byte("call ")) || bytes.HasPrefix(rest, []byte("ret ")) {
			events = append(events, at)
		}
	}
	if len(events) == 0 {
		return clone(data)
	}
	at := events[rng.Intn(len(events))]
	end := at + bytes.IndexByte(data[at:], '\n')
	if end < at {
		end = len(data)
	}
	out := clone(data[:at])
	out = append(out, with...)
	return append(out, data[end:]...)
}
