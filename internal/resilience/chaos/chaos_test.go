package chaos

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/resilience"
	"difftrace/internal/trace"
)

// buildPair produces a well-formed normal/faulty pair over a shared
// registry: the normal set as text, the faulty set as both text and PLOT1
// binary (the corruption targets).
func buildPair(t testing.TB) (normText, faultText, faultBin []byte) {
	t.Helper()
	reg := trace.NewRegistry()
	run := func(plan *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		if _, err := oddeven.Run(oddeven.Config{Procs: 8, Seed: 5, Plan: plan, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		return tr.Collect()
	}
	normal := run(nil)
	faulty := run(faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	}))
	var nb, fb, bb bytes.Buffer
	if err := trace.WriteSetText(&nb, normal); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSetText(&fb, faulty); err != nil {
		t.Fatal(err)
	}
	if err := parlot.WriteSetBinary(&bb, faulty); err != nil {
		t.Fatal(err)
	}
	return nb.Bytes(), fb.Bytes(), bb.Bytes()
}

func readLenient(data []byte, binary bool, reg *trace.Registry, opts trace.ReadOptions) (*trace.TraceSet, *resilience.IngestReport, error) {
	opts.Mode = trace.Lenient
	if binary {
		return parlot.ReadSetBinaryOptions(bytes.NewReader(data), reg, opts)
	}
	return trace.ReadSetTextOptions(bytes.NewReader(data), reg, opts)
}

func readStrict(data []byte, binary bool) error {
	var err error
	if binary {
		_, err = parlot.ReadSetBinary(bytes.NewReader(data), nil)
	} else {
		_, err = trace.ReadSetText(bytes.NewReader(data), nil)
	}
	return err
}

// TestOperatorsGracefulDegradation is the chaos harness: every operator's
// corruption must be salvaged by the lenient readers with a fully-accounted
// report, rejected by strict mode where guaranteed, and survivable by a
// Resilient DiffRun that still produces a ranking.
func TestOperatorsGracefulDegradation(t *testing.T) {
	normText, faultText, faultBin := buildPair(t)
	for _, op := range All() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			src := faultText
			if op.Binary {
				src = faultBin
			}
			corrupted := op.Apply(src, rng)
			if op.WantStrictError && bytes.Equal(corrupted, src) {
				t.Fatal("operator left the payload untouched")
			}

			// Lenient salvage: nil error, every event accounted for.
			reg := trace.NewRegistry()
			normal, err := trace.ReadSetText(bytes.NewReader(normText), reg)
			if err != nil {
				t.Fatal(err)
			}
			set, rep, err := readLenient(corrupted, op.Binary, reg, trace.ReadOptions{})
			if err != nil {
				t.Fatalf("lenient read: %v", err)
			}
			if got, want := set.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
				t.Fatalf("accounting: TotalEvents %d != kept %d + synthesized %d",
					got, rep.EventsKept, rep.EventsSynthesized)
			}

			// Bounded lenient reads must salvage too.
			_, brep, err := readLenient(corrupted, op.Binary, trace.NewRegistry(), trace.ReadOptions{MaxLineBytes: 4096})
			if err != nil {
				t.Fatalf("bounded lenient read: %v", err)
			}
			if op.Name == "long-name" && brep.Clean() {
				t.Error("64 KiB name under a 4 KiB line bound left a clean report")
			}

			// Strict rejects guaranteed damage, naming the line for text.
			serr := readStrict(corrupted, op.Binary)
			if op.WantStrictError {
				if serr == nil {
					t.Error("strict read accepted the corrupted payload")
				} else if !op.Binary && !strings.Contains(serr.Error(), "line ") {
					t.Errorf("strict error does not name the line: %v", serr)
				}
			}

			// The pipeline still runs — and still ranks — over the salvage.
			cfg := core.DefaultConfig()
			cfg.Resilient = true
			drep, err := core.DiffRun(normal, set, cfg)
			if err != nil {
				t.Fatalf("resilient DiffRun over salvaged set: %v", err)
			}
			if drep.Threads == nil || drep.Processes == nil {
				t.Fatal("resilient DiffRun produced a nil level")
			}
			_ = drep.Threads.TopSuspects(3, 0)
		})
	}
}

// TestOperatorsDeterministic: the same seed yields the same corruption, so
// failures reproduce.
func TestOperatorsDeterministic(t *testing.T) {
	_, faultText, faultBin := buildPair(t)
	for _, op := range All() {
		src := faultText
		if op.Binary {
			src = faultBin
		}
		a := op.Apply(src, rand.New(rand.NewSource(7)))
		b := op.Apply(src, rand.New(rand.NewSource(7)))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: corruption is not deterministic under a fixed seed", op.Name)
		}
	}
}

// TestChaosParallelMatchesSequential replays every corruption operator's
// salvage through the parallel pipeline: a Resilient DiffRun at Workers:8
// must produce the exact report — including the Degraded accounting — of
// the sequential Workers:1 run.
func TestChaosParallelMatchesSequential(t *testing.T) {
	normText, faultText, faultBin := buildPair(t)
	for _, op := range All() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			src := faultText
			if op.Binary {
				src = faultBin
			}
			corrupted := op.Apply(src, rng)

			reg := trace.NewRegistry()
			normal, err := trace.ReadSetText(bytes.NewReader(normText), reg)
			if err != nil {
				t.Fatal(err)
			}
			set, _, err := readLenient(corrupted, op.Binary, reg, trace.ReadOptions{})
			if err != nil {
				t.Fatalf("lenient read: %v", err)
			}

			cfg := core.DefaultConfig()
			cfg.Resilient = true
			cfg.Workers = 1
			seq, err := core.DiffRun(normal, set, cfg)
			if err != nil {
				t.Fatalf("sequential DiffRun: %v", err)
			}
			cfg.Workers = 8
			par, err := core.DiffRun(normal, set, cfg)
			if err != nil {
				t.Fatalf("parallel DiffRun: %v", err)
			}

			// Degraded accounting must match entry for entry.
			if len(seq.Degraded) != len(par.Degraded) {
				t.Fatalf("degraded counts differ: %d vs %d", len(seq.Degraded), len(par.Degraded))
			}
			for i := range seq.Degraded {
				if seq.Degraded[i].Stage != par.Degraded[i].Stage ||
					seq.Degraded[i].Object != par.Degraded[i].Object {
					t.Fatalf("degraded[%d] differs: %v vs %v", i, seq.Degraded[i], par.Degraded[i])
				}
			}

			// And the full reports, modulo the Workers knob.
			cs, cp := *seq, *par
			cs.Cfg.Workers, cp.Cfg.Workers = 0, 0
			if !reflect.DeepEqual(&cs, &cp) {
				t.Fatalf("parallel report differs from sequential (suspects: %v vs %v)",
					seq.Threads.TopSuspects(5, 0), par.Threads.TopSuspects(5, 0))
			}
		})
	}
}
