package diff

import "testing"

// FuzzDiffApply: Apply(a, Diff(a,b)) == b for arbitrary sequences.
func FuzzDiffApply(f *testing.F) {
	f.Add([]byte("ABCABBA"), []byte("CBABAC"))
	f.Add([]byte(""), []byte("x"))
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		mk := func(raw []byte) []string {
			out := make([]string, len(raw))
			for i, r := range raw {
				out[i] = string(rune('a' + int(r)%6))
			}
			return out
		}
		a, b := mk(ra), mk(rb)
		got, err := Apply(a, Diff(a, b))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(b) {
			t.Fatalf("len %d != %d", len(got), len(b))
		}
		for i := range got {
			if got[i] != b[i] {
				t.Fatalf("token %d: %q != %q", i, got[i], b[i])
			}
		}
	})
}
