// Package diff implements Myers' O(ND) difference algorithm
// (E. Myers, "An O(ND) Difference Algorithm and Its Variations",
// Algorithmica 1986 — the paper's reference [18], the algorithm behind GNU
// diff and git). DiffTrace uses it to compare the NLR token sequences of a
// normal and a faulty trace (§II-F.1, diffNLR).
package diff

import "fmt"

// Op is the kind of an edit-script entry.
type Op int

const (
	// Equal tokens appear in both sequences (diffNLR's green "main stem").
	Equal Op = iota
	// Delete tokens appear only in A (the normal trace: blue blocks).
	Delete
	// Insert tokens appear only in B (the faulty trace: red blocks).
	Insert
)

// String returns "=", "-" or "+".
func (o Op) String() string {
	switch o {
	case Equal:
		return "="
	case Delete:
		return "-"
	case Insert:
		return "+"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Edit is a run of consecutive tokens sharing one Op.
type Edit struct {
	Op     Op
	Tokens []string
}

// Diff computes the minimal edit script converting a into b, as runs of
// Equal/Delete/Insert tokens. The result is canonical: adjacent runs never
// share an Op, and a Delete run is never directly followed by another
// Delete (runs are maximal).
func Diff(a, b []string) []Edit {
	ops := myers(a, b)
	return coalesce(ops, a, b)
}

// elementary op produced by backtracking.
type elemOp struct {
	op Op
	ai int // index into a (Equal, Delete)
	bi int // index into b (Equal, Insert)
}

// myers runs the forward O(ND) greedy algorithm, storing the V arrays per D
// so the edit script can be reconstructed by backtracking.
func myers(a, b []string) []elemOp {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return nil
	}
	// V is indexed by diagonal k in [-max, max]; offset by max.
	v := make([]int, 2*max+2)
	var trace [][]int

	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[max+k-1] < v[max+k+1]) {
				x = v[max+k+1] // move down (insert from b)
			} else {
				x = v[max+k-1] + 1 // move right (delete from a)
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[max+k] = x
			if x >= n && y >= m {
				dFound = d
				break outer
			}
		}
	}

	// Backtrack from (n, m) through the stored V arrays.
	var ops []elemOp
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vd := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vd[max+k-1] < vd[max+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vd[max+prevK]
		prevY := prevX - prevK
		// Snake: equal elements walked after the edit.
		for x > prevX && y > prevY {
			x--
			y--
			ops = append(ops, elemOp{op: Equal, ai: x, bi: y})
		}
		if x == prevX { // came from k+1: insertion of b[prevY]
			y--
			ops = append(ops, elemOp{op: Insert, bi: y})
		} else { // deletion of a[prevX]
			x--
			ops = append(ops, elemOp{op: Delete, ai: x})
		}
	}
	// Leading snake at d == 0.
	for x > 0 && y > 0 {
		x--
		y--
		ops = append(ops, elemOp{op: Equal, ai: x, bi: y})
	}
	// Reverse into forward order.
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	return ops
}

// coalesce groups elementary ops into maximal runs. Within a changed hunk,
// deletions are emitted before insertions (GNU diff convention).
func coalesce(ops []elemOp, a, b []string) []Edit {
	var out []Edit
	i := 0
	for i < len(ops) {
		op := ops[i].op
		if op == Equal {
			j := i
			var toks []string
			for j < len(ops) && ops[j].op == Equal {
				toks = append(toks, a[ops[j].ai])
				j++
			}
			out = append(out, Edit{Op: Equal, Tokens: toks})
			i = j
			continue
		}
		// A changed hunk: collect all contiguous non-equal ops, split into
		// the delete side then the insert side.
		j := i
		var dels, ins []string
		for j < len(ops) && ops[j].op != Equal {
			if ops[j].op == Delete {
				dels = append(dels, a[ops[j].ai])
			} else {
				ins = append(ins, b[ops[j].bi])
			}
			j++
		}
		if len(dels) > 0 {
			out = append(out, Edit{Op: Delete, Tokens: dels})
		}
		if len(ins) > 0 {
			out = append(out, Edit{Op: Insert, Tokens: ins})
		}
		i = j
	}
	return out
}

// Distance returns the edit distance implied by a script (total number of
// deleted plus inserted tokens).
func Distance(edits []Edit) int {
	d := 0
	for _, e := range edits {
		if e.Op != Equal {
			d += len(e.Tokens)
		}
	}
	return d
}

// Apply reconstructs b from a and the edit script; used to verify scripts.
func Apply(a []string, edits []Edit) ([]string, error) {
	var out []string
	i := 0
	for _, e := range edits {
		switch e.Op {
		case Equal:
			for _, tok := range e.Tokens {
				if i >= len(a) || a[i] != tok {
					return nil, fmt.Errorf("diff: equal token %q does not match a[%d]", tok, i)
				}
				out = append(out, tok)
				i++
			}
		case Delete:
			for _, tok := range e.Tokens {
				if i >= len(a) || a[i] != tok {
					return nil, fmt.Errorf("diff: delete token %q does not match a[%d]", tok, i)
				}
				i++
			}
		case Insert:
			out = append(out, e.Tokens...)
		}
	}
	if i != len(a) {
		return nil, fmt.Errorf("diff: script consumed %d of %d tokens of a", i, len(a))
	}
	return out, nil
}
