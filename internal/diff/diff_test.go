package diff

import (
	"reflect"
	"testing"
	"testing/quick"
)

func apply(t *testing.T, a []string, edits []Edit) []string {
	t.Helper()
	got, err := Apply(a, edits)
	if err != nil {
		t.Fatalf("Apply: %v (script %v)", err, edits)
	}
	return got
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIdenticalSequences(t *testing.T) {
	a := []string{"x", "y", "z"}
	edits := Diff(a, a)
	if len(edits) != 1 || edits[0].Op != Equal || !reflect.DeepEqual(edits[0].Tokens, a) {
		t.Fatalf("edits = %v", edits)
	}
	if Distance(edits) != 0 {
		t.Errorf("distance = %d", Distance(edits))
	}
}

func TestEmptySequences(t *testing.T) {
	if edits := Diff(nil, nil); len(edits) != 0 {
		t.Errorf("Diff(nil,nil) = %v", edits)
	}
	edits := Diff(nil, []string{"a", "b"})
	if len(edits) != 1 || edits[0].Op != Insert || Distance(edits) != 2 {
		t.Errorf("insert-only = %v", edits)
	}
	edits = Diff([]string{"a", "b"}, nil)
	if len(edits) != 1 || edits[0].Op != Delete || Distance(edits) != 2 {
		t.Errorf("delete-only = %v", edits)
	}
}

func TestClassicMyersExample(t *testing.T) {
	// ABCABBA -> CBABAC, the worked example in Myers' paper: distance 5.
	a := []string{"A", "B", "C", "A", "B", "B", "A"}
	b := []string{"C", "B", "A", "B", "A", "C"}
	edits := Diff(a, b)
	if d := Distance(edits); d != 5 {
		t.Errorf("distance = %d, want 5 (script %v)", d, edits)
	}
	if got := apply(t, a, edits); !eq(got, b) {
		t.Errorf("Apply = %v, want %v", got, b)
	}
}

func TestSwapBugFigure5(t *testing.T) {
	// Figure 5b: normal L1^16 vs faulty L1^7 L0^9 around a shared prologue
	// and epilogue.
	a := []string{"MPI_Init", "MPI_Comm_Rank", "L1^16", "MPI_Finalize"}
	b := []string{"MPI_Init", "MPI_Comm_Rank", "L1^7", "L0^9", "MPI_Finalize"}
	edits := Diff(a, b)
	if got := apply(t, a, edits); !eq(got, b) {
		t.Fatalf("Apply mismatch: %v", got)
	}
	// Shape: = (prologue), - L1^16, + L1^7 L0^9, = finalize.
	want := []Edit{
		{Equal, []string{"MPI_Init", "MPI_Comm_Rank"}},
		{Delete, []string{"L1^16"}},
		{Insert, []string{"L1^7", "L0^9"}},
		{Equal, []string{"MPI_Finalize"}},
	}
	if !reflect.DeepEqual(edits, want) {
		t.Errorf("edits = %v, want %v", edits, want)
	}
}

func TestDeadlockFigure6(t *testing.T) {
	// Figure 6: faulty trace truncated — missing MPI_Finalize entirely.
	a := []string{"MPI_Init", "L1^16", "MPI_Finalize"}
	b := []string{"MPI_Init", "L1^7"}
	edits := Diff(a, b)
	if got := apply(t, a, edits); !eq(got, b) {
		t.Fatalf("Apply mismatch: %v", got)
	}
	last := edits[len(edits)-1]
	if last.Op == Equal {
		t.Errorf("truncated diff should not end on an equal run: %v", edits)
	}
}

func TestRunsAreMaximalAndAlternate(t *testing.T) {
	a := []string{"a", "b", "c", "d", "e"}
	b := []string{"a", "x", "c", "y", "e"}
	edits := Diff(a, b)
	for i := 1; i < len(edits); i++ {
		if edits[i].Op == edits[i-1].Op {
			t.Fatalf("adjacent runs share op: %v", edits)
		}
	}
	for _, e := range edits {
		if len(e.Tokens) == 0 {
			t.Fatalf("empty run in %v", edits)
		}
	}
}

func TestApplyRejectsWrongScript(t *testing.T) {
	if _, err := Apply([]string{"a"}, []Edit{{Equal, []string{"b"}}}); err == nil {
		t.Error("mismatched equal token accepted")
	}
	if _, err := Apply([]string{"a"}, []Edit{{Delete, []string{"b"}}}); err == nil {
		t.Error("mismatched delete token accepted")
	}
	if _, err := Apply([]string{"a", "b"}, []Edit{{Equal, []string{"a"}}}); err == nil {
		t.Error("underconsumed input accepted")
	}
}

func TestOpString(t *testing.T) {
	if Equal.String() != "=" || Delete.String() != "-" || Insert.String() != "+" {
		t.Error("Op strings wrong")
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render something")
	}
}

// Property 1: applying the script to a always yields b.
func TestQuickDiffApply(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := toTokens(ra)
		b := toTokens(rb)
		got, err := Apply(a, Diff(a, b))
		return err == nil && eq(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property 2: distance is symmetric and zero iff equal.
func TestQuickDistanceSymmetric(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := toTokens(ra)
		b := toTokens(rb)
		dab := Distance(Diff(a, b))
		dba := Distance(Diff(b, a))
		if dab != dba {
			return false
		}
		if eq(a, b) != (dab == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property 3: distance obeys the LCS relation d = len(a)+len(b)-2*|LCS|,
// so it never exceeds len(a)+len(b) and has matching parity.
func TestQuickDistanceBounds(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := toTokens(ra)
		b := toTokens(rb)
		d := Distance(Diff(a, b))
		if d > len(a)+len(b) || d < 0 {
			return false
		}
		return (d-(len(a)+len(b)))%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func toTokens(raw []uint8) []string {
	out := make([]string, len(raw))
	for i, r := range raw {
		out[i] = string(rune('a' + int(r)%4))
	}
	return out
}

func BenchmarkDiffSimilar(b *testing.B) {
	a := make([]string, 2000)
	bb := make([]string, 2000)
	for i := range a {
		a[i] = string(rune('a' + i%7))
		bb[i] = a[i]
	}
	bb[500] = "X"
	bb[1500] = "Y"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diff(a, bb)
	}
}
