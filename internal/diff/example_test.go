package diff_test

import (
	"fmt"

	"difftrace/internal/diff"
)

// The Figure 5 scenario: the normal trace's single loop becomes two loops
// in the faulty trace.
func ExampleDiff() {
	normal := []string{"MPI_Init", "L1^16", "MPI_Finalize"}
	faulty := []string{"MPI_Init", "L1^7", "L0^9", "MPI_Finalize"}
	for _, e := range diff.Diff(normal, faulty) {
		fmt.Println(e.Op, e.Tokens)
	}
	// Output:
	// = [MPI_Init]
	// - [L1^16]
	// + [L1^7 L0^9]
	// = [MPI_Finalize]
}
