// Package commpat characterizes an execution's point-to-point communication
// pattern, after Roth, Meredith & Vetter's automated pattern search (HPDC
// 2015 — the paper's reference [41], cited in §VI as a related way of
// diffing communication behaviour against common patterns).
//
// The communication matrix (who sends to whom, how often) is mined from a
// logical-clock log (internal/otf) recorded by the MPI runtime; it is
// compared against a library of canonical patterns by cosine similarity,
// and an execution is classified as the best-matching pattern. Diffing two
// matrices (normal vs faulty run) localizes communication-level changes by
// sender/receiver pair — a communication-granularity complement to
// DiffTrace's per-thread call-trace diffing.
package commpat

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"difftrace/internal/otf"
)

// Matrix is an n×n send-count matrix: M[src][dst] = messages sent.
type Matrix struct {
	N int
	M [][]float64
}

// NewMatrix returns a zeroed n×n matrix.
func NewMatrix(n int) *Matrix {
	m := &Matrix{N: n, M: make([][]float64, n)}
	for i := range m.M {
		m.M[i] = make([]float64, n)
	}
	return m
}

// FromLog mines the send matrix from a logical-clock log: every blocking
// or non-blocking send event with a valid peer contributes one message.
func FromLog(l *otf.Log) *Matrix {
	m := NewMatrix(l.Ranks())
	for _, e := range l.Events() {
		if e.Name != "MPI_Send" && e.Name != "MPI_Isend" {
			continue
		}
		if e.Peer < 0 || e.Peer >= m.N || e.Rank < 0 || e.Rank >= m.N {
			continue
		}
		m.M[e.Rank][e.Peer]++
	}
	return m
}

// Total returns the total message count.
func (m *Matrix) Total() float64 {
	t := 0.0
	for i := range m.M {
		for j := range m.M[i] {
			t += m.M[i][j]
		}
	}
	return t
}

// norm returns the Frobenius norm.
func (m *Matrix) norm() float64 {
	s := 0.0
	for i := range m.M {
		for j := range m.M[i] {
			s += m.M[i][j] * m.M[i][j]
		}
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of two matrices in [0, 1] (both
// matrices are non-negative). Zero matrices are fully similar to each
// other and dissimilar to anything non-zero.
func Cosine(a, b *Matrix) (float64, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("commpat: size mismatch %d vs %d", a.N, b.N)
	}
	na, nb := a.norm(), b.norm()
	if na == 0 && nb == 0 {
		return 1, nil
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	dot := 0.0
	for i := range a.M {
		for j := range a.M[i] {
			dot += a.M[i][j] * b.M[i][j]
		}
	}
	return dot / (na * nb), nil
}

// Diff returns |a−b| entrywise — the communication-matrix diff Roth et
// al. and the paper's §VI discuss.
func Diff(a, b *Matrix) (*Matrix, error) {
	if a.N != b.N {
		return nil, fmt.Errorf("commpat: size mismatch %d vs %d", a.N, b.N)
	}
	out := NewMatrix(a.N)
	for i := range a.M {
		for j := range a.M[i] {
			out.M[i][j] = math.Abs(a.M[i][j] - b.M[i][j])
		}
	}
	return out, nil
}

// HotPairs returns the k most-changed (src, dst) pairs of a diff matrix.
func (m *Matrix) HotPairs(k int) []Pair {
	var pairs []Pair
	for i := range m.M {
		for j := range m.M[i] {
			if m.M[i][j] > 0 {
				pairs = append(pairs, Pair{Src: i, Dst: j, Weight: m.M[i][j]})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Weight != pairs[b].Weight {
			return pairs[a].Weight > pairs[b].Weight
		}
		if pairs[a].Src != pairs[b].Src {
			return pairs[a].Src < pairs[b].Src
		}
		return pairs[a].Dst < pairs[b].Dst
	})
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// Pair is one sender→receiver edge with a weight.
type Pair struct {
	Src, Dst int
	Weight   float64
}

// String renders like "3->4 (x12)".
func (p Pair) String() string { return fmt.Sprintf("%d->%d (x%g)", p.Src, p.Dst, p.Weight) }

// Render prints the matrix with row/column rank labels.
func (m *Matrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s", "")
	for j := 0; j < m.N; j++ {
		fmt.Fprintf(&b, " %4d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < m.N; i++ {
		fmt.Fprintf(&b, "%4d", i)
		for j := 0; j < m.N; j++ {
			fmt.Fprintf(&b, " %4g", m.M[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Pattern is one canonical communication pattern.
type Pattern int

const (
	// NearestNeighbor1D: each rank exchanges with rank±1, non-periodic.
	NearestNeighbor1D Pattern = iota
	// Ring: each rank sends to (rank+1) mod n.
	Ring
	// AllToAll: every rank sends to every other rank.
	AllToAll
	// MasterWorker: all traffic flows to/from rank 0.
	MasterWorker
	// Butterfly: rank i exchanges with i XOR 2^k for each stage k.
	Butterfly
	numPatterns
)

var patternNames = []string{
	"nearest-neighbor-1d", "ring", "all-to-all", "master-worker", "butterfly",
}

// String names the pattern like the Roth et al. pattern library does.
func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// AllPatterns lists the canonical library.
func AllPatterns() []Pattern {
	out := make([]Pattern, numPatterns)
	for i := range out {
		out[i] = Pattern(i)
	}
	return out
}

// Canonical builds the 0/1 canonical matrix of a pattern at size n.
func Canonical(p Pattern, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			var hit bool
			switch p {
			case NearestNeighbor1D:
				hit = j == i-1 || j == i+1
			case Ring:
				hit = j == (i+1)%n
			case AllToAll:
				hit = true
			case MasterWorker:
				hit = i == 0 || j == 0
			case Butterfly:
				for bit := 1; bit < n; bit <<= 1 {
					if j == i^bit {
						hit = true
					}
				}
			}
			if hit {
				m.M[i][j] = 1
			}
		}
	}
	return m
}

// Match is one pattern-classification candidate.
type Match struct {
	Pattern    Pattern
	Similarity float64
}

// Classify ranks the canonical patterns by cosine similarity to m,
// best first.
func Classify(m *Matrix) []Match {
	out := make([]Match, 0, numPatterns)
	for _, p := range AllPatterns() {
		sim, err := Cosine(m, Canonical(p, m.N))
		if err != nil {
			continue
		}
		out = append(out, Match{Pattern: p, Similarity: sim})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Similarity > out[j].Similarity })
	return out
}
