package commpat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/apps/lulesh"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/otf"
)

func TestCanonicalShapes(t *testing.T) {
	nn := Canonical(NearestNeighbor1D, 4)
	if nn.M[0][1] != 1 || nn.M[1][0] != 1 || nn.M[0][3] != 0 || nn.M[0][0] != 0 {
		t.Errorf("nearest neighbor:\n%s", nn.Render())
	}
	ring := Canonical(Ring, 4)
	if ring.M[3][0] != 1 || ring.M[0][3] != 0 {
		t.Errorf("ring:\n%s", ring.Render())
	}
	ata := Canonical(AllToAll, 3)
	if ata.Total() != 6 {
		t.Errorf("all-to-all total = %f", ata.Total())
	}
	mw := Canonical(MasterWorker, 4)
	if mw.M[0][2] != 1 || mw.M[2][0] != 1 || mw.M[1][2] != 0 {
		t.Errorf("master-worker:\n%s", mw.Render())
	}
	bf := Canonical(Butterfly, 4)
	if bf.M[0][1] != 1 || bf.M[0][2] != 1 || bf.M[0][3] != 0 {
		t.Errorf("butterfly:\n%s", bf.Render())
	}
}

func TestCosine(t *testing.T) {
	a := Canonical(Ring, 4)
	if sim, _ := Cosine(a, a); sim != 1 {
		t.Errorf("self similarity = %f", sim)
	}
	zero := NewMatrix(4)
	if sim, _ := Cosine(zero, zero); sim != 1 {
		t.Errorf("zero-zero similarity = %f", sim)
	}
	if sim, _ := Cosine(zero, a); sim != 0 {
		t.Errorf("zero-ring similarity = %f", sim)
	}
	if _, err := Cosine(a, NewMatrix(5)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestClassifyCanonicalIsItself(t *testing.T) {
	// Each canonical pattern must classify as itself at n=8 (a power of two
	// so butterfly is well-formed).
	for _, p := range AllPatterns() {
		got := Classify(Canonical(p, 8))
		if got[0].Pattern != p {
			t.Errorf("%v classified as %v (sim %.3f)", p, got[0].Pattern, got[0].Similarity)
		}
		if got[0].Similarity < 0.999 {
			t.Errorf("%v self-similarity = %f", p, got[0].Similarity)
		}
	}
}

func TestDiffAndHotPairs(t *testing.T) {
	a := Canonical(Ring, 4)
	b := Canonical(Ring, 4)
	b.M[2][3] = 0 // rank 2 stopped sending to 3
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	hot := d.HotPairs(3)
	if len(hot) != 1 || hot[0].Src != 2 || hot[0].Dst != 3 {
		t.Errorf("hot pairs = %v", hot)
	}
	if hot[0].String() != "2->3 (x1)" {
		t.Errorf("pair string = %s", hot[0].String())
	}
	if _, err := Diff(a, NewMatrix(7)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestFromLogOddEven(t *testing.T) {
	// The odd/even sort's communication is textbook 1-D nearest neighbor.
	clock := otf.NewLog(8)
	if _, err := oddeven.Run(oddeven.Config{Procs: 8, Seed: 5, Clock: clock}); err != nil {
		t.Fatal(err)
	}
	m := FromLog(clock)
	if m.Total() == 0 {
		t.Fatal("no sends mined from the log")
	}
	got := Classify(m)
	if got[0].Pattern != NearestNeighbor1D {
		t.Errorf("odd/even classified as %v:\n%s", got[0].Pattern, m.Render())
	}
	// Only adjacent pairs communicate.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if m.M[i][j] > 0 && int(math.Abs(float64(i-j))) != 1 {
				t.Errorf("non-neighbor traffic %d->%d", i, j)
			}
		}
	}
}

func TestCommDiffLocalizesDeadlock(t *testing.T) {
	// Normal vs dlBug run: the diff's hot pairs cluster around rank 5.
	run := func(plan *faults.Plan) *Matrix {
		clock := otf.NewLog(16)
		if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Clock: clock}); err != nil {
			t.Fatal(err)
		}
		return FromLog(clock)
	}
	normal := run(nil)
	plan, _ := faults.Named("dlBug")
	faulty := run(plan)
	d, err := Diff(normal, faulty)
	if err != nil {
		t.Fatal(err)
	}
	hot := d.HotPairs(4)
	if len(hot) == 0 {
		t.Fatal("no communication change detected")
	}
	// The most-changed edge touches the stalled region around rank 5.
	p := hot[0]
	if !(near(p.Src, 5, 2) || near(p.Dst, 5, 2)) {
		t.Errorf("hottest changed edge %v far from the fault", p)
	}
}

func near(x, target, tol int) bool {
	d := x - target
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestRender(t *testing.T) {
	out := Canonical(Ring, 3).Render()
	if !strings.Contains(out, "0") || strings.Count(out, "\n") != 4 {
		t.Errorf("render:\n%s", out)
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern renders empty")
	}
}

// Property: cosine similarity is symmetric, in [0,1], and 1 on self.
func TestQuickCosineProperties(t *testing.T) {
	f := func(cells []uint8) bool {
		n := 4
		a, b := NewMatrix(n), NewMatrix(n)
		for i, c := range cells {
			if i >= n*n*2 {
				break
			}
			m, idx := a, i
			if i >= n*n {
				m, idx = b, i-n*n
			}
			m.M[idx/n][idx%n] = float64(c % 7)
		}
		ab, err1 := Cosine(a, b)
		ba, err2 := Cosine(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(ab-ba) > 1e-12 || ab < -1e-12 || ab > 1+1e-12 {
			return false
		}
		self, err := Cosine(a, a)
		return err == nil && math.Abs(self-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromLogCountsNonblockingSends(t *testing.T) {
	// The LULESH proxy's halo exchange is all MPI_Isend; its pattern is
	// still 1-D nearest neighbor.
	clock := otf.NewLog(4)
	if _, err := lulesh.Run(lulesh.Config{
		Procs: 4, Threads: 2, EdgeElems: 4, Regions: 3, Cycles: 2, Clock: clock,
	}); err != nil {
		t.Fatal(err)
	}
	m := FromLog(clock)
	if m.Total() == 0 {
		t.Fatal("no nonblocking sends mined")
	}
	if got := Classify(m)[0].Pattern; got != NearestNeighbor1D {
		t.Errorf("lulesh pattern = %v:\n%s", got, m.Render())
	}
}
