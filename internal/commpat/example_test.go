package commpat_test

import (
	"fmt"

	"difftrace/internal/commpat"
)

// Classifying a ring communication matrix against the pattern library.
func ExampleClassify() {
	m := commpat.Canonical(commpat.Ring, 8)
	best := commpat.Classify(m)[0]
	fmt.Printf("%v %.2f\n", best.Pattern, best.Similarity)
	// Output:
	// ring 1.00
}
