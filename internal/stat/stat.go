// Package stat implements a STAT-style baseline (Ahn et al., SC'09 — the
// paper's reference [14], discussed in §II-E and §VI): it reconstructs each
// thread's final call stack from its whole-program trace, merges the stacks
// into a prefix tree, and groups threads into equivalence classes by stack.
//
// STAT is the tool DiffTrace positions itself against ("FCA-based
// clustering provides the next logical level of refinement"): it excels at
// triaging hangs — after a deadlock, the stalled threads' stacks directly
// show where each one is stuck — but it sees only the *current* stack, not
// the loop/progress history DiffTrace mines. The ablation benchmark
// compares the two on the same traces.
package stat

import (
	"fmt"
	"sort"
	"strings"

	"difftrace/internal/trace"
)

// FinalStack replays a trace's enter/exit events and returns the call stack
// at the end of the trace — for a truncated (hung) trace, the frames the
// thread is stuck in, which is exactly what STAT samples from a live job.
func FinalStack(tr *trace.Trace, reg *trace.Registry) []string {
	var stack []string
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Enter:
			stack = append(stack, reg.Name(e.Func))
		case trace.Exit:
			// Pop the matching frame; tolerate unbalanced traces (library
			// code entered before tracing started).
			if n := len(stack); n > 0 && stack[n-1] == reg.Name(e.Func) {
				stack = stack[:n-1]
			}
		}
	}
	return stack
}

// node is one prefix-tree vertex.
type node struct {
	name     string
	children map[string]*node
	members  []string // thread IDs whose stack ends at this node
	visits   []string // thread IDs whose stack passes through this node
}

func newNode(name string) *node {
	return &node{name: name, children: make(map[string]*node)}
}

// Tree is the merged prefix tree of all threads' final stacks (STAT's
// 2D-trace/space view).
type Tree struct {
	root *node
}

// Build merges every thread's final stack of set into a prefix tree.
func Build(set *trace.TraceSet) *Tree {
	t := &Tree{root: newNode("")}
	for _, id := range set.IDs() {
		stack := FinalStack(set.Traces[id], set.Registry)
		t.insert(id.String(), stack)
	}
	return t
}

func (t *Tree) insert(member string, stack []string) {
	cur := t.root
	cur.visits = append(cur.visits, member)
	for _, frame := range stack {
		next, ok := cur.children[frame]
		if !ok {
			next = newNode(frame)
			cur.children[frame] = next
		}
		cur = next
		cur.visits = append(cur.visits, member)
	}
	cur.members = append(cur.members, member)
}

// Class is one equivalence class: all threads sharing a final stack.
type Class struct {
	Stack   []string
	Members []string
}

// Signature renders the class's stack like "main>oddEvenSort>MPI_Recv".
func (c Class) Signature() string { return strings.Join(c.Stack, ">") }

// Classes returns the equivalence classes, largest first (ties by
// signature) — STAT's process-equivalence view.
func (t *Tree) Classes() []Class {
	var out []Class
	var walk func(n *node, prefix []string)
	walk = func(n *node, prefix []string) {
		if len(n.members) > 0 {
			stack := append([]string(nil), prefix...)
			members := append([]string(nil), n.members...)
			out = append(out, Class{Stack: stack, Members: members})
		}
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.children[k], append(prefix, k))
		}
	}
	walk(t.root, nil)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Signature() < out[j].Signature()
	})
	return out
}

// Outliers returns the members of every class no larger than maxSize —
// STAT's "equivalence-class outliers" heuristic: a handful of processes
// stuck somewhere nobody else is.
func (t *Tree) Outliers(maxSize int) []string {
	var out []string
	for _, c := range t.Classes() {
		if len(c.Members) <= maxSize {
			out = append(out, c.Members...)
		}
	}
	sort.Strings(out)
	return out
}

// Render prints the prefix tree with visit counts, like STAT's merged
// stack-trace view:
//
//	main [16]
//	  oddEvenSort [3]
//	    MPI_Recv [1]  <= 5.0
//	  MPI_Finalize [13]
func (t *Tree) Render() string {
	var b strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := n.children[k]
			fmt.Fprintf(&b, "%s%s [%d]", strings.Repeat("  ", depth), c.name, len(c.visits))
			if len(c.members) > 0 {
				fmt.Fprintf(&b, "  <= %s", strings.Join(c.members, ", "))
			}
			b.WriteByte('\n')
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}
