package stat_test

import (
	"fmt"

	"difftrace/internal/stat"
	"difftrace/internal/trace"
)

// Merging final call stacks into STAT's prefix tree.
func ExampleBuild() {
	set := trace.NewTraceSet()
	add := func(p int, frames ...string) {
		tr := set.Get(trace.TID(p, 0))
		for _, f := range frames {
			tr.Append(set.Registry.ID(f), trace.Enter)
		}
	}
	add(0, "main", "MPI_Finalize")
	add(1, "main", "MPI_Finalize")
	add(2, "main", "solver", "MPI_Recv") // the stuck one

	tree := stat.Build(set)
	for _, c := range tree.Classes() {
		fmt.Println(c.Signature(), c.Members)
	}
	// Output:
	// main>MPI_Finalize [0.0 1.0]
	// main>solver>MPI_Recv [2.0]
}
