package stat

import (
	"reflect"
	"strings"
	"testing"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func mk(reg *trace.Registry, id trace.ThreadID, events ...string) *trace.Trace {
	tr := &trace.Trace{ID: id}
	for _, e := range events {
		if name, ok := strings.CutPrefix(e, "-"); ok {
			tr.Append(reg.ID(name), trace.Exit)
		} else {
			tr.Append(reg.ID(e), trace.Enter)
		}
	}
	return tr
}

func TestFinalStackBalanced(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mk(reg, trace.TID(0, 0), "main", "f", "-f", "g", "-g", "-main")
	if got := FinalStack(tr, reg); len(got) != 0 {
		t.Errorf("balanced trace stack = %v", got)
	}
}

func TestFinalStackTruncated(t *testing.T) {
	reg := trace.NewRegistry()
	tr := mk(reg, trace.TID(5, 0), "main", "oddEvenSort", "findPtr", "-findPtr", "MPI_Recv")
	got := FinalStack(tr, reg)
	want := []string{"main", "oddEvenSort", "MPI_Recv"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stack = %v, want %v", got, want)
	}
}

func TestFinalStackUnbalancedExit(t *testing.T) {
	reg := trace.NewRegistry()
	// Exit without matching enter must not panic or pop the wrong frame.
	tr := mk(reg, trace.TID(0, 0), "-mystery", "main", "-other")
	got := FinalStack(tr, reg)
	if !reflect.DeepEqual(got, []string{"main"}) {
		t.Errorf("stack = %v", got)
	}
}

func buildSet(t *testing.T) *trace.TraceSet {
	t.Helper()
	s := trace.NewTraceSet()
	// 3 threads finish in main>done, 1 stuck in main>recv.
	for i := 0; i < 3; i++ {
		s.Put(mk(s.Registry, trace.TID(i, 0), "main", "work", "-work"))
	}
	s.Put(mk(s.Registry, trace.TID(3, 0), "main", "recv"))
	return s
}

func TestClassesAndOutliers(t *testing.T) {
	tree := Build(buildSet(t))
	classes := tree.Classes()
	if len(classes) != 2 {
		t.Fatalf("classes = %+v", classes)
	}
	if classes[0].Signature() != "main" || len(classes[0].Members) != 3 {
		t.Errorf("majority class = %+v", classes[0])
	}
	if classes[1].Signature() != "main>recv" || !reflect.DeepEqual(classes[1].Members, []string{"3.0"}) {
		t.Errorf("outlier class = %+v", classes[1])
	}
	if got := tree.Outliers(1); !reflect.DeepEqual(got, []string{"3.0"}) {
		t.Errorf("outliers = %v", got)
	}
	if got := tree.Outliers(3); len(got) != 4 {
		t.Errorf("outliers(3) = %v", got)
	}
}

func TestRenderShowsCountsAndMembers(t *testing.T) {
	out := Build(buildSet(t)).Render()
	if !strings.Contains(out, "main [4]") {
		t.Errorf("render missing visit count:\n%s", out)
	}
	if !strings.Contains(out, "recv [1]") || !strings.Contains(out, "<= 3.0") {
		t.Errorf("render missing stuck member:\n%s", out)
	}
}

// TestSTATOnDlBug is the §VI comparison scenario. After the odd/even dlBug
// deadlock every stalled rank's final stack is main>oddEvenSort>MPI_Recv,
// so STAT's equivalence classes lump the faulty rank 5 together with all
// fourteen cascade victims and flag the one rank that happened to reach
// MPI_Finalize as the outlier — precisely the granularity limitation the
// paper's FCA/NLR pipeline (which sees rank 5's loop stop at 7 of 16
// iterations) goes beyond. The test pins this contrast down.
func TestSTATOnDlBug(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	plan, _ := faults.Named("dlBug")
	res, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr})
	if err != nil || !res.Deadlocked {
		t.Fatal(err, res)
	}
	tree := Build(tr.Collect())
	classes := tree.Classes()
	if len(classes) != 2 {
		t.Fatalf("classes:\n%s", tree.Render())
	}
	big := classes[0]
	if !strings.Contains(big.Signature(), "MPI_Recv") || len(big.Members) != 15 {
		t.Errorf("majority class = %s %v", big.Signature(), big.Members)
	}
	has5 := false
	for _, m := range big.Members {
		if m == "5.0" {
			has5 = true
		}
	}
	if !has5 {
		t.Error("rank 5 should be indistinguishable from the cascade victims at stack granularity")
	}
	// STAT's outlier heuristic picks the *wrong* rank here.
	if got := tree.Outliers(1); !reflect.DeepEqual(got, []string{"15.0"}) {
		t.Errorf("outliers = %v", got)
	}
}

func TestEmptySet(t *testing.T) {
	tree := Build(trace.NewTraceSet())
	if len(tree.Classes()) != 0 || tree.Render() != "" {
		t.Error("empty set should produce empty tree")
	}
}
