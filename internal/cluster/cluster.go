// Package cluster implements agglomerative hierarchical clustering over a
// precomputed dissimilarity matrix — this repository's stand-in for the
// SciPy 1.3.0 linkage/fcluster machinery the paper uses (§III-C).
//
// All seven SciPy linkage methods are provided through the Lance–Williams
// update formula: single, complete, average (UPGMA), weighted (WPGMA),
// centroid, median, and ward (the method the paper's ranking tables use:
// "Ward variance minimization"). The output is a SciPy-compatible linkage
// matrix: row t = [clusterA, clusterB, distance, size] with new clusters
// numbered n, n+1, ...
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Method is a linkage method.
type Method int

const (
	// Single linkage: nearest neighbor.
	Single Method = iota
	// Complete linkage: farthest neighbor.
	Complete
	// Average linkage (UPGMA).
	Average
	// Weighted linkage (WPGMA).
	Weighted
	// Centroid linkage (UPGMC; Lance–Williams on squared distances).
	Centroid
	// Median linkage (WPGMC; Lance–Williams on squared distances).
	Median
	// Ward variance minimization (Lance–Williams on squared distances).
	Ward
)

var methodNames = []string{"single", "complete", "average", "weighted", "centroid", "median", "ward"}

// String returns the SciPy method name.
func (m Method) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// ParseMethod parses a SciPy method name.
func ParseMethod(s string) (Method, error) {
	for i, n := range methodNames {
		if n == s {
			return Method(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown linkage method %q", s)
}

// AllMethods returns every linkage method (the §II-F knob-1 sweep).
func AllMethods() []Method {
	out := make([]Method, len(methodNames))
	for i := range out {
		out[i] = Method(i)
	}
	return out
}

// Valid reports whether m names one of the seven linkage methods. Build
// rejects invalid methods with an error, so a Method arriving from user
// input (a flag, a config file) can never panic the pipeline.
func (m Method) Valid() bool {
	return m >= Single && m <= Ward
}

// squaredSpace reports whether the Lance–Williams recurrence for m operates
// on squared distances (SciPy's convention for the geometric methods).
func (m Method) squaredSpace() bool {
	return m == Centroid || m == Median || m == Ward
}

// coeffs returns the Lance–Williams coefficients (αi, αj, β, γ) for merging
// clusters of sizes ni and nj, evaluated against a cluster of size nk.
func (m Method) coeffs(ni, nj, nk float64) (ai, aj, beta, gamma float64) {
	switch m {
	case Single:
		return 0.5, 0.5, 0, -0.5
	case Complete:
		return 0.5, 0.5, 0, 0.5
	case Average:
		return ni / (ni + nj), nj / (ni + nj), 0, 0
	case Weighted:
		return 0.5, 0.5, 0, 0
	case Centroid:
		s := ni + nj
		return ni / s, nj / s, -ni * nj / (s * s), 0
	case Median:
		return 0.5, 0.5, -0.25, 0
	case Ward:
		s := ni + nj + nk
		return (ni + nk) / s, (nj + nk) / s, -nk / s, 0
	default:
		// Unreachable: Build validates the method before clustering.
		return 0.5, 0.5, 0, 0
	}
}

// Linkage is the dendrogram: n-1 merge steps over n observations.
type Linkage struct {
	N     int
	Steps []Step
}

// Step is one agglomeration: clusters A and B (original observations are
// 0..n-1; merged clusters are n, n+1, ... in step order) merge at Distance
// into a cluster of Size leaves.
type Step struct {
	A, B     int
	Distance float64
	Size     int
}

// Build clusters the n×n dissimilarity matrix d with the given method.
// The matrix must be symmetric with a zero diagonal; it is not modified.
func Build(d [][]float64, method Method) (*Linkage, error) {
	if !method.Valid() {
		return nil, fmt.Errorf("cluster: unknown linkage %s (want one of %s)",
			method, strings.Join(methodNames, "|"))
	}
	n := len(d)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("cluster: nonzero diagonal at %d", i)
		}
		for j := range d[i] {
			if math.Abs(d[i][j]-d[j][i]) > 1e-9 {
				return nil, fmt.Errorf("cluster: asymmetric at (%d,%d)", i, j)
			}
			if d[i][j] < 0 {
				return nil, fmt.Errorf("cluster: negative distance at (%d,%d)", i, j)
			}
		}
	}
	lk := &Linkage{N: n}
	if n <= 1 {
		return lk, nil
	}

	// Working copy; geometric methods run in squared space.
	sq := method.squaredSpace()
	cur := make([][]float64, n)
	for i := range cur {
		cur[i] = make([]float64, n)
		for j := range d[i] {
			v := d[i][j]
			if sq {
				v = v * v
			}
			cur[i][j] = v
		}
	}
	active := make([]int, n)   // active[slot] = cluster id, -1 when merged away
	size := make([]float64, n) // leaves per slot
	for i := range active {
		active[i] = i
		size[i] = 1
	}
	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair (deterministic tie-break by ids).
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if active[i] < 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if active[j] < 0 {
					continue
				}
				if cur[i][j] < best-1e-15 {
					best = cur[i][j]
					bi, bj = i, j
				}
			}
		}
		ni, nj := size[bi], size[bj]
		dist := best
		if sq {
			dist = math.Sqrt(math.Max(0, dist))
		}
		a, b := active[bi], active[bj]
		if a > b {
			a, b = b, a
		}
		lk.Steps = append(lk.Steps, Step{A: a, B: b, Distance: dist, Size: int(ni + nj)})

		// Lance–Williams update: slot bi becomes the merged cluster.
		for k := 0; k < n; k++ {
			if active[k] < 0 || k == bi || k == bj {
				continue
			}
			ai, aj, beta, gamma := method.coeffs(ni, nj, size[k])
			nd := ai*cur[k][bi] + aj*cur[k][bj] + beta*cur[bi][bj] +
				gamma*math.Abs(cur[k][bi]-cur[k][bj])
			cur[k][bi], cur[bi][k] = nd, nd
		}
		active[bi] = nextID
		nextID++
		active[bj] = -1
		size[bi] = ni + nj
	}
	return lk, nil
}

// CutK flattens the dendrogram into exactly k clusters (1 ≤ k ≤ n) by
// undoing the last k-1 merges. Labels are 0-based, renumbered by first
// appearance, matching observation order.
func (l *Linkage) CutK(k int) ([]int, error) {
	if k < 1 || k > l.N {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, l.N)
	}
	return l.cut(l.N - k), nil
}

// CutDistance flattens by applying every merge with distance ≤ t.
func (l *Linkage) CutDistance(t float64) []int {
	applied := 0
	for _, s := range l.Steps {
		if s.Distance <= t {
			applied++
		} else {
			break
		}
	}
	return l.cut(applied)
}

// cut applies the first `merges` steps and returns canonical labels.
func (l *Linkage) cut(merges int) []int {
	parent := make([]int, l.N+merges)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for s := 0; s < merges; s++ {
		st := l.Steps[s]
		merged := l.N + s
		parent[find(st.A)] = merged
		parent[find(st.B)] = merged
	}
	labels := make([]int, l.N)
	canon := map[int]int{}
	for i := 0; i < l.N; i++ {
		r := find(i)
		if _, ok := canon[r]; !ok {
			canon[r] = len(canon)
		}
		labels[i] = canon[r]
	}
	return labels
}

// Cophenetic returns the cophenetic distance matrix: entry (i,j) is the
// merge distance at which leaves i and j first share a cluster.
func (l *Linkage) Cophenetic() [][]float64 {
	members := make(map[int][]int, 2*l.N)
	for i := 0; i < l.N; i++ {
		members[i] = []int{i}
	}
	out := make([][]float64, l.N)
	for i := range out {
		out[i] = make([]float64, l.N)
	}
	for s, st := range l.Steps {
		ma, mb := members[st.A], members[st.B]
		for _, x := range ma {
			for _, y := range mb {
				out[x][y], out[y][x] = st.Distance, st.Distance
			}
		}
		members[l.N+s] = append(append([]int{}, ma...), mb...)
		delete(members, st.A)
		delete(members, st.B)
	}
	return out
}

// Render prints the merge sequence (a textual dendrogram), with optional
// leaf names.
func (l *Linkage) Render(names []string) string {
	label := func(id int) string {
		if id < l.N {
			if names != nil && id < len(names) {
				return names[id]
			}
			return fmt.Sprintf("obs%d", id)
		}
		return fmt.Sprintf("c%d", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "linkage over %d observations\n", l.N)
	for s, st := range l.Steps {
		fmt.Fprintf(&b, "  c%d = merge(%s, %s) at %.4f (size %d)\n",
			l.N+s, label(st.A), label(st.B), st.Distance, st.Size)
	}
	return b.String()
}

// RenderTree draws the dendrogram as an ASCII tree, children indented under
// their merge node:
//
//	└─ 4.236
//	   ├─ 1.000
//	   │  ├─ T0
//	   │  └─ T1
//	   └─ T2
func (l *Linkage) RenderTree(names []string) string {
	if l.N == 0 {
		return "(empty dendrogram)\n"
	}
	label := func(id int) string {
		if id < l.N {
			if names != nil && id < len(names) {
				return names[id]
			}
			return fmt.Sprintf("obs%d", id)
		}
		return ""
	}
	var b strings.Builder
	var walk func(id int, prefix string, last bool)
	walk = func(id int, prefix string, last bool) {
		branch, childPrefix := "├─ ", "│  "
		if last {
			branch, childPrefix = "└─ ", "   "
		}
		if id < l.N {
			fmt.Fprintf(&b, "%s%s%s\n", prefix, branch, label(id))
			return
		}
		st := l.Steps[id-l.N]
		fmt.Fprintf(&b, "%s%s%.3f\n", prefix, branch, st.Distance)
		walk(st.A, prefix+childPrefix, false)
		walk(st.B, prefix+childPrefix, true)
	}
	root := l.N
	if len(l.Steps) > 0 {
		root = l.N + len(l.Steps) - 1
	} else {
		// Single observation: just the leaf.
		fmt.Fprintf(&b, "└─ %s\n", label(0))
		return b.String()
	}
	walk(root, "", true)
	return b.String()
}

// Monotone reports whether merge distances are non-decreasing (guaranteed
// for single/complete/average/weighted/ward; centroid and median can
// invert — a property the tests pin down).
func (l *Linkage) Monotone() bool {
	for i := 1; i < len(l.Steps); i++ {
		if l.Steps[i].Distance < l.Steps[i-1].Distance-1e-9 {
			return false
		}
	}
	return true
}

// Labels pairs a cut with observation names, returning name→cluster.
func Labels(names []string, labels []int) map[string]int {
	out := make(map[string]int, len(names))
	for i, n := range names {
		if i < len(labels) {
			out[n] = labels[i]
		}
	}
	return out
}

// SortedClusterSizes is a test/diagnostic helper: the multiset of cluster
// sizes in a labeling, sorted descending.
func SortedClusterSizes(labels []int) []int {
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// CopheneticCorrelation computes the cophenetic correlation coefficient
// (CPCC): the Pearson correlation between the original pairwise distances
// and the dendrogram's cophenetic distances. Values near 1 mean the
// dendrogram faithfully preserves the dissimilarity structure — a standard
// diagnostic for choosing among the §II-F linkage methods.
func (l *Linkage) CopheneticCorrelation(d [][]float64) (float64, error) {
	if len(d) != l.N {
		return 0, fmt.Errorf("cluster: distance matrix is %d×, dendrogram has %d observations", len(d), l.N)
	}
	if l.N < 3 {
		return 0, fmt.Errorf("cluster: CPCC needs at least 3 observations")
	}
	c := l.Cophenetic()
	var xs, ys []float64
	for i := 0; i < l.N; i++ {
		for j := i + 1; j < l.N; j++ {
			xs = append(xs, d[i][j])
			ys = append(ys, c[i][j])
		}
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	mx, my := mean(xs), mean(ys)
	var num, dx, dy float64
	for k := range xs {
		a, b := xs[k]-mx, ys[k]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0, fmt.Errorf("cluster: degenerate distances (zero variance)")
	}
	return num / math.Sqrt(dx*dy), nil
}
