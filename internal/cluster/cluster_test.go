package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// dist builds a distance matrix from 1-D points (Euclidean).
func dist(points []float64) [][]float64 {
	n := len(points)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(points[i] - points[j])
		}
	}
	return d
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range AllMethods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
	if len(AllMethods()) != 7 {
		t.Errorf("methods = %d, want 7", len(AllMethods()))
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build([][]float64{{0, 1}}, Single); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Build([][]float64{{1}}, Single); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if _, err := Build([][]float64{{0, 1}, {2, 0}}, Single); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := Build([][]float64{{0, -1}, {-1, 0}}, Single); err == nil {
		t.Error("negative distance accepted")
	}
	// An invalid method is an error, never a panic: user input (flags,
	// config files) reaches Build unchecked.
	for _, m := range []Method{Method(-1), Method(99)} {
		if _, err := Build([][]float64{{0, 1}, {1, 0}}, m); err == nil {
			t.Errorf("invalid method %d accepted", m)
		}
		if m.Valid() {
			t.Errorf("Method(%d).Valid() = true", m)
		}
	}
	for _, m := range AllMethods() {
		if !m.Valid() {
			t.Errorf("%s not Valid", m)
		}
	}
}

func TestTrivialSizes(t *testing.T) {
	lk, err := Build(nil, Ward)
	if err != nil || len(lk.Steps) != 0 {
		t.Errorf("empty: %v %v", lk, err)
	}
	lk, err = Build([][]float64{{0}}, Ward)
	if err != nil || len(lk.Steps) != 0 {
		t.Errorf("singleton: %v %v", lk, err)
	}
	labels, err := lk.CutK(1)
	if err != nil || !reflect.DeepEqual(labels, []int{0}) {
		t.Errorf("singleton cut: %v %v", labels, err)
	}
}

func TestSingleLinkageChaining(t *testing.T) {
	// Points 0,1,2 close together; 10 far. Single linkage merges the chain
	// first.
	lk, err := Build(dist([]float64{0, 1, 2, 10}), Single)
	if err != nil {
		t.Fatal(err)
	}
	if len(lk.Steps) != 3 {
		t.Fatalf("steps = %d", len(lk.Steps))
	}
	// First two merges at distance 1, last at 8 (single: min gap to 10).
	if lk.Steps[0].Distance != 1 || lk.Steps[1].Distance != 1 {
		t.Errorf("early merges = %+v", lk.Steps)
	}
	if lk.Steps[2].Distance != 8 {
		t.Errorf("final merge = %+v", lk.Steps[2])
	}
	labels, _ := lk.CutK(2)
	if !reflect.DeepEqual(labels, []int{0, 0, 0, 1}) {
		t.Errorf("labels = %v", labels)
	}
}

func TestCompleteVsSingle(t *testing.T) {
	// Complete linkage's final merge distance is the full diameter.
	d := dist([]float64{0, 1, 2, 10})
	s, _ := Build(d, Single)
	c, _ := Build(d, Complete)
	if got := c.Steps[len(c.Steps)-1].Distance; got != 10 {
		t.Errorf("complete final = %f, want 10", got)
	}
	if s.Steps[len(s.Steps)-1].Distance >= c.Steps[len(c.Steps)-1].Distance {
		t.Error("single final merge should be below complete's")
	}
}

func TestAverageLinkageHandComputed(t *testing.T) {
	// Three points: 0, 2, 5. Merge(0,2) at 2; then average distance from
	// {0,2} to {5} = (5+3)/2 = 4.
	lk, err := Build(dist([]float64{0, 2, 5}), Average)
	if err != nil {
		t.Fatal(err)
	}
	if lk.Steps[0].Distance != 2 || math.Abs(lk.Steps[1].Distance-4) > 1e-12 {
		t.Errorf("steps = %+v", lk.Steps)
	}
}

func TestWardHandComputed(t *testing.T) {
	// Two tight pairs: {0, 1} and {10, 11}. Ward merges within pairs first,
	// then between: d² = (2·2/(2+2))·... For singleton merges ward distance
	// equals the point distance.
	lk, err := Build(dist([]float64{0, 1, 10, 11}), Ward)
	if err != nil {
		t.Fatal(err)
	}
	if lk.Steps[0].Distance != 1 || lk.Steps[1].Distance != 1 {
		t.Errorf("within-pair merges = %+v", lk.Steps)
	}
	// Ward distance between {0,1} and {10,11}: sqrt of the LW combination;
	// for 1-D clusters with centroids 0.5 and 10.5:
	// d² = ((ni*nj)/(ni+nj))*2*||c1-c2||² -> SciPy reports
	// sqrt(2*ni*nj/(ni+nj)*Δ²) = sqrt(2*2*2/4*100) = sqrt(200) ≈ 14.1421
	want := math.Sqrt(2 * 2 * 2 / 4.0 * 100)
	if math.Abs(lk.Steps[2].Distance-want) > 0.05 {
		t.Errorf("between-pair ward distance = %f, want ≈ %f", lk.Steps[2].Distance, want)
	}
	if !lk.Monotone() {
		t.Error("ward linkage must be monotone")
	}
}

func TestCentroidHandComputed(t *testing.T) {
	// Centroid distance between merged {0,2} (centroid 1) and {6}: 5.
	lk, err := Build(dist([]float64{0, 2, 6}), Centroid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lk.Steps[1].Distance-5) > 1e-9 {
		t.Errorf("centroid distance = %f, want 5", lk.Steps[1].Distance)
	}
}

func TestMedianHandComputed(t *testing.T) {
	// Median (WPGMC): same as centroid for singleton merges.
	lk, err := Build(dist([]float64{0, 2, 6}), Median)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lk.Steps[1].Distance-5) > 1e-9 {
		t.Errorf("median distance = %f, want 5", lk.Steps[1].Distance)
	}
}

func TestWeightedHandComputed(t *testing.T) {
	// WPGMA: distance from {0,2} to 5 = (5+3)/2 = 4 (same as UPGMA for
	// singleton merge).
	lk, err := Build(dist([]float64{0, 2, 5}), Weighted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lk.Steps[1].Distance-4) > 1e-12 {
		t.Errorf("steps = %+v", lk.Steps)
	}
}

func TestCutKAndDistance(t *testing.T) {
	lk, _ := Build(dist([]float64{0, 1, 5, 6, 20}), Average)
	labels, err := lk.CutK(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, []int{0, 0, 1, 1, 2}) {
		t.Errorf("CutK(3) = %v", labels)
	}
	if _, err := lk.CutK(0); err == nil {
		t.Error("CutK(0) accepted")
	}
	if _, err := lk.CutK(6); err == nil {
		t.Error("CutK(n+1) accepted")
	}
	all, _ := lk.CutK(1)
	if SortedClusterSizes(all)[0] != 5 {
		t.Errorf("CutK(1) = %v", all)
	}
	none, _ := lk.CutK(5)
	if !reflect.DeepEqual(none, []int{0, 1, 2, 3, 4}) {
		t.Errorf("CutK(n) = %v", none)
	}
	byDist := lk.CutDistance(1.5)
	if !reflect.DeepEqual(byDist, []int{0, 0, 1, 1, 2}) {
		t.Errorf("CutDistance = %v", byDist)
	}
}

func TestCophenetic(t *testing.T) {
	lk, _ := Build(dist([]float64{0, 1, 10}), Single)
	c := lk.Cophenetic()
	if c[0][1] != 1 {
		t.Errorf("coph(0,1) = %f", c[0][1])
	}
	if c[0][2] != 9 || c[1][2] != 9 {
		t.Errorf("coph to far point = %f/%f", c[0][2], c[1][2])
	}
	for i := range c {
		if c[i][i] != 0 {
			t.Error("cophenetic diagonal nonzero")
		}
	}
}

func TestRender(t *testing.T) {
	lk, _ := Build(dist([]float64{0, 1, 10}), Single)
	out := lk.Render([]string{"T0", "T1", "T2"})
	if !contains(out, "merge(T0, T1)") {
		t.Errorf("render:\n%s", out)
	}
	out = lk.Render(nil)
	if !contains(out, "obs0") {
		t.Errorf("render without names:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool { return indexOf(s, sub) >= 0 })()
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLabelsHelper(t *testing.T) {
	m := Labels([]string{"a", "b"}, []int{1, 0})
	if m["a"] != 1 || m["b"] != 0 {
		t.Errorf("Labels = %v", m)
	}
}

// Property: every method produces exactly n-1 steps, sizes sum correctly,
// final size is n, and cuts partition all observations.
func TestQuickLinkageInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 2
		method := Method(int(mRaw) % 7)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = rng.Float64() * 100
		}
		lk, err := Build(dist(pts), method)
		if err != nil {
			return false
		}
		if len(lk.Steps) != n-1 {
			return false
		}
		if lk.Steps[n-2].Size != n {
			return false
		}
		for k := 1; k <= n; k++ {
			labels, err := lk.CutK(k)
			if err != nil || len(labels) != n {
				return false
			}
			distinct := map[int]bool{}
			for _, l := range labels {
				distinct[l] = true
			}
			if len(distinct) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: single/complete/average/weighted/ward are monotone.
func TestQuickMonotoneMethods(t *testing.T) {
	methods := []Method{Single, Complete, Average, Weighted, Ward}
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = rng.Float64() * 10
		}
		lk, err := Build(dist(pts), methods[int(mRaw)%len(methods)])
		return err == nil && lk.Monotone()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: cophenetic distances for single linkage never exceed the
// original distances (ultrametric below the metric).
func TestQuickSingleCopheneticBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = rng.Float64() * 10
		}
		d := dist(pts)
		lk, err := Build(d, Single)
		if err != nil {
			return false
		}
		c := lk.Cophenetic()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c[i][j] > d[i][j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRenderTree(t *testing.T) {
	lk, _ := Build(dist([]float64{0, 1, 10}), Single)
	out := lk.RenderTree([]string{"T0", "T1", "T2"})
	for _, want := range []string{"└─ 9.000", "├─ T2", "└─ 1.000", "├─ T0", "└─ T1"} {
		if !contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// Degenerate shapes.
	one, _ := Build([][]float64{{0}}, Single)
	if !contains(one.RenderTree([]string{"solo"}), "solo") {
		t.Error("single-leaf tree wrong")
	}
	zero, _ := Build(nil, Single)
	if !contains(zero.RenderTree(nil), "empty") {
		t.Error("empty tree wrong")
	}
}

func TestCopheneticCorrelation(t *testing.T) {
	// Well-separated clusters: every linkage should represent the
	// distances faithfully (CPCC close to 1).
	d := dist([]float64{0, 1, 2, 50, 51, 52})
	for _, m := range []Method{Single, Complete, Average, Ward} {
		lk, err := Build(d, m)
		if err != nil {
			t.Fatal(err)
		}
		cpcc, err := lk.CopheneticCorrelation(d)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if cpcc < 0.9 {
			t.Errorf("%v CPCC = %f, want > 0.9", m, cpcc)
		}
	}
}

func TestCopheneticCorrelationErrors(t *testing.T) {
	d := dist([]float64{0, 1, 2})
	lk, _ := Build(d, Average)
	if _, err := lk.CopheneticCorrelation(dist([]float64{0, 1})); err == nil {
		t.Error("size mismatch accepted")
	}
	two, _ := Build(dist([]float64{0, 1}), Average)
	if _, err := two.CopheneticCorrelation(dist([]float64{0, 1})); err == nil {
		t.Error("n<3 accepted")
	}
	same, _ := Build(dist([]float64{1, 1, 1}), Average)
	if _, err := same.CopheneticCorrelation(dist([]float64{1, 1, 1})); err == nil {
		t.Error("zero variance accepted")
	}
}
