package cluster_test

import (
	"fmt"

	"difftrace/internal/cluster"
)

// Clustering three traces by dissimilarity with ward linkage and cutting
// the dendrogram into two groups.
func ExampleBuild() {
	// T0 and T1 are nearly identical; T2 is far from both.
	d := [][]float64{
		{0.0, 0.1, 0.9},
		{0.1, 0.0, 0.8},
		{0.9, 0.8, 0.0},
	}
	lk, err := cluster.Build(d, cluster.Ward)
	if err != nil {
		panic(err)
	}
	labels, _ := lk.CutK(2)
	fmt.Println(labels)
	// Output:
	// [0 0 1]
}
