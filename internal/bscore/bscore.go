// Package bscore implements Fowlkes & Mallows' B_k method for comparing two
// hierarchical clusterings ("A Method for Comparing Two Hierarchical
// Clusterings", JASA 1983 — the paper's reference [17]).
//
// DiffTrace sorts its ranking tables by the B-score of the normal-run and
// faulty-run dendrograms (§III-C): a low score means the fault reorganized
// the similarity structure a lot, so the parameter combination that
// produced it is ranked as more informative.
package bscore

import (
	"fmt"
	"math"

	"difftrace/internal/cluster"
)

// FowlkesMallows computes B_k for two flat clusterings of the same n
// observations. Both labelings must have the same length; the number of
// clusters may differ (the general contingency form). Returns a value in
// [0, 1]: 1 means identical partitions.
func FowlkesMallows(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("bscore: labelings differ in length: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("bscore: empty labelings")
	}
	// Contingency table m[i][j] = |A_i ∩ B_j|.
	m := map[[2]int]float64{}
	rows := map[int]float64{}
	cols := map[int]float64{}
	for i := 0; i < n; i++ {
		m[[2]int{a[i], b[i]}]++
		rows[a[i]]++
		cols[b[i]]++
	}
	var tk, pk, qk float64
	for _, v := range m {
		tk += v * v
	}
	tk -= float64(n)
	for _, v := range rows {
		pk += v * v
	}
	pk -= float64(n)
	for _, v := range cols {
		qk += v * v
	}
	qk -= float64(n)
	if pk == 0 || qk == 0 {
		// One side is all singletons: B_k is undefined; by convention both
		// all-singleton partitions agree perfectly, otherwise 0.
		if pk == 0 && qk == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return tk / math.Sqrt(pk*qk), nil
}

// BScore compares two dendrograms over the same n observations by averaging
// B_k over every non-degenerate cut level k = 2..n-1 (Fowlkes & Mallows'
// plot, collapsed to its mean as DiffTrace's single sorting key). For n ≤ 3
// the only informative level k=2 is used.
func BScore(l1, l2 *cluster.Linkage) (float64, error) {
	if l1.N != l2.N {
		return 0, fmt.Errorf("bscore: dendrograms over %d vs %d observations", l1.N, l2.N)
	}
	n := l1.N
	if n < 2 {
		return 1, nil
	}
	lo, hi := 2, n-1
	if hi < lo {
		hi = lo // n == 2: compare at k=2 (all singletons on both sides)
	}
	sum, cnt := 0.0, 0
	for k := lo; k <= hi; k++ {
		c1, err := l1.CutK(k)
		if err != nil {
			return 0, err
		}
		c2, err := l2.CutK(k)
		if err != nil {
			return 0, err
		}
		bk, err := FowlkesMallows(c1, c2)
		if err != nil {
			return 0, err
		}
		sum += bk
		cnt++
	}
	return sum / float64(cnt), nil
}

// Curve returns the full (k, B_k) series for plotting, k = 2..n-1.
func Curve(l1, l2 *cluster.Linkage) ([]int, []float64, error) {
	if l1.N != l2.N {
		return nil, nil, fmt.Errorf("bscore: dendrograms over %d vs %d observations", l1.N, l2.N)
	}
	var ks []int
	var bs []float64
	for k := 2; k <= l1.N-1; k++ {
		c1, err := l1.CutK(k)
		if err != nil {
			return nil, nil, err
		}
		c2, err := l2.CutK(k)
		if err != nil {
			return nil, nil, err
		}
		bk, err := FowlkesMallows(c1, c2)
		if err != nil {
			return nil, nil, err
		}
		ks = append(ks, k)
		bs = append(bs, bk)
	}
	return ks, bs, nil
}

// RenderCurve draws the (k, B_k) series as an ASCII sparkline — the plot
// Fowlkes & Mallows' paper presents, collapsed to one line per comparison:
//
//	B_k  k=2..7  [██▆▆▄▁]  mean 0.62
func RenderCurve(l1, l2 *cluster.Linkage) (string, error) {
	ks, bs, err := Curve(l1, l2)
	if err != nil {
		return "", err
	}
	if len(ks) == 0 {
		return "B_k: (no informative cut levels)", nil
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	var sb, mean = make([]rune, len(bs)), 0.0
	for i, b := range bs {
		idx := int(b * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		sb[i] = ramp[idx]
		mean += b
	}
	mean /= float64(len(bs))
	return fmt.Sprintf("B_k  k=%d..%d  [%s]  mean %.3f", ks[0], ks[len(ks)-1], string(sb), mean), nil
}
