package bscore

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/cluster"
)

func TestFowlkesMallowsIdentical(t *testing.T) {
	got, err := FowlkesMallows([]int{0, 0, 1, 1}, []int{1, 1, 0, 0})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("identical partitions (relabeled) = %f (%v), want 1", got, err)
	}
}

func TestFowlkesMallowsOrthogonal(t *testing.T) {
	// Partitions {01}{23} vs {02}{13}: each pair co-clustered in one but
	// not the other -> Tk = 0.
	got, err := FowlkesMallows([]int{0, 0, 1, 1}, []int{0, 1, 0, 1})
	if err != nil || got != 0 {
		t.Errorf("orthogonal = %f (%v), want 0", got, err)
	}
}

func TestFowlkesMallowsHandComputed(t *testing.T) {
	// a = {0,1}{2,3,4}, b = {0,1,2}{3,4}.
	// m = [[2,0],[1,2]] -> Tk = 4+1+4-5 = 4
	// Pk = 4+9-5 = 8; Qk = 9+4-5 = 8 -> B = 4/8 = 0.5
	got, err := FowlkesMallows([]int{0, 0, 1, 1, 1}, []int{0, 0, 0, 1, 1})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("B = %f (%v), want 0.5", got, err)
	}
}

func TestFowlkesMallowsSingletons(t *testing.T) {
	// All-singletons vs all-singletons: defined as 1.
	got, err := FowlkesMallows([]int{0, 1, 2}, []int{2, 1, 0})
	if err != nil || got != 1 {
		t.Errorf("singletons = %f (%v)", got, err)
	}
	// All-singletons vs one lump: 0 by convention.
	got, err = FowlkesMallows([]int{0, 1, 2}, []int{0, 0, 0})
	if err != nil || got != 0 {
		t.Errorf("mixed degenerate = %f (%v)", got, err)
	}
}

func TestFowlkesMallowsErrors(t *testing.T) {
	if _, err := FowlkesMallows([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FowlkesMallows(nil, nil); err == nil {
		t.Error("empty labelings accepted")
	}
}

func distM(points []float64) [][]float64 {
	n := len(points)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(points[i] - points[j])
		}
	}
	return d
}

func TestBScoreIdenticalDendrograms(t *testing.T) {
	lk, err := cluster.Build(distM([]float64{0, 1, 5, 6, 20}), cluster.Ward)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BScore(lk, lk)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("self B-score = %f (%v)", got, err)
	}
}

func TestBScoreDetectsReorganization(t *testing.T) {
	// Normal: {0,1} close, {10,11} close, 30 outlier.
	// Faulty: point 1 moved to 10.5 — cluster structure changes.
	norm, _ := cluster.Build(distM([]float64{0, 1, 10, 11, 30}), cluster.Ward)
	faul, _ := cluster.Build(distM([]float64{0, 10.5, 10, 11, 30}), cluster.Ward)
	same, _ := BScore(norm, norm)
	diff, err := BScore(norm, faul)
	if err != nil {
		t.Fatal(err)
	}
	if diff >= same {
		t.Errorf("reorganized dendrogram should score below identical: %f vs %f", diff, same)
	}
}

func TestBScoreSizeMismatch(t *testing.T) {
	a, _ := cluster.Build(distM([]float64{0, 1}), cluster.Single)
	b, _ := cluster.Build(distM([]float64{0, 1, 2}), cluster.Single)
	if _, err := BScore(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, _, err := Curve(a, b); err == nil {
		t.Error("Curve size mismatch accepted")
	}
}

func TestBScoreTinyN(t *testing.T) {
	one, _ := cluster.Build(distM([]float64{0}), cluster.Single)
	if got, err := BScore(one, one); err != nil || got != 1 {
		t.Errorf("n=1: %f %v", got, err)
	}
	two, _ := cluster.Build(distM([]float64{0, 5}), cluster.Single)
	if got, err := BScore(two, two); err != nil || got != 1 {
		t.Errorf("n=2: %f %v", got, err)
	}
}

func TestCurve(t *testing.T) {
	lk, _ := cluster.Build(distM([]float64{0, 1, 5, 6, 20}), cluster.Average)
	ks, bs, err := Curve(lk, lk)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 3 || ks[0] != 2 || ks[2] != 4 {
		t.Errorf("ks = %v", ks)
	}
	for _, b := range bs {
		if math.Abs(b-1) > 1e-12 {
			t.Errorf("self curve = %v", bs)
		}
	}
}

// Property: B_k is symmetric, in [0,1], invariant to label permutation, and
// 1 on identical partitions.
func TestQuickFowlkesMallowsProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%10 + 2
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		ab, err1 := FowlkesMallows(a, b)
		ba, err2 := FowlkesMallows(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(ab-ba) > 1e-12 || ab < -1e-12 || ab > 1+1e-12 {
			return false
		}
		// Permute a's labels: score with b unchanged.
		perm := map[int]int{0: 2, 1: 0, 2: 1}
		ap := make([]int, n)
		for i := range a {
			ap[i] = perm[a[i]]
		}
		apb, err := FowlkesMallows(ap, b)
		if err != nil || math.Abs(apb-ab) > 1e-12 {
			return false
		}
		self, err := FowlkesMallows(a, a)
		return err == nil && math.Abs(self-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBScoreCurveCutErrors(t *testing.T) {
	// A dendrogram over zero observations exercises the degenerate path.
	z, _ := cluster.Build(nil, cluster.Single)
	if got, err := BScore(z, z); err != nil || got != 1 {
		t.Errorf("empty BScore = %f, %v", got, err)
	}
	ks, bs, err := Curve(z, z)
	if err != nil || len(ks) != 0 || len(bs) != 0 {
		t.Errorf("empty Curve = %v %v %v", ks, bs, err)
	}
}

func TestRenderCurve(t *testing.T) {
	norm, _ := cluster.Build(distM([]float64{0, 1, 10, 11, 30, 31}), cluster.Ward)
	faul, _ := cluster.Build(distM([]float64{0, 30.5, 10, 11, 30, 31}), cluster.Ward)
	out, err := RenderCurve(norm, faul)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "B_k  k=2..5") || !strings.Contains(out, "mean") {
		t.Errorf("curve = %q", out)
	}
	self, err := RenderCurve(norm, norm)
	if err != nil || !strings.Contains(self, "mean 1.000") {
		t.Errorf("self curve = %q (%v)", self, err)
	}
	two, _ := cluster.Build(distM([]float64{0, 1}), cluster.Single)
	empty, err := RenderCurve(two, two)
	if err != nil || !strings.Contains(empty, "no informative") {
		t.Errorf("degenerate curve = %q (%v)", empty, err)
	}
	if _, err := RenderCurve(norm, two); err == nil {
		t.Error("size mismatch accepted")
	}
}
