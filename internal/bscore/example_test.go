package bscore_test

import (
	"fmt"

	"difftrace/internal/bscore"
)

// Two flat clusterings of five observations, compared by Fowlkes-Mallows.
func ExampleFowlkesMallows() {
	a := []int{0, 0, 1, 1, 1}
	b := []int{0, 0, 0, 1, 1}
	bk, _ := bscore.FowlkesMallows(a, b)
	fmt.Printf("%.2f\n", bk)
	// Output:
	// 0.50
}
