package query

// oracle.go is the differential-testing oracle for the loop-arithmetic
// aggregates: every View method has a brute-force twin here that
// materializes the full expansion and recounts naively. The property suite
// (property_test.go) checks the two against each other on synth-generated
// traces. Nothing outside tests should call these — they defeat the whole
// O(summary) point — but the oracle lives in a non-test file so the
// expanddiscipline directive below is actually exercised by the lint
// loader (test files are skipped by it, which would leave the annotation
// meaningless).

import (
	"fmt"

	"difftrace/internal/nlr"
)

// oracleExpand is the single place the oracle materializes an expansion.
func oracleExpand(elems []nlr.Element) []string {
	//lint:allow expanddiscipline differential-test oracle: brute-force recount over the expansion is the ground truth the O(summary) aggregates are checked against
	return nlr.Expand(elems)
}

// NaiveCount recounts fn over the fully expanded view — the Count oracle.
func (v *View) NaiveCount(fn string) int64 {
	var n int64
	for _, o := range v.objs {
		for _, sym := range oracleExpand(o.elems) {
			if sym == fn {
				n++
			}
		}
	}
	return n
}

// NaiveCountIn recounts fn over one object's expansion — the CountIn oracle.
func (v *View) NaiveCountIn(object, fn string) (int64, error) {
	i, ok := v.idx[object]
	if !ok {
		return 0, errUnknown(object)
	}
	var n int64
	for _, sym := range oracleExpand(v.objs[i].elems) {
		if sym == fn {
			n++
		}
	}
	return n, nil
}

// NaiveTotal counts expanded events the slow way — the Total oracle.
func (v *View) NaiveTotal() int64 {
	var n int64
	for _, o := range v.objs {
		n += int64(len(oracleExpand(o.elems)))
	}
	return n
}

// NaiveSlice materializes the whole expansion and slices it — the Slice
// oracle.
func (v *View) NaiveSlice(object string, from, to int64) ([]string, error) {
	i, ok := v.idx[object]
	if !ok {
		return nil, errUnknown(object)
	}
	full := oracleExpand(v.objs[i].elems)
	if from < 0 {
		from = 0
	}
	if to > int64(len(full)) {
		to = int64(len(full))
	}
	if from >= to {
		return nil, nil
	}
	out := make([]string, to-from)
	copy(out, full[from:to])
	return out, nil
}

func errUnknown(object string) error {
	return fmt.Errorf("query: unknown object %q", object)
}
