package query

// Explorer wiring test: run the real pipeline over a ground-truth
// synthetic pair and check the hypothesis helpers read through to the
// injected fault.

import (
	"testing"

	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/synth"
	"difftrace/internal/trace"
)

func TestQueryExploreReadsReport(t *testing.T) {
	base := synth.Config{
		Prologue: 2,
		Loops:    []synth.LoopSpec{{Body: 2, Iterations: 8}},
		Epilogue: 1,
	}
	normal := synth.Population(4, -1, 0, base)
	// Rank 2's loop runs twice as long in the faulty run.
	faulty := buildPopulation(normal.Registry, 4, 2, 2.0, base)

	cfg := core.DefaultConfig()
	cfg.Filter = filter.Everything()
	rep, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Explore(rep)
	if err != nil {
		t.Fatal(err)
	}

	fn := "loop0_body_0"
	r := e.Threads.CountRatio(fn)
	if r.Normal != 4*8 || r.Faulty != 3*8+16 {
		t.Fatalf("CountRatio(%q) = %+v, want 32 normal / 40 faulty", fn, r)
	}
	// The per-object breakdown isolates the deviant rank.
	for _, oc := range e.Threads.Faulty.PerObject(fn) {
		want := int64(8)
		if oc.Object == "2.0" {
			want = 16
		}
		if oc.Count != want {
			t.Fatalf("faulty PerObject(%q)[%s] = %d, want %d", fn, oc.Object, oc.Count, want)
		}
	}
	// Changed must surface the loop-body functions, not the prologue.
	for _, ch := range e.Threads.Changed() {
		if ch.Normal == ch.Faulty {
			t.Fatalf("Changed includes unchanged func %+v", ch)
		}
	}
	if _, err := e.Level("nope"); err == nil {
		t.Fatal("Level(nope) should fail")
	}
}

// buildPopulation is synth.Population but reusing an existing registry so
// both sides share function IDs, as real ingestion guarantees.
func buildPopulation(reg *trace.Registry, n, deviant int, scale float64, base synth.Config) *trace.TraceSet {
	set := trace.NewTraceSetWith(reg)
	for p := 0; p < n; p++ {
		cfg := base
		cfg.Seed = base.Seed + int64(p)
		if p == deviant {
			cfg.Loops = append([]synth.LoopSpec(nil), base.Loops...)
			for i := range cfg.Loops {
				it := int(float64(cfg.Loops[i].Iterations) * scale)
				if it < 1 {
					it = 1
				}
				cfg.Loops[i].Iterations = it
			}
		}
		synth.Generate(set, trace.TID(p, 0), cfg)
	}
	return set
}
