// Package query is DiffTrace's programmatic filter/aggregate/diff layer:
// a scriptable API over already-ingested (and already-summarized) trace
// sets, in the spirit of Pipit's dataframe queries and the
// hypothesis-testing workflow of interactive tracers. Users ask questions
// like "is CPU_Exec called twice as often in the faulty run?" without
// rerunning ingestion, NLR, or FCA.
//
// Every aggregate is computed by loop arithmetic over the NLR-summarized
// sequences — a loop element contributes Count × (its body's aggregate) —
// so queries cost O(summary size), never O(events), and compose with the
// streaming pipeline's memory ceiling. The property suite checks each
// aggregate differentially against the brute-force recount over
// nlr.Expand-ed traces (see oracle.go).
package query

import (
	"fmt"
	"sort"
	"strings"

	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
)

// View is one execution side's queryable image: named objects (per-thread
// "p.t" traces or per-process "p" merges), each backed by its summarized
// NLR sequence. Views are immutable after construction and safe for
// concurrent readers.
type View struct {
	objs []objView
	idx  map[string]int
}

type objView struct {
	name  string
	elems []nlr.Element
}

// FromNLR builds a View from a per-object summarized-sequence map (the
// shape core.Analysis.NLR holds). Objects are ordered naturally
// ("2.0" < "10.0"), so every aggregate that enumerates objects is
// deterministic regardless of map iteration order.
func FromNLR(m map[string][]nlr.Element) *View {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return jaccard.LessNatural(names[i], names[j]) })
	v := &View{idx: make(map[string]int, len(names))}
	for _, name := range names {
		v.idx[name] = len(v.objs)
		v.objs = append(v.objs, objView{name: name, elems: m[name]})
	}
	return v
}

// Objects lists the view's object names in natural order.
func (v *View) Objects() []string {
	out := make([]string, len(v.objs))
	for i, o := range v.objs {
		out[i] = o.name
	}
	return out
}

// Has reports whether the view holds an object with this name.
func (v *View) Has(object string) bool {
	_, ok := v.idx[object]
	return ok
}

// walkCounts adds mult-weighted symbol counts for elems into f. A loop
// multiplies the multiplier by its count — the whole point of querying the
// summarized form.
func walkCounts(elems []nlr.Element, mult int64, f func(sym string, n int64)) {
	for _, e := range elems {
		if e.Loop == nil {
			f(e.Sym, mult)
			continue
		}
		walkCounts(e.Loop.Body, mult*int64(e.Loop.Count), f)
	}
}

// Funcs lists every distinct symbol appearing in the view (function names,
// and "ret:" tokens when returns survived the filter), naturally sorted.
func (v *View) Funcs() []string {
	seen := map[string]bool{}
	for _, o := range v.objs {
		walkCounts(o.elems, 1, func(sym string, _ int64) { seen[sym] = true })
	}
	out := make([]string, 0, len(seen))
	for sym := range seen {
		out = append(out, sym)
	}
	sort.Slice(out, func(i, j int) bool { return jaccard.LessNatural(out[i], out[j]) })
	return out
}

// Count returns the total number of times fn occurs across all objects'
// expanded streams (without expanding anything).
func (v *View) Count(fn string) int64 {
	var total int64
	for _, o := range v.objs {
		total += countIn(o.elems, fn)
	}
	return total
}

func countIn(elems []nlr.Element, fn string) int64 {
	var n int64
	walkCounts(elems, 1, func(sym string, c int64) {
		if sym == fn {
			n += c
		}
	})
	return n
}

// CountIn returns fn's occurrence count within one object.
func (v *View) CountIn(object, fn string) (int64, error) {
	i, ok := v.idx[object]
	if !ok {
		return 0, fmt.Errorf("query: unknown object %q", object)
	}
	return countIn(v.objs[i].elems, fn), nil
}

// ObjectCount pairs an object with a count.
type ObjectCount struct {
	Object string `json:"object"`
	Count  int64  `json:"count"`
}

// PerObject returns fn's count in every object, in natural object order.
func (v *View) PerObject(fn string) []ObjectCount {
	out := make([]ObjectCount, len(v.objs))
	for i, o := range v.objs {
		out[i] = ObjectCount{Object: o.name, Count: countIn(o.elems, fn)}
	}
	return out
}

// Counts returns every symbol's total count across the view, naturally
// sorted by symbol — the per-function call-count profile of one execution.
func (v *View) Counts() []FuncCount {
	totals := map[string]int64{}
	for _, o := range v.objs {
		walkCounts(o.elems, 1, func(sym string, c int64) { totals[sym] += c })
	}
	syms := make([]string, 0, len(totals))
	for sym := range totals {
		syms = append(syms, sym)
	}
	sort.Slice(syms, func(i, j int) bool { return jaccard.LessNatural(syms[i], syms[j]) })
	out := make([]FuncCount, len(syms))
	for i, sym := range syms {
		out[i] = FuncCount{Func: sym, Count: totals[sym]}
	}
	return out
}

// FuncCount pairs a function (symbol) with a count.
type FuncCount struct {
	Func  string `json:"func"`
	Count int64  `json:"count"`
}

// Total returns the view's total expanded event count.
func (v *View) Total() int64 {
	var n int64
	for _, o := range v.objs {
		n += nlr.ExpandedLen(o.elems)
	}
	return n
}

// TotalIn returns one object's expanded event count.
func (v *View) TotalIn(object string) (int64, error) {
	i, ok := v.idx[object]
	if !ok {
		return 0, fmt.Errorf("query: unknown object %q", object)
	}
	return nlr.ExpandedLen(v.objs[i].elems), nil
}

// Slice returns the expanded tokens of object's event range [from, to) —
// the per-trace event-slice primitive. Only the requested window is
// materialized: loops wholly before from are skipped by length arithmetic,
// and the walk stops at to, so cost is O(summary + (to-from)), not
// O(events). Out-of-range indices clamp; from >= to yields nil.
func (v *View) Slice(object string, from, to int64) ([]string, error) {
	i, ok := v.idx[object]
	if !ok {
		return nil, fmt.Errorf("query: unknown object %q", object)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return nil, nil
	}
	var out []string
	var pos int64
	sliceInto(v.objs[i].elems, from, to, &pos, &out)
	return out, nil
}

func sliceInto(elems []nlr.Element, from, to int64, pos *int64, out *[]string) {
	for _, e := range elems {
		if *pos >= to {
			return
		}
		if e.Loop == nil {
			if *pos >= from {
				*out = append(*out, e.Sym)
			}
			*pos++
			continue
		}
		bodyLen := nlr.ExpandedLen(e.Loop.Body)
		total := bodyLen * int64(e.Loop.Count)
		if *pos+total <= from {
			*pos += total
			continue
		}
		for it := 0; it < e.Loop.Count && *pos < to; it++ {
			if *pos+bodyLen <= from {
				*pos += bodyLen
				continue
			}
			sliceInto(e.Loop.Body, from, to, pos, out)
		}
	}
}

// Hist is a power-of-two bucketed distribution of per-object counts: how
// many objects called fn 0 times, once, 2–3 times, 4–7, ... — the shape
// behind "only some ranks stopped calling X".
type Hist struct {
	Func    string       `json:"func"`
	Objects int          `json:"objects"`
	Buckets []HistBucket `json:"buckets"`
}

// HistBucket covers per-object counts in [Lo, Hi] (inclusive).
type HistBucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int   `json:"n"`
}

// Histogram buckets fn's per-object counts into power-of-two ranges.
// Zero-count objects land in the [0,0] bucket. Empty buckets are omitted;
// the remainder appear in ascending range order.
func (v *View) Histogram(fn string) Hist {
	h := Hist{Func: fn, Objects: len(v.objs)}
	// bucket 0 = count 0, bucket b>=1 = counts in [2^(b-1), 2^b - 1].
	byBucket := map[int]int{}
	for _, o := range v.objs {
		byBucket[histBucket(countIn(o.elems, fn))]++
	}
	buckets := make([]int, 0, len(byBucket))
	for b := range byBucket {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		lo, hi := bucketRange(b)
		h.Buckets = append(h.Buckets, HistBucket{Lo: lo, Hi: hi, N: byBucket[b]})
	}
	return h
}

func histBucket(n int64) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

func bucketRange(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	return int64(1) << uint(b-1), (int64(1) << uint(b)) - 1
}

// String renders the histogram on one line ("[0]=2 [1]=1 [4..7]=5").
func (h Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s over %d objects:", h.Func, h.Objects)
	for _, bk := range h.Buckets {
		if bk.Lo == bk.Hi {
			fmt.Fprintf(&b, " [%d]=%d", bk.Lo, bk.N)
		} else {
			fmt.Fprintf(&b, " [%d..%d]=%d", bk.Lo, bk.Hi, bk.N)
		}
	}
	return b.String()
}
