package query

import (
	"fmt"

	"difftrace/internal/core"
)

// Explorer wraps a finished core.Report with Pair views at both
// granularities, so a debugging session holds one handle: run the pipeline
// once, then test hypotheses against it interactively.
type Explorer struct {
	Report    *core.Report
	Threads   Pair // objects are "p.t" thread traces
	Processes Pair // objects are "p" merged process traces
}

// Explore builds the query surface over an already-computed report. It
// reads only the summarized NLR maps — no re-ingestion, no expansion — so
// it is cheap to call even right after a streaming run.
func Explore(rep *core.Report) (*Explorer, error) {
	if rep == nil {
		return nil, fmt.Errorf("query: nil report")
	}
	e := &Explorer{Report: rep}
	var err error
	if e.Threads, err = levelPair(rep.Threads, "threads"); err != nil {
		return nil, err
	}
	if e.Processes, err = levelPair(rep.Processes, "processes"); err != nil {
		return nil, err
	}
	return e, nil
}

func levelPair(l *core.Level, name string) (Pair, error) {
	if l == nil || l.Normal == nil || l.Faulty == nil {
		return Pair{}, fmt.Errorf("query: report has no %s level", name)
	}
	return Pair{Normal: FromNLR(l.Normal.NLR), Faulty: FromNLR(l.Faulty.NLR)}, nil
}

// Level returns the Pair for a level name ("threads" or "processes").
func (e *Explorer) Level(name string) (Pair, error) {
	switch name {
	case "threads":
		return e.Threads, nil
	case "processes":
		return e.Processes, nil
	}
	return Pair{}, fmt.Errorf("query: unknown level %q (want threads or processes)", name)
}
