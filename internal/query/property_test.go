package query

// Differential property battery: every loop-arithmetic aggregate must
// agree with its brute-force oracle (oracle.go) on seed-driven synthetic
// traces of varying loop depth, regularity, and noise. The generators are
// pure functions of the seed, so failures replay exactly.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"difftrace/internal/nlr"
	"difftrace/internal/synth"
)

// genView builds a View of several synthetic objects summarized against
// one shared table — the same shape core hands the query layer.
func genView(seed int64) *View {
	rng := rand.New(rand.NewSource(seed))
	table := nlr.NewTable()
	m := map[string][]nlr.Element{}
	objects := 2 + rng.Intn(4)
	for p := 0; p < objects; p++ {
		cfg := synth.Config{
			Prologue: rng.Intn(3),
			Epilogue: rng.Intn(3),
			Seed:     seed*100 + int64(p),
		}
		loops := 1 + rng.Intn(3)
		for l := 0; l < loops; l++ {
			spec := synth.LoopSpec{Body: 1 + rng.Intn(3), Iterations: 1 + rng.Intn(6)}
			if rng.Intn(2) == 0 {
				spec.Nested = &synth.LoopSpec{Body: 1 + rng.Intn(2), Iterations: 1 + rng.Intn(4)}
			}
			cfg.Loops = append(cfg.Loops, spec)
		}
		if rng.Intn(3) == 0 {
			cfg.NoiseRate, cfg.NoisePool = 0.2, 2
		}
		m[objName(p)] = nlr.Summarize(synth.Tokens(cfg), nlr.DefaultK, table)
	}
	return FromNLR(m)
}

func objName(p int) string {
	return string(rune('0'+p)) + ".0"
}

const seeds = 40

func TestQueryCountMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		v := genView(seed)
		for _, fn := range append(v.Funcs(), "never_called") {
			if got, want := v.Count(fn), v.NaiveCount(fn); got != want {
				t.Fatalf("seed %d: Count(%q) = %d, naive recount = %d", seed, fn, got, want)
			}
			for _, o := range v.Objects() {
				got, err := v.CountIn(o, fn)
				if err != nil {
					t.Fatal(err)
				}
				want, err := v.NaiveCountIn(o, fn)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d: CountIn(%q, %q) = %d, naive = %d", seed, o, fn, got, want)
				}
			}
		}
	}
}

func TestQueryTotalMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		v := genView(seed)
		if got, want := v.Total(), v.NaiveTotal(); got != want {
			t.Fatalf("seed %d: Total = %d, naive = %d", seed, got, want)
		}
		var sum int64
		for _, o := range v.Objects() {
			n, err := v.TotalIn(o)
			if err != nil {
				t.Fatal(err)
			}
			sum += n
		}
		if sum != v.Total() {
			t.Fatalf("seed %d: per-object totals sum to %d, Total = %d", seed, sum, v.Total())
		}
	}
}

func TestQueryCountsMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		v := genView(seed)
		var sum int64
		for _, fc := range v.Counts() {
			if want := v.NaiveCount(fc.Func); fc.Count != want {
				t.Fatalf("seed %d: Counts[%q] = %d, naive = %d", seed, fc.Func, fc.Count, want)
			}
			sum += fc.Count
		}
		// Every expanded event is some symbol's occurrence, so the profile
		// must partition the total.
		if sum != v.Total() {
			t.Fatalf("seed %d: profile sums to %d, Total = %d", seed, sum, v.Total())
		}
	}
}

func TestQuerySliceMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		v := genView(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for _, o := range v.Objects() {
			total, err := v.TotalIn(o)
			if err != nil {
				t.Fatal(err)
			}
			windows := [][2]int64{
				{0, total},               // whole stream
				{0, 0},                   // empty
				{-3, 2},                  // clamped start
				{total - 1, total + 10},  // clamped end
				{total / 2, total/2 + 5}, // middle
			}
			for i := 0; i < 6; i++ {
				a, b := rng.Int63n(total+2)-1, rng.Int63n(total+2)-1
				windows = append(windows, [2]int64{a, b})
			}
			for _, win := range windows {
				got, err := v.Slice(o, win[0], win[1])
				if err != nil {
					t.Fatal(err)
				}
				want, err := v.NaiveSlice(o, win[0], win[1])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: Slice(%q, %d, %d) = %v, naive = %v", seed, o, win[0], win[1], got, want)
				}
			}
		}
	}
}

func TestQueryHistogramMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		v := genView(seed)
		for _, fn := range append(v.Funcs(), "never_called") {
			h := v.Histogram(fn)
			if h.Objects != len(v.Objects()) {
				t.Fatalf("seed %d: Histogram(%q).Objects = %d, want %d", seed, fn, h.Objects, len(v.Objects()))
			}
			// Naive recount: bucket each object's brute-force count by hand.
			want := map[[2]int64]int{}
			for _, o := range v.Objects() {
				n, err := v.NaiveCountIn(o, fn)
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := int64(0), int64(0)
				for n > hi {
					if lo == 0 {
						lo, hi = 1, 1
					} else {
						lo, hi = hi+1, 2*hi+1
					}
				}
				want[[2]int64{lo, hi}]++
			}
			total := 0
			for _, b := range h.Buckets {
				if want[[2]int64{b.Lo, b.Hi}] != b.N {
					t.Fatalf("seed %d: Histogram(%q) bucket [%d..%d] = %d, naive = %d",
						seed, fn, b.Lo, b.Hi, b.N, want[[2]int64{b.Lo, b.Hi}])
				}
				total += b.N
			}
			if total != h.Objects {
				t.Fatalf("seed %d: Histogram(%q) buckets cover %d objects, want %d", seed, fn, total, h.Objects)
			}
		}
	}
}

func TestQueryPairRatioMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		p := Pair{Normal: genView(seed), Faulty: genView(seed + 1000)}
		fns := map[string]bool{"never_called": true}
		for _, fn := range p.Normal.Funcs() {
			fns[fn] = true
		}
		for _, fn := range p.Faulty.Funcs() {
			fns[fn] = true
		}
		for fn := range fns {
			r := p.CountRatio(fn)
			if r.Normal != p.Normal.NaiveCount(fn) || r.Faulty != p.Faulty.NaiveCount(fn) {
				t.Fatalf("seed %d: CountRatio(%q) = %+v, naive = %d/%d",
					seed, fn, r, p.Faulty.NaiveCount(fn), p.Normal.NaiveCount(fn))
			}
		}
		// Compare must cover exactly the union of both sides' functions.
		cmp := p.Compare()
		if len(cmp) != len(fns)-1 { // minus the never_called probe
			t.Fatalf("seed %d: Compare returned %d funcs, union has %d", seed, len(cmp), len(fns)-1)
		}
	}
}

func TestQueryRatioValue(t *testing.T) {
	cases := []struct {
		normal, faulty int64
		want           float64
	}{
		{0, 0, 1},
		{4, 8, 2},
		{8, 4, 0.5},
		{2, 0, 0},
	}
	for _, c := range cases {
		r := Ratio{Func: "f", Normal: c.normal, Faulty: c.faulty}
		if got := r.Value(); got != c.want {
			t.Fatalf("Ratio{%d,%d}.Value = %v, want %v", c.normal, c.faulty, got, c.want)
		}
	}
	if v := (Ratio{Func: "f", Normal: 0, Faulty: 3}).Value(); !math.IsInf(v, 1) {
		t.Fatalf("Ratio{0,3}.Value = %v, want +Inf", v)
	}
}

func TestQueryChangedOrdering(t *testing.T) {
	n := FromNLR(map[string][]nlr.Element{"0.0": elemsOf("a", "a", "b", "c", "d", "d", "d")})
	f := FromNLR(map[string][]nlr.Element{"0.0": elemsOf("a", "a", "a", "a", "b", "d", "e")})
	p := Pair{Normal: n, Faulty: f}
	ch := p.Changed()
	// c vanished and e appeared (infinite deviation, natural order c < e),
	// then d (3 -> 1, 3x) then a (2 -> 4, 2x); b is unchanged.
	want := []string{"c", "e", "d", "a"}
	if len(ch) != len(want) {
		t.Fatalf("Changed returned %d entries, want %d: %+v", len(ch), len(want), ch)
	}
	for i, fn := range want {
		if ch[i].Func != fn {
			t.Fatalf("Changed[%d] = %q, want %q (full: %+v)", i, ch[i].Func, fn, ch)
		}
	}
}

func elemsOf(syms ...string) []nlr.Element {
	out := make([]nlr.Element, len(syms))
	for i, s := range syms {
		out[i] = nlr.Element{Sym: s}
	}
	return out
}
