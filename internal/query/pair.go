package query

import (
	"fmt"
	"math"
	"sort"

	"difftrace/internal/jaccard"
)

// Pair is the set-vs-set comparison surface: a normal-side and a
// faulty-side View queried together. This is the hypothesis-testing
// primitive — "is CPU_Exec called twice as often in the faulty run?"
// is pair.CountRatio("CPU_Exec").
type Pair struct {
	Normal *View
	Faulty *View
}

// Ratio is a faulty/normal count comparison for one function. Value
// handles the degenerate cases explicitly rather than returning NaN/Inf
// surprises to callers.
type Ratio struct {
	Func   string `json:"func"`
	Normal int64  `json:"normal"`
	Faulty int64  `json:"faulty"`
}

// Value returns Faulty/Normal. Both zero → 1 (no evidence of change);
// Normal zero with Faulty nonzero → +Inf (appeared from nothing).
func (r Ratio) Value() float64 {
	if r.Normal == 0 {
		if r.Faulty == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(r.Faulty) / float64(r.Normal)
}

// String renders the ratio for interactive use ("CPU_Exec: 12 -> 24 (2.00x)").
func (r Ratio) String() string {
	v := r.Value()
	if math.IsInf(v, 1) {
		return fmt.Sprintf("%s: %d -> %d (new)", r.Func, r.Normal, r.Faulty)
	}
	return fmt.Sprintf("%s: %d -> %d (%.2fx)", r.Func, r.Normal, r.Faulty, v)
}

// CountRatio answers the canonical hypothesis question: how does fn's
// total call count change from the normal run to the faulty one?
func (p Pair) CountRatio(fn string) Ratio {
	return Ratio{Func: fn, Normal: p.Normal.Count(fn), Faulty: p.Faulty.Count(fn)}
}

// Compare returns a Ratio for every function seen on either side, in
// natural function order — the full aggregate comparison of the two sets.
func (p Pair) Compare() []Ratio {
	seen := map[string]bool{}
	for _, fn := range p.Normal.Funcs() {
		seen[fn] = true
	}
	for _, fn := range p.Faulty.Funcs() {
		seen[fn] = true
	}
	fns := make([]string, 0, len(seen))
	for fn := range seen {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return jaccard.LessNatural(fns[i], fns[j]) })
	out := make([]Ratio, len(fns))
	for i, fn := range fns {
		out[i] = p.CountRatio(fn)
	}
	return out
}

// Changed returns Compare filtered to functions whose counts differ,
// ordered by how far the ratio strays from 1 (most-changed first; ties
// broken by natural function order so output is deterministic). This is
// the one-call "what moved?" overview.
func (p Pair) Changed() []Ratio {
	var out []Ratio
	for _, r := range p.Compare() {
		if r.Normal != r.Faulty {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := deviation(out[i]), deviation(out[j])
		if di != dj {
			return di > dj
		}
		return jaccard.LessNatural(out[i].Func, out[j].Func)
	})
	return out
}

// deviation measures how far a ratio strays from 1, symmetrically in both
// directions (2x and 0.5x deviate equally). Appearing/vanishing functions
// rank above any finite change.
func deviation(r Ratio) float64 {
	v := r.Value()
	if math.IsInf(v, 1) || v == 0 {
		return math.Inf(1)
	}
	if v < 1 {
		v = 1 / v
	}
	return v
}
