// Package omp is a minimal OpenMP-style runtime standing in for GOMP under
// the paper's hybrid applications: parallel regions run one goroutine per
// thread, and named critical sections serialize through per-name mutexes.
//
// The traced call names follow GOMP's conventions (GOMP_parallel_start,
// GOMP_critical_start, ...) so the Table I "OMP" filters match them, and
// the unprotected-memcpy bug of §IV-B is expressed by entering a critical
// region with protection disabled — the GOMP_critical_* calls simply vanish
// from that thread's trace, which is exactly what DiffTrace detects.
package omp

import (
	"sync"

	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// Region is a parallel region factory bound to one process and a tracer.
type Region struct {
	Process int
	Tracer  *parlot.Tracer

	mu        sync.Mutex
	criticals map[string]*sync.Mutex
}

// NewRegion returns a Region for the given process. tracer may be nil.
func NewRegion(process int, tracer *parlot.Tracer) *Region {
	return &Region{Process: process, Tracer: tracer, criticals: make(map[string]*sync.Mutex)}
}

// Thread gives access to one thread's runtime handle inside a region.
type Thread struct {
	region *Region
	num    int
	th     *parlot.ThreadTracer // nil when untraced
}

// Num returns the thread number (0 = master), tracing the
// omp_get_thread_num call like the instrumented ILCS binary shows.
func (t *Thread) Num() int {
	t.enter("omp_get_thread_num")
	t.exit("omp_get_thread_num")
	return t.num
}

// Tracer exposes the thread's ParLOT tracer (nil when untraced), so
// application code can trace its own functions on the right thread.
func (t *Thread) Tracer() *parlot.ThreadTracer { return t.th }

func (t *Thread) enter(name string) {
	if t.th != nil {
		t.th.Enter(name)
	}
}

func (t *Thread) exit(name string) {
	if t.th != nil {
		t.th.Exit(name)
	}
}

// Parallel runs body on numThreads threads (thread 0 included) and blocks
// until all return — the `#pragma omp parallel num_threads(n)` construct of
// Listing 1. The master (thread 0) runs on the calling goroutine, like real
// OpenMP, so MPI calls made by thread 0 stay on the rank's thread.
func (r *Region) Parallel(numThreads int, body func(t *Thread)) {
	master := r.thread(0)
	master.enter("GOMP_parallel_start")
	master.exit("GOMP_parallel_start")

	var wg sync.WaitGroup
	for i := 1; i < numThreads; i++ {
		wg.Add(1)
		//lint:allow nakedgoroutine simulated OMP threads model the traced app's own parallel region, not the analysis pipeline; thread count is the app's num_threads, not the Workers budget
		go func(num int) {
			defer wg.Done()
			body(r.thread(num))
		}(i)
	}
	body(master)
	wg.Wait()

	master.enter("GOMP_parallel_end")
	master.exit("GOMP_parallel_end")
}

func (r *Region) thread(num int) *Thread {
	t := &Thread{region: r, num: num}
	if r.Tracer != nil {
		t.th = r.Tracer.Thread(trace.TID(r.Process, num))
	}
	return t
}

// criticalMu returns the process-wide mutex for a named critical section.
func (r *Region) criticalMu(name string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.criticals[name]
	if !ok {
		m = &sync.Mutex{}
		r.criticals[name] = m
	}
	return m
}

// Critical executes body inside the named critical section, tracing
// GOMP_critical_start/GOMP_critical_end. When protect is false the section
// is entered WITHOUT the lock and without the GOMP_* calls — the §IV-B
// injected bug (omitted critical section → data race, and the calls missing
// from the trace).
func (t *Thread) Critical(name string, protect bool, body func()) {
	if !protect {
		body()
		return
	}
	mu := t.region.criticalMu(name)
	t.enter("GOMP_critical_start")
	mu.Lock()
	t.exit("GOMP_critical_start")
	defer func() {
		mu.Unlock()
		t.enter("GOMP_critical_end")
		t.exit("GOMP_critical_end")
	}()
	body()
}
