package omp

import (
	"sync"
	"testing"

	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func TestParallelRunsAllThreads(t *testing.T) {
	r := NewRegion(0, nil)
	var mu sync.Mutex
	seen := map[int]bool{}
	r.Parallel(4, func(th *Thread) {
		mu.Lock()
		seen[th.num] = true
		mu.Unlock()
	})
	if len(seen) != 4 {
		t.Fatalf("threads seen = %v", seen)
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Errorf("thread %d never ran", i)
		}
	}
}

func TestMasterRunsOnCallingGoroutine(t *testing.T) {
	r := NewRegion(0, nil)
	marker := 0
	r.Parallel(2, func(th *Thread) {
		if th.num == 0 {
			marker = 42 // no synchronization needed if on calling goroutine
		}
	})
	if marker != 42 {
		t.Error("master body did not run before Parallel returned")
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	r := NewRegion(0, nil)
	counter := 0
	r.Parallel(8, func(th *Thread) {
		for i := 0; i < 200; i++ {
			th.Critical("champ", true, func() {
				counter++
			})
		}
	})
	if counter != 1600 {
		t.Fatalf("counter = %d, want 1600 (lost updates)", counter)
	}
}

func TestCriticalTracing(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	r := NewRegion(3, tr)
	r.Parallel(2, func(th *Thread) {
		th.Num()
		th.Critical("sec", true, func() {})
	})
	set := tr.Collect()
	if len(set.Traces) != 2 {
		t.Fatalf("traces = %d", len(set.Traces))
	}
	for _, tid := range []trace.ThreadID{trace.TID(3, 0), trace.TID(3, 1)} {
		names := set.Traces[tid].Names(set.Registry)
		var hasStart, hasEnd, hasNum bool
		for _, n := range names {
			switch n {
			case "GOMP_critical_start":
				hasStart = true
			case "GOMP_critical_end":
				hasEnd = true
			case "omp_get_thread_num":
				hasNum = true
			}
		}
		if !hasStart || !hasEnd || !hasNum {
			t.Errorf("thread %v calls = %v", tid, names)
		}
	}
	// Master also records the parallel region markers.
	names := set.Traces[trace.TID(3, 0)].Names(set.Registry)
	if names[0] != "GOMP_parallel_start" {
		t.Errorf("master calls = %v", names)
	}
}

func TestUnprotectedCriticalLeavesNoTrace(t *testing.T) {
	// The §IV-B bug: protect=false omits the GOMP_critical_* calls.
	tr := parlot.NewTracer(parlot.MainImage)
	r := NewRegion(6, tr)
	ran := false
	r.Parallel(1, func(th *Thread) {
		th.Critical("champ", false, func() { ran = true })
	})
	if !ran {
		t.Fatal("body skipped")
	}
	set := tr.Collect()
	for _, n := range set.Traces[trace.TID(6, 0)].Names(set.Registry) {
		if n == "GOMP_critical_start" || n == "GOMP_critical_end" {
			t.Errorf("unprotected critical traced %s", n)
		}
	}
}

func TestDistinctCriticalNamesAreIndependent(t *testing.T) {
	r := NewRegion(0, nil)
	a := r.criticalMu("a")
	b := r.criticalMu("b")
	if a == b {
		t.Error("different names share a mutex")
	}
	if a != r.criticalMu("a") {
		t.Error("same name returned different mutexes")
	}
}

func TestNestedRegionsSeparateProcesses(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := NewRegion(p, tr)
			r.Parallel(2, func(th *Thread) { th.Num() })
		}(p)
	}
	wg.Wait()
	set := tr.Collect()
	if len(set.Traces) != 6 {
		t.Fatalf("traces = %d, want 6 (3 procs x 2 threads)", len(set.Traces))
	}
}

func TestSequentialParallelRegions(t *testing.T) {
	// LULESH-style kernels: many short-lived parallel regions in sequence
	// reuse the region's tracer threads and critical mutexes.
	tr := parlot.NewTracer(parlot.MainImage)
	r := NewRegion(0, tr)
	total := 0
	var mu sync.Mutex
	for k := 0; k < 10; k++ {
		r.Parallel(3, func(th *Thread) {
			th.Critical("acc", true, func() {
				mu.Lock()
				total++
				mu.Unlock()
			})
		})
	}
	if total != 30 {
		t.Fatalf("total = %d", total)
	}
	set := tr.Collect()
	if len(set.Traces) != 3 {
		t.Fatalf("traces = %d, want 3 reused threads", len(set.Traces))
	}
	// The master's trace contains 10 region start/end pairs.
	names := set.Traces[trace.TID(0, 0)].Names(set.Registry)
	starts := 0
	for _, n := range names {
		if n == "GOMP_parallel_start" {
			starts++
		}
	}
	if starts != 10 {
		t.Errorf("region starts = %d", starts)
	}
}
