package progress

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/nlr"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func sum(table *nlr.Table, tokens ...string) []nlr.Element {
	return nlr.Summarize(tokens, 10, table)
}

func TestScoreIdentical(t *testing.T) {
	tbl := nlr.NewTable()
	a := sum(tbl, "init", "x", "y", "x", "y", "x", "y", "fin")
	if got := Score(a, a); got != 1 {
		t.Errorf("identical score = %f", got)
	}
}

func TestScoreEmptyFaulty(t *testing.T) {
	tbl := nlr.NewTable()
	a := sum(tbl, "init", "work", "fin")
	if got := Score(a, nil); got != 0 {
		t.Errorf("empty faulty score = %f", got)
	}
	if got := Score(nil, a); got != 1 {
		t.Errorf("empty normal score = %f", got)
	}
}

func TestScorePartialLoop(t *testing.T) {
	// Normal: loop 16 times; faulty: same loop 7 times, then truncated.
	tbl := nlr.NewTable()
	var normalToks, faultyToks []string
	normalToks = append(normalToks, "init")
	faultyToks = append(faultyToks, "init")
	for i := 0; i < 16; i++ {
		normalToks = append(normalToks, "recv", "send")
	}
	for i := 0; i < 7; i++ {
		faultyToks = append(faultyToks, "recv", "send")
	}
	normalToks = append(normalToks, "fin")
	n := sum(tbl, normalToks...)
	f := sum(tbl, faultyToks...)
	got := Score(n, f)
	// Matched: init (1) + 7 of 16 loop iterations (14 calls of 32).
	want := (1.0 + 14.0) / 34.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("score = %f, want %f", got, want)
	}
}

func TestScoreMonotoneInIterations(t *testing.T) {
	tbl := nlr.NewTable()
	var normalToks []string
	for i := 0; i < 16; i++ {
		normalToks = append(normalToks, "a", "b")
	}
	n := sum(tbl, normalToks...)
	prev := -1.0
	for iters := 3; iters <= 16; iters++ {
		var toks []string
		for i := 0; i < iters; i++ {
			toks = append(toks, "a", "b")
		}
		got := Score(n, sum(tbl, toks...))
		if got < prev {
			t.Errorf("score not monotone at %d iters: %f < %f", iters, got, prev)
		}
		prev = got
	}
	if prev != 1 {
		t.Errorf("full iterations should score 1, got %f", prev)
	}
}

// TestDlBugLeastProgressed is the headline scenario: on the §II-G dlBug
// cascade, where the JSM ranking and STAT both struggle, the progress
// measure puts the faulty rank 5 at the bottom — it stalled at iteration 7
// while every victim got further.
func TestDlBugLeastProgressed(t *testing.T) {
	reg := trace.NewRegistry()
	run := func(p *faults.Plan) *trace.TraceSet {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: p, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		return tr.Collect()
	}
	normal := run(nil)
	plan, _ := faults.Named("dlBug")
	faulty := run(plan)

	flt := filter.New(filter.MPIAll)
	a := Analyze(flt.ApplySet(normal), flt.ApplySet(faulty), 10)
	least := a.LeastProgressed(1)
	if len(least) != 1 || least[0] != trace.TID(5, 0) {
		t.Errorf("least progressed = %v, want [5.0]\n%s", least, a.Render())
	}
	// The unaffected... rather, the *last-stalled* ranks score higher.
	if a.Tasks[0].Score >= a.Tasks[len(a.Tasks)-1].Score {
		t.Error("no progress spread across the cascade")
	}
}

func TestAnalyzeHandlesMissingThreads(t *testing.T) {
	reg := trace.NewRegistry()
	normal := trace.NewTraceSetWith(reg)
	nt := normal.Get(trace.TID(0, 0))
	nt.Append(reg.ID("a"), trace.Enter)
	faulty := trace.NewTraceSetWith(reg) // thread never spawned
	a := Analyze(normal, faulty, 10)
	if len(a.Tasks) != 1 || a.Tasks[0].Score != 0 {
		t.Errorf("missing thread analysis = %+v", a.Tasks)
	}
}

func TestRender(t *testing.T) {
	reg := trace.NewRegistry()
	s := trace.NewTraceSetWith(reg)
	s.Get(trace.TID(0, 0)).Append(reg.ID("x"), trace.Enter)
	a := Analyze(s, s, 10)
	out := a.Render()
	if !strings.Contains(out, "100.0%") || !strings.Contains(out, "0.0") == false && false {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "[##############################]") {
		t.Errorf("full progress bar missing:\n%s", out)
	}
}

// Property: score is always in [0,1] and scoring a sequence against itself
// gives 1.
func TestQuickScoreBounds(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		tbl := nlr.NewTable()
		mk := func(raw []uint8) []nlr.Element {
			toks := make([]string, len(raw))
			for i, r := range raw {
				toks[i] = string(rune('a' + int(r)%3))
			}
			return nlr.Summarize(toks, 10, tbl)
		}
		a, b := mk(ra), mk(rb)
		s := Score(a, b)
		if s < 0 || s > 1 {
			return false
		}
		return Score(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
