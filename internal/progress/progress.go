// Package progress adds the PRODOMETER-style progress measure the paper
// names as future work (§VI: "Prodometer's methods are ripe for symbiotic
// incorporation into DiffTrace"; §II-A already calls NLR a "per-thread
// measure of progress").
//
// Progress is computed *relative to the normal execution*: the faulty
// trace's NLR is aligned against the normal trace's NLR, and each matched
// element contributes its expanded call weight — with partial credit for a
// loop that matched its body but completed fewer iterations (the unfinished
// loop of a stalled rank). The result is the fraction of the normal run's
// calls the faulty run got through, so the *least progressed* task — the
// rank that stalled first, usually the root cause of a deadlock cascade —
// ranks at the bottom even when every trace ends in the same blocked call
// and stack-granularity tools (STAT) cannot tell the victims apart.
package progress

import (
	"fmt"
	"sort"
	"strings"

	"difftrace/internal/diff"
	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

// weight is the number of underlying calls an NLR element expands to.
func weight(e nlr.Element) int {
	if e.Loop == nil {
		return 1
	}
	return e.Loop.Count * bodyWeight(e.Loop.Body)
}

func bodyWeight(body []nlr.Element) int {
	w := 0
	for _, e := range body {
		w += weight(e)
	}
	return w
}

// alignToken renders an element for alignment purposes: loop counts are
// dropped so "L1^16" and "L1^7" align as the same loop (and then earn
// partial credit), while distinct bodies stay distinct.
func alignToken(e nlr.Element) string {
	if e.Loop == nil {
		return e.Sym
	}
	return fmt.Sprintf("L%d", e.Loop.ID)
}

// Score computes the progress of a faulty NLR sequence relative to its
// normal counterpart, in [0, 1]. A perfectly matching trace scores 1; an
// empty faulty trace scores 0; a trace whose final loop ran 7 of 16
// iterations earns 7/16 of that loop's weight.
func Score(normal, faulty []nlr.Element) float64 {
	total := bodyWeight(normal)
	if total == 0 {
		return 1
	}
	na := make([]string, len(normal))
	for i, e := range normal {
		na[i] = alignToken(e)
	}
	fa := make([]string, len(faulty))
	for i, e := range faulty {
		fa[i] = alignToken(e)
	}
	edits := diff.Diff(na, fa)

	matched := 0.0
	ni, fi := 0, 0
	for _, ed := range edits {
		switch ed.Op {
		case diff.Equal:
			for range ed.Tokens {
				n, f := normal[ni], faulty[fi]
				switch {
				case n.Loop == nil:
					matched++
				case f.Loop != nil:
					// Same loop body; credit min(iterations) out of the
					// normal iteration count.
					credit := f.Loop.Count
					if n.Loop.Count < credit {
						credit = n.Loop.Count
					}
					matched += float64(credit * bodyWeight(n.Loop.Body))
				}
				ni++
				fi++
			}
		case diff.Delete:
			ni += len(ed.Tokens)
		case diff.Insert:
			fi += len(ed.Tokens)
		}
	}
	p := matched / float64(total)
	if p > 1 {
		p = 1
	}
	return p
}

// TaskProgress is one thread's relative progress.
type TaskProgress struct {
	ID    trace.ThreadID
	Score float64
}

// Analysis ranks every thread by progress, least progressed first.
type Analysis struct {
	Tasks []TaskProgress
}

// Analyze summarizes both executions (filtered trace sets, shared registry)
// with a shared loop table and scores every thread of the faulty run
// against its normal counterpart.
func Analyze(normal, faulty *trace.TraceSet, k int) *Analysis {
	table := nlr.NewTable()
	nSums := nlr.SummarizeSet(normal, k, table)
	fSums := nlr.SummarizeSet(faulty, k, table)

	ids := map[trace.ThreadID]bool{}
	for id := range nSums {
		ids[id] = true
	}
	for id := range fSums {
		ids[id] = true
	}
	a := &Analysis{}
	for id := range ids {
		a.Tasks = append(a.Tasks, TaskProgress{ID: id, Score: Score(nSums[id], fSums[id])})
	}
	sort.Slice(a.Tasks, func(i, j int) bool {
		if a.Tasks[i].Score != a.Tasks[j].Score {
			return a.Tasks[i].Score < a.Tasks[j].Score
		}
		return a.Tasks[i].ID.Less(a.Tasks[j].ID)
	})
	return a
}

// LeastProgressed returns up to k thread IDs with the lowest progress —
// PRODOMETER's "least progressed tasks", the deadlock-cascade root-cause
// candidates.
func (a *Analysis) LeastProgressed(k int) []trace.ThreadID {
	var out []trace.ThreadID
	for _, t := range a.Tasks {
		if len(out) >= k {
			break
		}
		out = append(out, t.ID)
	}
	return out
}

// Render prints the ranking like a progress table.
func (a *Analysis) Render() string {
	var b strings.Builder
	b.WriteString("relative progress (least progressed first)\n")
	for _, t := range a.Tasks {
		fmt.Fprintf(&b, "  %-6s %6.1f%%  %s\n", t.ID, t.Score*100, bar(t.Score))
	}
	return b.String()
}

func bar(p float64) string {
	n := int(p * 30)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", 30-n) + "]"
}
