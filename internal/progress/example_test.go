package progress_test

import (
	"fmt"

	"difftrace/internal/nlr"
	"difftrace/internal/progress"
)

// A faulty trace that completed 7 of the normal run's 16 loop iterations
// earns partial credit for the matched loop.
func ExampleScore() {
	table := nlr.NewTable()
	mk := func(iters int) []nlr.Element {
		toks := []string{"init"}
		for i := 0; i < iters; i++ {
			toks = append(toks, "recv", "send")
		}
		return nlr.Summarize(toks, 10, table)
	}
	normal := mk(16)
	faulty := mk(7)
	fmt.Printf("%.3f\n", progress.Score(normal, faulty))
	// Output:
	// 0.455
}
