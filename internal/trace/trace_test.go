package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	a := r.ID("MPI_Init")
	b := r.ID("MPI_Send")
	if a == b {
		t.Fatalf("distinct names got same ID %d", a)
	}
	if got := r.ID("MPI_Init"); got != a {
		t.Errorf("re-interning changed ID: %d != %d", got, a)
	}
	if r.Name(a) != "MPI_Init" || r.Name(b) != "MPI_Send" {
		t.Errorf("name round trip failed: %q %q", r.Name(a), r.Name(b))
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if id, ok := r.Lookup("MPI_Send"); !ok || id != b {
		t.Errorf("Lookup(MPI_Send) = %d,%v", id, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup of absent name reported ok")
	}
	if got := r.Name(99); got != "?99" {
		t.Errorf("Name(99) = %q, want ?99", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan map[string]uint32, 8)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for g := 0; g < 8; g++ {
		go func() {
			m := map[string]uint32{}
			for i := 0; i < 200; i++ {
				n := names[i%len(names)]
				m[n] = r.ID(n)
			}
			done <- m
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		m := <-done
		if !reflect.DeepEqual(m, first) {
			t.Fatalf("goroutines saw different IDs: %v vs %v", m, first)
		}
	}
	if r.Len() != len(names) {
		t.Errorf("Len = %d, want %d", r.Len(), len(names))
	}
}

func TestTraceCallsFiltersExits(t *testing.T) {
	tr := &Trace{ID: ThreadID{1, 0}}
	tr.Append(7, Enter)
	tr.Append(7, Exit)
	tr.Append(9, Enter)
	got := tr.Calls()
	if !reflect.DeepEqual(got, []uint32{7, 9}) {
		t.Errorf("Calls = %v, want [7 9]", got)
	}
}

func TestTraceClone(t *testing.T) {
	tr := &Trace{ID: ThreadID{2, 3}, Truncated: true}
	tr.Append(1, Enter)
	c := tr.Clone()
	c.Events[0].Func = 42
	c.Append(2, Enter)
	if tr.Events[0].Func != 1 || tr.Len() != 1 {
		t.Error("Clone shares storage with original")
	}
	if !c.Truncated || c.ID != tr.ID {
		t.Error("Clone lost metadata")
	}
}

func TestThreadIDOrderAndString(t *testing.T) {
	a := ThreadID{6, 4}
	if a.String() != "6.4" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Less(ThreadID{7, 0}) || !a.Less(ThreadID{6, 5}) || a.Less(ThreadID{6, 4}) {
		t.Error("Less ordering wrong")
	}
}

func TestTraceSetIDsSorted(t *testing.T) {
	s := NewTraceSet()
	for _, id := range []ThreadID{{3, 1}, {0, 2}, {3, 0}, {0, 0}} {
		s.Get(id)
	}
	ids := s.IDs()
	want := []ThreadID{{0, 0}, {0, 2}, {3, 0}, {3, 1}}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("IDs = %v, want %v", ids, want)
	}
	if got := s.Processes(); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("Processes = %v", got)
	}
}

func TestProcessTraceMergesThreads(t *testing.T) {
	s := NewTraceSet()
	f := s.Registry.ID("f")
	g := s.Registry.ID("g")
	s.Get(ThreadID{1, 0}).Append(f, Enter)
	t1 := s.Get(ThreadID{1, 1})
	t1.Append(g, Enter)
	t1.Truncated = true
	m := s.ProcessTrace(1)
	if m.Len() != 2 || !m.Truncated {
		t.Errorf("merged trace = %d events truncated=%v", m.Len(), m.Truncated)
	}
	if m.Events[0].Func != f || m.Events[1].Func != g {
		t.Error("merge order not by thread")
	}
}

func TestDistinctFuncsAndTotalEvents(t *testing.T) {
	s := NewTraceSet()
	a := s.Registry.ID("a")
	b := s.Registry.ID("b")
	s.Get(ThreadID{0, 0}).Append(a, Enter)
	s.Get(ThreadID{0, 0}).Append(a, Exit)
	s.Get(ThreadID{1, 0}).Append(b, Enter)
	if s.TotalEvents() != 3 {
		t.Errorf("TotalEvents = %d", s.TotalEvents())
	}
	if s.DistinctFuncs() != 2 {
		t.Errorf("DistinctFuncs = %d", s.DistinctFuncs())
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := NewTraceSet()
	tr := s.Get(ThreadID{5, 2})
	tr.Append(s.Registry.ID("main"), Enter)
	tr.Append(s.Registry.ID("MPI_Init"), Enter)
	tr.Append(s.Registry.ID("MPI_Init"), Exit)
	tr.Truncated = true
	s.Get(ThreadID{0, 0}).Append(s.Registry.ID("main"), Enter)

	var buf bytes.Buffer
	if err := WriteSetText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSetText(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 2 {
		t.Fatalf("read %d traces", len(got.Traces))
	}
	rt := got.Traces[ThreadID{5, 2}]
	if rt == nil || !rt.Truncated || rt.Len() != 3 {
		t.Fatalf("round-tripped trace wrong: %+v", rt)
	}
	if names := rt.Names(got.Registry); !reflect.DeepEqual(names, []string{"main", "MPI_Init"}) {
		t.Errorf("names = %v", names)
	}
	if rt.Events[2].Kind != Exit {
		t.Error("exit event lost")
	}
}

func TestReadSetTextErrors(t *testing.T) {
	cases := []string{
		"call main\n",                  // event before header
		"truncated\n",                  // truncated before header
		"# trace x.y\ncall main\n",     // bad id
		"# trace 0.0\njump main\n",     // bad kind
		"# trace 0.0\nmalformedline\n", // no space
	}
	for _, c := range cases {
		if _, err := ReadSetText(strings.NewReader(c), nil); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestParseThreadID(t *testing.T) {
	id, err := ParseThreadID("6.4")
	if err != nil || id != (ThreadID{6, 4}) {
		t.Errorf("ParseThreadID(6.4) = %v, %v", id, err)
	}
	id, err = ParseThreadID("3")
	if err != nil || id != (ThreadID{3, 0}) {
		t.Errorf("ParseThreadID(3) = %v, %v", id, err)
	}
	if _, err = ParseThreadID("a.b"); err == nil {
		t.Error("expected error for a.b")
	}
	if _, err = ParseThreadID("1.z"); err == nil {
		t.Error("expected error for 1.z")
	}
}

func TestDumpShape(t *testing.T) {
	s := NewTraceSet()
	for p := 0; p < 2; p++ {
		tr := s.Get(ThreadID{p, 0})
		tr.Append(s.Registry.ID("main"), Enter)
		tr.Append(s.Registry.ID("MPI_Init"), Enter)
	}
	out := s.Dump(0)
	if !strings.Contains(out, "T0.0") || !strings.Contains(out, "T1.0") {
		t.Errorf("Dump missing headers:\n%s", out)
	}
	if strings.Count(out, "MPI_Init") != 2 {
		t.Errorf("Dump missing rows:\n%s", out)
	}
	if lines := strings.Count(s.Dump(1), "\n"); lines != 2 {
		t.Errorf("Dump(1) rows = %d, want 2 (header+1)", lines)
	}
}

// Property: text serialization round-trips arbitrary traces.
func TestQuickTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nEvents uint8, trunc bool) bool {
		s := NewTraceSet()
		tr := s.Get(ThreadID{int(nEvents) % 5, int(nEvents) % 3})
		names := []string{"alpha", "beta_1", "MPI_Send", ".plt", "omp_fn.0"}
		for i := 0; i < int(nEvents); i++ {
			kind := Enter
			if rng.Intn(2) == 0 {
				kind = Exit
			}
			tr.Append(s.Registry.ID(names[rng.Intn(len(names))]), kind)
		}
		tr.Truncated = trunc
		var buf bytes.Buffer
		if err := WriteSetText(&buf, s); err != nil {
			return false
		}
		got, err := ReadSetText(&buf, nil)
		if err != nil {
			return false
		}
		g := got.Traces[tr.ID]
		if g == nil || g.Truncated != trunc || g.Len() != tr.Len() {
			return false
		}
		for i := range g.Events {
			if g.Events[i].Kind != tr.Events[i].Kind {
				return false
			}
			if got.Registry.Name(g.Events[i].Func) != s.Registry.Name(tr.Events[i].Func) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTIDConstructor(t *testing.T) {
	if TID(6, 4) != (ThreadID{Process: 6, Thread: 4}) {
		t.Error("TID wrong")
	}
}

func TestTraceNamesAndSetString(t *testing.T) {
	s := NewTraceSet()
	tr := s.Get(TID(0, 0))
	tr.Append(s.Registry.ID("f"), Enter)
	tr.Append(s.Registry.ID("g"), Enter)
	tr.Append(s.Registry.ID("g"), Exit)
	if got := tr.Names(s.Registry); !reflect.DeepEqual(got, []string{"f", "g"}) {
		t.Errorf("Names = %v", got)
	}
	if s.String() != "TraceSet{1 traces, 3 events}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestPutReplacesTrace(t *testing.T) {
	s := NewTraceSet()
	a := &Trace{ID: TID(1, 1)}
	a.Append(s.Registry.ID("x"), Enter)
	s.Put(a)
	b := &Trace{ID: TID(1, 1)}
	s.Put(b)
	if s.Traces[TID(1, 1)].Len() != 0 {
		t.Error("Put did not replace")
	}
}

func TestWriteTextErrorPropagates(t *testing.T) {
	s := NewTraceSet()
	tr := s.Get(TID(0, 0))
	tr.Append(s.Registry.ID("f"), Enter)
	tr.Truncated = true
	if err := WriteText(failingWriter{}, tr, s.Registry); err == nil {
		t.Error("write error swallowed")
	}
	if err := WriteSetText(failingWriter{}, s); err == nil {
		t.Error("set write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("sink closed")
