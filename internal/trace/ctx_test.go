package trace_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"difftrace/internal/resilience/chaos"
	"difftrace/internal/trace"
)

// bigTextSet serializes a multi-trace set large enough that a mid-stream
// cancellation point has plenty of input left to skip.
func bigTextSet(t *testing.T) []byte {
	t.Helper()
	set := trace.NewTraceSet()
	for p := 0; p < 8; p++ {
		tr := set.Get(trace.TID(p, 0))
		for i := 0; i < 2000; i++ {
			fn := set.Registry.ID("fn_" + string(rune('a'+i%20)))
			tr.Append(fn, trace.Enter)
			tr.Append(fn, trace.Exit)
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteSetText(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// cancelAfterReader cancels ctx once n bytes have been served, so the
// reader's own consumption drives the cancellation deterministically
// mid-stream (no goroutines, no clocks).
type cancelAfterReader struct {
	r      io.Reader
	n      int
	served int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.served += n
	if c.served >= c.n && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

// goroutineSnapshot polls until the goroutine count returns to at most the
// baseline (the stdlib analog of a goleak check: readers spawn nothing, so
// any persistent growth is a leak).
func goroutineSnapshot(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancelled ingest: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadSetTextContextCancelMidIngest: a clean stream cancelled
// mid-ingest returns the ctx error in both modes, leaves no quarantine
// records behind for the unread remainder, keeps the partial accounting
// invariant, and leaks no goroutines.
func TestReadSetTextContextCancelMidIngest(t *testing.T) {
	data := bigTextSet(t)
	for _, mode := range []trace.ReadMode{trace.Strict, trace.Lenient} {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		car := &cancelAfterReader{r: bytes.NewReader(data), n: len(data) / 2, cancel: cancel}
		set, rep, err := trace.ReadSetTextContext(ctx, car, nil, trace.ReadOptions{Mode: mode})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode=%s: err = %v, want context.Canceled", mode, err)
		}
		if rep == nil || set == nil {
			t.Fatalf("mode=%s: cancelled read dropped the partial set/report", mode)
		}
		if rep.Quarantined() != 0 {
			t.Errorf("mode=%s: cancellation invented %d quarantine records", mode, rep.Quarantined())
		}
		if got, want := set.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
			t.Errorf("mode=%s: partial accounting broken: set has %d events, report accounts %d", mode, got, want)
		}
		if set.TotalEvents() >= 8*4000 {
			t.Errorf("mode=%s: cancellation did not cut the ingest short (%d events)", mode, set.TotalEvents())
		}
		goroutineSnapshot(t, baseline)
	}
}

// TestReadSetTextContextCancelUnderChaos: every text chaos operator's
// corrupted output, cancelled mid-ingest, still returns the ctx error (not
// a salvage verdict) without leaking goroutines.
func TestReadSetTextContextCancelUnderChaos(t *testing.T) {
	data := bigTextSet(t)
	rng := rand.New(rand.NewSource(42))
	for _, op := range chaos.Text() {
		corrupted := op.Apply(data, rng)
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		car := &cancelAfterReader{r: bytes.NewReader(corrupted), n: len(corrupted) / 2, cancel: cancel}
		_, rep, err := trace.ReadSetTextContext(ctx, car, nil, trace.ReadOptions{Mode: trace.Lenient})
		cancel()
		if err == nil {
			// Legal only if the stream was effectively consumed before the
			// cancellation landed (an operator that shrank the input).
			if car.served < car.n {
				t.Errorf("%s: lenient read swallowed the cancellation", op.Name)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", op.Name, err)
		}
		if rep == nil {
			t.Errorf("%s: cancelled read dropped the partial report", op.Name)
		}
		goroutineSnapshot(t, baseline)
	}
}

// TestReadSetTextContextDeadline: an already-expired deadline aborts before
// any event is ingested.
func TestReadSetTextContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	set, _, err := trace.ReadSetTextContext(ctx, bytes.NewReader(bigTextSet(t)), nil, trace.ReadOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if set.TotalEvents() != 0 {
		t.Fatalf("expired deadline still ingested %d events", set.TotalEvents())
	}
}

// TestReadSetTextContextNilCtx: a nil ctx reads identically to the
// ctx-free entry point.
func TestReadSetTextContextNilCtx(t *testing.T) {
	data := bigTextSet(t)
	a, _, err := trace.ReadSetTextContext(nil, bytes.NewReader(data), nil, trace.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ReadSetText(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEvents() != b.TotalEvents() || len(a.Traces) != len(b.Traces) {
		t.Fatalf("nil-ctx read diverged: %d/%d events, %d/%d traces",
			a.TotalEvents(), b.TotalEvents(), len(a.Traces), len(b.Traces))
	}
}
