package trace

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"difftrace/internal/obs"
	"difftrace/internal/resilience"
)

// The text format mirrors ParLOT's decoded output: a header naming the
// thread, then one event per line ("call <name>" / "ret <name>"), and an
// optional trailing "truncated" marker for runs aborted mid-flight.
//
//	# trace 6.4
//	call main
//	call MPI_Init
//	ret MPI_Init
//	truncated
//
// TraceSets serialize as the concatenation of their traces; the registry is
// rebuilt from the names on read.
//
// Because DiffTrace's inputs come from faulty runs, the reader supports two
// modes (ReadOptions.Mode): Strict fails on the first malformed line with a
// descriptive error naming the line and trace; Lenient salvages what it can
// — damaged lines are dropped, garbage headers quarantine the events that
// follow them, corruption-affected traces are marked Truncated and their
// call stacks re-balanced — and every decision lands in the returned
// resilience.IngestReport.

// WriteText serializes t (resolving IDs through reg) to w.
func WriteText(w io.Writer, t *Trace, reg *Registry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %d.%d\n", t.ID.Process, t.ID.Thread); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%s %s\n", e.Kind, reg.Name(e.Func)); err != nil {
			return err
		}
	}
	if t.Truncated {
		if _, err := fmt.Fprintln(bw, "truncated"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSetText serializes every trace of s in deterministic ID order.
func WriteSetText(w io.Writer, s *TraceSet) error {
	for _, id := range s.IDs() {
		if err := WriteText(w, s.Traces[id], s.Registry); err != nil {
			return err
		}
	}
	return nil
}

// ReadMode selects how the readers treat damaged input.
type ReadMode int

const (
	// Strict fails the whole read on the first malformed line, oversized
	// token, or exceeded bound, with an error naming the line and trace.
	Strict ReadMode = iota
	// Lenient salvages: damaged lines are dropped, the affected trace is
	// marked Truncated, and every decision is recorded in the
	// IngestReport. A lenient read never fails on malformed content.
	Lenient
)

// String returns "strict" or "lenient".
func (m ReadMode) String() string {
	if m == Lenient {
		return "lenient"
	}
	return "strict"
}

// DefaultMaxLineBytes bounds a single input line (16 MiB — matching the
// scanner ceiling earlier versions used, but now enforced without buffering
// the whole line and reported per trace instead of killing the scan).
const DefaultMaxLineBytes = 1 << 24

// ReadOptions bounds and configures a trace-set read. The zero value is a
// strict read with the default line bound and no event/trace caps.
type ReadOptions struct {
	// Mode selects Strict (default) or Lenient salvage behaviour.
	Mode ReadMode
	// MaxLineBytes bounds one line; longer lines are discarded (lenient)
	// or fail the read naming the trace (strict). 0 means
	// DefaultMaxLineBytes.
	MaxLineBytes int
	// MaxEventsPerTrace caps events kept per trace; 0 means unlimited.
	MaxEventsPerTrace int
	// MaxTraces caps distinct traces; 0 means unlimited.
	MaxTraces int
	// Obs, when non-nil, collects ingestion counters — "ingest.bytes",
	// "ingest.lines", "ingest.events", "ingest.dropped" — and the
	// "ingest.trace_events" per-trace size histogram. Populated in Strict
	// mode too (a clean strict read still reports its bytes/lines/events),
	// so manifests account for ingestion on the non-lenient path as well.
	Obs *obs.Run
}

// countingReader counts bytes consumed from the underlying reader, so the
// "ingest.bytes" counter reflects actual input volume (including discarded
// and quarantined lines) without touching the parse hot path.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (o ReadOptions) withDefaults() ReadOptions {
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = DefaultMaxLineBytes
	}
	return o
}

// lineReader yields newline-terminated lines from a bufio.Reader without
// ever buffering more than max bytes of one line: an oversized line is
// consumed and discarded, reported via tooLong, so the scan can continue —
// unlike bufio.Scanner, whose ErrTooLong permanently kills the scan.
type lineReader struct {
	br  *bufio.Reader
	max int
}

// next returns the next line without its terminator. tooLong lines return
// (nil, true, nil). At end of input it returns io.EOF.
func (lr *lineReader) next() (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		frag, err := lr.br.ReadSlice('\n')
		switch err {
		case nil:
			if buf == nil {
				line = frag[:len(frag)-1]
			} else {
				buf = append(buf, frag...)
				line = buf[:len(buf)-1]
			}
			if len(line) > lr.max {
				return nil, true, nil
			}
			return line, false, nil
		case bufio.ErrBufferFull:
			buf = append(buf, frag...)
			if len(buf) > lr.max {
				return nil, true, lr.discardLine()
			}
		case io.EOF:
			if len(frag) > 0 || buf != nil {
				buf = append(buf, frag...)
				if len(buf) > lr.max {
					return nil, true, nil
				}
				return buf, false, nil
			}
			return nil, false, io.EOF
		default:
			return nil, false, err
		}
	}
}

// discardLine consumes input up to and including the next newline.
func (lr *lineReader) discardLine() error {
	for {
		_, err := lr.br.ReadSlice('\n')
		switch err {
		case nil, io.EOF:
			return nil
		case bufio.ErrBufferFull:
			continue
		default:
			return err
		}
	}
}

var headerPrefix = []byte("# trace ")

// ReadSetText parses the text format strictly into a TraceSet, interning
// names into reg (pass nil for a fresh registry). It fails on the first
// malformed line; use ReadSetTextOptions for bounded or lenient reads.
func ReadSetText(r io.Reader, reg *Registry) (*TraceSet, error) {
	s, _, err := ReadSetTextOptions(r, reg, ReadOptions{})
	return s, err
}

// ReadSetTextOptions parses the text format under opts. The IngestReport is
// always non-nil and accounts for every event: after a lenient read,
// set.TotalEvents() == report.EventsKept + report.EventsSynthesized, and a
// lenient read returns a nil error for any input (malformed content is
// salvaged, not fatal). Strict errors name the offending line and trace.
func ReadSetTextOptions(r io.Reader, reg *Registry, opts ReadOptions) (*TraceSet, *resilience.IngestReport, error) {
	return ReadSetTextContext(nil, r, reg, opts)
}

// ReadSetTextContext is ReadSetTextOptions with cooperative cancellation:
// the resumable-line loop checks ctx between lines, so a hung or oversized
// ingest can be aborted mid-stream. Cancellation is an abort, not
// corruption — even a Lenient read returns the ctx error (wrapped, so
// errors.Is sees context.Canceled/DeadlineExceeded) together with the
// partial set and report accumulated so far; no salvage records are
// invented for the unread remainder. A nil ctx is never cancelled.
func ReadSetTextContext(ctx context.Context, r io.Reader, reg *Registry, opts ReadOptions) (*TraceSet, *resilience.IngestReport, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	opts = opts.withDefaults()
	lenient := opts.Mode == Lenient
	rep := resilience.NewIngestReport(lenient)
	s := NewTraceSetWith(reg)
	var cr *countingReader
	if opts.Obs != nil {
		cr = &countingReader{r: r}
		r = cr
	}
	lr := &lineReader{br: bufio.NewReaderSize(r, 64<<10), max: opts.MaxLineBytes}

	var (
		cur    *Trace // trace receiving events; nil before a header
		quarID string // when non-empty, events are quarantined under this record ID
		lineno int
		// Lenient-mode bookkeeping: open-call stacks (for orphan rets and
		// auto-close) and traces carrying the explicit "truncated" marker.
		stacks map[ThreadID][]uint32
		marked map[ThreadID]bool
	)
	if lenient {
		stacks = map[ThreadID][]uint32{}
		marked = map[ThreadID]bool{}
	}
	// Ingestion accounting runs on every exit path — a strict read that
	// fails mid-file still reports the bytes/lines/events it got through.
	// The parsed-event total also feeds the job's live Progress (nil-off),
	// matching the streaming reader's decode accounting.
	defer func() {
		var n int64
		if cr != nil {
			n = cr.n
		}
		ObserveIngest(opts.Obs, n, int64(lineno), rep, s)
		obs.ProgressFrom(ctx).AddEvents(int64(s.TotalEvents()))
	}()
	// curName names the trace for error messages and salvage records.
	curName := func() string {
		if cur != nil {
			return cur.ID.String()
		}
		if quarID != "" {
			return quarID
		}
		return "?"
	}

	for {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return s, rep, fmt.Errorf("trace: line %d (trace %s): read cancelled: %w", lineno, curName(), cerr)
			}
		}
		raw, tooLong, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// I/O failure mid-read: the stream itself is truncated.
			if !lenient {
				return nil, rep, fmt.Errorf("trace: line %d (trace %s): %w", lineno+1, curName(), err)
			}
			rep.Drop(curName(), resilience.TruncatedStream, 1)
			if cur != nil {
				cur.Truncated = true
			}
			break
		}
		lineno++
		if tooLong {
			if !lenient {
				return nil, rep, fmt.Errorf("trace: line %d (trace %s): line exceeds %d bytes", lineno, curName(), opts.MaxLineBytes)
			}
			rep.Drop(curName(), resilience.LineTooLong, 1)
			if cur != nil {
				cur.Truncated = true
			}
			continue
		}
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			continue
		}
		switch {
		case bytes.HasPrefix(line, headerPrefix):
			id, perr := ParseThreadID(string(line[len(headerPrefix):]))
			if perr != nil {
				if !lenient {
					return nil, rep, fmt.Errorf("trace: line %d: %w", lineno, perr)
				}
				// Garbage header: everything until the next valid header
				// belongs to a trace we cannot name — quarantine it.
				cur, quarID = nil, "?"
				rep.Quarantine(quarID, resilience.BadHeader)
				continue
			}
			if opts.MaxTraces > 0 && s.Traces[id] == nil && len(s.Traces) >= opts.MaxTraces {
				if !lenient {
					return nil, rep, fmt.Errorf("trace: line %d: trace %s exceeds MaxTraces=%d", lineno, id, opts.MaxTraces)
				}
				cur, quarID = nil, id.String()
				rep.Quarantine(quarID, resilience.TraceCap)
				continue
			}
			cur, quarID = s.Get(id), ""
		case bytes.Equal(line, []byte("truncated")):
			switch {
			case cur != nil:
				cur.Truncated = true
				if lenient {
					marked[cur.ID] = true
				}
			case !lenient:
				return nil, rep, fmt.Errorf("trace: line %d: 'truncated' before any header", lineno)
			default:
				rep.Drop(curName(), resilience.OrphanEvent, 1)
			}
		default:
			kindB, name, cut := bytes.Cut(line, []byte(" "))
			var k EventKind
			known := cut
			if cut {
				switch {
				case bytes.Equal(kindB, []byte("call")):
					k = Enter
				case bytes.Equal(kindB, []byte("ret")):
					k = Exit
				default:
					known = false
				}
			}
			if !known {
				if !lenient {
					if cur == nil {
						return nil, rep, fmt.Errorf("trace: line %d: event before any header", lineno)
					}
					if cut {
						return nil, rep, fmt.Errorf("trace: line %d (trace %s): unknown event kind %q", lineno, curName(), kindB)
					}
					return nil, rep, fmt.Errorf("trace: line %d (trace %s): malformed event %q", lineno, curName(), line)
				}
				reason := resilience.MalformedEvent
				if cut {
					reason = resilience.UnknownKind
				}
				rep.Drop(curName(), reason, 1)
				if cur != nil {
					cur.Truncated = true
				}
				continue
			}
			if cur == nil {
				if quarID != "" {
					// Event owned by a quarantined (unnamed or over-cap)
					// trace: account it under that record.
					rep.Drop(quarID, resilience.BadHeader, 1)
					continue
				}
				if !lenient {
					return nil, rep, fmt.Errorf("trace: line %d: event before any header", lineno)
				}
				rep.Drop("?", resilience.OrphanEvent, 1)
				continue
			}
			if opts.MaxEventsPerTrace > 0 && cur.Len() >= opts.MaxEventsPerTrace {
				if !lenient {
					return nil, rep, fmt.Errorf("trace: line %d: trace %s exceeds MaxEventsPerTrace=%d", lineno, curName(), opts.MaxEventsPerTrace)
				}
				rep.Drop(curName(), resilience.EventCap, 1)
				cur.Truncated = true
				continue
			}
			fn := reg.ID(string(name))
			if lenient {
				if k == Enter {
					stacks[cur.ID] = append(stacks[cur.ID], fn)
				} else if st := stacks[cur.ID]; len(st) > 0 {
					stacks[cur.ID] = st[:len(st)-1]
				} else {
					// A ret with no open call misleads the
					// nesting-sensitive stages; strict mode preserves it
					// (historical format tolerance), lenient drops and
					// records it.
					rep.Drop(curName(), resilience.UnbalancedRet, 1)
					cur.Truncated = true
					continue
				}
			}
			cur.Append(fn, k)
			rep.Keep(1)
		}
	}

	if lenient {
		autoClose(s, stacks, marked, rep)
	}
	// Backfill per-trace kept counts for the salvage records.
	for _, rec := range rep.Records() {
		if id, err := ParseThreadID(rec.ID); err == nil {
			if t, ok := s.Traces[id]; ok {
				rec.Kept = t.Len() - rec.Synthesized
			}
		}
	}
	return s, rep, nil
}

// autoClose re-balances the call stacks of corruption-affected traces by
// appending synthetic ret events. Only traces that lost input to salvage
// (their record shows drops) are repaired: a clean unbalanced trace is
// legitimate data (an aborted run writes calls whose rets never happened),
// and traces carrying the explicit "truncated" marker are left exactly as
// recorded so that write→read round-trips are lossless.
func autoClose(s *TraceSet, stacks map[ThreadID][]uint32, marked map[ThreadID]bool, rep *resilience.IngestReport) {
	for _, id := range s.IDs() {
		t := s.Traces[id]
		rec := rep.Record(id.String())
		if rec == nil || rec.Dropped == 0 || marked[id] {
			continue
		}
		st := stacks[id]
		for i := len(st) - 1; i >= 0; i-- {
			t.Append(st[i], Exit)
		}
		rep.Synthesize(id.String(), resilience.AutoClosedCall, len(st))
		t.Truncated = true
	}
}

// ObserveIngest folds one read's totals into r's ingestion counters and the
// per-trace size histogram (nil-safe, shared by the text and ParLOT binary
// readers). It runs for strict reads too: a clean non-lenient read still
// reports its bytes, lines, and events, so manifests always carry
// ingestion totals.
func ObserveIngest(r *obs.Run, bytes, lines int64, rep *resilience.IngestReport, s *TraceSet) {
	if r == nil {
		return
	}
	sizes := make([]int64, 0, len(s.Traces))
	for _, id := range s.IDs() {
		sizes = append(sizes, int64(s.Traces[id].Len()))
	}
	ObserveIngestSizes(r, bytes, lines, rep, sizes)
}

// ObserveIngestSizes is ObserveIngest for readers that never materialize a
// TraceSet: sizes carries the per-trace kept-event counts in canonical ID
// order. Both entry points fold identical totals into the run, so a
// streaming ingest of the same bytes produces the same counters and
// histogram as a materializing one.
func ObserveIngestSizes(r *obs.Run, bytes, lines int64, rep *resilience.IngestReport, sizes []int64) {
	if r == nil {
		return
	}
	r.Counter("ingest.bytes").Add(bytes)
	r.Counter("ingest.lines").Add(lines)
	r.Counter("ingest.events").Add(int64(rep.EventsKept))
	r.Counter("ingest.dropped").Add(int64(rep.EventsDropped))
	r.Counter("ingest.synthesized").Add(int64(rep.EventsSynthesized))
	r.Counter("ingest.quarantined_traces").Add(int64(rep.Quarantined()))
	h := r.Histogram("ingest.trace_events")
	for _, n := range sizes {
		h.Observe(n)
	}
}

// ParseThreadID parses "p.t" (or bare "p", meaning thread 0).
func ParseThreadID(s string) (ThreadID, error) {
	ps, ts, ok := strings.Cut(strings.TrimSpace(s), ".")
	p, err := strconv.Atoi(ps)
	if err != nil {
		return ThreadID{}, fmt.Errorf("bad thread id %q: %w", s, err)
	}
	if !ok {
		return ThreadID{Process: p}, nil
	}
	t, err := strconv.Atoi(ts)
	if err != nil {
		return ThreadID{}, fmt.Errorf("bad thread id %q: %w", s, err)
	}
	return ThreadID{Process: p, Thread: t}, nil
}
