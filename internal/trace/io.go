package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format mirrors ParLOT's decoded output: a header naming the
// thread, then one event per line ("call <name>" / "ret <name>"), and an
// optional trailing "truncated" marker for runs aborted mid-flight.
//
//	# trace 6.4
//	call main
//	call MPI_Init
//	ret MPI_Init
//	truncated
//
// TraceSets serialize as the concatenation of their traces; the registry is
// rebuilt from the names on read.

// WriteText serializes t (resolving IDs through reg) to w.
func WriteText(w io.Writer, t *Trace, reg *Registry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %d.%d\n", t.ID.Process, t.ID.Thread); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%s %s\n", e.Kind, reg.Name(e.Func)); err != nil {
			return err
		}
	}
	if t.Truncated {
		if _, err := fmt.Fprintln(bw, "truncated"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSetText serializes every trace of s in deterministic ID order.
func WriteSetText(w io.Writer, s *TraceSet) error {
	for _, id := range s.IDs() {
		if err := WriteText(w, s.Traces[id], s.Registry); err != nil {
			return err
		}
	}
	return nil
}

// ReadSetText parses the text format back into a TraceSet, interning names
// into reg (pass nil for a fresh registry).
func ReadSetText(r io.Reader, reg *Registry) (*TraceSet, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	s := NewTraceSetWith(reg)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var cur *Trace
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# trace "):
			id, err := ParseThreadID(strings.TrimPrefix(line, "# trace "))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
			}
			cur = s.Get(id)
		case line == "truncated":
			if cur == nil {
				return nil, fmt.Errorf("trace: line %d: 'truncated' before any header", lineno)
			}
			cur.Truncated = true
		default:
			if cur == nil {
				return nil, fmt.Errorf("trace: line %d: event before any header", lineno)
			}
			kind, name, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("trace: line %d: malformed event %q", lineno, line)
			}
			var k EventKind
			switch kind {
			case "call":
				k = Enter
			case "ret":
				k = Exit
			default:
				return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineno, kind)
			}
			cur.Append(reg.ID(name), k)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseThreadID parses "p.t" (or bare "p", meaning thread 0).
func ParseThreadID(s string) (ThreadID, error) {
	ps, ts, ok := strings.Cut(strings.TrimSpace(s), ".")
	p, err := strconv.Atoi(ps)
	if err != nil {
		return ThreadID{}, fmt.Errorf("bad thread id %q: %w", s, err)
	}
	if !ok {
		return ThreadID{Process: p}, nil
	}
	t, err := strconv.Atoi(ts)
	if err != nil {
		return ThreadID{}, fmt.Errorf("bad thread id %q: %w", s, err)
	}
	return ThreadID{Process: p, Thread: t}, nil
}
