package trace

import (
	"strings"
	"testing"
)

// FuzzReadSetText: arbitrary text never panics the parser; valid output of
// the writer always parses.
func FuzzReadSetText(f *testing.F) {
	f.Add("# trace 0.0\ncall main\nret main\ntruncated\n")
	f.Add("call orphan\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ReadSetText(strings.NewReader(input), nil)
	})
}
