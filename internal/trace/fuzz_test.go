package trace

import (
	"strings"
	"testing"
)

// corruptSeeds is the shared corpus of damaged inputs: truncated mid-event,
// interleaved and duplicated headers, ret without call, non-UTF-8 names,
// garbage headers, orphan markers, binary junk.
var corruptSeeds = []string{
	"# trace 0.0\ncall main\nret main\ntruncated\n",
	"call orphan\n",
	"",
	"# trace 0.0\ncall main\nca",                           // truncated mid-event
	"# trace 0.0\ncall main\n# trace 0.0\ncall main\n",     // duplicated header
	"# trace 0.0\ncall a\n# trace 1.0\ncall b\n# trace 0.0\nret a\n", // interleaved
	"# trace 0.0\nret NoSuchCall\n",                        // ret without call
	"# trace 0.0\ncall \xff\xfe\x00name\n",                 // non-UTF-8 name
	"# trace 99999999999999999999.0\ncall main\n",          // overflowing header
	"# trace x.y\ncall ghost\n# trace 1.0\ncall ok\n",      // garbage header
	"truncated\ntruncated\n# trace 0.0\ntruncated\n",       // orphan markers
	"# trace 0.0\n\x00\x01\x02\x03\n",                      // binary junk line
	"# trace 0.0\njump main\nwalk back\n",                  // unknown kinds
	"# trace 0.0\ncall a\ncall b\ncall c\n",                // unclosed calls
	"# trace 0.0\r\ncall main\r\nret main\r\n",             // CRLF endings
}

// FuzzReadSetText: arbitrary text never panics the strict parser, and the
// lenient parser never returns an error and always accounts for every
// event: set.TotalEvents() == kept + synthesized.
func FuzzReadSetText(f *testing.F) {
	for _, s := range corruptSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ReadSetText(strings.NewReader(input), nil)

		set, rep, err := ReadSetTextOptions(strings.NewReader(input), nil, ReadOptions{Mode: Lenient})
		if err != nil {
			t.Fatalf("lenient mode returned error: %v", err)
		}
		if got, want := set.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
			t.Fatalf("accounting: TotalEvents %d != kept %d + synthesized %d",
				got, rep.EventsKept, rep.EventsSynthesized)
		}
		// Bounded lenient reads must also never error.
		set, rep, err = ReadSetTextOptions(strings.NewReader(input), nil, ReadOptions{
			Mode: Lenient, MaxLineBytes: 64, MaxEventsPerTrace: 8, MaxTraces: 4,
		})
		if err != nil {
			t.Fatalf("bounded lenient mode returned error: %v", err)
		}
		if got, want := set.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
			t.Fatalf("bounded accounting: %d != %d", got, want)
		}
	})
}

// FuzzLenientRereadStable: a lenient parse's textual re-serialization parses
// strictly — salvage output is always well-formed.
func FuzzLenientRereadStable(f *testing.F) {
	for _, s := range corruptSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		set, _, err := ReadSetTextOptions(strings.NewReader(input), nil, ReadOptions{Mode: Lenient})
		if err != nil {
			t.Fatalf("lenient: %v", err)
		}
		var b strings.Builder
		if err := WriteSetText(&b, set); err != nil {
			t.Fatalf("write: %v", err)
		}
		reread, err := ReadSetText(strings.NewReader(b.String()), nil)
		if err != nil {
			t.Fatalf("salvaged output failed strict re-parse: %v", err)
		}
		if reread.TotalEvents() != set.TotalEvents() {
			t.Fatalf("re-read events %d != %d", reread.TotalEvents(), set.TotalEvents())
		}
	})
}
