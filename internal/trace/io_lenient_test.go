package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"difftrace/internal/resilience"
)

// wellFormedSet builds a realistic set: a balanced trace, a second thread,
// and a deadlock-style Truncated trace whose tail rets never happened.
func wellFormedSet() *TraceSet {
	s := NewTraceSet()
	t0 := s.Get(TID(0, 0))
	for _, n := range []string{"main", "MPI_Init"} {
		t0.Append(s.Registry.ID(n), Enter)
	}
	t0.Append(s.Registry.ID("MPI_Init"), Exit)
	t0.Append(s.Registry.ID("main"), Exit)

	t1 := s.Get(TID(1, 2))
	t1.Append(s.Registry.ID("main"), Enter)
	t1.Append(s.Registry.ID("MPI_Recv"), Enter) // never returns: deadlock
	t1.Truncated = true
	return s
}

func sameSet(t *testing.T, want, got *TraceSet) {
	t.Helper()
	if len(got.Traces) != len(want.Traces) {
		t.Fatalf("trace count %d != %d", len(got.Traces), len(want.Traces))
	}
	for id, w := range want.Traces {
		g := got.Traces[id]
		if g == nil {
			t.Fatalf("trace %s missing", id)
		}
		if g.Truncated != w.Truncated || g.Len() != w.Len() {
			t.Fatalf("trace %s: truncated=%v len=%d, want truncated=%v len=%d",
				id, g.Truncated, g.Len(), w.Truncated, w.Len())
		}
		for i := range g.Events {
			if g.Events[i].Kind != w.Events[i].Kind ||
				got.Registry.Name(g.Events[i].Func) != want.Registry.Name(w.Events[i].Func) {
				t.Fatalf("trace %s event %d differs", id, i)
			}
		}
	}
}

// Round trip must be lossless in both modes for well-formed sets (including
// Truncated traces), and the lenient IngestReport must be clean.
func TestRoundTripLosslessBothModes(t *testing.T) {
	want := wellFormedSet()
	var buf bytes.Buffer
	if err := WriteSetText(&buf, want); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ReadMode{Strict, Lenient} {
		got, rep, err := ReadSetTextOptions(bytes.NewReader(buf.Bytes()), nil, ReadOptions{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sameSet(t, want, got)
		if !rep.Clean() {
			t.Errorf("%v: report not clean:\n%s", mode, rep.Render())
		}
		if rep.EventsKept != want.TotalEvents() || rep.EventsSynthesized != 0 {
			t.Errorf("%v: kept %d synth %d, want kept %d synth 0",
				mode, rep.EventsKept, rep.EventsSynthesized, want.TotalEvents())
		}
	}
}

// accounting asserts the invariant every lenient read must uphold.
func accounting(t *testing.T, s *TraceSet, rep *resilience.IngestReport) {
	t.Helper()
	if got, want := s.TotalEvents(), rep.EventsKept+rep.EventsSynthesized; got != want {
		t.Errorf("accounting: TotalEvents %d != kept %d + synthesized %d", got, rep.EventsKept, rep.EventsSynthesized)
	}
}

func TestLenientMalformedLineSalvage(t *testing.T) {
	in := "# trace 0.0\ncall main\n@@@garbage@@@\ncall MPI_Init\njump nowhere\nret MPI_Init\n"
	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Traces[TID(0, 0)]
	if tr == nil || !tr.Truncated {
		t.Fatal("corruption-affected trace must be marked Truncated")
	}
	// main, MPI_Init, ret MPI_Init kept; auto-close synthesizes ret main.
	if got := tr.Names(s.Registry); !reflect.DeepEqual(got, []string{"main", "MPI_Init"}) {
		t.Errorf("calls = %v", got)
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != Exit || s.Registry.Name(last.Func) != "main" {
		t.Errorf("auto-close missing: last event %v %s", last.Kind, s.Registry.Name(last.Func))
	}
	rec := rep.Record("0.0")
	if rec == nil || rec.Dropped != 2 || rec.Synthesized != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Reasons[resilience.MalformedEvent] != 1 || rec.Reasons[resilience.UnknownKind] != 1 {
		t.Errorf("reasons = %v", rec.Reasons)
	}
	accounting(t, s, rep)
}

func TestLenientGarbageHeaderQuarantine(t *testing.T) {
	in := "# trace 0.0\ncall main\n# trace x.y\ncall ghost\nret ghost\n# trace 1.0\ncall main\n"
	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Traces) != 2 {
		t.Fatalf("traces = %d, want 2 (ghost quarantined)", len(s.Traces))
	}
	if _, ok := s.Registry.Lookup("ghost"); ok {
		t.Error("quarantined events must not intern names")
	}
	rec := rep.Record("?")
	if rec == nil || !rec.Quarantined || rec.Dropped != 2 {
		t.Fatalf("quarantine record = %+v", rec)
	}
	if rec.Reasons[resilience.BadHeader] != 3 { // 1 header + 2 events
		t.Errorf("reasons = %v", rec.Reasons)
	}
	accounting(t, s, rep)
}

func TestLenientOrphansBeforeHeader(t *testing.T) {
	in := "call early\ntruncated\n# trace 0.0\ncall main\nret main\n"
	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if s.Traces[TID(0, 0)].Len() != 2 {
		t.Errorf("surviving trace len = %d", s.Traces[TID(0, 0)].Len())
	}
	if rep.Record("?").Reasons[resilience.OrphanEvent] != 2 {
		t.Errorf("orphan tally = %v", rep.Record("?").Reasons)
	}
	accounting(t, s, rep)
}

func TestLenientUnbalancedRetDropped(t *testing.T) {
	in := "# trace 0.0\nret NoSuchCall\ncall main\nret main\n"
	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Traces[TID(0, 0)]
	if tr.Len() != 2 {
		t.Fatalf("events = %d, want orphan ret dropped", tr.Len())
	}
	if rep.Record("0.0").Reasons[resilience.UnbalancedRet] != 1 {
		t.Errorf("reasons = %v", rep.Record("0.0").Reasons)
	}
	accounting(t, s, rep)
}

// A trace with the explicit "truncated" marker is never auto-closed, even
// when salvage dropped lines from it: its unbalanced stack is real data.
func TestLenientNoAutoCloseOnMarkedTruncated(t *testing.T) {
	in := "# trace 3.0\ncall main\ncall MPI_Recv\n@@@garbage@@@\ntruncated\n"
	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Traces[TID(3, 0)]
	if tr.Len() != 2 || !tr.Truncated {
		t.Fatalf("trace = %+v", tr)
	}
	if rep.EventsSynthesized != 0 {
		t.Errorf("synthesized %d events into an explicitly truncated trace", rep.EventsSynthesized)
	}
	accounting(t, s, rep)
}

func TestMaxLineBytes(t *testing.T) {
	long := strings.Repeat("x", 4096)
	in := "# trace 0.0\ncall main\ncall " + long + "\nret main\n"

	// Strict: descriptive error naming line and trace.
	_, _, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{MaxLineBytes: 256})
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "trace 0.0") {
		t.Fatalf("strict oversize error = %v", err)
	}

	// Lenient: line dropped, scan continues, trace marked Truncated.
	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient, MaxLineBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Traces[TID(0, 0)]
	if tr == nil || !tr.Truncated {
		t.Fatal("trace with oversized line must be marked Truncated")
	}
	if rep.Record("0.0").Reasons[resilience.LineTooLong] != 1 {
		t.Errorf("reasons = %v", rep.Record("0.0").Reasons)
	}
	// The ret after the oversized line must still be seen (scan continued):
	// call main kept, ret main balances it, oversized call dropped.
	if tr.Len() != 2 {
		t.Errorf("events = %d, want 2 (scan must survive the long line)", tr.Len())
	}
	accounting(t, s, rep)
}

// Oversized lines spanning many buffer fills never allocate the whole line.
func TestMaxLineBytesHugeLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("# trace 0.0\ncall ")
	for i := 0; i < 1<<20/16; i++ {
		b.WriteString("0123456789abcdef") // 1 MiB name
	}
	b.WriteString("\ncall main\n")
	s, rep, err := ReadSetTextOptions(strings.NewReader(b.String()), nil, ReadOptions{Mode: Lenient, MaxLineBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Traces[TID(0, 0)].Calls(); len(got) == 0 || s.Registry.Name(got[len(got)-1]) != "main" {
		t.Errorf("events after huge line lost: %v", got)
	}
	accounting(t, s, rep)
}

func TestMaxEventsPerTrace(t *testing.T) {
	var b strings.Builder
	b.WriteString("# trace 0.0\n")
	for i := 0; i < 10; i++ {
		b.WriteString("call f\nret f\n")
	}
	in := b.String()

	_, _, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{MaxEventsPerTrace: 5})
	if err == nil || !strings.Contains(err.Error(), "MaxEventsPerTrace") {
		t.Fatalf("strict cap error = %v", err)
	}

	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient, MaxEventsPerTrace: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Traces[TID(0, 0)]
	// 5 kept + possible auto-close synthetics; never more than 6.
	if tr.Len() < 5 || !tr.Truncated {
		t.Fatalf("capped trace = len %d truncated %v", tr.Len(), tr.Truncated)
	}
	if rep.Record("0.0").Reasons[resilience.EventCap] != 15 {
		t.Errorf("reasons = %v", rep.Record("0.0").Reasons)
	}
	accounting(t, s, rep)
}

func TestMaxTraces(t *testing.T) {
	in := "# trace 0.0\ncall a\n# trace 1.0\ncall b\n# trace 2.0\ncall c\nret c\n# trace 0.0\ncall d\n"

	_, _, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{MaxTraces: 2})
	if err == nil || !strings.Contains(err.Error(), "MaxTraces") {
		t.Fatalf("strict cap error = %v", err)
	}

	s, rep, err := ReadSetTextOptions(strings.NewReader(in), nil, ReadOptions{Mode: Lenient, MaxTraces: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(s.Traces))
	}
	// Re-opening an existing trace (0.0) after the cap still works.
	if got := s.Traces[TID(0, 0)].Len(); got != 2 {
		t.Errorf("trace 0.0 events = %d, want 2 (cap must not block existing traces)", got)
	}
	rec := rep.Record("2.0")
	if rec == nil || !rec.Quarantined || rec.Reasons[resilience.TraceCap] != 1 {
		t.Fatalf("trace-cap record = %+v", rec)
	}
	accounting(t, s, rep)
}

func TestStrictMatchesLegacyErrors(t *testing.T) {
	cases := []string{
		"call main\n",
		"truncated\n",
		"# trace x.y\ncall main\n",
		"# trace 0.0\njump main\n",
		"# trace 0.0\nmalformedline\n",
	}
	for _, c := range cases {
		if _, err := ReadSetText(strings.NewReader(c), nil); err == nil {
			t.Errorf("input %q: expected strict error", c)
		}
	}
}
