// Package trace defines the in-memory model of whole-program function-call
// traces as produced by the ParLOT substrate and consumed by every DiffTrace
// analysis stage.
//
// A Trace is the totally ordered sequence of events observed by one thread of
// one process. A TraceSet groups the per-thread traces of a single execution
// (one normal run, one faulty run). Function names are interned in a Registry
// so that traces store compact integer IDs, mirroring ParLOT's on-the-wire
// format.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EventKind distinguishes function entries from exits. ParLOT records both;
// the pre-processing stage usually filters exits out (Table I "Returns").
type EventKind uint8

const (
	// Enter marks a function-call event.
	Enter EventKind = iota
	// Exit marks a function-return event.
	Exit
)

// String returns "call" or "ret".
func (k EventKind) String() string {
	if k == Enter {
		return "call"
	}
	return "ret"
}

// Event is one record in a trace: the interned function ID plus whether the
// function was entered or exited.
type Event struct {
	Func uint32
	Kind EventKind
}

// ThreadID identifies a traced thread as <process>.<thread>, e.g. "6.4" in
// the paper's ranking tables. Thread 0 is the master (MPI process) thread.
type ThreadID struct {
	Process int
	Thread  int
}

// TID is shorthand for constructing a ThreadID.
func TID(process, thread int) ThreadID { return ThreadID{Process: process, Thread: thread} }

// String formats the ID the way the paper's tables do ("6.4").
func (t ThreadID) String() string { return fmt.Sprintf("%d.%d", t.Process, t.Thread) }

// Less orders thread IDs by process then thread.
func (t ThreadID) Less(o ThreadID) bool {
	if t.Process != o.Process {
		return t.Process < o.Process
	}
	return t.Thread < o.Thread
}

// Registry interns function names to dense uint32 IDs. It is safe for
// concurrent use: application threads register and look up names while
// tracing.
type Registry struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]uint32)}
}

// ID interns name and returns its dense ID.
func (r *Registry) ID(name string) uint32 {
	r.mu.RLock()
	id, ok := r.ids[name]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[name]; ok {
		return id
	}
	id = uint32(len(r.names))
	r.ids[name] = id
	r.names = append(r.names, name)
	return id
}

// Name returns the name for id, or "?<id>" if the ID was never interned.
func (r *Registry) Name(id uint32) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return fmt.Sprintf("?%d", id)
}

// Lookup returns the ID for name without interning it.
func (r *Registry) Lookup(name string) (uint32, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ids[name]
	return id, ok
}

// Len reports how many distinct names have been interned.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Names returns a copy of all interned names, indexed by ID.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Trace is the event sequence of one thread.
type Trace struct {
	ID        ThreadID
	Events    []Event
	Truncated bool // true when the run was aborted (e.g. deadlock) mid-trace
}

// Append records one event.
func (t *Trace) Append(fn uint32, kind EventKind) {
	t.Events = append(t.Events, Event{Func: fn, Kind: kind})
}

// Len reports the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Calls returns only the Enter events' function IDs, in order. Most of the
// pipeline operates on calls after the "Returns" filter.
func (t *Trace) Calls() []uint32 {
	out := make([]uint32, 0, len(t.Events))
	for _, e := range t.Events {
		if e.Kind == Enter {
			out = append(out, e.Func)
		}
	}
	return out
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	ev := make([]Event, len(t.Events))
	copy(ev, t.Events)
	return &Trace{ID: t.ID, Events: ev, Truncated: t.Truncated}
}

// Names resolves the Enter events to function names via reg.
func (t *Trace) Names(reg *Registry) []string {
	calls := t.Calls()
	out := make([]string, len(calls))
	for i, id := range calls {
		out[i] = reg.Name(id)
	}
	return out
}

// TraceSet is every per-thread trace of one execution plus the registry that
// interned its function names.
type TraceSet struct {
	Registry *Registry
	Traces   map[ThreadID]*Trace
}

// NewTraceSet returns an empty trace set with a fresh registry.
func NewTraceSet() *TraceSet {
	return &TraceSet{Registry: NewRegistry(), Traces: make(map[ThreadID]*Trace)}
}

// NewTraceSetWith returns an empty trace set sharing reg. DiffTrace requires
// the normal and faulty executions to share a registry so that function IDs
// and loop IDs are comparable.
func NewTraceSetWith(reg *Registry) *TraceSet {
	return &TraceSet{Registry: reg, Traces: make(map[ThreadID]*Trace)}
}

// Get returns the trace for id, creating it if needed.
func (s *TraceSet) Get(id ThreadID) *Trace {
	t, ok := s.Traces[id]
	if !ok {
		t = &Trace{ID: id}
		s.Traces[id] = t
	}
	return t
}

// Put installs (or replaces) a trace.
func (s *TraceSet) Put(t *Trace) { s.Traces[t.ID] = t }

// IDs returns all thread IDs in deterministic (process, thread) order.
func (s *TraceSet) IDs() []ThreadID {
	out := make([]ThreadID, 0, len(s.Traces))
	for id := range s.Traces {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Processes returns the distinct process numbers in ascending order.
func (s *TraceSet) Processes() []int {
	seen := map[int]bool{}
	for id := range s.Traces {
		seen[id.Process] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ProcessTrace concatenates all thread traces of process p (thread order) into
// one trace, used when diffing at process granularity.
func (s *TraceSet) ProcessTrace(p int) *Trace {
	merged := &Trace{ID: ThreadID{Process: p, Thread: -1}}
	for _, id := range s.IDs() {
		if id.Process != p {
			continue
		}
		t := s.Traces[id]
		merged.Events = append(merged.Events, t.Events...)
		merged.Truncated = merged.Truncated || t.Truncated
	}
	return merged
}

// TotalEvents sums event counts over all traces.
func (s *TraceSet) TotalEvents() int {
	n := 0
	for _, t := range s.Traces {
		n += len(t.Events)
	}
	return n
}

// DistinctFuncs reports how many distinct function IDs appear across all
// traces (the §V "410 distinct function calls" statistic).
func (s *TraceSet) DistinctFuncs() int {
	seen := map[uint32]bool{}
	for _, t := range s.Traces {
		for _, e := range t.Events {
			seen[e.Func] = true
		}
	}
	return len(seen)
}

// String renders a short summary like "TraceSet{32 traces, 421503 events}".
func (s *TraceSet) String() string {
	return fmt.Sprintf("TraceSet{%d traces, %d events}", len(s.Traces), s.TotalEvents())
}

// Dump renders the calls of every trace side by side (like Table II) up to
// maxRows rows; useful in examples and debugging.
func (s *TraceSet) Dump(maxRows int) string {
	ids := s.IDs()
	cols := make([][]string, len(ids))
	width := make([]int, len(ids))
	rows := 0
	for i, id := range ids {
		cols[i] = s.Traces[id].Names(s.Registry)
		if len(cols[i]) > rows {
			rows = len(cols[i])
		}
		width[i] = len("T" + id.String())
		for _, nm := range cols[i] {
			if len(nm) > width[i] {
				width[i] = len(nm)
			}
		}
	}
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	var b strings.Builder
	for i, id := range ids {
		fmt.Fprintf(&b, "%-*s  ", width[i], "T"+id.String())
	}
	b.WriteByte('\n')
	for r := 0; r < rows; r++ {
		for i := range ids {
			cell := ""
			if r < len(cols[i]) {
				cell = cols[i][r]
			}
			fmt.Fprintf(&b, "%-*s  ", width[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
