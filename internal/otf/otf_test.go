package otf

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordTicksClocks(t *testing.T) {
	l := NewLog(2)
	a := l.Record(0, "x")
	b := l.Record(0, "y")
	ea, _ := l.Event(a)
	eb, _ := l.Event(b)
	if ea.Lamport != 1 || eb.Lamport != 2 {
		t.Errorf("lamports: %d %d", ea.Lamport, eb.Lamport)
	}
	if !HappensBefore(ea, eb) {
		t.Error("program order not causal")
	}
}

func TestSendRecvJoin(t *testing.T) {
	l := NewLog(2)
	l.Record(1, "warmup") // advance rank 1 independently
	s := l.Record(0, "MPI_Send")
	r := l.Record(1, "MPI_Recv", s)
	es, _ := l.Event(s)
	er, _ := l.Event(r)
	if !HappensBefore(es, er) {
		t.Errorf("send %v should happen before recv %v", es.Vector, er.Vector)
	}
	if er.Lamport <= es.Lamport {
		t.Errorf("recv lamport %d not above send %d", er.Lamport, es.Lamport)
	}
}

func TestConcurrentEvents(t *testing.T) {
	l := NewLog(2)
	a := l.Record(0, "a")
	b := l.Record(1, "b")
	ea, _ := l.Event(a)
	eb, _ := l.Event(b)
	if !Concurrent(ea, eb) {
		t.Error("independent events on different ranks should be concurrent")
	}
	if Concurrent(ea, ea) {
		t.Error("an event is not concurrent with itself")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	l := NewLog(3)
	var contribs []int
	pre := make([]int, 3)
	for r := 0; r < 3; r++ {
		pre[r] = l.Record(r, "work")
		contribs = append(contribs, l.Record(r, "barrier.enter"))
	}
	exits := make([]int, 3)
	for r := 0; r < 3; r++ {
		exits[r] = l.Record(r, "barrier.exit", contribs...)
	}
	// Every pre-barrier event happens before every post-barrier event.
	for _, p := range pre {
		for _, x := range exits {
			ep, _ := l.Event(p)
			ex, _ := l.Event(x)
			if !HappensBefore(ep, ex) {
				t.Errorf("pre %v !-> post %v", ep, ex)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	l := NewLog(2)
	l.Record(0, "a")
	l.Record(1, "b")
	l.Record(0, "c")
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
	if l.CriticalPathLength() != 2 {
		t.Errorf("critical path = %d", l.CriticalPathLength())
	}
}

func TestEventBounds(t *testing.T) {
	l := NewLog(1)
	if _, ok := l.Event(0); ok {
		t.Error("empty log returned an event")
	}
	l.Record(0, "x")
	if _, ok := l.Event(-1); ok {
		t.Error("negative ID accepted")
	}
}

func TestOTFRoundTrip(t *testing.T) {
	l := NewLog(3)
	s := l.Record(0, "MPI_Send")
	l.Record(1, "MPI_Recv", s)
	l.Record(2, "compute")
	var buf bytes.Buffer
	if err := l.WriteOTF(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOTF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Events()
	have := got.Events()
	if len(have) != len(want) {
		t.Fatalf("events: %d vs %d", len(have), len(want))
	}
	for i := range want {
		if want[i].Name != have[i].Name || want[i].Lamport != have[i].Lamport ||
			want[i].Rank != have[i].Rank {
			t.Errorf("event %d mismatch: %+v vs %+v", i, want[i], have[i])
		}
		for k := range want[i].Vector {
			if want[i].Vector[k] != have[i].Vector[k] {
				t.Errorf("event %d vector mismatch", i)
			}
		}
	}
}

func TestReadOTFErrors(t *testing.T) {
	bad := []string{
		"",
		"garbage\n",
		"OTF2 ranks=2 events=1\nE x rank=0 peer=-1 lamport=1 vec=1,0 n\n",
		"OTF2 ranks=2 events=1\nE 0 rank=0 peer=-1 lamport=1 vec=1 n\n",   // arity
		"OTF2 ranks=2 events=1\nE 0 rank=9 peer=-1 lamport=1 vec=1,0 n\n", // rank range
		"OTF2 ranks=2 events=2\nE 0 rank=0 peer=-1 lamport=1 vec=1,0 n\n", // count mismatch
		"OTF2 ranks=2 events=1\nE 0 rank=0 peer=-1 lamport=1 vec=a,b n\n", // bad vec
		"OTF2 ranks=2 events=1\nE 0 rank=0 peer=-1 lamport=1 1,0 n\n",     // missing vec=
		"OTF2 ranks=2 events=1\nE 0 rank=0 lamport=1 vec=1,0 n\n",         // missing peer
	}
	for _, s := range bad {
		if _, err := ReadOTF(strings.NewReader(s)); err == nil {
			t.Errorf("input %q: expected error", s)
		}
	}
}

func TestTimeline(t *testing.T) {
	l := NewLog(2)
	s := l.Record(0, "send")
	l.Record(1, "recv", s)
	out := l.Timeline()
	if !strings.Contains(out, "rank 0: send@1") || !strings.Contains(out, "rank 1: recv@2") {
		t.Errorf("timeline:\n%s", out)
	}
}

// Property: HappensBefore is a strict partial order on any recorded log
// (irreflexive, antisymmetric, transitive).
func TestQuickPartialOrder(t *testing.T) {
	f := func(ops []uint8) bool {
		l := NewLog(3)
		var ids []int
		for _, op := range ops {
			rank := int(op) % 3
			if op%2 == 0 && len(ids) > 0 {
				ids = append(ids, l.Record(rank, "join", ids[int(op)%len(ids)]))
			} else {
				ids = append(ids, l.Record(rank, "local"))
			}
		}
		evs := l.Events()
		for i := range evs {
			if HappensBefore(evs[i], evs[i]) {
				return false
			}
			for j := range evs {
				if HappensBefore(evs[i], evs[j]) && HappensBefore(evs[j], evs[i]) {
					return false
				}
				for k := range evs {
					if HappensBefore(evs[i], evs[j]) && HappensBefore(evs[j], evs[k]) &&
						!HappensBefore(evs[i], evs[k]) {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRanksAndValidateViolations(t *testing.T) {
	l := NewLog(3)
	if l.Ranks() != 3 {
		t.Errorf("Ranks = %d", l.Ranks())
	}
	// Hand-build a log with a broken Lamport sequence via ReadOTF.
	in := "OTF2 ranks=1 events=2\n" +
		"E 0 rank=0 peer=-1 lamport=2 vec=2 a\n" +
		"E 1 rank=0 peer=-1 lamport=1 vec=1 b\n"
	bad, err := ReadOTF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing lamport accepted")
	}
	// Broken program order (lamport ok, vector regresses).
	in2 := "OTF2 ranks=2 events=2\n" +
		"E 0 rank=0 peer=-1 lamport=1 vec=1,5 a\n" +
		"E 1 rank=0 peer=-1 lamport=2 vec=2,0 b\n"
	bad2, err := ReadOTF(strings.NewReader(in2))
	if err != nil {
		t.Fatal(err)
	}
	if err := bad2.Validate(); err == nil {
		t.Error("vector regression accepted")
	}
}

func TestHappensBeforeArityMismatch(t *testing.T) {
	a := Event{Vector: []uint64{1}}
	b := Event{Vector: []uint64{1, 2}}
	if HappensBefore(a, b) {
		t.Error("arity mismatch should not be ordered")
	}
}

func TestWriteOTFErrorPropagates(t *testing.T) {
	l := NewLog(1)
	l.Record(0, "x")
	if err := l.WriteOTF(failWriter{}); err == nil {
		t.Error("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errSink }

var errSink = fmt.Errorf("sink closed")

func TestRankProgress(t *testing.T) {
	l := NewLog(3)
	// Rank 0 does 3 events, rank 1 does 1 joined to rank 0's last, rank 2
	// does nothing.
	var last int
	for i := 0; i < 3; i++ {
		last = l.Record(0, "work")
	}
	l.Record(1, "recv", last)
	p := l.RankProgress()
	if p[0] != 3.0/4 || p[1] != 1 || p[2] != 0 {
		t.Errorf("progress = %v", p)
	}
	rank, score := l.LeastProgressedRank()
	if rank != 2 || score != 0 {
		t.Errorf("least progressed = %d (%f)", rank, score)
	}
	empty := NewLog(2)
	if p := empty.RankProgress(); p[0] != 0 || p[1] != 0 {
		t.Errorf("empty progress = %v", p)
	}
}
