// Package otf implements the paper's future-work item 2: "converting
// ParLOT traces into Open Trace Format (OTF2) by logically timestamping
// trace entries to mine temporal properties of functions such as
// happened-before" (Lamport 1978, the paper's reference [46]).
//
// A Log attaches Lamport and vector clocks to the communication events of
// one execution. The MPI runtime (internal/mpi) drives it: every send,
// receive, and collective ticks the owning rank's clocks and joins them
// with the clocks of the events it causally depends on. The resulting
// event stream supports exact happens-before queries (vector-clock
// comparison) and serializes to an OTF2-flavored text format.
package otf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Event is one logically timestamped occurrence on a rank. Peer is the
// other endpoint for point-to-point communication events (-1 otherwise).
type Event struct {
	ID      int
	Rank    int
	Name    string
	Peer    int
	Lamport uint64
	Vector  []uint64
}

// Log collects timestamped events for a fixed number of ranks. Safe for
// concurrent use by the runtime's rank goroutines.
type Log struct {
	mu      sync.Mutex
	n       int
	lamport []uint64
	vector  [][]uint64
	events  []Event
}

// NewLog returns a Log for n ranks.
func NewLog(n int) *Log {
	l := &Log{n: n, lamport: make([]uint64, n), vector: make([][]uint64, n)}
	for i := range l.vector {
		l.vector[i] = make([]uint64, n)
	}
	return l
}

// Ranks returns the number of ranks.
func (l *Log) Ranks() int { return l.n }

// Record ticks rank's clocks, joins them with the clocks of the events
// named in joinWith (the causal predecessors: the matching send for a
// receive, every contribution for a collective exit), appends the event,
// and returns its ID for later joins.
func (l *Log) Record(rank int, name string, joinWith ...int) int {
	return l.RecordComm(rank, name, -1, joinWith...)
}

// RecordComm is Record for point-to-point communication events, tagging the
// peer rank so communication matrices can be mined from the log (Roth et
// al.'s automated pattern characterization, the paper's reference [41]).
func (l *Log) RecordComm(rank int, name string, peer int, joinWith ...int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Join: component-wise max with each predecessor's vector; Lamport max.
	for _, id := range joinWith {
		if id < 0 || id >= len(l.events) {
			continue
		}
		p := l.events[id]
		if p.Lamport > l.lamport[rank] {
			l.lamport[rank] = p.Lamport
		}
		for i, v := range p.Vector {
			if v > l.vector[rank][i] {
				l.vector[rank][i] = v
			}
		}
	}
	// Tick.
	l.lamport[rank]++
	l.vector[rank][rank]++

	ev := Event{
		ID:      len(l.events),
		Rank:    rank,
		Name:    name,
		Peer:    peer,
		Lamport: l.lamport[rank],
		Vector:  append([]uint64(nil), l.vector[rank]...),
	}
	l.events = append(l.events, ev)
	return ev.ID
}

// Events returns a copy of the event stream in record order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Event returns the event with the given ID.
func (l *Log) Event(id int) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < 0 || id >= len(l.events) {
		return Event{}, false
	}
	return l.events[id], true
}

// HappensBefore reports a → b in the causal partial order (vector-clock
// dominance; strict).
func HappensBefore(a, b Event) bool {
	if len(a.Vector) != len(b.Vector) {
		return false
	}
	strictly := false
	for i := range a.Vector {
		if a.Vector[i] > b.Vector[i] {
			return false
		}
		if a.Vector[i] < b.Vector[i] {
			strictly = true
		}
	}
	return strictly
}

// Concurrent reports that neither a → b nor b → a.
func Concurrent(a, b Event) bool {
	return !HappensBefore(a, b) && !HappensBefore(b, a) && a.ID != b.ID
}

// Validate checks the log's internal consistency: Lamport clocks strictly
// increase along each rank, and every event's vector dominates its own
// prior events on that rank. Returns the first violation.
func (l *Log) Validate() error {
	last := make(map[int]Event)
	for _, e := range l.Events() {
		if p, ok := last[e.Rank]; ok {
			if e.Lamport <= p.Lamport {
				return fmt.Errorf("otf: rank %d lamport not increasing at event %d", e.Rank, e.ID)
			}
			if !HappensBefore(p, e) {
				return fmt.Errorf("otf: rank %d program order broken at event %d", e.Rank, e.ID)
			}
		}
		last[e.Rank] = e
	}
	return nil
}

// CriticalPathLength returns the maximum Lamport timestamp — the length of
// the execution's longest causal chain, a progress/temporal metric OTF
// consumers typically derive.
func (l *Log) CriticalPathLength() uint64 {
	max := uint64(0)
	for _, e := range l.Events() {
		if e.Lamport > max {
			max = e.Lamport
		}
	}
	return max
}

// RankProgress returns each rank's causal progress in [0, 1]: its maximum
// Lamport timestamp over the execution's critical-path length. This is the
// happens-before-based progress measure the paper plans to incorporate via
// Garg et al.'s lattice algorithms (§VI, references [31][32]): a rank far
// behind the causal frontier — a stalled or deadlocked task — scores low.
// Ranks with no events score 0.
func (l *Log) RankProgress() []float64 {
	out := make([]float64, l.n)
	maxLamport := make([]uint64, l.n)
	total := uint64(0)
	for _, e := range l.Events() {
		if e.Rank >= 0 && e.Rank < l.n && e.Lamport > maxLamport[e.Rank] {
			maxLamport[e.Rank] = e.Lamport
		}
		if e.Lamport > total {
			total = e.Lamport
		}
	}
	if total == 0 {
		return out
	}
	for i, m := range maxLamport {
		out[i] = float64(m) / float64(total)
	}
	return out
}

// LeastProgressedRank returns the rank with the lowest causal progress and
// its score.
func (l *Log) LeastProgressedRank() (int, float64) {
	p := l.RankProgress()
	best, bestScore := -1, 2.0
	for i, s := range p {
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	return best, bestScore
}

// ---- OTF2-flavored text serialization ------------------------------------

// WriteOTF serializes the log:
//
//	OTF2 ranks=4 events=42
//	E 0 rank=1 lamport=3 vec=1,3,0,0 MPI_Send
func (l *Log) WriteOTF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := l.Events()
	if _, err := fmt.Fprintf(bw, "OTF2 ranks=%d events=%d\n", l.n, len(events)); err != nil {
		return err
	}
	for _, e := range events {
		parts := make([]string, len(e.Vector))
		for i, v := range e.Vector {
			parts[i] = strconv.FormatUint(v, 10)
		}
		if _, err := fmt.Fprintf(bw, "E %d rank=%d peer=%d lamport=%d vec=%s %s\n",
			e.ID, e.Rank, e.Peer, e.Lamport, strings.Join(parts, ","), e.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOTF parses the text format back into a read-only Log.
func ReadOTF(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("otf: empty input")
	}
	var n, count int
	if _, err := fmt.Sscanf(sc.Text(), "OTF2 ranks=%d events=%d", &n, &count); err != nil {
		return nil, fmt.Errorf("otf: bad header %q: %w", sc.Text(), err)
	}
	l := NewLog(n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 7 || fields[0] != "E" {
			return nil, fmt.Errorf("otf: bad event line %q", line)
		}
		id, err1 := strconv.Atoi(fields[1])
		rank, err2 := parseKV(fields[2], "rank")
		peer, err4 := parseKV(fields[3], "peer")
		lam, err3 := parseKV(fields[4], "lamport")
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("otf: bad event line %q", line)
		}
		vecStr, ok := strings.CutPrefix(fields[5], "vec=")
		if !ok {
			return nil, fmt.Errorf("otf: bad vector in %q", line)
		}
		comps := strings.Split(vecStr, ",")
		if len(comps) != n {
			return nil, fmt.Errorf("otf: vector arity %d, want %d", len(comps), n)
		}
		vec := make([]uint64, n)
		for i, c := range comps {
			v, err := strconv.ParseUint(c, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("otf: bad vector component %q", c)
			}
			vec[i] = v
		}
		if rank < 0 || rank >= n {
			return nil, fmt.Errorf("otf: rank %d out of range", rank)
		}
		l.events = append(l.events, Event{
			ID: id, Rank: rank, Peer: peer, Name: fields[6],
			Lamport: uint64(lam), Vector: vec,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(l.events) != count {
		return nil, fmt.Errorf("otf: header says %d events, read %d", count, len(l.events))
	}
	return l, nil
}

func parseKV(s, key string) (int, error) {
	v, ok := strings.CutPrefix(s, key+"=")
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return strconv.Atoi(v)
}

// Timeline renders the events grouped by rank in Lamport order — a
// poor man's Vampir view for the examples.
func (l *Log) Timeline() string {
	events := l.Events()
	byRank := make(map[int][]Event)
	for _, e := range events {
		byRank[e.Rank] = append(byRank[e.Rank], e)
	}
	var b strings.Builder
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		fmt.Fprintf(&b, "rank %d:", r)
		for _, e := range byRank[r] {
			fmt.Fprintf(&b, " %s@%d", e.Name, e.Lamport)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
