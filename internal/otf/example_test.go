package otf_test

import (
	"fmt"

	"difftrace/internal/otf"
)

// Logical clocks order a send before its receive; unrelated events stay
// concurrent.
func ExampleHappensBefore() {
	log := otf.NewLog(3)
	send := log.Record(0, "MPI_Send")
	recv := log.Record(1, "MPI_Recv", send)
	other := log.Record(2, "compute")

	s, _ := log.Event(send)
	r, _ := log.Event(recv)
	o, _ := log.Event(other)
	fmt.Println(otf.HappensBefore(s, r))
	fmt.Println(otf.Concurrent(s, o))
	// Output:
	// true
	// true
}
