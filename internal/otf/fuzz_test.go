package otf

import (
	"strings"
	"testing"
)

// FuzzReadOTF: arbitrary text never panics the OTF reader.
func FuzzReadOTF(f *testing.F) {
	f.Add("OTF2 ranks=2 events=1\nE 0 rank=0 peer=-1 lamport=1 vec=1,0 n\n")
	f.Add("OTF2 ranks=0 events=0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ReadOTF(strings.NewReader(input))
	})
}
