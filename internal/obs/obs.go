// Package obs is DiffTrace's self-observability layer: hierarchical stage
// spans, a typed metrics registry (counters, gauges, log-scale histograms),
// per-call-site worker-pool utilization, ingestion totals, and degraded-stage
// accounting, all folded into one stable-JSON RunManifest (manifest.go).
//
// The paper's value claim is *efficiency* — Θ(K²N) NLR, incremental Godin
// lattices, parallel JSMs — and this package is how a run proves where its
// time, memory, and salvage losses actually go, the way Recorder and Pipit
// ship analysis views of their own tracing pipelines.
//
// Design constraints, in order:
//
//   - Nil is off. Every method is safe on a nil *Run (and on the nil
//     *Counter/*Gauge/*Histogram/*PoolSite handles a nil Run returns), and
//     the nil path does no locking, no allocation, and no time syscalls —
//     instrumented code never needs an "if obs != nil" guard, and a
//     disabled pipeline runs at its uninstrumented speed.
//   - Determinism-transparent. Instrumentation must not change pipeline
//     output, and the manifest itself must be schedule-independent: spans
//     aggregate by stage path (sorted at snapshot time), counters and
//     histograms are commutative sums, and anything that legitimately
//     varies between runs of the same input — wall times, worker counts,
//     utilization — is isolated in fields Scrub can zero, so golden tests
//     can assert byte-identical manifests across worker counts.
//   - Zero dependencies. Only the standard library, so every layer (nlr,
//     fca, jaccard, pool, trace, core, rank) can import it without cycles.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Run is the observability root for one pipeline execution (one DiffRun, one
// CLI invocation, one sweep). A nil *Run disables all instrumentation.
// All methods are safe for concurrent use.
type Run struct {
	tool  string
	start time.Time

	mu       sync.Mutex
	traceID  TraceID
	config   map[string]string
	spans    map[string]*spanStat
	pools    map[string]*PoolSite
	ingests  []Ingest
	degraded []DegradedEntry

	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
	hists    sync.Map // name -> *Histogram
}

// NewRun starts a run labelled with the producing tool ("difftrace", ...).
func NewRun(tool string) *Run {
	return &Run{tool: tool, start: time.Now()}
}

// SetConfig records one configuration knob (filter spec, linkage, worker
// budget, ...) for the manifest. Call it from exactly one place per key —
// typically the CLI — so concurrent pipeline stages never race to name the
// same knob; values would be last-write-wins and the manifest would lose
// its schedule independence.
func (r *Run) SetConfig(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.config == nil {
		r.config = make(map[string]string)
	}
	r.config[key] = value
	r.mu.Unlock()
}

// ---- spans ---------------------------------------------------------------

// spanStat aggregates every span observed at one stage path.
type spanStat struct {
	count int64
	wall  time.Duration
}

// Span is one in-flight timing of a stage. The zero Span (from a nil Run)
// is inert.
type Span struct {
	r     *Run
	path  string
	start time.Time
}

// StartSpan opens a span at the given stage path. Paths are "/"-separated
// ("summarize/threads/normal"); spans at the same path aggregate (count and
// total wall time), which is what keeps the manifest deterministic when a
// stage runs once per object under the pool.
func (r *Run) StartSpan(path string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, path: path, start: time.Now()}
}

// End closes the span, folding its wall time into the run.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	if s.r.spans == nil {
		s.r.spans = make(map[string]*spanStat)
	}
	st := s.r.spans[s.path]
	if st == nil {
		st = &spanStat{}
		s.r.spans[s.path] = st
	}
	st.count++
	st.wall += d
	s.r.mu.Unlock()
}

// ---- counters / gauges ---------------------------------------------------

// Counter is a monotonically increasing metric. Increments are commutative,
// so totals are schedule-independent whenever the set of Add calls is.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; safe on a nil handle.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use; nil when the
// run is nil (the handle stays safe to use).
func (r *Run) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Gauge is a last-value metric. Because Set is last-write-wins, a gauge
// must only be set from one goroutine (or with a value independent of
// scheduling) to keep the manifest deterministic; prefer counters inside
// parallel stages.
type Gauge struct{ v atomic.Int64 }

// Set stores the value; safe on a nil handle.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value reads the gauge; 0 on a nil handle.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge returns the named gauge, creating it on first use; nil when the run
// is nil.
func (r *Run) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return g.(*Gauge)
}

// ---- histograms ----------------------------------------------------------

// histBuckets is the fixed bucket count: bucket b holds values v with
// bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b); bucket 0 holds zeros (and
// clamped negatives). Log-scale with fixed boundaries, so two histograms of
// the same observations are identical regardless of observation order.
const histBuckets = 65

// Histogram tallies value magnitudes into fixed log₂ buckets.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	sum    int64
	n      int64
}

// Observe folds one value in; safe on a nil handle.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	h.mu.Lock()
	h.counts[b]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use; nil when
// the run is nil.
func (r *Run) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// ---- pool utilization ----------------------------------------------------

// PoolSite accumulates worker-pool utilization for one pool.Do call site:
// how many parallel loops ran there, how many items they processed, and how
// much of the workers' allotted wall time was spent inside the loop body
// (busy) versus waiting (the difference to workers×wall).
type PoolSite struct {
	mu         sync.Mutex
	calls      int64
	items      int64
	maxWorkers int
	busy       time.Duration
	workerWall time.Duration
}

// Record folds one parallel loop in: it ran n items on up to workers
// goroutines, spending busy total time in the body over wall elapsed time.
// Safe on a nil handle.
func (p *PoolSite) Record(workers, n int, busy, wall time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.calls++
	p.items += int64(n)
	if workers > p.maxWorkers {
		p.maxWorkers = workers
	}
	p.busy += busy
	p.workerWall += time.Duration(workers) * wall
	p.mu.Unlock()
}

// Pool returns the accumulator for the named call site, creating it on
// first use; nil when the run is nil.
func (r *Run) Pool(site string) *PoolSite {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pools == nil {
		r.pools = make(map[string]*PoolSite)
	}
	p := r.pools[site]
	if p == nil {
		p = &PoolSite{}
		r.pools[site] = p
	}
	return p
}

// ---- ingestion and degradation -------------------------------------------

// Ingest is the folded-in salvage total of one input source (one
// resilience.IngestReport). obs deliberately does not import resilience:
// callers copy the totals over, keeping this package dependency-free.
type Ingest struct {
	Source            string `json:"source"`
	Lenient           bool   `json:"lenient"`
	EventsKept        int    `json:"events_kept"`
	EventsDropped     int    `json:"events_dropped"`
	EventsSynthesized int    `json:"events_synthesized"`
	TracesAffected    int    `json:"traces_affected"`
	Quarantined       int    `json:"quarantined"`
}

// AddIngest appends one source's salvage totals. Call in input order
// (normal before faulty) so the manifest stays deterministic.
func (r *Run) AddIngest(in Ingest) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ingests = append(r.ingests, in)
	r.mu.Unlock()
}

// DegradedEntry is one isolated stage failure a resilient run recovered
// from (a resilience.StageError, flattened).
type DegradedEntry struct {
	Stage  string `json:"stage"`
	Object string `json:"object,omitempty"`
	Err    string `json:"err"`
}

// AddDegraded appends one degraded-stage record. The pipeline emits these
// in canonical object order, so the manifest list is deterministic.
func (r *Run) AddDegraded(stage, object, err string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.degraded = append(r.degraded, DegradedEntry{Stage: stage, Object: object, Err: err})
	r.mu.Unlock()
}
