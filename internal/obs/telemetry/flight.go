package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// JobRecord is the flight recorder's summary of one completed job: enough
// to answer "why was last night's run slow" without the job's full
// manifest. Timings come from the job's Progress snapshot (obs owns the
// clock); the manifest digest is of the *scrubbed* artifact, so the record
// points at the deterministic output without duplicating it.
type JobRecord struct {
	Seq             int64   `json:"seq"`
	TraceID         string  `json:"trace_id"`
	JobID           string  `json:"job_id"`
	Outcome         string  `json:"outcome"` // "done" or "failed"
	Cached          bool    `json:"cached,omitempty"`
	Attempts        int     `json:"attempts"`
	Error           string  `json:"error,omitempty"`
	ManifestSHA256  string  `json:"manifest_sha256,omitempty"`
	Stage           string  `json:"stage,omitempty"`
	Events          int64   `json:"events,omitempty"`
	EventsPerSec    float64 `json:"events_per_sec,omitempty"`
	QueuedMs        int64   `json:"queued_ms"`
	RunMs           int64   `json:"run_ms"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes,omitempty"`
	Degraded        int     `json:"degraded,omitempty"`
	CompletedUnixMs int64   `json:"completed_unix_ms"`
}

// FlightRecorder keeps the last N completed-job records in a fixed ring:
// O(1) per job, bounded memory forever, readable at GET /debug/flight and
// dumped to disk on drain so a crash is diagnosable after the fact. Nil is
// off, like every obs surface.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []JobRecord
	next int
	n    int
	seq  int64
}

// DefaultFlightSize is the ring capacity when the daemon doesn't override.
const DefaultFlightSize = 64

// NewFlightRecorder builds a recorder holding the last n records; n < 1
// falls back to DefaultFlightSize.
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = DefaultFlightSize
	}
	return &FlightRecorder{ring: make([]JobRecord, n)}
}

// Record stamps the record with the next sequence number and the wall
// clock, then folds it into the ring (evicting the oldest when full).
func (f *FlightRecorder) Record(rec JobRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	rec.Seq = f.seq
	if rec.CompletedUnixMs == 0 {
		rec.CompletedUnixMs = time.Now().UnixMilli()
	}
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// Len reports how many records the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Snapshot returns the held records, newest first.
func (f *FlightRecorder) Snapshot() []JobRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]JobRecord, 0, f.n)
	for i := 1; i <= f.n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// flightDump is the on-disk / on-wire shape: capacity plus records newest
// first, versioned so a future layout change can migrate.
type flightDump struct {
	Version int         `json:"version"`
	Size    int         `json:"size"`
	Records []JobRecord `json:"records"`
}

// WriteJSON serializes the recorder (newest first) for /debug/flight and
// the drain-time dump. A nil recorder writes an empty document.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		_, err := io.WriteString(w, `{"version":1,"size":0,"records":[]}`+"\n")
		return err
	}
	d := flightDump{Version: 1, Size: f.capLocked(), Records: f.Snapshot()}
	if d.Records == nil {
		d.Records = []JobRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

func (f *FlightRecorder) capLocked() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// Restore loads a WriteJSON dump back into the ring (oldest first, so
// sequence order is preserved) and continues sequence numbers past the
// highest restored value. It is tolerant of a dump written with a
// different ring size: only the newest capacity-many records survive.
func (f *FlightRecorder) Restore(data []byte) error {
	if f == nil {
		return nil
	}
	var d flightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("flight restore: %w", err)
	}
	if d.Version != 1 {
		return fmt.Errorf("flight restore: unknown version %d", d.Version)
	}
	// Records are newest-first on disk; replay oldest-first.
	var maxSeq int64
	for i := len(d.Records) - 1; i >= 0; i-- {
		rec := d.Records[i]
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		f.mu.Lock()
		f.ring[f.next] = rec
		f.next = (f.next + 1) % len(f.ring)
		if f.n < len(f.ring) {
			f.n++
		}
		f.mu.Unlock()
	}
	f.mu.Lock()
	if maxSeq > f.seq {
		f.seq = maxSeq
	}
	f.mu.Unlock()
	return nil
}
