// Package telemetry is the operator-facing layer above obs: it renders a
// run's metrics registry in the Prometheus text exposition format, keeps a
// flight recorder of recently completed jobs, and ships a small exposition
// validator the e2e tests (and CI) use to prove /metrics emits well-formed
// scrape output.
//
// Everything here is read-side: telemetry never feeds back into the
// pipeline, and none of it is subject to Scrub — a scrape is wall-clock
// truth, not a determinism artifact. The package lives under internal/obs
// so the wallclock lint exemption covers its timestamps.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"difftrace/internal/obs"
)

// sample is one exposition line: name{labels} value.
type sample struct {
	suffix string // appended to the family name ("", "_total", "_bucket", ...)
	labels string // rendered `{k="v",...}` or ""
	value  string
}

// family is one metric family: HELP + TYPE + its samples.
type family struct {
	name    string
	typ     string // "counter" | "gauge" | "histogram"
	help    string
	samples []sample
}

// helpCatalog documents the metrics operators will actually dashboard.
// Families not listed fall back to a generic line naming the obs metric.
var helpCatalog = map[string]string{
	"service.admitted":           "Jobs accepted into the queue.",
	"service.rejected_full":      "Submissions rejected because the queue was full.",
	"service.rejected_draining":  "Submissions rejected during drain.",
	"service.cache_hits":         "Submissions answered from the artifact store.",
	"service.dedup_joined":       "Submissions joined onto an identical in-flight job.",
	"service.jobs_done":          "Jobs that completed successfully.",
	"service.jobs_failed":        "Jobs that exhausted retries or hit a fatal error.",
	"service.queue_len":          "Jobs currently queued (admission gauge).",
	"service.jobs_running":       "Jobs currently executing an attempt.",
	"service.heap_peak_bytes":    "Highest per-job sampled heap peak since boot.",
	"service.job_run_ms":         "Per-job run time of completed jobs, milliseconds.",
	"service.job_queued_ms":      "Per-job queue wait of completed jobs, milliseconds.",
	"service.job_events":         "Events decoded per completed job.",
	"ingest.bytes":               "Raw trace bytes read.",
	"ingest.lines":               "Trace lines read.",
	"ingest.events":              "Events decoded from traces.",
	"ingest.dropped":             "Events dropped by lenient salvage.",
	"ingest.synthesized":         "Events synthesized by lenient salvage.",
	"ingest.quarantined_traces":  "Traces quarantined during ingest.",
	"ingest.trace_events":        "Events per ingested trace.",
	"run.wall_seconds":           "Wall time since the run (or the daemon) started.",
	"pool.calls":                 "Parallel loops run at this pool call site.",
	"pool.items":                 "Items processed at this pool call site.",
	"pool.workers":               "Largest worker budget seen at this pool call site.",
	"pool.busy_seconds":          "Total time spent inside loop bodies at this site.",
	"pool.utilization":           "busy / (workers x wall) at this pool call site.",
	"stage.runs":                 "Spans recorded at this stage path.",
	"stage.wall_seconds":         "Total span wall time at this stage path.",
	"flight.records":             "Completed jobs currently held by the flight recorder.",
}

func helpFor(orig string) string {
	if h, ok := helpCatalog[orig]; ok {
		return h
	}
	return "DiffTrace metric " + orig + "."
}

// sanitize maps an obs dotted metric name onto the Prometheus grammar:
// every byte outside [a-zA-Z0-9_] becomes '_'. Callers prepend the
// "difftrace_" namespace, which also guarantees a legal leading character.
func sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel renders a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// WritePrometheus renders the manifest snapshot in the Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per family,
// stable sorted ordering, cumulative histogram buckets ending in +Inf.
// A nil manifest writes nothing — nil is off, here as everywhere in obs.
func WritePrometheus(w io.Writer, m *obs.Manifest) error {
	if m == nil {
		return nil
	}
	byName := map[string]*family{}
	add := func(name, typ, orig string, s sample) {
		f := byName[name]
		if f == nil {
			f = &family{name: name, typ: typ, help: helpFor(orig)}
			byName[name] = f
		}
		f.samples = append(f.samples, s)
	}

	add("difftrace_run_wall_seconds", "gauge", "run.wall_seconds",
		sample{value: formatFloat(float64(m.WallNs) / 1e9)})

	for name, v := range m.Counters {
		add("difftrace_"+sanitize(name)+"_total", "counter", name,
			sample{value: formatInt(v)})
	}
	for name, v := range m.Gauges {
		add("difftrace_"+sanitize(name), "gauge", name,
			sample{value: formatInt(v)})
	}
	for name, h := range m.Histograms {
		fam := "difftrace_" + sanitize(name)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			add(fam, "histogram", name, sample{
				suffix: "_bucket",
				labels: `{le="` + formatInt(b.Le) + `"}`,
				value:  formatInt(cum),
			})
		}
		add(fam, "histogram", name, sample{suffix: "_bucket", labels: `{le="+Inf"}`, value: formatInt(h.Count)})
		add(fam, "histogram", name, sample{suffix: "_sum", value: formatInt(h.Sum)})
		add(fam, "histogram", name, sample{suffix: "_count", value: formatInt(h.Count)})
	}
	for _, p := range m.Pool {
		lbl := `{site="` + escapeLabel(p.Site) + `"}`
		add("difftrace_pool_calls_total", "counter", "pool.calls", sample{labels: lbl, value: formatInt(p.Calls)})
		add("difftrace_pool_items_total", "counter", "pool.items", sample{labels: lbl, value: formatInt(p.Items)})
		add("difftrace_pool_workers", "gauge", "pool.workers", sample{labels: lbl, value: formatInt(int64(p.Workers))})
		add("difftrace_pool_busy_seconds", "gauge", "pool.busy_seconds", sample{labels: lbl, value: formatFloat(float64(p.BusyNs) / 1e9)})
		add("difftrace_pool_utilization", "gauge", "pool.utilization", sample{labels: lbl, value: formatFloat(p.Utilization)})
	}
	for _, st := range m.Stages {
		lbl := `{path="` + escapeLabel(st.Path) + `"}`
		add("difftrace_stage_runs_total", "counter", "stage.runs", sample{labels: lbl, value: formatInt(st.Count)})
		add("difftrace_stage_wall_seconds", "gauge", "stage.wall_seconds", sample{labels: lbl, value: formatFloat(float64(st.WallNs) / 1e9)})
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := byName[n]
		// Samples inside a family are already deterministic: histogram
		// buckets arrive in ascending-le order from the snapshot, and
		// labeled pool/stage series follow Manifest()'s sorted site/path
		// order — so a scrape is byte-stable without re-sorting (which
		// would corrupt le ordering: "+Inf" sorts lexically first).
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}
