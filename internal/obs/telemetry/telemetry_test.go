package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"difftrace/internal/obs"
)

// busyRun builds a run exercising every manifest section the exposition
// renders: counters, gauges, histograms, stages, pool-free but with ingest.
func busyRun() *obs.Run {
	r := obs.NewRun("test")
	r.Counter("service.admitted").Add(3)
	r.Counter("core.threads.objects").Add(41)
	r.Gauge("service.queue_len").Set(2)
	h := r.Histogram("service.job_run_ms")
	for _, v := range []int64{1, 1, 2, 5, 9, 120, 4000} {
		h.Observe(v)
	}
	sp := r.StartSpan("ingest")
	sp.End()
	return r
}

// TestWritePrometheusValidates round-trips the renderer through the
// validator: whatever /metrics serves must parse as clean exposition text.
func TestWritePrometheusValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, busyRun().Manifest()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE difftrace_service_admitted_total counter",
		"difftrace_service_admitted_total 3",
		"# TYPE difftrace_service_queue_len gauge",
		"# TYPE difftrace_service_job_run_ms histogram",
		`difftrace_service_job_run_ms_bucket{le="+Inf"} 7`,
		"difftrace_service_job_run_ms_count 7",
		"# TYPE difftrace_stage_runs_total counter",
		`difftrace_stage_runs_total{path="ingest"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("renderer output fails its own validator: %v\n%s", err, out)
	}
}

// TestWritePrometheusNil: nil manifest writes nothing (nil is off).
func TestWritePrometheusNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil manifest wrote %q", buf.String())
	}
	var run *obs.Run
	if err := WritePrometheus(&buf, run.Manifest()); err != nil {
		t.Fatal(err)
	}
}

// TestValidateTextRejects feeds the validator hand-broken documents; each
// must be refused for the stated reason.
func TestValidateTextRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"sample before help",
			"difftrace_x_total 1\n",
			"before its HELP/TYPE"},
		{"type without help",
			"# TYPE difftrace_x counter\ndifftrace_x 1\n",
			"without preceding HELP"},
		{"duplicate help",
			"# HELP difftrace_x a\n# HELP difftrace_x b\n",
			"duplicate HELP"},
		{"duplicate type",
			"# HELP difftrace_x a\n# TYPE difftrace_x counter\n# TYPE difftrace_x counter\n",
			"duplicate TYPE"},
		{"unknown type",
			"# HELP difftrace_x a\n# TYPE difftrace_x widget\n",
			"unknown TYPE"},
		{"duplicate series",
			"# HELP difftrace_x a\n# TYPE difftrace_x counter\ndifftrace_x 1\ndifftrace_x 2\n",
			"duplicate series"},
		{"bad value",
			"# HELP difftrace_x a\n# TYPE difftrace_x counter\ndifftrace_x one\n",
			"bad value"},
		{"bucket le out of order",
			"# HELP h a\n# TYPE h histogram\n" +
				`h_bucket{le="5"} 1` + "\n" + `h_bucket{le="2"} 2` + "\n" +
				`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
			"not ascending"},
		{"non-cumulative buckets",
			"# HELP h a\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
			"not cumulative"},
		{"missing inf bucket",
			"# HELP h a\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
			"want +Inf"},
		{"inf disagrees with count",
			"# HELP h a\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n",
			"!= count"},
		{"histogram without buckets",
			"# HELP h a\n# TYPE h histogram\nh_sum 1\nh_count 1\n",
			"no buckets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateText(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("validator accepted broken doc:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateTextAcceptsLabelsAndEscapes: well-formed labeled samples with
// exposition escapes pass.
func TestValidateTextAccepts(t *testing.T) {
	doc := "# HELP difftrace_pool_calls_total help text\n" +
		"# TYPE difftrace_pool_calls_total counter\n" +
		`difftrace_pool_calls_total{site="core.diff\"quoted\""} 12` + "\n" +
		"\n# free comment\n"
	if err := ValidateText(strings.NewReader(doc)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
}

// TestFlightRecorderRing: the ring keeps the last N, newest first, with
// monotone sequence numbers.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record(JobRecord{JobID: string(rune('a' + i)), Outcome: "done"})
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	snap := f.Snapshot()
	if len(snap) != 3 || snap[0].JobID != "e" || snap[2].JobID != "c" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[0].Seq != 5 || snap[2].Seq != 3 {
		t.Fatalf("sequence numbers wrong: %+v", snap)
	}
	if snap[0].CompletedUnixMs == 0 {
		t.Fatal("Record did not stamp CompletedUnixMs")
	}
}

// TestFlightRecorderDumpRestore: WriteJSON → Restore round-trips records,
// order, and the sequence counter, including across ring sizes.
func TestFlightRecorderDumpRestore(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Record(JobRecord{JobID: string(rune('a' + i)), TraceID: "t", Outcome: "done"})
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Version int         `json:"version"`
		Size    int         `json:"size"`
		Records []JobRecord `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Version != 1 || dump.Size != 4 || len(dump.Records) != 4 {
		t.Fatalf("dump shape: %+v", dump)
	}

	g := NewFlightRecorder(4)
	if err := g.Restore(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Snapshot(), f.Snapshot(); len(got) != len(want) || got[0] != want[0] || got[3] != want[3] {
		t.Fatalf("restore mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Sequence continues past the restored maximum.
	g.Record(JobRecord{JobID: "next"})
	if s := g.Snapshot()[0].Seq; s != 7 {
		t.Fatalf("post-restore seq = %d, want 7", s)
	}

	// Smaller ring keeps only the newest records.
	small := NewFlightRecorder(2)
	if err := small.Restore(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	snap := small.Snapshot()
	if len(snap) != 2 || snap[0].JobID != "f" || snap[1].JobID != "e" {
		t.Fatalf("small-ring restore kept %+v", snap)
	}

	if err := g.Restore([]byte("{")); err == nil {
		t.Fatal("Restore accepted torn JSON")
	}
}

// TestFlightRecorderNil: every method is safe on nil, and nil WriteJSON
// still emits a parseable empty document.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(JobRecord{JobID: "x"})
	if f.Len() != 0 || f.Snapshot() != nil || f.Restore(nil) != nil {
		t.Fatal("nil recorder misbehaved")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("nil WriteJSON not JSON: %v (%q)", err, buf.String())
	}
}
