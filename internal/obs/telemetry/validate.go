package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateText checks a Prometheus text exposition for the structural
// invariants a scraper relies on: every sample belongs to a family whose
// HELP and TYPE lines came first, no family or series appears twice, and
// histogram buckets are cumulative (monotone in ascending-le order, ending
// in an +Inf bucket that equals the family's _count). The e2e service test
// runs it against a live /metrics scrape; unit tests run it against
// WritePrometheus output and against hand-broken documents.
func ValidateText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type famState struct {
		typ     string
		help    bool
		buckets []bucket // histogram only
		count   *float64
		samples int
	}
	fams := map[string]*famState{}
	series := map[string]bool{}
	var order []string // family names in HELP order, for bucket checks at EOF
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := fieldAfter(line, "# HELP ")
			if name == "" {
				return fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			f := fams[name]
			if f != nil && f.help {
				return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if f == nil {
				f = &famState{}
				fams[name] = f
				order = append(order, name)
			}
			f.help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.Fields(line[len("# TYPE "):])
			if len(rest) != 2 {
				return fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			name, typ := rest[0], rest[1]
			f := fams[name]
			if f == nil || !f.help {
				return fmt.Errorf("line %d: TYPE for %s without preceding HELP", lineNo, name)
			}
			if f.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if f.samples > 0 {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := name
		suffix := ""
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f := fams[base]; f != nil && f.typ == "histogram" {
					famName, suffix = base, suf
				}
				break
			}
		}
		f := fams[famName]
		if f == nil || f.typ == "" {
			return fmt.Errorf("line %d: sample %s before its HELP/TYPE", lineNo, name)
		}
		key := name + canonicalLabels(labels)
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		series[key] = true
		f.samples++

		if f.typ == "histogram" {
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
				}
				leV := math.Inf(1)
				if le != "+Inf" {
					leV, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %w", lineNo, le, err)
					}
				}
				f.buckets = append(f.buckets, bucket{le: leV, count: value})
			case "_count":
				v := value
				f.count = &v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for _, name := range order {
		f := fams[name]
		if f.typ != "histogram" {
			continue
		}
		if len(f.buckets) == 0 {
			return fmt.Errorf("histogram %s has no buckets", name)
		}
		prevLe := math.Inf(-1)
		prevCount := -1.0
		for _, b := range f.buckets {
			if b.le <= prevLe {
				return fmt.Errorf("histogram %s: le values not ascending (%g after %g)", name, b.le, prevLe)
			}
			if b.count < prevCount {
				return fmt.Errorf("histogram %s: bucket counts not cumulative (%g after %g)", name, b.count, prevCount)
			}
			prevLe, prevCount = b.le, b.count
		}
		last := f.buckets[len(f.buckets)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s: last bucket is %g, want +Inf", name, last.le)
		}
		if f.count == nil {
			return fmt.Errorf("histogram %s has no _count sample", name)
		}
		if *f.count != last.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", name, last.count, *f.count)
		}
	}
	return nil
}

type bucket struct {
	le    float64
	count float64
}

// fieldAfter returns the first whitespace-delimited token after the prefix.
func fieldAfter(line, prefix string) string {
	rest := strings.Fields(line[len(prefix):])
	if len(rest) == 0 {
		return ""
	}
	return rest[0]
}

// parseSample splits `name{labels} value` (labels optional) into parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels, err = parseLabels(rest[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	// A timestamp may follow the value; only the value is validated.
	valStr := rest
	if fields := strings.Fields(rest); len(fields) > 0 {
		valStr = fields[0]
	}
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", valStr, err)
	}
	return name, labels, value, nil
}

// parseLabels parses `k="v",k2="v2"` with exposition-format escapes.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %s", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// canonicalLabels renders a label map in sorted order so series identity is
// independent of label order in the document.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
