package obs

import (
	"runtime"
	"sync/atomic"
	"time"
)

// HeapSampler tracks the peak live heap over an interval of work by
// polling runtime.ReadMemStats on a ticker. It exists for the streaming
// memory-ceiling proofs: the claim "this analysis never materializes the
// expanded traces" is only checkable as "HeapAlloc stayed under budget
// while it ran", and obs owns the clock that makes such sampling legal
// (wall time here never reaches a manifest — the sampler reports bytes).
//
// Sampling observes GC-visible live heap, so it undercounts transients
// shorter than the interval; callers bound that error by choosing the
// interval and by a final synchronous sample at Stop.
type HeapSampler struct {
	stop     chan struct{}
	done     chan struct{}
	peak     atomic.Uint64
	progress *Progress // optional mirror; nil is off
}

// StartHeapSampler begins sampling every interval until Stop. It takes an
// immediate first sample so even a panicking caller has a floor reading.
func StartHeapSampler(interval time.Duration) *HeapSampler {
	return StartHeapSamplerInto(interval, nil)
}

// StartHeapSamplerInto is StartHeapSampler with each new peak mirrored into
// the job's live Progress, so GET /v1/jobs/{id} can show peak heap while
// the job still runs. A nil progress degrades to plain sampling.
func StartHeapSamplerInto(interval time.Duration, p *Progress) *HeapSampler {
	s := &HeapSampler{stop: make(chan struct{}), done: make(chan struct{}), progress: p}
	s.sample()
	//lint:allow nakedgoroutine sampler must run outside the Workers budget to observe the pipeline's heap from the side; it is joined by Stop via s.done and bounded by the stop channel
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// sample folds one ReadMemStats reading into the running peak.
func (s *HeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := s.peak.Load()
		if ms.HeapAlloc <= cur || s.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			break
		}
	}
	s.progress.SetHeapPeak(s.peak.Load())
}

// Peak returns the highest HeapAlloc observed so far, in bytes.
func (s *HeapSampler) Peak() uint64 {
	if s == nil {
		return 0
	}
	return s.peak.Load()
}

// Stop halts sampling, takes one final synchronous sample, and returns the
// peak HeapAlloc observed, in bytes. Stop must be called exactly once.
func (s *HeapSampler) Stop() uint64 {
	if s == nil {
		return 0
	}
	close(s.stop)
	<-s.done
	s.sample()
	return s.peak.Load()
}
