package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Manifest is the serialized picture of one run: config knobs, per-stage
// wall times, the metrics registry, pool utilization per call site,
// ingestion salvage totals, and degraded stages. Its JSON encoding is
// stable — maps marshal with sorted keys, lists are emitted in
// deterministic order — so that two manifests of the same input differ only
// in the fields Scrub zeroes (timings, worker counts, host info).
type Manifest struct {
	Tool       string                       `json:"tool"`
	TraceID    string                       `json:"trace_id,omitempty"`
	Host       *Host                        `json:"host,omitempty"`
	WallNs     int64                        `json:"wall_ns"`
	Config     map[string]string            `json:"config,omitempty"`
	Stages     []StageTiming                `json:"stages,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Pool       []PoolStat                   `json:"pool,omitempty"`
	Ingest     []Ingest                     `json:"ingest,omitempty"`
	Degraded   []DegradedEntry              `json:"degraded,omitempty"`
}

// Host identifies the machine/runtime that produced the manifest.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// StageTiming is one stage path's span aggregate, sorted by path.
type StageTiming struct {
	Path   string `json:"path"`
	Count  int64  `json:"count"`
	WallNs int64  `json:"wall_ns"`
}

// PoolStat is one pool.Do call site's utilization, sorted by site. Calls
// and Items are schedule-independent; Workers and the time fields are not
// (Scrub zeroes them).
type PoolStat struct {
	Site         string  `json:"site"`
	Calls        int64   `json:"calls"`
	Items        int64   `json:"items"`
	Workers      int     `json:"workers"`
	BusyNs       int64   `json:"busy_ns"`
	WorkerWallNs int64   `json:"worker_wall_ns"`
	Utilization  float64 `json:"utilization"`
}

// HistogramSnapshot is a histogram's state: total count, sum, and the
// non-empty log₂ buckets in ascending order.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket counts observations v with v <= Le (and v greater than
// the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Manifest snapshots the run. Safe to call while instrumentation is still
// live, but the intended use is after the pipeline finishes.
func (r *Run) Manifest() *Manifest {
	if r == nil {
		return nil
	}
	m := &Manifest{
		Tool: r.tool,
		Host: &Host{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		WallNs: int64(time.Since(r.start)),
	}

	r.mu.Lock()
	m.TraceID = string(r.traceID)
	if len(r.config) > 0 {
		m.Config = make(map[string]string, len(r.config))
		for k, v := range r.config {
			m.Config[k] = v
		}
	}
	for path, st := range r.spans {
		m.Stages = append(m.Stages, StageTiming{Path: path, Count: st.count, WallNs: int64(st.wall)})
	}
	for site, p := range r.pools {
		p.mu.Lock()
		ps := PoolStat{
			Site: site, Calls: p.calls, Items: p.items, Workers: p.maxWorkers,
			BusyNs: int64(p.busy), WorkerWallNs: int64(p.workerWall),
		}
		p.mu.Unlock()
		if ps.WorkerWallNs > 0 {
			ps.Utilization = float64(ps.BusyNs) / float64(ps.WorkerWallNs)
		}
		m.Pool = append(m.Pool, ps)
	}
	m.Ingest = append([]Ingest(nil), r.ingests...)
	m.Degraded = append([]DegradedEntry(nil), r.degraded...)
	r.mu.Unlock()

	sort.Slice(m.Stages, func(i, j int) bool { return m.Stages[i].Path < m.Stages[j].Path })
	sort.Slice(m.Pool, func(i, j int) bool { return m.Pool[i].Site < m.Pool[j].Site })

	r.counters.Range(func(k, v any) bool {
		if m.Counters == nil {
			m.Counters = make(map[string]int64)
		}
		m.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		if m.Gauges == nil {
			m.Gauges = make(map[string]int64)
		}
		m.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		if m.Histograms == nil {
			m.Histograms = make(map[string]HistogramSnapshot)
		}
		m.Histograms[k.(string)] = v.(*Histogram).snapshot()
		return true
	})
	return m
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.n, Sum: h.sum}
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		le := int64(0)
		if b > 0 {
			le = 1<<uint(b) - 1
		}
		snap.Buckets = append(snap.Buckets, HistogramBucket{Le: le, Count: c})
	}
	return snap
}

// WriteJSON writes the manifest as indented, stable JSON. A nil manifest
// writes JSON null — nil is off, here as everywhere in obs.
func (m *Manifest) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "null\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Scrub zeroes every manifest field whose value legitimately varies between
// runs of the same input: wall times, pool busy/idle/utilization, worker
// counts (including "workers"-suffixed config knobs and gauges, and any
// "_ns"-suffixed metric), host info, and the request-scoped trace ID (which
// is random by design — a stored artifact is shared by every request that
// submits the same bytes, so it must not remember which request built it).
// What remains is a pure function of the input, so golden tests can assert
// byte-identical scrubbed manifests across worker counts and reruns.
func Scrub(m *Manifest) {
	if m == nil {
		return
	}
	m.WallNs = 0
	m.TraceID = ""
	m.Host = nil
	for i := range m.Stages {
		m.Stages[i].WallNs = 0
	}
	for i := range m.Pool {
		m.Pool[i].Workers = 0
		m.Pool[i].BusyNs = 0
		m.Pool[i].WorkerWallNs = 0
		m.Pool[i].Utilization = 0
	}
	scrubKey := func(k string) bool {
		return k == "workers" || strings.HasSuffix(k, ".workers") || strings.HasSuffix(k, "_ns")
	}
	for k := range m.Config {
		if scrubKey(k) {
			m.Config[k] = ""
		}
	}
	for k := range m.Gauges {
		if scrubKey(k) {
			m.Gauges[k] = 0
		}
	}
	for k := range m.Counters {
		if scrubKey(k) {
			m.Counters[k] = 0
		}
	}
}

// WriteSummary renders the human-readable metrics digest the CLI prints
// under -metrics: stage timings, pool utilization, headline counters, and
// ingestion/degradation totals.
func (r *Run) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	m := r.Manifest()
	fmt.Fprintf(w, "== %s run: %s ==\n", m.Tool, time.Duration(m.WallNs).Round(time.Microsecond))
	if len(m.Stages) > 0 {
		fmt.Fprintf(w, "stages (%d):\n", len(m.Stages))
		for _, st := range m.Stages {
			fmt.Fprintf(w, "  %-36s ×%-6d %s\n", st.Path, st.Count,
				time.Duration(st.WallNs).Round(time.Microsecond))
		}
	}
	if len(m.Pool) > 0 {
		fmt.Fprintln(w, "pool utilization:")
		for _, p := range m.Pool {
			fmt.Fprintf(w, "  %-24s calls %-4d items %-6d workers %-3d busy %-10s util %.0f%%\n",
				p.Site, p.Calls, p.Items, p.Workers,
				time.Duration(p.BusyNs).Round(time.Microsecond), p.Utilization*100)
		}
	}
	if hit, miss := m.Counters["nlr.intern.hit"], m.Counters["nlr.intern.miss"]; hit+miss > 0 {
		fmt.Fprintf(w, "nlr interning: %d hits / %d misses (%.1f%% hit)\n",
			hit, miss, 100*float64(hit)/float64(hit+miss))
	}
	if len(m.Counters) > 0 {
		keys := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "counters:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-36s %d\n", k, m.Counters[k])
		}
	}
	if len(m.Gauges) > 0 {
		keys := make([]string, 0, len(m.Gauges))
		for k := range m.Gauges {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "gauges:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-36s %d\n", k, m.Gauges[k])
		}
	}
	if len(m.Histograms) > 0 {
		keys := make([]string, 0, len(m.Histograms))
		for k := range m.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "histograms:")
		for _, k := range keys {
			h := m.Histograms[k]
			fmt.Fprintf(w, "  %-36s n=%-8d p50=%-10.1f p95=%-10.1f p99=%.1f\n",
				k, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	for _, in := range m.Ingest {
		fmt.Fprintf(w, "ingest %s: kept %d, dropped %d, synthesized %d (%d traces affected, %d quarantined)\n",
			in.Source, in.EventsKept, in.EventsDropped, in.EventsSynthesized,
			in.TracesAffected, in.Quarantined)
	}
	if len(m.Degraded) > 0 {
		fmt.Fprintf(w, "degraded stages: %d\n", len(m.Degraded))
	}
}
