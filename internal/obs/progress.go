package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Progress is live, schedule-varying visibility into one in-flight job: how
// many events the tokenizer has decoded, which stage is running, and the
// peak heap the sampler has seen. It is the one obs surface that is *meant*
// to be read while the pipeline runs (GET /v1/jobs/{id}), so every field is
// a single atomic — readers never block workers.
//
// Like the rest of obs, nil is off: a nil *Progress accepts every call for
// free, so instrumented code (core's tokenizer, pool's dispatch) needs no
// guards and a CLI run without a service pays nothing.
//
// Progress is pure telemetry. Nothing in it feeds back into the pipeline,
// and none of it reaches a scrubbed manifest, so the determinism battery is
// blind to it by construction.
type Progress struct {
	created   time.Time
	startedNs atomic.Int64 // wall nanos at MarkStarted; 0 = still queued
	events    atomic.Int64
	heapPeak  atomic.Uint64
	stage     atomic.Value // string
}

// NewProgress creates a progress tracker; the queued clock starts now.
func NewProgress() *Progress {
	return &Progress{created: time.Now()}
}

// MarkStarted records the moment the job left the queue and began running.
// Later calls win (a drain can revert a job to queued and re-run it), which
// keeps RunMs meaning "time in the current attempt span".
func (p *Progress) MarkStarted() {
	if p == nil {
		return
	}
	p.startedNs.Store(time.Now().UnixNano())
}

// AddEvents folds n decoded events in. Hot-path callers batch (the core
// tokenizer flushes every few thousand events) so this stays one atomic add
// per batch, not per event.
func (p *Progress) AddEvents(n int64) {
	if p == nil {
		return
	}
	p.events.Add(n)
}

// SetStage records the stage path currently executing. Last write wins;
// that is the point — it is a live cursor, not a metric.
func (p *Progress) SetStage(stage string) {
	if p == nil {
		return
	}
	p.stage.Store(stage)
}

// SetHeapPeak folds a heap sample in, keeping the maximum.
func (p *Progress) SetHeapPeak(bytes uint64) {
	if p == nil {
		return
	}
	for {
		cur := p.heapPeak.Load()
		if bytes <= cur || p.heapPeak.CompareAndSwap(cur, bytes) {
			return
		}
	}
}

// ProgressSnapshot is one consistent-enough read of a live job. Every field
// varies with scheduling and wall time; it must never be written into a
// scrubbed artifact.
type ProgressSnapshot struct {
	Stage         string  `json:"stage,omitempty"`
	Events        int64   `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	QueuedMs      int64   `json:"queued_ms"`
	RunMs         int64   `json:"run_ms"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes,omitempty"`
}

// Snapshot reads the current state. Safe on nil (zero snapshot) and safe to
// call concurrently with the job's own writes.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	var s ProgressSnapshot
	s.Events = p.events.Load()
	s.PeakHeapBytes = p.heapPeak.Load()
	if v, ok := p.stage.Load().(string); ok {
		s.Stage = v
	}
	now := time.Now()
	started := p.startedNs.Load()
	if started == 0 {
		s.QueuedMs = now.Sub(p.created).Milliseconds()
		return s
	}
	st := time.Unix(0, started)
	s.QueuedMs = st.Sub(p.created).Milliseconds()
	s.RunMs = now.Sub(st).Milliseconds()
	if secs := now.Sub(st).Seconds(); secs > 0 && s.Events > 0 {
		s.EventsPerSec = float64(s.Events) / secs
	}
	return s
}

// progressKey is the private context key for Progress.
type progressKey struct{}

// WithProgress returns a context carrying the progress tracker.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	return context.WithValue(ctx, progressKey{}, p)
}

// ProgressFrom extracts the tracker; nil (off) when absent. The lookup does
// not allocate, so callers may use it once per stage without guards.
func ProgressFrom(ctx context.Context) *Progress {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(progressKey{}).(*Progress)
	return p
}
