package obs

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values by
// linear interpolation inside the log₂ bucket that contains the target
// rank. Bucket b covers [2^(b-1), 2^b) (bucket 0 is exactly zero), so the
// estimate is exact for zeros, within a factor of two otherwise — the same
// fidelity the buckets themselves promise. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}

// Quantile is the snapshot-side estimator; it lets manifest consumers (the
// summary renderer, the Prometheus writer's operators) derive p50/p95/p99
// from the serialized buckets without the live histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for _, b := range s.Buckets {
		lo, hi := bucketBounds(b.Le)
		c := float64(b.Count)
		if cum+c >= target {
			frac := (target - cum) / c
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	// Rounding pushed the target past the last bucket: clamp to its top.
	_, hi := bucketBounds(s.Buckets[len(s.Buckets)-1].Le)
	return hi
}

// bucketBounds recovers the value range [lo, hi] a bucket with upper bound
// le covers. le is 2^b - 1 for b ≥ 1 and 0 for the zero bucket.
func bucketBounds(le int64) (lo, hi float64) {
	if le <= 0 {
		return 0, 0
	}
	// le = 2^b - 1 → previous bucket ended at 2^(b-1) - 1.
	return float64(le+1) / 2, float64(le)
}
