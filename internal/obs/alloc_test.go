//go:build !race

// The zero-alloc assertions are skipped under the race detector, whose
// instrumentation adds allocations that are not the code's own.

package obs

import (
	"errors"
	"testing"

	"difftrace/internal/obs/olog"
)

// assertZeroAllocs pins the nil-off contract's cost model: a disabled
// telemetry surface must not merely be cheap, it must be free — zero
// allocations on the hot path, so instrumented pipeline code needs no
// guards and no build tags.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, fn); avg != 0 {
		t.Errorf("%s: %.1f allocs/op on the nil path, want 0", name, avg)
	}
}

func TestNilRunZeroAllocs(t *testing.T) {
	var r *Run
	assertZeroAllocs(t, "Counter.Add", func() { r.Counter("t.counter").Add(1) })
	assertZeroAllocs(t, "Gauge.Set", func() { r.Gauge("t.gauge").Set(7) })
	assertZeroAllocs(t, "Histogram.Observe", func() { r.Histogram("t.hist").Observe(42) })
	assertZeroAllocs(t, "Span", func() {
		sp := r.StartSpan("t.stage")
		sp.End()
	})
	assertZeroAllocs(t, "SetConfig", func() { r.SetConfig("k", "v") })
	assertZeroAllocs(t, "SetTraceID", func() { r.SetTraceID("abc123") })
}

func TestNilProgressZeroAllocs(t *testing.T) {
	var p *Progress
	assertZeroAllocs(t, "AddEvents", func() { p.AddEvents(8192) })
	assertZeroAllocs(t, "SetStage", func() { p.SetStage("ingest") })
	assertZeroAllocs(t, "SetHeapPeak", func() { p.SetHeapPeak(1 << 20) })
	assertZeroAllocs(t, "MarkStarted", func() { p.MarkStarted() })
}

var errAlloc = errors.New("static")

func TestNilLoggerZeroAllocs(t *testing.T) {
	var l *olog.Logger
	assertZeroAllocs(t, "Info no fields", func() { l.Info("msg") })
	assertZeroAllocs(t, "Info with fields", func() {
		l.Info("msg", olog.Str("k", "v"), olog.Int("n", 3), olog.Err(errAlloc))
	})
	assertZeroAllocs(t, "With+Warn", func() {
		l.With(olog.Str("trace_id", "t")).Warn("msg", olog.Bool("b", true))
	})
	assertZeroAllocs(t, "Enabled", func() { _ = l.Enabled(olog.Debug) })
}

// TestDisabledLevelZeroAllocs: a real logger below threshold is as free as
// a nil one — level gating happens before any field is rendered.
func TestDisabledLevelZeroAllocs(t *testing.T) {
	l := olog.New(discard{}, olog.Error)
	assertZeroAllocs(t, "Info below min level", func() {
		l.Info("msg", olog.Str("k", "v"), olog.Int64("n", 9))
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
