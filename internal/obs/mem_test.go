package obs_test

import (
	"runtime"
	"testing"
	"time"

	"difftrace/internal/obs"
)

// TestHeapSamplerObservesAllocation: the sampler's peak moves when the
// heap grows under it, and the nil receiver follows the obs nil-off
// contract.
func TestHeapSamplerObservesAllocation(t *testing.T) {
	s := obs.StartHeapSampler(time.Millisecond)
	base := s.Peak()
	if base == 0 {
		t.Fatal("no initial sample")
	}
	big := make([]byte, 32<<20)
	for i := range big {
		big[i] = byte(i)
	}
	// The final synchronous sample in Stop sees the allocation even if the
	// ticker never fired.
	peak := s.Stop()
	runtime.KeepAlive(big)
	if peak < base+(16<<20) {
		t.Errorf("peak %d did not register a 32MiB allocation over base %d", peak, base)
	}

	var nilS *obs.HeapSampler
	if nilS.Peak() != 0 || nilS.Stop() != 0 {
		t.Error("nil sampler must report zero")
	}
}
