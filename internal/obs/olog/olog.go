// Package olog is DiffTrace's structured logger: leveled, JSON-lines,
// stdlib-only, and nil-off like the rest of obs — a nil *Logger accepts
// every call without locking, allocating, or reading the clock, so the
// service and CLI instrument unconditionally and a silent run costs
// nothing. (The package is named olog rather than log to avoid shadowing
// the standard library inside its own implementation.)
//
// Each line is one JSON object: {"ts":...,"level":...,"msg":...} followed
// by the logger's bound fields (With) and the call's fields, in that
// order. Bound fields are how the service attaches trace_id and job id
// once per job instead of at every call site.
//
// olog lives under internal/obs so the wallclock lint exemption covers its
// timestamps: log lines are telemetry, never pipeline output, and never
// reach a scrubbed artifact.
package olog

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Level orders log severities. The zero value is Debug so a zero Logger
// config logs everything it is given.
type Level int32

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String renders the conventional lowercase name.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level; unknown strings report ok=false.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "debug":
		return Debug, true
	case "info":
		return Info, true
	case "warn":
		return Warn, true
	case "error":
		return Error, true
	}
	return Info, false
}

// fieldKind discriminates Field's payload without an interface box.
type fieldKind uint8

const (
	kindStr fieldKind = iota
	kindInt
	kindUint
	kindBool
	kindErr
)

// Field is one key/value pair. It is a small value type (no interface for
// scalars) so a call's ...Field slice can live on the caller's stack and
// the nil-logger path stays allocation-free.
type Field struct {
	key  string
	kind fieldKind
	str  string
	num  int64
	unum uint64
	err  error
}

// Str binds a string value.
func Str(key, value string) Field { return Field{key: key, kind: kindStr, str: value} }

// Int binds an int value.
func Int(key string, value int) Field { return Field{key: key, kind: kindInt, num: int64(value)} }

// Int64 binds an int64 value.
func Int64(key string, value int64) Field { return Field{key: key, kind: kindInt, num: value} }

// Uint64 binds a uint64 value (heap bytes, sequence numbers).
func Uint64(key string, value uint64) Field { return Field{key: key, kind: kindUint, unum: value} }

// Bool binds a bool value.
func Bool(key string, value bool) Field {
	f := Field{key: key, kind: kindBool}
	if value {
		f.num = 1
	}
	return f
}

// Err binds an error under the conventional "err" key. The error is
// stringified at emit time, not at call time, so a nil logger never pays
// for Error() formatting.
func Err(err error) Field { return Field{key: "err", kind: kindErr, err: err} }

// Logger writes JSON lines at or above a minimum level. Nil is off. All
// methods are safe for concurrent use; derived loggers (With) share one
// mutex so interleaved writers never tear lines.
type Logger struct {
	mu   *sync.Mutex
	w    io.Writer
	min  Level
	base []Field
}

// New builds a logger writing to w. A nil writer returns a nil (disabled)
// logger, so "no -log-json flag" and "logging off" are the same state.
func New(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{mu: &sync.Mutex{}, w: w, min: min}
}

// With returns a logger that emits the given fields on every line, after
// the parent's bound fields. Use it to attach trace_id and job once per
// request. Nil in, nil out.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	base := make([]Field, 0, len(l.base)+len(fields))
	base = append(base, l.base...)
	base = append(base, fields...)
	return &Logger{mu: l.mu, w: l.w, min: l.min, base: base}
}

// Enabled reports whether a line at the given level would be written.
func (l *Logger) Enabled(level Level) bool {
	if l == nil {
		return false
	}
	return level >= l.min
}

// Debugf-style sugar is deliberately absent: fields, not format strings.

// Debug logs at Debug level.
func (l *Logger) Debug(msg string, fields ...Field) {
	if l == nil || Debug < l.min {
		return
	}
	l.emit(Debug, msg, fields)
}

// Info logs at Info level.
func (l *Logger) Info(msg string, fields ...Field) {
	if l == nil || Info < l.min {
		return
	}
	l.emit(Info, msg, fields)
}

// Warn logs at Warn level.
func (l *Logger) Warn(msg string, fields ...Field) {
	if l == nil || Warn < l.min {
		return
	}
	l.emit(Warn, msg, fields)
}

// Error logs at Error level.
func (l *Logger) Error(msg string, fields ...Field) {
	if l == nil || Error < l.min {
		return
	}
	l.emit(Error, msg, fields)
}

// bufPool recycles line buffers across emits.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func (l *Logger) emit(level Level, msg string, fields []Field) {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"ts":"`...)
	b = time.Now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, level.String()...)
	b = append(b, `","msg":`...)
	b = appendJSONString(b, msg)
	for _, f := range l.base {
		b = appendField(b, f)
	}
	for _, f := range fields {
		b = appendField(b, f)
	}
	b = append(b, '}', '\n')
	l.mu.Lock()
	// A failing log sink must never fail the pipeline; the error is dropped.
	l.w.Write(b)
	l.mu.Unlock()
	*bp = b
	bufPool.Put(bp)
}

func appendField(b []byte, f Field) []byte {
	b = append(b, ',')
	b = appendJSONString(b, f.key)
	b = append(b, ':')
	switch f.kind {
	case kindStr:
		b = appendJSONString(b, f.str)
	case kindInt:
		b = strconv.AppendInt(b, f.num, 10)
	case kindUint:
		b = strconv.AppendUint(b, f.unum, 10)
	case kindBool:
		if f.num != 0 {
			b = append(b, "true"...)
		} else {
			b = append(b, "false"...)
		}
	case kindErr:
		if f.err == nil {
			b = append(b, "null"...)
		} else {
			b = appendJSONString(b, f.err.Error())
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString writes s as a JSON string literal. Quotes, backslashes,
// and control bytes are escaped (\u00XX); everything else — including
// non-ASCII UTF-8 — passes through, which json.Unmarshal accepts.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
