package olog

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// lines splits a log buffer into its JSON-decoded objects, failing the
// test on anything that is not exactly one JSON object per line.
func lines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, raw := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if raw == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("log line is not valid JSON: %v\n%s", err, raw)
		}
		out = append(out, m)
	}
	return out
}

func TestLineShape(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	l.Info("hello",
		Str("s", "v"), Int("i", -3), Int64("i64", 1<<40),
		Uint64("u", 18446744073709551615), Bool("yes", true), Bool("no", false),
		Err(errors.New("boom")))

	ls := lines(t, &buf)
	if len(ls) != 1 {
		t.Fatalf("got %d lines, want 1", len(ls))
	}
	m := ls[0]
	if m["level"] != "info" || m["msg"] != "hello" {
		t.Fatalf("level/msg wrong: %v", m)
	}
	ts, _ := m["ts"].(string)
	if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
		t.Fatalf("ts %q not RFC3339Nano: %v", ts, err)
	}
	if !strings.HasSuffix(ts, "Z") {
		t.Fatalf("ts %q not UTC", ts)
	}
	if m["s"] != "v" || m["i"] != float64(-3) || m["i64"] != float64(1<<40) {
		t.Fatalf("scalar fields wrong: %v", m)
	}
	if m["yes"] != true || m["no"] != false || m["err"] != "boom" {
		t.Fatalf("bool/err fields wrong: %v", m)
	}
	// uint64 max overflows float64 exactly-representable range; re-decode
	// the raw line with UseNumber to check it textually.
	dec := json.NewDecoder(strings.NewReader(buf.String()))
	dec.UseNumber()
	var nm map[string]any
	if err := dec.Decode(&nm); err != nil {
		t.Fatal(err)
	}
	if got := nm["u"].(json.Number).String(); got != "18446744073709551615" {
		t.Fatalf("uint64 field = %s", got)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Warn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	ls := lines(t, &buf)
	if len(ls) != 2 || ls[0]["level"] != "warn" || ls[1]["level"] != "error" {
		t.Fatalf("Warn-min logger emitted: %v", ls)
	}
	if l.Enabled(Info) || !l.Enabled(Warn) || !l.Enabled(Error) {
		t.Fatal("Enabled disagrees with filtering")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": Debug, "info": Info, "warn": Warn, "error": Error} {
		got, ok := ParseLevel(s)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseLevel("verbose"); ok {
		t.Error("ParseLevel accepted unknown level")
	}
	if Debug.String() != "debug" || Error.String() != "error" || Level(99).String() != "error" {
		t.Error("Level.String wrong")
	}
}

// TestWithChaining: bound fields come before call fields, chain in order,
// and derived loggers do not mutate the parent.
func TestWithChaining(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	jl := l.With(Str("trace_id", "t1")).With(Str("job", "j1"))
	jl.Info("x", Str("k", "v"))
	l.Info("parent")

	ls := lines(t, &buf)
	if len(ls) != 2 {
		t.Fatalf("got %d lines", len(ls))
	}
	if ls[0]["trace_id"] != "t1" || ls[0]["job"] != "j1" || ls[0]["k"] != "v" {
		t.Fatalf("bound fields missing: %v", ls[0])
	}
	if _, leaked := ls[1]["trace_id"]; leaked {
		t.Fatalf("With mutated parent logger: %v", ls[1])
	}
	// Field order on the raw line: bound before call fields.
	raw := strings.SplitN(buf.String(), "\n", 2)[0]
	if strings.Index(raw, `"trace_id"`) > strings.Index(raw, `"k"`) {
		t.Fatalf("bound field after call field: %s", raw)
	}
}

func TestEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	nasty := "q\"uote b\\slash\nnl\ttab\rcr\x01ctl ünïcode"
	l.Info(nasty, Str("k\"ey", nasty))
	ls := lines(t, &buf)
	if ls[0]["msg"] != nasty {
		t.Fatalf("msg did not round-trip: %q", ls[0]["msg"])
	}
	if ls[0][`k"ey`] != nasty {
		t.Fatalf("field key/value did not round-trip: %v", ls[0])
	}
}

func TestErrNil(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, Debug).Info("x", Err(nil))
	if ls := lines(t, &buf); ls[0]["err"] != nil {
		t.Fatalf("Err(nil) = %v, want null", ls[0]["err"])
	}
}

// TestNilOff: every method on a nil logger is a no-op, and New(nil) is the
// same state as nil.
func TestNilOff(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", Str("k", "v"))
	l.Warn("w")
	l.Error("e", Err(errors.New("x")))
	if l.With(Str("a", "b")) != nil {
		t.Fatal("nil.With != nil")
	}
	if l.Enabled(Error) {
		t.Fatal("nil logger Enabled")
	}
	if New(nil, Info) != nil {
		t.Fatal("New(nil) returned a live logger")
	}
}

// TestConcurrentNoTearing: writers sharing one sink (parent + With-derived)
// never interleave bytes mid-line.
func TestConcurrentNoTearing(t *testing.T) {
	// A plain bytes.Buffer is safe here: all writers share the logger's
	// mutex, which is exactly the no-tearing guarantee under test.
	var buf bytes.Buffer
	l := New(&buf, Debug)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		jl := l.With(Int("g", g))
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				jl.Info("tick", Int("i", i))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(lines(t, &buf)); got != 200 {
		t.Fatalf("got %d intact lines, want 200", got)
	}
}
