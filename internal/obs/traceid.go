package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceID correlates everything one request touches — log lines, manifest,
// flight-recorder entry, job view — across the service, the pipeline, and
// the readers. It is minted once at admission (or CLI start) and carried by
// context; it is pure telemetry, so Scrub removes it from manifests and the
// determinism battery never sees it.
type TraceID string

// NewTraceID mints a 64-bit random ID rendered as 16 lowercase hex digits.
// Randomness is deliberate (IDs must not collide across daemon restarts),
// which is exactly why the ID may never influence pipeline output.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand cannot fail on supported platforms; a fixed fallback
		// still yields a usable (if non-unique) correlation key.
		return TraceID("0000000000000000")
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == "" }

func (id TraceID) String() string { return string(id) }

// traceIDKey is the private context key for TraceID.
type traceIDKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from the context; zero when absent.
// The lookup does not allocate, so it is safe on hot paths.
func TraceIDFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(TraceID)
	return id
}

// SetTraceID stamps the run (and therefore its manifest) with the request's
// trace ID. Scrub removes it again: the stored artifact is shared by every
// request that submits the same input bytes, so it must not remember which
// request computed it.
func (r *Run) SetTraceID(id TraceID) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceID = id
	r.mu.Unlock()
}
