// External test package: the concurrency tests drive obs through
// pool.DoObserved, and pool imports obs, so an internal test package would
// cycle.
package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"difftrace/internal/obs"
	"difftrace/internal/pool"
)

// TestNilRunIsInert pins the "nil is off" contract: every method of a nil
// *Run — and of the nil handles it returns — must be callable without
// panicking and without observable effect.
func TestNilRunIsInert(t *testing.T) {
	var r *obs.Run
	r.SetConfig("k", "v")
	r.StartSpan("stage").End()
	r.Counter("c").Add(5)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(7)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d", got)
	}
	r.Histogram("h").Observe(9)
	r.Pool("site").Record(4, 10, time.Millisecond, time.Millisecond)
	r.AddIngest(obs.Ingest{Source: "x"})
	r.AddDegraded("stage", "obj", "boom")
	if m := r.Manifest(); m != nil {
		t.Errorf("nil run manifest = %+v, want nil", m)
	}
	r.WriteSummary(&bytes.Buffer{}) // must not panic
	obs.Scrub(nil)                  // likewise
}

func TestSpanAggregation(t *testing.T) {
	r := obs.NewRun("test")
	for i := 0; i < 3; i++ {
		r.StartSpan("a/b").End()
	}
	r.StartSpan("a").End()
	m := r.Manifest()
	if len(m.Stages) != 2 {
		t.Fatalf("stages = %+v, want 2 aggregated paths", m.Stages)
	}
	// Sorted by path.
	if m.Stages[0].Path != "a" || m.Stages[1].Path != "a/b" {
		t.Errorf("stage order = %q, %q", m.Stages[0].Path, m.Stages[1].Path)
	}
	if m.Stages[1].Count != 3 {
		t.Errorf("a/b count = %d, want 3", m.Stages[1].Count)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := obs.NewRun("test")
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	snap := r.Manifest().Histograms["h"]
	if snap.Count != 7 || snap.Sum != 1010 {
		t.Fatalf("count=%d sum=%d, want 7/1010", snap.Count, snap.Sum)
	}
	// Log₂ buckets: le=0 holds {0,-5}, le=1 holds {1}, le=3 holds {2,3},
	// le=7 holds {4}, le=1023 holds {1000}.
	want := map[int64]int64{0: 2, 1: 1, 3: 2, 7: 1, 1023: 1}
	got := map[int64]int64{}
	for _, b := range snap.Buckets {
		got[b.Le] = b.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%d count=%d, want %d (all: %v)", le, got[le], n, snap.Buckets)
		}
	}
}

func TestScrub(t *testing.T) {
	r := obs.NewRun("test")
	r.SetConfig("workers", "8")
	r.SetConfig("filter", "11.mpiall.0K10")
	r.Counter("nlr.intern.hit").Add(10)
	r.Counter("stage.wall_ns").Add(12345)
	r.Gauge("pool.workers").Set(8)
	r.StartSpan("stage").End()
	r.Pool("site").Record(8, 100, time.Millisecond, time.Millisecond)

	m := r.Manifest()
	obs.Scrub(m)
	if m.WallNs != 0 || m.Host != nil {
		t.Error("wall/host survived scrub")
	}
	if m.Stages[0].WallNs != 0 || m.Stages[0].Count != 1 {
		t.Errorf("stage after scrub = %+v", m.Stages[0])
	}
	p := m.Pool[0]
	if p.Workers != 0 || p.BusyNs != 0 || p.WorkerWallNs != 0 || p.Utilization != 0 {
		t.Errorf("pool timing survived scrub: %+v", p)
	}
	if p.Calls != 1 || p.Items != 100 {
		t.Errorf("schedule-independent pool fields scrubbed: %+v", p)
	}
	if m.Config["workers"] != "" || m.Config["filter"] != "11.mpiall.0K10" {
		t.Errorf("config scrub wrong: %v", m.Config)
	}
	if m.Counters["stage.wall_ns"] != 0 || m.Counters["nlr.intern.hit"] != 10 {
		t.Errorf("counter scrub wrong: %v", m.Counters)
	}
	if m.Gauges["pool.workers"] != 0 {
		t.Errorf("gauge scrub wrong: %v", m.Gauges)
	}
}

// TestObsUnderPoolWorkers drives spans, counters, and histograms from
// pool.DoObserved workers at Workers:8 — the -race proof that concurrent
// instrumentation is safe — and checks the resulting manifest is exactly
// what a sequential run produces.
func TestObsUnderPoolWorkers(t *testing.T) {
	const items = 200
	build := func(workers int) *obs.Manifest {
		r := obs.NewRun("test")
		pool.DoObserved(r, "test.site", workers, items, func(i int) {
			sp := r.StartSpan("work/item")
			r.Counter("work.count").Add(1)
			r.Histogram("work.size").Observe(int64(i))
			sp.End()
		})
		m := r.Manifest()
		obs.Scrub(m)
		return m
	}

	seq := build(1)
	par := build(8)
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if !bytes.Equal(a, b) {
		t.Errorf("scrubbed manifests differ across worker counts:\n%s\nvs\n%s", a, b)
	}
	if par.Counters["work.count"] != items {
		t.Errorf("counter = %d, want %d", par.Counters["work.count"], items)
	}
	if par.Stages[0].Count != items {
		t.Errorf("span count = %d, want %d", par.Stages[0].Count, items)
	}
	if got := par.Histograms["work.size"].Count; got != items {
		t.Errorf("histogram count = %d, want %d", got, items)
	}
	if par.Pool[0].Site != "test.site" || par.Pool[0].Items != items {
		t.Errorf("pool stat = %+v", par.Pool[0])
	}
}

func TestManifestJSONStable(t *testing.T) {
	r := obs.NewRun("test")
	r.SetConfig("filter", "f")
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.StartSpan("s").End()
	m := r.Manifest()
	obs.Scrub(m)
	var buf1, buf2 bytes.Buffer
	if err := m.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("re-encoding the same manifest changed bytes")
	}
	if !strings.Contains(buf1.String(), `"tool": "test"`) {
		t.Errorf("unexpected JSON: %s", buf1.String())
	}
}

func TestWriteSummary(t *testing.T) {
	r := obs.NewRun("test")
	r.Counter("nlr.intern.hit").Add(3)
	r.Counter("nlr.intern.miss").Add(1)
	r.StartSpan("stage").End()
	r.AddIngest(obs.Ingest{Source: "in.trace", EventsKept: 10})
	r.AddDegraded("nlr", "5.0", "boom")
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"stage", "nlr interning: 3 hits / 1 misses", "in.trace", "degraded stages: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
