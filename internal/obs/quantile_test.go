package obs

import (
	"strings"
	"testing"
)

func TestQuantileEmptyAndNil(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %g", got)
	}
	r := NewRun("test")
	if got := r.Histogram("t.empty").Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram Quantile = %g", got)
	}
}

func TestQuantileZeros(t *testing.T) {
	r := NewRun("test")
	h := r.Histogram("t.zeros")
	for i := 0; i < 4; i++ {
		h.Observe(0)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero p50 = %g, want 0", got)
	}
}

// TestQuantileBucketFidelity: the estimate lands inside the log₂ bucket
// that holds the target rank — the exact promise the buckets make.
func TestQuantileBucketFidelity(t *testing.T) {
	r := NewRun("test")
	h := r.Histogram("t.uniform")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Rank 500 sits in bucket [512, 1023)? No: 500 has bits.Len=9 →
	// bucket le=511 covering [256, 511]. The estimate must land there.
	if p50 := h.Quantile(0.50); p50 < 256 || p50 > 511 {
		t.Errorf("p50 = %g, want within [256, 511]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512 || p99 > 1023 {
		t.Errorf("p99 = %g, want within [512, 1023]", p99)
	}
	// Monotone in q.
	if h.Quantile(0.5) > h.Quantile(0.95) || h.Quantile(0.95) > h.Quantile(0.99) {
		t.Error("quantiles not monotone in q")
	}
	// Out-of-range q clamps rather than panics.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("out-of-range q did not clamp")
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRun("test")
	h := r.Histogram("t.single")
	h.Observe(10) // bucket [8, 15]
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got < 8 || got > 15 {
			t.Errorf("Quantile(%g) = %g, want within [8, 15]", q, got)
		}
	}
}

// TestWriteSummaryQuantiles: the human summary renders p50/p95/p99 for
// each histogram.
func TestWriteSummaryQuantiles(t *testing.T) {
	r := NewRun("test")
	h := r.Histogram("t.lat_ms")
	for _, v := range []int64{1, 2, 3, 100, 200} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteSummary(&b)
	out := b.String()
	if !strings.Contains(out, "t.lat_ms") || !strings.Contains(out, "p50=") ||
		!strings.Contains(out, "p95=") || !strings.Contains(out, "p99=") {
		t.Fatalf("summary missing histogram quantiles:\n%s", out)
	}
}
