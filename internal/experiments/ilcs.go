package experiments

import (
	"fmt"
	"io"
	"strings"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/diffnlr"
	"difftrace/internal/faults"
	"difftrace/internal/rank"
	"difftrace/internal/trace"
)

// ilcsSpecs are the filter specs the §IV ranking tables sweep. The "cust"
// category captures the ILCS-TSP user code (CPU_Init/CPU_Exec/CPU_Output),
// exactly as the paper's custom filter does.
var (
	ilcsCustom  = []string{"^CPU_"}
	ompBugSpecs = []string{"11.plt.mem.cust.0K10", "01.plt.mem.cust.0K10", "11.mem.ompcrit.cust.0K10", "01.mem.ompcrit.cust.0K10"}
	mpiBugSpecs = []string{"11.mpi.cust.0K10", "11.mpiall.cust.0K10", "11.mpicol.cust.0K10", "01.mpicol.cust.0K10"}
	// Table VIII sweeps the paper's plt/mpi rows plus the memory/critical
	// family: the robust trace-level footprint of the silent wrong-op bug
	// is the champion *owner* changing, i.e. which master executes the
	// critical-section memcpy each round — visible to mem/ompcrit filters
	// and invisible to MPI-only ones (call counts there are unchanged).
	// §IV-D itself notes "more accurate results can be obtained by
	// refining the parameters".
	wrongOpSpecs = []string{
		"11.plt.cust.0K10", "01.plt.cust.0K10",
		"11.mpi.cust.0K10", "11.mpiall.cust.0K10",
		"11.mpicol.cust.0K10", "01.mpicol.cust.0K10",
		"11.mem.ompcrit.cust.0K10", "01.mem.ompcrit.cust.0K10",
	}
)

// ilcsSweep runs one §IV ranking table.
func ilcsSweep(w io.Writer, title string, plan *faults.Plan, specs []string) (*Outcome, *rank.Table, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	normal, _, err := runILCS(reg, nil)
	if err != nil {
		return nil, nil, err
	}
	faulty, fres, err := runILCS(reg, plan)
	if err != nil {
		return nil, nil, err
	}
	tbl, err := rank.Sweep(normal, faulty, rank.Request{
		Specs:          specs,
		CustomPatterns: ilcsCustom,
		Linkage:        cluster.Ward,
	})
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintln(w, title)
	fmt.Fprint(w, tbl.Render())
	o.metric("deadlocked", "%v", fres.Deadlocked)
	o.metric("rows", "%d", len(tbl.Rows))
	return o, tbl, nil
}

// TableVI reproduces the §IV-B ranking table: the unprotected shared-memory
// access by thread 4 of process 6 must surface as the top thread suspect.
func TableVI(w io.Writer) (*Outcome, error) {
	o, tbl, err := ilcsSweep(w,
		"Table VI — ranking table, OpenMP bug: unprotected memcpy in thread 6.4",
		ompBugPlan, ompBugSpecs)
	if err != nil {
		return nil, err
	}
	cons := tbl.Consensus(false)
	if len(cons) == 0 {
		o.fail("no suspects at all")
		return o, nil
	}
	o.metric("top_thread_consensus", "%s (first in %d/%d rows)",
		cons[0].Name, cons[0].RankedFirst, len(tbl.Rows))
	if cons[0].Name != "6.4" {
		o.fail("consensus top thread = %s, want 6.4", cons[0].Name)
	}
	return o, nil
}

// TableVII reproduces §IV-C: the wrong collective size in rank 2 deadlocks
// the job early, so *most* processes look suspicious (the paper notes the
// table itself is inconclusive — the value is in diffNLR, Figure 7b).
func TableVII(w io.Writer) (*Outcome, error) {
	o, tbl, err := ilcsSweep(w,
		"Table VII — ranking table, MPI bug: wrong collective size in rank 2",
		wrongSizePlan, mpiBugSpecs)
	if err != nil {
		return nil, err
	}
	if o.Metrics["deadlocked"] != "true" {
		o.fail("wrong-size run did not deadlock")
	}
	// Shape check: the suspect lists are broad (almost everything changed).
	broad := 0
	for _, r := range tbl.Rows {
		if len(r.TopProcesses) >= 5 {
			broad++
		}
	}
	o.metric("rows_flagging_5plus_processes", "%d/%d", broad, len(tbl.Rows))
	if broad == 0 {
		o.fail("no row flags most processes; the early deadlock should affect nearly all")
	}
	return o, nil
}

// TableVIII reproduces §IV-D: the silent wrong-operation bug. The paper
// finds the first rows inconclusive but the MPI filters agreeing on one
// process; we check that the sweep completes without deadlock and that the
// informative rows agree on a single process.
func TableVIII(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	normal, nres, err := runILCSHard(reg, nil)
	if err != nil {
		return nil, err
	}
	faulty, fres, err := runILCSHard(reg, wrongOpPlan)
	if err != nil {
		return nil, err
	}
	tbl, err := rank.Sweep(normal, faulty, rank.Request{
		Specs:          wrongOpSpecs,
		CustomPatterns: ilcsCustom,
		Linkage:        cluster.Ward,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Table VIII — ranking table, MPI bug: wrong collective operation in rank 0")
	fmt.Fprint(w, tbl.Render())
	o.metric("deadlocked", "%v", fres.Deadlocked)
	o.metric("rows", "%d", len(tbl.Rows))
	o.metric("rounds_normal_vs_faulty", "%d vs %d", nres.Rounds[0], fres.Rounds[0])
	o.metric("reported_champion", "%.2f (normal) vs %.2f (faulty); best found %.2f",
		nres.Champion, fres.Champion, fres.BestFound)
	if fres.Champion < nres.Champion-1e-9 {
		o.fail("faulty run reported a better champion than the normal run")
	}
	if o.Metrics["deadlocked"] != "false" {
		o.fail("wrong-op run should terminate")
	}
	// This bug is *silent*: structure-only (noFreq) attributes see nothing
	// (their rows score B=1 with no suspects), while frequency-sensitive
	// attributes expose the changed champion-round/Bcast counts — the
	// paper's point that the knobs must match the bug class. At process
	// granularity the exact-frequency attributes make every merged trace
	// unique in both runs, so the signal is read from the thread level:
	// the top thread suspects of the informative rows must concentrate on
	// one process.
	informative := 0
	counts := map[string]int{}
	for _, r := range tbl.Rows {
		if len(r.TopThreads) == 0 {
			continue
		}
		informative++
		id, err := trace.ParseThreadID(r.TopThreads[0])
		if err == nil {
			counts[fmt.Sprintf("%d", id.Process)]++
		}
	}
	if informative == 0 {
		o.fail("no parameter combination exposed the silent bug")
		return o, nil
	}
	best, bestN := "", 0
	for name, n := range counts {
		if n > bestN {
			best, bestN = name, n
		}
	}
	o.metric("informative_rows", "%d/%d", informative, len(tbl.Rows))
	o.metric("top_thread_process", "%s (top in %d/%d informative rows)", best, bestN, informative)
	if bestN*2 < informative {
		o.fail("informative rows do not agree on a process: %v", counts)
	}
	return o, nil
}

// Figure7 renders the three §IV diffNLR outputs: (a) thread 6.4 under the
// OpenMP bug, (b) process 4 under the wrong-size deadlock, (c) process 5
// under the wrong-operation bug.
func Figure7(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	normal, _, err := runILCS(reg, nil)
	if err != nil {
		return nil, err
	}

	// (a) OpenMP bug, diffNLR(6.4) with the mem+ompcrit+cust filter.
	faultyA, _, err := runILCS(reg, ompBugPlan)
	if err != nil {
		return nil, err
	}
	cfgA := core.DefaultConfig()
	cfgA.Filter, err = specFilter("11.mem.ompcrit.cust.0K10", ilcsCustom...)
	if err != nil {
		return nil, err
	}
	cfgA.Attr = attr.Config{Kind: attr.Single, Freq: attr.NoFreq}
	repA, err := core.DiffRun(normal, faultyA, cfgA)
	if err != nil {
		return nil, err
	}
	dA, err := repA.DiffNLR(repA.Threads, "6.4")
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Figure 7a — diffNLR(6.4), unprotected memcpy")
	fmt.Fprint(w, dA.Render(false))
	if dA.Identical() {
		o.fail("diffNLR(6.4) shows no difference")
	}
	// The normal side contains critical-section calls; the faulty side's
	// 6.4 never shows them.
	normalHasCrit := containsToken(dA.Normal, "GOMP_critical_start")
	faultyHasCrit := containsToken(dA.Faulty, "GOMP_critical_start")
	o.metric("fig7a_normal_has_critical", "%v", normalHasCrit)
	o.metric("fig7a_faulty_has_critical", "%v", faultyHasCrit)
	if !normalHasCrit || faultyHasCrit {
		o.fail("fig7a: critical-section calls should vanish from the faulty trace only")
	}

	// (b) wrong-size deadlock, diffNLR(4) with the MPI filter.
	faultyB, _, err := runILCS(reg, wrongSizePlan)
	if err != nil {
		return nil, err
	}
	cfgB := core.DefaultConfig()
	cfgB.Filter, err = specFilter("11.mpi.cust.0K10", ilcsCustom...)
	if err != nil {
		return nil, err
	}
	repB, err := core.DiffRun(normal, faultyB, cfgB)
	if err != nil {
		return nil, err
	}
	dB, err := repB.DiffNLR(repB.Threads, "4.0")
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Figure 7b — diffNLR(4), wrong collective size")
	fmt.Fprint(w, dB.Render(false))
	if len(dB.Faulty) == 0 {
		o.fail("fig7b: faulty process 4 trace empty")
	} else {
		last := dB.Faulty[len(dB.Faulty)-1]
		o.metric("fig7b_last_faulty_call", "%s", last)
		if !strings.Contains(last, "MPI_Allreduce") {
			o.fail("fig7b: faulty trace should end inside MPI_Allreduce, got %s", last)
		}
	}
	if containsToken(dB.Faulty, "MPI_Finalize") {
		o.fail("fig7b: deadlocked process reached MPI_Finalize")
	}

	// (c) wrong op, on the hard instance (its own normal run): the bug is
	// silent, so the interesting view is the most-changed trace under
	// frequency-sensitive attributes — the paper's reading of why process
	// 5 was singled out (changed champion-production frequencies).
	regC := trace.NewRegistry()
	normalC, _, err := runILCSHard(regC, nil)
	if err != nil {
		return nil, err
	}
	faultyC, _, err := runILCSHard(regC, wrongOpPlan)
	if err != nil {
		return nil, err
	}
	fC, err := specFilter("11.mem.ompcrit.cust.0K10", ilcsCustom...)
	if err != nil {
		return nil, err
	}
	repC, err := core.DiffRun(normalC, faultyC, core.Config{
		Filter:  fC,
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.Actual},
		Linkage: cluster.Ward,
	})
	if err != nil {
		return nil, err
	}
	// A suspect's similarity *row* can change because other traces moved,
	// so walk the ranking for the first trace whose own diffNLR changed —
	// the paper's workflow of inspecting suspects until one explains the
	// symptom.
	var dC *diffnlr.DiffNLR
	topC := ""
	for _, s := range repC.Threads.Suspects {
		if s.Score <= 0 {
			break
		}
		d, err := repC.DiffNLR(repC.Threads, s.Name)
		if err != nil {
			return nil, err
		}
		if !d.Identical() {
			dC, topC = d, s.Name
			break
		}
	}
	if dC == nil {
		o.fail("fig7c: no suspect's diffNLR shows any change")
		return o, nil
	}
	fmt.Fprintf(w, "Figure 7c — diffNLR(%s), wrong collective operation\n", topC)
	fmt.Fprint(w, dC.Render(false))
	o.metric("fig7c_suspect", "%s", topC)
	o.metric("fig7c_distance", "%d", dC.Distance())
	return o, nil
}

func containsToken(tokens []string, name string) bool {
	for _, t := range tokens {
		if t == name || strings.HasPrefix(t, name) {
			return true
		}
	}
	return false
}
