package experiments

import (
	"fmt"
	"io"
	"strings"

	"difftrace/internal/attr"
	"difftrace/internal/automaded"
	"difftrace/internal/commpat"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/stat"
	"difftrace/internal/trace"

	"difftrace/internal/apps/oddeven"
)

// Baselines is extension experiment X3: the §VI related-work tools — STAT
// (stack equivalence classes), AutomaDeD (single-run semi-Markov outliers),
// communication-matrix diffing, the progress measure, and DiffTrace
// itself — run side by side on the two §II-G bugs, each reporting its
// verdict on where the fault is. It makes the paper's qualitative
// comparisons concrete:
//
//   - swapBug (an order swap, no hang): invisible to STAT (identical final
//     stacks) and to the communication matrix (same message counts);
//     caught by AutomaDeD (transition probabilities shift) and by
//     DiffTrace (loop structure changes);
//   - dlBug (a deadlock cascade): STAT lumps the victims, the
//     communication diff and progress measure localize rank 5, DiffTrace's
//     diffNLR shows exactly where it stopped.
func Baselines(w io.Writer) (*Outcome, error) {
	o := newOutcome()

	type verdicts struct {
		stat, automaded, commdiff, progress, difftrace string
	}
	runCase := func(bug string) (verdicts, error) {
		var v verdicts
		reg := trace.NewRegistry()
		collect := func(plan *faults.Plan) (*trace.TraceSet, *otf.Log, error) {
			tracer := parlot.NewTracerWith(parlot.MainImage, reg)
			clock := otf.NewLog(16)
			_, err := oddeven.Run(oddeven.Config{
				Procs: 16, Seed: 5, Plan: plan, Tracer: tracer, Clock: clock,
			})
			if err != nil {
				return nil, nil, err
			}
			return tracer.Collect(), clock, nil
		}
		normal, nClock, err := collect(nil)
		if err != nil {
			return v, err
		}
		plan, err := faults.Named(bug)
		if err != nil {
			return v, err
		}
		faulty, fClock, err := collect(plan)
		if err != nil {
			return v, err
		}

		// STAT: smallest equivalence class(es).
		tree := stat.Build(faulty)
		if out := tree.Outliers(1); len(out) > 0 {
			v.stat = strings.Join(out, ",")
		} else {
			v.stat = "(none)"
		}

		// AutomaDeD: single-run outliers above 1 sigma.
		flt := filter.New(filter.MPIAll)
		am := automaded.Analyze(flt.ApplySet(faulty))
		if out := am.Outliers(1); len(out) > 0 {
			parts := make([]string, len(out))
			for i, id := range out {
				parts[i] = id.String()
			}
			v.automaded = strings.Join(parts, ",")
		} else {
			v.automaded = "(none)"
		}

		// Communication diff: hottest changed pair.
		cd, err := commpat.Diff(commpat.FromLog(nClock), commpat.FromLog(fClock))
		if err != nil {
			return v, err
		}
		if hot := cd.HotPairs(1); len(hot) > 0 {
			v.commdiff = hot[0].String()
		} else {
			v.commdiff = "(no change)"
		}

		// Progress: least-progressed task.
		pa := progress.Analyze(flt.ApplySet(normal), flt.ApplySet(faulty), 10)
		if least := pa.LeastProgressed(1); len(least) > 0 && pa.Tasks[0].Score < 1 {
			v.progress = least[0].String()
		} else {
			v.progress = "(none)"
		}

		// DiffTrace: top suspect + verdict.
		cfg := core.DefaultConfig()
		cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
		rep, err := core.DiffRun(normal, faulty, cfg)
		if err != nil {
			return v, err
		}
		if top := rep.Threads.TopSuspects(1, 1e-9); len(top) > 0 {
			v.difftrace = top[0]
		} else {
			v.difftrace = "(none)"
		}
		return v, nil
	}

	for _, bug := range []string{"swapBug", "dlBug"} {
		v, err := runCase(bug)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "== %s (fault at rank 5) ==\n", bug)
		fmt.Fprintf(w, "  %-22s %s\n", "STAT outlier class:", v.stat)
		fmt.Fprintf(w, "  %-22s %s\n", "AutomaDeD outliers:", v.automaded)
		fmt.Fprintf(w, "  %-22s %s\n", "comm-matrix diff:", v.commdiff)
		fmt.Fprintf(w, "  %-22s %s\n", "least progressed:", v.progress)
		fmt.Fprintf(w, "  %-22s %s\n\n", "DiffTrace suspect:", v.difftrace)

		switch bug {
		case "swapBug":
			o.metric("swap_stat", "%s", v.stat)
			o.metric("swap_automaded", "%s", v.automaded)
			o.metric("swap_difftrace", "%s", v.difftrace)
			// No hang: STAT sees identical final stacks -> no small class.
			if v.stat != "(none)" {
				o.fail("STAT should see nothing for swapBug, got %s", v.stat)
			}
			if v.difftrace != "5.0" {
				o.fail("DiffTrace should flag 5.0 for swapBug, got %s", v.difftrace)
			}
			if !strings.Contains(v.automaded, "5.0") {
				o.fail("AutomaDeD should include 5.0 for swapBug, got %s", v.automaded)
			}
		case "dlBug":
			o.metric("dl_stat", "%s", v.stat)
			o.metric("dl_commdiff", "%s", v.commdiff)
			o.metric("dl_progress", "%s", v.progress)
			if v.progress != "5.0" {
				o.fail("progress should isolate 5.0 for dlBug, got %s", v.progress)
			}
			if !strings.Contains(v.commdiff, "5") {
				o.fail("comm diff should touch rank 5, got %s", v.commdiff)
			}
		}
	}
	return o, nil
}
