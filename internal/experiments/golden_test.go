package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden artifact files")

// TestGoldenArtifacts pins the deterministic paper artifacts byte for byte:
// any unintended change to the trace collection, filtering, NLR, FCA, or
// rendering layers shows up as a golden diff. Regenerate intentionally with
//
//	go test ./internal/experiments -run TestGoldenArtifacts -update
func TestGoldenArtifacts(t *testing.T) {
	cases := []string{"tableII", "tableIII", "tableIV", "fig3", "fig4"}
	for _, id := range cases {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			var buf bytes.Buffer
			out, err := e.Run(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Pass {
				t.Fatalf("shape check failed: %s", out.Note)
			}
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("artifact drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					path, buf.String(), want)
			}
		})
	}
}
