package experiments

import (
	"fmt"
	"io"

	"difftrace/internal/cluster"
	"difftrace/internal/filter"
	"difftrace/internal/nlr"
	"difftrace/internal/rank"
	"difftrace/internal/trace"
)

// specFilter parses a filter spec that is expected to be well-formed at
// compile time; a failure surfaces as a validated error (wrapped so callers
// can errors.Is against filter parse errors), per the panic discipline.
func specFilter(spec string, custom ...string) (*filter.Filter, error) {
	f, err := filter.ParseSpec(spec, custom...)
	if err != nil {
		return nil, fmt.Errorf("experiments: bad built-in filter spec %q: %w", spec, err)
	}
	return f, nil
}

// LULESHStats reproduces the §V trace statistics: distinct function calls
// per execution, compressed bytes per thread, decompressed calls per
// process, and the NLR sequence reduction at K=10 vs K=50.
//
// The paper reports ≈410 distinct functions, ≈2.8 KB compressed per thread,
// ≈421503 calls per process, and reductions of 1.92× (K=10) and 16.74×
// (K=50) on the XSEDE Bridges runs of real LULESH2 under Pin. The proxy's
// Regions knob is set to 42 so the distinct-function count lands in the
// paper's range (real LULESH gets there via libc noise the proxy lacks);
// EdgeElems/Cycles set the call volume.
func LULESHStats(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	set, res, err := runLULESH(reg, nil, 14, 42, 3)
	if err != nil {
		return nil, err
	}
	if res.Deadlocked {
		o.fail("fault-free LULESH deadlocked")
	}

	distinct := set.DistinctFuncs()
	o.metric("distinct_functions", "%d (paper: ~410)", distinct)
	if distinct < 300 || distinct > 500 {
		o.fail("distinct functions = %d, outside the paper's regime", distinct)
	}

	// Calls per process (enter events only, all threads of the process).
	procs := set.Processes()
	totalCalls := 0
	for _, p := range procs {
		totalCalls += len(set.ProcessTrace(p).Calls())
	}
	callsPerProc := totalCalls / len(procs)
	o.metric("calls_per_process", "%d (paper: ~421503)", callsPerProc)
	if callsPerProc < 10000 {
		o.fail("calls per process = %d, trace too small to be representative", callsPerProc)
	}

	// NLR reduction factors at K=10 and K=50 on each process trace.
	red := func(k int) float64 {
		tbl := nlr.NewTable()
		sum := 0.0
		for _, p := range procs {
			tr := set.ProcessTrace(p)
			calls := tr.Calls()
			filtered := &trace.Trace{ID: tr.ID}
			for _, c := range calls {
				filtered.Append(c, 0)
			}
			elems := nlr.SummarizeTrace(filtered, set.Registry, k, tbl)
			sum += nlr.Reduction(len(calls), elems)
		}
		return sum / float64(len(procs))
	}
	r10 := red(10)
	r50 := red(50)
	o.metric("nlr_reduction_K10", "%.2fx (paper: 1.92x)", r10)
	o.metric("nlr_reduction_K50", "%.2fx (paper: 16.74x)", r50)
	if r10 <= 1 {
		o.fail("K=10 reduction %.2f should exceed 1", r10)
	}
	if r50 <= r10 {
		o.fail("K=50 reduction %.2f should exceed K=10's %.2f", r50, r10)
	}

	fmt.Fprintln(w, "§V statistics — LULESH proxy (8 procs × 4 threads)")
	for _, k := range o.sortedMetricKeys() {
		fmt.Fprintf(w, "  %-24s %s\n", k, o.Metrics[k])
	}
	return o, nil
}

// TableIX reproduces the LULESH ranking table: with rank 2 skipping
// LagrangeLeapFrog, the job stalls and every process appears among the
// suspects ("all of the process IDs appeared in the table").
func TableIX(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	normal, _, err := runLULESH(reg, nil, 6, 11, 2)
	if err != nil {
		return nil, err
	}
	faulty, fres, err := runLULESH(reg, skipLeapFrogPlan, 6, 11, 2)
	if err != nil {
		return nil, err
	}
	if !fres.Deadlocked {
		o.fail("skipping LagrangeLeapFrog did not stall the job")
	}
	tbl, err := rank.Sweep(normal, faulty, rank.Request{
		Specs:   []string{"11.1K10", "01.1K10"},
		Linkage: cluster.Ward,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Table IX — ranking table for LULESH (rank 2 skips LagrangeLeapFrog)")
	fmt.Fprint(w, tbl.Render())

	// Shape: the stall implicates most processes (the paper: "all of the
	// process IDs appeared in the table"; each row lists at most 6, so we
	// require broad coverage across rows rather than literal completeness).
	seen := map[string]bool{}
	for _, r := range tbl.Rows {
		for _, p := range r.TopProcesses {
			seen[p] = true
		}
	}
	o.metric("processes_flagged", "%d/8", len(seen))
	if len(seen) < 6 {
		o.fail("only %d processes flagged; the stall should implicate most", len(seen))
	}
	// The faulty rank must be flagged — and here it tops the consensus.
	cons := tbl.Consensus(true)
	if len(cons) == 0 || !seen["2"] {
		o.fail("faulty rank 2 never flagged")
	} else {
		o.metric("top_process_consensus", "%s (first in %d/%d rows)",
			cons[0].Name, cons[0].RankedFirst, len(tbl.Rows))
	}
	return o, nil
}
