// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md): each Experiment runs
// the relevant workload through the DiffTrace pipeline, prints the same
// rows/series the paper reports, and self-checks the qualitative *shape*
// of the result (who is flagged, what truncates, what compresses).
//
// Absolute numbers (B-scores, byte counts) depend on the authors' binaries
// and testbed and are not expected to match; the Outcome of each experiment
// records what was measured so EXPERIMENTS.md can compare paper vs. repo.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/apps/lulesh"
	"difftrace/internal/apps/oddeven"
)

// Outcome is an experiment's structured result.
type Outcome struct {
	// Pass reports whether the paper-shape self-check held.
	Pass bool
	// Metrics are the headline measurements, for EXPERIMENTS.md.
	Metrics map[string]string
	// Note explains failures or caveats.
	Note string
}

func newOutcome() *Outcome { return &Outcome{Pass: true, Metrics: map[string]string{}} }

func (o *Outcome) fail(format string, args ...any) {
	o.Pass = false
	if o.Note != "" {
		o.Note += "; "
	}
	o.Note += fmt.Sprintf(format, args...)
}

func (o *Outcome) metric(key, format string, args ...any) {
	o.Metrics[key] = fmt.Sprintf(format, args...)
}

// sortedMetricKeys for deterministic rendering.
func (o *Outcome) sortedMetricKeys() []string {
	keys := make([]string, 0, len(o.Metrics))
	for k := range o.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summary renders the outcome compactly.
func (o *Outcome) Summary() string {
	s := "PASS"
	if !o.Pass {
		s = "FAIL (" + o.Note + ")"
	}
	for _, k := range o.sortedMetricKeys() {
		s += fmt.Sprintf("\n  %s = %s", k, o.Metrics[k])
	}
	return s
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID       string // e.g. "tableII"
	PaperRef string // e.g. "Table II (§II-C)"
	Title    string
	Run      func(w io.Writer) (*Outcome, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tableII", "Table II (§II-C)", "Pre-processed odd/even traces, 4 ranks", TableII},
		{"tableIII", "Table III (§II-D)", "NLR of the odd/even traces", TableIII},
		{"tableIV", "Table IV (§II-E)", "Formal context of the odd/even traces", TableIV},
		{"fig3", "Figure 3 (§II-E)", "Concept lattice of the odd/even context", Figure3},
		{"fig4", "Figure 4 (§II-E)", "Pairwise Jaccard similarity matrix", Figure4},
		{"fig5", "Figure 5 (§II-G)", "diffNLR(5) under swapBug, 16 ranks", Figure5},
		{"fig6", "Figure 6 (§II-G)", "diffNLR(5) under dlBug, 16 ranks", Figure6},
		{"tableVI", "Table VI (§IV-B)", "ILCS ranking: unprotected memcpy in 6.4", TableVI},
		{"tableVII", "Table VII (§IV-C)", "ILCS ranking: wrong collective size in rank 2", TableVII},
		{"tableVIII", "Table VIII (§IV-D)", "ILCS ranking: MPI_MIN->MPI_MAX in rank 0", TableVIII},
		{"fig7", "Figure 7 (§IV)", "Three ILCS diffNLR outputs", Figure7},
		{"lulesh-stats", "§V statistics", "LULESH trace statistics and NLR reduction", LULESHStats},
		{"tableIX", "Table IX (§V)", "LULESH ranking: rank 2 skips LagrangeLeapFrog", TableIX},
		{"compression", "ParLOT [4] claim", "Incremental trace-compression ratios", Compression},
		{"progress-dlbug", "extension (§VI Prodometer)", "Least-progressed task vs STAT on the dlBug cascade", ProgressDlBug},
		{"classify-bugs", "extension (§VII item 3)", "Systematic bug injection + leave-one-out classification", ClassifyBugs},
		{"baselines", "extension (§VI)", "STAT / AutomaDeD / comm-diff / progress / DiffTrace side by side", Baselines},
	}
}

// Get finds an experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared workload runners -------------------------------------------

// runOddEven collects traces from one odd/even execution.
func runOddEven(reg *trace.Registry, procs int, plan *faults.Plan) (*trace.TraceSet, *oddeven.Result, error) {
	tr := parlot.NewTracerWith(parlot.MainImage, reg)
	res, err := oddeven.Run(oddeven.Config{Procs: procs, Seed: 5, Plan: plan, Tracer: tr})
	if err != nil {
		return nil, nil, err
	}
	return tr.Collect(), res, nil
}

// ilcsConfig is the §IV setup scaled to a single-machine run: 8 processes
// × 4 worker threads, real 2-opt TSP work.
func ilcsConfig(reg *trace.Registry, plan *faults.Plan) (ilcs.Config, *parlot.Tracer) {
	tr := parlot.NewTracerWith(parlot.MainImage, reg)
	return ilcs.Config{
		Procs: 8, Workers: 4, Cities: 12, Seed: 11,
		StableRounds: 2, MaxRounds: 10, EvalsPerRound: 4,
		Plan: plan, Tracer: tr,
	}, tr
}

// ilcsHardConfig is the §IV-D setup: the wrong-operation bug only manifests
// when the TSP instance is hard enough that per-node champions stay spread
// across nodes for several champion rounds (on a trivial instance every
// node converges to the same optimum and MIN/MAX reduce identically).
func ilcsHardConfig(reg *trace.Registry, plan *faults.Plan) (ilcs.Config, *parlot.Tracer) {
	tr := parlot.NewTracerWith(parlot.MainImage, reg)
	return ilcs.Config{
		Procs: 8, Workers: 4, Cities: 100, Seed: 11,
		StableRounds: 3, MaxRounds: 16, EvalsPerRound: 3,
		Plan: plan, Tracer: tr,
	}, tr
}

func runILCS(reg *trace.Registry, plan *faults.Plan) (*trace.TraceSet, *ilcs.Result, error) {
	cfg, tr := ilcsConfig(reg, plan)
	res, err := ilcs.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return tr.Collect(), res, nil
}

func runILCSHard(reg *trace.Registry, plan *faults.Plan) (*trace.TraceSet, *ilcs.Result, error) {
	cfg, tr := ilcsHardConfig(reg, plan)
	res, err := ilcs.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return tr.Collect(), res, nil
}

// luleshConfig is the §V setup: 8 processes × 4 threads, single cycle.
func luleshConfig(reg *trace.Registry, plan *faults.Plan, edge, regions, cycles int) (lulesh.Config, *parlot.Tracer) {
	tr := parlot.NewTracerWith(parlot.MainImage, reg)
	return lulesh.Config{
		Procs: 8, Threads: 4, EdgeElems: edge, Regions: regions,
		ChunkSize: 8, Cycles: cycles, Plan: plan, Tracer: tr,
	}, tr
}

func runLULESH(reg *trace.Registry, plan *faults.Plan, edge, regions, cycles int) (*trace.TraceSet, *lulesh.Result, error) {
	cfg, tr := luleshConfig(reg, plan, edge, regions, cycles)
	res, err := lulesh.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return tr.Collect(), res, nil
}

var (
	swapBugPlan = faults.NewPlan(faults.Fault{
		Kind: faults.SwapSendRecv, Process: 5, Thread: -1, AfterIteration: 7,
	})
	dlBugPlan = faults.NewPlan(faults.Fault{
		Kind: faults.DeadlockStop, Process: 5, Thread: -1, AfterIteration: 7,
	})
	ompBugPlan = faults.NewPlan(faults.Fault{
		Kind: faults.OmitCritical, Process: 6, Thread: 4,
	})
	wrongSizePlan = faults.NewPlan(faults.Fault{
		Kind: faults.WrongCollectiveSize, Process: 2, Thread: -1,
	})
	wrongOpPlan = faults.NewPlan(faults.Fault{
		Kind: faults.WrongReduceOp, Process: 0, Thread: -1,
	})
	skipLeapFrogPlan = faults.NewPlan(faults.Fault{
		Kind: faults.SkipFunction, Process: 2, Thread: -1, Target: "LagrangeLeapFrog",
	})
)
