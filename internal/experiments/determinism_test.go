package experiments

import (
	"reflect"
	"sync"
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/rank"
	"difftrace/internal/trace"
)

// The differential determinism suite: every experiment workload family is
// pushed through the pipeline at Workers:1 and Workers:8 and the reports
// must be deep-equal — NLR sequences, loop-table IDs, JSM values, suspect
// ranking, rendered tables. Run under -race (make determinism) to also
// prove the parallel path is well-synchronized.

// pair is one normal/faulty workload, built once and shared by both runs.
type pair struct {
	once           sync.Once
	build          func() (*trace.TraceSet, *trace.TraceSet, error)
	normal, faulty *trace.TraceSet
	err            error
}

func (p *pair) get(t *testing.T) (*trace.TraceSet, *trace.TraceSet) {
	t.Helper()
	p.once.Do(func() { p.normal, p.faulty, p.err = p.build() })
	if p.err != nil {
		t.Fatal(p.err)
	}
	return p.normal, p.faulty
}

var (
	oddEven4Pair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runOddEven(reg, 4, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runOddEven(reg, 4, nil)
		return n, f, err
	}}
	oddEvenSwapPair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runOddEven(reg, 16, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runOddEven(reg, 16, swapBugPlan)
		return n, f, err
	}}
	oddEvenDlPair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runOddEven(reg, 16, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runOddEven(reg, 16, dlBugPlan)
		return n, f, err
	}}
	ilcsOmpPair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runILCS(reg, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runILCS(reg, ompBugPlan)
		return n, f, err
	}}
	ilcsWrongSizePair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runILCS(reg, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runILCS(reg, wrongSizePlan)
		return n, f, err
	}}
	ilcsWrongOpPair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runILCSHard(reg, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runILCSHard(reg, wrongOpPlan)
		return n, f, err
	}}
	luleshPair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runLULESH(reg, nil, 6, 11, 2)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runLULESH(reg, skipLeapFrogPlan, 6, 11, 2)
		return n, f, err
	}}
	progressPair = &pair{build: func() (*trace.TraceSet, *trace.TraceSet, error) {
		reg := trace.NewRegistry()
		n, _, err := runOddEven(reg, 8, nil)
		if err != nil {
			return nil, nil, err
		}
		f, _, err := runOddEven(reg, 8, faults.NewPlan(faults.Fault{
			Kind: faults.DeadlockStop, Process: 3, Thread: -1, AfterIteration: 4,
		}))
		return n, f, err
	}}
)

// assertReportsEqual deep-compares two DiffRun reports modulo Cfg (the
// Workers knob is the only intended difference).
func assertReportsEqual(t *testing.T, label string, a, b *core.Report) {
	t.Helper()
	ca, cb := *a, *b
	ca.Cfg, cb.Cfg = core.Config{}, core.Config{}
	if ca.LoopTable.Len() != cb.LoopTable.Len() {
		t.Fatalf("%s: loop tables differ in size: %d vs %d", label, ca.LoopTable.Len(), cb.LoopTable.Len())
	}
	for id := 0; id < ca.LoopTable.Len(); id++ {
		if ca.LoopTable.Describe(id) != cb.LoopTable.Describe(id) {
			t.Fatalf("%s: loop L%d differs: %s vs %s",
				label, id, ca.LoopTable.Describe(id), cb.LoopTable.Describe(id))
		}
	}
	for _, lv := range []struct {
		name string
		a, b *core.Level
	}{{"threads", ca.Threads, cb.Threads}, {"processes", ca.Processes, cb.Processes}} {
		if !reflect.DeepEqual(lv.a.Suspects, lv.b.Suspects) {
			t.Fatalf("%s: %s suspect ranking differs:\n%v\nvs\n%v",
				label, lv.name, lv.a.Suspects, lv.b.Suspects)
		}
		if !reflect.DeepEqual(lv.a.JSMD, lv.b.JSMD) {
			t.Fatalf("%s: %s JSM_D values differ", label, lv.name)
		}
		if !reflect.DeepEqual(lv.a.Normal, lv.b.Normal) || !reflect.DeepEqual(lv.a.Faulty, lv.b.Faulty) {
			t.Fatalf("%s: %s analyses differ (NLR/attrs/JSM/lattice)", label, lv.name)
		}
		if lv.a.BScore != lv.b.BScore {
			t.Fatalf("%s: %s B-score %v vs %v", label, lv.name, lv.a.BScore, lv.b.BScore)
		}
	}
	if !reflect.DeepEqual(ca.Degraded, cb.Degraded) {
		t.Fatalf("%s: degraded accounting differs", label)
	}
	if !reflect.DeepEqual(&ca, &cb) {
		t.Fatalf("%s: reports differ structurally", label)
	}
}

// runBoth executes one DiffRun config at Workers:1 and Workers:8.
func runBoth(t *testing.T, label string, p *pair, cfg core.Config) {
	t.Helper()
	normal, faulty := p.get(t)
	cfg.Workers = 1
	seq, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatalf("%s (Workers 1): %v", label, err)
	}
	cfg.Workers = 8
	par, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatalf("%s (Workers 8): %v", label, err)
	}
	assertReportsEqual(t, label, seq, par)
}

// TestDiffRunDeterminism covers the DiffRun-based experiments: the odd/even
// pedagogy workload (Tables II–IV, Figures 3–6), the baselines/classify
// extensions, and the lattice route.
func TestDiffRunDeterminism(t *testing.T) {
	singActual := core.DefaultConfig()
	singActual.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	lattice := core.DefaultConfig()
	lattice.BuildLattices = true

	runBoth(t, "tableII-IV/fig3-4 (oddeven 4)", oddEven4Pair, core.DefaultConfig())
	runBoth(t, "fig5 (swapBug)", oddEvenSwapPair, singActual)
	runBoth(t, "fig5 lattice route", oddEvenSwapPair, lattice)
	runBoth(t, "fig6 (dlBug)", oddEvenDlPair, singActual)
	runBoth(t, "progress-dlbug cascade", progressPair, core.DefaultConfig())
}

// TestDiffRunDeterminismILCSAndLULESH covers the §IV/§V application
// workloads at the DiffRun level, including the doub attribute family.
func TestDiffRunDeterminismILCSAndLULESH(t *testing.T) {
	if testing.Short() {
		t.Skip("application workloads are slow; run without -short")
	}
	doubLog := core.DefaultConfig()
	doubLog.Attr = attr.Config{Kind: attr.Double, Freq: attr.Log10}

	runBoth(t, "tableVI workload (ompBug)", ilcsOmpPair, core.DefaultConfig())
	runBoth(t, "tableVII workload (wrongSize)", ilcsWrongSizePair, doubLog)
	runBoth(t, "tableIX workload (skipLeapFrog)", luleshPair, core.DefaultConfig())
}

// sweepBoth runs one ranking sweep at Workers:1 and Workers:8 and compares
// rows and rendered bytes. Parallel is held at 1 so only the intra-run
// workers vary; TestSweepParallelAndWorkers also varies the outer knob.
func sweepBoth(t *testing.T, label string, p *pair, req rank.Request) {
	t.Helper()
	normal, faulty := p.get(t)
	req.Workers = 1
	seq, err := rank.Sweep(normal, faulty, req)
	if err != nil {
		t.Fatalf("%s (Workers 1): %v", label, err)
	}
	req.Workers = 8
	par, err := rank.Sweep(normal, faulty, req)
	if err != nil {
		t.Fatalf("%s (Workers 8): %v", label, err)
	}
	assertTablesEqual(t, label, seq, par)
}

func assertTablesEqual(t *testing.T, label string, a, b *rank.Table) {
	t.Helper()
	if got, want := a.Render(), b.Render(); got != want {
		t.Fatalf("%s: rendered tables differ:\n%s\nvs\n%s", label, want, got)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row counts differ: %d vs %d", label, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Spec != rb.Spec || ra.Attr != rb.Attr || ra.BScore != rb.BScore {
			t.Fatalf("%s: row %d differs: %+v vs %+v", label, i, ra, rb)
		}
		if !reflect.DeepEqual(ra.TopProcesses, rb.TopProcesses) || !reflect.DeepEqual(ra.TopThreads, rb.TopThreads) {
			t.Fatalf("%s: row %d suspects differ", label, i)
		}
		assertReportsEqual(t, label, ra.Report, rb.Report)
	}
}

// TestSweepDeterminism covers the ranking-table experiments (Tables VI–IX):
// every sweep row, including its full drill-down report, must be identical
// for any intra-run worker count.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ranking sweeps are slow; run without -short")
	}
	sweepBoth(t, "tableVI (ompBug)", ilcsOmpPair, rank.Request{
		Specs: ompBugSpecs, CustomPatterns: ilcsCustom, Linkage: cluster.Ward,
	})
	sweepBoth(t, "tableVII (wrongSize)", ilcsWrongSizePair, rank.Request{
		Specs: mpiBugSpecs, CustomPatterns: ilcsCustom, Linkage: cluster.Ward,
	})
	sweepBoth(t, "tableIX (LULESH)", luleshPair, rank.Request{
		Specs: []string{"11.1K10", "01.1K10"}, Linkage: cluster.Ward,
	})
}

// TestTableVIIIDeterminism exercises the hardest workload (§IV-D wrong-op,
// 100-city ILCS) separately so -short can skip it.
func TestTableVIIIDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("hard ILCS instance is slow; run without -short")
	}
	sweepBoth(t, "tableVIII (wrongOp)", ilcsWrongOpPair, rank.Request{
		Specs: wrongOpSpecs, CustomPatterns: ilcsCustom, Linkage: cluster.Ward,
	})
}

// TestSweepParallelAndWorkers: the outer sweep-parallelism knob and the
// inner worker budget compose without changing any result.
func TestSweepParallelAndWorkers(t *testing.T) {
	normal, faulty := oddEvenSwapPair.get(t)
	req := rank.Request{
		Specs: []string{"11.mpiall.0K10", "11.mpi.0K10"}, Linkage: cluster.Ward,
	}
	req.Parallel, req.Workers = 1, 1
	seq, err := rank.Sweep(normal, faulty, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Parallel, req.Workers = 4, 8
	par, err := rank.Sweep(normal, faulty, req)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "parallel sweep × workers", seq, par)
}
