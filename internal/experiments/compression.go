package experiments

import (
	"bytes"
	"fmt"
	"io"

	"difftrace/internal/apps/lulesh"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// Compression reproduces the ParLOT claim DiffTrace builds on ([4], §I):
// the incremental on-the-fly compressor keeps whole-program tracing
// practical, with ratios exceeding 21,000 on loop-dominated traces and a
// few KB per thread of bandwidth.
//
// Three workloads are measured:
//
//   - a tight synthetic loop (the compressor's best case, where the paper's
//     headline ratios come from);
//   - the real odd/even-sort traces;
//   - the real LULESH-proxy traces (the "2.8 KB per thread" §V statistic).
func Compression(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	fmt.Fprintln(w, "ParLOT incremental compression ratios (vs 4-byte symbols)")

	// Synthetic loopy trace: 1M events of a 6-call loop body.
	var buf bytes.Buffer
	enc := parlot.NewEncoder(&buf)
	for i := 0; i < 1_000_000; i++ {
		enc.Encode(uint32(i % 6))
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	synth := enc.Ratio()
	o.metric("synthetic_loop_ratio", "%.0fx (paper: >21000x)", synth)
	fmt.Fprintf(w, "  synthetic 6-call loop, 1M events: %.0fx\n", synth)
	if synth < 21000 {
		o.fail("synthetic ratio %.0f below the ParLOT headline", synth)
	}

	// Odd/even traces.
	reg := trace.NewRegistry()
	tr := parlot.NewTracerWith(parlot.MainImage, reg)
	if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Tracer: tr}); err != nil {
		return nil, err
	}
	set := tr.Collect()
	events := set.TotalEvents()
	bytesOut := tr.CompressedBytes()
	ratio := float64(events*4) / float64(bytesOut)
	o.metric("oddeven_ratio", "%.1fx (%d events -> %d bytes)", ratio, events, bytesOut)
	fmt.Fprintf(w, "  odd/even 16 ranks: %d events -> %d bytes (%.1fx)\n", events, bytesOut, ratio)
	if ratio < 4 {
		o.fail("odd/even ratio %.1f implausibly low", ratio)
	}

	// LULESH proxy traces (per-thread KB, §V).
	reg2 := trace.NewRegistry()
	cfg, tr2 := luleshConfig(reg2, nil, 10, 11, 2)
	if _, err := lulesh.Run(cfg); err != nil {
		return nil, err
	}
	set2 := tr2.Collect()
	threads := len(set2.Traces)
	bytes2 := tr2.CompressedBytes()
	perThreadKB := float64(bytes2) / float64(threads) / 1024
	events2 := set2.TotalEvents()
	ratio2 := float64(events2*4) / float64(bytes2)
	o.metric("lulesh_ratio", "%.1fx", ratio2)
	o.metric("lulesh_kb_per_thread", "%.2f KB (paper: ~2.8 KB)", perThreadKB)
	fmt.Fprintf(w, "  LULESH proxy: %d events -> %d bytes (%.1fx), %.2f KB/thread\n",
		events2, bytes2, ratio2, perThreadKB)
	// The proxy's kernel diversity caps the ratio well below the synthetic
	// case; the §V-relevant claim is the low per-thread footprint.
	if ratio2 < 3 {
		o.fail("LULESH ratio %.1f implausibly low", ratio2)
	}
	if perThreadKB > 64 {
		o.fail("per-thread footprint %.1f KB too high for on-the-fly tracing", perThreadKB)
	}

	// Losslessness spot check: decode one compressed thread and compare.
	id := set2.IDs()[0]
	th := tr2.Thread(id)
	decoded, err := parlot.DecodeCompressed(th.Compressed(), id)
	if err != nil {
		return nil, err
	}
	if decoded.Len() != set2.Traces[id].Len() {
		o.fail("decode mismatch: %d vs %d events", decoded.Len(), set2.Traces[id].Len())
	}
	o.metric("lossless_check", "decoded %d events of %v, matches", decoded.Len(), id)
	return o, nil
}
