package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsPassShapeChecks runs every table/figure reproduction
// and asserts its paper-shape self-check holds — the repository's
// end-to-end evaluation gate.
func TestAllExperimentsPassShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight; skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			out, err := e.Run(&buf)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !out.Pass {
				t.Errorf("%s shape check failed: %s\noutput:\n%s", e.ID, out.Note, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no artifact output", e.ID)
			}
		})
	}
}

func TestGetAndAll(t *testing.T) {
	if len(All()) != 17 {
		t.Errorf("experiment count = %d, want 17", len(All()))
	}
	if _, ok := Get("tableII"); !ok {
		t.Error("tableII not found")
	}
	if _, ok := Get("bogus"); ok {
		t.Error("bogus experiment found")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestOutcomeHelpers(t *testing.T) {
	o := newOutcome()
	o.metric("k", "%d", 42)
	if !strings.Contains(o.Summary(), "PASS") || !strings.Contains(o.Summary(), "k = 42") {
		t.Errorf("summary = %q", o.Summary())
	}
	o.fail("first %s", "problem")
	o.fail("second")
	s := o.Summary()
	if !strings.Contains(s, "FAIL") || !strings.Contains(s, "first problem; second") {
		t.Errorf("summary = %q", s)
	}
}

// TestTableIIDeterministic pins that re-running the cheap experiments gives
// identical artifacts (fixed seeds, deterministic pipeline).
func TestTableIIDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if _, err := TableII(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("TableII output not deterministic")
	}
}

func TestQuietWriterWorks(t *testing.T) {
	// Experiments must tolerate io.Discard (the -quiet CLI path).
	if _, err := TableIV(io.Discard); err != nil {
		t.Fatal(err)
	}
}
