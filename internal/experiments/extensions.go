package experiments

import (
	"fmt"
	"io"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/classify"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/stat"
	"difftrace/internal/trace"
)

// ProgressDlBug is extension experiment X1 (§VI/VII future work: Prodometer
// incorporation): on the dlBug cascade — where the JSM_D ranking spreads
// over every truncated trace and STAT's stack classes lump rank 5 with all
// fourteen cascade victims — the NLR-based relative-progress measure ranks
// rank 5 least progressed, pointing straight at the root cause.
func ProgressDlBug(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	normal, _, err := runOddEven(reg, 16, nil)
	if err != nil {
		return nil, err
	}
	faulty, fres, err := runOddEven(reg, 16, dlBugPlan)
	if err != nil {
		return nil, err
	}
	if !fres.Deadlocked {
		o.fail("dlBug run did not deadlock")
	}

	// The STAT baseline first: one big stuck-in-MPI_Recv class.
	tree := stat.Build(faulty)
	fmt.Fprintln(w, "STAT view of the deadlocked run:")
	fmt.Fprint(w, tree.Render())
	classes := tree.Classes()
	o.metric("stat_classes", "%d", len(classes))
	if len(classes) > 0 {
		o.metric("stat_largest_class", "%d members @ %s",
			len(classes[0].Members), classes[0].Signature())
		if len(classes[0].Members) < 10 {
			o.fail("STAT should lump the cascade victims together")
		}
	}

	// The progress measure separates them.
	flt := filter.New(filter.MPIAll)
	pa := progress.Analyze(flt.ApplySet(normal), flt.ApplySet(faulty), 10)
	fmt.Fprintln(w, "\nrelative progress:")
	fmt.Fprint(w, pa.Render())
	least := pa.LeastProgressed(1)
	if len(least) != 1 {
		o.fail("no progress ranking produced")
		return o, nil
	}
	o.metric("least_progressed", "%s", least[0])
	o.metric("least_progress_score", "%.3f", pa.Tasks[0].Score)
	if least[0] != trace.TID(5, 0) {
		o.fail("least progressed = %v, want 5.0", least[0])
	}
	return o, nil
}

// classifySample runs one normal/faulty pair and extracts its feature
// vector under a fixed analysis configuration.
func classifySample(label string, seed int64, mk func(seed int64, plan *faults.Plan, tr *parlot.Tracer) error, plan *faults.Plan) (classify.Sample, error) {
	reg := trace.NewRegistry()
	collect := func(p *faults.Plan) (*trace.TraceSet, error) {
		tr := parlot.NewTracerWith(parlot.MainImage, reg)
		if err := mk(seed, p, tr); err != nil {
			return nil, err
		}
		return tr.Collect(), nil
	}
	normal, err := collect(nil)
	if err != nil {
		return classify.Sample{}, err
	}
	faulty, err := collect(plan)
	if err != nil {
		return classify.Sample{}, err
	}
	flt, err := filter.ParseSpec("11.0K10")
	if err != nil {
		return classify.Sample{}, err
	}
	rep, err := core.DiffRun(normal, faulty, core.Config{
		Filter: flt,
		Attr:   attr.Config{Kind: attr.Single, Freq: attr.Actual},
	})
	if err != nil {
		return classify.Sample{}, err
	}
	return classify.Sample{
		Label:  label,
		Vector: classify.Features(rep, normal, faulty, 10),
	}, nil
}

// ClassifyBugs is extension experiment X2 (§VII future work 3): systematic
// bug injection across the paper's bug classes, feature extraction from the
// lattice/NLR pipeline, and leave-one-out classification accuracy.
func ClassifyBugs(w io.Writer) (*Outcome, error) {
	o := newOutcome()

	runOdd := func(seed int64, plan *faults.Plan, tr *parlot.Tracer) error {
		_, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: seed, Plan: plan, Tracer: tr})
		return err
	}
	runIlcs := func(seed int64, plan *faults.Plan, tr *parlot.Tracer) error {
		_, err := ilcs.Run(ilcs.Config{
			Procs: 8, Workers: 4, Cities: 12, Seed: seed,
			StableRounds: 2, MaxRounds: 10, EvalsPerRound: 4,
			Plan: plan, Tracer: tr,
		})
		return err
	}

	var samples []classify.Sample
	add := func(s classify.Sample, err error) error {
		if err != nil {
			return err
		}
		samples = append(samples, s)
		return nil
	}
	// Four samples per class, varying both the seed and the injected site.
	for i := 0; i < 4; i++ {
		seed := int64(100 + i*17)
		target := 3 + 2*i // ranks 3,5,7,9
		if err := add(classifySample("swapBug", seed, runOdd, faults.NewPlan(faults.Fault{
			Kind: faults.SwapSendRecv, Process: target, Thread: -1, AfterIteration: 7,
		}))); err != nil {
			return nil, err
		}
		if err := add(classifySample("dlBug", seed, runOdd, faults.NewPlan(faults.Fault{
			Kind: faults.DeadlockStop, Process: target, Thread: -1, AfterIteration: 7,
		}))); err != nil {
			return nil, err
		}
		if err := add(classifySample("ompBug", seed, runIlcs, faults.NewPlan(faults.Fault{
			Kind: faults.OmitCritical, Process: (i*2 + 1) % 8, Thread: 1 + i%4,
		}))); err != nil {
			return nil, err
		}
		if err := add(classifySample("wrongSize", seed, runIlcs, faults.NewPlan(faults.Fault{
			Kind: faults.WrongCollectiveSize, Process: (i * 2) % 8, Thread: -1,
		}))); err != nil {
			return nil, err
		}
	}

	fmt.Fprintf(w, "systematic bug injection: %d labeled comparisons, 4 classes\n", len(samples))
	for _, s := range samples {
		fmt.Fprintf(w, "  %-10s %s\n", s.Label, s.Vector)
	}
	acc, preds, err := classify.LeaveOneOut(samples)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nleave-one-out accuracy: %.2f\n", acc)
	fmt.Fprint(w, classify.ConfusionMatrix(samples, preds))

	o.metric("samples", "%d", len(samples))
	o.metric("loo_accuracy", "%.2f", acc)
	if acc < 0.7 {
		o.fail("leave-one-out accuracy %.2f below 0.7 — features not separating bug classes", acc)
	}
	return o, nil
}
