package experiments

import (
	"fmt"
	"io"
	"strings"

	"difftrace/internal/attr"
	"difftrace/internal/core"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/trace"
)

// oddEvenFiltered returns the MPI-filtered 4-rank odd/even traces used by
// Table II/III/IV and Figures 3/4.
func oddEvenFiltered() (*trace.TraceSet, error) {
	reg := trace.NewRegistry()
	set, _, err := runOddEven(reg, 4, nil)
	if err != nil {
		return nil, err
	}
	return filter.New(filter.MPIAll).ApplySet(set), nil
}

// TableII prints the pre-processed traces of the 4-rank odd/even run side
// by side, as in Table II (after the MPI filter).
func TableII(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	set, err := oddEvenFiltered()
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Table II — pre-processed odd/even traces (MPI filter, 4 ranks)")
	fmt.Fprint(w, set.Dump(0))

	for p := 0; p < 4; p++ {
		calls := set.Traces[trace.TID(p, 0)].Names(set.Registry)
		if calls[0] != "MPI_Init" || calls[len(calls)-1] != "MPI_Finalize" {
			o.fail("T%d does not span MPI_Init..MPI_Finalize", p)
		}
	}
	interior := set.Traces[trace.TID(1, 0)].Len()
	edge := set.Traces[trace.TID(0, 0)].Len()
	o.metric("interior_trace_events", "%d", interior)
	o.metric("edge_trace_events", "%d", edge)
	if edge >= interior {
		o.fail("edge ranks should trace fewer exchanges than interior ranks")
	}
	return o, nil
}

// TableIII prints the NLR summarization of the same traces (Table III).
func TableIII(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	set, err := oddEvenFiltered()
	if err != nil {
		return nil, err
	}
	tbl := nlr.NewTable()
	sums := nlr.SummarizeSet(set, 10, tbl)
	fmt.Fprintln(w, "Table III — NLR of the odd/even traces (K=10)")
	for _, id := range set.IDs() {
		fmt.Fprintf(w, "T%d: %s\n", id.Process, strings.Join(nlr.Tokens(sums[id]), "  "))
	}
	for i := 0; i < tbl.Len(); i++ {
		fmt.Fprintf(w, "L%d = %s\n", i, tbl.Describe(i))
	}

	if tbl.Len() != 2 {
		o.fail("expected exactly 2 loop bodies, got %d", tbl.Len())
	}
	o.metric("loop_bodies", "%d", tbl.Len())
	for _, id := range set.IDs() {
		toks := nlr.Tokens(sums[id])
		if len(toks) != 5 {
			o.fail("T%d NLR has %d tokens, want 5", id.Process, len(toks))
		}
		o.metric(fmt.Sprintf("T%d", id.Process), "%s", strings.Join(toks, " "))
	}
	return o, nil
}

// oddEvenAttrs builds the Table IV attribute sets (single entries, noFreq).
func oddEvenAttrs() (map[string]fca.AttrSet, error) {
	set, err := oddEvenFiltered()
	if err != nil {
		return nil, err
	}
	tbl := nlr.NewTable()
	sums := nlr.SummarizeSet(set, 10, tbl)
	attrs := make(map[string]fca.AttrSet)
	cfg := attr.Config{Kind: attr.Single, Freq: attr.NoFreq}
	in := attr.NewInterner() // shared IDs → popcount fast path downstream
	for _, id := range set.IDs() {
		attrs[fmt.Sprintf("T%d", id.Process)] = attr.ExtractIn(in, sums[id], cfg)
	}
	return attrs, nil
}

// TableIV prints the formal context (Table IV).
func TableIV(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	attrs, err := oddEvenAttrs()
	if err != nil {
		return nil, err
	}
	ctx := fca.NewContext()
	for _, name := range []string{"T0", "T1", "T2", "T3"} {
		ctx.AddObject(name, attrs[name])
	}
	fmt.Fprintln(w, "Table IV — formal context of the odd/even traces")
	fmt.Fprint(w, ctx.CrossTable())

	o.metric("objects", "%d", len(ctx.Objects()))
	o.metric("attributes", "%d", ctx.Attributes().Len())
	if ctx.Attributes().Len() != 6 {
		o.fail("|M| = %d, want 6 (4 common calls + 2 loops)", ctx.Attributes().Len())
	}
	// Parity structure: T0/T2 share an intent, T1/T3 the other.
	if !ctx.Intent("T0").Equal(ctx.Intent("T2")) || !ctx.Intent("T1").Equal(ctx.Intent("T3")) {
		o.fail("parity classes broken")
	}
	if ctx.Intent("T0").Equal(ctx.Intent("T1")) {
		o.fail("even and odd traces should differ")
	}
	return o, nil
}

// Figure3 builds and renders the concept lattice (Figure 3).
func Figure3(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	attrs, err := oddEvenAttrs()
	if err != nil {
		return nil, err
	}
	l := fca.NewLattice()
	for _, name := range []string{"T0", "T1", "T2", "T3"} {
		l.AddObject(name, attrs[name])
	}
	fmt.Fprintln(w, "Figure 3 — concept lattice of the odd/even context")
	fmt.Fprint(w, l.Render())

	if err := l.Verify(); err != nil {
		o.fail("lattice invariant: %v", err)
	}
	o.metric("concepts", "%d", l.Size())
	o.metric("edges", "%d", len(l.Edges()))
	if l.Size() != 4 {
		o.fail("lattice has %d concepts, want 4 (top, two parities, bottom)", l.Size())
	}
	if top := l.Top(); len(top.Extent) != 4 || top.Intent.Len() != 4 {
		o.fail("top concept wrong: %s", top)
	}
	return o, nil
}

// Figure4 prints the pairwise JSM heatmap (Figure 4).
func Figure4(w io.Writer) (*Outcome, error) {
	o := newOutcome()
	attrs, err := oddEvenAttrs()
	if err != nil {
		return nil, err
	}
	j := jaccard.New(attrs)
	fmt.Fprintln(w, "Figure 4 — pairwise Jaccard similarity matrix")
	fmt.Fprint(w, j.String())
	fmt.Fprintln(w, "heatmap:")
	fmt.Fprint(w, j.Heatmap())

	same, _ := j.At("T0", "T2")
	cross, _ := j.At("T0", "T1")
	o.metric("same_parity_similarity", "%.3f", same)
	o.metric("cross_parity_similarity", "%.3f", cross)
	if same != 1 {
		o.fail("same-parity similarity = %f, want 1", same)
	}
	if cross >= same || cross <= 0 {
		o.fail("cross-parity similarity = %f", cross)
	}
	return o, nil
}

// swapOrDlDiff runs the §II-G experiment with the given fault and returns
// the report plus the diffNLR(5) view.
func swapOrDlDiff(plan interface{ String() string }, w io.Writer, title string) (*Outcome, *core.Report, error) {
	o := newOutcome()
	reg := trace.NewRegistry()
	normal, _, err := runOddEven(reg, 16, nil)
	if err != nil {
		return nil, nil, err
	}
	var faulty *trace.TraceSet
	switch plan {
	case swapBugPlan:
		faulty, _, err = runOddEven(reg, 16, swapBugPlan)
	case dlBugPlan:
		faulty, _, err = runOddEven(reg, 16, dlBugPlan)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown plan")
	}
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
	rep, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		return nil, nil, err
	}
	top := rep.Threads.Suspects[0].Name
	o.metric("top_suspect", "%s", top)
	o.metric("bscore", "%.3f", rep.Threads.BScore)
	d, err := rep.DiffNLR(rep.Threads, "5.0")
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintln(w, title)
	fmt.Fprint(w, d.Render(false))
	o.metric("verdict", "%s", d.Verdict())
	return o, rep, nil
}

// Figure5 reproduces diffNLR(5) under swapBug.
func Figure5(w io.Writer) (*Outcome, error) {
	o, rep, err := swapOrDlDiff(swapBugPlan, w, "Figure 5 — diffNLR(5) under swapBug (16 ranks)")
	if err != nil {
		return nil, err
	}
	// §II-G: trace 5's similarity row changes the most.
	if top := rep.Threads.Suspects[0].Name; top != "5.0" {
		o.fail("top suspect = %s, want 5.0", top)
	}
	d, err := rep.DiffNLR(rep.Threads, "5.0")
	if err != nil {
		return nil, err
	}
	// Shape: both runs reach MPI_Finalize; the faulty run has two loop
	// tokens where the normal run has one.
	if !strings.Contains(d.Verdict(), "both traces reach MPI_Finalize") {
		o.fail("swapBug verdict = %q", d.Verdict())
	}
	nLoops := countLoopTokens(d.Normal)
	fLoops := countLoopTokens(d.Faulty)
	o.metric("normal_loop_tokens", "%d", nLoops)
	o.metric("faulty_loop_tokens", "%d", fLoops)
	if nLoops != 1 || fLoops != 2 {
		o.fail("loop token counts %d/%d, want 1/2", nLoops, fLoops)
	}
	return o, nil
}

// Figure6 reproduces diffNLR(5) under dlBug.
func Figure6(w io.Writer) (*Outcome, error) {
	o, rep, err := swapOrDlDiff(dlBugPlan, w, "Figure 6 — diffNLR(5) under dlBug (16 ranks)")
	if err != nil {
		return nil, err
	}
	// The abort truncates *every* trace (each rank stalls at a different
	// phase of the cascade), so unlike swapBug the JSM ranking need not
	// single out trace 5 — the paper's Figure 6 claim is about what
	// diffNLR(5) shows: seven loop iterations, then a call that never
	// returned, and no MPI_Finalize.
	found := false
	for _, s := range rep.Threads.Suspects {
		if s.Name == "5.0" && s.Score > 0 {
			found = true
			break
		}
	}
	if !found {
		o.fail("trace 5.0 not among the changed traces")
	}
	d, err := rep.DiffNLR(rep.Threads, "5.0")
	if err != nil {
		return nil, err
	}
	if !strings.Contains(d.Verdict(), "never reached MPI_Finalize") {
		o.fail("dlBug verdict = %q", d.Verdict())
	}
	if !strings.Contains(strings.Join(d.Faulty, " "), "^7") {
		o.fail("faulty trace should stop after seven iterations: %v", d.Faulty)
	}
	return o, nil
}

func countLoopTokens(tokens []string) int {
	n := 0
	for _, t := range tokens {
		if strings.HasPrefix(t, "L") && strings.Contains(t, "^") {
			n++
		}
	}
	return n
}
