package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"difftrace/internal/resilience"
)

func openClean(t *testing.T) *Store {
	t.Helper()
	s, rep, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store not clean: %s", rep.Summary())
	}
	return s
}

func TestKeyAndPairKey(t *testing.T) {
	if Key([]byte("hello")) != Key([]byte("hello")) {
		t.Fatal("Key not deterministic")
	}
	if Key([]byte("hello")) == Key([]byte("hellp")) {
		t.Fatal("Key collided on distinct input")
	}
	if len(Key(nil)) != 64 {
		t.Fatalf("Key length = %d, want 64 hex chars", len(Key(nil)))
	}
	// Length prefixing: concatenation-equal part lists must not collide.
	if PairKey("ab", "c") == PairKey("a", "bc") {
		t.Fatal("PairKey collided across part boundaries")
	}
	if PairKey("x", "y") != PairKey("x", "y") {
		t.Fatal("PairKey not deterministic")
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openClean(t)
	key := Key([]byte("trace-bytes"))
	payload := []byte("rendered report\nwith lines\n")
	if err := s.Put(key, "report", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key, "report", nil)
	if err != nil || !ok {
		t.Fatalf("Get = ok:%v err:%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if !s.Has(key, "report") {
		t.Fatal("Has = false after Put")
	}
	if s.Has(key, "manifest") {
		t.Fatal("Has = true for never-written kind")
	}
	if _, ok, _ := s.Get(key, "manifest", nil); ok {
		t.Fatal("Get hit on never-written kind")
	}
	// Empty payloads are valid artifacts.
	if err := s.Put(key, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err = s.Get(key, "empty", nil)
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty artifact roundtrip: %q ok:%v err:%v", got, ok, err)
	}
}

func TestPutOverwriteIsIdempotent(t *testing.T) {
	s := openClean(t)
	for i := 0; i < 3; i++ {
		if err := s.Put("k", "report", []byte("same")); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := s.Get("k", "report", nil)
	if err != nil || !ok || string(got) != "same" {
		t.Fatalf("after re-puts: %q ok:%v err:%v", got, ok, err)
	}
}

// corruptArtifact flips one payload byte of an on-disk artifact.
func corruptArtifact(t *testing.T, s *Store, key, kind string) string {
	t.Helper()
	name := fileName(key, kind)
	path := filepath.Join(s.objectsDir(), name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

func TestGetQuarantinesCorruptArtifact(t *testing.T) {
	s := openClean(t)
	if err := s.Put("k", "report", []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	name := corruptArtifact(t, s, "k", "report")

	rep := resilience.NewIngestReport(true)
	got, ok, err := s.Get("k", "report", rep)
	if err != nil {
		t.Fatal(err)
	}
	if ok || got != nil {
		t.Fatalf("corrupt artifact was served: %q", got)
	}
	if rep.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", rep.Quarantined())
	}
	rec := rep.Record(name)
	if rec == nil || rec.Reasons[resilience.CorruptStream] == 0 {
		t.Fatalf("quarantine reason not corrupt-stream: %+v", rec)
	}
	q, err := s.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0] != name {
		t.Fatalf("quarantine dir = %v, want [%s]", q, name)
	}
	// The miss is recoverable: a fresh Put re-materializes the artifact.
	if err := s.Put("k", "report", []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k", "report", nil); !ok {
		t.Fatal("re-put after quarantine still missing")
	}
}

func TestOpenRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", "report", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("cut", "report", []byte("will be truncated")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("flip", "report", []byte("will be corrupted")); err != nil {
		t.Fatal(err)
	}
	// Truncate one artifact mid-payload (simulated torn write).
	cutPath := filepath.Join(s.objectsDir(), fileName("cut", "report"))
	raw, err := os.ReadFile(cutPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cutPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	corruptArtifact(t, s, "flip", "report")
	// Leave a stale temp file (simulated crash between write and rename).
	if err := os.WriteFile(filepath.Join(s.tmpDir(), "put-stale"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("recovery over damaged store reported clean")
	}
	if rep.Quarantined() != 2 {
		t.Fatalf("Quarantined() = %d, want 2\n%s", rep.Quarantined(), rep.Render())
	}
	cutRec := rep.Record(fileName("cut", "report"))
	if cutRec == nil || cutRec.Reasons[resilience.TruncatedStream] == 0 {
		t.Errorf("truncated artifact reason: %+v", cutRec)
	}
	flipRec := rep.Record(fileName("flip", "report"))
	if flipRec == nil || flipRec.Reasons[resilience.CorruptStream] == 0 {
		t.Errorf("corrupt artifact reason: %+v", flipRec)
	}
	if rep.EventsKept != 1 {
		t.Errorf("EventsKept = %d, want 1 (the intact artifact)", rep.EventsKept)
	}
	// The intact artifact survived, damaged ones read as misses.
	if _, ok, _ := s2.Get("good", "report", nil); !ok {
		t.Error("intact artifact lost by recovery")
	}
	if _, ok, _ := s2.Get("cut", "report", nil); ok {
		t.Error("truncated artifact served after recovery")
	}
	if _, ok, _ := s2.Get("flip", "report", nil); ok {
		t.Error("corrupt artifact served after recovery")
	}
	// Stale temp cleaned.
	tmps, err := os.ReadDir(s2.tmpDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("stale temp files survived recovery: %d", len(tmps))
	}
	q, err := s2.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 {
		t.Errorf("quarantine dir has %d files, want 2: %v", len(q), q)
	}
}

func TestOpenLeavesForeignFilesAlone(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(s.objectsDir(), "README.txt")
	if err := os.WriteFile(foreign, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("foreign file tripped the scan: %s", rep.Summary())
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file disturbed: %v", err)
	}
}

func TestSingleFlightDedup(t *testing.T) {
	s := openClean(t)
	const waiters = 16
	var calls atomic.Int64
	var sharedCount atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := s.Do("pair-key", func() (any, error) {
				calls.Add(1)
				<-release
				return "result", nil
			})
			if err != nil {
				t.Error(err)
			}
			if val != "result" {
				t.Errorf("val = %v", val)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait until the leader is inside fn, so every follower joins its
	// flight rather than starting a fresh one.
	for calls.Load() == 0 {
	}
	// Followers must be registered before release; give them a moment by
	// blocking on the leader's flight from this goroutine too.
	go func() {
		s.Do("other-key", func() (any, error) { return nil, nil })
		close(release)
	}()
	wg.Wait()
	if got := calls.Load(); got < 1 || got > int64(waiters) {
		t.Fatalf("fn ran %d times", got)
	}
	// At least the followers that joined before the leader finished must
	// have shared; the leader itself never does.
	if sharedCount.Load() >= waiters {
		t.Fatalf("every call claims shared — no leader?")
	}
	if calls.Load()+sharedCount.Load() != waiters {
		t.Fatalf("calls %d + shared %d != %d waiters", calls.Load(), sharedCount.Load(), waiters)
	}
}

func TestSingleFlightErrorIsShared(t *testing.T) {
	s := openClean(t)
	wantErr := os.ErrDeadlineExceeded
	started := make(chan struct{})
	release := make(chan struct{})
	var followerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-started
		// Launch the follower against the in-flight leader, then release
		// the leader; the follower either joins its flight (sees wantErr)
		// or races past it and runs fresh (nil). Both are legal; hanging
		// is not — wg.Wait() below would catch it.
		done := make(chan struct{})
		go func() {
			_, _, followerErr = s.Do("k", func() (any, error) { return nil, nil })
			close(done)
		}()
		close(release)
		<-done
	}()
	_, shared, err := s.Do("k", func() (any, error) {
		close(started)
		<-release
		return nil, wantErr
	})
	wg.Wait()
	if shared || err != wantErr {
		t.Fatalf("leader: shared:%v err:%v", shared, err)
	}
	if followerErr != nil && followerErr != wantErr {
		t.Fatalf("follower err = %v", followerErr)
	}
	// Errors are not cached beyond the flight: a fresh Do runs again.
	if _, shared, err := s.Do("k", func() (any, error) { return nil, nil }); shared || err != nil {
		t.Fatalf("post-error Do: shared:%v err:%v", shared, err)
	}
}

func TestSingleFlightPanicReleasesWaiters(t *testing.T) {
	s := openClean(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		s.Do("k", func() (any, error) { panic("boom") })
	}()
	// The flight map must be clean: a fresh Do on the same key runs.
	val, shared, err := s.Do("k", func() (any, error) { return 42, nil })
	if err != nil || shared || val != 42 {
		t.Fatalf("post-panic Do = %v/%v/%v", val, shared, err)
	}
}

func TestNameValidation(t *testing.T) {
	s := openClean(t)
	bad := []struct{ key, kind string }{
		{"", "report"},
		{"k", ""},
		{"../escape", "report"},
		{"k", "../../etc/passwd"},
		{"a/b", "report"},
		{"k", "re\\port"},
	}
	for _, tc := range bad {
		if err := s.Put(tc.key, tc.kind, []byte("x")); err == nil {
			t.Errorf("Put(%q, %q) accepted", tc.key, tc.kind)
		}
		if _, _, err := s.Get(tc.key, tc.kind, nil); err == nil {
			t.Errorf("Get(%q, %q) accepted", tc.key, tc.kind)
		}
		if s.Has(tc.key, tc.kind) {
			t.Errorf("Has(%q, %q) = true", tc.key, tc.kind)
		}
	}
}

func TestConcurrentPutGetRace(t *testing.T) {
	s := openClean(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := Key([]byte{byte(i % 4)})
			for j := 0; j < 50; j++ {
				if err := s.Put(key, "report", []byte(strings.Repeat("x", 100))); err != nil {
					t.Error(err)
					return
				}
				if got, ok, err := s.Get(key, "report", nil); err != nil {
					t.Error(err)
					return
				} else if ok && len(got) != 100 {
					t.Errorf("torn read: %d bytes", len(got))
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
