package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Sidecars are small operational blobs that live beside the
// content-addressed objects: the flight-recorder dump a draining daemon
// leaves behind, for example. They share writeArtifact's atomic
// temp+fsync+rename discipline and the self-verifying DTSTORE1 header, so
// a crash mid-dump can never leave a half-written file that parses — but
// they are keyed by plain name, may be overwritten freely, and are never
// part of the artifact cache contract.

// sidecarExt distinguishes sidecar files from cache artifacts in root/.
const sidecarExt = ".sidecar"

// PutSidecar atomically stores payload under the given name.
func (s *Store) PutSidecar(name string, payload []byte) error {
	if err := checkSidecarName(name); err != nil {
		return err
	}
	final := filepath.Join(s.root, name+sidecarExt)
	if err := s.writeArtifact(final, payload); err != nil {
		return fmt.Errorf("store: put sidecar %s: %w", name, err)
	}
	return nil
}

// GetSidecar returns the named sidecar's payload; ok is false when it does
// not exist. A sidecar that fails verification is quarantined (corrupt
// operational state is never served) and reads as absent.
func (s *Store) GetSidecar(name string) ([]byte, bool, error) {
	if err := checkSidecarName(name); err != nil {
		return nil, false, err
	}
	path := filepath.Join(s.root, name+sidecarExt)
	payload, verr := readArtifact(path)
	if verr == nil {
		return payload, true, nil
	}
	if errors.Is(verr, os.ErrNotExist) {
		return nil, false, nil
	}
	if errors.Is(verr, errCorrupt) || errors.Is(verr, errTruncated) {
		s.quarantineFile(path, name+sidecarExt, verr, nil)
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("store: get sidecar %s: %w", name, verr)
}

// checkSidecarName rejects names that could escape the store root or
// collide with the store's own directories.
func checkSidecarName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty sidecar name")
	}
	if strings.ContainsAny(name, "/\\\x00") || strings.Contains(name, "..") {
		return fmt.Errorf("store: invalid sidecar name %q", name)
	}
	return nil
}
