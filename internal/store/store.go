// Package store is difftraced's crash-safe artifact store. Artifacts —
// rendered diff reports, scrubbed observability manifests, ingest
// summaries — are content-addressed: the key is the SHA-256 of the raw
// input bytes (or, for pair-level artifacts, of the canonical pair
// descriptor), so identical submissions dedup to the same cache entry and
// a changed input can never alias a stale artifact.
//
// Crash safety rests on three properties:
//
//  1. Atomic visibility. Writes land in a same-directory temp file and
//     are renamed into place, so a reader (or a restarted daemon) only
//     ever observes absent or complete artifacts — never a half-written
//     one under its final name.
//  2. Self-verifying artifacts. Every file carries a header with the
//     payload length and SHA-256, verified on every read. A torn write
//     that survives a crash (power loss between write and rename is
//     invisible; rename-then-torn-page is not) is detected, not served.
//  3. Recovery scan. Open walks the object directory, verifies every
//     artifact, moves failures into quarantine/ and accounts for them on
//     a resilience.IngestReport — the same Keep/Drop/Quarantine ledger
//     the trace readers use — so an operator sees exactly what a crash
//     cost, and a corrupt artifact can be inspected but never served.
//
// The store also provides single-flight run dedup: concurrent submissions
// of the same key share one in-flight computation instead of racing to
// produce (identical) artifacts.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"difftrace/internal/resilience"
)

// magic is the artifact header's first line. The trailing version digit
// gates future format changes: an unknown magic quarantines the file
// rather than misparsing it.
const magic = "DTSTORE1"

// artExt marks artifact files; everything else in objects/ is foreign and
// left alone by the recovery scan.
const artExt = ".art"

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	root string

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress single-flight computation.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Key returns the content address of raw input bytes: lowercase-hex
// SHA-256.
func Key(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// PairKey derives one content address from an ordered list of parts
// (e.g. normal-trace hash, faulty-trace hash, filter spec, attribute
// config). Parts are length-prefixed before hashing so no two distinct
// lists collide by concatenation.
func PairKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Open opens (creating if needed) a store rooted at dir and runs the
// recovery scan: leftover temp files from interrupted writes are deleted,
// and every artifact in objects/ is checksum-verified — failures move to
// quarantine/ and are recorded on the returned IngestReport with the
// reader vocabulary (TruncatedStream for short/headerless files,
// CorruptStream for checksum mismatches). The report is never nil; a
// clean store returns report.Clean() == true.
func Open(dir string) (*Store, *resilience.IngestReport, error) {
	s := &Store{root: dir, flights: make(map[string]*flight)}
	for _, sub := range []string{s.objectsDir(), s.quarantineDir(), s.tmpDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	rep := resilience.NewIngestReport(true)

	// Interrupted writes only ever live in tmp/: they are garbage by
	// construction (the rename never happened), so recovery deletes them.
	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: scan tmp: %w", err)
	}
	for _, e := range tmps {
		if !e.IsDir() {
			os.Remove(filepath.Join(s.tmpDir(), e.Name()))
		}
	}

	objs, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: scan objects: %w", err)
	}
	for _, e := range objs {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, artExt) {
			continue
		}
		path := filepath.Join(s.objectsDir(), name)
		if _, verr := readArtifact(path); verr != nil {
			s.quarantineFile(path, name, verr, rep)
			continue
		}
		rep.Keep(1)
	}
	return s, rep, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectsDir() string    { return filepath.Join(s.root, "objects") }
func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }
func (s *Store) tmpDir() string        { return filepath.Join(s.root, "tmp") }

// fileName maps (key, kind) to the artifact file name. Kind is a short
// label like "report" or "manifest"; it must not contain path
// separators.
func fileName(key, kind string) string {
	return key + "-" + kind + artExt
}

// errCorrupt and errTruncated classify verification failures so the scan
// can pick the matching resilience reason.
var (
	errCorrupt   = errors.New("checksum mismatch")
	errTruncated = errors.New("truncated artifact")
)

// writeArtifact serializes header+payload into w's final path atomically:
// temp file in tmp/ (same filesystem), then rename.
func (s *Store) writeArtifact(finalPath string, payload []byte) error {
	sum := sha256.Sum256(payload)
	tmp, err := os.CreateTemp(s.tmpDir(), "put-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	header := magic + "\n" + hex.EncodeToString(sum[:]) + "\n" + strconv.Itoa(len(payload)) + "\n"
	_, werr := tmp.WriteString(header)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	if err := os.Rename(tmpName, finalPath); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// readArtifact verifies and returns an artifact's payload.
func readArtifact(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(string(raw), magic+"\n")
	if !ok {
		return nil, fmt.Errorf("%w: bad magic", errTruncated)
	}
	sumHex, rest, ok := strings.Cut(rest, "\n")
	if !ok {
		return nil, fmt.Errorf("%w: missing checksum line", errTruncated)
	}
	lenStr, payload, ok := strings.Cut(rest, "\n")
	if !ok {
		return nil, fmt.Errorf("%w: missing length line", errTruncated)
	}
	want, err := strconv.Atoi(lenStr)
	if err != nil || want < 0 {
		return nil, fmt.Errorf("%w: bad length %q", errCorrupt, lenStr)
	}
	if len(payload) < want {
		return nil, fmt.Errorf("%w: %d of %d payload bytes", errTruncated, len(payload), want)
	}
	if len(payload) > want {
		return nil, fmt.Errorf("%w: %d bytes past declared length", errCorrupt, len(payload)-want)
	}
	sum := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, errCorrupt
	}
	return []byte(payload), nil
}

// quarantineFile moves a failed artifact aside and accounts for it. The
// move is best-effort: if the rename fails (e.g. the file vanished) the
// accounting still records the failure.
func (s *Store) quarantineFile(path, id string, verr error, rep *resilience.IngestReport) {
	reason := resilience.CorruptStream
	if errors.Is(verr, errTruncated) {
		reason = resilience.TruncatedStream
	}
	os.Rename(path, filepath.Join(s.quarantineDir(), id))
	if rep != nil {
		rep.Quarantine(id, reason)
	}
}

// Put stores payload under (key, kind), atomically. Re-putting the same
// pair overwrites (the content address makes the payload identical in
// practice, so this is idempotent).
func (s *Store) Put(key, kind string, payload []byte) error {
	if err := checkName(key, kind); err != nil {
		return err
	}
	final := filepath.Join(s.objectsDir(), fileName(key, kind))
	if err := s.writeArtifact(final, payload); err != nil {
		return fmt.Errorf("store: put %s-%s: %w", key, kind, err)
	}
	return nil
}

// Get returns the payload stored under (key, kind). ok reports whether a
// valid artifact was found. An artifact that fails verification is moved
// to quarantine — corrupt data is never served — and reported as a miss
// so the caller recomputes; the optional report (may be nil) receives the
// quarantine accounting.
func (s *Store) Get(key, kind string, rep *resilience.IngestReport) (payload []byte, ok bool, err error) {
	if err := checkName(key, kind); err != nil {
		return nil, false, err
	}
	name := fileName(key, kind)
	path := filepath.Join(s.objectsDir(), name)
	payload, verr := readArtifact(path)
	if verr == nil {
		return payload, true, nil
	}
	if errors.Is(verr, os.ErrNotExist) {
		return nil, false, nil
	}
	if errors.Is(verr, errCorrupt) || errors.Is(verr, errTruncated) {
		s.quarantineFile(path, name, verr, rep)
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("store: get %s-%s: %w", key, kind, verr)
}

// Has reports whether a valid artifact exists under (key, kind) without
// returning its payload (the artifact is still fully verified; a corrupt
// one reads as absent but is left in place for Get to quarantine).
func (s *Store) Has(key, kind string) bool {
	if checkName(key, kind) != nil {
		return false
	}
	_, err := readArtifact(filepath.Join(s.objectsDir(), fileName(key, kind)))
	return err == nil
}

// Quarantined lists the file names currently in quarantine/, sorted.
func (s *Store) Quarantined() ([]string, error) {
	ents, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return nil, fmt.Errorf("store: list quarantine: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// Do runs fn under single-flight dedup for key: if another Do with the
// same key is already in flight, the call blocks and returns that
// flight's result with shared == true instead of running fn again.
// Results are not cached beyond the flight — persistence is Put's job —
// so a failed computation can be retried immediately.
func (s *Store) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	s.mu.Lock()
	if f, inFlight := s.flights[key]; inFlight {
		s.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	func() {
		defer func() {
			// A panicking fn must not strand waiters: record it as an
			// error, release the flight, and re-raise for the caller's
			// own panic discipline to handle.
			if r := recover(); r != nil {
				f.err = fmt.Errorf("store: in-flight computation panicked: %v", r)
				s.finish(key, f)
				//lint:allow panicdiscipline re-raising the leader's own panic after releasing waiters; swallowing it here would hide the fault from the caller's Guard
				panic(r)
			}
		}()
		f.val, f.err = fn()
	}()
	s.finish(key, f)
	return f.val, false, f.err
}

func (s *Store) finish(key string, f *flight) {
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
}

// checkName rejects keys/kinds that could escape the objects directory
// or collide with the artifact naming scheme.
func checkName(key, kind string) error {
	if key == "" || kind == "" {
		return fmt.Errorf("store: empty key or kind")
	}
	for _, part := range []string{key, kind} {
		if strings.ContainsAny(part, "/\\\x00") || strings.Contains(part, "..") {
			return fmt.Errorf("store: invalid name %q", part)
		}
	}
	return nil
}
