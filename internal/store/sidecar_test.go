package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSidecarRoundTrip(t *testing.T) {
	s, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"records":[]}`)
	if err := s.PutSidecar("flight", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetSidecar("flight")
	if err != nil || !ok {
		t.Fatalf("GetSidecar = %v, ok=%v", err, ok)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}

	// Overwrite is allowed — sidecars are operational state, not cache.
	next := []byte(`{"records":[{"job":"x"}]}`)
	if err := s.PutSidecar("flight", next); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.GetSidecar("flight")
	if !ok || !bytes.Equal(got, next) {
		t.Fatalf("overwrite not visible: %q", got)
	}
}

func TestSidecarMissing(t *testing.T) {
	s, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetSidecar("absent"); ok || err != nil {
		t.Fatalf("absent sidecar: ok=%v err=%v", ok, err)
	}
}

// TestSidecarCorruptQuarantined: a torn dump must never be served — it
// reads as absent and lands in quarantine/.
func TestSidecarCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSidecar("flight", []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "flight"+sidecarExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.GetSidecar("flight"); ok || err != nil {
		t.Fatalf("corrupt sidecar served: ok=%v err=%v", ok, err)
	}
	q, err := s.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range q {
		if name == "flight"+sidecarExt {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt sidecar not quarantined; quarantine has %v", q)
	}
	// Absent after quarantine, and a fresh Put works again.
	if _, ok, _ := s.GetSidecar("flight"); ok {
		t.Fatal("quarantined sidecar still readable")
	}
	if err := s.PutSidecar("flight", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestSidecarNameValidation(t *testing.T) {
	s, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", `a\b`, "..", "x..y", "a\x00b"} {
		if err := s.PutSidecar(bad, []byte("p")); err == nil {
			t.Errorf("PutSidecar(%q) accepted", bad)
		}
		if _, _, err := s.GetSidecar(bad); err == nil {
			t.Errorf("GetSidecar(%q) accepted", bad)
		}
	}
}
