// Package synth generates parameterized synthetic call traces: loop nests
// of configurable depth, body size, iteration counts, noise, and
// truncation. The generators drive controlled studies that real
// applications cannot isolate — the Θ(K²N) NLR scaling claim of §III-A,
// compression-ratio curves as a function of loop regularity, and
// fault-shape unit tests with exactly known ground truth.
package synth

import (
	"fmt"
	"math/rand" //lint:allow wallclock seeded from Config.Seed only — synthetic trace sets are a pure function of the config

	"difftrace/internal/trace"
)

// LoopSpec describes one (possibly nested) loop to synthesize.
type LoopSpec struct {
	// Body is the number of distinct calls in the loop body at this level.
	Body int
	// Iterations repeats the body (and any nested loop).
	Iterations int
	// Nested, if non-nil, is emitted after the body calls on every
	// iteration.
	Nested *LoopSpec
}

// Calls returns the expanded number of calls the spec emits.
func (s *LoopSpec) Calls() int {
	if s == nil {
		return 0
	}
	per := s.Body + s.Nested.Calls()
	return s.Iterations * per
}

// Config parameterizes one synthetic trace.
type Config struct {
	// Prologue and Epilogue are distinct one-off calls around the loops.
	Prologue, Epilogue int
	// Loops are emitted in order.
	Loops []LoopSpec
	// NoiseRate inserts a uniformly random call (from a pool of NoisePool
	// names) after each emitted call with this probability, breaking
	// repetition — the knob for regularity studies.
	NoiseRate float64
	NoisePool int
	// TruncateAfter cuts the trace after this many calls (0 = no cut) and
	// marks it truncated — a synthetic hang.
	TruncateAfter int
	Seed          int64
}

// Generate builds the trace into set under the given thread ID, returning
// the trace. Names are deterministic for a given config.
func Generate(set *trace.TraceSet, id trace.ThreadID, cfg Config) *trace.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := set.Get(id)
	emitted := 0
	cut := false

	emit := func(name string) {
		if cut {
			return
		}
		if cfg.TruncateAfter > 0 && emitted >= cfg.TruncateAfter {
			tr.Truncated = true
			cut = true
			return
		}
		tr.Append(set.Registry.ID(name), trace.Enter)
		emitted++
		if cfg.NoiseRate > 0 && cfg.NoisePool > 0 && rng.Float64() < cfg.NoiseRate {
			tr.Append(set.Registry.ID(fmt.Sprintf("noise_%d", rng.Intn(cfg.NoisePool))), trace.Enter)
			emitted++
		}
	}

	for i := 0; i < cfg.Prologue; i++ {
		emit(fmt.Sprintf("pro_%d", i))
	}
	var emitLoop func(prefix string, s *LoopSpec)
	emitLoop = func(prefix string, s *LoopSpec) {
		if s == nil {
			return
		}
		for it := 0; it < s.Iterations; it++ {
			for b := 0; b < s.Body; b++ {
				emit(fmt.Sprintf("%s_body_%d", prefix, b))
			}
			emitLoop(prefix+"_n", s.Nested)
		}
	}
	for li := range cfg.Loops {
		emitLoop(fmt.Sprintf("loop%d", li), &cfg.Loops[li])
	}
	for i := 0; i < cfg.Epilogue; i++ {
		emit(fmt.Sprintf("epi_%d", i))
	}
	return tr
}

// Tokens is a convenience: generate into a throwaway set and return the
// call-name sequence.
func Tokens(cfg Config) []string {
	set := trace.NewTraceSet()
	tr := Generate(set, trace.TID(0, 0), cfg)
	return tr.Names(set.Registry)
}

// Population generates n near-identical traces (ranks 0..n-1) plus an
// optional deviant rank whose loop iterations are scaled by deviantScale —
// ground-truth input for outlier-detection studies.
func Population(n, deviant int, deviantScale float64, base Config) *trace.TraceSet {
	set := trace.NewTraceSet()
	for p := 0; p < n; p++ {
		cfg := base
		cfg.Seed = base.Seed + int64(p)
		if p == deviant {
			cfg.Loops = append([]LoopSpec(nil), base.Loops...)
			for i := range cfg.Loops {
				it := int(float64(cfg.Loops[i].Iterations) * deviantScale)
				if it < 1 {
					it = 1
				}
				cfg.Loops[i].Iterations = it
			}
		}
		Generate(set, trace.TID(p, 0), cfg)
	}
	return set
}
