package synth

import (
	"bytes"
	"strings"
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/fca"
	"difftrace/internal/jaccard"
	"difftrace/internal/nlr"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func TestCallsArithmetic(t *testing.T) {
	s := &LoopSpec{Body: 2, Iterations: 3, Nested: &LoopSpec{Body: 1, Iterations: 4}}
	// per outer iteration: 2 + 4 = 6; times 3 = 18.
	if got := s.Calls(); got != 18 {
		t.Errorf("Calls = %d", got)
	}
	if (*LoopSpec)(nil).Calls() != 0 {
		t.Error("nil spec should emit 0 calls")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{
		Prologue: 2, Epilogue: 1,
		Loops: []LoopSpec{{Body: 3, Iterations: 5}},
	}
	toks := Tokens(cfg)
	want := 2 + 3*5 + 1
	if len(toks) != want {
		t.Fatalf("tokens = %d, want %d", len(toks), want)
	}
	if toks[0] != "pro_0" || toks[len(toks)-1] != "epi_0" {
		t.Errorf("ends = %s .. %s", toks[0], toks[len(toks)-1])
	}
	// Deterministic for a fixed config.
	if strings.Join(toks, " ") != strings.Join(Tokens(cfg), " ") {
		t.Error("generation not deterministic")
	}
}

func TestNLRRecoversGroundTruth(t *testing.T) {
	// A clean nested loop must summarize to a single outer-loop token with
	// the configured iteration count.
	cfg := Config{Loops: []LoopSpec{{
		Body: 2, Iterations: 6,
		Nested: &LoopSpec{Body: 1, Iterations: 4},
	}}}
	toks := Tokens(cfg)
	elems := nlr.Summarize(toks, 10, nlr.NewTable())
	if len(elems) != 1 || elems[0].Loop == nil || elems[0].Loop.Count != 6 {
		t.Fatalf("NLR = %v", nlr.Tokens(elems))
	}
}

func TestNoiseBreaksCompression(t *testing.T) {
	base := Config{Loops: []LoopSpec{{Body: 4, Iterations: 100}}, Seed: 3}
	noisy := base
	noisy.NoiseRate = 0.3
	noisy.NoisePool = 20

	compress := func(cfg Config) float64 {
		set := trace.NewTraceSet()
		tr := Generate(set, trace.TID(0, 0), cfg)
		var buf bytes.Buffer
		enc := parlot.NewEncoder(&buf)
		for _, e := range tr.Events {
			enc.Encode(e.Func)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		return enc.Ratio()
	}
	clean := compress(base)
	dirty := compress(noisy)
	if clean <= dirty*2 {
		t.Errorf("noise should hurt the compressor: clean %.1f vs noisy %.1f", clean, dirty)
	}
}

func TestTruncation(t *testing.T) {
	cfg := Config{Loops: []LoopSpec{{Body: 2, Iterations: 50}}, TruncateAfter: 13}
	set := trace.NewTraceSet()
	tr := Generate(set, trace.TID(0, 0), cfg)
	if !tr.Truncated || tr.Len() != 13 {
		t.Errorf("truncated trace: %d events, flag=%v", tr.Len(), tr.Truncated)
	}
}

func TestPopulationDeviantDetectable(t *testing.T) {
	base := Config{
		Prologue: 2, Epilogue: 1,
		Loops: []LoopSpec{{Body: 3, Iterations: 20}},
	}
	set := Population(8, 5, 0.25, base) // rank 5 loops a quarter as much
	// The actual-frequency JSM flags the deviant.
	table := nlr.NewTable()
	sums := nlr.SummarizeSet(set, 10, table)
	attrs := map[string]fca.AttrSet{}
	for id, elems := range sums {
		attrs[id.String()] = attr.Extract(elems, attr.Config{Kind: attr.Single, Freq: attr.Actual})
	}
	j := jaccard.New(attrs)
	worst, worstScore := "", -1.0
	for i, name := range j.Names {
		row := 0.0
		for k := range j.M[i] {
			row += 1 - j.M[i][k]
		}
		if row > worstScore {
			worst, worstScore = name, row
		}
	}
	if worst != "5.0" {
		t.Errorf("most dissimilar = %s\n%s", worst, j.String())
	}
}
