package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 32} {
		n := 257
		counts := make([]int32, n)
		Do(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	Do(4, 0, func(i int) { t.Fatal("fn called for n=0") })
	ran := false
	Do(4, 1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Do(workers, 64, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, want <= %d", p, workers)
	}
}

// TestDoPanicLowestIndex: with several panicking items, the caller sees the
// lowest index's panic value regardless of scheduling.
func TestDoPanicLowestIndex(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", p)
		}
	}()
	Do(8, 32, func(i int) {
		if i == 3 || i == 17 || i == 31 {
			panic("boom-" + string(rune('0'+i%10)))
		}
	})
	t.Fatal("Do returned instead of panicking")
}

func TestDoPanicInline(t *testing.T) {
	defer func() {
		if p := recover(); p != "serial" {
			t.Fatalf("recovered %v, want serial", p)
		}
	}()
	Do(1, 4, func(i int) {
		if i == 2 {
			panic("serial")
		}
	})
	t.Fatal("inline Do swallowed the panic")
}

func TestWorkersAndDivide(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d", got)
	}
	if got := Divide(8, 2); got != 4 {
		t.Errorf("Divide(8,2) = %d", got)
	}
	if got := Divide(2, 8); got != 1 {
		t.Errorf("Divide(2,8) = %d", got)
	}
	if got := Divide(8, 0); got != 8 {
		t.Errorf("Divide(8,0) = %d", got)
	}
}
